// Extension: chunk-size ablation.
//
// The paper fixes 64-token chunks (§4.2.1) without sweeping the choice. This bench
// shows why 64 sits at the knee: smaller chunks fall under the SSD latency-bandwidth
// knee (restoration slows down) and multiply flush IOs; larger chunks restore no
// faster but hold more DRAM staging per open (sequence, layer) buffer and waste more
// space in the sealed-but-partial tail chunk.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/restorer.h"
#include "src/storage/io_timing.h"

using namespace hcache;

int main() {
  PrintTitle("Extension: chunk-size ablation (13B, A100 + 4 SSDs, history = 1024)");
  const Platform platform = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const StorageIoModel io(platform);

  std::printf("  %8s | %10s %12s | %12s %14s\n", "chunk", "chunk size", "layer read",
              "HCache speed", "staging/layer");
  for (const int64_t chunk : {4, 16, 64, 256, 1024}) {
    Restorer r(platform, cfg, StorageLayout::kLayerChunked, chunk);
    const RestoreResult res = r.Restore(RestoreMethod::kHCache, 1024);
    const double layer_read =
        io.HiddenLayerReadTime(cfg, 1024, StorageLayout::kLayerChunked, chunk);
    const int64_t chunk_bytes = chunk * cfg.HiddenBytesPerTokenLayer();
    std::printf("  %8lld | %9.0fKB %10.2fms | %9.1fK t/s %11.0f KB\n",
                static_cast<long long>(chunk), chunk_bytes / 1024.0, layer_read * 1e3,
                res.TokensPerSecond() / 1e3, chunk_bytes / 1024.0);
  }
  PrintNote("the paper's 64-token chunk (640 KB for 13B) is the smallest size that");
  PrintNote("already streams at full aggregate bandwidth; growing it buys nothing and");
  PrintNote("inflates staging buffers and tail-chunk waste.");
  return 0;
}
