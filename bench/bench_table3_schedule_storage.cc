// Table 3: bubble-free scheduling results and per-token storage cost, plus the §6.1.3
// balanced-bandwidth figures.
//
// Paper values: 7B = 31 H + 1 KV (132 KiB vs 256 KiB); 13B = 36 H + 4 KV (210 vs 400);
// OPT-30B = 40 H + 8 RE (280 vs 672); balanced bandwidth ~24/21/37 GB/s.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/units.h"
#include "src/core/partition.h"
#include "src/core/profiler.h"

using namespace hcache;

int main() {
  PrintTitle("Table 3: scheduling results and per-token storage cost");
  std::printf("%-12s %-22s | %-16s | %12s %12s %7s | %10s\n", "model", "platform", "schedule",
              "HCache KiB", "KVoff KiB", "ratio", "bal. GB/s");

  struct Case {
    ModelConfig cfg;
    Platform platform;
  };
  const Case cases[] = {
      {ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4)},
      {ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4)},
      {ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4)},
  };
  for (const auto& c : cases) {
    const LayerProfile prof = ProfileLayer(c.platform, c.cfg, 1024);
    const PartitionScheme s = SolveLayerWise(prof, c.cfg.num_layers);
    // Table 3 reports storage as elements (1 byte/element units); see DESIGN.md 4.4.
    const double hcache_kib = static_cast<double>(s.StoredElementsPerToken(c.cfg)) / 1024.0;
    const double kv_kib =
        static_cast<double>(c.cfg.KvBytesPerToken() / c.cfg.state_dtype_bytes) / 1024.0;
    char sched[64];
    std::snprintf(sched, sizeof(sched), "%lld H + %lld %s",
                  static_cast<long long>(s.layers_hidden),
                  static_cast<long long>(s.layers_other),
                  s.complement == ComplementMethod::kKvOffload   ? "KV"
                  : s.complement == ComplementMethod::kRecompute ? "RE"
                                                                 : "-");
    std::printf("%-12s %-22s | %-16s | %12.0f %12.0f %6.2fx | %10.1f\n", c.cfg.name.c_str(),
                c.platform.Describe().c_str(), sched, hcache_kib, kv_kib,
                kv_kib / hcache_kib, BalancedBandwidth(c.platform, c.cfg, 1024) / kGB);
  }
  PrintNote("Table 3: 7B '31 H + 1 KV' 132 vs 256 KiB; 13B '36 H + 4 KV' 210 vs 400 KiB;");
  PrintNote("30B '40 H + 8 RE' 280 vs 672 KiB; storage ratio band 1.92-2.40x.");
  PrintNote("balanced bandwidth ~24 / 21 / 37 GB/s for 7B / 13B / 30B (Section 6.1.3).");

  PrintSection("offline profiles (1024-token history)");
  for (const auto& c : cases) {
    std::printf("%-12s %s\n", c.cfg.name.c_str(),
                ProfileLayer(c.platform, c.cfg, 1024).ToString().c_str());
  }
  return 0;
}
