// Figure 3 + Table 1: workload characterization.
//
// (Fig 3a) ShareGPT4 per-round input/output length distributions (means 66.8 / 358.8).
// (Fig 3b) CDF of accumulated history length, truncated at 16K, median ~2.5K.
// (Table 1) L-Eval sub-task statistics.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/histogram.h"
#include "src/workload/leval.h"
#include "src/workload/sharegpt.h"

using namespace hcache;

int main() {
  PrintTitle("Figure 3 / Table 1: trace statistics");

  PrintSection("(Fig 3a) ShareGPT4 round lengths, 5000 synthetic conversations");
  ShareGptGenerator gen(2024);
  Histogram inputs, outputs, histories, rounds;
  for (int i = 0; i < 5000; ++i) {
    const Conversation c = gen.Next();
    rounds.Add(static_cast<double>(c.rounds.size()));
    for (size_t r = 0; r < c.rounds.size(); ++r) {
      inputs.Add(static_cast<double>(c.rounds[r].input_tokens));
      outputs.Add(static_cast<double>(c.rounds[r].output_tokens));
      if (r > 0) {
        histories.Add(static_cast<double>(c.HistoryBefore(r)));
      }
    }
  }
  std::printf("  input : %s\n", inputs.Summary(" tok").c_str());
  std::printf("  output: %s\n", outputs.Summary(" tok").c_str());
  std::printf("  rounds: %s\n", rounds.Summary().c_str());
  PrintNote("ShareGPT4: mean input 66.8, mean output 358.8 tokens per round (Fig 3a).");

  PrintSection("(Fig 3b) accumulated-history CDF at restoration points");
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    std::printf("  p%-4.0f %8.0f tokens\n", p, histories.Percentile(p));
  }
  PrintNote("half of the conversations exceed 2.5K history tokens (Fig 3b).");

  PrintSection("(Table 1) L-Eval sub-task statistics, 5000 samples each");
  std::printf("  %-16s | %10s %8s %8s\n", "task", "context", "input", "output");
  LEvalGenerator lgen(2025);
  for (const auto task :
       {LEvalTask::kPaperAssistant, LEvalTask::kGsm100, LEvalTask::kQuality}) {
    Histogram ctx, in, out;
    for (int i = 0; i < 5000; ++i) {
      const LongContextRequest r = lgen.Next(task);
      ctx.Add(static_cast<double>(r.context_tokens));
      in.Add(static_cast<double>(r.input_tokens));
      out.Add(static_cast<double>(r.output_tokens));
    }
    std::printf("  %-16s | %10.1f %8.1f %8.1f\n", LEvalTaskName(task), ctx.Mean(), in.Mean(),
                out.Mean());
  }
  Histogram mctx, min_, mout;
  for (const auto& r : lgen.MixedTrace(5000)) {
    mctx.Add(static_cast<double>(r.context_tokens));
    min_.Add(static_cast<double>(r.input_tokens));
    mout.Add(static_cast<double>(r.output_tokens));
  }
  std::printf("  %-16s | %10.1f %8.1f %8.1f\n", "Mixed (avg)", mctx.Mean(), min_.Mean(),
              mout.Mean());
  PrintNote("Table 1: Paper Assistant 10603.5/142.7/404.8; GSM-100 5451.7/77.4/4.3;");
  PrintNote("QuALITY 7053.9/92.4/19.2; 20-task average 16340.2/44.7/50.2.");
  return 0;
}
