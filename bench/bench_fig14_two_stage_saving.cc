// Figure 14: two-stage state saving ablation.
//
// Steady-state TBT versus decode batch size (512-token history per sequence) for
// DirectIO (synchronous row writes), HCache's two-stage saving, and the ideal
// (no saving). Paper: DirectIO's TBT is ~34% higher at batch 16 on the 7B model; on
// 13B the gap appears later (+13% at batch 32); two-stage tracks ideal throughout.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/serving/engine.h"

using namespace hcache;

namespace {

void RunModel(const ModelConfig& cfg, int64_t max_batch) {
  const Platform platform = Platform::DefaultTestbed(1, 4);
  ServingOptions direct, two_stage, ideal;
  direct.save_mode = SaveMode::kDirect;
  two_stage.save_mode = SaveMode::kTwoStage;
  ideal.save_mode = SaveMode::kNone;
  ServingEngine e_direct(platform, cfg, direct);
  ServingEngine e_two(platform, cfg, two_stage);
  ServingEngine e_ideal(platform, cfg, ideal);

  std::printf("%s (history 512/sequence)\n", cfg.name.c_str());
  std::printf("  %6s | %12s %12s %12s | %10s\n", "batch", "DirectIO", "HCache", "Ideal",
              "direct ovh");
  for (int64_t bs = 2; bs <= max_batch; bs *= 2) {
    const double d = e_direct.SteadyStateTbt(bs, 512);
    const double t = e_two.SteadyStateTbt(bs, 512);
    const double i = e_ideal.SteadyStateTbt(bs, 512);
    std::printf("  %6lld | %10.2fms %10.2fms %10.2fms | %+9.1f%%\n",
                static_cast<long long>(bs), d * 1e3, t * 1e3, i * 1e3, (d / t - 1.0) * 100);
  }
}

}  // namespace

int main() {
  PrintTitle("Figure 14: two-stage saving vs DirectIO (steady-state TBT)");
  RunModel(ModelConfig::Llama2_7B(), 32);
  RunModel(ModelConfig::Llama2_13B(), 32);
  PrintNote("DirectIO +34% TBT at batch 16 (7B); +13% at batch 32 (13B); two-stage");
  PrintNote("matches ideal at every batch size (Fig 14, Section 6.3.3).");
  return 0;
}
