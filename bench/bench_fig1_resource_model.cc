// Figure 1: state-restoration resource comparison.
//
// Recomputation spends ~6x the computation of HCache; KV offload moves 2x the bytes.
// This bench evaluates the cost model on all three paper models across context lengths
// and prints the resource ratios Fig 1 sketches.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/model/config.h"
#include "src/model/cost_model.h"

using namespace hcache;

int main() {
  PrintTitle("Figure 1: restoration resource comparison (cost model)");
  std::printf("%-12s %8s | %14s %14s %8s | %12s %12s %6s\n", "model", "ctx", "recomp GFLOP",
              "hcache GFLOP", "ratio", "kv MiB", "hidden MiB", "ratio");
  for (const auto& cfg :
       {ModelConfig::Llama2_7B(), ModelConfig::Llama2_13B(), ModelConfig::Opt30B()}) {
    for (const int64_t n : {1024, 4096, 16384}) {
      const double nn = static_cast<double>(n);
      const double rec = cfg.num_layers * RecomputeFlopsPerLayer(cfg, nn) / 1e9;
      const double hid = cfg.num_layers * HiddenToKvFlopsPerLayer(cfg, nn) / 1e9;
      const double kv_mb = cfg.num_layers * KvIoBytesPerLayer(cfg, nn) / (1024.0 * 1024);
      const double h_mb = cfg.num_layers * HiddenIoBytesPerLayer(cfg, nn) / (1024.0 * 1024);
      std::printf("%-12s %8lld | %14.1f %14.1f %7.2fx | %12.1f %12.1f %5.2fx\n",
                  cfg.name.c_str(), static_cast<long long>(n), rec, hid, rec / hid, kv_mb,
                  h_mb, kv_mb / h_mb);
    }
  }
  PrintNote("HCache saves >=6x computational and 2x IO resources (Fig 1, Section 3.2).");
  PrintNote("compute ratio grows with context: 6 + n/(4*D) (quadratic attention term).");
  return 0;
}
