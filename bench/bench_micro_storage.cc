// Microbenchmarks (google-benchmark) for the real storage path: chunk-store writes and
// reads, the two-stage saver's snapshot stage, and full save/restore round trips.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <numeric>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/storage/chunk_store.h"
#include "src/storage/hidden_saver.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> TempDirs(const char* tag, int n) {
  std::vector<std::string> dirs;
  const auto base = fs::temp_directory_path() /
                    ("hcache_bench_" + std::to_string(::getpid()) + "_" + tag);
  for (int i = 0; i < n; ++i) {
    dirs.push_back((base / ("d" + std::to_string(i))).string());
  }
  return dirs;
}

void BM_ChunkWrite(benchmark::State& state) {
  const int64_t chunk_bytes = state.range(0);
  ChunkStore store(TempDirs("write", 4), chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'x');
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.WriteChunk({1, 0, idx++}, payload.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
  state.counters["chunks"] = static_cast<double>(store.chunks_stored());
}
BENCHMARK(BM_ChunkWrite)->Arg(64 * 1024)->Arg(512 * 1024);

void BM_ChunkRead(benchmark::State& state) {
  const int64_t chunk_bytes = state.range(0);
  ChunkStore store(TempDirs("read", 4), chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'y');
  constexpr int64_t kChunks = 64;
  for (int64_t c = 0; c < kChunks; ++c) {
    store.WriteChunk({1, 0, c}, payload.data(), chunk_bytes);
  }
  std::vector<char> buf(static_cast<size_t>(chunk_bytes));
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.ReadChunk({1, 0, idx++ % kChunks}, buf.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
}
BENCHMARK(BM_ChunkRead)->Arg(64 * 1024)->Arg(512 * 1024);

void BM_TwoStageSaveDecodeStep(benchmark::State& state) {
  // One decode iteration's stage-1 snapshot across all layers of a tiny model.
  const ModelConfig cfg = ModelConfig::TinyLlama(8, 128, 4);
  ChunkStore store(TempDirs("save", 4), 64 * cfg.hidden_dim * sizeof(float));
  ThreadPool pool(4);
  HiddenStateWriter writer(&store, &pool, cfg, 1, 64);
  Tensor row({1, cfg.hidden_dim});
  row.Fill(0.5f);
  int32_t pos = 0;
  for (auto _ : state) {
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, row, &pos, 1);
    }
    ++pos;
  }
  writer.Seal();
  state.SetItemsProcessed(state.iterations() * cfg.num_layers);
}
BENCHMARK(BM_TwoStageSaveDecodeStep);

void BM_SaveRestoreRoundTrip(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 128, 4);
  const int64_t n = state.range(0);
  ChunkStore store(TempDirs("trip", 2), 64 * cfg.hidden_dim * sizeof(float));
  Rng rng(1);
  Tensor batch({n, cfg.hidden_dim});
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  int64_t ctx = 0;
  for (auto _ : state) {
    HiddenStateWriter writer(&store, nullptr, cfg, ctx, 64);
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, batch, positions.data(), n);
    }
    writer.Seal();
    HiddenStateReader reader(&store, cfg, 64);
    Tensor back = reader.ReadLayer(ctx, cfg.num_layers - 1, n);
    benchmark::DoNotOptimize(back.data());
    store.DeleteContext(ctx);
    ++ctx;
  }
  state.SetItemsProcessed(state.iterations() * n * cfg.num_layers);
}
BENCHMARK(BM_SaveRestoreRoundTrip)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hcache

BENCHMARK_MAIN();
