// Microbenchmarks (google-benchmark) for the real storage path: chunk writes and
// reads swept across every StorageBackend (file / memory / tiered), the two-stage
// saver's snapshot stage, and full save/restore round trips.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <numeric>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/storage/file_backend.h"
#include "src/storage/hidden_saver.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> TempDirs(const char* tag, int n) {
  std::vector<std::string> dirs;
  const auto base = fs::temp_directory_path() /
                    ("hcache_bench_" + std::to_string(::getpid()) + "_" + tag);
  for (int i = 0; i < n; ++i) {
    dirs.push_back((base / ("d" + std::to_string(i))).string());
  }
  return dirs;
}

// Backend selector for swept benchmarks: 0 = file, 1 = memory, 2 = tiered
// (DRAM budget of 64 chunks over a file cold tier, so steady-state writes evict).
enum BackendKind : int64_t { kFile = 0, kMemory = 1, kTiered = 2 };

struct BackendUnderTest {
  std::unique_ptr<StorageBackend> cold;
  std::unique_ptr<StorageBackend> backend;
};

BackendUnderTest MakeBackend(BackendKind kind, const char* tag, int64_t chunk_bytes) {
  BackendUnderTest b;
  switch (kind) {
    case kFile:
      b.backend = std::make_unique<FileBackend>(TempDirs(tag, 4), chunk_bytes);
      break;
    case kMemory:
      b.backend = std::make_unique<MemoryBackend>(chunk_bytes);
      break;
    case kTiered:
      b.cold = std::make_unique<FileBackend>(TempDirs(tag, 4), chunk_bytes);
      b.backend = std::make_unique<TieredBackend>(b.cold.get(), 64 * chunk_bytes);
      break;
  }
  return b;
}

void BM_ChunkWrite(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const int64_t chunk_bytes = state.range(1);
  BackendUnderTest b = MakeBackend(kind, "write", chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'x');
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.backend->WriteChunk({1, 0, idx++}, payload.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
  state.SetLabel(b.backend->Name());
  state.counters["chunks"] = static_cast<double>(b.backend->chunks_stored());
}
BENCHMARK(BM_ChunkWrite)
    ->ArgNames({"backend", "bytes"})
    ->Args({kFile, 64 * 1024})
    ->Args({kFile, 512 * 1024})
    ->Args({kMemory, 64 * 1024})
    ->Args({kMemory, 512 * 1024})
    ->Args({kTiered, 64 * 1024})
    ->Args({kTiered, 512 * 1024});

void BM_ChunkRead(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const int64_t chunk_bytes = state.range(1);
  BackendUnderTest b = MakeBackend(kind, "read", chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'y');
  constexpr int64_t kChunks = 64;
  for (int64_t c = 0; c < kChunks; ++c) {
    b.backend->WriteChunk({1, 0, c}, payload.data(), chunk_bytes);
  }
  std::vector<char> buf(static_cast<size_t>(chunk_bytes));
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.backend->ReadChunk({1, 0, idx++ % kChunks}, buf.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
  state.SetLabel(b.backend->Name());
  const StorageStats s = b.backend->Stats();
  const int64_t reads = s.dram_hits + s.cold_hits;
  state.counters["dram_hit"] =
      reads > 0 ? static_cast<double>(s.dram_hits) / static_cast<double>(reads) : 0.0;
}
BENCHMARK(BM_ChunkRead)
    ->ArgNames({"backend", "bytes"})
    ->Args({kFile, 64 * 1024})
    ->Args({kFile, 512 * 1024})
    ->Args({kMemory, 64 * 1024})
    ->Args({kMemory, 512 * 1024})
    ->Args({kTiered, 64 * 1024})
    ->Args({kTiered, 512 * 1024});

void BM_TieredEvictionChurn(benchmark::State& state) {
  // Worst case for the tiered backend: each context exceeds the DRAM budget, so every
  // round of writes pays context-granular eviction plus write-back to the file tier.
  const int64_t chunk_bytes = 64 * 1024;
  auto cold = std::make_unique<FileBackend>(TempDirs("churn", 4), chunk_bytes);
  TieredBackend tiered(cold.get(), 4 * chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'z');
  int64_t ctx = 0;
  for (auto _ : state) {
    for (int64_t c = 0; c < 8; ++c) {  // 8 chunks per context, 2x the budget
      tiered.WriteChunk({ctx, 0, c}, payload.data(), chunk_bytes);
    }
    tiered.DeleteContext(ctx);
    ++ctx;
  }
  state.SetBytesProcessed(state.iterations() * 8 * chunk_bytes);
  const StorageStats s = tiered.Stats();
  state.counters["evictions"] = static_cast<double>(s.evicted_contexts);
  state.counters["writeback_mb"] = static_cast<double>(s.writeback_bytes) / (1 << 20);
}
BENCHMARK(BM_TieredEvictionChurn);

void BM_TwoStageSaveDecodeStep(benchmark::State& state) {
  // One decode iteration's stage-1 snapshot across all layers of a tiny model.
  const ModelConfig cfg = ModelConfig::TinyLlama(8, 128, 4);
  FileBackend store(TempDirs("save", 4), 64 * cfg.hidden_dim * sizeof(float));
  ThreadPool pool(4);
  HiddenStateWriter writer(&store, &pool, cfg, 1, 64);
  Tensor row({1, cfg.hidden_dim});
  row.Fill(0.5f);
  int32_t pos = 0;
  for (auto _ : state) {
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, row, &pos, 1);
    }
    ++pos;
  }
  writer.Seal();
  state.SetItemsProcessed(state.iterations() * cfg.num_layers);
}
BENCHMARK(BM_TwoStageSaveDecodeStep);

void BM_SaveRestoreRoundTrip(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 128, 4);
  const int64_t n = state.range(1);
  BackendUnderTest b =
      MakeBackend(kind, "trip", 64 * cfg.hidden_dim * static_cast<int64_t>(sizeof(float)));
  Rng rng(1);
  Tensor batch({n, cfg.hidden_dim});
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  int64_t ctx = 0;
  for (auto _ : state) {
    HiddenStateWriter writer(b.backend.get(), nullptr, cfg, ctx, 64);
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, batch, positions.data(), n);
    }
    writer.Seal();
    HiddenStateReader reader(b.backend.get(), cfg, 64);
    Tensor back = reader.ReadLayer(ctx, cfg.num_layers - 1, n);
    benchmark::DoNotOptimize(back.data());
    b.backend->DeleteContext(ctx);
    ++ctx;
  }
  state.SetLabel(b.backend->Name());
  state.SetItemsProcessed(state.iterations() * n * cfg.num_layers);
}
BENCHMARK(BM_SaveRestoreRoundTrip)
    ->ArgNames({"backend", "tokens"})
    ->Args({kFile, 64})
    ->Args({kFile, 256})
    ->Args({kMemory, 64})
    ->Args({kMemory, 256})
    ->Args({kTiered, 64})
    ->Args({kTiered, 256});

}  // namespace
}  // namespace hcache

BENCHMARK_MAIN();
