// Microbenchmarks (google-benchmark) for the real storage path: chunk writes and
// reads swept across every StorageBackend (file / memory / tiered), codec encode /
// decode kernels, the two-stage saver's snapshot stage, and full save/restore round
// trips.
//
// A custom main additionally runs a timed per-codec sweep of the functional
// save+restore path on every backend and persists the rows (encoded bytes, MB/s,
// simulated restore TTFT) to BENCH_micro_storage.json — the storage plane's entry in
// the repo's performance trajectory.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <numeric>
#include <string>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/core/restorer.h"
#include "src/sim/hardware.h"
#include "src/storage/codec.h"
#include "src/storage/codec_simd.h"
#include "src/storage/file_backend.h"
#include "src/storage/hidden_saver.h"
#include "src/storage/io_timing.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> TempDirs(const char* tag, int n) {
  std::vector<std::string> dirs;
  const auto base = fs::temp_directory_path() /
                    ("hcache_bench_" + std::to_string(::getpid()) + "_" + tag);
  for (int i = 0; i < n; ++i) {
    dirs.push_back((base / ("d" + std::to_string(i))).string());
  }
  return dirs;
}

// Backend selector for swept benchmarks: 0 = file, 1 = memory, 2 = tiered
// (DRAM budget of 64 chunks over a file cold tier, so steady-state writes evict).
enum BackendKind : int64_t { kFile = 0, kMemory = 1, kTiered = 2 };

const char* BackendKindName(BackendKind k) {
  switch (k) {
    case kFile:
      return "file";
    case kMemory:
      return "memory";
    case kTiered:
      return "tiered";
  }
  return "?";
}

struct BackendUnderTest {
  std::unique_ptr<StorageBackend> cold;
  std::unique_ptr<StorageBackend> backend;
};

BackendUnderTest MakeBackend(BackendKind kind, const char* tag, int64_t chunk_bytes) {
  BackendUnderTest b;
  switch (kind) {
    case kFile:
      b.backend = std::make_unique<FileBackend>(TempDirs(tag, 4), chunk_bytes);
      break;
    case kMemory:
      b.backend = std::make_unique<MemoryBackend>(chunk_bytes);
      break;
    case kTiered: {
      b.cold = std::make_unique<FileBackend>(TempDirs(tag, 4), chunk_bytes);
      // Synchronous write-back: the micro-bench measures the eviction/flush cost
      // itself, which the async drainer would move off the timed thread.
      TieredOptions opts;
      opts.writeback = TieredOptions::Writeback::kSync;
      b.backend = std::make_unique<TieredBackend>(b.cold.get(), 64 * chunk_bytes, opts);
      break;
    }
  }
  return b;
}

void BM_ChunkWrite(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const int64_t chunk_bytes = state.range(1);
  BackendUnderTest b = MakeBackend(kind, "write", chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'x');
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.backend->WriteChunk({1, 0, idx++}, payload.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
  state.SetLabel(b.backend->Name());
  state.counters["chunks"] = static_cast<double>(b.backend->chunks_stored());
}
BENCHMARK(BM_ChunkWrite)
    ->ArgNames({"backend", "bytes"})
    ->Args({kFile, 64 * 1024})
    ->Args({kFile, 512 * 1024})
    ->Args({kMemory, 64 * 1024})
    ->Args({kMemory, 512 * 1024})
    ->Args({kTiered, 64 * 1024})
    ->Args({kTiered, 512 * 1024});

void BM_ChunkRead(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const int64_t chunk_bytes = state.range(1);
  BackendUnderTest b = MakeBackend(kind, "read", chunk_bytes);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'y');
  constexpr int64_t kChunks = 64;
  for (int64_t c = 0; c < kChunks; ++c) {
    b.backend->WriteChunk({1, 0, c}, payload.data(), chunk_bytes);
  }
  std::vector<char> buf(static_cast<size_t>(chunk_bytes));
  int64_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        b.backend->ReadChunk({1, 0, idx++ % kChunks}, buf.data(), chunk_bytes));
  }
  state.SetBytesProcessed(state.iterations() * chunk_bytes);
  state.SetLabel(b.backend->Name());
  const StorageStats s = b.backend->Stats();
  const int64_t reads = s.dram_hits + s.cold_hits;
  state.counters["dram_hit"] =
      reads > 0 ? static_cast<double>(s.dram_hits) / static_cast<double>(reads) : 0.0;
}
BENCHMARK(BM_ChunkRead)
    ->ArgNames({"backend", "bytes"})
    ->Args({kFile, 64 * 1024})
    ->Args({kFile, 512 * 1024})
    ->Args({kMemory, 64 * 1024})
    ->Args({kMemory, 512 * 1024})
    ->Args({kTiered, 64 * 1024})
    ->Args({kTiered, 512 * 1024});

// Codec convert kernels in isolation: encode / decode one 64-token x 4096 chunk
// (the Llama2-7B hidden geometry).
void BM_CodecEncode(benchmark::State& state) {
  const auto codec = static_cast<ChunkCodec>(state.range(0));
  const int64_t rows = 64, cols = 4096;
  Rng rng(1);
  Tensor src({rows, cols});
  for (int64_t i = 0; i < src.numel(); ++i) {
    src.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<uint8_t> chunk(static_cast<size_t>(EncodedChunkBytes(codec, rows, cols)));
  for (auto _ : state) {
    WriteChunkHeader(codec, rows, cols, chunk.data());
    EncodeRowsInto(codec, src.data(), cols, rows, cols, chunk.data() + sizeof(ChunkHeader));
    benchmark::DoNotOptimize(chunk.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * sizeof(float));
  state.SetLabel(ChunkCodecName(codec));
}
BENCHMARK(BM_CodecEncode)
    ->ArgNames({"codec"})
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp32))
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp16))
    ->Arg(static_cast<int64_t>(ChunkCodec::kInt8));

void BM_CodecDecode(benchmark::State& state) {
  const auto codec = static_cast<ChunkCodec>(state.range(0));
  const int64_t rows = 64, cols = 4096;
  Rng rng(2);
  Tensor src({rows, cols});
  for (int64_t i = 0; i < src.numel(); ++i) {
    src.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<uint8_t> chunk(static_cast<size_t>(EncodedChunkBytes(codec, rows, cols)));
  WriteChunkHeader(codec, rows, cols, chunk.data());
  EncodeRowsInto(codec, src.data(), cols, rows, cols, chunk.data() + sizeof(ChunkHeader));
  ChunkInfo info;
  if (!InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), cols, &info)) {
    state.SkipWithError("inspect failed");
    return;
  }
  Tensor dst({rows, cols});
  for (auto _ : state) {
    DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows, 0,
                     cols, dst.data(), cols);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * rows * cols * sizeof(float));
  state.SetLabel(ChunkCodecName(codec));
}
BENCHMARK(BM_CodecDecode)
    ->ArgNames({"codec"})
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp32))
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp16))
    ->Arg(static_cast<int64_t>(ChunkCodec::kInt8));

void BM_TieredEvictionChurn(benchmark::State& state) {
  // Worst case for the tiered backend: each context exceeds the DRAM budget, so every
  // round of writes pays context-granular eviction plus write-back to the file tier.
  const int64_t chunk_bytes = 64 * 1024;
  auto cold = std::make_unique<FileBackend>(TempDirs("churn", 4), chunk_bytes);
  // kSync keeps the flush on the timed thread (the cost this bench exists to
  // measure) — the async drainer would hide it and DeleteContext would cancel the
  // still-queued write-backs entirely.
  TieredOptions churn_opts;
  churn_opts.writeback = TieredOptions::Writeback::kSync;
  TieredBackend tiered(cold.get(), 4 * chunk_bytes, churn_opts);
  std::vector<char> payload(static_cast<size_t>(chunk_bytes), 'z');
  int64_t ctx = 0;
  for (auto _ : state) {
    for (int64_t c = 0; c < 8; ++c) {  // 8 chunks per context, 2x the budget
      tiered.WriteChunk({ctx, 0, c}, payload.data(), chunk_bytes);
    }
    tiered.DeleteContext(ctx);
    ++ctx;
  }
  state.SetBytesProcessed(state.iterations() * 8 * chunk_bytes);
  const StorageStats s = tiered.Stats();
  state.counters["evictions"] = static_cast<double>(s.evicted_contexts);
  state.counters["writeback_mb"] = static_cast<double>(s.writeback_bytes) / (1 << 20);
}
BENCHMARK(BM_TieredEvictionChurn);

void BM_TwoStageSaveDecodeStep(benchmark::State& state) {
  // One decode iteration's stage-1 snapshot (with fused encode) across all layers.
  const auto codec = static_cast<ChunkCodec>(state.range(0));
  const ModelConfig cfg = ModelConfig::TinyLlama(8, 128, 4);
  FileBackend store(TempDirs("save", 4), EncodedChunkBytes(ChunkCodec::kFp32, 64, cfg.hidden_dim));
  ThreadPool pool(4);
  HiddenStateWriter writer(&store, &pool, cfg, 1, 64, codec);
  Tensor row({1, cfg.hidden_dim});
  row.Fill(0.5f);
  int32_t pos = 0;
  for (auto _ : state) {
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, row, &pos, 1);
    }
    ++pos;
  }
  writer.Seal();
  state.SetItemsProcessed(state.iterations() * cfg.num_layers);
  state.SetLabel(ChunkCodecName(codec));
}
BENCHMARK(BM_TwoStageSaveDecodeStep)
    ->ArgNames({"codec"})
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp32))
    ->Arg(static_cast<int64_t>(ChunkCodec::kFp16))
    ->Arg(static_cast<int64_t>(ChunkCodec::kInt8));

void BM_SaveRestoreRoundTrip(benchmark::State& state) {
  const auto kind = static_cast<BackendKind>(state.range(0));
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 128, 4);
  const int64_t n = state.range(1);
  BackendUnderTest b =
      MakeBackend(kind, "trip", EncodedChunkBytes(ChunkCodec::kFp32, 64, cfg.hidden_dim));
  Rng rng(1);
  Tensor batch({n, cfg.hidden_dim});
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  int64_t ctx = 0;
  for (auto _ : state) {
    HiddenStateWriter writer(b.backend.get(), nullptr, cfg, ctx, 64);
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      writer.OnLayerInput(layer, batch, positions.data(), n);
    }
    writer.Seal();
    HiddenStateReader reader(b.backend.get(), cfg, 64);
    Tensor back = reader.ReadLayer(ctx, cfg.num_layers - 1, n);
    benchmark::DoNotOptimize(back.data());
    b.backend->DeleteContext(ctx);
    ++ctx;
  }
  state.SetLabel(b.backend->Name());
  state.SetItemsProcessed(state.iterations() * n * cfg.num_layers);
}
BENCHMARK(BM_SaveRestoreRoundTrip)
    ->ArgNames({"backend", "tokens"})
    ->Args({kFile, 64})
    ->Args({kFile, 256})
    ->Args({kMemory, 64})
    ->Args({kMemory, 256})
    ->Args({kTiered, 64})
    ->Args({kTiered, 256});

// --- per-codec JSON sweep: the storage plane's persisted perf trajectory ---

double Seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Best-of-`trials` wall time for `reps` back-to-back runs of `fn`, per run.
double BestSecondsPerRun(int trials, int reps, const std::function<void()>& fn) {
  double best = 1e30;
  for (int t = 0; t < trials; ++t) {
    const double s = Seconds([&] {
      for (int r = 0; r < reps; ++r) {
        fn();
      }
    });
    best = std::min(best, s / reps);
  }
  return best;
}

// A/B comparison variant: alternates the two bodies trial-by-trial so a frequency or
// bandwidth shift mid-measurement biases both sides equally — sequential best-of
// blocks would credit whichever side ran during the quiet window. Returns
// {best_a, best_b} seconds per run.
std::pair<double, double> BestSecondsPerRunAb(int trials, int reps,
                                              const std::function<void()>& fa,
                                              const std::function<void()>& fb) {
  double best_a = 1e30;
  double best_b = 1e30;
  for (int t = 0; t < trials; ++t) {
    const double sa = Seconds([&] {
      for (int r = 0; r < reps; ++r) {
        fa();
      }
    });
    best_a = std::min(best_a, sa / reps);
    const double sb = Seconds([&] {
      for (int r = 0; r < reps; ++r) {
        fb();
      }
    });
    best_b = std::min(best_b, sb / reps);
  }
  return {best_a, best_b};
}

// --- per-ISA codec kernel rows: every tier this CPU can execute, forced in turn ---

JsonValue EmitSimdKernelSweep() {
  PrintTitle("per-ISA codec kernels (one 64-token x 4096-dim chunk worth of rows)");
  constexpr int64_t kN = 64 * 4096;
  Rng rng(11);
  std::vector<float> src(kN), back(kN);
  for (auto& v : src) {
    v = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<uint16_t> halfs(kN);
  std::vector<int8_t> quants(kN);
  const float max_abs0 = CodecKernelsFor(SimdTier::kScalar).max_abs(src.data(), kN);
  const float scale = max_abs0 > 0.0f ? max_abs0 / 127.0f : 1.0f;
  const float inv_scale = 1.0f / scale;

  const SimdTier prev = ActiveSimdTier();
  const SimdTier detected = DetectedSimdTier();
  const double fp32_gb = static_cast<double>(kN) * sizeof(float) / 1e9;
  JsonValue rows = JsonValue::Array();
  double scalar_decode_s = 0.0;
  double scalar_crc_s = 0.0;
  std::printf("  %-7s | %8s %8s %8s %8s %8s %8s | %s\n", "tier", "f16 enc", "f16 dec",
              "max_abs", "i8 quant", "i8 deq", "crc32c", "GB/s of fp32-side data");
  for (int t = 0; t <= static_cast<int>(detected); ++t) {
    const SimdTier tier = static_cast<SimdTier>(t);
    ForceSimdTier(tier);
    const CodecKernels& k = CodecKernelsFor(tier);
    const double enc_s = BestSecondsPerRun(5, 16, [&] {
      k.fp16_encode(src.data(), halfs.data(), kN);
      benchmark::DoNotOptimize(halfs.data());
    });
    const double dec_s = BestSecondsPerRun(5, 16, [&] {
      k.fp16_decode(halfs.data(), back.data(), kN);
      benchmark::DoNotOptimize(back.data());
    });
    const double abs_s = BestSecondsPerRun(5, 16, [&] {
      float m = k.max_abs(src.data(), kN);
      benchmark::DoNotOptimize(m);
    });
    const double qnt_s = BestSecondsPerRun(5, 16, [&] {
      k.int8_quantize(src.data(), inv_scale, quants.data(), kN);
      benchmark::DoNotOptimize(quants.data());
    });
    const double deq_s = BestSecondsPerRun(5, 16, [&] {
      k.int8_dequantize(quants.data(), scale, back.data(), kN);
      benchmark::DoNotOptimize(back.data());
    });
    // CRC32C over the same bytes the verified read path checksums (the integrity
    // plane's kernel — SSE4.2 `crc32` above the scalar tier).
    const double crc_s = BestSecondsPerRun(5, 16, [&] {
      uint32_t crc = k.crc32c(0xFFFFFFFFu, src.data(),
                              kN * static_cast<int64_t>(sizeof(float)));
      benchmark::DoNotOptimize(crc);
    });
    if (tier == SimdTier::kScalar) {
      scalar_decode_s = dec_s;
      scalar_crc_s = crc_s;
    }
    std::printf(
        "  %-7s | %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f | f16-dec %0.2fx, crc %0.2fx scalar\n",
        SimdTierName(tier), fp32_gb / enc_s, fp32_gb / dec_s, fp32_gb / abs_s,
        fp32_gb / qnt_s, fp32_gb / deq_s, fp32_gb / crc_s, scalar_decode_s / dec_s,
        scalar_crc_s / crc_s);
    JsonValue row = JsonValue::Object();
    row.Set("tier", SimdTierName(tier))
        .Set("elements", kN)
        .Set("fp16_encode_gb_per_s", fp32_gb / enc_s)
        .Set("fp16_decode_gb_per_s", fp32_gb / dec_s)
        .Set("max_abs_gb_per_s", fp32_gb / abs_s)
        .Set("int8_quantize_gb_per_s", fp32_gb / qnt_s)
        .Set("int8_dequantize_gb_per_s", fp32_gb / deq_s)
        .Set("crc32c_gb_per_s", fp32_gb / crc_s)
        .Set("fp16_decode_speedup_vs_scalar", scalar_decode_s / dec_s)
        .Set("crc32c_speedup_vs_scalar", scalar_crc_s / crc_s);
    rows.Push(std::move(row));
  }
  ForceSimdTier(prev);
  return rows;
}

// --- batched vs serial reads: one ReadChunks call against the per-chunk loop ---

JsonValue EmitBatchedVsSerialRead() {
  PrintTitle("batched vs serial FileBackend reads (4-layer context, 64 KiB chunks)");
  constexpr int64_t kChunkBytes = 64 * 1024;
  constexpr int64_t kLayers = 4;
  constexpr int64_t kChunksPerLayer = 16;
  constexpr int64_t kChunks = kLayers * kChunksPerLayer;
  FileBackend file(TempDirs("batchread", 4), kChunkBytes);
  std::vector<char> payload(static_cast<size_t>(kChunkBytes), 'b');
  std::vector<ChunkKey> keys;
  for (int64_t layer = 0; layer < kLayers; ++layer) {
    for (int64_t c = 0; c < kChunksPerLayer; ++c) {
      keys.push_back({1, layer, c});
      file.WriteChunk(keys.back(), payload.data(), kChunkBytes);
    }
  }
  std::vector<char> buf(static_cast<size_t>(kChunks * kChunkBytes));
  const double serial_s = BestSecondsPerRun(7, 4, [&] {
    for (int64_t i = 0; i < kChunks; ++i) {
      benchmark::DoNotOptimize(
          file.ReadChunk(keys[static_cast<size_t>(i)], buf.data() + i * kChunkBytes,
                         kChunkBytes));
    }
  });
  std::vector<ChunkReadRequest> reqs(static_cast<size_t>(kChunks));
  const double batched_s = BestSecondsPerRun(7, 4, [&] {
    for (int64_t i = 0; i < kChunks; ++i) {
      reqs[static_cast<size_t>(i)] = {keys[static_cast<size_t>(i)],
                                      buf.data() + i * kChunkBytes, kChunkBytes};
    }
    file.ReadChunks(reqs);
    benchmark::DoNotOptimize(buf.data());
  });

  // The same pattern under the paper-testbed byte model: queue-depth-1 serial reads
  // pay per-IO device latency and stream from one SSD; a batched submission pays one
  // latency and stripes across all four.
  const StorageIoModel model(Platform::DefaultTestbed(1, 4));
  const IoPattern pattern{kChunks, kChunkBytes};
  const double model_serial_s = model.SerialReadTime(pattern);
  const double model_batched_s = model.ReadTime(pattern);

  std::printf("  measured: serial %7.1fus  batched %7.1fus  -> %0.2fx\n", serial_s * 1e6,
              batched_s * 1e6, serial_s / batched_s);
  std::printf("  modeled:  serial %7.1fus  batched %7.1fus  -> %0.2fx (testbed SSDs)\n",
              model_serial_s * 1e6, model_batched_s * 1e6, model_serial_s / model_batched_s);
  JsonValue section = JsonValue::Object();
  section.Set("chunks", kChunks)
      .Set("chunk_bytes", kChunkBytes)
      .Set("layers", kLayers)
      .Set("serial_read_s", serial_s)
      .Set("batched_read_s", batched_s)
      .Set("measured_speedup", serial_s / batched_s)
      .Set("model_serial_read_s", model_serial_s)
      .Set("model_batched_read_s", model_batched_s)
      .Set("model_speedup", model_serial_s / model_batched_s);
  return section;
}

// --- verified vs unverified reads: what the v2 CRC costs on the restore path ---

JsonValue EmitVerifiedReadOverhead() {
  PrintTitle("verified (CRC32C) vs unverified chunk reads");
  // Sealed v2 chunks at the hidden-state geometry: 4 x 4096 FP32 rows per chunk.
  constexpr int64_t kRows = 4, kCols = 4096;
  const int64_t chunk_bytes = EncodedChunkBytes(ChunkCodec::kFp32, kRows, kCols);
  constexpr int64_t kChunks = 64;
  Rng rng(13);
  std::vector<uint8_t> chunk(static_cast<size_t>(chunk_bytes));
  {
    std::vector<float> row(kCols);
    for (int64_t r = 0; r < kRows; ++r) {
      for (auto& v : row) {
        v = static_cast<float>(rng.NextNormal(0, 1));
      }
      EncodeRowsInto(ChunkCodec::kFp32, row.data(), kCols, 1, kCols,
                     chunk.data() + sizeof(ChunkHeader) +
                         r * CodecRowBytes(ChunkCodec::kFp32, kCols));
    }
    WriteChunkHeader(ChunkCodec::kFp32, kRows, kCols, chunk.data());
  }

  JsonValue rows = JsonValue::Array();
  std::printf("  %-7s | %9s %9s | %s\n", "backend", "unverif", "verified",
              "GB/s (overhead)");
  for (const BackendKind kind : {kMemory, kFile}) {
    BackendUnderTest b = MakeBackend(kind, "verify", chunk_bytes);
    for (int64_t c = 0; c < kChunks; ++c) {
      b.backend->WriteChunk({1, 0, c}, chunk.data(), chunk_bytes);
    }
    std::vector<char> buf(static_cast<size_t>(chunk_bytes));
    int64_t idx = 0;
    const auto [raw_s, verified_s] = BestSecondsPerRunAb(
        7, 256,
        [&] {
          benchmark::DoNotOptimize(b.backend->ReadChunkUnverified(
              {1, 0, idx++ % kChunks}, buf.data(), chunk_bytes));
        },
        [&] {
          benchmark::DoNotOptimize(
              b.backend->ReadChunk({1, 0, idx++ % kChunks}, buf.data(), chunk_bytes));
        });
    const double gb = static_cast<double>(chunk_bytes) / 1e9;
    const double overhead = verified_s / raw_s - 1.0;
    std::printf("  %-7s | %9.2f %9.2f | %+0.1f%%\n", BackendKindName(kind), gb / raw_s,
                gb / verified_s, overhead * 100.0);
    JsonValue row = JsonValue::Object();
    row.Set("backend", BackendKindName(kind))
        .Set("chunk_bytes", chunk_bytes)
        .Set("unverified_gb_per_s", gb / raw_s)
        .Set("verified_gb_per_s", gb / verified_s)
        .Set("crc_overhead_pct", overhead * 100.0);
    rows.Push(std::move(row));
  }
  return rows;
}

// The restore hot path itself: HiddenStateReader::ReadLayerInto (batched verified
// reads + fused decode, exactly what RestoreContext runs per layer) against the SAME
// reader with verification switched off — the two flavors share every instruction
// except the CRC pass, so the delta is the v2 format's read-path cost.
JsonValue EmitRestorePathCrcOverhead() {
  PrintTitle("restore hot path: ReadLayerInto, verified vs unverified");
  const ModelConfig cfg = ModelConfig::TinyLlama(1, 4096, 32);
  const int64_t n = 1024, chunk_tokens = 64;
  const int64_t cols = cfg.hidden_dim;
  const int64_t num_chunks = (n + chunk_tokens - 1) / chunk_tokens;
  const int64_t chunk_cap = EncodedChunkBytes(ChunkCodec::kFp32, chunk_tokens, cols);
  Rng rng(17);
  Tensor batch({n, cols});
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);

  JsonValue rows = JsonValue::Array();
  std::printf("  %-7s %-5s | %9s %9s | %s\n", "backend", "codec", "unverif",
              "verified", "logical GB/s (overhead)");
  for (const BackendKind kind : {kMemory, kFile}) {
    for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kFp32}) {
      BackendUnderTest b = MakeBackend(kind, "crcpath", chunk_cap);
      HiddenStateWriter writer(b.backend.get(), nullptr, cfg, 1, chunk_tokens, codec);
      writer.OnLayerInput(0, batch, positions.data(), n);
      writer.Seal();

      Tensor out({n, cols});
      // The unverified baseline is the SAME ReadLayerInto code path with the CRC pass
      // switched off (ReadChunksUnverified) — every other instruction is shared, so
      // the delta is exactly what verification costs.
      HiddenStateReader unverified_reader(b.backend.get(), cfg, chunk_tokens,
                                          /*verify=*/false);
      HiddenStateReader reader(b.backend.get(), cfg, chunk_tokens);
      const auto [raw_s, verified_s] = BestSecondsPerRunAb(
          7, 8,
          [&] {
            if (!unverified_reader.ReadLayerInto(1, 0, n, out.data())) {
              std::abort();
            }
            benchmark::DoNotOptimize(out.data());
          },
          [&] {
            if (!reader.ReadLayerInto(1, 0, n, out.data())) {
              std::abort();
            }
            benchmark::DoNotOptimize(out.data());
          });

      const double gb = static_cast<double>(n * cols) * sizeof(float) / 1e9;
      const double overhead = verified_s / raw_s - 1.0;
      std::printf("  %-7s %-5s | %9.2f %9.2f | %+0.1f%%\n", BackendKindName(kind),
                  ChunkCodecName(codec), gb / raw_s, gb / verified_s, overhead * 100.0);
      JsonValue row = JsonValue::Object();
      row.Set("backend", BackendKindName(kind))
          .Set("codec", ChunkCodecName(codec))
          .Set("tokens", n)
          .Set("hidden_dim", cols)
          .Set("unverified_gb_per_s", gb / raw_s)
          .Set("verified_gb_per_s", gb / verified_s)
          .Set("crc_overhead_pct", overhead * 100.0);
      rows.Push(std::move(row));
      b.backend->DeleteContext(1);
    }
  }

  // The tmpfs rows above are the worst case for verification: "storage" IS DRAM, so
  // there is no device transfer to hide the checksum behind and every checked byte
  // shows up as wall time (a single crc32q port moves at most 8 bytes/cycle — the
  // hard ceiling of any checksummed read — and this testbed has ONE core, so the
  // parallel verify paths collapse to serial too). On the paper testbed the restore
  // stream is DEVICE-bound: four striped NVMe SSDs feed ~5 GB/s per device while
  // each device's read thread (FileBackend::ReadChunks' per-device fan-out) runs the
  // CRC core-side at ~20 GB/s. The CRC is chainable, so a pipelined reader verifies
  // 64 KiB granules as their segments land and only the LAST granule's checksum sits
  // outside the device stream. Model that regime next to the measurement — the same
  // measured/modeled split EmitBatchedVsSerialRead reports.
  std::vector<uint8_t> crcbuf(1 << 20, 0xa5);
  const double crc_s = BestSecondsPerRun(5, 8, [&] {
    benchmark::DoNotOptimize(Crc32c(crcbuf.data(), static_cast<int64_t>(crcbuf.size())));
  });
  const double crc_bps = static_cast<double>(crcbuf.size()) / crc_s;
  const StorageIoModel model(Platform::DefaultTestbed(1, 4));
  const int num_devices = model.platform().ssds_per_gpu();
  constexpr int64_t kVerifyGranule = 64 * 1024;
  JsonValue modeled = JsonValue::Array();
  std::printf(
      "  modeled (testbed SSDs, per-device pipelined verify; crc %.1f GB/s/core):\n",
      crc_bps / 1e9);
  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kFp32}) {
    const int64_t enc_chunk = EncodedChunkBytes(codec, chunk_tokens, cols);
    const double io_s = model.ReadTime(IoPattern{num_chunks, enc_chunk});
    const double crc_total_s =
        static_cast<double>(num_chunks) * static_cast<double>(enc_chunk) / crc_bps;
    // Each device thread checksums only its own stream; the drain tail is the final
    // granule, verified after its last byte lands.
    const double crc_wall_s = crc_total_s / num_devices;
    const double tail_s =
        static_cast<double>(std::min(enc_chunk, kVerifyGranule)) / crc_bps;
    const double model_verified_s =
        std::max(io_s, model.DeviceLatency() + crc_wall_s) + tail_s;
    const double model_overhead = model_verified_s / io_s - 1.0;
    std::printf("    file    %-5s | %8.1fus %8.1fus | %+0.1f%%\n", ChunkCodecName(codec),
                io_s * 1e6, model_verified_s * 1e6, model_overhead * 100.0);
    JsonValue row = JsonValue::Object();
    row.Set("backend", "file")
        .Set("codec", ChunkCodecName(codec))
        .Set("tokens", n)
        .Set("hidden_dim", cols)
        .Set("model_unverified_s", io_s)
        .Set("model_verified_s", model_verified_s)
        .Set("crc_gb_per_s", crc_bps / 1e9)
        .Set("crc_overhead_pct", model_overhead * 100.0);
    modeled.Push(std::move(row));
  }
  JsonValue section = JsonValue::Object();
  section.Set("measured", std::move(rows)).Set("modeled", std::move(modeled));
  return section;
}

void EmitCodecSweepJson() {
  PrintTitle("per-codec storage sweep (BENCH_micro_storage.json)");
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 512, 8);
  const int64_t n = 1024;
  const int64_t chunk_tokens = 64;
  const int64_t logical_bytes =
      cfg.num_layers * n * cfg.hidden_dim * static_cast<int64_t>(sizeof(float));
  Rng rng(9);
  Tensor batch({n, cfg.hidden_dim});
  for (int64_t i = 0; i < batch.numel(); ++i) {
    batch.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);

  JsonValue rows = JsonValue::Array();
  std::printf("  %-7s %-7s | %9s %6s | %9s %9s | %9s\n", "backend", "codec", "enc MB",
              "ratio", "save MB/s", "read MB/s", "sim TTFT");
  for (const BackendKind kind : {kFile, kMemory, kTiered}) {
    for (const ChunkCodec codec :
         {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
      BackendUnderTest b = MakeBackend(
          kind, (std::string("sweep_") + BackendKindName(kind) + ChunkCodecName(codec)).c_str(),
          EncodedChunkBytes(ChunkCodec::kFp32, chunk_tokens, cfg.hidden_dim));
      HiddenStateWriter writer(b.backend.get(), nullptr, cfg, 1, chunk_tokens, codec);
      const double save_s = Seconds([&] {
        for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
          writer.OnLayerInput(layer, batch, positions.data(), n);
        }
        writer.Seal();
      });
      const int64_t encoded_bytes = b.backend->bytes_stored();
      HiddenStateReader reader(b.backend.get(), cfg, chunk_tokens);
      Tensor out({n, cfg.hidden_dim});
      const double read_s = Seconds([&] {
        for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
          reader.ReadLayerInto(1, layer, n, out.data());
        }
      });
      // Simulated restore TTFT on the paper's testbed with this codec's byte model.
      const Restorer restorer(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                              StorageLayout::kLayerChunked, kDefaultChunkTokens, codec);
      const double sim_ttft =
          restorer.Restore(RestoreMethod::kHCache, /*history_tokens=*/2048).total_time;

      const double save_mbps = static_cast<double>(logical_bytes) / save_s / 1e6;
      const double read_mbps = static_cast<double>(logical_bytes) / read_s / 1e6;
      const double ratio = static_cast<double>(logical_bytes) / encoded_bytes;
      std::printf("  %-7s %-7s | %9.2f %5.2fx | %9.0f %9.0f | %8.2fms\n",
                  BackendKindName(kind), ChunkCodecName(codec), encoded_bytes / 1e6, ratio,
                  save_mbps, read_mbps, sim_ttft * 1e3);
      JsonValue row = JsonValue::Object();
      row.Set("backend", BackendKindName(kind))
          .Set("codec", ChunkCodecName(codec))
          .Set("tokens", n)
          .Set("layers", cfg.num_layers)
          .Set("hidden_dim", cfg.hidden_dim)
          .Set("logical_bytes", logical_bytes)
          .Set("encoded_bytes", encoded_bytes)
          .Set("compression_vs_fp32", ratio)
          .Set("save_mb_per_s", save_mbps)
          .Set("read_mb_per_s", read_mbps)
          .Set("sim_restore_ttft_s_llama7b_2048", sim_ttft);
      rows.Push(std::move(row));
      b.backend->DeleteContext(1);
    }
  }
  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "micro_storage")
      .Set("note",
           "functional two-stage save + fused-decode read of a 4-layer x 1024-token x "
           "512-dim context per backend per codec; MB/s are FP32-equivalent logical "
           "rates; sim TTFT is Restorer(kHCache) for Llama2-7B n=2048 on the paper "
           "testbed under the codec's byte model")
      .Set("simd_detected", SimdTierName(DetectedSimdTier()))
      .Set("simd_active", SimdTierName(ActiveSimdTier()))
      .Set("simd_kernels", EmitSimdKernelSweep())
      .Set("verified_read", EmitVerifiedReadOverhead())
      .Set("restore_path_crc", EmitRestorePathCrcOverhead())
      .Set("batched_read", EmitBatchedVsSerialRead())
      .Set("rows", std::move(rows));
  WriteJsonFile("BENCH_micro_storage.json", doc);
}

}  // namespace
}  // namespace hcache

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  hcache::EmitCodecSweepJson();
  return 0;
}
