// Extension: HCache under grouped-query attention (paper §7).
//
// GQA shrinks the KV cache (fewer KV heads) while hidden states keep the full model
// width, so HCache's 2x IO advantage erodes: at group 2 the sizes tie; beyond that the
// KV cache is SMALLER than the hidden states. The compute advantage (skipping
// attention+FFN) survives at any grouping. This bench quantifies where HCache stops
// winning on the paper's testbed, and shows the bubble-free scheduler adapting (it
// shifts layers to the now-cheap KV-offload complement).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/restorer.h"

using namespace hcache;

int main() {
  PrintTitle("Extension: GQA sensitivity (A100 + 4 SSDs, history = 1024)");
  const Platform platform = Platform::DefaultTestbed(1, 4);
  std::printf("  %-16s %8s | %10s %10s | %8s %8s %8s | %6s | %-14s\n", "model", "kv/hid",
              "hid KiB/t", "kv KiB/t", "Recomp", "KVoff", "HCache", "vs KV", "schedule");

  const ModelConfig base = ModelConfig::Llama2_7B();
  for (const int64_t kv_heads : {32, 16, 8, 4, 2}) {
    const ModelConfig cfg =
        kv_heads == base.num_heads ? base : ModelConfig::WithGqa(base, kv_heads);
    Restorer r(platform, cfg);
    const RestoreResult rec = r.Restore(RestoreMethod::kRecompute, 1024);
    const RestoreResult kv = r.Restore(RestoreMethod::kKvOffload, 1024);
    const RestoreResult h = r.Restore(RestoreMethod::kHCache, 1024);
    std::printf("  %-16s %7.2f | %10.1f %10.1f | %7.1fK %7.1fK %7.1fK | %5.2fx | %s\n",
                cfg.name.c_str(),
                static_cast<double>(cfg.kv_dim()) / static_cast<double>(cfg.hidden_dim),
                static_cast<double>(cfg.HiddenBytesPerToken()) / 1024.0,
                static_cast<double>(cfg.KvBytesPerToken()) / 1024.0,
                rec.TokensPerSecond() / 1e3, kv.TokensPerSecond() / 1e3,
                h.TokensPerSecond() / 1e3, h.TokensPerSecond() / kv.TokensPerSecond(),
                h.scheme.ToString().c_str());
  }
  PrintNote("MHA (32 kv heads): HCache moves half the bytes of KV offload and wins.");
  PrintNote("Group 2: hidden and KV sizes tie. Group >=4: the KV cache is SMALLER than");
  PrintNote("the hidden states and pure KV offload dominates — the plan selector falls");
  PrintNote("back to it (schedule '0 H + 32 KV'). The paper (Section 7) proposes");
  PrintNote("storing low-rank-projected hidden states to recover the advantage (a");
  PrintNote("model-structure change, out of scope here).");
  return 0;
}
