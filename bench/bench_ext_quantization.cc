// Extension: hidden-state precision codecs (paper §7, CacheGen-style quantization).
//
// Two halves:
//   (1) functional — run a tiny model, store its hidden states through the REAL chunk
//       codec path (FP16 and INT8), restore KV from the decoded rows, and measure the
//       actual KV error versus lossless FP32 storage (lossy, but tightly bounded);
//   (2) performance — re-run the bubble-free solver with each codec's transmission
//       byte model and report the predicted restoration speedup on the paper's
//       testbed (IO-bound platforms gain the most).
//
// Per-codec fidelity and speedup rows persist to BENCH_ext_quantization.json.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/partition.h"
#include "src/core/quantize.h"
#include "src/core/restorer.h"
#include "src/model/transformer.h"
#include "src/storage/codec.h"
#include "src/storage/hidden_saver.h"
#include "src/storage/memory_backend.h"

using namespace hcache;

namespace {

struct Fidelity {
  double compression = 0;   // stored bytes vs FP32
  double worst_kv_err = 0;  // restored-KV element error vs lossless storage
};

Fidelity MeasureFidelity(ChunkCodec codec, JsonValue& rows) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 42);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 8));
  const int64_t n = 24;
  Rng rng(1);
  std::vector<int32_t> prompt(static_cast<size_t>(n));
  for (auto& t : prompt) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }

  // Capture through the real storage plane, once losslessly and once encoded.
  MemoryBackend exact_store(1 << 20), lossy_store(1 << 20);
  HiddenStateWriter exact_writer(&exact_store, nullptr, cfg, 1, 8, ChunkCodec::kFp32);
  HiddenStateWriter lossy_writer(&lossy_store, nullptr, cfg, 1, 8, codec);
  {
    PagedKvSequence seq(&pool);
    model.Forward(prompt, &seq, &exact_writer);
    exact_writer.Seal();
    seq.Evict();
  }
  {
    PagedKvSequence seq(&pool);
    model.Forward(prompt, &seq, &lossy_writer);
    lossy_writer.Seal();
    seq.Evict();
  }

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  const HiddenStateReader exact_reader(&exact_store, cfg, 8);
  const HiddenStateReader lossy_reader(&lossy_store, cfg, 8);
  Fidelity f;
  f.compression = static_cast<double>(exact_store.bytes_stored()) /
                  static_cast<double>(lossy_store.bytes_stored());
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    const Tensor exact = exact_reader.ReadLayer(1, layer, n);
    const Tensor approx = lossy_reader.ReadLayer(1, layer, n);
    Tensor k_exact, v_exact, k_q, v_q;
    model.RestoreLayerKv(layer, exact, positions.data(), &k_exact, &v_exact);
    model.RestoreLayerKv(layer, approx, positions.data(), &k_q, &v_q);
    f.worst_kv_err = std::max<double>(f.worst_kv_err, Tensor::MaxAbsDiff(k_exact, k_q));
    f.worst_kv_err = std::max<double>(f.worst_kv_err, Tensor::MaxAbsDiff(v_exact, v_q));
  }
  std::printf("  %-5s stored %.2fx smaller than FP32; worst restored-KV error %.4g\n",
              ChunkCodecName(codec), f.compression, f.worst_kv_err);
  JsonValue row = JsonValue::Object();
  row.Set("kind", "fidelity")
      .Set("codec", ChunkCodecName(codec))
      .Set("compression_vs_fp32", f.compression)
      .Set("worst_restored_kv_error", f.worst_kv_err);
  rows.Push(std::move(row));
  return f;
}

}  // namespace

int main() {
  PrintTitle("Extension: hidden-state precision codecs (FP16 / INT8 per-row)");
  JsonValue rows = JsonValue::Array();

  PrintSection("(1) functional fidelity on a tiny Llama (4L x 64d), real codec path");
  MeasureFidelity(ChunkCodec::kFp16, rows);
  const Fidelity int8 = MeasureFidelity(ChunkCodec::kInt8, rows);
  // Sanity anchor from the analytic bound: INT8 error ≤ scale/2, KV values are O(1).
  std::printf("  (INT8 per-row bound: |err| <= max|row|/254 before projection)\n");
  (void)int8;

  PrintSection("(2) predicted restoration speed per storage codec");
  struct Case {
    const char* label;
    Platform platform;
    ModelConfig cfg;
  };
  const Case cases[] = {
      {"7B  / A100+4SSD", Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B()},
      {"7B  / A100+1SSD (IO-bound)", Platform::ComputeSufficient(), ModelConfig::Llama2_7B()},
      {"13B / A100+4SSD", Platform::Balanced(), ModelConfig::Llama2_13B()},
  };
  std::printf("  %-28s | %10s %10s %10s | %7s %7s\n", "platform", "fp32", "fp16", "int8",
              "16/32", "8/16");
  for (const auto& c : cases) {
    double speed[3] = {0, 0, 0};
    int i = 0;
    for (const ChunkCodec codec :
         {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
      const Restorer r(c.platform, c.cfg, StorageLayout::kLayerChunked, kDefaultChunkTokens,
                       codec);
      const PartitionScheme s = SolveLayerWise(r.Profile(1024), c.cfg.num_layers);
      speed[i] = 1024.0 / s.predicted_time / 1e3;
      JsonValue row = JsonValue::Object();
      row.Set("kind", "restore_speed")
          .Set("platform", c.label)
          .Set("model", c.cfg.name)
          .Set("codec", ChunkCodecName(codec))
          .Set("ktokens_per_s", speed[i]);
      rows.Push(std::move(row));
      ++i;
    }
    std::printf("  %-28s | %8.1fK  %8.1fK  %8.1fK | %6.2fx %6.2fx\n", c.label, speed[0],
                speed[1], speed[2], speed[1] / speed[0], speed[2] / speed[1]);
  }
  PrintNote("precision helps exactly where transmission binds (1-SSD platforms);");
  PrintNote("compute-bound platforms see ~1x — the scheduler already hid the IO.");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "ext_quantization")
      .Set("note",
           "fidelity rows: tiny-model hidden states stored via the real chunk codec; "
           "restore_speed rows: bubble-free solver under each codec's byte model")
      .Set("rows", std::move(rows));
  WriteJsonFile("BENCH_ext_quantization.json", doc);
  return 0;
}
