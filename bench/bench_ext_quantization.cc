// Extension: INT8 hidden-state quantization (paper §7, CacheGen-style).
//
// Two halves:
//   (1) functional — quantize a tiny model's captured hidden states, restore KV from
//       the dequantized rows, and measure the actual KV error and the drift of the
//       decoded logits (lossy, but tightly bounded);
//   (2) performance — halve hidden-state IO in the offline profile, re-run the
//       bubble-free solver, and report the predicted restoration speedup on the
//       paper's testbed (IO-bound platforms gain the most).
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/partition.h"
#include "src/core/quantize.h"
#include "src/core/restorer.h"
#include "src/model/transformer.h"

using namespace hcache;

namespace {

// Captures layer inputs into dense per-layer tensors.
class DenseSink : public HiddenStateSink {
 public:
  DenseSink(const ModelConfig& cfg, int64_t max_tokens)
      : cfg_(cfg), layers_(static_cast<size_t>(cfg.num_layers)) {
    for (auto& t : layers_) {
      t = Tensor({max_tokens, cfg.hidden_dim});
    }
  }
  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override {
    for (int64_t i = 0; i < n; ++i) {
      std::copy(hidden.row(i), hidden.row(i) + cfg_.hidden_dim,
                layers_[static_cast<size_t>(layer)].row(positions[i]));
    }
  }
  const Tensor& layer(int64_t l) const { return layers_[static_cast<size_t>(l)]; }

 private:
  ModelConfig cfg_;
  std::vector<Tensor> layers_;
};

}  // namespace

int main() {
  PrintTitle("Extension: hidden-state quantization (INT8 per-row)");

  PrintSection("(1) functional fidelity on a tiny Llama (4L x 64d)");
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 42);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 8));
  const int64_t n = 24;
  Rng rng(1);
  std::vector<int32_t> prompt(static_cast<size_t>(n));
  for (auto& t : prompt) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }
  DenseSink sink(cfg, n);
  PagedKvSequence seq(&pool);
  model.Forward(prompt, &seq, &sink);

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  double worst_kv_err = 0, compression = 0;
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    const QuantizedRows q = QuantizeRows(sink.layer(layer));
    compression = CompressionVsFp16(q);
    const Tensor approx = DequantizeRows(q);
    Tensor k_exact, v_exact, k_q, v_q;
    model.RestoreLayerKv(layer, sink.layer(layer), positions.data(), &k_exact, &v_exact);
    model.RestoreLayerKv(layer, approx, positions.data(), &k_q, &v_q);
    worst_kv_err = std::max<double>(worst_kv_err, Tensor::MaxAbsDiff(k_exact, k_q));
    worst_kv_err = std::max<double>(worst_kv_err, Tensor::MaxAbsDiff(v_exact, v_q));
  }
  std::printf("  compression vs FP16 hidden states: %.2fx\n", compression);
  std::printf("  worst restored-KV element error  : %.4g (KV values are O(1))\n",
              worst_kv_err);

  PrintSection("(2) predicted restoration speed with INT8 hidden transport");
  struct Case {
    const char* label;
    Platform platform;
    ModelConfig cfg;
  };
  const Case cases[] = {
      {"7B  / A100+4SSD", Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B()},
      {"7B  / A100+1SSD (IO-bound)", Platform::ComputeSufficient(), ModelConfig::Llama2_7B()},
      {"13B / A100+4SSD", Platform::Balanced(), ModelConfig::Llama2_13B()},
  };
  std::printf("  %-28s | %10s %10s | %7s\n", "platform", "FP16 hid", "INT8 hid", "gain");
  for (const auto& c : cases) {
    Restorer r(c.platform, c.cfg);
    const LayerProfile fp16 = r.Profile(1024);
    LayerProfile int8 = fp16;
    int8.io_hidden *= 0.5;  // INT8 halves the hidden-state bytes; KV stays FP16
    const PartitionScheme s16 = SolveLayerWise(fp16, c.cfg.num_layers);
    const PartitionScheme s8 = SolveLayerWise(int8, c.cfg.num_layers);
    const double speed16 = 1024.0 / s16.predicted_time / 1e3;
    const double speed8 = 1024.0 / s8.predicted_time / 1e3;
    std::printf("  %-28s | %8.1fK  %8.1fK  | %6.2fx\n", c.label, speed16, speed8,
                speed8 / speed16);
  }
  PrintNote("quantization helps exactly where transmission binds (1-SSD platforms);");
  PrintNote("compute-bound platforms see ~1x — the scheduler already hid the IO.");
  return 0;
}
