// Figure 10: TTFT of long-context applications (L-Eval sub-tasks), batch size 1.
//
// Paper: HCache achieves 1.62-1.93x TTFT speedup over KV offload and 2.66-5.73x over
// token recomputation across Paper Assistant / GSM-100 / QuALITY / Mixed.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/serving/engine.h"

using namespace hcache;

namespace {

std::vector<LongContextRequest> TaskTrace(LEvalGenerator& gen, LEvalTask task, int64_t n) {
  if (task == LEvalTask::kMixed) {
    return gen.MixedTrace(n);
  }
  std::vector<LongContextRequest> v;
  for (int64_t i = 0; i < n; ++i) {
    v.push_back(gen.Next(task));
  }
  return v;
}

}  // namespace

int main() {
  PrintTitle("Figure 10: long-context TTFT by sub-task (batch = 1)");
  const ModelConfig models[] = {ModelConfig::Llama2_7B(), ModelConfig::Llama2_13B(),
                                ModelConfig::Opt30B()};
  const LEvalTask tasks[] = {LEvalTask::kPaperAssistant, LEvalTask::kGsm100,
                             LEvalTask::kQuality, LEvalTask::kMixed};

  for (const auto task : tasks) {
    PrintSection(std::string("(") + LEvalTaskName(task) + ")");
    std::printf("%-12s | %10s %10s %10s %10s | %9s %9s\n", "model", "Recomp", "KVoff",
                "HCache", "Ideal", "vs KVoff", "vs Recomp");
    for (const auto& cfg : models) {
      const Platform platform =
          cfg.name == "OPT-30B" ? Platform::DefaultTestbed(4, 4) : Platform::DefaultTestbed(1, 4);
      LEvalGenerator gen(1000 + static_cast<uint64_t>(task));
      const auto trace = TaskTrace(gen, task, 100);
      double ttft[4] = {};
      const RestoreMethod methods[] = {RestoreMethod::kRecompute, RestoreMethod::kKvOffload,
                                       RestoreMethod::kHCache, RestoreMethod::kIdeal};
      for (int m = 0; m < 4; ++m) {
        ServingOptions o;
        o.method = methods[m];
        ttft[m] = ServingEngine(platform, cfg, o).RunLongContextSerial(trace).ttft.Mean();
      }
      std::printf("%-12s | %9.3fs %9.3fs %9.3fs %9.3fs | %8.2fx %8.2fx\n", cfg.name.c_str(),
                  ttft[0], ttft[1], ttft[2], ttft[3], ttft[1] / ttft[2], ttft[0] / ttft[2]);
    }
  }
  PrintNote("HCache 1.62-1.93x vs KV offload, 2.66-5.73x vs recomputation (Fig 10).");
  return 0;
}
