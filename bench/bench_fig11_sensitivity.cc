// Figure 11: restoration-speed sensitivity analysis.
//
//   (a-c) varying GPU (DRAM backend): A100/4090/A30 with 7B; H800/A100/L20 with 13B;
//         H800 / 4xA100 / 2xH800 with OPT-30B.
//   (d-f) varying number of SSDs: 1-4 for 7B/13B, 4-16 for OPT-30B.
//   (g-i) varying context length: up to 16K (7B/13B) and 32K (OPT-30B).
//
// Paper: HCache outperforms KV offload by 1.33-1.81x (GPU sweep), 1.7-2.6x (SSD sweep),
// and recomputation by 5.04-9.05x; recompute speed drops ~28% from 1K to 16K context.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/restorer.h"

using namespace hcache;

namespace {

void PrintRow(const std::string& label, const Restorer& r, int64_t history) {
  const double rec = r.Restore(RestoreMethod::kRecompute, history).TokensPerSecond();
  const double kv = r.Restore(RestoreMethod::kKvOffload, history).TokensPerSecond();
  const double h = r.Restore(RestoreMethod::kHCache, history).TokensPerSecond();
  std::printf("  %-18s | %8.1fK %8.1fK %8.1fK | %6.2fx %6.2fx\n", label.c_str(), rec / 1e3,
              kv / 1e3, h / 1e3, h / kv, h / rec);
}

void Header() {
  std::printf("  %-18s | %8s %8s %8s | %6s %6s\n", "", "Recomp", "KVoff", "HCache",
              "vs KV", "vs RE");
}

void GpuSweep() {
  PrintSection("(a-c) varying GPU, DRAM backend, history=1024");
  struct Entry {
    const char* label;
    Platform platform;
    ModelConfig cfg;
  };
  const Entry entries[] = {
      {"7B  / A100", Platform::CloudDram(GpuSpec::A100()), ModelConfig::Llama2_7B()},
      {"7B  / 4090", Platform::CloudDram(GpuSpec::Rtx4090()), ModelConfig::Llama2_7B()},
      {"7B  / A30", Platform::CloudDram(GpuSpec::A30()), ModelConfig::Llama2_7B()},
      {"13B / H800", Platform::CloudDram(GpuSpec::H800()), ModelConfig::Llama2_13B()},
      {"13B / A100", Platform::CloudDram(GpuSpec::A100()), ModelConfig::Llama2_13B()},
      {"13B / L20", Platform::CloudDram(GpuSpec::L20()), ModelConfig::Llama2_13B()},
      {"30B / H800", Platform::CloudDram(GpuSpec::H800()), ModelConfig::Opt30B()},
      {"30B / 4xA100", Platform::CloudDram(GpuSpec::A100(), 4), ModelConfig::Opt30B()},
      {"30B / 2xH800", Platform::CloudDram(GpuSpec::H800(), 2), ModelConfig::Opt30B()},
  };
  Header();
  for (const auto& e : entries) {
    PrintRow(e.label, Restorer(e.platform, e.cfg), 1024);
  }
  PrintNote("HCache 1.33-1.81x vs KV offload, 5.04-9.05x vs recompute across GPUs.");
}

void SsdSweep() {
  PrintSection("(d-f) varying number of SSDs, history=1024");
  Header();
  for (const int ssds : {1, 2, 3, 4}) {
    PrintRow("7B  / " + std::to_string(ssds) + " SSD",
             Restorer(Platform::DefaultTestbed(1, ssds), ModelConfig::Llama2_7B()), 1024);
  }
  for (const int ssds : {1, 2, 3, 4}) {
    PrintRow("13B / " + std::to_string(ssds) + " SSD",
             Restorer(Platform::DefaultTestbed(1, ssds), ModelConfig::Llama2_13B()), 1024);
  }
  for (const int ssds : {4, 8, 12, 16}) {
    PrintRow("30B / " + std::to_string(ssds) + " SSD",
             Restorer(Platform::DefaultTestbed(4, ssds), ModelConfig::Opt30B()), 1024);
  }
  PrintNote("HCache 1.7-2.6x vs KV offload when IO-starved (2.09-2.66x at 1 SSD/GPU);");
  PrintNote("1.33-1.81x when disks are plentiful; 2.3-6.1x vs recompute (Fig 11d-f).");
}

void CtxSweep() {
  PrintSection("(g-i) varying context length, default testbed");
  struct Entry {
    ModelConfig cfg;
    Platform platform;
    std::vector<int64_t> ctx;
  };
  const Entry entries[] = {
      {ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4), {1024, 4096, 8192, 12288, 16384}},
      {ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4), {1024, 4096, 8192, 12288, 16384}},
      {ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4), {1024, 8192, 16384, 24576, 32768}},
  };
  for (const auto& e : entries) {
    std::printf(" %s:\n", e.cfg.name.c_str());
    Header();
    Restorer r(e.platform, e.cfg);
    for (const int64_t n : e.ctx) {
      PrintRow(std::to_string(n) + " tok", r, n);
    }
  }
  PrintNote("recompute speed drops ~28% from 1K to 16K (7B); HCache and KV offload");
  PrintNote("scale flat with history length (Fig 11g-i).");
}

}  // namespace

int main(int argc, char** argv) {
  PrintTitle("Figure 11: sensitivity analysis (restoration speed, K tokens/s)");
  std::string part = "all";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--part=", 7) == 0) {
      part = argv[i] + 7;
    }
  }
  if (part == "all" || part == "gpu") {
    GpuSweep();
  }
  if (part == "all" || part == "ssd") {
    SsdSweep();
  }
  if (part == "all" || part == "ctx") {
    CtxSweep();
  }
  return 0;
}
