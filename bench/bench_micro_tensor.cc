// Microbenchmarks (google-benchmark) for the functional-plane kernels: GEMM, the
// restoration projection, RoPE, softmax, and a tiny-model forward pass. These measure
// this host's CPU, not the paper's GPUs — they exist to keep the functional plane's
// performance honest (and to catch accidental kernel regressions).
#include <benchmark/benchmark.h>

#include <numeric>

#include "src/common/rng.h"
#include "src/model/transformer.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/rope.h"

namespace hcache {
namespace {

Tensor RandomTensor(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Tensor t({r, c});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

void BM_GemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor(n, n, 1), b = RandomTensor(n, n, 2), c({n, n});
  for (auto _ : state) {
    GemmNN(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(GemmFlops(n, n, n)));
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_KvProjection(benchmark::State& state) {
  // The restoration hot loop: [tokens, hidden] x [hidden, kv]^T.
  const int64_t tokens = state.range(0);
  const int64_t hidden = 256;
  Tensor x = RandomTensor(tokens, hidden, 3);
  Tensor w = RandomTensor(hidden, hidden, 4);
  for (auto _ : state) {
    Tensor k = MatMulTransposedB(x, w);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_KvProjection)->Arg(16)->Arg(64)->Arg(256);

void BM_Rope(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Tensor x = RandomTensor(tokens, 256, 5);
  for (auto _ : state) {
    ApplyRopeContiguous(x, 0, 4, 64);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_Rope)->Arg(64)->Arg(512);

void BM_Softmax(benchmark::State& state) {
  Tensor x = RandomTensor(64, state.range(0), 6);
  for (auto _ : state) {
    Tensor t = x.Clone();
    SoftmaxLastDim(t);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_TinyModelPrefill(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 7);
  Transformer model(&weights);
  Rng rng(8);
  std::vector<int32_t> tokens(static_cast<size_t>(state.range(0)));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }
  for (auto _ : state) {
    KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 16));
    PagedKvSequence seq(&pool);
    Tensor out = model.Forward(tokens, &seq);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TinyModelPrefill)->Arg(32)->Arg(128);

void BM_RestoreLayerKv(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 9);
  Transformer model(&weights);
  const int64_t n = state.range(0);
  Tensor hidden = RandomTensor(n, cfg.hidden_dim, 10);
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  for (auto _ : state) {
    Tensor k, v;
    model.RestoreLayerKv(1, hidden, positions.data(), &k, &v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RestoreLayerKv)->Arg(64)->Arg(256);

}  // namespace
}  // namespace hcache

BENCHMARK_MAIN();
