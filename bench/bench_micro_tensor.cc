// Microbenchmarks (google-benchmark) for the functional-plane kernels: GEMM, the
// restoration projection, RoPE, softmax, and a tiny-model forward pass. These measure
// this host's CPU, not the paper's GPUs — they exist to keep the functional plane's
// performance honest (and to catch accidental kernel regressions).
//
// Besides the google-benchmark table, main() runs a thread-scaling sweep over the
// acceptance-gate shapes (1024^3 GemmNN, the 256-token KV projection, and the large-k
// GemmNT point) and records ops/s, thread count, and speedup vs 1 thread in
// BENCH_micro_tensor.json — the repo's persisted perf trajectory.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <numeric>
#include <thread>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/transformer.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/rope.h"

namespace hcache {
namespace {

Tensor RandomTensor(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Tensor t({r, c});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

void BM_GemmNN(benchmark::State& state) {
  const int64_t n = state.range(0);
  Tensor a = RandomTensor(n, n, 1), b = RandomTensor(n, n, 2), c({n, n});
  for (auto _ : state) {
    GemmNN(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(GemmFlops(n, n, n)));
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_KvProjection(benchmark::State& state) {
  // The restoration hot loop: [tokens, hidden] x [hidden, kv]^T.
  const int64_t tokens = state.range(0);
  const int64_t hidden = 256;
  Tensor x = RandomTensor(tokens, hidden, 3);
  Tensor w = RandomTensor(hidden, hidden, 4);
  for (auto _ : state) {
    Tensor k = MatMulTransposedB(x, w);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_KvProjection)->Arg(16)->Arg(64)->Arg(256);

void BM_GemmNTLargeK(benchmark::State& state) {
  // The satellite regression gate for GemmNT's cache blocking: a deep-k projection
  // ([256, k] x [256, k]^T) that thrashed L2 under the old unblocked dot-product loop.
  const int64_t k = state.range(0);
  Tensor x = RandomTensor(256, k, 11), w = RandomTensor(256, k, 12), c({256, 256});
  for (auto _ : state) {
    GemmNT(x.data(), w.data(), c.data(), 256, k, 256);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(GemmFlops(256, k, 256)));
}
BENCHMARK(BM_GemmNTLargeK)->Arg(1024)->Arg(4096);

void BM_Rope(benchmark::State& state) {
  const int64_t tokens = state.range(0);
  Tensor x = RandomTensor(tokens, 256, 5);
  for (auto _ : state) {
    ApplyRopeContiguous(x, 0, 4, 64);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_Rope)->Arg(64)->Arg(512);

void BM_Softmax(benchmark::State& state) {
  Tensor x = RandomTensor(64, state.range(0), 6);
  for (auto _ : state) {
    Tensor t = x.Clone();
    SoftmaxLastDim(t);
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_TinyModelPrefill(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 7);
  Transformer model(&weights);
  Rng rng(8);
  std::vector<int32_t> tokens(static_cast<size_t>(state.range(0)));
  for (auto& t : tokens) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }
  for (auto _ : state) {
    KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 16));
    PagedKvSequence seq(&pool);
    Tensor out = model.Forward(tokens, &seq);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TinyModelPrefill)->Arg(32)->Arg(128);

void BM_RestoreLayerKv(benchmark::State& state) {
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 9);
  Transformer model(&weights);
  const int64_t n = state.range(0);
  Tensor hidden = RandomTensor(n, cfg.hidden_dim, 10);
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  for (auto _ : state) {
    Tensor k, v;
    model.RestoreLayerKv(1, hidden, positions.data(), &k, &v);
    benchmark::DoNotOptimize(k.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RestoreLayerKv)->Arg(64)->Arg(256);

// ---- JSON thread-scaling sweep -------------------------------------------------------

// The pre-PR kernels, kept verbatim as live baselines so the JSON records the actual
// packed-kernel speedup on whatever host runs the bench (the acceptance gates are
// >=3x on the 1024^3 GEMM and >=1.5x on the 256-token KV projection).
void PreprScalarGemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
                       int64_t n) {
  constexpr int64_t kBlockM = 64, kBlockK = 256, kBlockN = 256;
  std::memset(c, 0, static_cast<size_t>(m) * static_cast<size_t>(n) * sizeof(float));
  for (int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const int64_t i_end = std::min(i0 + kBlockM, m);
    for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const int64_t p_end = std::min(p0 + kBlockK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const int64_t j_end = std::min(j0 + kBlockN, n);
        for (int64_t i = i0; i < i_end; ++i) {
          const float* a_row = a + i * k;
          float* c_row = c + i * n;
          for (int64_t p = p0; p < p_end; ++p) {
            const float a_ip = a_row[p];
            const float* b_row = b + p * n;
            for (int64_t j = j0; j < j_end; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

void PreprScalarGemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
                       int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] = acc;
    }
  }
}

// Best-of-`reps` wall time of `fn` after one warmup run.
template <typename Fn>
double TimeSeconds(Fn&& fn, int reps = 3) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, s);
  }
  return best;
}

struct SweepCase {
  const char* name;
  double flops;                   // per invocation (0 when items are the better unit)
  double items;                   // per invocation
  std::function<void()> run;
  std::function<void()> prepr;    // pre-PR scalar baseline (may be empty)
};

void WriteMicroTensorJson() {
  const size_t hw = std::thread::hardware_concurrency();
  const size_t max_threads = hw > 0 ? hw : 1;

  // Operands for the acceptance-gate shapes.
  Tensor a = RandomTensor(1024, 1024, 21), b = RandomTensor(1024, 1024, 22),
         c({1024, 1024});
  Tensor px = RandomTensor(256, 256, 23), pw = RandomTensor(256, 256, 24);
  Tensor lx = RandomTensor(256, 4096, 25), lw = RandomTensor(256, 4096, 26),
         lc({256, 256});

  std::vector<SweepCase> cases;
  cases.push_back({"gemm_nn_1024", GemmFlops(1024, 1024, 1024), 1.0,
                   [&] { GemmNN(a.data(), b.data(), c.data(), 1024, 1024, 1024); },
                   [&] { PreprScalarGemmNN(a.data(), b.data(), c.data(), 1024, 1024,
                                           1024); }});
  cases.push_back({"kv_projection_256", GemmFlops(256, 256, 256), 256.0,
                   [&] {
                     Tensor k = MatMulTransposedB(px, pw);
                     benchmark::DoNotOptimize(k.data());
                   },
                   [&] {
                     Tensor k({256, 256});
                     PreprScalarGemmNT(px.data(), pw.data(), k.data(), 256, 256, 256);
                     benchmark::DoNotOptimize(k.data());
                   }});
  cases.push_back({"gemm_nt_256x4096x256", GemmFlops(256, 4096, 256), 1.0,
                   [&] { GemmNT(lx.data(), lw.data(), lc.data(), 256, 4096, 256); },
                   [&] { PreprScalarGemmNT(lx.data(), lw.data(), lc.data(), 256, 4096,
                                           256); }});

  JsonValue benches = JsonValue::Array();
  PrintSection("thread scaling (JSON sweep)");
  std::vector<size_t> thread_counts = {1};
  if (max_threads > 1) {
    thread_counts.push_back(max_threads);
  }
  for (auto& sc : cases) {
    const double prepr_seconds = sc.prepr ? TimeSeconds(sc.prepr) : 0.0;
    if (sc.prepr) {
      const double gflops = sc.flops > 0 ? sc.flops / prepr_seconds / 1e9 : 0.0;
      std::printf("  %-24s pre-PR scalar %.4f s  %7.2f GFLOP/s\n", sc.name,
                  prepr_seconds, gflops);
      JsonValue row = JsonValue::Object();
      row.Set("name", std::string(sc.name) + "_prepr_scalar")
          .Set("threads", static_cast<int64_t>(1))
          .Set("seconds", prepr_seconds)
          .Set("gflops", gflops)
          .Set("items_per_s", sc.items / prepr_seconds);
      benches.Push(std::move(row));
    }
    double serial_seconds = 0.0;
    for (const size_t threads : thread_counts) {
      ThreadPool::ResizeShared(threads);
      const double s = TimeSeconds(sc.run);
      if (threads == 1) {
        serial_seconds = s;
      }
      const double gflops = sc.flops > 0 ? sc.flops / s / 1e9 : 0.0;
      const double speedup = serial_seconds / s;
      const double vs_prepr = prepr_seconds > 0 ? prepr_seconds / s : 0.0;
      std::printf(
          "  %-24s threads=%-2zu  %.4f s  %7.2f GFLOP/s  speedup %.2fx  vs-pre-PR "
          "%.2fx\n",
          sc.name, threads, s, gflops, speedup, vs_prepr);
      JsonValue row = JsonValue::Object();
      row.Set("name", sc.name)
          .Set("threads", static_cast<int64_t>(threads))
          .Set("seconds", s)
          .Set("gflops", gflops)
          .Set("items_per_s", sc.items / s)
          .Set("speedup_vs_1thread", speedup)
          .Set("speedup_vs_prepr_scalar", vs_prepr);
      benches.Push(std::move(row));
    }
  }
  ThreadPool::ResizeShared(max_threads);

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "micro_tensor")
      .Set("hardware_concurrency", static_cast<int64_t>(max_threads))
      .Set("note",
           "speedup_vs_1thread compares the same packed kernel at 1 vs N shared-pool "
           "threads; speedup_vs_prepr_scalar compares against the pre-PR scalar "
           "kernels compiled at the same flags (*_prepr_scalar rows)")
      .Set("benchmarks", std::move(benches));
  WriteJsonFile("BENCH_micro_tensor.json", doc);
}

}  // namespace
}  // namespace hcache

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  hcache::WriteMicroTensorJson();
  return 0;
}
