// Figure 9: end-to-end serving on the ShareGPT4 multi-round-conversation trace.
//
// TTFT (a-c) and TBT (d-f) versus session arrival rate for Llama2-7B, Llama2-13B
// (1x A100 + 4 SSDs) and OPT-30B (4x A100 TP, 1 SSD each). Sessions arrive Poisson;
// rounds are spaced by a 30 s think time; the KV cache is evicted when a round ends.
//
// Paper: HCache improves TTFT by 1.27-1.90x over KV offload and 2.21-3.57x over
// recomputation; TBT stays within 4% of ideal; HCache sustains ~11% more load.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/serving/engine.h"

using namespace hcache;

namespace {

// Round interval: the paper uses 30 s; we keep the ratio of think time to service time
// but shrink the trace so the bench completes quickly on one core.
constexpr double kRoundInterval = 30.0;
constexpr int64_t kSessions = 250;

void RunModel(const ModelConfig& cfg, const Platform& platform,
              const std::vector<double>& loads, int64_t max_history) {
  std::printf("%s (%s), %lld sessions, %.0fs round interval\n", cfg.name.c_str(),
              platform.Describe().c_str(), static_cast<long long>(kSessions),
              kRoundInterval);
  std::printf("  %-10s |", "load (s/s)");
  for (const double l : loads) {
    std::printf(" %8.2f", l);
  }
  std::printf("\n");
  const RestoreMethod methods[] = {RestoreMethod::kRecompute, RestoreMethod::kKvOffload,
                                   RestoreMethod::kHCache, RestoreMethod::kIdeal};
  for (const auto metric : {0, 1}) {  // 0 = TTFT, 1 = TBT
    std::printf("  %s:\n", metric == 0 ? "TTFT (s)" : "TBT (s)");
    for (const auto method : methods) {
      std::printf("  %-10s |", RestoreMethodName(method));
      for (const double load : loads) {
        ServingOptions o;
        o.method = method;
        o.max_history_tokens = max_history;
        ServingEngine engine(platform, cfg, o);
        const ServingReport rep = engine.RunConversations(load, kSessions, kRoundInterval,
                                                          /*seed=*/97);
        std::printf(" %8.3f", metric == 0 ? rep.ttft.Mean() : rep.tbt.Mean());
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  PrintTitle("Figure 9: ShareGPT4 multi-round conversation serving");
  // Our synthetic conversations run longer (~6 rounds) than the sampled ShareGPT4
  // sessions, so offered load per session is heavier and saturation arrives at a lower
  // sessions/s than the paper's axis; each sweep ends at our saturation point, as the
  // paper's does. The 13B deployment caps context at 8K (its pool holds ~15K tokens).
  RunModel(ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4),
           {0.05, 0.1, 0.2, 0.3, 0.4}, 16384);
  RunModel(ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4),
           {0.02, 0.04, 0.06, 0.08, 0.10}, 8192);
  RunModel(ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4),
           {0.1, 0.2, 0.3, 0.4, 0.5}, 16384);
  PrintNote("TTFT: HCache 1.27-1.90x vs KV offload, 2.21-3.57x vs recompute (Fig 9a-c);");
  PrintNote("TBT: HCache within 4% of ideal (Fig 9d-f).");
  return 0;
}
