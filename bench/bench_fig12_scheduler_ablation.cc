// Figure 12: ablation of the bubble-free restoration scheduler.
//
// Three hardware settings — IO-sufficient (A30 + 7B + 4 SSDs), compute-sufficient
// (A100 + 7B + 1 SSD), balanced (A100 + 13B + 4 SSDs) — across five methods:
// Recomputation, KV offload, HCache-O (no scheduler), NaiveHybrid (no hidden states),
// and full HCache.
//
// Paper: HCache beats NaiveHybrid by 1.28-1.42x; the scheduler lifts HCache-O by
// 1.35-1.64x on skewed platforms; HCache beats KV offload by 1.45-2.66x throughout.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/restorer.h"

using namespace hcache;

int main() {
  PrintTitle("Figure 12: bubble-free scheduler ablation (history = 1024)");
  struct Setting {
    const char* label;
    Platform platform;
    ModelConfig cfg;
  };
  const Setting settings[] = {
      {"IO-Sufficient  (A30 +7B +4SSD)", Platform::IoSufficient(), ModelConfig::Llama2_7B()},
      {"Compute-Suff.  (A100+7B +1SSD)", Platform::ComputeSufficient(),
       ModelConfig::Llama2_7B()},
      {"Balanced       (A100+13B+4SSD)", Platform::Balanced(), ModelConfig::Llama2_13B()},
  };
  const RestoreMethod methods[] = {RestoreMethod::kRecompute, RestoreMethod::kKvOffload,
                                   RestoreMethod::kHCacheOnly, RestoreMethod::kNaiveHybrid,
                                   RestoreMethod::kHCache};

  for (const auto& s : settings) {
    PrintSection(s.label);
    Restorer r(s.platform, s.cfg);
    double speeds[5] = {};
    for (int m = 0; m < 5; ++m) {
      const RestoreResult res = r.Restore(methods[m], 1024);
      speeds[m] = res.TokensPerSecond();
      std::printf("  %-11s %8.1fK tok/s   bubble(compute/io) %5.1f%% / %5.1f%%",
                  RestoreMethodName(methods[m]), speeds[m] / 1e3,
                  100.0 * res.compute_bubble / std::max(res.total_time, 1e-12),
                  100.0 * res.io_bubble / std::max(res.total_time, 1e-12));
      if (methods[m] == RestoreMethod::kHCache) {
        std::printf("   scheme: %s", res.scheme.ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("  -> HCache vs NaiveHybrid %.2fx | vs HCache-O %.2fx | vs KVoff %.2fx\n",
                speeds[4] / speeds[3], speeds[4] / speeds[2], speeds[4] / speeds[1]);
  }
  PrintNote("HCache vs NaiveHybrid 1.28-1.42x; scheduler lifts HCache-O 1.35-1.64x on");
  PrintNote("skewed platforms; HCache vs KV offload 1.45-2.66x (Fig 12, Section 6.3.1).");
  return 0;
}
