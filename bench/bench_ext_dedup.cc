// Extension bench: content-addressed dedup plane under a popularity-skewed RAG trace.
//
// The paper generates RAG document contexts offline (§2.3) and restores them at query
// time; at fleet scale the sessions are Zipf-skewed over a small hot document set, so
// most per-session hidden-state chunks are byte-identical copies. This bench measures
// what DedupBackend buys on that trace, on the functional (tiny-model) plane with real
// chunk contents:
//
//  (1) Dedup sweep (deterministic): sessions drawn from a Zipfian document-popularity
//      distribution (s = 1.0) are offline-ingested through FunctionalHCache into a
//      DedupBackend; per row, logical vs physical chunks/bytes. Acceptance: at the
//      main row, physical bytes <= 0.5x logical bytes (the ROADMAP item 2 bar).
//
//  (2) Bit-identical restores: the SAME trace ingested into a plain (non-dedup) store
//      and into the dedup store; every session's hidden states are read back from
//      both and byte-compared, and sampled queries restored from the dedup store must
//      greedy-decode identically to a from-scratch document prefill. Acceptance: all
//      comparisons exact — sharing bytes must be invisible above the seam.
//
//  (3) DRAM-hit A/B at equal budget: dedup(tiered(file)) vs plain tiered(file), both
//      given a DRAM budget sized between the unique and the duplicated working set
//      (1.25x the measured physical bytes). The hot tier under dedup holds only
//      unique chunks, so the skewed working set fits where the duplicated one
//      spilled; the restore phase's DRAM hit-byte ratio must be strictly higher.
//
// Emits BENCH_ext_dedup.json with the rows and acceptance flags CI archives.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

constexpr uint64_t kSeed = 99;
constexpr int64_t kNumDocs = 8;
constexpr double kZipfAlpha = 1.0;
constexpr int64_t kChunkTokens = 8;
constexpr int kMaxSessions = 128;
constexpr int kMainSessions = 32;  // the acceptance row / restore + A/B trace
constexpr int kSweepSessions[] = {8, 32, 128};
constexpr int kNumQueries = 8;

struct Trace {
  std::map<int64_t, std::vector<int32_t>> doc_tokens;
  std::vector<int64_t> session_doc;  // session id -> retrieved document
};

// One deterministic trace; sweep rows use nested prefixes of the session list so the
// 32-session acceptance row is literally contained in the 128-session row.
Trace MakeTrace(const ModelConfig& cfg) {
  Trace t;
  Rng rng(kSeed);
  for (int64_t doc = 0; doc < kNumDocs; ++doc) {
    std::vector<int32_t> tokens(static_cast<size_t>(24 + 8 * doc));
    for (auto& tok : tokens) {
      tok = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }
    t.doc_tokens[doc] = std::move(tokens);
  }
  ZipfianGenerator popularity(kNumDocs, kZipfAlpha);
  t.session_doc.reserve(kMaxSessions);
  for (int s = 0; s < kMaxSessions; ++s) {
    t.session_doc.push_back(static_cast<int64_t>(popularity.Next(rng)));
  }
  return t;
}

// Offline ingestion: forward each session's document with capture, seal, drop the KV.
void Ingest(FunctionalHCache& engine, KvBlockPool& pool, Transformer& model,
            const Trace& trace, int num_sessions) {
  for (int s = 0; s < num_sessions; ++s) {
    PagedKvSequence ingest(&pool);
    model.Forward(trace.doc_tokens.at(trace.session_doc[static_cast<size_t>(s)]),
                  &ingest, engine.BeginCapture(s));
    engine.SealContext(s);
  }
}

bool RestoreSession(FunctionalHCache& engine, const ModelConfig& cfg,
                    const Trace& trace, int64_t session, PagedKvSequence* seq) {
  const auto& doc = trace.doc_tokens.at(trace.session_doc[static_cast<size_t>(session)]);
  PartitionScheme all_hidden;
  all_hidden.layers_hidden = cfg.num_layers;
  all_hidden.complement = ComplementMethod::kNone;
  if (!seq->EnsureCapacity(static_cast<int64_t>(doc.size()))) return false;
  seq->CommitTokens(static_cast<int64_t>(doc.size()));
  seq->Evict();
  return engine.RestoreContext(session, all_hidden, {}, seq);
}

JsonValue DedupStatsJson(const DedupBackend& store) {
  const StorageStats s = store.Stats();
  JsonValue j = JsonValue::Object();
  j.Set("logical_chunks", s.chunks_stored);
  j.Set("logical_bytes", s.bytes_stored);
  j.Set("unique_chunks", s.unique_chunks);
  j.Set("physical_bytes", store.PhysicalBytes());
  j.Set("dedup_hits", s.dedup_hits);
  j.Set("dedup_bytes_saved", s.dedup_bytes_saved);
  j.Set("collision_chains", store.collision_chains());
  return j;
}

}  // namespace

int main() {
  PrintTitle("Extension: content-addressed dedup on a Zipf-skewed RAG trace");
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 48, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 13);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 256, 8));
  const Trace trace = MakeTrace(cfg);
  const auto dir = std::filesystem::temp_directory_path() / "hcache_dedup_bench";
  std::filesystem::remove_all(dir);

  std::printf("%lld docs, Zipf s=%.1f, %lld-token chunks, fp32, seed %llu\n",
              static_cast<long long>(kNumDocs), kZipfAlpha,
              static_cast<long long>(kChunkTokens),
              static_cast<unsigned long long>(kSeed));

  // ---- (1) dedup sweep ----
  PrintSection("dedup sweep: sessions x (logical vs physical footprint)");
  std::printf("  %8s | %9s %12s | %9s %12s | %7s %9s\n", "sessions", "log-chnk",
              "log-bytes", "uniq-chnk", "phys-bytes", "dedup", "hit-wr");
  JsonValue sweep = JsonValue::Array();
  int64_t main_logical_bytes = 0, main_physical_bytes = 0;
  double main_ratio = 0.0;
  for (const int sessions : kSweepSessions) {
    MemoryBackend mem(1 << 20);
    DedupBackend store(&mem);
    FunctionalHCache engine(&model, &store, /*flush_pool=*/nullptr, kChunkTokens);
    Ingest(engine, pool, model, trace, sessions);
    store.Quiesce();
    const StorageStats s = store.Stats();
    const int64_t phys_bytes = store.PhysicalBytes();
    const double ratio = phys_bytes > 0
                             ? static_cast<double>(s.bytes_stored) /
                                   static_cast<double>(phys_bytes)
                             : 0.0;
    std::printf("  %8d | %9lld %12lld | %9lld %12lld | %6.2fx %9lld\n", sessions,
                static_cast<long long>(s.chunks_stored),
                static_cast<long long>(s.bytes_stored),
                static_cast<long long>(s.unique_chunks),
                static_cast<long long>(phys_bytes), ratio,
                static_cast<long long>(s.dedup_hits));
    if (sessions == kMainSessions) {
      main_logical_bytes = s.bytes_stored;
      main_physical_bytes = phys_bytes;
      main_ratio = ratio;
    }
    JsonValue row = JsonValue::Object();
    row.Set("sessions", sessions);
    row.Set("storage", DedupStatsJson(store));
    row.Set("dedup_ratio_bytes", ratio);
    sweep.Push(std::move(row));
  }
  const bool dedup_meets_bar =
      main_physical_bytes > 0 && 2 * main_physical_bytes <= main_logical_bytes;
  std::printf("\n  %d-session row: physical %lld <= 0.5 x logical %lld: %s\n",
              kMainSessions, static_cast<long long>(main_physical_bytes),
              static_cast<long long>(main_logical_bytes),
              dedup_meets_bar ? "yes [bar met]" : "NO");
  PrintNote("the paper stores per-context hidden states (§3.1); content addressing is");
  PrintNote("this repo's fleet extension — one physical copy per hot document.");

  // ---- (2) bit-identical restores vs a non-dedup store ----
  PrintSection("restore equivalence: dedup store vs plain store, byte-compared");
  MemoryBackend plain_mem(1 << 20);
  MemoryBackend dedup_mem(1 << 20);
  DedupBackend dedup_store(&dedup_mem);
  FunctionalHCache plain_engine(&model, &plain_mem, nullptr, kChunkTokens);
  FunctionalHCache dedup_engine(&model, &dedup_store, nullptr, kChunkTokens);
  Ingest(plain_engine, pool, model, trace, kMainSessions);
  Ingest(dedup_engine, pool, model, trace, kMainSessions);
  dedup_store.Quiesce();

  int64_t layers_compared = 0, layers_identical = 0;
  for (int64_t s = 0; s < kMainSessions; ++s) {
    const int64_t n = static_cast<int64_t>(
        trace.doc_tokens.at(trace.session_doc[static_cast<size_t>(s)]).size());
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      const Tensor a = plain_engine.ReadHidden(s, layer, n);
      const Tensor b = dedup_engine.ReadHidden(s, layer, n);
      ++layers_compared;
      layers_identical += a.numel() == b.numel() &&
                          std::memcmp(a.data(), b.data(),
                                      static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
    }
  }
  const bool restores_bit_identical = layers_identical == layers_compared;

  Rng query_rng(kSeed + 1);
  int queries_ok = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    const int64_t session =
        static_cast<int64_t>(query_rng.NextBounded(static_cast<uint64_t>(kMainSessions)));
    const auto& doc = trace.doc_tokens.at(trace.session_doc[static_cast<size_t>(session)]);
    std::vector<int32_t> question(6);
    for (auto& t : question) {
      t = static_cast<int32_t>(
          query_rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }
    PagedKvSequence seq(&pool);
    if (!RestoreSession(dedup_engine, cfg, trace, session, &seq)) continue;
    model.Forward(question, &seq);
    const auto answer = model.GreedyDecode(question.back(), 5, &seq);
    PagedKvSequence base(&pool);
    model.Forward(doc, &base);
    model.Forward(question, &base);
    queries_ok += answer == model.GreedyDecode(question.back(), 5, &base);
  }
  const bool queries_exact = queries_ok == kNumQueries;
  std::printf("  hidden layers byte-identical across stores: %lld/%lld\n",
              static_cast<long long>(layers_identical),
              static_cast<long long>(layers_compared));
  std::printf("  queries decoding identically to full prefill: %d/%d\n", queries_ok,
              kNumQueries);

  // ---- (3) DRAM-hit A/B at equal budget: dedup(tiered(file)) vs tiered(file) ----
  // Budget sized from the measured footprints: 1.25x the unique bytes — the unique
  // working set fits, the duplicated one (logical bytes) decisively does not.
  const int64_t dram_budget = main_physical_bytes + main_physical_bytes / 4;
  PrintSection("DRAM-hit A/B at equal budget (" + std::to_string(dram_budget >> 10) +
               " KiB): dedup(tiered(file)) vs tiered(file)");
  TieredOptions tier_opts;  // deterministic single-stripe sync tier for measurement
  tier_opts.num_shards = 1;
  tier_opts.writeback = TieredOptions::Writeback::kSync;

  struct AbRow {
    std::string stack;
    double hit_ratio = 0.0;
    int64_t dram_hit_bytes = 0, cold_hit_bytes = 0;
    int restored = 0;
  };
  std::vector<AbRow> ab_rows;
  for (const bool with_dedup : {false, true}) {
    const auto leg_dir = dir / (with_dedup ? "dedup" : "plain");
    FileBackend disk({leg_dir.string()}, 1 << 20);
    TieredBackend tier(&disk, dram_budget, tier_opts);
    DedupBackend dedup(&tier);
    StorageBackend* store = with_dedup ? static_cast<StorageBackend*>(&dedup)
                                       : static_cast<StorageBackend*>(&tier);
    FunctionalHCache engine(&model, store, nullptr, kChunkTokens);
    Ingest(engine, pool, model, trace, kMainSessions);
    store->Quiesce();
    const StorageStats before = tier.Stats();  // ingest-phase reads excluded

    AbRow row;
    row.stack = with_dedup ? "dedup(tiered(file))" : "tiered(file)";
    for (int64_t s = 0; s < kMainSessions; ++s) {
      PagedKvSequence seq(&pool);
      row.restored += RestoreSession(engine, cfg, trace, s, &seq);
    }
    const StorageStats after = tier.Stats();
    row.dram_hit_bytes = after.dram_hit_bytes - before.dram_hit_bytes;
    row.cold_hit_bytes = after.cold_hit_bytes - before.cold_hit_bytes;
    const int64_t total = row.dram_hit_bytes + row.cold_hit_bytes;
    row.hit_ratio =
        total > 0 ? static_cast<double>(row.dram_hit_bytes) / static_cast<double>(total)
                  : 0.0;
    ab_rows.push_back(std::move(row));
  }
  std::printf("  %-22s %10s %14s %14s %10s\n", "stack", "restored", "dram-bytes",
              "cold-bytes", "dram-hit%");
  for (const AbRow& r : ab_rows) {
    std::printf("  %-22s %7d/%-2d %14lld %14lld %9.1f%%\n", r.stack.c_str(), r.restored,
                kMainSessions, static_cast<long long>(r.dram_hit_bytes),
                static_cast<long long>(r.cold_hit_bytes), 100.0 * r.hit_ratio);
  }
  const bool all_restored = ab_rows[0].restored == kMainSessions &&
                            ab_rows[1].restored == kMainSessions;
  const double dram_lift = ab_rows[0].hit_ratio > 0.0
                               ? ab_rows[1].hit_ratio / ab_rows[0].hit_ratio
                               : (ab_rows[1].hit_ratio > 0.0 ? 999.0 : 0.0);
  const bool dram_meets_bar =
      all_restored && ab_rows[1].hit_ratio > ab_rows[0].hit_ratio;
  std::printf("\n  restore-phase DRAM hit-ratio lift from dedup: %.2fx%s\n", dram_lift,
              dram_meets_bar ? "  [unique working set fits the budget]" : "");
  PrintNote("equal DRAM budget; only the dedup layer differs — the hot tier under");
  PrintNote("dedup caches each hot document once instead of once per session.");

  const bool acceptance =
      dedup_meets_bar && restores_bit_identical && queries_exact && dram_meets_bar;
  std::printf("\n  acceptance: %s  (physical <= 0.5x logical at Zipf s=1.0, restores "
              "bit-identical, DRAM-hit lift > 1x at equal budget)\n",
              acceptance ? "MET" : "NOT MET");

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ext_dedup");
  root.Set("model", cfg.name);
  root.Set("workload", "zipf-rag-sessions");
  root.Set("zipf_alpha", kZipfAlpha);
  root.Set("num_docs", kNumDocs);
  root.Set("chunk_tokens", kChunkTokens);
  root.Set("seed", static_cast<int64_t>(kSeed));
  root.Set("sweep", std::move(sweep));
  JsonValue restore_leg = JsonValue::Object();
  restore_leg.Set("sessions", kMainSessions);
  restore_leg.Set("hidden_layers_compared", layers_compared);
  restore_leg.Set("hidden_layers_identical", layers_identical);
  restore_leg.Set("bit_identical", restores_bit_identical);
  restore_leg.Set("queries", kNumQueries);
  restore_leg.Set("queries_decode_exact", queries_ok);
  root.Set("restore_equivalence", std::move(restore_leg));
  JsonValue ab = JsonValue::Object();
  ab.Set("dram_budget_bytes", dram_budget);
  ab.Set("sessions", kMainSessions);
  JsonValue ab_json = JsonValue::Array();
  for (const AbRow& r : ab_rows) {
    JsonValue e = JsonValue::Object();
    e.Set("stack", r.stack);
    e.Set("sessions_restored", r.restored);
    e.Set("restore_dram_hit_bytes", r.dram_hit_bytes);
    e.Set("restore_cold_hit_bytes", r.cold_hit_bytes);
    e.Set("restore_dram_hit_ratio", r.hit_ratio);
    ab_json.Push(std::move(e));
  }
  ab.Set("rows", std::move(ab_json));
  ab.Set("dram_hit_lift", dram_lift);
  ab.Set("meets_lift_bar", dram_meets_bar);
  root.Set("dram_ab", std::move(ab));
  root.Set("dedup_ratio_bytes_at_main_row", main_ratio);
  root.Set("physical_half_of_logical", dedup_meets_bar);
  root.Set("acceptance_met", acceptance);
  WriteJsonFile("BENCH_ext_dedup.json", root);
  std::filesystem::remove_all(dir);
  return acceptance ? 0 : 1;
}
