// Figure 15: performance with on-GPU KV reuse.
//
// An LRU cache of contexts sits in front of restoration; request arrivals reuse
// contexts with Zipfian skew alpha (uniform at 0). Paper: the hit ratio rises from 15%
// (uniform) to 94% (alpha=2); the GPU cache cuts TTFT 3.76-10.03x; HCache remains
// 1.67x faster than KV offload at uniform and 1.15x (1.98x vs recompute) at high skew.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/serving/engine.h"
#include "src/workload/arrival.h"

using namespace hcache;

int main() {
  PrintTitle("Figure 15: serving with on-GPU KV reuse (7B, A100 + 4 SSDs)");
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const Platform platform = Platform::DefaultTestbed(1, 4);
  LEvalGenerator gen(1500);
  const auto trace = gen.MixedTrace(600);
  const int64_t num_contexts = 64;

  // Cache sized so the uniform pattern yields the paper's ~15% hit ratio.
  int64_t mean_ctx = 0;
  for (const auto& r : trace) {
    mean_ctx += r.context_tokens;
  }
  mean_ctx /= static_cast<int64_t>(trace.size());
  const int64_t cache_tokens = mean_ctx * num_contexts * 15 / 100;

  std::printf("  %-8s | %9s | %10s %10s %10s | %8s %8s\n", "alpha", "hit-ratio", "Recomp",
              "KVoff", "HCache", "H vs KV", "H vs RE");
  for (const double alpha : {0.0, 1.2, 1.4, 1.6, 1.8, 2.0}) {
    double ttft[3] = {};
    double hit = 0;
    const RestoreMethod methods[] = {RestoreMethod::kRecompute, RestoreMethod::kKvOffload,
                                     RestoreMethod::kHCache};
    for (int m = 0; m < 3; ++m) {
      ZipfianContextChooser chooser(num_contexts, alpha, 777);
      std::vector<int64_t> ids;
      ids.reserve(trace.size());
      for (size_t i = 0; i < trace.size(); ++i) {
        ids.push_back(chooser.NextContext());
      }
      ServingOptions o;
      o.method = methods[m];
      ServingEngine engine(platform, cfg, o);
      const ServingReport rep = engine.RunWithGpuCache(trace, ids, cache_tokens);
      ttft[m] = rep.ttft.Mean();
      hit = rep.cache_hit_ratio;
    }
    std::printf("  %-8s | %8.1f%% | %8.1fms %8.1fms %8.1fms | %7.2fx %7.2fx\n",
                alpha == 0.0 ? "uniform" : std::to_string(alpha).substr(0, 3).c_str(),
                hit * 100, ttft[0] * 1e3, ttft[1] * 1e3, ttft[2] * 1e3, ttft[1] / ttft[2],
                ttft[0] / ttft[2]);
  }
  PrintNote("hit ratio 15% -> 94% as alpha goes uniform -> 2.0; cache cuts TTFT");
  PrintNote("3.76-10.03x; HCache stays 1.15-1.67x ahead of KV offload (Fig 15).");
  return 0;
}
