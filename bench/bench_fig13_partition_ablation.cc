// Figure 13: state-partition method ablation.
//
// (a) Restoration speed of token-wise, token-wise+round, and layer-wise partitioning
//     for Llama2-13B (1024-token history) on A100 + 1 SSD. Paper: naive token-wise is
//     12% slower than layer-wise; the round-up variant remains 7% slower.
// (b) GEMM restoration time of one layer vs token count — the cuBLAS tile-quantization
//     step function that motivates layer-wise partitioning.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/restorer.h"
#include "src/sim/gpu_timing.h"

using namespace hcache;

int main() {
  PrintTitle("Figure 13: state partition ablation (13B, history=1024, A100 + 1 SSD)");
  const Platform platform = Platform::ComputeSufficient();
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  Restorer r(platform, cfg);

  PrintSection("(a) restoration speed by partition method");
  const RestoreResult token_wise = r.RestoreTokenWise(1024, /*round_to_tile=*/false);
  const RestoreResult token_round = r.RestoreTokenWise(1024, /*round_to_tile=*/true);
  const RestoreResult layer_wise = r.Restore(RestoreMethod::kHCache, 1024);
  const LayerProfile prof = r.Profile(1024);
  const TokenPartition tp = SolveTokenWise(prof, 1024, false);
  const TokenPartition tpr = SolveTokenWise(prof, 1024, true);
  std::printf("  %-18s %8.1fK tok/s   (split: %lld hidden / %lld other tokens)\n",
              "Token-Wise", token_wise.TokensPerSecond() / 1e3,
              static_cast<long long>(tp.tokens_hidden),
              static_cast<long long>(tp.tokens_other));
  std::printf("  %-18s %8.1fK tok/s   (split: %lld hidden / %lld other tokens)\n",
              "Token-Wise+Round", token_round.TokensPerSecond() / 1e3,
              static_cast<long long>(tpr.tokens_hidden),
              static_cast<long long>(tpr.tokens_other));
  std::printf("  %-18s %8.1fK tok/s   (scheme: %s)\n", "Layer-Wise",
              layer_wise.TokensPerSecond() / 1e3, layer_wise.scheme.ToString().c_str());
  std::printf("  -> token-wise %.1f%% slower, +round %.1f%% slower than layer-wise\n",
              100.0 * (token_wise.total_time / layer_wise.total_time - 1.0),
              100.0 * (token_round.total_time / layer_wise.total_time - 1.0));
  PrintNote("paper splits 794/230 tokens (rounded: 768); token-wise 12% slower,");
  PrintNote("+round 7% slower than layer-wise (Fig 13a).");

  PrintSection("(b) one-layer hidden->KV GEMM time vs token count (tile quantization)");
  GpuTimingModel gpu(platform.gpu);
  std::printf("  %8s %14s\n", "tokens", "GEMM time (us)");
  for (int64_t n = 500; n <= 1100; n += 50) {
    std::printf("  %8lld %14.1f\n", static_cast<long long>(n),
                gpu.HiddenToKvTime(cfg, n) * 1e6);
  }
  PrintNote("step function: 500-1100 tokens spans 250-400us on A100 (Fig 13b).");
  return 0;
}
