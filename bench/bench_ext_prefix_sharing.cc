// Extension: prefix-sharing-aware hidden-state storage.
//
// Many contexts start with the same system prompt or retrieved document. Their prefix
// hidden states are identical (causal attention), so SharedPrefixManager stores them
// once. This bench measures, on a real (tiny) model with real file-backed storage, the
// bytes stored with and without sharing as the number of users of one prefix grows —
// and verifies every restored context decodes identically to a fresh prefill.
#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/shared_prefix.h"
#include "src/storage/file_backend.h"

using namespace hcache;

int main() {
  PrintTitle("Extension: prefix sharing (functional, file-backed)");
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 21);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 512, 8));

  const auto dir = std::filesystem::temp_directory_path() / "hcache_prefix_bench";
  std::filesystem::remove_all(dir);

  Rng rng(5);
  const int64_t prefix_len = 48;  // shared system prompt
  const int64_t suffix_len = 16;  // per-user question
  std::vector<int32_t> prefix(static_cast<size_t>(prefix_len));
  for (auto& t : prefix) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }

  std::printf("  %7s | %14s %14s | %8s | %s\n", "users", "shared bytes", "naive bytes",
              "saving", "verified");
  for (const int num_users : {1, 4, 16, 64}) {
    FileBackend store({(dir / ("d" + std::to_string(num_users))).string()}, 1 << 20);
    SharedPrefixManager mgr(&model, &store, /*chunk_tokens=*/8);
    Rng user_rng(100 + num_users);

    int verified = 0;
    int64_t pid = -1;
    for (int u = 0; u < num_users; ++u) {
      pid = mgr.InternPrefix(prefix, &pool);
      std::vector<int32_t> suffix(static_cast<size_t>(suffix_len));
      for (auto& t : suffix) {
        t = static_cast<int32_t>(user_rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
      }
      std::vector<int32_t> full = prefix;
      full.insert(full.end(), suffix.begin(), suffix.end());

      PagedKvSequence seq(&pool);
      model.Forward(full, &seq, mgr.BeginSuffixCapture(u, pid));
      mgr.SealContext(u);
      seq.Evict();
      CHECK(mgr.RestoreContext(u, pid, &seq));
      PagedKvSequence ref(&pool);
      model.Forward(full, &ref);
      verified += model.GreedyDecode(full.back(), 4, &seq) ==
                  model.GreedyDecode(full.back(), 4, &ref);
    }

    const int64_t shared_bytes = store.bytes_stored();
    const int64_t naive_bytes =
        static_cast<int64_t>(num_users) * cfg.num_layers * (prefix_len + suffix_len) *
        cfg.hidden_dim * static_cast<int64_t>(sizeof(float));
    std::printf("  %7d | %14lld %14lld | %7.2fx | %d/%d decode-exact\n", num_users,
                static_cast<long long>(shared_bytes), static_cast<long long>(naive_bytes),
                static_cast<double>(naive_bytes) / static_cast<double>(shared_bytes),
                verified, num_users);
  }
  const double asymptote = static_cast<double>(prefix_len + suffix_len) / suffix_len;
  std::printf("\n  asymptotic saving = (prefix+suffix)/suffix = %.1fx for this workload\n",
              asymptote);
  PrintNote("related GPU-side prefix reuse (PromptCache/SGLang) covers the hit path;");
  PrintNote("this shares the hidden states HCache stores on the miss path.");
  std::filesystem::remove_all(dir);
  return 0;
}
