// Extension bench: cluster serving — replica count x router policy over ONE shared
// tiered backend, on the ShareGPT multi-round conversation workload.
//
// The paper measures restoration inside a single engine; this sweep measures the
// fleet pattern its storage design enables: sessions hop between replicas (the router
// decides), each hop's restore is served by the shared DRAM-over-cold tier, and
// throughput must scale with replica count at equal per-replica hardware. Offered
// load and session count scale with the fleet so every configuration is compared at
// the same per-replica pressure.
//
// Emits BENCH_ext_cluster.json: per-config rows plus per-router 4-vs-1 scaling, with
// the acceptance flags the repo tracks (>=3x at 4 replicas, cross-replica restores).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serving/cluster.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

constexpr double kPerReplicaLoad = 0.5;  // sessions/s offered per replica
constexpr int64_t kSessionsPerReplica = 40;
constexpr double kRoundInterval = 5.0;
constexpr uint64_t kSeed = 97;
constexpr int64_t kChunkBytes = 64 * 1024;
// Shared hot-tier budget: sized so the fleet's live state does not fully fit and the
// cold tier sees traffic (the interesting regime for a shared cache).
constexpr int64_t kSharedDramBytes = 6 * kChunkBytes;

struct Row {
  int replicas = 0;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  ClusterReport rep;
};

Row RunConfig(int replicas, RouterPolicy policy) {
  Row row;
  row.replicas = replicas;
  row.policy = policy;
  MemoryBackend cold(kChunkBytes);
  TieredBackend shared(&cold, kSharedDramBytes);
  ClusterOptions o;
  o.num_replicas = replicas;
  o.router = policy;
  o.serving.method = RestoreMethod::kHCache;
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                        &shared);
  row.rep = cluster.RunConversations(kPerReplicaLoad * replicas,
                                     kSessionsPerReplica * replicas, kRoundInterval,
                                     kSeed);
  return row;
}

}  // namespace

int main() {
  PrintTitle("Extension: multi-replica cluster serving over shared tiered storage");
  std::printf("Llama2-7B per replica (%s), %.2f sessions/s and %lld sessions per "
              "replica, %.0fs think time, shared DRAM tier %lld KiB over cold\n\n",
              Platform::DefaultTestbed(1, 4).Describe().c_str(), kPerReplicaLoad,
              static_cast<long long>(kSessionsPerReplica), kRoundInterval,
              static_cast<long long>(kSharedDramBytes >> 10));

  const RouterPolicy policies[] = {
      RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoadedTokens,
      RouterPolicy::kPowerOfTwo, RouterPolicy::kStickyWithSpill};
  const int replica_counts[] = {1, 2, 4};

  std::printf("  %-13s %-9s %10s %10s %10s %7s %8s %8s %7s\n", "router", "replicas",
              "rounds/s", "ttft-mean", "ttft-p99", "skew", "x-restor", "affinity",
              "dram%");

  JsonValue configs = JsonValue::Array();
  std::vector<Row> rows;
  for (const RouterPolicy policy : policies) {
    double rps1 = 0;
    for (const int replicas : replica_counts) {
      const Row row = RunConfig(replicas, policy);
      const ClusterReport& r = row.rep;
      if (replicas == 1) {
        rps1 = r.RoundsPerSecond();
      }
      std::printf("  %-13s %-9d %10.3f %10.3f %10.3f %7.3f %8lld %8lld %6.1f%%\n",
                  RouterPolicyName(policy), replicas, r.RoundsPerSecond(),
                  r.aggregate.ttft.Mean(), r.aggregate.ttft.P99(), r.ReplicaRoundSkew(),
                  static_cast<long long>(r.cross_replica_restores),
                  static_cast<long long>(r.affinity_restores),
                  100.0 * r.SharedDramHitByteRatio());

      JsonValue cfg = JsonValue::Object();
      cfg.Set("router", RouterPolicyName(policy));
      cfg.Set("replicas", replicas);
      cfg.Set("offered_sessions_per_s", kPerReplicaLoad * replicas);
      cfg.Set("sessions", kSessionsPerReplica * static_cast<int64_t>(replicas));
      cfg.Set("rounds_completed", r.aggregate.rounds_completed);
      cfg.Set("rounds_submitted", r.aggregate.rounds_submitted);
      cfg.Set("rounds_per_s", r.RoundsPerSecond());
      cfg.Set("makespan_s", r.aggregate.makespan);
      cfg.Set("ttft_mean_s", r.aggregate.ttft.Mean());
      cfg.Set("ttft_p50_s", r.aggregate.ttft.Median());
      cfg.Set("ttft_p99_s", r.aggregate.ttft.P99());
      cfg.Set("tbt_mean_s", r.aggregate.tbt.Mean());
      cfg.Set("replica_round_skew", r.ReplicaRoundSkew());
      cfg.Set("cross_replica_restores", r.cross_replica_restores);
      cfg.Set("affinity_restores", r.affinity_restores);
      cfg.Set("scaling_vs_1_replica",
              rps1 > 0 ? r.RoundsPerSecond() / rps1 : 1.0);
      JsonValue storage = JsonValue::Object();
      storage.Set("total_writes", r.storage.total_writes);
      storage.Set("total_reads", r.storage.total_reads);
      storage.Set("dram_hit_bytes", r.storage.dram_hit_bytes);
      storage.Set("cold_hit_bytes", r.storage.cold_hit_bytes);
      storage.Set("dram_hit_byte_ratio", r.SharedDramHitByteRatio());
      storage.Set("evicted_contexts", r.storage.evicted_contexts);
      storage.Set("writeback_bytes", r.storage.writeback_bytes);
      cfg.Set("shared_storage", std::move(storage));
      configs.Push(std::move(cfg));
      rows.push_back(row);
    }
  }

  // Acceptance summary: for each router, 4-replica scaling vs 1 replica.
  bool any_policy_meets_bar = false;
  JsonValue scaling = JsonValue::Array();
  std::printf("\n  4-replica scaling vs 1 replica (equal per-replica hardware):\n");
  for (const RouterPolicy policy : policies) {
    double rps1 = 0, rps4 = 0;
    int64_t cross4 = 0;
    for (const Row& row : rows) {
      if (row.policy != policy) continue;
      if (row.replicas == 1) rps1 = row.rep.RoundsPerSecond();
      if (row.replicas == 4) {
        rps4 = row.rep.RoundsPerSecond();
        cross4 = row.rep.cross_replica_restores;
      }
    }
    const double x = rps1 > 0 ? rps4 / rps1 : 0.0;
    const bool meets = x >= 3.0 && cross4 > 0;
    any_policy_meets_bar = any_policy_meets_bar || meets;
    std::printf("    %-13s %.2fx  (cross-replica restores: %lld)%s\n",
                RouterPolicyName(policy), x, static_cast<long long>(cross4),
                meets ? "  [>=3x with shared-tier reuse]" : "");
    JsonValue entry = JsonValue::Object();
    entry.Set("router", RouterPolicyName(policy));
    entry.Set("speedup_4_vs_1", x);
    entry.Set("cross_replica_restores_at_4", cross4);
    entry.Set("meets_3x_bar", meets);
    scaling.Push(std::move(entry));
  }
  PrintNote("acceptance: >=1 policy with 4 replicas at >=3x of 1 replica and");
  PrintNote("cross-replica restores > 0 (save on A, restore on B via the shared tier).");

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ext_cluster");
  root.Set("model", ModelConfig::Llama2_7B().name);
  root.Set("platform_per_replica", Platform::DefaultTestbed(1, 4).Describe());
  root.Set("workload", "sharegpt-conversations");
  root.Set("per_replica_load_sessions_per_s", kPerReplicaLoad);
  root.Set("sessions_per_replica", kSessionsPerReplica);
  root.Set("round_interval_s", kRoundInterval);
  root.Set("seed", static_cast<int64_t>(kSeed));
  root.Set("shared_dram_budget_bytes", kSharedDramBytes);
  root.Set("chunk_bytes", kChunkBytes);
  root.Set("configs", std::move(configs));
  root.Set("scaling_4_vs_1", std::move(scaling));
  root.Set("acceptance_met", any_policy_meets_bar);
  WriteJsonFile("BENCH_ext_cluster.json", root);
  return any_policy_meets_bar ? 0 : 1;
}
