// Extension bench: cluster serving — replica count x router policy over ONE shared
// tiered backend, on the ShareGPT multi-round conversation workload.
//
// The paper measures restoration inside a single engine; this sweep measures the
// fleet pattern its storage design enables: sessions hop between replicas (the router
// decides), each hop's restore is served by the shared DRAM-over-cold tier, and
// throughput must scale with replica count at equal per-replica hardware. Offered
// load and session count scale with the fleet so every configuration is compared at
// the same per-replica pressure.
//
// Two sections:
//
//  (1) Simulated scaling sweep (deterministic): replica-count x router rows on the
//      shared tier in synchronous write-back mode, reproducing the PR 4 acceptance
//      bar (>=3x at 4 replicas with cross-replica restores).
//
//  (2) Shared-tier concurrency A/B (wall clock): the SAME 4-replica workload driven
//      with parallel replica stepping against a cold tier with injected NVMe-like
//      latency, once on the PR 4 baseline tier (one mutex, held across cold-tier IO
//      — TieredOptions::Writeback::kLegacyLocked) and once on the PR 5 tier in its
//      auto configuration (async write-back drainer, no lock across cold IO; the
//      auto-shard heuristic keeps ONE stripe at this 6-chunk budget, so both legs
//      share identical cache geometry and the ratio isolates exactly the lock
//      discipline + async drain — striping itself engages on larger budgets and is
//      exercised by the storage concurrency tests). Simulated results are
//      byte-identical by construction. The acceptance column: the PR 5 tier must
//      beat the PR 4 baseline strictly.
//
// Emits BENCH_ext_cluster.json: per-config rows, per-router 4-vs-1 scaling, and the
// wall-clock A/B with the acceptance flags the repo tracks.
//
// `--distributed-cold` runs a third mode instead (emitting BENCH_ext_dist_cold.json):
// the same 4-replica parallel workload over a TieredBackend whose cold tier is the
// replicated DistributedColdBackend, with two fault legs — a storage node killed
// mid-run (reads must fail over, repair must re-replicate, zero restore fallbacks)
// and a Drain() that must complete while traffic is being served.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/thread_pool.h"
#include "src/serving/cluster.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

constexpr double kPerReplicaLoad = 0.5;  // sessions/s offered per replica
constexpr int64_t kSessionsPerReplica = 40;
constexpr double kRoundInterval = 5.0;
constexpr uint64_t kSeed = 97;
constexpr int64_t kChunkBytes = 64 * 1024;
// Shared hot-tier budget: sized so the fleet's live state does not fully fit and the
// cold tier sees traffic (the interesting regime for a shared cache).
constexpr int64_t kSharedDramBytes = 6 * kChunkBytes;
// Injected cold-tier service time for the wall-clock A/B (NVMe-ish QD1 latency).
constexpr int64_t kColdLatencyMicros = 300;
// PR 4's committed 4-vs-1 scaling (BENCH_ext_cluster.json at PR 4): the simulated
// sweep must not regress below it, and the wall-clock A/B exists because the
// simulated ratio alone cannot see lock contention at all.
constexpr double kPr4CommittedScaling4v1 = 3.14;

// Deterministic sweep instrument: one lock stripe + synchronous write-back gives
// run-to-run identical tier stats (the async drainer's rescue/cold split depends on
// thread timing, which belongs in the wall-clock section, not the committed sweep).
TieredOptions SweepTierOptions() {
  TieredOptions o;
  o.num_shards = 1;
  o.writeback = TieredOptions::Writeback::kSync;
  return o;
}

struct Row {
  int replicas = 0;
  RouterPolicy policy = RouterPolicy::kRoundRobin;
  ClusterReport rep;
};

Row RunConfig(int replicas, RouterPolicy policy) {
  Row row;
  row.replicas = replicas;
  row.policy = policy;
  MemoryBackend cold(kChunkBytes);
  TieredBackend shared(&cold, kSharedDramBytes, SweepTierOptions());
  ClusterOptions o;
  o.num_replicas = replicas;
  o.router = policy;
  o.serving.method = RestoreMethod::kHCache;
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                        &shared);
  row.rep = cluster.RunConversations(kPerReplicaLoad * replicas,
                                     kSessionsPerReplica * replicas, kRoundInterval,
                                     kSeed);
  return row;
}

struct WallRow {
  std::string tier;
  double wall_s = 0;
  ClusterReport rep;
};

// One wall-clock A/B leg: 4 replicas stepped in parallel over a shared tier whose
// cold backend sleeps kColdLatencyMicros per op. Simulated output is identical
// across tiers; only the wall time (and the tier's concurrency stats) differ.
WallRow RunWallConfig(const std::string& name, const TieredOptions& tier_options) {
  constexpr int kReplicas = 4;
  WallRow row;
  row.tier = name;
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(kColdLatencyMicros);
  TieredBackend shared(&cold, kSharedDramBytes, tier_options);
  ClusterOptions o;
  o.num_replicas = kReplicas;
  o.router = RouterPolicy::kLeastLoadedTokens;
  o.parallel_advance = true;
  o.serving.method = RestoreMethod::kHCache;
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                        &shared);
  const auto t0 = std::chrono::steady_clock::now();
  row.rep = cluster.RunConversations(kPerReplicaLoad * kReplicas,
                                     kSessionsPerReplica * kReplicas, kRoundInterval,
                                     kSeed);
  row.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                   .count();
  return row;
}

JsonValue StorageJson(const ClusterReport& r) {
  JsonValue storage = JsonValue::Object();
  storage.Set("total_writes", r.storage.total_writes);
  storage.Set("total_reads", r.storage.total_reads);
  storage.Set("dram_hit_bytes", r.storage.dram_hit_bytes);
  storage.Set("cold_hit_bytes", r.storage.cold_hit_bytes);
  storage.Set("dram_hit_byte_ratio", r.SharedDramHitByteRatio());
  storage.Set("evicted_contexts", r.storage.evicted_contexts);
  storage.Set("writeback_bytes", r.storage.writeback_bytes);
  storage.Set("drain_rescued_chunks", r.storage.drain_rescued_chunks);
  storage.Set("writer_stalls", r.storage.writer_stalls);
  storage.Set("writeback_failures", r.storage.writeback_failures);
  storage.Set("promotions_skipped", r.storage.promotions_skipped);
  return storage;
}

// ---- --distributed-cold mode ----------------------------------------------------

constexpr int kDistNodes = 4;
constexpr int kDistReplication = 2;
// Fire the mid-run fault once the cold plane has absorbed this many writes: far
// enough in that the victim node homes real state, far enough from the end that
// plenty of restores still cross the degraded plane. (The 4-replica sweep drives
// ~1000 tier writes, a large share of which reach the cold tier.)
constexpr int64_t kFaultAfterColdWrites = 150;

JsonValue DistStatsJson(const StorageStats& d) {
  JsonValue j = JsonValue::Object();
  j.Set("total_writes", d.total_writes);
  j.Set("total_reads", d.total_reads);
  j.Set("failover_reads", d.failover_reads);
  j.Set("nodes_down", d.nodes_down);
  j.Set("under_replicated_chunks", d.under_replicated_chunks);
  j.Set("degraded_writes", d.degraded_writes);
  j.Set("re_replicated_chunks", d.re_replicated_chunks);
  j.Set("crc_failures", d.crc_failures);
  return j;
}

JsonValue NodeTableJson(const DistributedColdBackend& dist) {
  JsonValue arr = JsonValue::Array();
  for (const auto& n : dist.NodeTable()) {
    JsonValue e = JsonValue::Object();
    e.Set("node", static_cast<int64_t>(n.id));
    e.Set("up", n.up);
    e.Set("draining", n.draining);
    e.Set("removed", n.removed);
    e.Set("chunks", n.chunks);
    e.Set("bytes", n.bytes);
    arr.Push(std::move(e));
  }
  return arr;
}

// Waits (polling the cold plane's write counter) until the workload is genuinely
// mid-run, then applies `fault`. Returns whether the fault fired before the run
// finished (the watcher gives up when `run_done` flips so a short run can't hang it).
void RunClusterWithMidRunFault(ClusterEngine& cluster, const DistributedColdBackend& dist,
                               const std::function<void()>& fault, ClusterReport* rep,
                               bool* fired_mid_run) {
  std::atomic<bool> run_done{false};
  std::atomic<bool> fired{false};
  std::thread watcher([&] {
    while (!run_done.load(std::memory_order_acquire)) {
      if (dist.Stats().total_writes >= kFaultAfterColdWrites) {
        fault();
        fired.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  *rep = cluster.RunConversations(kPerReplicaLoad * 4, kSessionsPerReplica * 4,
                                  kRoundInterval, kSeed);
  run_done.store(true, std::memory_order_release);
  watcher.join();
  *fired_mid_run = fired.load(std::memory_order_acquire);
}

int RunDistributedCold() {
  PrintTitle("Extension: cluster serving over a replicated distributed cold plane");
  std::printf("%d storage nodes, R=%d, 4 replicas stepped in parallel, %.2f sessions/s "
              "and %lld sessions per replica\n\n",
              kDistNodes, kDistReplication, kPerReplicaLoad,
              static_cast<long long>(kSessionsPerReplica));
  const size_t pool_threads =
      std::max<size_t>(4, ThreadPool::Shared().num_threads());
  ThreadPool::ResizeShared(pool_threads);

  TieredOptions tier_opts;
  tier_opts.num_shards = 0;
  tier_opts.writeback = TieredOptions::Writeback::kAsync;
  ClusterOptions cluster_opts;
  cluster_opts.num_replicas = 4;
  cluster_opts.router = RouterPolicy::kLeastLoadedTokens;
  cluster_opts.parallel_advance = true;
  cluster_opts.serving.method = RestoreMethod::kHCache;
  DistributedColdOptions dist_opts;
  dist_opts.replication = kDistReplication;

  // ---- Leg 1: fail-stop a storage node mid-run, then recover it ----
  PrintSection("leg 1: node killed mid-run (fail-stop), repair re-replicates");
  JsonValue kill_leg = JsonValue::Object();
  bool kill_zero_fallbacks = false, kill_failed_over = false, kill_repaired = false;
  bool kill_fired = false;
  {
    DistributedColdBackend dist(kDistNodes, kChunkBytes, dist_opts);
    TieredBackend shared(&dist, kSharedDramBytes, tier_opts);
    ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                          cluster_opts, &shared);
    constexpr int kVictim = 0;
    ClusterReport rep;
    RunClusterWithMidRunFault(
        cluster, dist, [&] { dist.SetNodeDown(kVictim); }, &rep, &kill_fired);
    shared.Quiesce();
    dist.Quiesce();  // converge re-replication onto the 3 survivors
    const StorageStats down = dist.Stats();

    // Recovery: the node returns, repair converges it back to its home copies,
    // Balance() trims the spill copies the outage scattered.
    dist.SetNodeUp(kVictim);
    dist.Quiesce();
    const int64_t balance_moves = dist.Balance();
    const StorageStats recovered = dist.Stats();

    kill_zero_fallbacks = rep.aggregate.restore_fallbacks == 0;
    kill_failed_over = down.failover_reads > 0;
    kill_repaired = down.re_replicated_chunks > 0 && down.under_replicated_chunks == 0 &&
                    recovered.under_replicated_chunks == 0;
    std::printf("  mid-run kill fired: %s (node %d down after %lld cold writes)\n",
                kill_fired ? "yes" : "NO", kVictim,
                static_cast<long long>(kFaultAfterColdWrites));
    std::printf("  rounds completed: %lld, restore fallbacks: %lld\n",
                static_cast<long long>(rep.aggregate.rounds_completed),
                static_cast<long long>(rep.aggregate.restore_fallbacks));
    std::printf("  failover reads: %lld, degraded writes: %lld, re-replicated: %lld, "
                "under-replicated after quiesce: %lld\n",
                static_cast<long long>(down.failover_reads),
                static_cast<long long>(down.degraded_writes),
                static_cast<long long>(down.re_replicated_chunks),
                static_cast<long long>(down.under_replicated_chunks));
    std::printf("  recovery: node %d back up, %lld further re-replications, "
                "balance moved/trimmed %lld copies\n",
                kVictim,
                static_cast<long long>(recovered.re_replicated_chunks -
                                       down.re_replicated_chunks),
                static_cast<long long>(balance_moves));

    kill_leg.Set("victim_node", static_cast<int64_t>(kVictim));
    kill_leg.Set("fault_after_cold_writes", kFaultAfterColdWrites);
    kill_leg.Set("fired_mid_run", kill_fired);
    kill_leg.Set("rounds_completed", rep.aggregate.rounds_completed);
    kill_leg.Set("restore_fallbacks", rep.aggregate.restore_fallbacks);
    kill_leg.Set("cross_replica_restores", rep.cross_replica_restores);
    kill_leg.Set("storage_after_kill", DistStatsJson(down));
    kill_leg.Set("balance_moves_after_recovery", balance_moves);
    kill_leg.Set("storage_after_recovery", DistStatsJson(recovered));
    kill_leg.Set("nodes_after_recovery", NodeTableJson(dist));
  }

  // ---- Leg 2: Drain() a node while the fleet is serving ----
  PrintSection("leg 2: live drain — evacuate a node under serving traffic");
  JsonValue drain_leg = JsonValue::Object();
  bool drain_ok = false, drain_zero_fallbacks = false, drain_emptied = false;
  bool drain_fired = false;
  {
    DistributedColdBackend dist(kDistNodes, kChunkBytes, dist_opts);
    TieredBackend shared(&dist, kSharedDramBytes, tier_opts);
    ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                          cluster_opts, &shared);
    constexpr int kDrained = 2;
    ClusterReport rep;
    double drain_wall_s = 0;
    RunClusterWithMidRunFault(
        cluster, dist,
        [&] {
          const auto t0 = std::chrono::steady_clock::now();
          drain_ok = dist.Drain(kDrained);
          drain_wall_s =
              std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
        },
        &rep, &drain_fired);
    shared.Quiesce();
    dist.Quiesce();
    const StorageStats after = dist.Stats();
    const auto nodes = dist.NodeTable();
    drain_emptied = nodes[kDrained].removed && nodes[kDrained].chunks == 0;
    drain_zero_fallbacks = rep.aggregate.restore_fallbacks == 0;

    std::printf("  drain fired mid-run: %s, completed: %s in %.3fs (node %d removed, "
                "%lld chunks left on it)\n",
                drain_fired ? "yes" : "NO", drain_ok ? "yes" : "NO", drain_wall_s,
                kDrained, static_cast<long long>(nodes[kDrained].chunks));
    std::printf("  rounds completed: %lld, restore fallbacks: %lld, re-replicated "
                "during drain: %lld\n",
                static_cast<long long>(rep.aggregate.rounds_completed),
                static_cast<long long>(rep.aggregate.restore_fallbacks),
                static_cast<long long>(after.re_replicated_chunks));

    drain_leg.Set("drained_node", static_cast<int64_t>(kDrained));
    drain_leg.Set("fired_mid_run", drain_fired);
    drain_leg.Set("drain_completed", drain_ok);
    drain_leg.Set("drain_wall_s", drain_wall_s);
    drain_leg.Set("rounds_completed", rep.aggregate.rounds_completed);
    drain_leg.Set("restore_fallbacks", rep.aggregate.restore_fallbacks);
    drain_leg.Set("storage_after_drain", DistStatsJson(after));
    drain_leg.Set("nodes_after_drain", NodeTableJson(dist));
  }

  const bool acceptance = kill_fired && kill_zero_fallbacks && kill_failed_over &&
                          kill_repaired && drain_fired && drain_ok && drain_emptied &&
                          drain_zero_fallbacks;
  std::printf("\n  acceptance: %s  (mid-run kill -> zero failed restores + failover + "
              "repair convergence; live drain completed + zero failed restores)\n",
              acceptance ? "MET" : "NOT MET");

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ext_dist_cold");
  root.Set("model", ModelConfig::Llama2_7B().name);
  root.Set("platform_per_replica", Platform::DefaultTestbed(1, 4).Describe());
  root.Set("workload", "sharegpt-conversations");
  root.Set("replicas", 4);
  root.Set("storage_nodes", static_cast<int64_t>(kDistNodes));
  root.Set("replication", static_cast<int64_t>(kDistReplication));
  root.Set("per_replica_load_sessions_per_s", kPerReplicaLoad);
  root.Set("sessions_per_replica", kSessionsPerReplica);
  root.Set("seed", static_cast<int64_t>(kSeed));
  root.Set("shared_dram_budget_bytes", kSharedDramBytes);
  root.Set("chunk_bytes", kChunkBytes);
  root.Set("node_kill", std::move(kill_leg));
  root.Set("live_drain", std::move(drain_leg));
  root.Set("acceptance_met", acceptance);
  WriteJsonFile("BENCH_ext_dist_cold.json", root);
  return acceptance ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--distributed-cold") == 0) {
    return RunDistributedCold();
  }
  PrintTitle("Extension: multi-replica cluster serving over shared tiered storage");
  std::printf("Llama2-7B per replica (%s), %.2f sessions/s and %lld sessions per "
              "replica, %.0fs think time, shared DRAM tier %lld KiB over cold\n\n",
              Platform::DefaultTestbed(1, 4).Describe().c_str(), kPerReplicaLoad,
              static_cast<long long>(kSessionsPerReplica), kRoundInterval,
              static_cast<long long>(kSharedDramBytes >> 10));

  const RouterPolicy policies[] = {
      RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoadedTokens,
      RouterPolicy::kPowerOfTwo, RouterPolicy::kStickyWithSpill};
  const int replica_counts[] = {1, 2, 4};

  std::printf("  %-13s %-9s %10s %10s %10s %7s %8s %8s %7s\n", "router", "replicas",
              "rounds/s", "ttft-mean", "ttft-p99", "skew", "x-restor", "affinity",
              "dram%");

  JsonValue configs = JsonValue::Array();
  std::vector<Row> rows;
  for (const RouterPolicy policy : policies) {
    double rps1 = 0;
    for (const int replicas : replica_counts) {
      const Row row = RunConfig(replicas, policy);
      const ClusterReport& r = row.rep;
      if (replicas == 1) {
        rps1 = r.RoundsPerSecond();
      }
      std::printf("  %-13s %-9d %10.3f %10.3f %10.3f %7.3f %8lld %8lld %6.1f%%\n",
                  RouterPolicyName(policy), replicas, r.RoundsPerSecond(),
                  r.aggregate.ttft.Mean(), r.aggregate.ttft.P99(), r.ReplicaRoundSkew(),
                  static_cast<long long>(r.cross_replica_restores),
                  static_cast<long long>(r.affinity_restores),
                  100.0 * r.SharedDramHitByteRatio());

      JsonValue cfg = JsonValue::Object();
      cfg.Set("router", RouterPolicyName(policy));
      cfg.Set("replicas", replicas);
      cfg.Set("offered_sessions_per_s", kPerReplicaLoad * replicas);
      cfg.Set("sessions", kSessionsPerReplica * static_cast<int64_t>(replicas));
      cfg.Set("rounds_completed", r.aggregate.rounds_completed);
      cfg.Set("rounds_submitted", r.aggregate.rounds_submitted);
      cfg.Set("rounds_per_s", r.RoundsPerSecond());
      cfg.Set("makespan_s", r.aggregate.makespan);
      cfg.Set("ttft_mean_s", r.aggregate.ttft.Mean());
      cfg.Set("ttft_p50_s", r.aggregate.ttft.Median());
      cfg.Set("ttft_p99_s", r.aggregate.ttft.P99());
      cfg.Set("tbt_mean_s", r.aggregate.tbt.Mean());
      cfg.Set("replica_round_skew", r.ReplicaRoundSkew());
      cfg.Set("cross_replica_restores", r.cross_replica_restores);
      cfg.Set("affinity_restores", r.affinity_restores);
      cfg.Set("scaling_vs_1_replica",
              rps1 > 0 ? r.RoundsPerSecond() / rps1 : 1.0);
      cfg.Set("shared_storage", StorageJson(r));
      configs.Push(std::move(cfg));
      rows.push_back(row);
    }
  }

  // Acceptance summary 1: for each router, 4-replica scaling vs 1 replica.
  bool any_policy_meets_bar = false;
  double best_scaling = 0.0;
  JsonValue scaling = JsonValue::Array();
  std::printf("\n  4-replica scaling vs 1 replica (equal per-replica hardware):\n");
  for (const RouterPolicy policy : policies) {
    double rps1 = 0, rps4 = 0;
    int64_t cross4 = 0;
    for (const Row& row : rows) {
      if (row.policy != policy) continue;
      if (row.replicas == 1) rps1 = row.rep.RoundsPerSecond();
      if (row.replicas == 4) {
        rps4 = row.rep.RoundsPerSecond();
        cross4 = row.rep.cross_replica_restores;
      }
    }
    const double x = rps1 > 0 ? rps4 / rps1 : 0.0;
    const bool meets = x >= 3.0 && cross4 > 0;
    any_policy_meets_bar = any_policy_meets_bar || meets;
    best_scaling = std::max(best_scaling, x);
    std::printf("    %-13s %.2fx  (cross-replica restores: %lld)%s\n",
                RouterPolicyName(policy), x, static_cast<long long>(cross4),
                meets ? "  [>=3x with shared-tier reuse]" : "");
    JsonValue entry = JsonValue::Object();
    entry.Set("router", RouterPolicyName(policy));
    entry.Set("speedup_4_vs_1", x);
    entry.Set("cross_replica_restores_at_4", cross4);
    entry.Set("meets_3x_bar", meets);
    scaling.Push(std::move(entry));
  }
  // The simulated sweep is deterministic, so the PR 4 committed value is a hard
  // regression bar, not a flaky wall-clock comparison.
  const bool sim_no_regress = best_scaling >= kPr4CommittedScaling4v1;
  std::printf("    best %.2fx vs PR 4 committed %.2fx%s\n", best_scaling,
              kPr4CommittedScaling4v1,
              sim_no_regress ? "  [no regression]" : "  [REGRESSION]");
  PrintNote("acceptance: >=1 policy with 4 replicas at >=3x of 1 replica and");
  PrintNote("cross-replica restores > 0 (save on A, restore on B via the shared tier).");

  // ---- Section 2: shared-tier concurrency A/B (wall clock) ----
  PrintSection("shared-tier concurrency A/B: 4 replicas stepped in parallel, cold tier "
               "+" + std::to_string(kColdLatencyMicros) + "us/op");
  // Parallel stepping needs real workers even on small CI boxes; the simulated
  // results are thread-count independent (pinned by the determinism tests).
  const size_t pool_threads =
      std::max<size_t>(4, ThreadPool::Shared().num_threads());
  ThreadPool::ResizeShared(pool_threads);

  TieredOptions legacy;
  legacy.num_shards = 1;
  legacy.writeback = TieredOptions::Writeback::kLegacyLocked;
  // Auto stripes (= 1 at this budget: same cache geometry as the legacy leg) +
  // the async drainer — the redesign's concurrency plane, nothing else varied.
  TieredOptions pr5;
  pr5.num_shards = 0;
  pr5.writeback = TieredOptions::Writeback::kAsync;

  // Legacy first so its serialized wall time cannot benefit from warmed caches.
  const WallRow wall_legacy = RunWallConfig("pr4-serialized", legacy);
  const WallRow wall_sharded = RunWallConfig("pr5-async", pr5);

  std::printf("  %-15s %8s %12s %9s %9s %9s %8s\n", "tier", "wall-s", "rounds/wall-s",
              "rounds", "stalls", "rescues", "dram%");
  JsonValue wall_rows = JsonValue::Array();
  for (const WallRow* w : {&wall_legacy, &wall_sharded}) {
    const double rpws =
        w->wall_s > 0 ? static_cast<double>(w->rep.aggregate.rounds_completed) / w->wall_s
                      : 0.0;
    std::printf("  %-15s %8.3f %12.1f %9lld %9lld %9lld %7.1f%%\n", w->tier.c_str(),
                w->wall_s, rpws,
                static_cast<long long>(w->rep.aggregate.rounds_completed),
                static_cast<long long>(w->rep.storage.writer_stalls),
                static_cast<long long>(w->rep.storage.drain_rescued_chunks),
                100.0 * w->rep.SharedDramHitByteRatio());
    JsonValue entry = JsonValue::Object();
    entry.Set("tier", w->tier);
    entry.Set("wall_s", w->wall_s);
    entry.Set("rounds_per_wall_s", rpws);
    entry.Set("rounds_completed", w->rep.aggregate.rounds_completed);
    entry.Set("shared_storage", StorageJson(w->rep));
    wall_rows.Push(std::move(entry));
  }
  // Same simulation on both tiers — the A/B isolates the storage plane.
  const bool same_sim = wall_legacy.rep.aggregate.rounds_completed ==
                        wall_sharded.rep.aggregate.rounds_completed;
  const double wall_speedup =
      wall_sharded.wall_s > 0 ? wall_legacy.wall_s / wall_sharded.wall_s : 0.0;
  const bool wall_meets_bar = same_sim && wall_speedup > 1.0;
  std::printf("\n  pr5-async vs pr4-serialized wall-clock speedup: %.2fx%s\n",
              wall_speedup,
              wall_meets_bar ? "  [strictly better than the PR 4 tier]" : "");
  PrintNote("acceptance: identical simulated rounds, wall-clock rounds/sec strictly");
  PrintNote("above the PR 4 serialized tier (no lock across cold IO + async drain).");

  JsonValue wall_ab = JsonValue::Object();
  wall_ab.Set("replicas", 4);
  wall_ab.Set("router", RouterPolicyName(RouterPolicy::kLeastLoadedTokens));
  wall_ab.Set("cold_latency_us_per_op", kColdLatencyMicros);
  wall_ab.Set("pool_threads", static_cast<int64_t>(pool_threads));
  wall_ab.Set("rows", std::move(wall_rows));
  wall_ab.Set("identical_simulated_results", same_sim);
  wall_ab.Set("wall_speedup_sharded_vs_serialized", wall_speedup);
  wall_ab.Set("meets_strictly_better_bar", wall_meets_bar);

  if (!wall_meets_bar) {
    std::printf("  WARNING: wall-clock A/B below bar this run (timing-noise "
                "sensitive; the committed JSON records the tracked result)\n");
  }

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ext_cluster");
  root.Set("model", ModelConfig::Llama2_7B().name);
  root.Set("platform_per_replica", Platform::DefaultTestbed(1, 4).Describe());
  root.Set("workload", "sharegpt-conversations");
  root.Set("per_replica_load_sessions_per_s", kPerReplicaLoad);
  root.Set("sessions_per_replica", kSessionsPerReplica);
  root.Set("round_interval_s", kRoundInterval);
  root.Set("seed", static_cast<int64_t>(kSeed));
  root.Set("shared_dram_budget_bytes", kSharedDramBytes);
  root.Set("chunk_bytes", kChunkBytes);
  root.Set("pr4_committed_scaling_4_vs_1", kPr4CommittedScaling4v1);
  root.Set("best_scaling_4_vs_1", best_scaling);
  root.Set("sim_scaling_no_regress_vs_pr4", sim_no_regress);
  root.Set("configs", std::move(configs));
  root.Set("scaling_4_vs_1", std::move(scaling));
  root.Set("shared_tier_wall_ab", std::move(wall_ab));
  root.Set("acceptance_met", any_policy_meets_bar && sim_no_regress && wall_meets_bar);
  WriteJsonFile("BENCH_ext_cluster.json", root);
  // Exit code gates CI on the deterministic bars only: the simulated scaling sweep
  // (>=3x and no regression vs the PR 4 committed value) and the two wall-clock
  // legs producing identical simulations. The wall-clock speedup itself is
  // scheduler-sensitive on shared runners, so it is recorded (and tracked via the
  // committed JSON) rather than allowed to flake the build.
  return any_policy_meets_bar && sim_no_regress && same_sim ? 0 : 1;
}
