// Figure 4: state-restoration overhead of existing methods vs the ideal case.
//
// Setup follows the paper: L-Eval trace, Llama2-7B/13B on one A100 + 4 SSDs, OPT-30B on
// 4x A100 (TP) with one SSD each. Paper: recomputation is 20.0-26.0x slower than ideal,
// KV offload 6.5-13.0x.
//
// Results are also persisted to BENCH_fig4.json (per model/method TTFT mean, p50, and
// slowdown vs ideal) so CI can archive the trajectory.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/serving/engine.h"

using namespace hcache;

namespace {

void RunModel(const ModelConfig& cfg, const Platform& platform, JsonValue& rows) {
  LEvalGenerator gen(404);
  const auto trace = gen.MixedTrace(100);

  std::printf("%-12s (%s)\n", cfg.name.c_str(), platform.Describe().c_str());
  double ideal_mean = 0;
  for (const auto method : {RestoreMethod::kIdeal, RestoreMethod::kKvOffload,
                            RestoreMethod::kRecompute}) {
    ServingOptions o;
    o.method = method;
    ServingEngine engine(platform, cfg, o);
    const ServingReport rep = engine.RunLongContextSerial(trace);
    const double mean = rep.ttft.Mean();
    if (method == RestoreMethod::kIdeal) {
      ideal_mean = mean;
    }
    std::printf("  %-11s TTFT mean %7.3f s  p50 %7.3f s   (%.1fx ideal)\n",
                RestoreMethodName(method), mean, rep.ttft.Median(), mean / ideal_mean);
    JsonValue row = JsonValue::Object();
    row.Set("model", cfg.name)
        .Set("platform", platform.Describe())
        .Set("method", RestoreMethodName(method))
        .Set("ttft_mean_s", mean)
        .Set("ttft_p50_s", rep.ttft.Median())
        .Set("slowdown_vs_ideal", mean / ideal_mean);
    rows.Push(std::move(row));
  }
}

}  // namespace

int main() {
  PrintTitle("Figure 4: comparison of state restoration overhead (L-Eval)");
  JsonValue rows = JsonValue::Array();
  RunModel(ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4), rows);
  RunModel(ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4), rows);
  RunModel(ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4), rows);
  PrintNote("recomputation 20.0-26.0x slower than ideal; KV offload 6.5-13.0x (Fig 4).");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "fig4_restore_overhead")
      .Set("paper_note", "recompute 20.0-26.0x ideal; KV offload 6.5-13.0x")
      .Set("rows", std::move(rows));
  WriteJsonFile("BENCH_fig4.json", doc);
  return 0;
}
