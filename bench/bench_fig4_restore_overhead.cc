// Figure 4: state-restoration overhead of existing methods vs the ideal case, plus the
// precision-codec sweep for HCache's hidden-state transport.
//
// Setup follows the paper: L-Eval trace, Llama2-7B/13B on one A100 + 4 SSDs, OPT-30B on
// 4x A100 (TP) with one SSD each. Paper: recomputation is 20.0-26.0x slower than ideal,
// KV offload 6.5-13.0x.
//
// The codec rows quantify the storage plane's precision lever: HCache with kFp16
// (deployment default) moves half the transmission-stream bytes of kFp32 and must beat
// its slowdown-vs-ideal on every model; kInt8 (§7, CacheGen-style) halves bytes again.
// A functional cross-backend check asserts the FP16 restore path decodes bit-stably on
// file, memory, and tiered stores.
//
// Results are also persisted to BENCH_fig4.json (per model/method TTFT mean, p50,
// slowdown vs ideal, and per-codec restoration bytes) so CI can archive the trajectory.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <numeric>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/model/cost_model.h"
#include "src/serving/engine.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

struct CodecOutcome {
  double slowdown = 0;
  double bytes_mean = 0;
  double hidden_bytes_mean = 0;
};

void RunModel(const ModelConfig& cfg, const Platform& platform, JsonValue& rows,
              bool& fp16_improves_all, bool& fp16_halves_bytes_all) {
  LEvalGenerator gen(404);
  const auto trace = gen.MixedTrace(100);

  std::printf("%-12s (%s)\n", cfg.name.c_str(), platform.Describe().c_str());
  double ideal_mean = 0;
  for (const auto method : {RestoreMethod::kIdeal, RestoreMethod::kKvOffload,
                            RestoreMethod::kRecompute}) {
    ServingOptions o;
    o.method = method;
    ServingEngine engine(platform, cfg, o);
    const ServingReport rep = engine.RunLongContextSerial(trace);
    const double mean = rep.ttft.Mean();
    if (method == RestoreMethod::kIdeal) {
      ideal_mean = mean;
    }
    std::printf("  %-11s      TTFT mean %7.3f s  p50 %7.3f s   (%.1fx ideal)\n",
                RestoreMethodName(method), mean, rep.ttft.Median(), mean / ideal_mean);
    JsonValue row = JsonValue::Object();
    row.Set("model", cfg.name)
        .Set("platform", platform.Describe())
        .Set("method", RestoreMethodName(method))
        .Set("ttft_mean_s", mean)
        .Set("ttft_p50_s", rep.ttft.Median())
        .Set("slowdown_vs_ideal", mean / ideal_mean);
    rows.Push(std::move(row));
  }

  // HCache under each hidden-state codec: the transmission stream pays encoded bytes.
  CodecOutcome fp32, fp16;
  for (const ChunkCodec codec :
       {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    ServingOptions o;
    o.method = RestoreMethod::kHCache;
    o.state_codec = codec;
    ServingEngine engine(platform, cfg, o);
    const ServingReport rep = engine.RunLongContextSerial(trace);
    const double mean = rep.ttft.Mean();
    // Transmission bytes per restoration, averaged over the trace.
    Restorer restorer(platform, cfg, StorageLayout::kLayerChunked, kDefaultChunkTokens,
                      codec);
    double bytes = 0, hidden_bytes = 0;
    for (const auto& req : trace) {
      bytes += restorer.Restore(RestoreMethod::kHCache, req.context_tokens).bytes_read;
      // The transmission-stream quantity the codec scales: what the SAME pure-hidden
      // transport would move (the mixed scheduler re-partitions per codec, so its
      // hidden share is not an apples-to-apples stream comparison). Closed form —
      // all layers' hidden rows at the codec's encoded width.
      hidden_bytes += static_cast<double>(cfg.num_layers) *
                      HiddenIoBytesPerLayer(cfg, static_cast<double>(req.context_tokens),
                                            codec);
    }
    bytes /= static_cast<double>(trace.size());
    hidden_bytes /= static_cast<double>(trace.size());
    const double slowdown = mean / ideal_mean;
    std::printf(
        "  HCache/%-5s     TTFT mean %7.3f s  p50 %7.3f s   (%.1fx ideal)  %7.1f "
        "MB/restore (hidden stream %7.1f)\n",
        ChunkCodecName(codec), mean, rep.ttft.Median(), slowdown, bytes / 1e6,
        hidden_bytes / 1e6);
    if (codec == ChunkCodec::kFp32) {
      fp32 = {slowdown, bytes, hidden_bytes};
    } else if (codec == ChunkCodec::kFp16) {
      fp16 = {slowdown, bytes, hidden_bytes};
    }
    JsonValue row = JsonValue::Object();
    row.Set("model", cfg.name)
        .Set("platform", platform.Describe())
        .Set("method", RestoreMethodName(RestoreMethod::kHCache))
        .Set("codec", ChunkCodecName(codec))
        .Set("ttft_mean_s", mean)
        .Set("ttft_p50_s", rep.ttft.Median())
        .Set("slowdown_vs_ideal", slowdown)
        .Set("restore_bytes_mean", bytes)
        .Set("hidden_stream_bytes_mean", hidden_bytes);
    rows.Push(std::move(row));
  }
  const bool improved = fp16.slowdown < fp32.slowdown;
  const bool halved = fp16.hidden_bytes_mean <= 0.5 * fp32.hidden_bytes_mean + 1.0;
  std::printf("  fp16 vs fp32: hidden-stream bytes %.3fx, slowdown %.2fx -> %.2fx (%s)\n",
              fp16.hidden_bytes_mean / fp32.hidden_bytes_mean, fp32.slowdown, fp16.slowdown,
              improved && halved ? "OK" : "REGRESSION");
  fp16_improves_all = fp16_improves_all && improved;
  fp16_halves_bytes_all = fp16_halves_bytes_all && halved;
}

// Functional spot check: the FP16 restore path must decode bit-identically on all
// three backends (the codec, not the store, owns the bytes' meaning).
bool CheckFp16BitStableAcrossBackends() {
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 32, 2);
  const ModelWeights weights = ModelWeights::Random(cfg, 11);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 8));
  Rng rng(5);
  std::vector<int32_t> prompt(24);
  for (auto& t : prompt) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }
  const auto base = std::filesystem::temp_directory_path() / "hcache_fig4_codec";
  std::filesystem::remove_all(base);
  auto file = std::make_unique<FileBackend>(
      std::vector<std::string>{(base / "d0").string(), (base / "d1").string()}, 1 << 20);
  MemoryBackend memory(1 << 20);
  auto cold = std::make_unique<FileBackend>(
      std::vector<std::string>{(base / "c0").string()}, 1 << 20);
  // Deterministic tier split for the committed JSON (async rescues would make the
  // dram/cold attribution schedule-dependent).
  TieredOptions tiered_opts;
  tiered_opts.writeback = TieredOptions::Writeback::kSync;
  TieredBackend tiered(cold.get(), 4096, tiered_opts);
  StorageBackend* backends[] = {file.get(), &memory, &tiered};

  PartitionScheme s;
  s.layers_hidden = cfg.num_layers;
  s.layers_other = 0;
  s.complement = ComplementMethod::kNone;
  // Every layer's K AND V must agree bit-for-bit across backends.
  std::vector<std::vector<Tensor>> kv_per_backend;
  bool ok = true;
  for (StorageBackend* b : backends) {
    FunctionalHCache engine(&model, b, nullptr, 8, ChunkCodec::kFp16);
    PagedKvSequence seq(&pool);
    model.Forward(prompt, &seq, engine.BeginCapture(1));
    engine.SealContext(1);
    seq.Evict();
    if (!engine.RestoreContext(1, s, {}, &seq)) {
      ok = false;
      break;
    }
    std::vector<Tensor> kv;
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      Tensor k, v;
      seq.ReadKv(layer, 0, static_cast<int64_t>(prompt.size()), &k, &v);
      kv.push_back(std::move(k));
      kv.push_back(std::move(v));
    }
    kv_per_backend.push_back(std::move(kv));
    seq.Evict();
  }
  if (ok) {
    for (size_t b = 1; b < kv_per_backend.size(); ++b) {
      for (size_t i = 0; i < kv_per_backend[0].size(); ++i) {
        ok = ok && Tensor::BitwiseEqual(kv_per_backend[0][i], kv_per_backend[b][i]);
      }
    }
  }
  std::filesystem::remove_all(base);
  return ok;
}

}  // namespace

int main() {
  PrintTitle("Figure 4: comparison of state restoration overhead (L-Eval)");
  JsonValue rows = JsonValue::Array();
  bool fp16_improves_all = true;
  bool fp16_halves_bytes_all = true;
  RunModel(ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4), rows,
           fp16_improves_all, fp16_halves_bytes_all);
  RunModel(ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4), rows,
           fp16_improves_all, fp16_halves_bytes_all);
  RunModel(ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4), rows,
           fp16_improves_all, fp16_halves_bytes_all);
  PrintNote("recomputation 20.0-26.0x slower than ideal; KV offload 6.5-13.0x (Fig 4).");

  const bool bit_stable = CheckFp16BitStableAcrossBackends();
  std::printf("\nfp16 transmission bytes halved on all models : %s\n",
              fp16_halves_bytes_all ? "yes" : "NO");
  std::printf("fp16 slowdown-vs-ideal improved on all models: %s\n",
              fp16_improves_all ? "yes" : "NO");
  std::printf("fp16 restore bit-stable across backends      : %s\n",
              bit_stable ? "yes" : "NO");

  JsonValue doc = JsonValue::Object();
  doc.Set("bench", "fig4_restore_overhead")
      .Set("paper_note", "recompute 20.0-26.0x ideal; KV offload 6.5-13.0x")
      .Set("fp16_bytes_halved_vs_fp32_all_models", fp16_halves_bytes_all)
      .Set("fp16_slowdown_improved_all_models", fp16_improves_all)
      .Set("fp16_restore_bitstable_across_backends", bit_stable)
      .Set("rows", std::move(rows));
  WriteJsonFile("BENCH_fig4.json", doc);
  return fp16_halves_bytes_all && fp16_improves_all && bit_stable ? 0 : 1;
}
