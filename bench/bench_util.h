// Shared console-reporting helpers for the per-figure bench binaries.
//
// Every bench prints (a) the series/rows the paper's figure or table reports, and
// (b) a "paper:" annotation with the published values or ratio bands, so the output is
// directly comparable. EXPERIMENTS.md records the comparison.
#ifndef HCACHE_BENCH_BENCH_UTIL_H_
#define HCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace hcache {

inline void PrintTitle(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintSection(const std::string& s) { std::printf("\n-- %s --\n", s.c_str()); }

inline void PrintNote(const std::string& s) { std::printf("   [paper] %s\n", s.c_str()); }

}  // namespace hcache

#endif  // HCACHE_BENCH_BENCH_UTIL_H_
