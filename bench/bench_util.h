// Shared console-reporting helpers for the per-figure bench binaries, plus a minimal
// JSON emitter so benches can persist machine-readable results (BENCH_*.json) that CI
// archives as the repo's performance trajectory.
//
// Every bench prints (a) the series/rows the paper's figure or table reports, and
// (b) a "paper:" annotation with the published values or ratio bands, so the output is
// directly comparable. EXPERIMENTS.md records the comparison.
#ifndef HCACHE_BENCH_BENCH_UTIL_H_
#define HCACHE_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hcache {

inline void PrintTitle(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void PrintSection(const std::string& s) { std::printf("\n-- %s --\n", s.c_str()); }

inline void PrintNote(const std::string& s) { std::printf("   [paper] %s\n", s.c_str()); }

// A tiny build-and-dump JSON value (object / array / string / number / bool). Exactly
// what the bench emitters need: no parsing, no escapes beyond the JSON-mandated set,
// numbers printed with enough digits to round-trip a double.
class JsonValue {
 public:
  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }
  static JsonValue Str(std::string s) {
    JsonValue v(Kind::kString);
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue Num(double d) {
    JsonValue v(Kind::kNumber);
    v.num_ = d;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v(Kind::kInt);
    v.int_ = i;
    return v;
  }
  static JsonValue Bool(bool b) {
    JsonValue v(Kind::kBool);
    v.bool_ = b;
    return v;
  }

  // Object field setters (insertion order is preserved when dumping).
  JsonValue& Set(const std::string& key, JsonValue v) {
    fields_.emplace_back(key, std::move(v));
    return *this;
  }
  JsonValue& Set(const std::string& key, const std::string& s) {
    return Set(key, Str(s));
  }
  JsonValue& Set(const std::string& key, const char* s) { return Set(key, Str(s)); }
  JsonValue& Set(const std::string& key, double d) { return Set(key, Num(d)); }
  JsonValue& Set(const std::string& key, int64_t i) { return Set(key, Int(i)); }
  JsonValue& Set(const std::string& key, int i) {
    return Set(key, Int(static_cast<int64_t>(i)));
  }
  JsonValue& Set(const std::string& key, bool b) { return Set(key, Bool(b)); }

  // Array appender.
  JsonValue& Push(JsonValue v) {
    items_.push_back(std::move(v));
    return *this;
  }

  std::string Dump(int indent = 0) const {
    std::string out;
    DumpTo(out, indent, 0);
    return out;
  }

 private:
  enum class Kind { kNull, kObject, kArray, kString, kNumber, kInt, kBool };

  explicit JsonValue(Kind k) : kind_(k) {}

  static void Escape(const std::string& s, std::string& out) {
    out.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void DumpTo(std::string& out, int indent, int depth) const {
    const std::string pad(indent > 0 ? static_cast<size_t>(indent * (depth + 1)) : 0, ' ');
    const std::string close_pad(indent > 0 ? static_cast<size_t>(indent * depth) : 0, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (kind_) {
      case Kind::kNull: out += "null"; break;
      case Kind::kString: Escape(str_, out); break;
      case Kind::kBool: out += bool_ ? "true" : "false"; break;
      case Kind::kInt: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::kNumber: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
        break;
      }
      case Kind::kObject: {
        out += "{";
        out += nl;
        for (size_t i = 0; i < fields_.size(); ++i) {
          out += pad;
          Escape(fields_[i].first, out);
          out += indent > 0 ? ": " : ":";
          fields_[i].second.DumpTo(out, indent, depth + 1);
          if (i + 1 < fields_.size()) out += ",";
          out += nl;
        }
        out += close_pad;
        out += "}";
        break;
      }
      case Kind::kArray: {
        out += "[";
        out += nl;
        for (size_t i = 0; i < items_.size(); ++i) {
          out += pad;
          items_[i].DumpTo(out, indent, depth + 1);
          if (i + 1 < items_.size()) out += ",";
          out += nl;
        }
        out += close_pad;
        out += "]";
        break;
      }
    }
  }

  Kind kind_;
  std::string str_;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool bool_ = false;
  std::vector<std::pair<std::string, JsonValue>> fields_;  // kObject
  std::vector<JsonValue> items_;                           // kArray
};

// Writes `v` (pretty-printed) to `path`. Returns false on IO failure.
inline bool WriteJsonFile(const std::string& path, const JsonValue& v) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string text = v.Dump(/*indent=*/2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  if (ok) {
    std::printf("wrote %s\n", path.c_str());
  }
  return ok;
}

}  // namespace hcache

#endif  // HCACHE_BENCH_BENCH_UTIL_H_
