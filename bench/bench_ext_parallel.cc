// Extension: multi-GPU restoration — tensor parallelism vs pipeline parallelism (§5).
//
// With TP, every rank needs the full hidden states (sharded reads + NVLink
// all-gather); with PP, each rank restores only its own layers with no communication
// at all. The paper describes both; this bench compares them on 2/4-GPU platforms.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/restorer.h"

using namespace hcache;

int main() {
  PrintTitle("Extension: TP vs PP restoration (OPT-30B, history = 1024)");
  std::printf("  %-24s | %12s %12s %12s\n", "platform", "TP HCache", "PP HCache",
              "PP vs TP");
  for (const int gpus : {2, 4}) {
    const Platform platform = Platform::DefaultTestbed(gpus, 4);
    const ModelConfig cfg = ModelConfig::Opt30B();
    Restorer r(platform, cfg);
    const RestoreResult tp = r.Restore(RestoreMethod::kHCache, 1024);
    const RestoreResult pp = r.RestorePipelineParallel(RestoreMethod::kHCache, 1024, gpus);
    char label[64];
    std::snprintf(label, sizeof(label), "%dx A100 + 4 SSDs", gpus);
    std::printf("  %-24s | %9.1fK t/s %8.1fK t/s %10.2fx\n", label,
                tp.TokensPerSecond() / 1e3, pp.TokensPerSecond() / 1e3,
                pp.TokensPerSecond() / tp.TokensPerSecond());
  }

  PrintSection("per-method PP scaling (4x A100 + 4 SSDs)");
  const Platform p4 = Platform::DefaultTestbed(4, 4);
  Restorer r4(p4, ModelConfig::Opt30B());
  std::printf("  %-12s | %12s %12s\n", "method", "1 stage eq.", "4 stages");
  for (const auto m :
       {RestoreMethod::kHCache, RestoreMethod::kKvOffload, RestoreMethod::kRecompute}) {
    const double one = r4.RestorePipelineParallel(m, 1024, 1).TokensPerSecond();
    const double four = r4.RestorePipelineParallel(m, 1024, 4).TokensPerSecond();
    std::printf("  %-12s | %9.1fK t/s %9.1fK t/s  (%.2fx)\n", RestoreMethodName(m),
                one / 1e3, four / 1e3, four / one);
  }
  PrintNote("PP avoids the all-gather and scales restoration nearly linearly in GPUs;");
  PrintNote("TP pays NVLink gather time but keeps the serving-time benefits of TP.");
  return 0;
}
