// Extension bench: the elastic cluster plane — dynamic replica lifecycle,
// autoscaling, and failure-driven session migration over ONE shared tiered backend.
//
// The paper's economics argument is that hidden-state caches make GPU capacity
// fungible: state lives in the storage tier, so replicas can come and go without
// losing sessions. This bench measures both halves of that claim:
//
//  (1) Diurnal autoscaling A/B (deterministic): the SAME non-stationary arrival
//      trace (sinusoidal diurnal rate) served once by a static fleet provisioned for
//      peak and once by an autoscaled fleet (min 1, max = peak). Acceptance: the
//      autoscaled fleet saves >= 30% replica-seconds vs static-peak while its p99
//      TTFT stays within 10% of the static fleet's.
//
//  (2) Flash-crowd leg (informational): the diurnal trace with a mid-run spike —
//      shows the controller absorbing a step change (scale-up latency, timeline).
//
//  (3) Replica-kill migration leg: a replica is fail-stopped mid-run; its in-flight
//      rounds re-route to survivors which restore the sessions' saved state from the
//      shared tier. Acceptance: every session completes, migrated rounds > 0, zero
//      storage CRC failures (no wrong bytes — recompute fallbacks are counted
//      explicitly, not silently absorbed).
//
// Everything here is the simulated (deterministic) plane: byte-identical across
// reruns and thread counts, so the committed BENCH_ext_elastic.json is a regression
// bar, not a wall-clock sample.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serving/cluster.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

constexpr int64_t kChunkBytes = 64 * 1024;
constexpr int64_t kSharedDramBytes = 6 * kChunkBytes;
constexpr double kRoundInterval = 5.0;
constexpr uint64_t kSeed = 97;

// --- diurnal A/B sizing ---
// Peak fleet of 4; base rate chosen so the trough needs ~1 replica and the crest
// needs the full fleet; the period spans the arrival window (~sessions/base_rate
// seconds) so the run sees a full trough-crest-trough cycle. The phase starts the
// sinusoid at the trough (sin = -1): the autoscaled fleet begins small, grows into
// the crest, and sheds capacity on the way down — the shape the savings come from.
constexpr int kPeakReplicas = 4;
constexpr double kBaseRate = 0.45;      // fleet-wide sessions/s at the sinusoid mean
constexpr int64_t kDiurnalSessions = 500;
constexpr double kDiurnalPeriod = 1100.0;
constexpr double kDiurnalAmplitude = 0.85;
constexpr double kDiurnalPhase = -1.5707963267948966;  // -pi/2: start at the trough

// --- acceptance bars (the ISSUE's numbers) ---
constexpr double kMinReplicaSecondsSaved = 0.30;  // >= 30% vs static-peak
constexpr double kMaxP99TtftRatio = 1.10;         // autoscaled p99 <= 1.10x static

// --- kill leg sizing ---
constexpr int kKillReplicas = 3;
constexpr double kKillTime = 30.0;
constexpr double kKillLoad = 0.8 * kKillReplicas;  // sessions/s, fleet-wide
constexpr int64_t kKillSessions = 40 * kKillReplicas;

// Deterministic shared tier: one stripe + synchronous write-back, same instrument
// configuration as the committed cluster sweep.
TieredOptions SweepTierOptions() {
  TieredOptions o;
  o.num_shards = 1;
  o.writeback = TieredOptions::Writeback::kSync;
  return o;
}

DiurnalShape DiurnalDay() {
  DiurnalShape d;
  d.period_s = kDiurnalPeriod;
  d.amplitude = kDiurnalAmplitude;
  d.phase = kDiurnalPhase;
  return d;
}

ClusterReport RunLeg(const ClusterOptions& options, double rate, int64_t sessions) {
  MemoryBackend cold(kChunkBytes);
  TieredBackend shared(&cold, kSharedDramBytes, SweepTierOptions());
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                        options, &shared);
  return cluster.RunConversations(rate, sessions, kRoundInterval, kSeed);
}

JsonValue TimelineJson(const std::vector<ReplicaSet::UpSample>& timeline) {
  JsonValue arr = JsonValue::Array();
  for (const auto& s : timeline) {
    JsonValue e = JsonValue::Object();
    e.Set("t", s.time);
    e.Set("up", static_cast<int64_t>(s.up));
    arr.Push(std::move(e));
  }
  return arr;
}

JsonValue LegJson(const ClusterReport& r) {
  JsonValue j = JsonValue::Object();
  j.Set("rounds_completed", r.aggregate.rounds_completed);
  j.Set("rounds_submitted", r.aggregate.rounds_submitted);
  j.Set("sessions_completed", r.sessions_completed);
  j.Set("sessions_dropped", r.sessions_dropped);
  j.Set("makespan_s", r.aggregate.makespan);
  j.Set("ttft_mean_s", r.aggregate.ttft.Mean());
  j.Set("ttft_p99_s", r.aggregate.ttft.P99());
  j.Set("tbt_p99_s", r.aggregate.tbt.P99());
  j.Set("migrated_rounds", r.migrated_rounds);
  j.Set("rounds_abandoned", r.aggregate.rounds_abandoned);
  j.Set("restore_fallbacks", r.aggregate.restore_fallbacks);
  j.Set("cross_replica_restores", r.cross_replica_restores);
  j.Set("scale_ups", r.scale_ups);
  j.Set("scale_downs", r.scale_downs);
  j.Set("kills", r.kills);
  j.Set("peak_replicas_up", static_cast<int64_t>(r.peak_replicas_up));
  j.Set("min_replicas_up", static_cast<int64_t>(r.min_replicas_up));
  j.Set("replica_seconds", r.replica_seconds);
  j.Set("storage_crc_failures", r.storage.crc_failures);
  j.Set("up_timeline", TimelineJson(r.up_timeline));
  return j;
}

void PrintLegRow(const char* name, const ClusterReport& r) {
  std::printf("  %-14s %8lld %8lld %10.3f %10.3f %10.1f %5d..%-3d %4lld/%-4lld\n",
              name, static_cast<long long>(r.aggregate.rounds_completed),
              static_cast<long long>(r.sessions_completed), r.aggregate.ttft.P99(),
              r.aggregate.makespan, r.replica_seconds, r.min_replicas_up,
              r.peak_replicas_up, static_cast<long long>(r.scale_ups),
              static_cast<long long>(r.scale_downs));
}

}  // namespace

int main() {
  PrintTitle("Extension: elastic fleet — autoscaling economics + failure migration");
  std::printf("Llama2-7B per replica (%s), shared DRAM tier %lld KiB over cold, "
              "%.0fs think time, seed %llu\n\n",
              Platform::DefaultTestbed(1, 4).Describe().c_str(),
              static_cast<long long>(kSharedDramBytes >> 10), kRoundInterval,
              static_cast<unsigned long long>(kSeed));

  // ---- Leg 1: diurnal autoscaling A/B ----
  PrintSection("leg 1: diurnal day, static-peak fleet vs autoscaled fleet");
  std::printf("  base %.2f sessions/s x [%.2f..%.2f], period %.0fs, %lld sessions, "
              "starting at the trough\n",
              kBaseRate, 1.0 - kDiurnalAmplitude, 1.0 + kDiurnalAmplitude,
              kDiurnalPeriod, static_cast<long long>(kDiurnalSessions));
  std::printf("  %-14s %8s %8s %10s %10s %10s %9s %9s\n", "fleet", "rounds",
              "sessions", "ttft-p99", "makespan", "gpu-sec", "up-range", "up/down");

  ClusterOptions base;
  base.num_replicas = kPeakReplicas;
  base.router = RouterPolicy::kLeastLoadedTokens;
  base.serving.method = RestoreMethod::kHCache;
  base.arrivals.kind = ArrivalSpec::Kind::kDiurnal;
  base.arrivals.diurnal = DiurnalDay();

  ClusterOptions statico = base;  // static-peak: all replicas up, no controller
  const ClusterReport stat = RunLeg(statico, kBaseRate, kDiurnalSessions);
  PrintLegRow("static-peak", stat);

  ClusterOptions autoo = base;
  autoo.initial_replicas = 1;  // the trough needs one; the controller grows from there
  autoo.autoscaler.policy = AutoscalePolicy::kTargetUtilization;
  autoo.autoscaler.min_replicas = 1;
  autoo.autoscaler.max_replicas = kPeakReplicas;
  autoo.autoscaler.target_queued_tokens = 22000.0;
  autoo.autoscaler.evaluate_every_s = 5.0;
  autoo.autoscaler.scale_down_cooldown_s = 45.0;
  const ClusterReport auto_rep = RunLeg(autoo, kBaseRate, kDiurnalSessions);
  PrintLegRow("autoscaled", auto_rep);

  // Static-peak cost is peak * its own makespan (what you pay to provision for the
  // crest all day); the autoscaled fleet pays only the replica-seconds it held.
  const double static_cost = static_cast<double>(kPeakReplicas) * stat.aggregate.makespan;
  const double saved_fraction =
      static_cost > 0 ? 1.0 - auto_rep.replica_seconds / static_cost : 0.0;
  const double p99_ratio = stat.aggregate.ttft.P99() > 0
                               ? auto_rep.aggregate.ttft.P99() / stat.aggregate.ttft.P99()
                               : 1.0;
  const bool savings_met = saved_fraction >= kMinReplicaSecondsSaved;
  const bool p99_met = p99_ratio <= kMaxP99TtftRatio;
  const bool diurnal_complete = auto_rep.sessions_completed == kDiurnalSessions &&
                                auto_rep.sessions_dropped == 0;
  std::printf("\n  replica-seconds saved vs static-peak: %.1f%% (bar >= %.0f%%)%s\n",
              100.0 * saved_fraction, 100.0 * kMinReplicaSecondsSaved,
              savings_met ? "  [MET]" : "  [NOT MET]");
  std::printf("  p99 TTFT autoscaled/static: %.3fx (bar <= %.2fx)%s\n", p99_ratio,
              kMaxP99TtftRatio, p99_met ? "  [MET]" : "  [NOT MET]");

  // ---- Leg 2: flash crowd (informational) ----
  PrintSection("leg 2: flash crowd on the diurnal day (informational)");
  ClusterOptions flash = autoo;
  FlashCrowd spike;
  spike.start = 0.45 * kDiurnalPeriod;  // hits on the way up to the crest
  spike.duration = 60.0;
  spike.multiplier = 2.5;
  flash.arrivals.diurnal.spikes.push_back(spike);
  const ClusterReport flash_rep = RunLeg(flash, kBaseRate, kDiurnalSessions);
  std::printf("  %-14s %8s %8s %10s %10s %10s %9s %9s\n", "fleet", "rounds",
              "sessions", "ttft-p99", "makespan", "gpu-sec", "up-range", "up/down");
  PrintLegRow("flash-crowd", flash_rep);
  std::printf("  spike %.1fx for %.0fs at t=%.0fs -> %lld scale-ups over the run\n",
              spike.multiplier, spike.duration, spike.start,
              static_cast<long long>(flash_rep.scale_ups));

  // ---- Leg 3: replica kill -> session migration ----
  PrintSection("leg 3: fail-stop a replica mid-run, sessions migrate to survivors");
  ClusterOptions kill;
  kill.num_replicas = kKillReplicas;
  kill.router = RouterPolicy::kStickyWithSpill;  // makes migration visible: sessions
                                                 // had a home and lose it
  kill.serving.method = RestoreMethod::kHCache;
  kill.events.push_back(FleetEvent{kKillTime, FleetEvent::Kind::kKill, /*replica=*/-1});
  const ClusterReport kill_rep = RunLeg(kill, kKillLoad, kKillSessions);
  const bool kill_all_sessions = kill_rep.sessions_completed == kKillSessions &&
                                 kill_rep.sessions_dropped == 0;
  const bool kill_migrated = kill_rep.migrated_rounds > 0;
  const bool kill_conserved = kill_rep.aggregate.rounds_submitted ==
                              kill_rep.aggregate.rounds_completed + kill_rep.migrated_rounds;
  const bool kill_no_wrong_bytes = kill_rep.storage.crc_failures == 0;
  std::printf("  replica killed at t=%.0fs (fleet of %d, %.1f sessions/s, %lld "
              "sessions)\n",
              kKillTime, kKillReplicas, kKillLoad,
              static_cast<long long>(kKillSessions));
  std::printf("  migrated rounds: %lld (abandoned on the victim, completed on "
              "survivors)\n",
              static_cast<long long>(kill_rep.migrated_rounds));
  std::printf("  sessions completed: %lld/%lld, recompute fallbacks: %lld, storage "
              "CRC failures: %lld\n",
              static_cast<long long>(kill_rep.sessions_completed),
              static_cast<long long>(kKillSessions),
              static_cast<long long>(kill_rep.aggregate.restore_fallbacks),
              static_cast<long long>(kill_rep.storage.crc_failures));
  std::printf("  round conservation (submitted == completed + migrated): %s\n",
              kill_conserved ? "holds" : "VIOLATED");

  const bool acceptance = savings_met && p99_met && diurnal_complete &&
                          kill_all_sessions && kill_migrated && kill_conserved &&
                          kill_no_wrong_bytes;
  std::printf("\n  acceptance: %s  (>=%.0f%% replica-seconds saved, p99 within "
              "%.2fx, kill leg migrates and completes every session with zero "
              "wrong bytes)\n",
              acceptance ? "MET" : "NOT MET", 100.0 * kMinReplicaSecondsSaved,
              kMaxP99TtftRatio);

  JsonValue diurnal_leg = JsonValue::Object();
  diurnal_leg.Set("base_rate_sessions_per_s", kBaseRate);
  diurnal_leg.Set("sessions", kDiurnalSessions);
  diurnal_leg.Set("period_s", kDiurnalPeriod);
  diurnal_leg.Set("amplitude", kDiurnalAmplitude);
  diurnal_leg.Set("peak_replicas", static_cast<int64_t>(kPeakReplicas));
  diurnal_leg.Set("static_peak", LegJson(stat));
  diurnal_leg.Set("autoscaled", LegJson(auto_rep));
  diurnal_leg.Set("replica_seconds_saved_fraction", saved_fraction);
  diurnal_leg.Set("p99_ttft_ratio_auto_vs_static", p99_ratio);
  diurnal_leg.Set("meets_savings_bar", savings_met);
  diurnal_leg.Set("meets_p99_bar", p99_met);

  JsonValue flash_leg = JsonValue::Object();
  flash_leg.Set("spike_start_s", spike.start);
  flash_leg.Set("spike_duration_s", spike.duration);
  flash_leg.Set("spike_multiplier", spike.multiplier);
  flash_leg.Set("report", LegJson(flash_rep));

  JsonValue kill_leg = JsonValue::Object();
  kill_leg.Set("replicas", static_cast<int64_t>(kKillReplicas));
  kill_leg.Set("kill_time_s", kKillTime);
  kill_leg.Set("load_sessions_per_s", kKillLoad);
  kill_leg.Set("sessions", kKillSessions);
  kill_leg.Set("router", RouterPolicyName(kill.router));
  kill_leg.Set("report", LegJson(kill_rep));
  kill_leg.Set("all_sessions_completed", kill_all_sessions);
  kill_leg.Set("round_conservation_holds", kill_conserved);
  kill_leg.Set("zero_wrong_bytes", kill_no_wrong_bytes);

  JsonValue root = JsonValue::Object();
  root.Set("bench", "ext_elastic");
  root.Set("model", ModelConfig::Llama2_7B().name);
  root.Set("platform_per_replica", Platform::DefaultTestbed(1, 4).Describe());
  root.Set("workload", "sharegpt-conversations");
  root.Set("round_interval_s", kRoundInterval);
  root.Set("seed", static_cast<int64_t>(kSeed));
  root.Set("chunk_bytes", kChunkBytes);
  root.Set("shared_dram_budget_bytes", kSharedDramBytes);
  root.Set("diurnal_ab", std::move(diurnal_leg));
  root.Set("flash_crowd", std::move(flash_leg));
  root.Set("replica_kill", std::move(kill_leg));
  root.Set("acceptance_met", acceptance);
  WriteJsonFile("BENCH_ext_elastic.json", root);
  return acceptance ? 0 : 1;
}
