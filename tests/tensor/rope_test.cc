#include "src/tensor/rope.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace hcache {
namespace {

Tensor RandomActivations(int64_t n, int64_t dim, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, dim});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

TEST(RopeTest, PositionZeroIsIdentity) {
  Tensor x = RandomActivations(1, 8, 1);
  Tensor orig = x.Clone();
  ApplyRopeContiguous(x, /*start_pos=*/0, /*num_heads=*/2, /*head_dim=*/4);
  EXPECT_TRUE(Tensor::BitwiseEqual(x, orig) || Tensor::MaxAbsDiff(x, orig) < 1e-7f);
}

TEST(RopeTest, PreservesPairNorms) {
  Tensor x = RandomActivations(3, 16, 2);
  Tensor orig = x.Clone();
  ApplyRopeContiguous(x, 5, 2, 8);
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t p = 0; p < 8; ++p) {  // 8 rotation pairs per row
      const float a0 = orig.row(t)[2 * p], b0 = orig.row(t)[2 * p + 1];
      const float a1 = x.row(t)[2 * p], b1 = x.row(t)[2 * p + 1];
      EXPECT_NEAR(a0 * a0 + b0 * b0, a1 * a1 + b1 * b1, 1e-4f);
    }
  }
}

TEST(RopeTest, ExplicitPositionsMatchContiguous) {
  Tensor a = RandomActivations(4, 8, 3);
  Tensor b = a.Clone();
  ApplyRopeContiguous(a, 10, 1, 8);
  const int32_t pos[] = {10, 11, 12, 13};
  ApplyRope(b, pos, 1, 8);
  EXPECT_TRUE(Tensor::BitwiseEqual(a, b));
}

TEST(RopeTest, NonContiguousPositionsRotateIndependently) {
  // Token rotated at position 7 must equal the same data rotated at 7 in any batch —
  // this is what lets restoration re-apply RoPE with historical positions.
  Tensor batch = RandomActivations(3, 8, 4);
  Tensor single({1, 8});
  for (int64_t i = 0; i < 8; ++i) {
    single.at(0, i) = batch.at(1, i);
  }
  const int32_t batch_pos[] = {3, 7, 100};
  ApplyRope(batch, batch_pos, 2, 4);
  const int32_t one_pos[] = {7};
  ApplyRope(single, one_pos, 2, 4);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(batch.at(1, i), single.at(0, i));  // bitwise
  }
}

TEST(RopeTest, RelativeAngleProperty) {
  // For a single rotation pair, <rope(q,m), rope(k,n)> depends only on (m-n).
  const int64_t head_dim = 2;
  auto dot_at = [&](int32_t m, int32_t n) {
    Tensor q = Tensor::FromData({1, 2}, {1.0f, 0.5f});
    Tensor k = Tensor::FromData({1, 2}, {0.3f, -0.7f});
    ApplyRope(q, &m, 1, head_dim);
    ApplyRope(k, &n, 1, head_dim);
    return q.at(0, 0) * k.at(0, 0) + q.at(0, 1) * k.at(0, 1);
  };
  EXPECT_NEAR(dot_at(5, 3), dot_at(12, 10), 1e-4f);
  EXPECT_NEAR(dot_at(30, 7), dot_at(123, 100), 1e-3f);
}

TEST(RopeTest, DifferentThetaBasesDiffer) {
  Tensor a = RandomActivations(2, 8, 5);
  Tensor b = a.Clone();
  ApplyRopeContiguous(a, 3, 1, 8, 10000.0f);
  ApplyRopeContiguous(b, 3, 1, 8, 500.0f);
  EXPECT_GT(Tensor::MaxAbsDiff(a, b), 1e-4f);
}

}  // namespace
}  // namespace hcache
