#include "src/tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hcache {
namespace {

TEST(OpsTest, SoftmaxSumsToOne) {
  Tensor t = Tensor::FromData({2, 4}, {1, 2, 3, 4, -1, 0, 1, 2});
  SoftmaxLastDim(t);
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int64_t c = 0; c < 4; ++c) {
      sum += t.at(r, c);
      EXPECT_GT(t.at(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
}

TEST(OpsTest, SoftmaxMonotone) {
  Tensor t = Tensor::FromData({1, 3}, {1, 2, 3});
  SoftmaxLastDim(t);
  EXPECT_LT(t.at(0, 0), t.at(0, 1));
  EXPECT_LT(t.at(0, 1), t.at(0, 2));
}

TEST(OpsTest, SoftmaxStableWithLargeValues) {
  Tensor t = Tensor::FromData({1, 2}, {1000.0f, 1001.0f});
  SoftmaxLastDim(t);
  EXPECT_FALSE(std::isnan(t.at(0, 0)));
  EXPECT_NEAR(t.at(0, 0) + t.at(0, 1), 1.0f, 1e-6f);
  EXPECT_GT(t.at(0, 1), t.at(0, 0));
}

TEST(OpsTest, SoftmaxUniformInput) {
  Tensor t = Tensor::FromData({1, 4}, {5, 5, 5, 5});
  SoftmaxLastDim(t);
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(t.at(0, c), 0.25f, 1e-6f);
  }
}

TEST(OpsTest, RmsNormUnitWeight) {
  Tensor x = Tensor::FromData({1, 4}, {2, 2, 2, 2});
  Tensor w = Tensor::FromData({4}, {1, 1, 1, 1});
  Tensor out({1, 4});
  RmsNorm(x, w.data(), 0.0f, out);
  // rms = 2 -> every element becomes 1.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.at(0, c), 1.0f, 1e-5f);
  }
}

TEST(OpsTest, RmsNormAppliesWeight) {
  Tensor x = Tensor::FromData({1, 2}, {3, 4});
  Tensor w = Tensor::FromData({2}, {2, 0.5});
  Tensor out({1, 2});
  RmsNorm(x, w.data(), 0.0f, out);
  const float rms = std::sqrt((9.0f + 16.0f) / 2.0f);
  EXPECT_NEAR(out.at(0, 0), 3.0f / rms * 2.0f, 1e-5f);
  EXPECT_NEAR(out.at(0, 1), 4.0f / rms * 0.5f, 1e-5f);
}

TEST(OpsTest, LayerNormZeroMeanUnitVar) {
  Tensor x = Tensor::FromData({1, 4}, {1, 2, 3, 4});
  Tensor w = Tensor::FromData({4}, {1, 1, 1, 1});
  Tensor b = Tensor::FromData({4}, {0, 0, 0, 0});
  Tensor out({1, 4});
  LayerNorm(x, w.data(), b.data(), 0.0f, out);
  float mean = 0.0f, var = 0.0f;
  for (int64_t c = 0; c < 4; ++c) {
    mean += out.at(0, c);
  }
  mean /= 4.0f;
  for (int64_t c = 0; c < 4; ++c) {
    var += (out.at(0, c) - mean) * (out.at(0, c) - mean);
  }
  var /= 4.0f;
  EXPECT_NEAR(mean, 0.0f, 1e-5f);
  EXPECT_NEAR(var, 1.0f, 1e-4f);
}

TEST(OpsTest, LayerNormScaleAndBias) {
  Tensor x = Tensor::FromData({1, 2}, {-1, 1});
  Tensor w = Tensor::FromData({2}, {3, 3});
  Tensor b = Tensor::FromData({2}, {10, 10});
  Tensor out({1, 2});
  LayerNorm(x, w.data(), b.data(), 0.0f, out);
  EXPECT_NEAR(out.at(0, 0), 10.0f - 3.0f, 1e-5f);
  EXPECT_NEAR(out.at(0, 1), 10.0f + 3.0f, 1e-5f);
}

TEST(OpsTest, Silu) {
  Tensor t = Tensor::FromData({3}, {0.0f, 10.0f, -10.0f});
  SiluInPlace(t);
  EXPECT_NEAR(t.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(t.at(1), 10.0f, 1e-3f);   // x*sigmoid(x) -> x for large x
  EXPECT_NEAR(t.at(2), 0.0f, 1e-3f);    // -> 0 for very negative x
}

TEST(OpsTest, Gelu) {
  Tensor t = Tensor::FromData({3}, {0.0f, 5.0f, -5.0f});
  GeluInPlace(t);
  EXPECT_NEAR(t.at(0), 0.0f, 1e-6f);
  EXPECT_NEAR(t.at(1), 5.0f, 1e-3f);
  EXPECT_NEAR(t.at(2), 0.0f, 1e-3f);
}

TEST(OpsTest, Relu) {
  Tensor t = Tensor::FromData({3}, {-2.0f, 0.0f, 2.0f});
  ReluInPlace(t);
  EXPECT_EQ(t.at(0), 0.0f);
  EXPECT_EQ(t.at(1), 0.0f);
  EXPECT_EQ(t.at(2), 2.0f);
}

TEST(OpsTest, AddMulInPlace) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {10, 20, 30});
  AddInPlace(a, b);
  EXPECT_EQ(a.at(2), 33.0f);
  MulInPlace(a, b);
  EXPECT_EQ(a.at(0), 110.0f);
}

}  // namespace
}  // namespace hcache
