#include "src/tensor/gemm.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hcache {
namespace {

Tensor RandomMatrix(int64_t r, int64_t c, Rng& rng) {
  Tensor t({r, c});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

// Reference triple loop without blocking.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  for (int64_t i = 0; i < a.dim(0); ++i) {
    for (int64_t j = 0; j < b.dim(1); ++j) {
      double acc = 0.0;
      for (int64_t k = 0; k < a.dim(1); ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownResult) {
  Tensor a = Tensor::FromData({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(GemmTest, MatchesNaiveAcrossShapes) {
  Rng rng(1);
  // Shapes straddling the blocking boundaries (64/256).
  const int64_t shapes[][3] = {{1, 1, 1},   {3, 5, 7},    {64, 64, 64},
                               {65, 257, 3}, {100, 300, 50}, {2, 512, 9}};
  for (const auto& s : shapes) {
    Tensor a = RandomMatrix(s[0], s[1], rng);
    Tensor b = RandomMatrix(s[1], s[2], rng);
    Tensor got = MatMul(a, b);
    Tensor want = NaiveMatMul(a, b);
    EXPECT_LT(Tensor::MaxAbsDiff(got, want), 1e-3f)
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(GemmTest, TransposedBMatchesExplicitTranspose) {
  Rng rng(2);
  Tensor x = RandomMatrix(9, 33, rng);
  Tensor w = RandomMatrix(17, 33, rng);  // [out, in]
  Tensor wt({33, 17});
  for (int64_t i = 0; i < 17; ++i) {
    for (int64_t j = 0; j < 33; ++j) {
      wt.at(j, i) = w.at(i, j);
    }
  }
  Tensor got = MatMulTransposedB(x, w);
  Tensor want = MatMul(x, wt);
  EXPECT_LT(Tensor::MaxAbsDiff(got, want), 1e-4f);
}

TEST(GemmTest, AccumulateAddsIntoC) {
  Tensor a = Tensor::FromData({1, 2}, {1, 1});
  Tensor b = Tensor::FromData({2, 1}, {2, 3});
  Tensor c({1, 1});
  c.at(0) = 100.0f;
  GemmNN(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c.at(0), 105.0f);
  GemmNN(a.data(), b.data(), c.data(), 1, 2, 1, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c.at(0), 5.0f);
}

TEST(GemmTest, GemmNTRowsIndependentOfBatch) {
  // Determinism contract: the result for a given row must not depend on how many other
  // rows are in the batch. The lossless restoration guarantee rests on this.
  Rng rng(3);
  Tensor w = RandomMatrix(13, 29, rng);
  Tensor big = RandomMatrix(8, 29, rng);
  Tensor one({1, 29});
  for (int64_t i = 0; i < 29; ++i) {
    one.at(0, i) = big.at(5, i);
  }
  Tensor full = MatMulTransposedB(big, w);
  Tensor single = MatMulTransposedB(one, w);
  for (int64_t j = 0; j < 13; ++j) {
    // Bitwise equality, not approximate: identical accumulation order is required.
    EXPECT_EQ(full.at(5, j), single.at(0, j));
  }
}

TEST(GemmTest, FlopCountConvention) {
  EXPECT_DOUBLE_EQ(GemmFlops(2, 3, 4), 48.0);  // 2*m*k*n
}

TEST(GemmTest, ZeroSizedDims) {
  Tensor a({0, 5});
  Tensor b({5, 3});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.dim(0), 0);
  EXPECT_EQ(c.dim(1), 3);
}

}  // namespace
}  // namespace hcache
