#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.rank(), 2);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
}

TEST(TensorTest, RowMajorIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);
  t.row(0)[1] = 3.0f;
  EXPECT_EQ(t.at(0, 1), 3.0f);
}

TEST(TensorTest, FromDataAndClone) {
  Tensor t = Tensor::FromData({2, 2}, {1, 2, 3, 4});
  Tensor c = t.Clone();
  c.at(0) = 99.0f;
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(c.at(0), 99.0f);
  EXPECT_TRUE(t.shape() == c.shape());
}

TEST(TensorTest, Reshape) {
  Tensor t({2, 6});
  t.Reshape({3, 4});
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), 4);
  EXPECT_EQ(t.numel(), 12);
}

TEST(TensorTest, FillAndByteSize) {
  Tensor t({5});
  t.Fill(2.5f);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(t.at(i), 2.5f);
  }
  EXPECT_EQ(t.byte_size(), 20u);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor a = Tensor::FromData({3}, {1, 2, 3});
  Tensor b = Tensor::FromData({3}, {1, 2.5, 2});
  EXPECT_FLOAT_EQ(Tensor::MaxAbsDiff(a, b), 1.0f);
}

TEST(TensorTest, BitwiseEqual) {
  Tensor a = Tensor::FromData({2}, {1.0f, -0.0f});
  Tensor b = Tensor::FromData({2}, {1.0f, -0.0f});
  Tensor c = Tensor::FromData({2}, {1.0f, 0.0f});  // +0 vs -0 differ bitwise
  EXPECT_TRUE(Tensor::BitwiseEqual(a, b));
  EXPECT_FALSE(Tensor::BitwiseEqual(a, c));
  Tensor d({3});
  EXPECT_FALSE(Tensor::BitwiseEqual(a, d));
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0);
  Tensor z({0, 4});
  EXPECT_TRUE(z.empty());
}

TEST(TensorTest, ShapeString) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4]");
}

TEST(TensorTest, MoveLeavesSourceReusable) {
  Tensor a({4});
  a.Fill(1.0f);
  Tensor b = std::move(a);
  EXPECT_EQ(b.numel(), 4);
  EXPECT_EQ(b.at(0), 1.0f);
}

}  // namespace
}  // namespace hcache
