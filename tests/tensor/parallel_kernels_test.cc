// Property tests for the threaded functional-plane kernels: every parallel kernel must
// produce BIT-IDENTICAL output to its serial (1-thread) execution, across shapes that
// straddle the GEMM block sizes (64/256), the register tile (4x16), and degenerate
// 1xN / Nx1 cases. The lossless-restoration guarantee depends on this: a KV projection
// computed during prefill on T threads must equal the same projection recomputed at
// restore time on any other thread count.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/model/transformer.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/rope.h"

namespace hcache {
namespace {

constexpr size_t kParallelThreads = 4;

Tensor RandomMatrix(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  Tensor t({r, c});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

// Runs `fn` with a 1-thread shared pool and again with kParallelThreads, returning the
// two results for bitwise comparison. Restores a parallel pool afterwards.
template <typename Fn>
std::pair<Tensor, Tensor> SerialVsParallel(Fn&& fn) {
  ThreadPool::ResizeShared(1);
  Tensor serial = fn();
  ThreadPool::ResizeShared(kParallelThreads);
  Tensor parallel = fn();
  return {std::move(serial), std::move(parallel)};
}

// Shapes chosen to be hostile to the blocking: not multiples of Mc=64/Kc=256/Nc=256 or
// of the 4x16 register tile, plus row and column vectors.
const int64_t kShapes[][3] = {
    {1, 1, 1},     {1, 257, 1},   {3, 5, 513},   {65, 129, 31}, {1, 1024, 9},
    {127, 300, 63}, {64, 256, 256}, {5, 31, 1},    {2, 4096, 17}, {130, 70, 258},
};

TEST(ParallelKernelsTest, GemmNNBitExactAcrossThreadCounts) {
  uint64_t seed = 1;
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message() << s[0] << "x" << s[1] << "x" << s[2]);
    const Tensor a = RandomMatrix(s[0], s[1], seed++);
    const Tensor b = RandomMatrix(s[1], s[2], seed++);
    auto [serial, parallel] = SerialVsParallel([&] {
      Tensor c({s[0], s[2]});
      GemmNN(a.data(), b.data(), c.data(), s[0], s[1], s[2]);
      return c;
    });
    EXPECT_TRUE(Tensor::BitwiseEqual(serial, parallel));
  }
}

TEST(ParallelKernelsTest, GemmNTBitExactAcrossThreadCounts) {
  uint64_t seed = 100;
  for (const auto& s : kShapes) {
    SCOPED_TRACE(testing::Message() << s[0] << "x" << s[1] << "x" << s[2]);
    const Tensor x = RandomMatrix(s[0], s[1], seed++);
    const Tensor w = RandomMatrix(s[2], s[1], seed++);  // [n, k]
    auto [serial, parallel] = SerialVsParallel([&] { return MatMulTransposedB(x, w); });
    EXPECT_TRUE(Tensor::BitwiseEqual(serial, parallel));
  }
}

TEST(ParallelKernelsTest, GemmAccumulateBitExactAcrossThreadCounts) {
  const Tensor a = RandomMatrix(66, 258, 200);
  const Tensor b = RandomMatrix(258, 33, 201);
  const Tensor base = RandomMatrix(66, 33, 202);
  auto [serial, parallel] = SerialVsParallel([&] {
    Tensor c = base.Clone();
    GemmNN(a.data(), b.data(), c.data(), 66, 258, 33, /*accumulate=*/true);
    return c;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(serial, parallel));
}

TEST(ParallelKernelsTest, GemmNTLargeKMatchesNaiveReference) {
  // The satellite fix: GemmNT now gets the same cache blocking as GemmNN. Check a
  // deep-k point against the double-accumulating naive loop for numeric sanity.
  const int64_t m = 9, k = 4096, n = 7;
  const Tensor x = RandomMatrix(m, k, 300);
  const Tensor w = RandomMatrix(n, k, 301);
  const Tensor got = MatMulTransposedB(x, w);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(x.at(i, p)) * w.at(j, p);
      }
      // ~1e-3 relative: fp32 kernel vs fp64 reference over k=4096 terms.
      EXPECT_NEAR(got.at(i, j), static_cast<float>(acc), 2e-2) << i << "," << j;
    }
  }
}

TEST(ParallelKernelsTest, GemmNTRowResultIndependentOfBatchAtAnyThreadCount) {
  // Stronger form of the determinism contract: row results must not depend on the
  // batch size OR the thread count (prefill computes K/V for the whole prompt;
  // restore recomputes them — both must land identical bits).
  const Tensor w = RandomMatrix(13, 4096, 400);
  const Tensor big = RandomMatrix(70, 4096, 401);
  Tensor one({1, 4096});
  for (int64_t i = 0; i < 4096; ++i) {
    one.at(0, i) = big.at(37, i);
  }
  ThreadPool::ResizeShared(kParallelThreads);
  const Tensor full = MatMulTransposedB(big, w);
  ThreadPool::ResizeShared(1);
  const Tensor single = MatMulTransposedB(one, w);
  ThreadPool::ResizeShared(kParallelThreads);
  for (int64_t j = 0; j < 13; ++j) {
    EXPECT_EQ(full.at(37, j), single.at(0, j)) << "col " << j;
  }
}

TEST(ParallelKernelsTest, RopeBitExactAcrossThreadCounts) {
  const Tensor base = RandomMatrix(129, 256, 500);
  std::vector<int32_t> positions(129);
  for (size_t i = 0; i < positions.size(); ++i) {
    positions[i] = static_cast<int32_t>(3 * i + 1);  // non-contiguous positions
  }
  auto [serial, parallel] = SerialVsParallel([&] {
    Tensor x = base.Clone();
    ApplyRope(x, positions.data(), /*num_heads=*/4, /*head_dim=*/64);
    return x;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(serial, parallel));
}

TEST(ParallelKernelsTest, RowWiseOpsBitExactAcrossThreadCounts) {
  const Tensor base = RandomMatrix(201, 67, 600);
  const Tensor weight = RandomMatrix(1, 67, 601);
  const Tensor bias = RandomMatrix(1, 67, 602);

  auto [soft_s, soft_p] = SerialVsParallel([&] {
    Tensor t = base.Clone();
    SoftmaxLastDim(t);
    return t;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(soft_s, soft_p));

  auto [rms_s, rms_p] = SerialVsParallel([&] {
    Tensor out({201, 67});
    RmsNorm(base, weight.data(), 1e-5f, out);
    return out;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(rms_s, rms_p));

  auto [ln_s, ln_p] = SerialVsParallel([&] {
    Tensor out({201, 67});
    LayerNorm(base, weight.data(), bias.data(), 1e-5f, out);
    return out;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(ln_s, ln_p));

  auto [silu_s, silu_p] = SerialVsParallel([&] {
    Tensor t = base.Clone();
    SiluInPlace(t);
    return t;
  });
  EXPECT_TRUE(Tensor::BitwiseEqual(silu_s, silu_p));
}

TEST(ParallelKernelsTest, TransformerForwardBitExactAcrossThreadCounts) {
  // End-to-end: embedding -> norms -> projections -> RoPE -> attention -> FFN across
  // every parallel kernel at once, for both a multi-token prefill and a subsequent
  // single-token decode step.
  const ModelConfig cfg = ModelConfig::TinyLlama(4, 64, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 777);
  Transformer model(&weights);
  Rng rng(9);
  std::vector<int32_t> prompt(37);
  for (auto& t : prompt) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
  }

  auto run = [&] {
    KvBlockPool pool(KvPoolConfig::ForModel(cfg, 64, 8));
    PagedKvSequence seq(&pool);
    Tensor out = model.Forward(prompt, &seq);
    Tensor decode_out = model.Forward({prompt.back()}, &seq);
    // Concatenate the prefill output, one decode step, and the full KV state into one
    // tensor so a single bitwise comparison covers everything.
    Tensor k, v;
    seq.ReadKv(cfg.num_layers - 1, 0, seq.num_tokens(), &k, &v);
    Tensor all({out.numel() + decode_out.numel() + k.numel() + v.numel()});
    int64_t off = 0;
    for (const Tensor* t : {&out, &decode_out, &k, &v}) {
      for (int64_t i = 0; i < t->numel(); ++i) {
        all.at(off++) = t->at(i);
      }
    }
    return all;
  };
  auto [serial, parallel] = SerialVsParallel(run);
  EXPECT_TRUE(Tensor::BitwiseEqual(serial, parallel));
}

}  // namespace
}  // namespace hcache
