#include "src/core/restorer.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

constexpr int64_t kHistory = 1024;

TEST(RestorerTest, IdealIsFree) {
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B());
  const RestoreResult res = r.Restore(RestoreMethod::kIdeal, kHistory);
  EXPECT_DOUBLE_EQ(res.total_time, 0.0);
  EXPECT_DOUBLE_EQ(res.bytes_read, 0.0);
}

TEST(RestorerTest, KvOffloadMovesTwiceTheHiddenBytes) {
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B());
  const RestoreResult kv = r.Restore(RestoreMethod::kKvOffload, kHistory);
  const RestoreResult h = r.Restore(RestoreMethod::kHCacheOnly, kHistory);
  EXPECT_NEAR(kv.bytes_read / h.bytes_read, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(kv.flops, 0.0);
  EXPECT_DOUBLE_EQ(kv.compute_busy, 0.0);
}

TEST(RestorerTest, RecomputeUsesNoIo) {
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B());
  const RestoreResult res = r.Restore(RestoreMethod::kRecompute, kHistory);
  EXPECT_DOUBLE_EQ(res.bytes_read, 0.0);
  EXPECT_DOUBLE_EQ(res.io_busy, 0.0);
  EXPECT_GT(res.flops, 0.0);
}

TEST(RestorerTest, HCacheComputeAtLeastSixTimesCheaperThanRecompute) {
  // Fig 1's claim rendered in FLOPs.
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_13B());
  const RestoreResult rec = r.Restore(RestoreMethod::kRecompute, kHistory);
  const RestoreResult h = r.Restore(RestoreMethod::kHCacheOnly, kHistory);
  EXPECT_GE(rec.flops / h.flops, 6.0);
}

TEST(RestorerTest, DefaultTestbedOrderingMatchesPaper) {
  // On the paper's main platform: HCache < KV offload < recompute in TTFT terms.
  for (const auto& cfg : {ModelConfig::Llama2_7B(), ModelConfig::Llama2_13B()}) {
    Restorer r(Platform::DefaultTestbed(1, 4), cfg);
    const double t_h = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
    const double t_kv = r.Restore(RestoreMethod::kKvOffload, kHistory).total_time;
    const double t_rec = r.Restore(RestoreMethod::kRecompute, kHistory).total_time;
    EXPECT_LT(t_h, t_kv) << cfg.name;
    EXPECT_LT(t_kv, t_rec) << cfg.name;
  }
}

TEST(RestorerTest, SpeedupOverKvOffloadInPaperBand) {
  // §6 headline: 1.33x-2.66x faster restoration than KV offload across platforms.
  struct Case {
    Platform platform;
    ModelConfig cfg;
  };
  const Case cases[] = {
      {Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B()},
      {Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_13B()},
      {Platform::DefaultTestbed(1, 1), ModelConfig::Llama2_7B()},
      {Platform::CloudDram(GpuSpec::A100()), ModelConfig::Llama2_13B()},
      {Platform::CloudDram(GpuSpec::H800()), ModelConfig::Llama2_13B()},
      {Platform::IoSufficient(), ModelConfig::Llama2_7B()},
  };
  for (const auto& c : cases) {
    Restorer r(c.platform, c.cfg);
    const double t_h = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
    const double t_kv = r.Restore(RestoreMethod::kKvOffload, kHistory).total_time;
    const double speedup = t_kv / t_h;
    EXPECT_GE(speedup, 1.25) << c.platform.Describe() << " " << c.cfg.name;
    EXPECT_LE(speedup, 3.0) << c.platform.Describe() << " " << c.cfg.name;
  }
}

TEST(RestorerTest, HCacheNeverSlowerThanHCacheOnly) {
  for (const Platform& p : {Platform::IoSufficient(), Platform::ComputeSufficient(),
                            Platform::Balanced()}) {
    for (const auto& cfg : {ModelConfig::Llama2_7B(), ModelConfig::Llama2_13B()}) {
      Restorer r(p, cfg);
      const double t_full = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
      const double t_only = r.Restore(RestoreMethod::kHCacheOnly, kHistory).total_time;
      EXPECT_LE(t_full, t_only * 1.001) << p.Describe() << " " << cfg.name;
    }
  }
}

TEST(RestorerTest, BubbleFreeSchedulerShrinksBubbles) {
  // Fig 12's mechanism: on skewed platforms HCache-O idles one stream; the scheduler
  // fills it.
  Restorer r(Platform::ComputeSufficient(), ModelConfig::Llama2_7B());
  const RestoreResult only = r.Restore(RestoreMethod::kHCacheOnly, kHistory);
  const RestoreResult full = r.Restore(RestoreMethod::kHCache, kHistory);
  // HCache-O on an IO-starved box: compute stream mostly idle.
  EXPECT_GT(only.compute_bubble / only.total_time, 0.5);
  EXPECT_LT(full.compute_bubble / full.total_time,
            only.compute_bubble / only.total_time);
}

TEST(RestorerTest, HCacheBeatsNaiveHybrid) {
  // §6.3.1: naive hybrid is the best hidden-state-free mix, and HCache still beats it
  // by 1.28-1.42x on all three ablation platforms.
  for (const auto& [platform, cfg] :
       {std::pair{Platform::IoSufficient(), ModelConfig::Llama2_7B()},
        std::pair{Platform::ComputeSufficient(), ModelConfig::Llama2_7B()},
        std::pair{Platform::Balanced(), ModelConfig::Llama2_13B()}}) {
    Restorer r(platform, cfg);
    const double t_h = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
    const double t_n = r.Restore(RestoreMethod::kNaiveHybrid, kHistory).total_time;
    EXPECT_GT(t_n / t_h, 1.15) << platform.Describe();
    EXPECT_LT(t_n / t_h, 1.8) << platform.Describe();
  }
}

TEST(RestorerTest, RestorationSpeedScalesWithContext) {
  // Fig 11g-i: HCache and KV offload speeds stay ~flat with history length; token
  // recomputation degrades.
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B());
  const double h_1k = r.Restore(RestoreMethod::kHCache, 1024).TokensPerSecond();
  const double h_16k = r.Restore(RestoreMethod::kHCache, 16384).TokensPerSecond();
  EXPECT_GT(h_16k, h_1k * 0.8);
  const double rec_1k = r.Restore(RestoreMethod::kRecompute, 1024).TokensPerSecond();
  const double rec_16k = r.Restore(RestoreMethod::kRecompute, 16384).TokensPerSecond();
  EXPECT_LT(rec_16k, rec_1k * 0.9);  // paper: -28% from 1K to 16K
}

TEST(RestorerTest, MultiGpuTensorParallelRestoration) {
  // OPT-30B on 4 GPUs: restoration works and is faster than a (hypothetical) single
  // GPU doing the same model with one SSD's bandwidth.
  Restorer tp4(Platform::DefaultTestbed(4, 4), ModelConfig::Opt30B());
  const RestoreResult res = tp4.Restore(RestoreMethod::kHCache, kHistory);
  EXPECT_GT(res.TokensPerSecond(), 0.0);
  EXPECT_EQ(res.scheme.complement, ComplementMethod::kRecompute);
  Restorer tp1(Platform::DefaultTestbed(1, 1), ModelConfig::Opt30B());
  EXPECT_LT(res.total_time, tp1.Restore(RestoreMethod::kHCache, kHistory).total_time);
}

TEST(RestorerTest, TokenWiseSlowerThanLayerWise) {
  // Fig 13a: naive token-wise partition is ~12% slower; rounding recovers part of it.
  Restorer r(Platform::ComputeSufficient(), ModelConfig::Llama2_13B());
  const double layer_wise = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
  const double token_wise = r.RestoreTokenWise(kHistory, /*round_to_tile=*/false).total_time;
  const double token_round = r.RestoreTokenWise(kHistory, /*round_to_tile=*/true).total_time;
  EXPECT_GT(token_wise, layer_wise * 1.02);
  EXPECT_LE(token_round, token_wise);
  EXPECT_GE(token_round, layer_wise * 0.999);
}

TEST(RestorerTest, PlanSelectorNeverLosesToPureStrategies) {
  // With the fallback plan selector, HCache's chosen plan is never slower than pure
  // KV offload or pure recomputation — across platforms, models, and GQA groupings.
  const Platform platforms[] = {Platform::DefaultTestbed(1, 4), Platform::DefaultTestbed(1, 1),
                                Platform::IoSufficient(), Platform::CloudDram(GpuSpec::H800())};
  const ModelConfig models[] = {ModelConfig::Llama2_7B(),
                                ModelConfig::WithGqa(ModelConfig::Llama2_7B(), 8),
                                ModelConfig::Llama2_13B()};
  for (const auto& p : platforms) {
    for (const auto& m : models) {
      Restorer r(p, m);
      const double t_h = r.Restore(RestoreMethod::kHCache, kHistory).total_time;
      const double t_kv = r.Restore(RestoreMethod::kKvOffload, kHistory).total_time;
      const double t_rec = r.Restore(RestoreMethod::kRecompute, kHistory).total_time;
      EXPECT_LE(t_h, t_kv * 1.001) << p.Describe() << " " << m.name;
      EXPECT_LE(t_h, t_rec * 1.001) << p.Describe() << " " << m.name;
    }
  }
}

TEST(RestorerTest, GqaFallbackPicksPureKvOffload) {
  // Strong GQA makes the KV cache smaller than the hidden states; the plan selector
  // must abandon hidden states entirely.
  const ModelConfig gqa8 = ModelConfig::WithGqa(ModelConfig::Llama2_7B(), 4);
  Restorer r(Platform::DefaultTestbed(1, 4), gqa8);
  const RestoreResult res = r.Restore(RestoreMethod::kHCache, kHistory);
  EXPECT_EQ(res.scheme.layers_hidden, 0);
  EXPECT_EQ(res.scheme.complement, ComplementMethod::kKvOffload);
  const RestoreResult kv = r.Restore(RestoreMethod::kKvOffload, kHistory);
  EXPECT_NEAR(res.total_time, kv.total_time, 1e-9);
}

TEST(RestorerTest, GqaShrinksKvOffloadTime) {
  const ModelConfig mha = ModelConfig::Llama2_7B();
  const ModelConfig gqa4 = ModelConfig::WithGqa(mha, 8);  // 4x grouping
  Restorer r_mha(Platform::DefaultTestbed(1, 4), mha);
  Restorer r_gqa(Platform::DefaultTestbed(1, 4), gqa4);
  const double t_mha = r_mha.Restore(RestoreMethod::kKvOffload, kHistory).total_time;
  const double t_gqa = r_gqa.Restore(RestoreMethod::kKvOffload, kHistory).total_time;
  EXPECT_NEAR(t_mha / t_gqa, 4.0, 0.5);
}

TEST(RestorerTest, PipelineParallelScalesHCache) {
  Restorer r(Platform::DefaultTestbed(4, 4), ModelConfig::Opt30B());
  const double one = r.RestorePipelineParallel(RestoreMethod::kHCache, kHistory, 1)
                         .TokensPerSecond();
  const double four = r.RestorePipelineParallel(RestoreMethod::kHCache, kHistory, 4)
                          .TokensPerSecond();
  EXPECT_GT(four, one * 1.2);  // compute parallelizes; per-stage SSD share caps IO
}

TEST(RestorerTest, PipelineParallelRecomputeScalesLinearly) {
  Restorer r(Platform::DefaultTestbed(4, 4), ModelConfig::Opt30B());
  const double one = r.RestorePipelineParallel(RestoreMethod::kRecompute, kHistory, 1)
                         .TokensPerSecond();
  const double four = r.RestorePipelineParallel(RestoreMethod::kRecompute, kHistory, 4)
                          .TokensPerSecond();
  EXPECT_NEAR(four / one, 4.0, 0.2);  // pure compute, no shared bottleneck
}

TEST(RestorerTest, PipelineParallelAccountingSumsStages) {
  Restorer r(Platform::DefaultTestbed(2, 4), ModelConfig::Opt30B());
  const RestoreResult one = r.RestorePipelineParallel(RestoreMethod::kHCacheOnly, kHistory, 1);
  const RestoreResult two = r.RestorePipelineParallel(RestoreMethod::kHCacheOnly, kHistory, 2);
  // HCache-only moves the same hidden bytes regardless of staging (schemes can't
  // shift layers to a complement here).
  EXPECT_NEAR(two.bytes_read, one.bytes_read, one.bytes_read * 0.05);
  EXPECT_LT(two.total_time, one.total_time);
}

TEST(RestorerTest, ResultAccountingConsistent) {
  Restorer r(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B());
  for (const auto m : {RestoreMethod::kRecompute, RestoreMethod::kKvOffload,
                       RestoreMethod::kHCache, RestoreMethod::kHCacheOnly,
                       RestoreMethod::kNaiveHybrid}) {
    const RestoreResult res = r.Restore(m, kHistory);
    EXPECT_GE(res.total_time, res.compute_busy) << RestoreMethodName(m);
    EXPECT_GE(res.total_time, res.io_busy) << RestoreMethodName(m);
    EXPECT_NEAR(res.compute_bubble, res.total_time - res.compute_busy, 1e-12);
    EXPECT_NEAR(res.io_bubble, res.total_time - res.io_busy, 1e-12);
    EXPECT_FALSE(res.ToString().empty());
  }
}

}  // namespace
}  // namespace hcache
