// Functional restoration under lossy storage codecs: FunctionalHCache configured with
// kFp16 / kInt8 stores encoded chunks, decodes them straight into the projection
// inputs, and must (a) restore deterministically — bit-identical KV across
// File/Memory/Tiered backends, (b) agree exactly with projecting the decoded hidden
// states (the codec is the ONLY source of difference vs lossless restoration), and
// (c) stay within the codec's analytic error bound at the hidden-state level.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <numeric>

#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

class CodecRestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(4, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_codec_restore_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 77));
    model_ = std::make_unique<Transformer>(weights_.get());
    pool_ = std::make_unique<KvBlockPool>(KvPoolConfig::ForModel(cfg_, 64, 12));
    flush_pool_ = std::make_unique<ThreadPool>(3);
  }
  void TearDown() override {
    flush_pool_.reset();
    std::filesystem::remove_all(base_);
  }

  std::vector<int32_t> RandomTokens(int64_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto& x : t) {
      x = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
    }
    return t;
  }

  std::unique_ptr<StorageBackend> MakeBackend(int which) {
    const auto dirs = std::vector<std::string>{
        (base_ / ("d" + std::to_string(which) + "a")).string(),
        (base_ / ("d" + std::to_string(which) + "b")).string()};
    switch (which) {
      case 0:
        return std::make_unique<FileBackend>(dirs, /*chunk_bytes=*/1 << 20);
      case 1:
        return std::make_unique<MemoryBackend>(/*chunk_bytes=*/1 << 20);
      default:
        cold_ = std::make_unique<FileBackend>(dirs, /*chunk_bytes=*/1 << 20);
        // Small budget so reads also exercise cold-tier promotion.
        return std::make_unique<TieredBackend>(cold_.get(), /*dram_capacity_bytes=*/4096);
    }
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<KvBlockPool> pool_;
  std::unique_ptr<ThreadPool> flush_pool_;
  std::unique_ptr<FileBackend> cold_;
};

TEST_F(CodecRestoreTest, LossyRestoreIsExactlyProjectionOfDecodedHidden) {
  // The fused decode feeds RestoreLayerKv; restoring through the engine must equal
  // doing those two steps by hand — the codec introduces no other perturbation.
  const auto prompt = RandomTokens(26, 1);
  const int64_t n = static_cast<int64_t>(prompt.size());
  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    SCOPED_TRACE(ChunkCodecName(codec));
    MemoryBackend store(1 << 20);
    FunctionalHCache engine(model_.get(), &store, flush_pool_.get(), /*chunk_tokens=*/8,
                            codec);
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, engine.BeginCapture(1));
    engine.SealContext(1);
    seq.Evict();

    PartitionScheme s;
    s.layers_hidden = cfg_.num_layers;
    s.layers_other = 0;
    s.complement = ComplementMethod::kNone;
    ASSERT_TRUE(engine.RestoreContext(1, s, {}, &seq));

    std::vector<int32_t> positions(static_cast<size_t>(n));
    std::iota(positions.begin(), positions.end(), 0);
    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      const Tensor decoded = engine.ReadHidden(1, layer, n);
      Tensor k_ref, v_ref, k_got, v_got;
      model_->RestoreLayerKv(layer, decoded, positions.data(), &k_ref, &v_ref);
      seq.ReadKv(layer, 0, n, &k_got, &v_got);
      EXPECT_TRUE(Tensor::BitwiseEqual(k_got, k_ref)) << "K layer " << layer;
      EXPECT_TRUE(Tensor::BitwiseEqual(v_got, v_ref)) << "V layer " << layer;
    }
    seq.Evict();
    engine.DropContext(1);
  }
}

TEST_F(CodecRestoreTest, StoredHiddenStatesWithinCodecErrorBound) {
  const auto prompt = RandomTokens(30, 2);
  const int64_t n = static_cast<int64_t>(prompt.size());

  // Lossless reference capture.
  MemoryBackend ref_store(1 << 20);
  FunctionalHCache ref_engine(model_.get(), &ref_store, nullptr, 8, ChunkCodec::kFp32);
  {
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, ref_engine.BeginCapture(1));
    ref_engine.SealContext(1);
    seq.Evict();
  }

  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    SCOPED_TRACE(ChunkCodecName(codec));
    MemoryBackend store(1 << 20);
    FunctionalHCache engine(model_.get(), &store, nullptr, 8, codec);
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, engine.BeginCapture(1));
    engine.SealContext(1);
    seq.Evict();

    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      const Tensor exact = ref_engine.ReadHidden(1, layer, n);
      const Tensor lossy = engine.ReadHidden(1, layer, n);
      for (int64_t r = 0; r < n; ++r) {
        float max_abs = 0;
        for (int64_t c = 0; c < cfg_.hidden_dim; ++c) {
          max_abs = std::max(max_abs, std::fabs(exact.at(r, c)));
        }
        for (int64_t c = 0; c < cfg_.hidden_dim; ++c) {
          const float err = std::fabs(lossy.at(r, c) - exact.at(r, c));
          if (codec == ChunkCodec::kFp16) {
            EXPECT_LE(err, Fp16UlpOf(lossy.at(r, c))) << layer << "/" << r << "/" << c;
          } else {
            EXPECT_LE(err, max_abs / 254.0f + 1e-12f) << layer << "/" << r << "/" << c;
          }
        }
      }
    }
    engine.DropContext(1);
  }
}

TEST_F(CodecRestoreTest, Fp16RestoreBitStableAcrossBackends) {
  // The fig-4 acceptance bar: identical decoded state — and therefore identical
  // restored KV — on file, memory, and tiered backends, pipelined or serial.
  const auto prompt = RandomTokens(22, 3);
  const int64_t n = static_cast<int64_t>(prompt.size());
  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    SCOPED_TRACE(ChunkCodecName(codec));
    std::vector<Tensor> ks, vs;
    for (int which = 0; which < 3; ++which) {
      auto store = MakeBackend(which);
      SCOPED_TRACE(store->Name());
      FunctionalHCache engine(model_.get(), store.get(),
                              which == 1 ? nullptr : flush_pool_.get(), 8, codec);
      const int64_t ctx = 40 + which;
      PagedKvSequence seq(pool_.get());
      model_->Forward(prompt, &seq, engine.BeginCapture(ctx));
      engine.SealContext(ctx);
      seq.Evict();
      PartitionScheme s;
      s.layers_hidden = cfg_.num_layers;
      s.layers_other = 0;
      s.complement = ComplementMethod::kNone;
      ASSERT_TRUE(engine.RestoreContext(ctx, s, {}, &seq));
      Tensor k, v;
      seq.ReadKv(cfg_.num_layers - 1, 0, n, &k, &v);
      ks.push_back(std::move(k));
      vs.push_back(std::move(v));
      seq.Evict();
      engine.DropContext(ctx);
    }
    EXPECT_TRUE(Tensor::BitwiseEqual(ks[0], ks[1]));
    EXPECT_TRUE(Tensor::BitwiseEqual(ks[1], ks[2]));
    EXPECT_TRUE(Tensor::BitwiseEqual(vs[0], vs[1]));
    EXPECT_TRUE(Tensor::BitwiseEqual(vs[1], vs[2]));
  }
}

TEST_F(CodecRestoreTest, KvOffloadComplementDecodesEncodedKvChunks) {
  // KV chunks are encoded with the same codec; the de-interleaving decode must land
  // K/V whose error vs the never-evicted reference is codec-bounded (KV rows are the
  // *encoded* quantity here, so the bound applies to them directly).
  const auto prompt = RandomTokens(20, 4);
  const int64_t n = static_cast<int64_t>(prompt.size());
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    SCOPED_TRACE(ChunkCodecName(codec));
    MemoryBackend store(1 << 20);
    FunctionalHCache engine(model_.get(), &store, flush_pool_.get(), 8, codec);
    const int64_t last = cfg_.num_layers - 1;
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, engine.BeginCapture(1));
    engine.SealContext(1);
    engine.SaveKvLayers(1, seq, {last});
    seq.Evict();

    PartitionScheme s;
    s.layers_hidden = last;
    s.layers_other = 1;
    s.complement = ComplementMethod::kKvOffload;
    ASSERT_TRUE(engine.RestoreContext(1, s, {}, &seq));

    Tensor k_ref, v_ref, k_got, v_got;
    ref.ReadKv(last, 0, n, &k_ref, &v_ref);
    seq.ReadKv(last, 0, n, &k_got, &v_got);
    for (int64_t r = 0; r < n; ++r) {
      // Bound per interleaved [K | V] row, the unit the codec encodes.
      float max_abs = 0;
      for (int64_t c = 0; c < cfg_.kv_dim(); ++c) {
        max_abs = std::max({max_abs, std::fabs(k_ref.at(r, c)), std::fabs(v_ref.at(r, c))});
      }
      for (int64_t c = 0; c < cfg_.kv_dim(); ++c) {
        const float bound = codec == ChunkCodec::kFp16
                                ? std::max(Fp16UlpOf(k_got.at(r, c)), Fp16UlpOf(v_got.at(r, c)))
                                : max_abs / 254.0f + 1e-12f;
        EXPECT_LE(std::fabs(k_got.at(r, c) - k_ref.at(r, c)), bound) << r << "," << c;
        EXPECT_LE(std::fabs(v_got.at(r, c) - v_ref.at(r, c)), bound) << r << "," << c;
      }
    }
    seq.Evict();
    engine.DropContext(1);
  }
}

}  // namespace
}  // namespace hcache
