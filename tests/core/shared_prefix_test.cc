#include "src/core/shared_prefix.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/common/rng.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/file_backend.h"

namespace hcache {
namespace {

class SharedPrefixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(3, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_prefix_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string()}, 1 << 20);
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 5));
    model_ = std::make_unique<Transformer>(weights_.get());
    pool_ = std::make_unique<KvBlockPool>(KvPoolConfig::ForModel(cfg_, 128, 8));
    mgr_ = std::make_unique<SharedPrefixManager>(model_.get(), store_.get(),
                                                 /*chunk_tokens=*/8);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<int32_t> RandomTokens(int64_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto& x : t) {
      x = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
    }
    return t;
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<KvBlockPool> pool_;
  std::unique_ptr<SharedPrefixManager> mgr_;
};

TEST_F(SharedPrefixTest, InternDedupsIdenticalPrefixes) {
  const auto sys_prompt = RandomTokens(12, 1);
  const int64_t a = mgr_->InternPrefix(sys_prompt, pool_.get());
  const int64_t chunks_after_first = store_->chunks_stored();
  const int64_t b = mgr_->InternPrefix(sys_prompt, pool_.get());
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_->chunks_stored(), chunks_after_first);  // nothing re-written
  EXPECT_EQ(mgr_->GetPrefix(a)->ref_count, 2);
  EXPECT_GT(mgr_->bytes_deduped(), 0);
  EXPECT_EQ(mgr_->num_prefixes(), 1);
}

TEST_F(SharedPrefixTest, DistinctPrefixesGetDistinctIds) {
  const int64_t a = mgr_->InternPrefix(RandomTokens(10, 2), pool_.get());
  const int64_t b = mgr_->InternPrefix(RandomTokens(10, 3), pool_.get());
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr_->num_prefixes(), 2);
}

TEST_F(SharedPrefixTest, RestoreWithSharedPrefixIsBitExact) {
  const auto prefix = RandomTokens(11, 4);  // deliberately not chunk-aligned
  const auto suffix = RandomTokens(7, 5);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());

  // Reference: plain prefill of prefix+suffix.
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());
  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);

  // Context 1: forward with suffix-only capture, evict, restore from shared + own.
  PagedKvSequence seq(pool_.get());
  HiddenStateSink* sink = mgr_->BeginSuffixCapture(1, pid);
  model_->Forward(full, &seq, sink);
  mgr_->SealContext(1);
  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(1, pid, &seq));

  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor ka, va, kb, vb;
    ref.ReadKv(layer, 0, ref.num_tokens(), &ka, &va);
    seq.ReadKv(layer, 0, seq.num_tokens(), &kb, &vb);
    EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
  }
}

TEST_F(SharedPrefixTest, TwoContextsShareOnePrefixCopy) {
  const auto prefix = RandomTokens(16, 6);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  mgr_->InternPrefix(prefix, pool_.get());  // second user

  const auto suffix_a = RandomTokens(5, 7);
  const auto suffix_b = RandomTokens(9, 8);
  std::vector<int32_t> full_a = prefix, full_b = prefix;
  full_a.insert(full_a.end(), suffix_a.begin(), suffix_a.end());
  full_b.insert(full_b.end(), suffix_b.begin(), suffix_b.end());

  PagedKvSequence sa(pool_.get()), sb(pool_.get());
  model_->Forward(full_a, &sa, mgr_->BeginSuffixCapture(10, pid));
  model_->Forward(full_b, &sb, mgr_->BeginSuffixCapture(11, pid));
  mgr_->SealContext(10);
  mgr_->SealContext(11);
  sa.Evict();
  sb.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(10, pid, &sa));
  ASSERT_TRUE(mgr_->RestoreContext(11, pid, &sb));

  // Both restored sequences decode identically to fresh prefills.
  PagedKvSequence ra(pool_.get()), rb(pool_.get());
  model_->Forward(full_a, &ra);
  model_->Forward(full_b, &rb);
  EXPECT_EQ(model_->GreedyDecode(full_a.back(), 4, &sa),
            model_->GreedyDecode(full_a.back(), 4, &ra));
  EXPECT_EQ(model_->GreedyDecode(full_b.back(), 4, &sb),
            model_->GreedyDecode(full_b.back(), 4, &rb));
}

TEST_F(SharedPrefixTest, DecodePhaseTokensAlsoCaptured) {
  const auto prefix = RandomTokens(8, 9);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  const auto suffix = RandomTokens(3, 10);
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());

  PagedKvSequence seq(pool_.get());
  HiddenStateSink* sink = mgr_->BeginSuffixCapture(20, pid);
  model_->Forward(full, &seq, sink);
  const auto generated = model_->GreedyDecode(full.back(), 4, &seq, sink);
  mgr_->SealContext(20);

  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);
  const auto ref_gen = model_->GreedyDecode(full.back(), 4, &ref);
  ASSERT_EQ(generated, ref_gen);

  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(20, pid, &seq));
  EXPECT_EQ(seq.num_tokens(), ref.num_tokens());
  EXPECT_EQ(model_->GreedyDecode(generated.back(), 3, &seq),
            model_->GreedyDecode(ref_gen.back(), 3, &ref));
}

TEST_F(SharedPrefixTest, ReleaseDeletesAtZeroRefs) {
  const auto prefix = RandomTokens(10, 11);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  mgr_->InternPrefix(prefix, pool_.get());
  EXPECT_GT(store_->chunks_stored(), 0);
  mgr_->ReleasePrefix(pid);
  EXPECT_NE(mgr_->GetPrefix(pid), nullptr);  // one ref remains
  mgr_->ReleasePrefix(pid);
  EXPECT_EQ(mgr_->GetPrefix(pid), nullptr);
  EXPECT_EQ(store_->chunks_stored(), 0);
  // Re-interning after release re-creates the prefix.
  const int64_t pid2 = mgr_->InternPrefix(prefix, pool_.get());
  EXPECT_NE(pid2, pid);
  EXPECT_GT(store_->chunks_stored(), 0);
}

TEST_F(SharedPrefixTest, HashCollisionAllocatesFreshPrefix) {
  // Regression: the manager used to trust the 64-bit token hash plus a LENGTH check,
  // so two same-length prompts colliding on the hash would silently share one
  // prefix — one user's hidden states restored into the other's KV. Force every
  // token stream onto one hash bucket and require full-content discrimination.
  mgr_->SetTokenHashForTest([](const std::vector<int32_t>&) { return 0xdeadbeefull; });
  const auto prompt_a = RandomTokens(12, 21);
  const auto prompt_b = RandomTokens(12, 22);  // same length, different tokens
  ASSERT_NE(prompt_a, prompt_b);
  const int64_t a = mgr_->InternPrefix(prompt_a, pool_.get());
  const int64_t b = mgr_->InternPrefix(prompt_b, pool_.get());
  EXPECT_NE(a, b) << "colliding prompts must not share a prefix id";
  EXPECT_EQ(mgr_->num_prefixes(), 2);

  // Interning either stream again still dedups against ITS OWN prefix.
  EXPECT_EQ(mgr_->InternPrefix(prompt_a, pool_.get()), a);
  EXPECT_EQ(mgr_->InternPrefix(prompt_b, pool_.get()), b);
  EXPECT_EQ(mgr_->GetPrefix(a)->ref_count, 2);
  EXPECT_EQ(mgr_->GetPrefix(b)->ref_count, 2);

  // And each prefix restores ITS tokens' states: a context on prompt_b must decode
  // exactly like a never-evicted prompt_b prefill, not like prompt_a's.
  const auto suffix = RandomTokens(5, 23);
  std::vector<int32_t> full_b = prompt_b;
  full_b.insert(full_b.end(), suffix.begin(), suffix.end());
  PagedKvSequence seq(pool_.get());
  model_->Forward(full_b, &seq, mgr_->BeginSuffixCapture(40, b));
  mgr_->SealContext(40);
  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(40, b, &seq));
  PagedKvSequence ref(pool_.get());
  model_->Forward(full_b, &ref);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor ka, va, kb, vb;
    ref.ReadKv(layer, 0, ref.num_tokens(), &ka, &va);
    seq.ReadKv(layer, 0, seq.num_tokens(), &kb, &vb);
    EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
  }

  // Releasing one of the colliding prefixes leaves the other's bucket entry intact.
  mgr_->ReleasePrefix(a);
  mgr_->ReleasePrefix(a);
  EXPECT_EQ(mgr_->GetPrefix(a), nullptr);
  EXPECT_EQ(mgr_->InternPrefix(prompt_b, pool_.get()), b);
}

TEST_F(SharedPrefixTest, CaptureHoldsPrefixReferenceAcrossRelease) {
  // Regression: BeginSuffixCapture took no prefix reference, so the interner's
  // ReleasePrefix deleted the shared chunks under a live context and the later
  // RestoreContext CHECK-crashed reading them. The capture must keep the prefix
  // alive until DropContext.
  const auto prefix = RandomTokens(10, 24);
  const auto suffix = RandomTokens(6, 25);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());

  PagedKvSequence seq(pool_.get());
  model_->Forward(full, &seq, mgr_->BeginSuffixCapture(50, pid));
  mgr_->SealContext(50);
  EXPECT_EQ(mgr_->GetPrefix(pid)->ref_count, 2);  // interner + capture

  mgr_->ReleasePrefix(pid);  // interner is done; context 50 is not
  ASSERT_NE(mgr_->GetPrefix(pid), nullptr) << "live capture must keep the prefix";

  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(50, pid, &seq));
  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor ka, va, kb, vb;
    ref.ReadKv(layer, 0, ref.num_tokens(), &ka, &va);
    seq.ReadKv(layer, 0, seq.num_tokens(), &kb, &vb);
    EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
  }

  // DropContext releases the capture's reference — the LAST one — so the prefix
  // and its chunks go away now, and only now.
  mgr_->DropContext(50);
  EXPECT_EQ(mgr_->GetPrefix(pid), nullptr);
  EXPECT_EQ(store_->chunks_stored(), 0);
}

TEST_F(SharedPrefixTest, BytesDedupedTracksActiveCodec) {
  // Regression: bytes_deduped() hardcoded sizeof(float), overstating fp16
  // deployments 2x. It must report the encoded bytes a repeat intern actually
  // avoided writing.
  const auto prompt = RandomTokens(16, 26);

  SharedPrefixManager fp16_mgr(model_.get(), store_.get(), /*chunk_tokens=*/8,
                               ChunkCodec::kFp16);
  const int64_t p16 = fp16_mgr.InternPrefix(prompt, pool_.get());
  fp16_mgr.InternPrefix(prompt, pool_.get());
  const int64_t fp16_saved = fp16_mgr.bytes_deduped();
  EXPECT_EQ(fp16_saved, fp16_mgr.GetPrefix(p16)->encoded_bytes);
  fp16_mgr.ReleasePrefix(p16);
  fp16_mgr.ReleasePrefix(p16);

  const int64_t p32 = mgr_->InternPrefix(prompt, pool_.get());
  mgr_->InternPrefix(prompt, pool_.get());
  const int64_t fp32_saved = mgr_->bytes_deduped();
  EXPECT_EQ(fp32_saved, mgr_->GetPrefix(p32)->encoded_bytes);

  // fp16 rows are half the fp32 rows; headers keep the ratio from being exactly 2.
  EXPECT_LT(fp16_saved, fp32_saved);
  EXPECT_GT(fp16_saved, fp32_saved / 4);
  // And the figure is the store's truth, not a sizeof(float) estimate: what the
  // writer reported persisting for one prefix copy.
  const int64_t naive = cfg_.num_layers * static_cast<int64_t>(prompt.size()) *
                        cfg_.hidden_dim * static_cast<int64_t>(sizeof(float));
  EXPECT_NE(fp16_saved, naive);
}

TEST_F(SharedPrefixTest, DedupStoreSharesIdenticalSuffixChunksAcrossContexts) {
  // The manager over the content-addressed plane: two contexts that happen to save
  // byte-identical suffix states single-instance in the store with no manager
  // involvement, and restores stay bit-exact.
  DedupBackend dedup(store_.get());
  SharedPrefixManager mgr(model_.get(), &dedup, /*chunk_tokens=*/8);
  const auto prefix = RandomTokens(8, 27);
  const auto suffix = RandomTokens(8, 28);  // chunk-aligned: identical full chunks
  const int64_t pid = mgr.InternPrefix(prefix, pool_.get());
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());

  PagedKvSequence sa(pool_.get()), sb(pool_.get());
  model_->Forward(full, &sa, mgr.BeginSuffixCapture(60, pid));
  model_->Forward(full, &sb, mgr.BeginSuffixCapture(61, pid));
  mgr.SealContext(60);
  mgr.SealContext(61);

  const StorageStats s = dedup.Stats();
  EXPECT_GT(s.dedup_hits, 0) << "identical suffix chunks must dedup in the store";
  EXPECT_LT(s.unique_chunks, s.chunks_stored);

  sa.Evict();
  ASSERT_TRUE(mgr.RestoreContext(60, pid, &sa));
  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor ka, va, kb, vb;
    ref.ReadKv(layer, 0, ref.num_tokens(), &ka, &va);
    sa.ReadKv(layer, 0, sa.num_tokens(), &kb, &vb);
    EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
  }
  mgr.DropContext(60);
  mgr.DropContext(61);
  mgr.ReleasePrefix(pid);
  EXPECT_EQ(dedup.Stats().chunks_stored, 0);
  EXPECT_EQ(dedup.PhysicalBytes(), 0);
}

TEST_F(SharedPrefixTest, RestoreFailsWhenSuffixMissing) {
  const auto prefix = RandomTokens(8, 12);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  std::vector<int32_t> full = prefix;
  const auto suffix = RandomTokens(4, 13);
  full.insert(full.end(), suffix.begin(), suffix.end());
  PagedKvSequence seq(pool_.get());
  model_->Forward(full, &seq, mgr_->BeginSuffixCapture(30, pid));
  mgr_->SealContext(30);
  seq.Evict();
  mgr_->DropContext(30);  // lose the suffix, keep the prefix
  EXPECT_FALSE(mgr_->RestoreContext(30, pid, &seq));
  EXPECT_FALSE(seq.has_kv());
  EXPECT_EQ(seq.num_tokens(), 12);
}

}  // namespace
}  // namespace hcache
