#include "src/core/shared_prefix.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/common/rng.h"
#include "src/storage/file_backend.h"

namespace hcache {
namespace {

class SharedPrefixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(3, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_prefix_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string()}, 1 << 20);
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 5));
    model_ = std::make_unique<Transformer>(weights_.get());
    pool_ = std::make_unique<KvBlockPool>(KvPoolConfig::ForModel(cfg_, 128, 8));
    mgr_ = std::make_unique<SharedPrefixManager>(model_.get(), store_.get(),
                                                 /*chunk_tokens=*/8);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<int32_t> RandomTokens(int64_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto& x : t) {
      x = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
    }
    return t;
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<KvBlockPool> pool_;
  std::unique_ptr<SharedPrefixManager> mgr_;
};

TEST_F(SharedPrefixTest, InternDedupsIdenticalPrefixes) {
  const auto sys_prompt = RandomTokens(12, 1);
  const int64_t a = mgr_->InternPrefix(sys_prompt, pool_.get());
  const int64_t chunks_after_first = store_->chunks_stored();
  const int64_t b = mgr_->InternPrefix(sys_prompt, pool_.get());
  EXPECT_EQ(a, b);
  EXPECT_EQ(store_->chunks_stored(), chunks_after_first);  // nothing re-written
  EXPECT_EQ(mgr_->GetPrefix(a)->ref_count, 2);
  EXPECT_GT(mgr_->bytes_deduped(), 0);
  EXPECT_EQ(mgr_->num_prefixes(), 1);
}

TEST_F(SharedPrefixTest, DistinctPrefixesGetDistinctIds) {
  const int64_t a = mgr_->InternPrefix(RandomTokens(10, 2), pool_.get());
  const int64_t b = mgr_->InternPrefix(RandomTokens(10, 3), pool_.get());
  EXPECT_NE(a, b);
  EXPECT_EQ(mgr_->num_prefixes(), 2);
}

TEST_F(SharedPrefixTest, RestoreWithSharedPrefixIsBitExact) {
  const auto prefix = RandomTokens(11, 4);  // deliberately not chunk-aligned
  const auto suffix = RandomTokens(7, 5);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());

  // Reference: plain prefill of prefix+suffix.
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());
  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);

  // Context 1: forward with suffix-only capture, evict, restore from shared + own.
  PagedKvSequence seq(pool_.get());
  HiddenStateSink* sink = mgr_->BeginSuffixCapture(1, pid);
  model_->Forward(full, &seq, sink);
  mgr_->SealContext(1);
  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(1, pid, &seq));

  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor ka, va, kb, vb;
    ref.ReadKv(layer, 0, ref.num_tokens(), &ka, &va);
    seq.ReadKv(layer, 0, seq.num_tokens(), &kb, &vb);
    EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
  }
}

TEST_F(SharedPrefixTest, TwoContextsShareOnePrefixCopy) {
  const auto prefix = RandomTokens(16, 6);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  mgr_->InternPrefix(prefix, pool_.get());  // second user

  const auto suffix_a = RandomTokens(5, 7);
  const auto suffix_b = RandomTokens(9, 8);
  std::vector<int32_t> full_a = prefix, full_b = prefix;
  full_a.insert(full_a.end(), suffix_a.begin(), suffix_a.end());
  full_b.insert(full_b.end(), suffix_b.begin(), suffix_b.end());

  PagedKvSequence sa(pool_.get()), sb(pool_.get());
  model_->Forward(full_a, &sa, mgr_->BeginSuffixCapture(10, pid));
  model_->Forward(full_b, &sb, mgr_->BeginSuffixCapture(11, pid));
  mgr_->SealContext(10);
  mgr_->SealContext(11);
  sa.Evict();
  sb.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(10, pid, &sa));
  ASSERT_TRUE(mgr_->RestoreContext(11, pid, &sb));

  // Both restored sequences decode identically to fresh prefills.
  PagedKvSequence ra(pool_.get()), rb(pool_.get());
  model_->Forward(full_a, &ra);
  model_->Forward(full_b, &rb);
  EXPECT_EQ(model_->GreedyDecode(full_a.back(), 4, &sa),
            model_->GreedyDecode(full_a.back(), 4, &ra));
  EXPECT_EQ(model_->GreedyDecode(full_b.back(), 4, &sb),
            model_->GreedyDecode(full_b.back(), 4, &rb));
}

TEST_F(SharedPrefixTest, DecodePhaseTokensAlsoCaptured) {
  const auto prefix = RandomTokens(8, 9);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  const auto suffix = RandomTokens(3, 10);
  std::vector<int32_t> full = prefix;
  full.insert(full.end(), suffix.begin(), suffix.end());

  PagedKvSequence seq(pool_.get());
  HiddenStateSink* sink = mgr_->BeginSuffixCapture(20, pid);
  model_->Forward(full, &seq, sink);
  const auto generated = model_->GreedyDecode(full.back(), 4, &seq, sink);
  mgr_->SealContext(20);

  PagedKvSequence ref(pool_.get());
  model_->Forward(full, &ref);
  const auto ref_gen = model_->GreedyDecode(full.back(), 4, &ref);
  ASSERT_EQ(generated, ref_gen);

  seq.Evict();
  ASSERT_TRUE(mgr_->RestoreContext(20, pid, &seq));
  EXPECT_EQ(seq.num_tokens(), ref.num_tokens());
  EXPECT_EQ(model_->GreedyDecode(generated.back(), 3, &seq),
            model_->GreedyDecode(ref_gen.back(), 3, &ref));
}

TEST_F(SharedPrefixTest, ReleaseDeletesAtZeroRefs) {
  const auto prefix = RandomTokens(10, 11);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  mgr_->InternPrefix(prefix, pool_.get());
  EXPECT_GT(store_->chunks_stored(), 0);
  mgr_->ReleasePrefix(pid);
  EXPECT_NE(mgr_->GetPrefix(pid), nullptr);  // one ref remains
  mgr_->ReleasePrefix(pid);
  EXPECT_EQ(mgr_->GetPrefix(pid), nullptr);
  EXPECT_EQ(store_->chunks_stored(), 0);
  // Re-interning after release re-creates the prefix.
  const int64_t pid2 = mgr_->InternPrefix(prefix, pool_.get());
  EXPECT_NE(pid2, pid);
  EXPECT_GT(store_->chunks_stored(), 0);
}

TEST_F(SharedPrefixTest, RestoreFailsWhenSuffixMissing) {
  const auto prefix = RandomTokens(8, 12);
  const int64_t pid = mgr_->InternPrefix(prefix, pool_.get());
  std::vector<int32_t> full = prefix;
  const auto suffix = RandomTokens(4, 13);
  full.insert(full.end(), suffix.begin(), suffix.end());
  PagedKvSequence seq(pool_.get());
  model_->Forward(full, &seq, mgr_->BeginSuffixCapture(30, pid));
  mgr_->SealContext(30);
  seq.Evict();
  mgr_->DropContext(30);  // lose the suffix, keep the prefix
  EXPECT_FALSE(mgr_->RestoreContext(30, pid, &seq));
  EXPECT_FALSE(seq.has_kv());
  EXPECT_EQ(seq.num_tokens(), 12);
}

}  // namespace
}  // namespace hcache
