#include "src/core/partition.h"

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/core/profiler.h"

namespace hcache {
namespace {

// ===== Table 3: the paper's scheduling results on the default testbed =====

TEST(PartitionTable3Test, Llama7BSchedule) {
  // Paper: "31 H + 1 KV" for Llama2-7B on one A100 with 4 SSDs.
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const PartitionScheme s = SolveLayerWise(ProfileLayer(p, cfg, 1024), cfg.num_layers);
  EXPECT_EQ(s.complement, ComplementMethod::kKvOffload);
  EXPECT_EQ(s.layers_hidden, 31);
  EXPECT_EQ(s.layers_other, 1);
}

TEST(PartitionTable3Test, Llama13BSchedule) {
  // Paper: "36 H + 4 KV". Our calibration lands within one layer of it; assert the
  // regime and the >80% hidden-share claim of §6.1.3.
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const PartitionScheme s = SolveLayerWise(ProfileLayer(p, cfg, 1024), cfg.num_layers);
  EXPECT_EQ(s.complement, ComplementMethod::kKvOffload);
  EXPECT_GE(s.layers_hidden, 34);
  EXPECT_LE(s.layers_other, 6);
  EXPECT_GT(static_cast<double>(s.layers_hidden) / cfg.num_layers, 0.8);
}

TEST(PartitionTable3Test, Opt30BSchedule) {
  // Paper: "40 H + 8 RE" on 4x A100 TP with one SSD per GPU.
  const Platform p = Platform::DefaultTestbed(4, 4);
  const ModelConfig cfg = ModelConfig::Opt30B();
  const PartitionScheme s = SolveLayerWise(ProfileLayer(p, cfg, 1024), cfg.num_layers);
  EXPECT_EQ(s.complement, ComplementMethod::kRecompute);
  EXPECT_EQ(s.layers_hidden, 40);
  EXPECT_EQ(s.layers_other, 8);
}

TEST(PartitionTable3Test, StorageCostMatchesPaperUnits) {
  // Table 3 reports per-token storage in KiB at one byte per element:
  // 7B HCache 132 KiB vs KV offload 256 KiB; OPT-30B 280 KiB vs 672 KiB.
  const ModelConfig m7 = ModelConfig::Llama2_7B();
  PartitionScheme s7;
  s7.layers_hidden = 31;
  s7.layers_other = 1;
  s7.complement = ComplementMethod::kKvOffload;
  EXPECT_EQ(s7.StoredElementsPerToken(m7), 132 * 1024);
  EXPECT_EQ(m7.KvBytesPerToken() / m7.state_dtype_bytes, 256 * 1024);

  const ModelConfig m30 = ModelConfig::Opt30B();
  PartitionScheme s30;
  s30.layers_hidden = 40;
  s30.layers_other = 8;
  s30.complement = ComplementMethod::kRecompute;
  EXPECT_EQ(s30.StoredElementsPerToken(m30), 280 * 1024);
  EXPECT_EQ(m30.KvBytesPerToken() / m30.state_dtype_bytes, 672 * 1024);
}

TEST(PartitionTable3Test, StorageSavingsRatioInPaperRange) {
  // "1.92-2.40x less storage space".
  struct Case {
    ModelConfig cfg;
    Platform platform;
  };
  const Case cases[] = {
      {ModelConfig::Llama2_7B(), Platform::DefaultTestbed(1, 4)},
      {ModelConfig::Llama2_13B(), Platform::DefaultTestbed(1, 4)},
      {ModelConfig::Opt30B(), Platform::DefaultTestbed(4, 4)},
  };
  for (const auto& c : cases) {
    const PartitionScheme s =
        SolveLayerWise(ProfileLayer(c.platform, c.cfg, 1024), c.cfg.num_layers);
    const double ratio = static_cast<double>(c.cfg.KvBytesPerToken()) /
                         static_cast<double>(s.StoredBytesPerToken(c.cfg));
    // Paper: 1.92-2.40x. Our 13B schedule trades one layer more to KV offload than the
    // paper's (35H+5KV vs 36H+4KV), which lowers its ratio to ~1.78.
    EXPECT_GE(ratio, 1.7) << c.cfg.name;
    EXPECT_LE(ratio, 2.5) << c.cfg.name;
  }
}

TEST(PartitionTest, BalancedBandwidthMatchesSection613) {
  // §6.1.3: ~24 GB/s (7B) and ~21 GB/s (13B) of storage bandwidth balance compute and
  // transmission when using hidden states only.
  const Platform p = Platform::DefaultTestbed(1, 4);
  EXPECT_NEAR(BalancedBandwidth(p, ModelConfig::Llama2_7B(), 1024) / kGB, 24.0, 3.0);
  EXPECT_NEAR(BalancedBandwidth(p, ModelConfig::Llama2_13B(), 1024) / kGB, 21.0, 3.0);
}

// ===== Algorithm properties =====

LayerProfile MakeProfile(double io_h, double io_kv, double c_h, double c_t,
                         int64_t n = 1024) {
  LayerProfile p;
  p.io_hidden = io_h;
  p.io_kv = io_kv;
  p.c_hidden = c_h;
  p.c_token = c_t;
  p.history_tokens = n;
  return p;
}

TEST(PartitionTest, ComputeBoundUsesKvComplement) {
  const PartitionScheme s = SolveLayerWise(MakeProfile(1.0, 2.0, 3.0, 10.0), 32);
  EXPECT_EQ(s.complement, ComplementMethod::kKvOffload);
  EXPECT_GT(s.layers_other, 0);
  // Bubble-free: makespan within one layer's work of both streams' busy time.
  EXPECT_LT(s.predicted_bubble, 3.0 + 2.0);
}

TEST(PartitionTest, IoBoundUsesRecomputeComplement) {
  const PartitionScheme s = SolveLayerWise(MakeProfile(5.0, 10.0, 1.0, 8.0), 32);
  EXPECT_EQ(s.complement, ComplementMethod::kRecompute);
  EXPECT_GT(s.layers_other, 0);
}

TEST(PartitionTest, PerfectBalanceUsesPureHidden) {
  // C_H == IO_H: the formula yields L_H == N (ceil of exactly N), no complement.
  const PartitionScheme s = SolveLayerWise(MakeProfile(2.0, 4.0, 2.0, 10.0), 32);
  EXPECT_EQ(s.layers_hidden, 32);
  EXPECT_EQ(s.complement, ComplementMethod::kNone);
}

TEST(PartitionTest, LayersAlwaysSumToTotal) {
  for (double c_h : {0.5, 1.0, 2.0, 8.0}) {
    for (double io_h : {0.5, 1.0, 2.0, 8.0}) {
      const PartitionScheme s =
          SolveLayerWise(MakeProfile(io_h, 2 * io_h, c_h, 10.0), 40);
      EXPECT_EQ(s.layers_hidden + s.layers_other, 40);
      EXPECT_GE(s.layers_hidden, 0);
      EXPECT_GE(s.layers_other, 0);
    }
  }
}

TEST(PartitionTest, SchemeBeatsOrMatchesPureStrategies) {
  // The bubble-free mix must never be slower than HCache-only, pure KV offload, or
  // pure recomputation under the same profile (that is its optimality claim).
  for (double c_h : {0.3, 1.0, 3.0}) {
    for (double io_h : {0.3, 1.0, 3.0}) {
      const LayerProfile p = MakeProfile(io_h, 2 * io_h, c_h, 12.0);
      const int64_t nl = 32;
      const PartitionScheme s = SolveLayerWise(p, nl);
      const double pure_hidden = std::max(c_h, io_h) * nl;
      const double pure_kv = p.io_kv * nl;
      const double pure_rec = p.c_token * nl;
      const double slack = std::max({c_h, io_h, p.io_kv});  // one layer of rounding
      EXPECT_LE(s.predicted_time, pure_hidden + slack);
      EXPECT_LE(s.predicted_time, pure_kv + slack);
      EXPECT_LE(s.predicted_time, pure_rec + slack);
    }
  }
}

TEST(PartitionTest, LongContextFallsBackToHiddenOnly) {
  // §6.2.3: with long histories token recompute gets expensive (quadratic), so the
  // scheduler stops mixing recompute in.
  const Platform p = Platform::DefaultTestbed(1, 1);  // IO-starved: recompute regime
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const PartitionScheme short_ctx = SolveLayerWise(ProfileLayer(p, cfg, 1024), cfg.num_layers);
  const PartitionScheme long_ctx = SolveLayerWise(ProfileLayer(p, cfg, 16384), cfg.num_layers);
  EXPECT_EQ(short_ctx.complement, ComplementMethod::kRecompute);
  EXPECT_GE(long_ctx.layers_hidden, short_ctx.layers_hidden);
}

TEST(TokenWisePartitionTest, SplitsRoughlyAtBalance) {
  // 13B on A100 + 1 SSD, 1024 tokens: the paper's naive token-wise split is 794/230;
  // ours solves the same balance equation and lands nearby.
  const Platform p = Platform::ComputeSufficient();
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const LayerProfile prof = ProfileLayer(p, cfg, 1024);
  const TokenPartition t = SolveTokenWise(prof, 1024, /*round_to_tile=*/false);
  EXPECT_NEAR(static_cast<double>(t.tokens_hidden), 794.0, 60.0);
  EXPECT_EQ(t.tokens_hidden + t.tokens_other, 1024);
}

TEST(TokenWisePartitionTest, RoundingSnapsToTile) {
  const Platform p = Platform::ComputeSufficient();
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const LayerProfile prof = ProfileLayer(p, cfg, 1024);
  const TokenPartition t = SolveTokenWise(prof, 1024, /*round_to_tile=*/true);
  EXPECT_EQ(t.tokens_hidden % 256, 0);  // paper rounds 794 -> 768
  EXPECT_EQ(t.tokens_hidden, 768);
}

TEST(NaiveHybridTest, BalancesComputeAgainstKvTransfer) {
  const LayerProfile p = MakeProfile(1.0, 2.0, 0.5, 6.0);
  const NaiveHybridScheme s = SolveNaiveHybrid(p, 40);
  EXPECT_EQ(s.layers_kv + s.layers_recompute, 40);
  // 6.0 * L_RE ~ 2.0 * L_KV -> L_KV ~ 30.
  EXPECT_NEAR(static_cast<double>(s.layers_kv), 30.0, 2.0);
  // Mixing beats both pure strategies.
  EXPECT_LT(s.predicted_time, 2.0 * 40);
  EXPECT_LT(s.predicted_time, 6.0 * 40);
}

}  // namespace
}  // namespace hcache
