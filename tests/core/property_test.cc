// Parameterized property sweeps over the restoration stack: for every combination of
// platform and model the paper touches (and several it doesn't), the scheduler and the
// executors must uphold the paper's structural invariants.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/restorer.h"

namespace hcache {
namespace {

struct SweepCase {
  std::string gpu;
  int num_gpus;
  int ssds;  // 0 = DRAM backend
  std::string model;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  return c.gpu + "x" + std::to_string(c.num_gpus) + "_" +
         (c.ssds == 0 ? std::string("dram") : std::to_string(c.ssds) + "ssd") + "_" +
         c.model;
}

class RestorationSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static Platform MakePlatform(const SweepCase& c) {
    if (c.ssds == 0) {
      return Platform::CloudDram(GpuSpec::ByName(c.gpu), c.num_gpus);
    }
    Platform p = Platform::DefaultTestbed(c.num_gpus, c.ssds);
    p.gpu = GpuSpec::ByName(c.gpu);
    return p;
  }
  static ModelConfig MakeModel(const std::string& name) {
    if (name == "7B") {
      return ModelConfig::Llama2_7B();
    }
    if (name == "13B") {
      return ModelConfig::Llama2_13B();
    }
    if (name == "30B") {
      return ModelConfig::Opt30B();
    }
    return ModelConfig::WithGqa(ModelConfig::Llama2_7B(), 8);
  }
};

TEST_P(RestorationSweep, SchedulerInvariants) {
  const SweepCase& c = GetParam();
  Restorer r(MakePlatform(c), MakeModel(c.model));
  for (const int64_t n : {64, 1024, 8192}) {
    const PartitionScheme s = r.Schedule(n);
    EXPECT_EQ(s.layers_hidden + s.layers_other, MakeModel(c.model).num_layers);
    EXPECT_GE(s.layers_hidden, 0);
    EXPECT_GE(s.layers_other, 0);
    EXPECT_GT(s.predicted_time, 0.0);
    // Bubble-free promise: residual imbalance under one layer of the larger stream.
    // Pure fallback plans (layers_hidden == 0, e.g. under strong GQA) intentionally
    // run single-resource and are exempt.
    if (s.layers_hidden > 0) {
      const LayerProfile p = r.Profile(n);
      const double one_layer = std::max({p.c_hidden, p.io_hidden, p.io_kv, p.c_token});
      EXPECT_LE(s.predicted_bubble, one_layer + 1e-9) << "n=" << n;
    }
  }
}

TEST_P(RestorationSweep, HCachePlanDominatesAlternatives) {
  const SweepCase& c = GetParam();
  Restorer r(MakePlatform(c), MakeModel(c.model));
  for (const int64_t n : {256, 2048}) {
    const double t_h = r.Restore(RestoreMethod::kHCache, n).total_time;
    EXPECT_LE(t_h, r.Restore(RestoreMethod::kKvOffload, n).total_time * 1.001);
    EXPECT_LE(t_h, r.Restore(RestoreMethod::kRecompute, n).total_time * 1.001);
    EXPECT_LE(t_h, r.Restore(RestoreMethod::kHCacheOnly, n).total_time * 1.001);
  }
}

TEST_P(RestorationSweep, ResourceAccountingSane) {
  const SweepCase& c = GetParam();
  Restorer r(MakePlatform(c), MakeModel(c.model));
  const RestoreResult res = r.Restore(RestoreMethod::kHCache, 1024);
  EXPECT_GT(res.total_time, 0.0);
  EXPECT_GE(res.compute_busy, 0.0);
  EXPECT_GE(res.io_busy, 0.0);
  EXPECT_LE(res.compute_busy, res.total_time + 1e-12);
  EXPECT_LE(res.io_busy, res.total_time + 1e-12);
  // HCache never reads more bytes than pure KV offload would.
  const RestoreResult kv = r.Restore(RestoreMethod::kKvOffload, 1024);
  EXPECT_LE(res.bytes_read, kv.bytes_read + 1e-6);
}

TEST_P(RestorationSweep, TimeScalesRoughlyLinearlyInHistory) {
  const SweepCase& c = GetParam();
  Restorer r(MakePlatform(c), MakeModel(c.model));
  const double t1 = r.Restore(RestoreMethod::kHCache, 2048).total_time;
  const double t2 = r.Restore(RestoreMethod::kHCache, 4096).total_time;
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, t1 * 2.6);  // at most mildly superlinear (recompute complement's n^2)
}

INSTANTIATE_TEST_SUITE_P(
    PlatformsAndModels, RestorationSweep,
    ::testing::Values(SweepCase{"A100", 1, 4, "7B"}, SweepCase{"A100", 1, 1, "7B"},
                      SweepCase{"A100", 1, 0, "7B"}, SweepCase{"A30", 1, 4, "7B"},
                      SweepCase{"4090", 1, 0, "7B"}, SweepCase{"A100", 1, 4, "13B"},
                      SweepCase{"L20", 1, 0, "13B"}, SweepCase{"H800", 1, 0, "13B"},
                      SweepCase{"A100", 4, 4, "30B"}, SweepCase{"H800", 2, 0, "30B"},
                      SweepCase{"A100", 1, 4, "GQA8"}, SweepCase{"A100", 1, 1, "GQA8"}),
    CaseName);

// SSD-count monotonicity: adding disks never slows any IO-using method down.
class SsdScalingSweep : public ::testing::TestWithParam<int> {};

TEST_P(SsdScalingSweep, MoreDisksNeverSlower) {
  const int ssds = GetParam();
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  Restorer fewer(Platform::DefaultTestbed(1, ssds), cfg);
  Restorer more(Platform::DefaultTestbed(1, ssds + 1), cfg);
  for (const auto m : {RestoreMethod::kHCache, RestoreMethod::kKvOffload}) {
    EXPECT_LE(more.Restore(m, 1024).total_time,
              fewer.Restore(m, 1024).total_time * 1.0001)
        << RestoreMethodName(m) << " ssds=" << ssds;
  }
  // Recompute is IO-free: disk count must not matter at all.
  EXPECT_DOUBLE_EQ(more.Restore(RestoreMethod::kRecompute, 1024).total_time,
                   fewer.Restore(RestoreMethod::kRecompute, 1024).total_time);
}

INSTANTIATE_TEST_SUITE_P(OneToSeven, SsdScalingSweep, ::testing::Range(1, 8));

}  // namespace
}  // namespace hcache
