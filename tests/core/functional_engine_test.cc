// End-to-end integration tests: real transformer + real chunk store + partition
// schemes. These are the repository's strongest claim — every restoration path the
// scheduler can emit reproduces the evicted KV cache bit-for-bit.
#include "src/core/functional_engine.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/common/rng.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

class FunctionalEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(4, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_engine_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string(), (base_ / "d1").string()},
        /*chunk_bytes=*/1 << 20);
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 7));
    model_ = std::make_unique<Transformer>(weights_.get());
    pool_ = std::make_unique<KvBlockPool>(KvPoolConfig::ForModel(cfg_, 64, 8));
    flush_pool_ = std::make_unique<ThreadPool>(2);
    engine_ = std::make_unique<FunctionalHCache>(model_.get(), store_.get(),
                                                 flush_pool_.get(), /*chunk_tokens=*/8);
  }
  void TearDown() override {
    // Destroy the engine (sealing writers, draining flush threads) before the backing
    // directories disappear.
    engine_.reset();
    flush_pool_.reset();
    std::filesystem::remove_all(base_);
  }

  std::vector<int32_t> RandomTokens(int64_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto& x : t) {
      x = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
    }
    return t;
  }

  PartitionScheme Scheme(int64_t lh, ComplementMethod c) {
    PartitionScheme s;
    s.layers_hidden = lh;
    s.layers_other = cfg_.num_layers - lh;
    s.complement = c;
    return s;
  }

  // Runs prompt through a fresh reference sequence and returns its decode output.
  std::vector<int32_t> ReferenceDecode(const std::vector<int32_t>& prompt, int64_t steps) {
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq);
    return model_->GreedyDecode(prompt.back(), steps, &seq);
  }

  // Compares all layers of two sequences bitwise.
  void ExpectKvEqual(const PagedKvSequence& a, const PagedKvSequence& b) {
    ASSERT_EQ(a.num_tokens(), b.num_tokens());
    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      Tensor ka, va, kb, vb;
      a.ReadKv(layer, 0, a.num_tokens(), &ka, &va);
      b.ReadKv(layer, 0, b.num_tokens(), &kb, &vb);
      EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
      EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
    }
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<KvBlockPool> pool_;
  std::unique_ptr<ThreadPool> flush_pool_;
  std::unique_ptr<FunctionalHCache> engine_;
};

TEST_F(FunctionalEngineTest, PureHiddenRestoreIsBitExact) {
  const auto prompt = RandomTokens(20, 1);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(/*context_id=*/1));
  engine_->SealContext(1);
  seq.Evict();
  ASSERT_TRUE(engine_->RestoreContext(1, Scheme(cfg_.num_layers, ComplementMethod::kNone),
                                      {}, &seq));
  ExpectKvEqual(ref, seq);
}

TEST_F(FunctionalEngineTest, KvComplementRestoreIsBitExact) {
  // Mixed schedule: 3 layers from hidden states + 1 layer from offloaded KV.
  const auto prompt = RandomTokens(17, 2);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(2));
  engine_->SealContext(2);
  const PartitionScheme s = Scheme(3, ComplementMethod::kKvOffload);
  engine_->SaveKvLayers(2, seq, {3});  // the last layer is KV-offloaded
  seq.Evict();
  ASSERT_TRUE(engine_->RestoreContext(2, s, {}, &seq));
  ExpectKvEqual(ref, seq);
}

TEST_F(FunctionalEngineTest, RecomputeComplementRestoreIsBitExact) {
  // Mixed schedule: first layer recomputed from tokens, rest from hidden states.
  const auto prompt = RandomTokens(19, 3);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(3));
  engine_->SealContext(3);
  seq.Evict();
  ASSERT_TRUE(engine_->RestoreContext(3, Scheme(3, ComplementMethod::kRecompute), prompt,
                                      &seq));
  ExpectKvEqual(ref, seq);
}

TEST_F(FunctionalEngineTest, AllPartitionPointsAreLossless) {
  // Property sweep: every (L_H, complement) the scheduler could emit restores exactly.
  const auto prompt = RandomTokens(13, 4);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  int64_t ctx = 100;
  for (const auto complement :
       {ComplementMethod::kKvOffload, ComplementMethod::kRecompute}) {
    for (int64_t lh = 1; lh <= cfg_.num_layers; ++lh) {
      SCOPED_TRACE(testing::Message() << "lh=" << lh << " complement="
                                      << ComplementName(complement));
      PagedKvSequence seq(pool_.get());
      model_->Forward(prompt, &seq, engine_->BeginCapture(ctx));
      engine_->SealContext(ctx);
      PartitionScheme s = Scheme(lh, lh == cfg_.num_layers ? ComplementMethod::kNone
                                                           : complement);
      if (s.complement == ComplementMethod::kKvOffload) {
        std::vector<int64_t> kv_layers;
        for (int64_t l = lh; l < cfg_.num_layers; ++l) {
          kv_layers.push_back(l);
        }
        engine_->SaveKvLayers(ctx, seq, kv_layers);
      }
      seq.Evict();
      ASSERT_TRUE(engine_->RestoreContext(ctx, s, prompt, &seq));
      ExpectKvEqual(ref, seq);
      engine_->DropContext(ctx);
      ++ctx;
    }
  }
}

TEST_F(FunctionalEngineTest, DecodeContinuationAfterMixedRestore) {
  const auto prompt = RandomTokens(15, 5);
  const auto want = ReferenceDecode(prompt, 6);

  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(4));
  engine_->SealContext(4);
  engine_->SaveKvLayers(4, seq, {2, 3});
  seq.Evict();
  ASSERT_TRUE(engine_->RestoreContext(4, Scheme(2, ComplementMethod::kKvOffload), {}, &seq));
  const auto got = model_->GreedyDecode(prompt.back(), 6, &seq);
  EXPECT_EQ(want, got);
}

TEST_F(FunctionalEngineTest, MultiRoundConversationWithEvictionEachRound) {
  // The ShareGPT4 usage pattern: history accumulates across rounds; state is evicted
  // between rounds and restored (from hidden states) when the next round arrives.
  const auto round1 = RandomTokens(10, 6);
  const auto round2 = RandomTokens(6, 7);

  // Reference conversation, never evicted.
  PagedKvSequence ref(pool_.get());
  model_->Forward(round1, &ref);
  const auto ref_out1 = model_->GreedyDecode(round1.back(), 4, &ref);
  model_->Forward(round2, &ref);
  const auto ref_out2 = model_->GreedyDecode(round2.back(), 4, &ref);

  // HCache conversation: capture everything, evict between rounds.
  HiddenStateSink* sink = engine_->BeginCapture(5);
  PagedKvSequence seq(pool_.get());
  model_->Forward(round1, &seq, sink);
  const auto out1 = model_->GreedyDecode(round1.back(), 4, &seq, sink);
  EXPECT_EQ(ref_out1, out1);
  engine_->SealContext(5);
  seq.Evict();

  ASSERT_TRUE(engine_->RestoreContext(5, Scheme(cfg_.num_layers, ComplementMethod::kNone),
                                      {}, &seq));
  sink = engine_->BeginCapture(5);  // resume capture for the new round
  model_->Forward(round2, &seq, sink);
  const auto out2 = model_->GreedyDecode(round2.back(), 4, &seq, sink);
  EXPECT_EQ(ref_out2, out2);
}

TEST_F(FunctionalEngineTest, RestoreFailsGracefullyWhenPoolFull) {
  const auto prompt = RandomTokens(16, 8);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(6));
  engine_->SealContext(6);
  seq.Evict();

  // Exhaust the pool.
  PagedKvSequence hog(pool_.get());
  ASSERT_TRUE(hog.EnsureCapacity(pool_->capacity_tokens()));
  EXPECT_FALSE(engine_->RestoreContext(6, Scheme(cfg_.num_layers, ComplementMethod::kNone),
                                       {}, &seq));
  // History length must survive the failed attempt so a retry can succeed.
  EXPECT_EQ(seq.num_tokens(), 16);
  hog.Evict();
  seq.Evict();  // reset the has_kv flag ResetForRestore was never reached for
  EXPECT_FALSE(seq.has_kv());
}

TEST_F(FunctionalEngineTest, RestoreFailsGracefullyWhenChunksMissing) {
  // Failure injection: storage lost the context (device failure / premature GC).
  const auto prompt = RandomTokens(14, 20);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(40));
  engine_->SealContext(40);
  seq.Evict();
  engine_->DropContext(40);  // chunks gone

  const PartitionScheme s = Scheme(cfg_.num_layers, ComplementMethod::kNone);
  EXPECT_FALSE(engine_->CanRestore(40, s, seq.num_tokens()));
  EXPECT_FALSE(engine_->RestoreContext(40, s, {}, &seq));
  // The sequence must be untouched: still evicted, history intact, so the caller can
  // fall back to full recomputation.
  EXPECT_FALSE(seq.has_kv());
  EXPECT_EQ(seq.num_tokens(), 14);

  // Fallback: recompute everything from tokens (a 0 H + N RE scheme).
  PartitionScheme recompute_all = Scheme(0, ComplementMethod::kRecompute);
  ASSERT_TRUE(engine_->RestoreContext(40, recompute_all, prompt, &seq));
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);
  ExpectKvEqual(ref, seq);
}

TEST_F(FunctionalEngineTest, RestoreFailsOnTruncatedChunk) {
  // Failure injection: a chunk exists but is short (torn write).
  const auto prompt = RandomTokens(12, 21);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(41));
  engine_->SealContext(41);
  seq.Evict();

  // Corrupt layer 1's first chunk with a 1-row payload.
  std::vector<float> tiny(static_cast<size_t>(cfg_.hidden_dim), 0.0f);
  ASSERT_TRUE(store_->WriteChunk(ChunkKey{41, 1, 0}, tiny.data(),
                                 static_cast<int64_t>(tiny.size() * sizeof(float))));

  const PartitionScheme s = Scheme(cfg_.num_layers, ComplementMethod::kNone);
  EXPECT_FALSE(engine_->CanRestore(41, s, seq.num_tokens()));
  EXPECT_FALSE(engine_->RestoreContext(41, s, {}, &seq));
  EXPECT_FALSE(seq.has_kv());
}

TEST_F(FunctionalEngineTest, CanRestoreChecksOnlySchemeLayers) {
  // A KV-complement scheme needs KV chunks for the tail layers; a hidden-only scheme
  // does not. CanRestore must distinguish.
  const auto prompt = RandomTokens(10, 22);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(42));
  engine_->SealContext(42);
  // No SaveKvLayers call: KV chunks absent.
  const int64_t n = seq.num_tokens();
  EXPECT_TRUE(engine_->CanRestore(42, Scheme(cfg_.num_layers, ComplementMethod::kNone), n));
  EXPECT_FALSE(engine_->CanRestore(42, Scheme(2, ComplementMethod::kKvOffload), n));
  // A recompute-complement scheme skips the first layers' hidden chunks entirely.
  EXPECT_TRUE(engine_->CanRestore(42, Scheme(2, ComplementMethod::kRecompute), n));
  seq.Evict();
}

TEST_F(FunctionalEngineTest, DropContextRemovesChunks) {
  const auto prompt = RandomTokens(9, 9);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(7));
  engine_->SealContext(7);
  EXPECT_GT(store_->chunks_stored(), 0);
  engine_->DropContext(7);
  EXPECT_EQ(store_->chunks_stored(), 0);
}

TEST_F(FunctionalEngineTest, RestoreIsBitExactAcrossAllBackends) {
  // The storage seam must be invisible to restoration: the same capture→evict→restore
  // cycle lands bit-identical KV whether chunks live in files, DRAM, or a tiered
  // hierarchy small enough that the context is evicted (and read back through
  // write-back) mid-test.
  const auto prompt = RandomTokens(18, 30);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  MemoryBackend memory(1 << 20);
  // Tiny DRAM budget: one 8-token chunk of this model, so multi-layer captures
  // continuously spill to the file cold tier.
  FileBackend tiered_cold(
      std::vector<std::string>{(base_ / "cold0").string(), (base_ / "cold1").string()},
      1 << 20);
  TieredBackend tiered(&tiered_cold, 8 * cfg_.hidden_dim * sizeof(float));

  int64_t ctx = 300;
  for (StorageBackend* backend :
       {static_cast<StorageBackend*>(&memory), static_cast<StorageBackend*>(&tiered)}) {
    SCOPED_TRACE(backend->Name());
    FunctionalHCache engine(model_.get(), backend, flush_pool_.get(), /*chunk_tokens=*/8);
    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, engine.BeginCapture(ctx));
    engine.SealContext(ctx);
    seq.Evict();
    // Settle the tiered backend's asynchronous write-back so the restoration below
    // deterministically reads evicted chunks through the cold tier (instead of
    // rescuing them from the drain queue, which would be DRAM hits).
    backend->Quiesce();
    ASSERT_TRUE(engine.RestoreContext(ctx, Scheme(cfg_.num_layers, ComplementMethod::kNone),
                                      {}, &seq));
    ExpectKvEqual(ref, seq);
    engine.DropContext(ctx);
    ++ctx;
  }
  // The tiered budget really was under pressure: chunks flowed through the cold tier.
  EXPECT_GT(tiered.Stats().writeback_chunks, 0);
  EXPECT_GT(tiered.Stats().cold_hits, 0);
}

TEST_F(FunctionalEngineTest, ReadHiddenMatchesCapture) {
  const auto prompt = RandomTokens(12, 10);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine_->BeginCapture(8));
  engine_->SealContext(8);
  const Tensor h0 = engine_->ReadHidden(8, 0, 12);
  EXPECT_EQ(h0.dim(0), 12);
  EXPECT_EQ(h0.dim(1), cfg_.hidden_dim);
  // Layer 0 input is the embedding of the prompt — check one row.
  for (int64_t d = 0; d < cfg_.hidden_dim; ++d) {
    EXPECT_EQ(h0.at(0, d), weights_->embedding.at(prompt[0], d));
  }
}

}  // namespace
}  // namespace hcache
