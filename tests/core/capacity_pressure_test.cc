// Integration test for the paper's motivating scenario (§2.4): more conversation
// sessions than the GPU KV pool can hold. A toy scheduler round-robins sessions,
// evicting the least-recently-used session's KV under pressure and restoring from
// hidden states when a session's turn comes back. Every session's outputs must match
// a reference conversation served with unlimited memory.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <list>
#include <vector>

#include "src/core/functional_engine.h"
#include "src/common/rng.h"
#include "src/storage/file_backend.h"

namespace hcache {
namespace {

class CapacityPressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(3, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_pressure_" + std::to_string(::getpid()));
    store_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string(), (base_ / "d1").string()},
        1 << 20);
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 3));
    model_ = std::make_unique<Transformer>(weights_.get());
    engine_ = std::make_unique<FunctionalHCache>(model_.get(), store_.get(), nullptr,
                                                 /*chunk_tokens=*/8);
  }
  void TearDown() override {
    engine_.reset();
    std::filesystem::remove_all(base_);
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<FunctionalHCache> engine_;
};

TEST_F(CapacityPressureTest, FourSessionsSqueezeThroughATinyPool) {
  constexpr int kSessions = 4;
  constexpr int kRounds = 3;
  constexpr int64_t kPromptLen = 12;
  constexpr int64_t kDecodeLen = 6;

  // Pool sized for roughly two sessions' worth of state: with 3 rounds of 18 tokens
  // each, a session peaks at ~54 tokens = 7 blocks; give the pool 16 blocks.
  KvBlockPool pressured_pool(KvPoolConfig::ForModel(cfg_, 16, 8));
  // Reference pool: effectively unlimited.
  KvBlockPool big_pool(KvPoolConfig::ForModel(cfg_, 256, 8));

  Rng rng(77);
  std::vector<std::vector<std::vector<int32_t>>> prompts(kSessions);
  for (auto& session : prompts) {
    session.resize(kRounds);
    for (auto& p : session) {
      p.resize(kPromptLen);
      for (auto& t : p) {
        t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
      }
    }
  }

  // Reference outputs with unlimited memory, no eviction.
  std::vector<std::vector<std::vector<int32_t>>> want(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    PagedKvSequence seq(&big_pool);
    for (int r = 0; r < kRounds; ++r) {
      model_->Forward(prompts[s][r], &seq);
      want[s].push_back(model_->GreedyDecode(prompts[s][r].back(), kDecodeLen, &seq));
    }
  }

  // Pressured serving: round-robin rounds across sessions; evict LRU on demand.
  PartitionScheme all_hidden;
  all_hidden.layers_hidden = cfg_.num_layers;
  all_hidden.complement = ComplementMethod::kNone;

  std::vector<std::unique_ptr<PagedKvSequence>> seqs;
  for (int s = 0; s < kSessions; ++s) {
    seqs.push_back(std::make_unique<PagedKvSequence>(&pressured_pool));
  }
  std::list<int> lru;  // front = most recently served

  auto evict_one = [&](int current) {
    for (auto it = lru.rbegin(); it != lru.rend(); ++it) {
      if (*it != current && seqs[static_cast<size_t>(*it)]->has_kv() &&
          seqs[static_cast<size_t>(*it)]->num_blocks_held() > 0) {
        seqs[static_cast<size_t>(*it)]->Evict();
        return true;
      }
    }
    return false;
  };

  int evictions = 0;
  int restorations = 0;
  std::vector<std::vector<std::vector<int32_t>>> got(kSessions);
  for (int r = 0; r < kRounds; ++r) {
    for (int s = 0; s < kSessions; ++s) {
      PagedKvSequence& seq = *seqs[static_cast<size_t>(s)];
      // Restore if this session was evicted; evict LRU peers until it fits.
      if (!seq.has_kv() && seq.num_tokens() > 0) {
        while (!engine_->RestoreContext(s, all_hidden, {}, &seq)) {
          ASSERT_TRUE(evict_one(s)) << "pool too small even for one session";
          ++evictions;
        }
        ++restorations;
      }
      // Serve the round, evicting peers on allocation pressure.
      for (;;) {
        const int64_t needed = seq.num_tokens() + kPromptLen + kDecodeLen;
        if (seq.EnsureCapacity(needed)) {
          break;
        }
        ASSERT_TRUE(evict_one(s)) << "cannot free capacity for session " << s;
        ++evictions;
      }
      HiddenStateSink* sink = engine_->BeginCapture(s);
      model_->Forward(prompts[s][r], &seq, sink);
      got[s].push_back(model_->GreedyDecode(prompts[s][r].back(), kDecodeLen, &seq, sink));
      engine_->SealContext(s);
      lru.remove(s);
      lru.push_front(s);
    }
  }

  // The pool really was under pressure, and correctness survived it.
  EXPECT_GT(evictions, 0);
  EXPECT_GT(restorations, 0);
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(got[s], want[s]) << "session " << s;
  }
}

}  // namespace
}  // namespace hcache
