#include "src/core/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace hcache {
namespace {

Tensor RandomRows(int64_t r, int64_t c, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  Tensor t({r, c});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, scale));
  }
  return t;
}

TEST(QuantizeTest, RoundTripWithinErrorBound) {
  const Tensor t = RandomRows(16, 64, 1);
  const QuantizedRows q = QuantizeRows(t);
  const Tensor back = DequantizeRows(q);
  for (int64_t r = 0; r < t.dim(0); ++r) {
    const float bound = RowErrorBound(q, r);
    for (int64_t c = 0; c < t.dim(1); ++c) {
      EXPECT_LE(std::fabs(t.at(r, c) - back.at(r, c)), bound + 1e-7f)
          << "row " << r << " col " << c;
    }
  }
}

TEST(QuantizeTest, PerRowScalesAdaptToMagnitude) {
  // A huge row must not destroy a tiny row's precision (per-row scaling).
  Tensor t({2, 4});
  t.at(0, 0) = 1000.0f;
  t.at(1, 0) = 0.001f;
  t.at(1, 1) = -0.0005f;
  const QuantizedRows q = QuantizeRows(t);
  const Tensor back = DequantizeRows(q);
  EXPECT_NEAR(back.at(1, 0), 0.001f, 0.001f / 100);
  EXPECT_NEAR(back.at(0, 0), 1000.0f, 1000.0f / 100);
}

TEST(QuantizeTest, ExtremesMapToFullRange) {
  Tensor t = Tensor::FromData({1, 3}, {-2.0f, 0.0f, 2.0f});
  const QuantizedRows q = QuantizeRows(t);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
}

TEST(QuantizeTest, AllZeroRowSurvives) {
  Tensor t({2, 8});
  const QuantizedRows q = QuantizeRows(t);
  const Tensor back = DequantizeRows(q);
  EXPECT_TRUE(Tensor::BitwiseEqual(t, back));
}

TEST(QuantizeTest, CompressionNearTwoForWideRows) {
  const Tensor t = RandomRows(8, 4096, 2);
  const QuantizedRows q = QuantizeRows(t);
  // INT8 payload + one float scale per 4096-wide row: ~2x vs FP16.
  EXPECT_GT(CompressionVsFp16(q), 1.95);
  EXPECT_LE(CompressionVsFp16(q), 2.0);
}

TEST(QuantizeTest, DeterministicAcrossCalls) {
  const Tensor t = RandomRows(5, 32, 3);
  const QuantizedRows a = QuantizeRows(t);
  const QuantizedRows b = QuantizeRows(t);
  EXPECT_EQ(a.values, b.values);
  EXPECT_EQ(a.scales, b.scales);
}

TEST(QuantizeTest, RelativeErrorSmallForTypicalActivations) {
  const Tensor t = RandomRows(64, 128, 4);
  const Tensor back = DequantizeRows(QuantizeRows(t));
  // Gaussian rows: max|row| ~ 3.5 sigma -> bound ~ 3.5/254 ~ 1.4% of sigma.
  EXPECT_LT(Tensor::MaxAbsDiff(t, back), 0.03f);
}

}  // namespace
}  // namespace hcache
