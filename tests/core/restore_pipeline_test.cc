// The pipelined restore path (chunk reads for layer i+1 prefetched on the flush pool
// while layer i is projected) must be invisible in the bits: for every StorageBackend,
// RestoreContext with a flush pool lands KV identical to the serial engine (no pool)
// and to the never-evicted reference — including when a missing chunk forces the
// fallback-to-recompute path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>

#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

class RestorePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(4, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_pipeline_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    weights_ = std::make_unique<ModelWeights>(ModelWeights::Random(cfg_, 31));
    model_ = std::make_unique<Transformer>(weights_.get());
    pool_ = std::make_unique<KvBlockPool>(KvPoolConfig::ForModel(cfg_, 64, 12));
    flush_pool_ = std::make_unique<ThreadPool>(3);
  }
  void TearDown() override {
    flush_pool_.reset();
    std::filesystem::remove_all(base_);
  }

  std::vector<int32_t> RandomTokens(int64_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<int32_t> t(static_cast<size_t>(n));
    for (auto& x : t) {
      x = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg_.vocab_size)));
    }
    return t;
  }

  PartitionScheme Scheme(int64_t lh, ComplementMethod c) {
    PartitionScheme s;
    s.layers_hidden = lh;
    s.layers_other = cfg_.num_layers - lh;
    s.complement = c;
    return s;
  }

  void ExpectKvEqual(const PagedKvSequence& a, const PagedKvSequence& b) {
    ASSERT_EQ(a.num_tokens(), b.num_tokens());
    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      Tensor ka, va, kb, vb;
      a.ReadKv(layer, 0, a.num_tokens(), &ka, &va);
      b.ReadKv(layer, 0, b.num_tokens(), &kb, &vb);
      EXPECT_TRUE(Tensor::BitwiseEqual(ka, kb)) << "K layer " << layer;
      EXPECT_TRUE(Tensor::BitwiseEqual(va, vb)) << "V layer " << layer;
    }
  }

  // Builds each backend fresh; index 0 = file, 1 = memory, 2 = tiered-over-file.
  std::unique_ptr<StorageBackend> MakeBackend(int which) {
    const auto dirs = std::vector<std::string>{
        (base_ / ("d" + std::to_string(which) + "a")).string(),
        (base_ / ("d" + std::to_string(which) + "b")).string()};
    switch (which) {
      case 0:
        return std::make_unique<FileBackend>(dirs, /*chunk_bytes=*/1 << 20);
      case 1:
        return std::make_unique<MemoryBackend>(/*chunk_bytes=*/1 << 20);
      default: {
        cold_ = std::make_unique<FileBackend>(dirs, /*chunk_bytes=*/1 << 20);
        // Budget of two 8-token chunks so reads also exercise the cold tier.
        return std::make_unique<TieredBackend>(
            cold_.get(), 2 * 8 * cfg_.hidden_dim * static_cast<int64_t>(sizeof(float)));
      }
    }
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<ModelWeights> weights_;
  std::unique_ptr<Transformer> model_;
  std::unique_ptr<KvBlockPool> pool_;
  std::unique_ptr<ThreadPool> flush_pool_;
  std::unique_ptr<FileBackend> cold_;
};

TEST_F(RestorePipelineTest, PipelinedRestoreMatchesSerialEngineOnEveryBackend) {
  const auto prompt = RandomTokens(26, 1);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  for (int which = 0; which < 3; ++which) {
    auto store = MakeBackend(which);
    SCOPED_TRACE(store->Name());
    // One shared store, two engines: `piped` prefetches reads on the flush pool,
    // `serial` (null pool) loads layer by layer.
    FunctionalHCache piped(model_.get(), store.get(), flush_pool_.get(),
                           /*chunk_tokens=*/8);
    FunctionalHCache serial(model_.get(), store.get(), /*flush_pool=*/nullptr,
                            /*chunk_tokens=*/8);
    const int64_t ctx = 10 + which;

    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, piped.BeginCapture(ctx));
    piped.SealContext(ctx);
    // Offload the last layer's KV so the pipeline crosses the hidden->KV boundary.
    const PartitionScheme s = Scheme(cfg_.num_layers - 1, ComplementMethod::kKvOffload);
    piped.SaveKvLayers(ctx, seq, {cfg_.num_layers - 1});
    seq.Evict();

    ASSERT_TRUE(piped.RestoreContext(ctx, s, {}, &seq));
    ExpectKvEqual(ref, seq);

    PagedKvSequence seq2(pool_.get());
    model_->Forward(prompt, &seq2);
    seq2.Evict();
    ASSERT_TRUE(serial.RestoreContext(ctx, s, {}, &seq2));
    ExpectKvEqual(seq, seq2);

    seq.Evict();
    seq2.Evict();
  }
}

TEST_F(RestorePipelineTest, PipelinedRecomputeComplementMatchesReference) {
  const auto prompt = RandomTokens(19, 2);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  auto store = MakeBackend(0);
  FunctionalHCache engine(model_.get(), store.get(), flush_pool_.get(),
                          /*chunk_tokens=*/8);
  PagedKvSequence seq(pool_.get());
  model_->Forward(prompt, &seq, engine.BeginCapture(1));
  engine.SealContext(1);
  seq.Evict();
  ASSERT_TRUE(
      engine.RestoreContext(1, Scheme(2, ComplementMethod::kRecompute), prompt, &seq));
  ExpectKvEqual(ref, seq);
}

TEST_F(RestorePipelineTest, MissingKvChunkFallsBackToRecomputeOnEveryBackend) {
  const auto prompt = RandomTokens(22, 3);
  PagedKvSequence ref(pool_.get());
  model_->Forward(prompt, &ref);

  for (int which = 0; which < 3; ++which) {
    auto store = MakeBackend(which);
    SCOPED_TRACE(store->Name());
    FunctionalHCache engine(model_.get(), store.get(), flush_pool_.get(),
                            /*chunk_tokens=*/8);
    const int64_t ctx = 20 + which;

    PagedKvSequence seq(pool_.get());
    model_->Forward(prompt, &seq, engine.BeginCapture(ctx));
    engine.SealContext(ctx);
    // A KV-offload scheme whose KV chunks were never saved: the restore must refuse
    // (leaving the sequence evicted) rather than land partial state.
    const PartitionScheme s = Scheme(2, ComplementMethod::kKvOffload);
    seq.Evict();
    EXPECT_FALSE(engine.CanRestore(ctx, s, seq.num_tokens()));
    EXPECT_FALSE(engine.RestoreContext(ctx, s, {}, &seq));
    EXPECT_FALSE(seq.has_kv());
    EXPECT_EQ(seq.num_tokens(), 22);

    // Fallback: full recomputation from the raw tokens still restores exactly.
    ASSERT_TRUE(engine.RestoreContext(ctx, Scheme(0, ComplementMethod::kRecompute),
                                      prompt, &seq));
    ExpectKvEqual(ref, seq);
    seq.Evict();
  }
}

}  // namespace
}  // namespace hcache
