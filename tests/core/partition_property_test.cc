// Property test for the §4.1 bubble-free layer-wise solver: over randomized
// LayerProfiles, SolveLayerWise must match exhaustive enumeration of every (L_H, L_O)
// split under both complement methods, and the predicted bubble of a mixed schedule
// must never exceed one layer's stage cost (one layer of compute + one layer of IO on
// the chosen streams) — that is exactly the "bubble-free up to integer rounding"
// claim of §4.1.2.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/core/partition.h"

namespace hcache {
namespace {

// Makespan of a layer-wise schedule under the steady-state pipelining model (the
// object SolveLayerWise minimizes; duplicated here deliberately as the test oracle).
double Makespan(const LayerProfile& p, int64_t lh, int64_t lo, ComplementMethod m) {
  const double h = static_cast<double>(lh);
  const double o = static_cast<double>(lo);
  switch (m) {
    case ComplementMethod::kNone:
    case ComplementMethod::kKvOffload:
      return std::max(p.c_hidden * h, p.io_hidden * h + p.io_kv * o);
    case ComplementMethod::kRecompute:
      return std::max(p.c_hidden * h + p.c_token * o, p.io_hidden * h);
  }
  return 0;
}

// Exhaustive oracle: best makespan over every split and both complements.
double BruteForceBest(const LayerProfile& p, int64_t num_layers) {
  double best = std::numeric_limits<double>::infinity();
  for (int64_t lh = 0; lh <= num_layers; ++lh) {
    const int64_t lo = num_layers - lh;
    best = std::min(best, Makespan(p, lh, lo, ComplementMethod::kKvOffload));
    best = std::min(best, Makespan(p, lh, lo, ComplementMethod::kRecompute));
  }
  return best;
}

LayerProfile RandomProfile(Rng& rng) {
  LayerProfile p;
  // Log-uniform over three decades: covers compute-bound, IO-bound, and the GQA-style
  // corners where KV transmission undercuts hidden-state transmission.
  const auto sample = [&rng] { return 1e-4 * std::pow(10.0, 3.0 * rng.NextDouble()); };
  p.io_hidden = sample();
  p.io_kv = sample();
  p.c_hidden = sample();
  p.c_token = sample();
  p.history_tokens = 1024;
  return p;
}

TEST(PartitionPropertyTest, SolverMatchesExhaustiveEnumeration) {
  Rng rng(0xbeef);
  constexpr int kTrials = 2000;
  for (int trial = 0; trial < kTrials; ++trial) {
    LayerProfile p = RandomProfile(rng);
    const int64_t num_layers = rng.NextInRange(1, 96);
    const PartitionScheme s = SolveLayerWise(p, num_layers);

    // Structural invariants.
    ASSERT_EQ(s.layers_hidden + s.layers_other, num_layers) << p.ToString();
    ASSERT_GE(s.layers_hidden, 0);
    ASSERT_GE(s.layers_other, 0);
    if (s.layers_other == 0) {
      EXPECT_EQ(s.complement, ComplementMethod::kNone);
    } else {
      EXPECT_NE(s.complement, ComplementMethod::kNone);
    }

    // The reported prediction must be the true makespan of the returned split.
    const ComplementMethod eval_m =
        s.complement == ComplementMethod::kNone ? ComplementMethod::kKvOffload : s.complement;
    const double actual = Makespan(p, s.layers_hidden, s.layers_other, eval_m);
    ASSERT_NEAR(s.predicted_time, actual, 1e-12 + 1e-9 * actual) << p.ToString();

    // Optimality: the closed-form solve equals the exhaustive enumeration optimum.
    const double best = BruteForceBest(p, num_layers);
    ASSERT_LE(s.predicted_time, best * (1.0 + 1e-9) + 1e-12)
        << "suboptimal split " << s.ToString() << " for profile " << p.ToString()
        << " with " << num_layers << " layers (brute force " << best << ")";
  }
}

TEST(PartitionPropertyTest, MixedScheduleBubbleBoundedByOneLayerStageCost) {
  Rng rng(0xcafe);
  constexpr int kTrials = 2000;
  int mixed = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    LayerProfile p = RandomProfile(rng);
    const int64_t num_layers = rng.NextInRange(1, 96);
    const PartitionScheme s = SolveLayerWise(p, num_layers);
    if (s.layers_hidden == 0 || s.layers_other == 0) {
      continue;  // pure plans have a single stream: no pipeline, no bubble claim
    }
    ++mixed;
    // One layer's stage cost on the streams actually scheduled: moving one layer
    // between the streams changes their gap by at most (compute stage + IO stage).
    const double stage_cost = s.complement == ComplementMethod::kKvOffload
                                  ? p.c_hidden + p.io_kv
                                  : p.c_token + p.io_hidden;
    EXPECT_LE(s.predicted_bubble, stage_cost * (1.0 + 1e-9) + 1e-12)
        << s.ToString() << " for profile " << p.ToString();
  }
  // The sweep must actually exercise mixed schedules (sanity on the generator).
  EXPECT_GT(mixed, 200);
}

TEST(PartitionPropertyTest, NearCancellingCrossFamilyDenominatorIsSafe) {
  // io_h just below c_h + io_kv: the KV family's crossing denominator is a tiny
  // cancellation residual and the fractional crossing explodes. The candidate scan
  // must clamp in double space before the integer cast and still return a valid,
  // optimal split.
  LayerProfile p;
  p.c_hidden = 1.0;
  p.io_kv = 1.0;
  p.io_hidden = 2.0 - 1e-15;
  p.c_token = 3.0;
  p.history_tokens = 1024;
  const PartitionScheme s = SolveLayerWise(p, 48);
  EXPECT_EQ(s.layers_hidden + s.layers_other, 48);
  EXPECT_LE(s.predicted_time, BruteForceBest(p, 48) * (1.0 + 1e-9));
}

TEST(PartitionPropertyTest, BubbleConsistentWithStreams) {
  // predicted_bubble is |compute stream - IO stream| of the returned schedule.
  Rng rng(0xd00d);
  for (int trial = 0; trial < 500; ++trial) {
    LayerProfile p = RandomProfile(rng);
    const int64_t num_layers = rng.NextInRange(1, 96);
    const PartitionScheme s = SolveLayerWise(p, num_layers);
    const double h = static_cast<double>(s.layers_hidden);
    const double o = static_cast<double>(s.layers_other);
    double compute = 0, io = 0;
    if (s.complement == ComplementMethod::kRecompute) {
      compute = p.c_hidden * h + p.c_token * o;
      io = p.io_hidden * h;
    } else {
      compute = p.c_hidden * h;
      io = p.io_hidden * h + p.io_kv * o;
    }
    EXPECT_NEAR(s.predicted_bubble, std::abs(compute - io),
                1e-12 + 1e-9 * std::abs(compute - io));
    EXPECT_NEAR(s.predicted_time, std::max(compute, io),
                1e-12 + 1e-9 * std::max(compute, io));
  }
}

}  // namespace
}  // namespace hcache
