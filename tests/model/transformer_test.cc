#include "src/model/transformer.h"

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/model/kv_cache.h"

namespace hcache {
namespace {

// Test sink: retains every layer's input rows keyed by absolute token position.
class CaptureSink : public HiddenStateSink {
 public:
  explicit CaptureSink(const ModelConfig& cfg)
      : hidden_dim_(cfg.hidden_dim), layers_(static_cast<size_t>(cfg.num_layers)) {}

  void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                    int64_t n) override {
    auto& store = layers_[static_cast<size_t>(layer)];
    for (int64_t i = 0; i < n; ++i) {
      std::vector<float> row(hidden.row(i), hidden.row(i) + hidden_dim_);
      store[positions[i]] = std::move(row);
    }
  }

  // Assembles [num_tokens, hidden] for one layer in position order 0..num_tokens-1.
  Tensor LayerHidden(int64_t layer, int64_t num_tokens) const {
    const auto& store = layers_[static_cast<size_t>(layer)];
    Tensor t({num_tokens, hidden_dim_});
    for (int64_t p = 0; p < num_tokens; ++p) {
      const auto it = store.find(static_cast<int32_t>(p));
      CHECK(it != store.end()) << "missing hidden for pos " << p;
      std::copy(it->second.begin(), it->second.end(), t.row(p));
    }
    return t;
  }

 private:
  int64_t hidden_dim_;
  std::vector<std::map<int32_t, std::vector<float>>> layers_;
};

std::vector<int32_t> RandomTokens(int64_t n, int64_t vocab, uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> toks(static_cast<size_t>(n));
  for (auto& t : toks) {
    t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(vocab)));
  }
  return toks;
}

struct Harness {
  explicit Harness(const ModelConfig& cfg, uint64_t seed = 42)
      : weights(ModelWeights::Random(cfg, seed)),
        model(&weights),
        pool(KvPoolConfig::ForModel(cfg, /*num_blocks=*/64, /*block_tokens=*/8)) {}

  ModelWeights weights;
  Transformer model;
  KvBlockPool pool;
};

TEST(TransformerTest, ForwardOutputShape) {
  Harness h(ModelConfig::TinyLlama());
  PagedKvSequence seq(&h.pool);
  Tensor out = h.model.Forward(RandomTokens(5, 256, 1), &seq);
  EXPECT_EQ(out.dim(0), 5);
  EXPECT_EQ(out.dim(1), 64);
  EXPECT_EQ(seq.num_tokens(), 5);
}

TEST(TransformerTest, ForwardIsDeterministic) {
  Harness h1(ModelConfig::TinyLlama());
  Harness h2(ModelConfig::TinyLlama());
  const auto toks = RandomTokens(6, 256, 2);
  PagedKvSequence s1(&h1.pool), s2(&h2.pool);
  Tensor a = h1.model.Forward(toks, &s1);
  Tensor b = h2.model.Forward(toks, &s2);
  EXPECT_TRUE(Tensor::BitwiseEqual(a, b));
}

TEST(TransformerTest, CausalityPrefixInvariance) {
  // Output for token i must not depend on tokens after i: run the full batch and a
  // truncated batch, compare the shared prefix bitwise.
  Harness h(ModelConfig::TinyLlama());
  const auto toks = RandomTokens(7, 256, 3);
  PagedKvSequence full_seq(&h.pool);
  Tensor full = h.model.Forward(toks, &full_seq);
  PagedKvSequence pre_seq(&h.pool);
  std::vector<int32_t> prefix(toks.begin(), toks.begin() + 4);
  Tensor pre = h.model.Forward(prefix, &pre_seq);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t d = 0; d < full.dim(1); ++d) {
      EXPECT_EQ(full.at(i, d), pre.at(i, d)) << "token " << i << " dim " << d;
    }
  }
}

TEST(TransformerTest, ChunkedPrefillMatchesSingleShot) {
  // SplitFuse-style chunking must be a no-op semantically.
  Harness h(ModelConfig::TinyLlama());
  const auto toks = RandomTokens(9, 256, 4);
  PagedKvSequence one(&h.pool);
  Tensor all = h.model.Forward(toks, &one);
  PagedKvSequence two(&h.pool);
  h.model.Forward({toks.begin(), toks.begin() + 5}, &two);
  Tensor tail = h.model.Forward({toks.begin() + 5, toks.end()}, &two);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t d = 0; d < all.dim(1); ++d) {
      EXPECT_EQ(all.at(5 + i, d), tail.at(i, d));
    }
  }
}

TEST(TransformerTest, KvCachePopulatedForAllLayers) {
  const ModelConfig cfg = ModelConfig::TinyLlama();
  Harness h(cfg);
  PagedKvSequence seq(&h.pool);
  h.model.Forward(RandomTokens(5, 256, 5), &seq);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k, v;
    seq.ReadKv(layer, 0, 5, &k, &v);
    // Not all-zero: at least one element differs from 0.
    EXPECT_GT(Tensor::MaxAbsDiff(k, Tensor({5, cfg.kv_dim()})), 0.0f) << "layer " << layer;
  }
}

// ===== The paper's core claim: KV restored from hidden states is lossless =====

class RestorationFidelityTest : public ::testing::TestWithParam<const char*> {
 protected:
  static ModelConfig MakeConfig(const std::string& kind) {
    if (kind == "llama") {
      return ModelConfig::TinyLlama(3, 64, 4);
    }
    if (kind == "opt") {
      return ModelConfig::TinyOpt(3, 64, 4);
    }
    if (kind == "alibi") {
      return ModelConfig::TinyAlibi(3, 64, 4);
    }
    return ModelConfig::TinyGqa(3, 64, 4, 2);
  }
};

TEST_P(RestorationFidelityTest, RestoredKvIsBitExact) {
  const ModelConfig cfg = MakeConfig(GetParam());
  Harness h(cfg);
  CaptureSink sink(cfg);
  PagedKvSequence seq(&h.pool);
  const int64_t n = 20;
  h.model.Forward(RandomTokens(n, cfg.vocab_size, 6), &seq, &sink);

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k_orig, v_orig;
    seq.ReadKv(layer, 0, n, &k_orig, &v_orig);
    Tensor k_rest, v_rest;
    h.model.RestoreLayerKv(layer, sink.LayerHidden(layer, n), positions.data(), &k_rest,
                           &v_rest);
    EXPECT_TRUE(Tensor::BitwiseEqual(k_orig, k_rest)) << "K layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(v_orig, v_rest)) << "V layer " << layer;
  }
}

TEST_P(RestorationFidelityTest, DecodeAfterRestorationMatchesNeverEvicted) {
  const ModelConfig cfg = MakeConfig(GetParam());
  Harness h(cfg);
  const auto prompt = RandomTokens(12, cfg.vocab_size, 7);

  // Reference: never evicted.
  PagedKvSequence ref_seq(&h.pool);
  h.model.Forward(prompt, &ref_seq);
  const auto ref_out = h.model.GreedyDecode(prompt.back(), 8, &ref_seq);

  // Candidate: prefill with capture, evict, restore from hidden states, decode.
  CaptureSink sink(cfg);
  PagedKvSequence seq(&h.pool);
  h.model.Forward(prompt, &seq, &sink);
  seq.Evict();
  ASSERT_TRUE(seq.EnsureCapacity(seq.num_tokens()));
  std::vector<int32_t> positions(static_cast<size_t>(seq.num_tokens()));
  std::iota(positions.begin(), positions.end(), 0);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k, v;
    h.model.RestoreLayerKv(layer, sink.LayerHidden(layer, seq.num_tokens()),
                           positions.data(), &k, &v);
    seq.WriteKv(layer, 0, k, v);
  }
  const auto got_out = h.model.GreedyDecode(prompt.back(), 8, &seq);

  EXPECT_EQ(ref_out, got_out);
}

TEST_P(RestorationFidelityTest, RestorationBatchSizeIrrelevant) {
  // Restoring token-by-token must equal restoring the whole history at once (the
  // restorer is free to chunk transmissions without affecting results).
  const ModelConfig cfg = MakeConfig(GetParam());
  Harness h(cfg);
  CaptureSink sink(cfg);
  PagedKvSequence seq(&h.pool);
  const int64_t n = 10;
  h.model.Forward(RandomTokens(n, cfg.vocab_size, 8), &seq, &sink);

  const int64_t layer = cfg.num_layers - 1;
  Tensor hidden = sink.LayerHidden(layer, n);
  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), 0);
  Tensor k_all, v_all;
  h.model.RestoreLayerKv(layer, hidden, positions.data(), &k_all, &v_all);

  for (int64_t t = 0; t < n; ++t) {
    Tensor one({1, cfg.hidden_dim});
    std::copy(hidden.row(t), hidden.row(t) + cfg.hidden_dim, one.row(0));
    const int32_t pos = static_cast<int32_t>(t);
    Tensor k1, v1;
    h.model.RestoreLayerKv(layer, one, &pos, &k1, &v1);
    for (int64_t d = 0; d < cfg.kv_dim(); ++d) {
      EXPECT_EQ(k1.at(0, d), k_all.at(t, d));
      EXPECT_EQ(v1.at(0, d), v_all.at(t, d));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, RestorationFidelityTest,
                         ::testing::Values("llama", "opt", "gqa", "alibi"));

TEST(TransformerTest, AlibiPenalizesDistance) {
  // With ALiBi, attention to distant tokens is suppressed by a per-head linear bias;
  // sanity-check the bias plumbing by confirming position changes outputs even though
  // neither embeddings nor K/Q carry positions.
  const ModelConfig cfg = ModelConfig::TinyAlibi(2, 32, 2);
  Harness h(cfg);
  const auto toks = RandomTokens(6, cfg.vocab_size, 31);
  PagedKvSequence seq(&h.pool);
  Tensor out = h.model.Forward(toks, &seq);
  // Re-run the same *token* later in the sequence: outputs must differ (position
  // matters) even though K is position-free.
  PagedKvSequence seq2(&h.pool);
  std::vector<int32_t> twice = toks;
  twice.push_back(toks[2]);
  Tensor out2 = h.model.Forward(twice, &seq2);
  bool differs = false;
  for (int64_t d = 0; d < cfg.hidden_dim; ++d) {
    differs |= out.at(2, d) != out2.at(6, d);
  }
  EXPECT_TRUE(differs);
}

TEST(TransformerTest, SampleDecodeDeterministicForSeed) {
  const ModelConfig cfg = ModelConfig::TinyLlama(2, 32, 2);
  Harness h(cfg);
  const auto prompt = RandomTokens(5, cfg.vocab_size, 33);
  PagedKvSequence s1(&h.pool), s2(&h.pool);
  h.model.Forward(prompt, &s1);
  h.model.Forward(prompt, &s2);
  Rng r1(99), r2(99);
  const auto a = h.model.SampleDecode(prompt.back(), 12, 0.8, 16, r1, &s1);
  const auto b = h.model.SampleDecode(prompt.back(), 12, 0.8, 16, r2, &s2);
  EXPECT_EQ(a, b);
}

TEST(TransformerTest, SampleDecodeSeedChangesOutput) {
  const ModelConfig cfg = ModelConfig::TinyLlama(2, 32, 2);
  Harness h(cfg);
  const auto prompt = RandomTokens(5, cfg.vocab_size, 34);
  PagedKvSequence s1(&h.pool), s2(&h.pool);
  h.model.Forward(prompt, &s1);
  h.model.Forward(prompt, &s2);
  Rng r1(1), r2(2);
  const auto a = h.model.SampleDecode(prompt.back(), 16, 1.2, 0, r1, &s1);
  const auto b = h.model.SampleDecode(prompt.back(), 16, 1.2, 0, r2, &s2);
  EXPECT_NE(a, b);
}

TEST(TransformerTest, SampleDecodeTopKRestrictsSupport) {
  // top_k == 1 must reduce to greedy decoding regardless of temperature or seed.
  const ModelConfig cfg = ModelConfig::TinyLlama(2, 32, 2);
  Harness h(cfg);
  const auto prompt = RandomTokens(4, cfg.vocab_size, 35);
  PagedKvSequence s1(&h.pool), s2(&h.pool);
  h.model.Forward(prompt, &s1);
  h.model.Forward(prompt, &s2);
  Rng rng(7);
  const auto sampled = h.model.SampleDecode(prompt.back(), 8, 5.0, 1, rng, &s1);
  const auto greedy = h.model.GreedyDecode(prompt.back(), 8, &s2);
  EXPECT_EQ(sampled, greedy);
}

TEST(TransformerTest, HiddenCaptureCoversDecodePhase) {
  // Hidden states are also produced (and must be captured) for tokens generated in the
  // decode phase — the paper's two-stage saver handles exactly this stream.
  const ModelConfig cfg = ModelConfig::TinyLlama(2, 32, 2);
  Harness h(cfg);
  CaptureSink sink(cfg);
  PagedKvSequence seq(&h.pool);
  h.model.Forward(RandomTokens(4, cfg.vocab_size, 9), &seq, &sink);
  h.model.GreedyDecode(1, 3, &seq, &sink);
  EXPECT_EQ(seq.num_tokens(), 7);
  Tensor hidden = sink.LayerHidden(0, 7);  // would CHECK-fail if any position missing
  EXPECT_EQ(hidden.dim(0), 7);
}

TEST(TransformerTest, GreedyDecodeAdvancesSequence) {
  Harness h(ModelConfig::TinyLlama(2, 32, 2));
  PagedKvSequence seq(&h.pool);
  h.model.Forward(RandomTokens(3, 256, 10), &seq);
  const auto out = h.model.GreedyDecode(5, 4, &seq);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(seq.num_tokens(), 7);
  for (int32_t t : out) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 256);
  }
}

TEST(TransformerTest, LogitsShape) {
  Harness h(ModelConfig::TinyLlama(2, 32, 2));
  PagedKvSequence seq(&h.pool);
  Tensor out = h.model.Forward(RandomTokens(3, 256, 11), &seq);
  Tensor logits = h.model.Logits(out);
  EXPECT_EQ(logits.dim(0), 3);
  EXPECT_EQ(logits.dim(1), 256);
}

}  // namespace
}  // namespace hcache
