#include "src/model/cost_model.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(CostModelTest, HiddenIoIsHalfKvIo) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  for (const double n : {1.0, 64.0, 1024.0, 16384.0}) {
    EXPECT_DOUBLE_EQ(2.0 * HiddenIoBytesPerLayer(c, n), KvIoBytesPerLayer(c, n));
  }
}

TEST(CostModelTest, PaperFormulaValues) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  const double n = 1024.0;
  const double d = 4096.0;
  EXPECT_DOUBLE_EQ(HiddenToKvFlopsPerLayer(c, n), 4 * n * d * d);
  EXPECT_DOUBLE_EQ(AttnFlopsPerLayer(c, n), 8 * n * d * d + n * n * d);
  EXPECT_DOUBLE_EQ(FfnFlopsPerLayer(c, n), 16 * n * d * d);
  EXPECT_DOUBLE_EQ(RecomputeFlopsPerLayer(c, n), 24 * n * d * d + n * n * d);
}

TEST(CostModelTest, SpeedupLowerBoundIsSix) {
  const ModelConfig c = ModelConfig::Llama2_13B();
  EXPECT_GT(TheoreticalComputeSpeedup(c, 1.0), 6.0);
  // Ratio of the two formulas equals the closed form 6 + n/(4D).
  for (const double n : {16.0, 1024.0, 16384.0}) {
    const double ratio = RecomputeFlopsPerLayer(c, n) / HiddenToKvFlopsPerLayer(c, n);
    EXPECT_NEAR(ratio, TheoreticalComputeSpeedup(c, n), 1e-9);
  }
}

TEST(CostModelTest, SpeedupGrowsWithContext) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  EXPECT_LT(TheoreticalComputeSpeedup(c, 1024), TheoreticalComputeSpeedup(c, 16384));
  // At 16K context on a 4K-dim model the quadratic term adds a full 1x.
  EXPECT_NEAR(TheoreticalComputeSpeedup(c, 16384), 7.0, 1e-9);
}

TEST(CostModelTest, CostsScaleLinearlyInTokensExceptAttn) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  EXPECT_DOUBLE_EQ(HiddenToKvFlopsPerLayer(c, 2048), 2 * HiddenToKvFlopsPerLayer(c, 1024));
  EXPECT_DOUBLE_EQ(HiddenIoBytesPerLayer(c, 2048), 2 * HiddenIoBytesPerLayer(c, 1024));
  // Attention is superlinear.
  EXPECT_GT(AttnFlopsPerLayer(c, 2048), 2 * AttnFlopsPerLayer(c, 1024));
}

TEST(CostModelTest, ExactMatchesPaperForMhaKv) {
  const ModelConfig c = ModelConfig::Llama2_7B();  // MHA: kv_dim == hidden
  EXPECT_DOUBLE_EQ(ExactHiddenToKvFlopsPerLayer(c, 512), HiddenToKvFlopsPerLayer(c, 512));
}

TEST(CostModelTest, ExactFfnUsesTrueWidth) {
  const ModelConfig c = ModelConfig::Llama2_7B();  // ffn 11008, SwiGLU (3 matrices)
  EXPECT_DOUBLE_EQ(ExactFfnFlopsPerLayer(c, 10), 3 * 2 * 10.0 * 4096 * 11008);
  const ModelConfig o = ModelConfig::Opt30B();  // fc1+fc2 only
  EXPECT_DOUBLE_EQ(ExactFfnFlopsPerLayer(o, 10), 2 * 2 * 10.0 * 7168 * 28672);
}

TEST(CostModelTest, GqaReducesRestorationFlopsAndKvIo) {
  const ModelConfig gqa = ModelConfig::TinyGqa(4, 64, 4, 2);
  const ModelConfig mha = ModelConfig::TinyLlama(4, 64, 4);
  EXPECT_LT(ExactHiddenToKvFlopsPerLayer(gqa, 100), ExactHiddenToKvFlopsPerLayer(mha, 100));
  EXPECT_LT(KvIoBytesPerLayer(gqa, 100), KvIoBytesPerLayer(mha, 100));
  // Hidden-state IO is unchanged by GQA.
  EXPECT_DOUBLE_EQ(HiddenIoBytesPerLayer(gqa, 100), HiddenIoBytesPerLayer(mha, 100));
}

}  // namespace
}  // namespace hcache
