#include "src/model/config.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace hcache {
namespace {

TEST(ConfigTest, Llama7BShape) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  EXPECT_EQ(c.num_layers, 32);
  EXPECT_EQ(c.hidden_dim, 4096);
  EXPECT_EQ(c.num_heads, 32);
  EXPECT_EQ(c.head_dim(), 128);
  EXPECT_TRUE(c.IsMha());
  EXPECT_EQ(c.kv_dim(), 4096);
}

TEST(ConfigTest, Llama13BShape) {
  const ModelConfig c = ModelConfig::Llama2_13B();
  EXPECT_EQ(c.num_layers, 40);
  EXPECT_EQ(c.hidden_dim, 5120);
  EXPECT_EQ(c.head_dim(), 128);
}

TEST(ConfigTest, Opt30BShape) {
  const ModelConfig c = ModelConfig::Opt30B();
  EXPECT_EQ(c.num_layers, 48);
  EXPECT_EQ(c.hidden_dim, 7168);
  EXPECT_EQ(c.num_heads, 56);
  EXPECT_EQ(c.head_dim(), 128);
  EXPECT_EQ(c.norm, NormKind::kLayerNorm);
  EXPECT_EQ(c.position, PositionKind::kLearned);
}

TEST(ConfigTest, PerTokenStateSizes) {
  const ModelConfig c = ModelConfig::Llama2_7B();
  // FP16: hidden = 4096*2 = 8 KiB per token-layer; KV doubles it.
  EXPECT_EQ(c.HiddenBytesPerTokenLayer(), 8192);
  EXPECT_EQ(c.KvBytesPerTokenLayer(), 16384);
  EXPECT_EQ(c.HiddenBytesPerToken(), 32 * 8192);
  EXPECT_EQ(c.KvBytesPerToken(), 2 * c.HiddenBytesPerToken());
}

TEST(ConfigTest, HiddenIsHalfOfKvForMha) {
  // The paper's central size claim, for all three evaluated models.
  for (const auto& c :
       {ModelConfig::Llama2_7B(), ModelConfig::Llama2_13B(), ModelConfig::Opt30B()}) {
    EXPECT_EQ(2 * c.HiddenBytesPerToken(), c.KvBytesPerToken()) << c.name;
  }
}

TEST(ConfigTest, GqaShrinksKvOnly) {
  const ModelConfig c = ModelConfig::TinyGqa(4, 64, 4, 2);
  EXPECT_FALSE(c.IsMha());
  EXPECT_EQ(c.kv_dim(), 32);
  EXPECT_EQ(c.HiddenBytesPerTokenLayer(), 64 * 2);
  EXPECT_EQ(c.KvBytesPerTokenLayer(), 2 * 32 * 2);
  // With 2x GQA grouping, hidden states and KV are the *same* size: the paper's 2x IO
  // advantage is MHA-specific (discussed in §7).
  EXPECT_EQ(c.HiddenBytesPerToken(), c.KvBytesPerToken());
}

TEST(ConfigTest, TinyModelsAreRunnable) {
  const ModelConfig t = ModelConfig::TinyLlama();
  EXPECT_GT(t.vocab_size, 0);
  EXPECT_EQ(t.hidden_dim % t.num_heads, 0);
  EXPECT_EQ(t.head_dim() % 2, 0);  // RoPE needs even head_dim
  const ModelConfig o = ModelConfig::TinyOpt();
  EXPECT_EQ(o.position, PositionKind::kLearned);
}

}  // namespace
}  // namespace hcache
