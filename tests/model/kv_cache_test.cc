#include "src/model/kv_cache.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hcache {
namespace {

KvPoolConfig TinyPool(int64_t blocks = 8, int64_t block_tokens = 4) {
  KvPoolConfig c;
  c.num_blocks = blocks;
  c.block_tokens = block_tokens;
  c.num_layers = 2;
  c.kv_dim = 8;
  return c;
}

Tensor RandomKv(int64_t n, int64_t kv_dim, uint64_t seed) {
  Rng rng(seed);
  Tensor t({n, kv_dim});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return t;
}

TEST(KvBlockPoolTest, AllocUntilExhaustion) {
  KvBlockPool pool(TinyPool(3));
  EXPECT_EQ(pool.num_free(), 3);
  EXPECT_EQ(pool.Alloc(), 0);
  EXPECT_EQ(pool.Alloc(), 1);
  EXPECT_EQ(pool.Alloc(), 2);
  EXPECT_EQ(pool.Alloc(), -1);
  EXPECT_EQ(pool.num_free(), 0);
}

TEST(KvBlockPoolTest, ReleaseRecycles) {
  KvBlockPool pool(TinyPool(2));
  const int64_t a = pool.Alloc();
  (void)pool.Alloc();
  pool.Release(a);
  EXPECT_EQ(pool.num_free(), 1);
  EXPECT_EQ(pool.Alloc(), a);
}

TEST(KvBlockPoolTest, RefCountingKeepsSharedBlocksAlive) {
  KvBlockPool pool(TinyPool(2));
  const int64_t b = pool.Alloc();
  pool.AddRef(b);
  EXPECT_EQ(pool.ref_count(b), 2);
  pool.Release(b);
  EXPECT_EQ(pool.num_free(), 1);  // still held by one ref
  pool.Release(b);
  EXPECT_EQ(pool.num_free(), 2);
}

TEST(KvBlockPoolTest, KeyValueSlabsDisjoint) {
  KvBlockPool pool(TinyPool());
  const int64_t b = pool.Alloc();
  float* k = pool.Key(b, 0);
  float* v = pool.Value(b, 0);
  EXPECT_EQ(v - k, pool.block_tokens() * 8);
  // Layers are disjoint too.
  EXPECT_NE(pool.Key(b, 0), pool.Key(b, 1));
}

TEST(KvBlockPoolTest, CapacityTokens) {
  KvBlockPool pool(TinyPool(8, 4));
  EXPECT_EQ(pool.capacity_tokens(), 32);
}

TEST(PagedKvSequenceTest, WriteReadRoundTrip) {
  KvBlockPool pool(TinyPool());
  PagedKvSequence seq(&pool);
  ASSERT_TRUE(seq.EnsureCapacity(6));
  Tensor k = RandomKv(6, 8, 1), v = RandomKv(6, 8, 2);
  for (int64_t layer = 0; layer < 2; ++layer) {
    seq.WriteKv(layer, 0, k, v);
  }
  seq.CommitTokens(6);
  Tensor k_out, v_out;
  seq.ReadKv(1, 0, 6, &k_out, &v_out);
  EXPECT_TRUE(Tensor::BitwiseEqual(k, k_out));
  EXPECT_TRUE(Tensor::BitwiseEqual(v, v_out));
}

TEST(PagedKvSequenceTest, RowAccessCrossesBlockBoundary) {
  KvBlockPool pool(TinyPool(8, 4));
  PagedKvSequence seq(&pool);
  ASSERT_TRUE(seq.EnsureCapacity(10));  // 3 blocks
  Tensor k = RandomKv(10, 8, 3), v = RandomKv(10, 8, 4);
  seq.WriteKv(0, 0, k, v);
  seq.WriteKv(1, 0, k, v);
  seq.CommitTokens(10);
  EXPECT_EQ(seq.num_blocks_held(), 3);
  // Token 5 lives in block 1 slot 1.
  const float* row = seq.KeyRow(0, 5);
  for (int64_t d = 0; d < 8; ++d) {
    EXPECT_EQ(row[d], k.at(5, d));
  }
}

TEST(PagedKvSequenceTest, IncrementalAppendLikeDecode) {
  KvBlockPool pool(TinyPool(8, 4));
  PagedKvSequence seq(&pool);
  for (int step = 0; step < 9; ++step) {
    ASSERT_TRUE(seq.EnsureCapacity(seq.num_tokens() + 1));
    Tensor k = RandomKv(1, 8, 100 + step), v = RandomKv(1, 8, 200 + step);
    seq.WriteKv(0, seq.num_tokens(), k, v);
    seq.WriteKv(1, seq.num_tokens(), k, v);
    seq.CommitTokens(1);
  }
  EXPECT_EQ(seq.num_tokens(), 9);
  EXPECT_EQ(seq.num_blocks_held(), 3);
}

TEST(PagedKvSequenceTest, EvictFreesBlocksKeepsHistoryLength) {
  KvBlockPool pool(TinyPool(4, 4));
  PagedKvSequence seq(&pool);
  ASSERT_TRUE(seq.EnsureCapacity(8));
  Tensor k = RandomKv(8, 8, 5), v = RandomKv(8, 8, 6);
  seq.WriteKv(0, 0, k, v);
  seq.WriteKv(1, 0, k, v);
  seq.CommitTokens(8);
  const int64_t free_before = pool.num_free();
  seq.Evict();
  EXPECT_FALSE(seq.has_kv());
  EXPECT_EQ(seq.num_tokens(), 8);  // history length survives eviction
  EXPECT_EQ(pool.num_free(), free_before + 2);
}

TEST(PagedKvSequenceTest, RestoreAfterEvictRoundTrips) {
  KvBlockPool pool(TinyPool(4, 4));
  PagedKvSequence seq(&pool);
  ASSERT_TRUE(seq.EnsureCapacity(5));
  Tensor k = RandomKv(5, 8, 7), v = RandomKv(5, 8, 8);
  seq.WriteKv(0, 0, k, v);
  seq.WriteKv(1, 0, k, v);
  seq.CommitTokens(5);
  seq.Evict();

  // Restoration path: reallocate capacity for the recorded history, refill.
  ASSERT_TRUE(seq.EnsureCapacity(seq.num_tokens()));
  seq.WriteKv(0, 0, k, v);
  seq.WriteKv(1, 0, k, v);
  Tensor k_out, v_out;
  seq.ReadKv(0, 0, 5, &k_out, &v_out);
  EXPECT_TRUE(Tensor::BitwiseEqual(k, k_out));
  EXPECT_TRUE(seq.has_kv());
}

TEST(PagedKvSequenceTest, EnsureCapacityFailsWhenPoolExhausted) {
  KvBlockPool pool(TinyPool(2, 4));
  PagedKvSequence a(&pool);
  ASSERT_TRUE(a.EnsureCapacity(8));  // takes both blocks
  PagedKvSequence b(&pool);
  EXPECT_FALSE(b.EnsureCapacity(1));
  // Failure must not leak partial allocations.
  EXPECT_EQ(pool.num_free(), 0);
  a.Evict();
  EXPECT_TRUE(b.EnsureCapacity(4));
}

TEST(PagedKvSequenceTest, DestructorReleasesBlocks) {
  KvBlockPool pool(TinyPool(4, 4));
  {
    PagedKvSequence seq(&pool);
    ASSERT_TRUE(seq.EnsureCapacity(16));
    EXPECT_EQ(pool.num_free(), 0);
  }
  EXPECT_EQ(pool.num_free(), 4);
}

TEST(PagedKvSequenceTest, CapacityByModelMatchesPaperScale) {
  // §2.4: PagedAttention lets an A100-40G hold ~48K tokens of Llama2-7B KV. With 16
  // tokens/block and FP16, 48K tokens = 3000 blocks * 16 * 2 * 4096 * 2B = ~24 GiB of
  // KV storage, consistent with 40G minus weights. We verify the arithmetic our
  // serving-capacity model uses.
  const ModelConfig m = ModelConfig::Llama2_7B();
  const int64_t tokens = 48 * 1024;
  const double kv_gib = static_cast<double>(m.KvBytesPerToken()) * tokens / (1024.0 * 1024 * 1024);
  EXPECT_NEAR(kv_gib, 24.0, 0.1);
}

}  // namespace
}  // namespace hcache
