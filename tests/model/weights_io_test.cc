#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/model/transformer.h"
#include "src/model/weights.h"

namespace hcache {
namespace {

class WeightsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("hcache_ckpt_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(WeightsIoTest, RoundTripLlama) {
  const ModelWeights w = ModelWeights::Random(ModelConfig::TinyLlama(3, 32, 2), 11);
  ASSERT_TRUE(w.SaveToFile(path_));
  ModelWeights loaded;
  ASSERT_TRUE(ModelWeights::LoadFromFile(path_, &loaded));
  EXPECT_EQ(loaded.config.name, "TinyLlama");
  EXPECT_EQ(loaded.config.num_layers, 3);
  EXPECT_EQ(loaded.config.activation, ActivationKind::kSwiGlu);
  EXPECT_TRUE(Tensor::BitwiseEqual(w.embedding, loaded.embedding));
  EXPECT_TRUE(Tensor::BitwiseEqual(w.lm_head, loaded.lm_head));
  for (size_t l = 0; l < w.layers.size(); ++l) {
    EXPECT_TRUE(Tensor::BitwiseEqual(w.layers[l].wk, loaded.layers[l].wk)) << l;
    EXPECT_TRUE(Tensor::BitwiseEqual(w.layers[l].w_down, loaded.layers[l].w_down)) << l;
  }
  // Absent tensors (Llama has no biases) stay absent.
  EXPECT_TRUE(loaded.layers[0].bq.empty());
  EXPECT_TRUE(loaded.pos_embedding.empty());
}

TEST_F(WeightsIoTest, RoundTripOptWithBiases) {
  const ModelWeights w = ModelWeights::Random(ModelConfig::TinyOpt(2, 32, 2), 12);
  ASSERT_TRUE(w.SaveToFile(path_));
  ModelWeights loaded;
  ASSERT_TRUE(ModelWeights::LoadFromFile(path_, &loaded));
  EXPECT_EQ(loaded.config.position, PositionKind::kLearned);
  EXPECT_TRUE(Tensor::BitwiseEqual(w.pos_embedding, loaded.pos_embedding));
  EXPECT_EQ(loaded.layers[0].bq.numel(), 32);
  EXPECT_TRUE(Tensor::BitwiseEqual(w.layers[1].attn_norm_bias,
                                   loaded.layers[1].attn_norm_bias));
}

TEST_F(WeightsIoTest, LoadedModelComputesIdentically) {
  // The real guarantee: a checkpoint round trip does not perturb a single output bit.
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 32, 2);
  const ModelWeights w = ModelWeights::Random(cfg, 13);
  ASSERT_TRUE(w.SaveToFile(path_));
  ModelWeights loaded;
  ASSERT_TRUE(ModelWeights::LoadFromFile(path_, &loaded));

  Transformer a(&w), b(&loaded);
  KvBlockPool pa(KvPoolConfig::ForModel(cfg, 32, 8)), pb(KvPoolConfig::ForModel(cfg, 32, 8));
  PagedKvSequence sa(&pa), sb(&pb);
  const std::vector<int32_t> prompt = {1, 2, 3, 4, 5, 6, 7};
  Tensor oa = a.Forward(prompt, &sa);
  Tensor ob = b.Forward(prompt, &sb);
  EXPECT_TRUE(Tensor::BitwiseEqual(oa, ob));
  EXPECT_EQ(a.GreedyDecode(7, 5, &sa), b.GreedyDecode(7, 5, &sb));
}

TEST_F(WeightsIoTest, MissingFileFails) {
  ModelWeights loaded;
  EXPECT_FALSE(ModelWeights::LoadFromFile("/nonexistent/ckpt.bin", &loaded));
}

TEST_F(WeightsIoTest, CorruptMagicFails) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  const char junk[] = "not a checkpoint at all";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  ModelWeights loaded;
  EXPECT_FALSE(ModelWeights::LoadFromFile(path_, &loaded));
}

TEST_F(WeightsIoTest, TruncatedFileFails) {
  const ModelWeights w = ModelWeights::Random(ModelConfig::TinyLlama(2, 16, 2), 14);
  ASSERT_TRUE(w.SaveToFile(path_));
  // Chop the file in half.
  const auto size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size / 2);
  ModelWeights loaded;
  EXPECT_FALSE(ModelWeights::LoadFromFile(path_, &loaded));
}

}  // namespace
}  // namespace hcache
