// Elastic cluster plane: replica lifecycle (drain/kill/resume), failure-driven
// session migration over the shared tier, the deterministic autoscaler, and the
// non-homogeneous arrival process feeding it all.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/serving/autoscaler.h"
#include "src/serving/cluster.h"
#include "src/serving/engine.h"
#include "src/storage/memory_backend.h"
#include "src/workload/arrival.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 64 * 1024;

ServingOptions EngineOpts() {
  ServingOptions o;
  o.method = RestoreMethod::kHCache;
  return o;
}

ServingEngine MakeEngine() {
  return ServingEngine(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                       EngineOpts());
}

ClusterOptions ElasticOpts(int replicas) {
  ClusterOptions o;
  o.num_replicas = replicas;
  o.router = RouterPolicy::kLeastLoadedTokens;
  o.serving.method = RestoreMethod::kHCache;
  return o;
}

ClusterReport RunElastic(const ClusterOptions& o, StorageBackend* shared, double load,
                  int64_t sessions, uint64_t seed = 42) {
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                        shared);
  return cluster.RunConversations(load, sessions, 5.0, seed);
}

// ===== engine-level lifecycle =====

TEST(ReplicaLifecycleTest, KillDuringRestoreAbandonsTheRoundAndFreesTheKvPool) {
  ServingEngine engine = MakeEngine();
  engine.StartExternal();
  EXPECT_EQ(engine.lifecycle(), ReplicaLifecycle::kUp);

  RoundTask r;
  r.session = 7;
  r.history = 4096;  // forces a restoration phase before prefill
  r.input = 128;
  r.output = 32;
  engine.Submit(r);
  std::vector<RoundCompletion> done;
  engine.Advance(1e-7, &done);  // dispatches into the restoration channel
  EXPECT_TRUE(done.empty());
  const ReplicaLoad mid = engine.Load();
  EXPECT_LT(mid.kv_free_tokens, mid.kv_capacity_tokens);  // KV reserved by the restore
  EXPECT_FALSE(engine.Idle());

  const std::vector<RoundTask> orphans = engine.Kill();
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_EQ(orphans[0].session, 7);
  EXPECT_EQ(orphans[0].history, 4096);  // the round is returned intact for re-routing
  EXPECT_EQ(engine.lifecycle(), ReplicaLifecycle::kDown);
  EXPECT_TRUE(engine.Idle());
  EXPECT_FALSE(std::isfinite(engine.NextEventTime()));
  const ReplicaLoad after = engine.Load();
  EXPECT_EQ(after.kv_free_tokens, after.kv_capacity_tokens);  // pool fully released
  EXPECT_EQ(after.queued_rounds, 0);
  EXPECT_EQ(after.queued_tokens, 0);
  EXPECT_EQ(engine.FinishExternal().rounds_abandoned, 1);
}

TEST(ReplicaLifecycleTest, KillReturnsEveryInFlightStage) {
  // Queue several rounds so pending/restoring stages are all populated, then kill:
  // every admitted round must come back exactly once.
  ServingEngine engine = MakeEngine();
  engine.StartExternal();
  for (int i = 0; i < 4; ++i) {
    RoundTask r;
    r.session = i;
    r.history = i == 0 ? 2048 : 0;
    r.input = 256;
    r.output = 64;
    engine.Submit(r);
  }
  std::vector<RoundCompletion> done;
  engine.Advance(1e-7, &done);
  const std::vector<RoundTask> orphans = engine.Kill();
  std::vector<int64_t> ids;
  for (const RoundTask& o : orphans) {
    ids.push_back(o.session);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(ReplicaLifecycleTest, DrainFinishesInFlightWorkThenSettles) {
  ServingEngine engine = MakeEngine();
  engine.StartExternal();
  RoundTask r;
  r.session = 1;
  r.input = 256;
  r.output = 32;
  engine.Submit(r);
  engine.BeginDrain();
  EXPECT_EQ(engine.lifecycle(), ReplicaLifecycle::kDraining);
  // Draining still advances admitted work to completion.
  std::vector<RoundCompletion> done;
  engine.Advance(1e9, &done);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_FALSE(done[0].dropped);
  EXPECT_TRUE(engine.Idle());
  engine.MarkDown();
  EXPECT_EQ(engine.lifecycle(), ReplicaLifecycle::kDown);
  EXPECT_FALSE(std::isfinite(engine.NextEventTime()));
}

TEST(ReplicaLifecycleTest, ResumeAtRevivesADownReplicaAtTheFleetClock) {
  ServingEngine engine = MakeEngine();
  engine.StartExternal();
  engine.BeginDrain();
  std::vector<RoundCompletion> done;
  engine.Advance(10.0, &done);  // settle at the fleet clock, as the driver does
  engine.MarkDown();

  engine.ResumeAt(50.0);
  EXPECT_EQ(engine.lifecycle(), ReplicaLifecycle::kUp);
  RoundTask r;
  r.session = 2;
  r.input = 128;
  r.output = 16;
  r.arrival = 50.0;
  engine.Submit(r);
  engine.Advance(1e9, &done);
  ASSERT_EQ(done.size(), 1u);
  // The revived clock starts at the fleet time: no completion in the driver's past.
  EXPECT_GE(done[0].finish_time, 50.0);
}

// ===== cluster-level fault matrix =====

TEST(ElasticClusterTest, ReplicaKillMigratesSessionsToSurvivorsWithNoLostRounds) {
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o = ElasticOpts(3);
  o.events.push_back(FleetEvent{/*time=*/30.0, FleetEvent::Kind::kKill, /*replica=*/-1});
  const ClusterReport rep = RunElastic(o, &shared, /*load=*/0.8, /*sessions=*/40);

  EXPECT_EQ(rep.kills, 1);
  EXPECT_GT(rep.migrated_rounds, 0);  // the victim was mid-work at t=30
  EXPECT_EQ(rep.aggregate.rounds_abandoned, rep.migrated_rounds);
  // Fail-stop loses no rounds: every submission is either completed or migrated
  // (and the migrated copy completes on a survivor).
  EXPECT_EQ(rep.aggregate.rounds_submitted,
            rep.aggregate.rounds_completed + rep.migrated_rounds);
  EXPECT_EQ(rep.sessions_completed, 40);
  EXPECT_EQ(rep.sessions_dropped, 0);
  // Survivor restores came from state the victim saved into the SHARED tier before
  // dying — with a reliable backend nothing falls back to recompute.
  EXPECT_EQ(rep.aggregate.restore_fallbacks, 0);
  EXPECT_EQ(rep.min_replicas_up, 2);
  // Completed sessions delete their state even when they migrated: no orphaned
  // contexts squat in the shared tier after the run.
  EXPECT_EQ(shared.chunks_stored(), 0);
}

TEST(ElasticClusterTest, DrainUnderLoadRetiresTheReplicaWithoutAbandoningWork) {
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o = ElasticOpts(3);
  o.events.push_back(FleetEvent{/*time=*/25.0, FleetEvent::Kind::kDrain, /*replica=*/0});
  const ClusterReport rep = RunElastic(o, &shared, /*load=*/0.8, /*sessions=*/40);

  EXPECT_EQ(rep.scale_downs, 1);
  EXPECT_EQ(rep.kills, 0);
  EXPECT_EQ(rep.migrated_rounds, 0);  // graceful: drains abandon nothing
  EXPECT_EQ(rep.aggregate.rounds_abandoned, 0);
  EXPECT_EQ(rep.aggregate.rounds_completed, rep.aggregate.rounds_submitted);
  EXPECT_EQ(rep.sessions_completed, 40);
  EXPECT_EQ(rep.min_replicas_up, 2);
  // The drained replica finished what it had admitted before going down.
  EXPECT_GT(rep.replicas[0].rounds_completed, 0);
  EXPECT_EQ(shared.chunks_stored(), 0);
}

TEST(ElasticClusterTest, ScaleToOneAndBackServesEverySession) {
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o = ElasticOpts(3);
  o.events.push_back(FleetEvent{20.0, FleetEvent::Kind::kDrain, -1});
  o.events.push_back(FleetEvent{20.0, FleetEvent::Kind::kDrain, -1});
  o.events.push_back(FleetEvent{120.0, FleetEvent::Kind::kScaleUp, -1});
  o.events.push_back(FleetEvent{120.0, FleetEvent::Kind::kScaleUp, -1});
  const ClusterReport rep = RunElastic(o, &shared, /*load=*/0.6, /*sessions=*/40);

  EXPECT_EQ(rep.scale_downs, 2);
  EXPECT_EQ(rep.scale_ups, 2);
  EXPECT_EQ(rep.min_replicas_up, 1);
  EXPECT_EQ(rep.peak_replicas_up, 3);
  EXPECT_EQ(rep.sessions_completed, 40);
  EXPECT_EQ(rep.aggregate.rounds_completed, rep.aggregate.rounds_submitted);
  // The elastic fleet spent less replica time than holding 3 replicas all run.
  EXPECT_LT(rep.replica_seconds, 3.0 * rep.aggregate.makespan);
  EXPECT_EQ(shared.chunks_stored(), 0);
}

TEST(ElasticClusterTest, AutoscalerFloorRepairRevivesADeadFleet) {
  // Kill the only up replica mid-run: the fleet goes dark with arrivals pending, and
  // the autoscaler's min_replicas floor must revive capacity so the run completes.
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o = ElasticOpts(2);
  o.initial_replicas = 1;
  o.autoscaler.policy = AutoscalePolicy::kTargetUtilization;
  o.autoscaler.min_replicas = 1;
  o.autoscaler.evaluate_every_s = 5.0;
  o.events.push_back(FleetEvent{15.0, FleetEvent::Kind::kKill, -1});
  const ClusterReport rep = RunElastic(o, &shared, /*load=*/0.4, /*sessions=*/20);

  EXPECT_EQ(rep.kills, 1);
  EXPECT_GE(rep.scale_ups, 1);  // floor repair brought a replica back
  EXPECT_EQ(rep.min_replicas_up, 0);
  EXPECT_EQ(rep.sessions_completed, 20);
  EXPECT_EQ(rep.aggregate.rounds_submitted,
            rep.aggregate.rounds_completed + rep.migrated_rounds);
  EXPECT_EQ(shared.chunks_stored(), 0);
}

TEST(ElasticClusterTest, StickySessionsReRouteAfterTheirHomeDies) {
  // Sticky routing pins sessions to the replica holding their state; killing it must
  // not strand them — the shared tier serves their restore on whatever survivor the
  // router picks (counted as cross-replica restores).
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o = ElasticOpts(3);
  o.router = RouterPolicy::kStickyWithSpill;
  o.events.push_back(FleetEvent{30.0, FleetEvent::Kind::kKill, -1});
  const ClusterReport rep = RunElastic(o, &shared, /*load=*/0.8, /*sessions=*/40);

  EXPECT_EQ(rep.sessions_completed, 40);
  EXPECT_GT(rep.cross_replica_restores, 0);  // the forced re-homes
  EXPECT_EQ(rep.aggregate.restore_fallbacks, 0);
  EXPECT_EQ(shared.chunks_stored(), 0);
}

TEST(ElasticClusterTest, StaticOptionsReproduceTheFixedFleetExactly) {
  // ClusterOptions{autoscaler=kStatic, stationary arrivals, no events} must be
  // bit-for-bit the PR 4-9 cluster: same rounds, same clocks, same histograms.
  MemoryBackend a_shared(kChunkBytes);
  MemoryBackend b_shared(kChunkBytes);
  ClusterOptions a_opts = ElasticOpts(3);
  ClusterOptions b_opts = ElasticOpts(3);
  b_opts.autoscaler = AutoscalerOptions{};  // defaults: kStatic
  b_opts.arrivals = ArrivalSpec{};          // defaults: stationary
  const ClusterReport a = RunElastic(a_opts, &a_shared, 0.6, 30, 99);
  const ClusterReport b = RunElastic(b_opts, &b_shared, 0.6, 30, 99);
  EXPECT_EQ(a.aggregate.rounds_completed, b.aggregate.rounds_completed);
  EXPECT_DOUBLE_EQ(a.aggregate.makespan, b.aggregate.makespan);
  EXPECT_EQ(a.aggregate.ttft.samples(), b.aggregate.ttft.samples());
  EXPECT_EQ(a.aggregate.tbt.samples(), b.aggregate.tbt.samples());
  EXPECT_EQ(b.scale_ups, 0);
  EXPECT_EQ(b.scale_downs, 0);
  EXPECT_EQ(b.peak_replicas_up, 3);
  EXPECT_EQ(b.min_replicas_up, 3);
}

// ===== autoscaler control law =====

std::vector<ReplicaCandidate> Fleet(std::vector<int64_t> queued_tokens,
                                    int64_t kv_free = 48000, int64_t kv_cap = 48000) {
  std::vector<ReplicaCandidate> up;
  for (size_t i = 0; i < queued_tokens.size(); ++i) {
    ReplicaCandidate c;
    c.id = static_cast<int>(i);
    c.load.queued_tokens = queued_tokens[i];
    c.load.kv_free_tokens = kv_free;
    c.load.kv_capacity_tokens = kv_cap;
    up.push_back(c);
  }
  return up;
}

AutoscalerOptions TargetOpts() {
  AutoscalerOptions o;
  o.policy = AutoscalePolicy::kTargetUtilization;
  o.target_queued_tokens = 1000.0;
  o.evaluate_every_s = 20.0;
  o.scale_down_cooldown_s = 100.0;
  return o;
}

TEST(AutoscalerTest, StaticPolicyNeverActs) {
  Autoscaler as(AutoscalerOptions{}, /*fleet_size=*/4);
  EXPECT_FALSE(as.enabled());
  EXPECT_FALSE(std::isfinite(as.NextEvaluationTime()));
  const AutoscaleDecision d = as.Evaluate(100.0, Fleet({50000, 50000}));
  EXPECT_EQ(d.delta, 0);
  EXPECT_EQ(as.evaluations(), 0);
}

TEST(AutoscalerTest, ScalesUpProportionallyAboveTheBand) {
  Autoscaler as(TargetOpts(), /*fleet_size=*/8);
  // 2 replicas, 2000 queued tokens each: utilization 4000/(2*1000) = 2.0 > hi=1.3.
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({2000, 2000}));
  EXPECT_DOUBLE_EQ(d.utilization, 2.0);
  EXPECT_EQ(d.delta, 2);  // desired = ceil(2 * 2.0) = 4 replicas
}

TEST(AutoscalerTest, HoldsInsideTheHysteresisBand) {
  Autoscaler as(TargetOpts(), 8);
  // Utilization exactly at the setpoint: inside [lo, hi], no action.
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({1000, 1000}));
  EXPECT_DOUBLE_EQ(d.utilization, 1.0);
  EXPECT_EQ(d.delta, 0);
  EXPECT_FALSE(d.in_cooldown);
}

TEST(AutoscalerTest, ScaleDownStepsOneAndRespectsCooldown) {
  Autoscaler as(TargetOpts(), 8);
  const AutoscaleDecision first = as.Evaluate(20.0, Fleet({100, 100, 100}));
  EXPECT_EQ(first.delta, -1);  // one drain at a time
  // Still idle at the next evaluation, but inside the 100 s cooldown window.
  const AutoscaleDecision second = as.Evaluate(40.0, Fleet({100, 100}));
  EXPECT_EQ(second.delta, 0);
  EXPECT_TRUE(second.in_cooldown);
  // Past the cooldown the next step is allowed.
  const AutoscaleDecision third = as.Evaluate(140.0, Fleet({100, 100}));
  EXPECT_EQ(third.delta, -1);
}

TEST(AutoscalerTest, NeverDrainsBelowMinReplicas) {
  AutoscalerOptions o = TargetOpts();
  o.min_replicas = 2;
  Autoscaler as(o, 8);
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({0, 0}));
  EXPECT_EQ(d.delta, 0);  // idle, but already at the floor
}

TEST(AutoscalerTest, FloorRepairRestoresMinReplicasUnconditionally) {
  AutoscalerOptions o = TargetOpts();
  o.min_replicas = 2;
  Autoscaler as(o, 8);
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({}));  // dead fleet
  EXPECT_EQ(d.delta, 2);
}

TEST(AutoscalerTest, KvOccupancyFloorsUtilizationAgainstScaleDown) {
  Autoscaler as(TargetOpts(), 8);
  // Queues empty but KV pools full: a KV-bound fleet reads utilization 1.0 — inside
  // the band — so it is NOT drained even though queued demand alone says idle.
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({0, 0}, /*kv_free=*/0));
  EXPECT_DOUBLE_EQ(d.utilization, 1.0);
  EXPECT_EQ(d.delta, 0);
}

TEST(AutoscalerTest, CapsAtMaxReplicasAndAdvancesItsGrid) {
  AutoscalerOptions o = TargetOpts();
  o.max_replicas = 3;
  Autoscaler as(o, 8);
  EXPECT_DOUBLE_EQ(as.NextEvaluationTime(), 20.0);
  const AutoscaleDecision d = as.Evaluate(20.0, Fleet({9000, 9000}));  // util 9.0
  EXPECT_EQ(d.delta, 1);  // desired 18, capped at max=3
  EXPECT_DOUBLE_EQ(as.NextEvaluationTime(), 40.0);
  // A clock jump over several grid points yields one evaluation, not a burst.
  as.Evaluate(95.0, Fleet({1000, 1000, 1000}));
  EXPECT_DOUBLE_EQ(as.NextEvaluationTime(), 100.0);
}

// ===== non-homogeneous arrivals =====

TEST(NonHomogeneousArrivalsTest, ReplaysExactlyFromItsSeed) {
  DiurnalShape shape;
  shape.period_s = 600.0;
  shape.amplitude = 0.5;
  NonHomogeneousPoissonArrivals a(1.0, shape, 77);
  NonHomogeneousPoissonArrivals b(1.0, shape, 77);
  double prev = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double ta = a.NextArrivalTime();
    EXPECT_DOUBLE_EQ(ta, b.NextArrivalTime());
    EXPECT_GT(ta, prev);  // strictly monotone
    prev = ta;
  }
}

TEST(NonHomogeneousArrivalsTest, DiurnalShapeModulatesArrivalDensity) {
  DiurnalShape shape;
  shape.period_s = 1000.0;
  shape.amplitude = 0.8;
  NonHomogeneousPoissonArrivals arr(1.0, shape, 42);
  // sin is positive on the first half-period and negative on the second: the high
  // half must receive several times the arrivals of the low half.
  int high = 0, low = 0;
  for (;;) {
    const double t = arr.NextArrivalTime();
    if (t >= 1000.0) {
      break;
    }
    ++(t < 500.0 ? high : low);
  }
  EXPECT_GT(high, 2 * low);
}

TEST(NonHomogeneousArrivalsTest, FlashCrowdConcentratesArrivals) {
  DiurnalShape shape;
  shape.amplitude = 0.0;  // isolate the spike
  shape.spikes.push_back(FlashCrowd{/*start=*/100.0, /*duration=*/10.0,
                                    /*multiplier=*/10.0});
  NonHomogeneousPoissonArrivals arr(1.0, shape, 7);
  int in_spike = 0, before_spike = 0;
  for (;;) {
    const double t = arr.NextArrivalTime();
    if (t >= 110.0) {
      break;
    }
    if (t >= 100.0) {
      ++in_spike;
    } else if (t >= 80.0 && t < 90.0) {
      ++before_spike;  // equal-width control window at the base rate
    }
  }
  EXPECT_GT(in_spike, 3 * std::max(1, before_spike));
}

TEST(NonHomogeneousArrivalsTest, PeakRateBoundsTheInstantaneousRate) {
  DiurnalShape shape;
  shape.period_s = 700.0;
  shape.amplitude = 0.6;
  shape.spikes.push_back(FlashCrowd{200.0, 30.0, 5.0});
  shape.spikes.push_back(FlashCrowd{210.0, 50.0, 2.0});  // overlaps the first
  const double base = 1.5;
  const double peak = shape.PeakRate(base);
  for (double t = 0; t < 1400.0; t += 0.5) {
    EXPECT_LE(shape.RateAt(base, t), peak) << "t=" << t;
    EXPECT_GE(shape.RateAt(base, t), 0.0) << "t=" << t;
  }
}

}  // namespace
}  // namespace hcache
