#include "src/serving/engine.h"

#include <gtest/gtest.h>

#include "src/storage/memory_backend.h"
#include "src/workload/arrival.h"

namespace hcache {
namespace {

ServingOptions Opts(RestoreMethod m) {
  ServingOptions o;
  o.method = m;
  return o;
}

ServingEngine Engine7B(RestoreMethod m) {
  return ServingEngine(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), Opts(m));
}

TEST(ServingEngineTest, KvCapacityMatchesPaperArithmetic) {
  // §2.4: PagedAttention lets an A100-40G keep ~48K tokens of Llama2-7B and ~17K of
  // Llama2-13B.
  ServingEngine e7 = Engine7B(RestoreMethod::kHCache);
  EXPECT_NEAR(static_cast<double>(e7.DeriveKvCapacityTokens()), 48e3, 8e3);
  ServingEngine e13(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_13B(),
                    Opts(RestoreMethod::kHCache));
  EXPECT_NEAR(static_cast<double>(e13.DeriveKvCapacityTokens()), 17e3, 5e3);
}

TEST(ServingEngineTest, SerialLongContextOrderingMatchesFig4) {
  LEvalGenerator gen(1);
  const auto trace = gen.MixedTrace(40);
  const double t_ideal =
      Engine7B(RestoreMethod::kIdeal).RunLongContextSerial(trace).ttft.Mean();
  const double t_h =
      Engine7B(RestoreMethod::kHCache).RunLongContextSerial(trace).ttft.Mean();
  const double t_kv =
      Engine7B(RestoreMethod::kKvOffload).RunLongContextSerial(trace).ttft.Mean();
  const double t_rec =
      Engine7B(RestoreMethod::kRecompute).RunLongContextSerial(trace).ttft.Mean();
  EXPECT_LT(t_ideal, t_h);
  EXPECT_LT(t_h, t_kv);
  EXPECT_LT(t_kv, t_rec);
  // Fig 4: recompute 20-26x ideal, KV offload 6.5-13x ideal. Wide bands: the exact
  // multiple depends on engine overhead.
  EXPECT_GT(t_rec / t_ideal, 8.0);
  EXPECT_LT(t_rec / t_ideal, 40.0);
  EXPECT_GT(t_kv / t_ideal, 3.0);
  EXPECT_LT(t_kv / t_ideal, 20.0);
  // Fig 10: HCache 1.62-1.93x faster than KV offload on long contexts.
  EXPECT_GT(t_kv / t_h, 1.3);
  EXPECT_LT(t_kv / t_h, 2.3);
}

TEST(ServingEngineTest, ConversationsCompleteAtLowLoad) {
  ServingEngine e = Engine7B(RestoreMethod::kHCache);
  const ServingReport rep = e.RunConversations(0.2, 20, 5.0, 42);
  EXPECT_EQ(rep.rounds_completed, rep.rounds_submitted);
  EXPECT_GT(rep.rounds_completed, 20);  // multi-round conversations
  EXPECT_GT(rep.ttft.count(), 0u);
  EXPECT_GT(rep.tbt.count(), 0u);
}

TEST(ServingEngineTest, ConversationTtftOrderingAcrossMethods) {
  const double load = 0.5;
  const double t_h = Engine7B(RestoreMethod::kHCache)
                         .RunConversations(load, 40, 5.0, 7)
                         .ttft.Mean();
  const double t_kv = Engine7B(RestoreMethod::kKvOffload)
                          .RunConversations(load, 40, 5.0, 7)
                          .ttft.Mean();
  const double t_rec = Engine7B(RestoreMethod::kRecompute)
                           .RunConversations(load, 40, 5.0, 7)
                           .ttft.Mean();
  const double t_ideal = Engine7B(RestoreMethod::kIdeal)
                             .RunConversations(load, 40, 5.0, 7)
                             .ttft.Mean();
  EXPECT_LT(t_ideal, t_h);
  EXPECT_LT(t_h, t_kv);
  EXPECT_LT(t_kv, t_rec);
}

TEST(ServingEngineTest, TtftDegradesWithLoad) {
  ServingEngine e = Engine7B(RestoreMethod::kKvOffload);
  const double t_low = e.RunConversations(0.1, 30, 5.0, 9).ttft.Mean();
  ServingEngine e2 = Engine7B(RestoreMethod::kKvOffload);
  const double t_high = e2.RunConversations(1.5, 30, 5.0, 9).ttft.Mean();
  EXPECT_GT(t_high, t_low);
}

TEST(ServingEngineTest, HCacheTbtWithinFourPercentOfIdeal) {
  // §6.1.1: "HCache's TBT is at most 4% higher [than ideal]".
  const double tbt_h = Engine7B(RestoreMethod::kHCache)
                           .RunConversations(0.5, 40, 5.0, 11)
                           .tbt.Mean();
  const double tbt_ideal = Engine7B(RestoreMethod::kIdeal)
                               .RunConversations(0.5, 40, 5.0, 11)
                               .tbt.Mean();
  EXPECT_LT(tbt_h, tbt_ideal * 1.06);
}

TEST(ServingEngineTest, RecomputeTbtWorseThanHCache) {
  const double tbt_rec = Engine7B(RestoreMethod::kRecompute)
                             .RunConversations(0.8, 40, 5.0, 13)
                             .tbt.Mean();
  const double tbt_h = Engine7B(RestoreMethod::kHCache)
                           .RunConversations(0.8, 40, 5.0, 13)
                           .tbt.Mean();
  EXPECT_GT(tbt_rec, tbt_h);
}

TEST(ServingEngineTest, TwoStageSavingAddsNoTbt) {
  ServingOptions two = Opts(RestoreMethod::kHCache);
  two.save_mode = SaveMode::kTwoStage;
  ServingOptions none = Opts(RestoreMethod::kHCache);
  none.save_mode = SaveMode::kNone;
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  ServingEngine e_two(p, cfg, two), e_none(p, cfg, none);
  for (const int64_t bs : {1, 8, 16, 32}) {
    EXPECT_DOUBLE_EQ(e_two.SteadyStateTbt(bs, 512), e_none.SteadyStateTbt(bs, 512));
  }
}

TEST(ServingEngineTest, DirectSavingStallsLargeBatches) {
  // Fig 14: DirectIO matches two-stage at small batch, stalls at larger batch.
  ServingOptions direct = Opts(RestoreMethod::kHCache);
  direct.save_mode = SaveMode::kDirect;
  ServingOptions two = Opts(RestoreMethod::kHCache);
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  ServingEngine e_direct(p, cfg, direct), e_two(p, cfg, two);
  const double small_ratio = e_direct.SteadyStateTbt(2, 512) / e_two.SteadyStateTbt(2, 512);
  const double big_ratio = e_direct.SteadyStateTbt(16, 512) / e_two.SteadyStateTbt(16, 512);
  EXPECT_NEAR(small_ratio, 1.0, 0.02);
  EXPECT_GT(big_ratio, 1.15);
  EXPECT_GT(big_ratio, small_ratio);
}

TEST(ServingEngineTest, GpuCacheHitRatioRisesWithSkew) {
  // Fig 15: hit ratio rises from ~15% (uniform) to ~94% (alpha=2).
  LEvalGenerator gen(21);
  const auto trace = gen.MixedTrace(400);
  const int64_t num_contexts = 60;
  // Cache sized to hold ~15% of the uniform working set.
  int64_t total = 0;
  for (const auto& r : trace) {
    total += r.context_tokens;
  }
  const int64_t cache_tokens = total / 400 * num_contexts * 15 / 100;

  auto run = [&](double alpha) {
    ZipfianContextChooser chooser(num_contexts, alpha, 31);
    std::vector<int64_t> ids;
    ids.reserve(trace.size());
    for (size_t i = 0; i < trace.size(); ++i) {
      ids.push_back(chooser.NextContext());
    }
    ServingEngine e = Engine7B(RestoreMethod::kHCache);
    return e.RunWithGpuCache(trace, ids, cache_tokens);
  };

  const ServingReport uniform = run(0.0);
  const ServingReport skewed = run(2.0);
  EXPECT_LT(uniform.cache_hit_ratio, 0.35);
  EXPECT_GT(skewed.cache_hit_ratio, 0.75);
  // High hit ratios slash TTFT (paper: 3.76-10.03x).
  EXPECT_LT(skewed.ttft.Mean(), uniform.ttft.Mean() / 2.0);
}

TEST(ServingEngineTest, HCacheStillWinsUnderHighSkew) {
  // Fig 15: even at 94% hit ratio HCache remains ~1.15x faster than KV offload.
  LEvalGenerator gen(22);
  const auto trace = gen.MixedTrace(400);
  ZipfianContextChooser chooser(60, 2.0, 33);
  std::vector<int64_t> ids;
  for (size_t i = 0; i < trace.size(); ++i) {
    ids.push_back(chooser.NextContext());
  }
  const int64_t cache_tokens = 200000;
  ServingEngine h = Engine7B(RestoreMethod::kHCache);
  ServingEngine kv = Engine7B(RestoreMethod::kKvOffload);
  const double t_h = h.RunWithGpuCache(trace, ids, cache_tokens).ttft.Mean();
  const double t_kv = kv.RunWithGpuCache(trace, ids, cache_tokens).ttft.Mean();
  EXPECT_GT(t_kv / t_h, 1.05);
}

TEST(ServingEngineTest, LargerPrefillChunkLowersRecomputeTtft) {
  // SplitFuse trade-off: a bigger per-iteration prefill budget finishes history
  // prefills in fewer iterations, cutting recompute-method TTFT at light load.
  ServingOptions small = Opts(RestoreMethod::kRecompute);
  small.prefill_chunk_tokens = 128;
  ServingOptions big = Opts(RestoreMethod::kRecompute);
  big.prefill_chunk_tokens = 2048;
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const double t_small =
      ServingEngine(p, cfg, small).RunConversations(0.1, 30, 5.0, 19).ttft.Mean();
  const double t_big =
      ServingEngine(p, cfg, big).RunConversations(0.1, 30, 5.0, 19).ttft.Mean();
  EXPECT_LT(t_big, t_small);
}

TEST(ServingEngineTest, TtftPercentilesOrdered) {
  ServingEngine e = Engine7B(RestoreMethod::kHCache);
  const ServingReport rep = e.RunConversations(0.3, 60, 5.0, 23);
  ASSERT_GT(rep.ttft.count(), 10u);
  EXPECT_LE(rep.ttft.Percentile(50), rep.ttft.Percentile(99));
  EXPECT_LE(rep.ttft.Percentile(99), rep.ttft.Max());
  EXPECT_GE(rep.ttft.Min(), e.options().request_overhead);
}

TEST(ServingEngineTest, KvCapacityLimitsConcurrency) {
  // Shrinking the pool forces queueing: TTFT rises, completions still conserve.
  ServingOptions tight = Opts(RestoreMethod::kHCache);
  tight.kv_capacity_tokens = 6000;
  tight.max_history_tokens = 4096;
  ServingOptions roomy = Opts(RestoreMethod::kHCache);
  roomy.max_history_tokens = 4096;
  const Platform p = Platform::DefaultTestbed(1, 4);
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const ServingReport r_tight =
      ServingEngine(p, cfg, tight).RunConversations(0.4, 60, 5.0, 29);
  const ServingReport r_roomy =
      ServingEngine(p, cfg, roomy).RunConversations(0.4, 60, 5.0, 29);
  EXPECT_GT(r_tight.ttft.Mean(), r_roomy.ttft.Mean());
  EXPECT_EQ(r_tight.rounds_completed, r_tight.rounds_submitted);
}

TEST(ServingEngineTest, OversizedRoundsDropCleanlyAndReleaseState) {
  // A KV pool far below the trace's history cap: conversations outgrow it mid-flight
  // and their rounds are dropped. The drop must end the session cleanly — no later
  // rounds scheduled, and its stored state released from the backend rather than
  // squatting there for the rest of the run.
  ServingOptions o = Opts(RestoreMethod::kHCache);
  o.kv_capacity_tokens = 2500;
  MemoryBackend backend(64 * 1024);
  o.state_backend = &backend;
  ServingEngine e(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
  const ServingReport rep = e.RunConversations(0.4, 30, 5.0, 42);
  EXPECT_GT(rep.rounds_completed, 0);
  EXPECT_LT(rep.rounds_completed, rep.rounds_submitted);  // some rounds never fit
  EXPECT_EQ(backend.chunks_stored(), 0);
  EXPECT_EQ(backend.bytes_stored(), 0);
}

TEST(ServingEngineTest, HorizonBoundsSimulation) {
  ServingOptions o = Opts(RestoreMethod::kRecompute);
  o.max_sim_seconds = 5.0;
  ServingEngine e(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
  const ServingReport rep = e.RunConversations(5.0, 200, 5.0, 17);
  EXPECT_LE(rep.makespan, 6.0);  // horizon plus at most one iteration
}

}  // namespace
}  // namespace hcache
