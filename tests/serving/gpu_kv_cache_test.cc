#include "src/serving/gpu_kv_cache.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(LruCacheTest, HitAfterInsert) {
  LruContextCache cache(100);
  EXPECT_FALSE(cache.Lookup(1));
  EXPECT_TRUE(cache.Insert(1, 40));
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.5);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruContextCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  cache.Lookup(1);        // 2 becomes LRU
  cache.Insert(3, 40);    // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.used_tokens(), 80);
}

TEST(LruCacheTest, EvictsMultipleForLargeInsert) {
  LruContextCache cache(100);
  cache.Insert(1, 30);
  cache.Insert(2, 30);
  cache.Insert(3, 30);
  cache.Insert(4, 90);  // must evict 1, 2, 3
  EXPECT_EQ(cache.size(), 1);
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_EQ(cache.used_tokens(), 90);
}

TEST(LruCacheTest, OversizedContextRejected) {
  LruContextCache cache(100);
  cache.Insert(1, 50);
  EXPECT_FALSE(cache.Insert(2, 200));
  EXPECT_TRUE(cache.Contains(1));  // rejection does not disturb residents
  EXPECT_EQ(cache.used_tokens(), 50);
}

TEST(LruCacheTest, ReinsertResizes) {
  LruContextCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(1, 70);  // conversation grew
  EXPECT_EQ(cache.used_tokens(), 70);
  EXPECT_EQ(cache.size(), 1);
}

TEST(LruCacheTest, EraseFreesSpace) {
  LruContextCache cache(100);
  cache.Insert(1, 60);
  cache.Erase(1);
  EXPECT_EQ(cache.used_tokens(), 0);
  cache.Erase(99);  // no-op
  EXPECT_TRUE(cache.Insert(2, 100));
}

TEST(LruCacheTest, ZeroCapacityNeverHits) {
  LruContextCache cache(0);
  EXPECT_FALSE(cache.Insert(1, 10));
  EXPECT_FALSE(cache.Lookup(1));
  EXPECT_DOUBLE_EQ(cache.HitRatio(), 0.0);
}

}  // namespace
}  // namespace hcache
