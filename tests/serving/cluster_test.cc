// ClusterEngine: N ServingEngine replicas behind a SessionRouter over one shared
// backend. Covers router policies, cross-replica restoration through the shared tier,
// throughput scaling at equal per-replica hardware, and determinism.
#include "src/serving/cluster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 64 * 1024;

ClusterOptions Opts(int replicas, RouterPolicy policy) {
  ClusterOptions o;
  o.num_replicas = replicas;
  o.router = policy;
  o.serving.method = RestoreMethod::kHCache;
  return o;
}

ClusterReport RunCluster(int replicas, RouterPolicy policy, StorageBackend* shared,
                  double load = 0.4, int64_t sessions = 30, uint64_t seed = 42) {
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(),
                        Opts(replicas, policy), shared);
  return cluster.RunConversations(load, sessions, 5.0, seed);
}

// Live candidate list with consecutive ids 0..n-1 (a fully-up fleet).
std::vector<ReplicaCandidate> FullFleet(int n) {
  std::vector<ReplicaCandidate> live(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    live[static_cast<size_t>(i)].id = i;
  }
  return live;
}

TEST(SessionRouterTest, RoundRobinCycles) {
  auto r = MakeRouter(RouterPolicy::kRoundRobin, 1);
  const std::vector<ReplicaCandidate> live = FullFleet(3);
  RoundTask t;
  EXPECT_EQ(r->Route(t, -1, live), 0);
  EXPECT_EQ(r->Route(t, -1, live), 1);
  EXPECT_EQ(r->Route(t, -1, live), 2);
  EXPECT_EQ(r->Route(t, -1, live), 0);
}

TEST(SessionRouterTest, LeastLoadedPicksArgminTokens) {
  auto r = MakeRouter(RouterPolicy::kLeastLoadedTokens, 1);
  std::vector<ReplicaCandidate> live = FullFleet(3);
  live[0].load.queued_tokens = 500;
  live[1].load.queued_tokens = 100;
  live[2].load.queued_tokens = 900;
  RoundTask t;
  EXPECT_EQ(r->Route(t, -1, live), 1);
  live[1].load.queued_tokens = 501;
  EXPECT_EQ(r->Route(t, -1, live), 0);
}

TEST(SessionRouterTest, PowerOfTwoNeverPicksTheHeavierOfItsPair) {
  auto r = MakeRouter(RouterPolicy::kPowerOfTwo, 7);
  std::vector<ReplicaCandidate> live = FullFleet(4);
  live[0].load.queued_tokens = 0;
  live[1].load.queued_tokens = 1000;
  live[2].load.queued_tokens = 2000;
  live[3].load.queued_tokens = 3000;
  RoundTask t;
  // Replica 3 is the heaviest: with two distinct choices it can never win a pairing.
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(r->Route(t, -1, live), 3);
  }
}

TEST(SessionRouterTest, StickyFollowsHomeUntilSpill) {
  auto r = MakeRouter(RouterPolicy::kStickyWithSpill, 1, /*spill_margin=*/1000);
  std::vector<ReplicaCandidate> live = FullFleet(2);
  RoundTask t;
  live[0].load.queued_tokens = 800;
  live[1].load.queued_tokens = 0;
  EXPECT_EQ(r->Route(t, /*home=*/0, live), 0);  // within margin: stay home
  live[0].load.queued_tokens = 1200;
  EXPECT_EQ(r->Route(t, /*home=*/0, live), 1);  // beyond margin: spill
  EXPECT_EQ(r->Route(t, /*home=*/-1, live), 1);  // first round: least-loaded
}

TEST(SessionRouterTest, StickyReRoutesWhenHomeLeftTheLiveSet) {
  // Elastic fleets shrink: when the home replica is gone (drained/killed), the
  // candidate list no longer contains its id and sticky must pick a survivor — the
  // session's state is in the SHARED tier, so any live replica can restore it.
  auto r = MakeRouter(RouterPolicy::kStickyWithSpill, 1, /*spill_margin=*/1000);
  std::vector<ReplicaCandidate> live(2);
  live[0].id = 1;  // replica 0 is down: live set is {1, 3}
  live[1].id = 3;
  live[0].load.queued_tokens = 700;
  live[1].load.queued_tokens = 200;
  RoundTask t;
  EXPECT_EQ(r->Route(t, /*home=*/0, live), 1);  // home gone: least-loaded survivor
  // Home id 3 sits at candidate POSITION 1 — sticky must match by id, not index.
  EXPECT_EQ(r->Route(t, /*home=*/3, live), 1);
  live[1].load.queued_tokens = 5000;  // home overloaded beyond the margin
  EXPECT_EQ(r->Route(t, /*home=*/3, live), 0);
}

TEST(ClusterReportTest, ReplicaRoundSkewIsOneForDegenerateFleets) {
  // Pin the zero-rounds edge: an empty fleet or a fleet that completed nothing must
  // read as perfectly even (1.0), never NaN/inf from a zero mean.
  ClusterReport empty;
  EXPECT_DOUBLE_EQ(empty.ReplicaRoundSkew(), 1.0);
  ClusterReport idle;
  idle.replicas.resize(3);  // replicas exist, nothing completed anywhere
  EXPECT_DOUBLE_EQ(idle.ReplicaRoundSkew(), 1.0);
  EXPECT_TRUE(std::isfinite(idle.ReplicaRoundSkew()));
}

TEST(ClusterEngineTest, CompletesAllRoundsOnEveryPolicy) {
  for (const RouterPolicy policy :
       {RouterPolicy::kRoundRobin, RouterPolicy::kLeastLoadedTokens,
        RouterPolicy::kPowerOfTwo, RouterPolicy::kStickyWithSpill}) {
    MemoryBackend shared(kChunkBytes);
    const ClusterReport rep = RunCluster(3, policy, &shared);
    EXPECT_EQ(rep.aggregate.rounds_completed, rep.aggregate.rounds_submitted)
        << RouterPolicyName(policy);
    EXPECT_GT(rep.aggregate.rounds_completed, 30) << RouterPolicyName(policy);
    EXPECT_EQ(static_cast<int>(rep.replicas.size()), 3);
    // Sessions delete their state at completion: the shared tier drains.
    EXPECT_EQ(shared.chunks_stored(), 0) << RouterPolicyName(policy);
  }
}

TEST(ClusterEngineTest, SingleReplicaClusterMatchesPlainEngine) {
  // The cluster layer is pure orchestration: a 1-replica cluster must reproduce the
  // plain engine's simulation exactly (same workload seed, same clock arithmetic).
  MemoryBackend shared(kChunkBytes);
  const ClusterReport cluster = RunCluster(1, RouterPolicy::kRoundRobin, &shared);

  ServingOptions o;
  o.method = RestoreMethod::kHCache;
  MemoryBackend solo_backend(kChunkBytes);
  o.state_backend = &solo_backend;
  ServingEngine solo(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
  const ServingReport plain = solo.RunConversations(0.4, 30, 5.0, 42);

  EXPECT_EQ(cluster.aggregate.rounds_completed, plain.rounds_completed);
  EXPECT_DOUBLE_EQ(cluster.aggregate.makespan, plain.makespan);
  EXPECT_DOUBLE_EQ(cluster.aggregate.ttft.Mean(), plain.ttft.Mean());
  EXPECT_DOUBLE_EQ(cluster.aggregate.tbt.Mean(), plain.tbt.Mean());
  EXPECT_EQ(cluster.cross_replica_restores, 0);
}

TEST(ClusterEngineTest, LoadAwareRoutingMovesSessionsAcrossReplicas) {
  // With a load-aware router, consecutive rounds of one session land on different
  // replicas — the restore on the new replica is served by the SHARED tier. This is
  // the pattern a per-engine cache cannot serve at all.
  MemoryBackend shared(kChunkBytes);
  const ClusterReport rep = RunCluster(4, RouterPolicy::kLeastLoadedTokens, &shared, 0.8, 60);
  EXPECT_GT(rep.cross_replica_restores, 0);
  EXPECT_GT(rep.storage.total_reads, 0);
  // Every restoration read resolves against the shared tier regardless of who wrote:
  // a DRAM-only shared backend serves them all.
  EXPECT_EQ(rep.storage.dram_hits, rep.storage.total_reads);
}

TEST(ClusterEngineTest, StickyRoutingPreservesAffinity) {
  MemoryBackend shared_sticky(kChunkBytes);
  MemoryBackend shared_rr(kChunkBytes);
  const ClusterReport sticky =
      RunCluster(4, RouterPolicy::kStickyWithSpill, &shared_sticky, 0.4, 40);
  const ClusterReport rr = RunCluster(4, RouterPolicy::kRoundRobin, &shared_rr, 0.4, 40);
  const auto affinity_share = [](const ClusterReport& r) {
    const int64_t total = r.affinity_restores + r.cross_replica_restores;
    return total > 0 ? static_cast<double>(r.affinity_restores) / total : 0.0;
  };
  // Sticky keeps most restores home; round-robin disperses them by construction.
  EXPECT_GT(affinity_share(sticky), 0.9);
  EXPECT_LT(affinity_share(rr), 0.5);
}

TEST(ClusterEngineTest, MoreReplicasSustainMoreLoad) {
  // Equal per-replica hardware, offered load scaled with the fleet: a 4-replica
  // cluster over the shared tier must sustain >= 3x the completed rounds/sec of one
  // replica (the ISSUE's acceptance bar; queueing effects cost the rest).
  MemoryBackend shared1(kChunkBytes);
  MemoryBackend shared4(kChunkBytes);
  const double per_replica_load = 0.5;
  const ClusterReport one =
      RunCluster(1, RouterPolicy::kLeastLoadedTokens, &shared1, per_replica_load, 40, 7);
  const ClusterReport four =
      RunCluster(4, RouterPolicy::kLeastLoadedTokens, &shared4, 4 * per_replica_load, 160, 7);
  EXPECT_EQ(four.aggregate.rounds_completed, four.aggregate.rounds_submitted);
  EXPECT_GT(four.RoundsPerSecond(), 3.0 * one.RoundsPerSecond());
}

TEST(ClusterEngineTest, NonRestoringMethodsReportZeroRestores) {
  // Restore-locality counters describe actual shared-tier reads: a method with no
  // restore phase (recompute re-prefills history) must report zero, even though
  // sessions still hop replicas and their state is still being saved.
  MemoryBackend shared(kChunkBytes);
  ClusterOptions o;
  o.num_replicas = 4;
  o.router = RouterPolicy::kLeastLoadedTokens;
  o.serving.method = RestoreMethod::kRecompute;
  ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                        &shared);
  const ClusterReport rep = cluster.RunConversations(0.8, 40, 5.0, 42);
  EXPECT_GT(rep.aggregate.rounds_completed, 0);
  EXPECT_EQ(rep.cross_replica_restores, 0);
  EXPECT_EQ(rep.affinity_restores, 0);
  EXPECT_EQ(rep.storage.total_reads, 0);   // recompute never reads state back
  EXPECT_GT(rep.storage.total_writes, 0);  // but completed rounds still save it
}

TEST(ClusterEngineTest, ReplicaSkewStaysBounded) {
  // Round-robin balances round COUNTS by construction (skew ~1); load-aware policies
  // balance token demand instead, so their round-count skew is looser but must stay
  // far from the all-on-one-replica pathology (skew = num_replicas).
  MemoryBackend shared_ll(kChunkBytes);
  MemoryBackend shared_rr(kChunkBytes);
  const ClusterReport ll =
      RunCluster(4, RouterPolicy::kLeastLoadedTokens, &shared_ll, 1.2, 80, 13);
  const ClusterReport rr = RunCluster(4, RouterPolicy::kRoundRobin, &shared_rr, 1.2, 80, 13);
  EXPECT_GE(rr.ReplicaRoundSkew(), 1.0);
  EXPECT_LE(rr.ReplicaRoundSkew(), 1.1);
  EXPECT_GE(ll.ReplicaRoundSkew(), 1.0);
  EXPECT_LE(ll.ReplicaRoundSkew(), 2.0);
}

TEST(ClusterEngineTest, SharedTieredBackendSeesFleetWideLocality) {
  // DRAM budget far below the fleet's live state: evictions and cold hits appear, and
  // the byte-granular tier counters conserve (hits sum to read bytes). Synchronous
  // write-back pins the dram/cold split (async rescues would blur it; the async tier
  // is exercised by SharedAsyncTierWithParallelAdvance below).
  MemoryBackend cold(kChunkBytes);
  TieredOptions topts;
  topts.writeback = TieredOptions::Writeback::kSync;
  TieredBackend shared(&cold, 2 * kChunkBytes, topts);
  const ClusterReport rep = RunCluster(3, RouterPolicy::kLeastLoadedTokens, &shared, 0.8, 50);
  EXPECT_GT(rep.storage.evicted_contexts, 0);
  EXPECT_GT(rep.storage.cold_hits, 0);
  EXPECT_EQ(rep.storage.dram_hits + rep.storage.cold_hits, rep.storage.total_reads);
  EXPECT_EQ(rep.storage.dram_hit_bytes + rep.storage.cold_hit_bytes,
            rep.storage.ReadBytes());
  EXPECT_GT(rep.SharedDramHitByteRatio(), 0.0);
  EXPECT_LT(rep.SharedDramHitByteRatio(), 1.0);
}

TEST(ClusterEngineTest, ParallelAdvanceIsByteIdenticalToSerial) {
  // parallel_advance steps the replicas concurrently within each global-clock
  // iteration; replica simulation state is disjoint and completions merge in index
  // order, so every simulated quantity must match the serial schedule exactly — the
  // only thing allowed to differ is which tier of the shared backend answered a
  // read (schedule-dependent under the async drainer), and even that must conserve.
  auto run = [](bool parallel) {
    struct Result {
      ClusterReport rep;
      StorageStats storage;
    };
    MemoryBackend cold(kChunkBytes);
    TieredOptions topts;
    topts.num_shards = 4;
    topts.writeback = TieredOptions::Writeback::kAsync;
    TieredBackend shared(&cold, 4 * kChunkBytes, topts);
    ClusterOptions o = Opts(4, RouterPolicy::kPowerOfTwo);
    o.parallel_advance = parallel;
    ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                          &shared);
    Result r{cluster.RunConversations(0.8, 60, 5.0, 777), shared.Stats()};
    return r;
  };
  const auto serial = run(false);
  const auto parallel = run(true);
  EXPECT_EQ(serial.rep.aggregate.rounds_completed,
            parallel.rep.aggregate.rounds_completed);
  EXPECT_DOUBLE_EQ(serial.rep.aggregate.makespan, parallel.rep.aggregate.makespan);
  EXPECT_EQ(serial.rep.cross_replica_restores, parallel.rep.cross_replica_restores);
  EXPECT_EQ(serial.rep.affinity_restores, parallel.rep.affinity_restores);
  ASSERT_EQ(serial.rep.aggregate.ttft.count(), parallel.rep.aggregate.ttft.count());
  EXPECT_EQ(serial.rep.aggregate.ttft.samples(), parallel.rep.aggregate.ttft.samples());
  EXPECT_EQ(serial.rep.aggregate.tbt.samples(), parallel.rep.aggregate.tbt.samples());
  for (const auto* r : {&serial, &parallel}) {
    // The shared async tier conserves regardless of the advance schedule.
    EXPECT_EQ(r->storage.dram_hits + r->storage.cold_hits, r->storage.total_reads);
    EXPECT_EQ(r->storage.drain_pending_bytes, 0);
    EXPECT_EQ(r->storage.writeback_failures, 0);
  }
  // The same total state flows through the tier on both schedules.
  EXPECT_EQ(serial.storage.total_writes, parallel.storage.total_writes);
  EXPECT_EQ(serial.storage.total_reads, parallel.storage.total_reads);
}

TEST(ClusterEngineTest, DeterministicAcrossRepeatedRuns) {
  for (const RouterPolicy policy :
       {RouterPolicy::kPowerOfTwo, RouterPolicy::kStickyWithSpill}) {
    MemoryBackend a_backend(kChunkBytes);
    MemoryBackend b_backend(kChunkBytes);
    const ClusterReport a = RunCluster(3, policy, &a_backend, 0.6, 40, 99);
    const ClusterReport b = RunCluster(3, policy, &b_backend, 0.6, 40, 99);
    EXPECT_EQ(a.aggregate.rounds_completed, b.aggregate.rounds_completed);
    EXPECT_DOUBLE_EQ(a.aggregate.makespan, b.aggregate.makespan);
    EXPECT_EQ(a.cross_replica_restores, b.cross_replica_restores);
    ASSERT_EQ(a.aggregate.ttft.count(), b.aggregate.ttft.count());
    EXPECT_EQ(a.aggregate.ttft.samples(), b.aggregate.ttft.samples());
    EXPECT_EQ(a.aggregate.tbt.samples(), b.aggregate.tbt.samples());
  }
}

}  // namespace
}  // namespace hcache
