// ServingEngine x StorageBackend integration: the same conversation workload runs
// against file, DRAM, and tiered backends selected through ServingOptions, and the
// report surfaces what the storage layer saw (per-tier hit ratios, write-back volume).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>

#include "src/serving/engine.h"
#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 64 * 1024;

class EngineBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_engine_backend_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::unique_ptr<FileBackend> MakeFile() {
    return std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string(), (base_ / "d1").string()},
        kChunkBytes);
  }

  static ServingReport Run(StorageBackend* backend, uint64_t seed = 42) {
    ServingOptions o;
    o.method = RestoreMethod::kHCache;
    o.state_backend = backend;
    ServingEngine engine(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
    return engine.RunConversations(0.3, 24, 5.0, seed);
  }

  std::filesystem::path base_;
};

TEST_F(EngineBackendTest, RunsAgainstAllThreeBackends) {
  auto file = MakeFile();
  MemoryBackend memory(kChunkBytes);
  auto tiered_cold = MakeFile();
  TieredBackend tiered(tiered_cold.get(), 4 * kChunkBytes);

  const ServingReport r_file = Run(file.get());
  const ServingReport r_mem = Run(&memory);
  const ServingReport r_tier = Run(&tiered);

  for (const ServingReport* r : {&r_file, &r_mem, &r_tier}) {
    EXPECT_EQ(r->rounds_completed, r->rounds_submitted);
    EXPECT_GT(r->rounds_completed, 24);  // multi-round conversations
    EXPECT_GT(r->storage.total_writes, 0);
    EXPECT_GT(r->storage.total_reads, 0);
  }
  // The backend is an accounting plane: identical workload and timing model must give
  // identical simulated results regardless of where the bytes landed.
  EXPECT_EQ(r_file.rounds_completed, r_mem.rounds_completed);
  EXPECT_EQ(r_mem.rounds_completed, r_tier.rounds_completed);
  EXPECT_DOUBLE_EQ(r_file.makespan, r_mem.makespan);
  EXPECT_DOUBLE_EQ(r_mem.makespan, r_tier.makespan);

  // Tier attribution: file reads are all cold, memory reads all DRAM — in chunks AND
  // in (encoded) bytes, the quantity capacity budgeting must use.
  EXPECT_EQ(r_file.storage.dram_hits, 0);
  EXPECT_EQ(r_file.storage.cold_hits, r_file.storage.total_reads);
  EXPECT_EQ(r_file.storage.dram_hit_bytes, 0);
  EXPECT_GT(r_file.storage.cold_hit_bytes, 0);
  EXPECT_EQ(r_mem.storage.cold_hits, 0);
  EXPECT_EQ(r_mem.storage.dram_hits, r_mem.storage.total_reads);
  EXPECT_EQ(r_mem.storage.cold_hit_bytes, 0);
  EXPECT_GT(r_mem.storage.dram_hit_bytes, 0);
  EXPECT_DOUBLE_EQ(r_mem.storage.DramHitRatio(), 1.0);
  EXPECT_DOUBLE_EQ(r_mem.storage.DramHitByteRatio(), 1.0);

  // The default codec is FP16: the backend stores half the FP32-equivalent bytes, and
  // the report carries both sides of that ratio.
  for (const ServingReport* r : {&r_file, &r_mem, &r_tier}) {
    EXPECT_EQ(r->state_codec, ChunkCodec::kFp16);
    EXPECT_GT(r->state_encoded_bytes, 0);
    EXPECT_DOUBLE_EQ(r->StateCompressionRatio(), 2.0);
  }
}

TEST_F(EngineBackendTest, CodecScalesStoredBytes) {
  // Same workload, three codecs: encoded footprint (and therefore tiered-cache
  // pressure) tracks the codec, while the logical state is identical.
  int64_t encoded[3] = {0, 0, 0};
  int i = 0;
  for (const ChunkCodec codec :
       {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    MemoryBackend memory(kChunkBytes);
    ServingOptions o;
    o.method = RestoreMethod::kHCache;
    o.state_backend = &memory;
    o.state_codec = codec;
    ServingEngine engine(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
    const ServingReport r = engine.RunConversations(0.3, 24, 5.0, 42);
    EXPECT_EQ(r.rounds_completed, r.rounds_submitted);
    encoded[i++] = r.state_encoded_bytes;
  }
  EXPECT_EQ(encoded[0], 2 * encoded[1]);  // fp32 = 2x fp16
  EXPECT_LT(encoded[2], encoded[1]);      // int8 below fp16 (scale amortized at hidden_dim)
}

TEST_F(EngineBackendTest, SessionsDeleteTheirStateAtCompletion) {
  MemoryBackend memory(kChunkBytes);
  const ServingReport r = Run(&memory);
  EXPECT_EQ(r.rounds_completed, r.rounds_submitted);
  // Every session finished, so every context's descriptor chunks were dropped.
  EXPECT_EQ(memory.chunks_stored(), 0);
  EXPECT_EQ(memory.bytes_stored(), 0);
}

TEST_F(EngineBackendTest, TieredBackendReportsBothTiersUnderPressure) {
  // A DRAM budget far below the live working set forces evictions and write-backs;
  // restoration reads then split across tiers. Synchronous write-back pins the
  // tier attribution (with the async drainer, a read can legitimately rescue an
  // evicted chunk from the drain queue, which is a DRAM hit — the async split is
  // covered by tests/storage/tiered_async_test.cc).
  auto cold = MakeFile();
  TieredOptions opts;
  opts.writeback = TieredOptions::Writeback::kSync;
  TieredBackend tiered(cold.get(), kChunkBytes / 2, opts);
  const ServingReport r = Run(&tiered);
  EXPECT_EQ(r.rounds_completed, r.rounds_submitted);
  EXPECT_GT(r.storage.evicted_contexts, 0);
  EXPECT_GT(r.storage.writeback_chunks, 0);
  EXPECT_GT(r.storage.cold_hits, 0);
  EXPECT_EQ(r.storage.dram_hits + r.storage.cold_hits, r.storage.total_reads);
  const double ratio = r.storage.DramHitRatio();
  EXPECT_GE(ratio, 0.0);
  EXPECT_LT(ratio, 1.0);
}

TEST_F(EngineBackendTest, AmpleDramBudgetServesReadsFromDram) {
  auto cold = MakeFile();
  TieredBackend tiered(cold.get(), int64_t{1} << 30);
  const ServingReport r = Run(&tiered);
  EXPECT_EQ(r.storage.evicted_contexts, 0);
  EXPECT_EQ(r.storage.cold_hits, 0);
  EXPECT_DOUBLE_EQ(r.storage.DramHitRatio(), 1.0);
  // Nothing ever spilled: the cold tier is untouched.
  EXPECT_EQ(cold->total_writes(), 0);
}

TEST_F(EngineBackendTest, DamagedStateFallsBackToRecomputeNotDrop) {
  // The serving-level durability contract: state that comes back corrupt OR missing
  // at restore time costs recompute latency, never a wrong answer and never a
  // dropped round. Driven through the stepped interface so damage can be injected
  // between a session's rounds.
  MemoryBackend memory(kChunkBytes);
  ServingOptions o;
  o.method = RestoreMethod::kHCache;
  o.state_backend = &memory;
  ServingEngine engine(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
  engine.StartExternal();
  std::vector<RoundCompletion> done;

  auto run_round = [&](int64_t session, int64_t history, double arrival,
                       bool last) -> RoundCompletion {
    engine.Submit(RoundTask{session, history, /*input=*/128, /*output=*/32, arrival, last});
    done.clear();
    // A generous-but-bounded horizon: Advance parks the idle clock AT the horizon,
    // so it must stay well below max_sim_seconds across all four rounds.
    engine.Advance(arrival + 60.0, &done);
    EXPECT_EQ(done.size(), 1u);
    if (done.empty()) {
      return RoundCompletion{};
    }
    EXPECT_FALSE(done[0].dropped) << "session " << session;
    return done[0];
  };

  // Two sessions complete their opening rounds and persist state.
  const RoundCompletion s7 = run_round(7, 0, 0.0, false);
  const RoundCompletion s8 = run_round(8, 0, s7.finish_time + 0.5, false);
  ASSERT_TRUE(memory.HasChunk({7, 0, 0}));
  ASSERT_TRUE(memory.HasChunk({8, 0, 0}));

  // Session 7's state rots in place. The descriptor blobs are opaque (no format
  // claim), so a plain bit flip would pass unverified — overwrite with a SEALED
  // chunk whose payload is then flipped, which the verified read path must flag.
  std::vector<uint8_t> poison(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, 4, 8)), 0x5A);
  WriteChunkHeader(ChunkCodec::kFp32, 4, 8, poison.data());
  poison[sizeof(ChunkHeader) + 3] ^= 0x01;
  ASSERT_TRUE(memory.WriteChunk({7, 0, 0}, poison.data(),
                                static_cast<int64_t>(poison.size())));
  // Session 8's state is simply gone (a cold tier that lost the file).
  ASSERT_TRUE(memory.DeleteChunk({8, 0, 0}));

  const RoundCompletion s7b =
      run_round(7, s7.new_tokens, s8.finish_time + 0.5, true);
  const RoundCompletion s8b =
      run_round(8, s8.new_tokens, s7b.finish_time + 0.5, true);
  EXPECT_FALSE(s7b.dropped);
  EXPECT_FALSE(s8b.dropped);
  EXPECT_EQ(s7b.new_tokens, 128 + 32);
  EXPECT_EQ(s8b.new_tokens, 128 + 32);

  const ServingReport r = engine.FinishExternal();
  EXPECT_EQ(r.rounds_completed, 4);
  EXPECT_EQ(r.restore_fallbacks, 2);  // one corrupt, one missing
  EXPECT_GE(memory.Stats().crc_failures, 1);
}

TEST_F(EngineBackendTest, IntactStateNeverTriggersFallback) {
  // Control for the damage test: the identical conversation workload over an intact
  // backend reports zero fallbacks, pinning the false-positive rate of the verified
  // restore path at nil.
  MemoryBackend memory(kChunkBytes);
  const ServingReport r = Run(&memory);
  EXPECT_EQ(r.rounds_completed, r.rounds_submitted);
  EXPECT_EQ(r.restore_fallbacks, 0);
  EXPECT_EQ(r.storage.crc_failures, 0);
}

}  // namespace
}  // namespace hcache
