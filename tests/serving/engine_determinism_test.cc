// Determinism sweep for the serving plane: RunConversations with a fixed seed must
// yield byte-identical ServingReport histograms across repeated runs and across
// HCACHE_NUM_THREADS settings (the shared pool is resized in-process to {1, 4,
// hardware}). The simulator is the repo's measurement instrument — any run-to-run or
// thread-count wobble would poison every A/B comparison the benches make.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/serving/cluster.h"
#include "src/serving/engine.h"
#include "src/storage/memory_backend.h"

namespace hcache {
namespace {

bool BytesEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

ServingReport RunOnce(RestoreMethod method, uint64_t seed, StorageBackend* backend) {
  ServingOptions o;
  o.method = method;
  o.state_backend = backend;
  ServingEngine e(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o);
  return e.RunConversations(0.5, 30, 5.0, seed);
}

void ExpectReportsIdentical(const ServingReport& a, const ServingReport& b) {
  EXPECT_EQ(a.rounds_completed, b.rounds_completed);
  EXPECT_EQ(a.rounds_submitted, b.rounds_submitted);
  EXPECT_EQ(a.makespan, b.makespan);  // exact: same arithmetic, same order
  EXPECT_EQ(a.state_encoded_bytes, b.state_encoded_bytes);
  ASSERT_EQ(a.ttft.count(), b.ttft.count());
  ASSERT_EQ(a.tbt.count(), b.tbt.count());
  EXPECT_TRUE(BytesEqual(a.ttft.samples(), b.ttft.samples()));
  EXPECT_TRUE(BytesEqual(a.tbt.samples(), b.tbt.samples()));
}

TEST(EngineDeterminismTest, RepeatedRunsAreByteIdentical) {
  for (const RestoreMethod method :
       {RestoreMethod::kHCache, RestoreMethod::kKvOffload, RestoreMethod::kRecompute}) {
    MemoryBackend b1(64 * 1024), b2(64 * 1024);
    const ServingReport a = RunOnce(method, 97, &b1);
    const ServingReport b = RunOnce(method, 97, &b2);
    ExpectReportsIdentical(a, b);
    // Storage counters are part of the deterministic surface too.
    EXPECT_EQ(a.storage.total_writes, b.storage.total_writes);
    EXPECT_EQ(a.storage.total_reads, b.storage.total_reads);
    EXPECT_EQ(a.storage.dram_hit_bytes, b.storage.dram_hit_bytes);
  }
}

TEST(EngineDeterminismTest, ByteIdenticalAcrossThreadPoolSizes) {
  // HCACHE_NUM_THREADS ∈ {1, 4, hardware_concurrency}: the report must not depend on
  // how many workers the shared compute pool holds.
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  MemoryBackend base_backend(64 * 1024);
  ThreadPool::ResizeShared(1);
  const ServingReport base = RunOnce(RestoreMethod::kHCache, 1234, &base_backend);
  for (const size_t threads : {size_t{4}, hw}) {
    ThreadPool::ResizeShared(threads);
    MemoryBackend backend(64 * 1024);
    const ServingReport r = RunOnce(RestoreMethod::kHCache, 1234, &backend);
    ExpectReportsIdentical(base, r);
  }
  ThreadPool::ResizeShared(hw);  // restore the default for other tests
}

TEST(EngineDeterminismTest, ClusterRunsAreByteIdenticalAcrossThreadPoolSizes) {
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  auto run = [] {
    MemoryBackend shared(64 * 1024);
    ClusterOptions o;
    o.num_replicas = 3;
    o.router = RouterPolicy::kPowerOfTwo;
    o.serving.method = RestoreMethod::kHCache;
    ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                          &shared);
    return cluster.RunConversations(0.8, 40, 5.0, 4242);
  };
  ThreadPool::ResizeShared(1);
  const ClusterReport base = run();
  for (const size_t threads : {size_t{4}, hw}) {
    ThreadPool::ResizeShared(threads);
    const ClusterReport r = run();
    ExpectReportsIdentical(base.aggregate, r.aggregate);
    EXPECT_EQ(base.cross_replica_restores, r.cross_replica_restores);
    EXPECT_EQ(base.affinity_restores, r.affinity_restores);
    for (size_t i = 0; i < base.replicas.size(); ++i) {
      ExpectReportsIdentical(base.replicas[i], r.replicas[i]);
    }
  }
  ThreadPool::ResizeShared(hw);
}

TEST(EngineDeterminismTest, ElasticRunsAreByteIdenticalAcrossThreadPoolSizes) {
  // The elastic plane joins the deterministic surface: a run with diurnal arrivals,
  // an active autoscaler, a scripted mid-run kill, and parallel replica stepping must
  // replay byte-identically whatever the shared pool holds. Scale events change which
  // replicas exist turn to turn, so any routing or merge-order dependence on thread
  // interleaving would show up here first.
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  auto run = [] {
    MemoryBackend shared(64 * 1024);
    ClusterOptions o;
    o.num_replicas = 4;
    o.initial_replicas = 2;
    o.router = RouterPolicy::kStickyWithSpill;
    o.serving.method = RestoreMethod::kHCache;
    o.parallel_advance = true;
    o.autoscaler.policy = AutoscalePolicy::kTargetUtilization;
    o.autoscaler.min_replicas = 1;
    o.autoscaler.evaluate_every_s = 10.0;
    o.arrivals.kind = ArrivalSpec::Kind::kDiurnal;
    o.arrivals.diurnal.period_s = 120.0;
    o.arrivals.diurnal.amplitude = 0.6;
    o.events.push_back(FleetEvent{/*time=*/25.0, FleetEvent::Kind::kKill, /*replica=*/-1});
    ClusterEngine cluster(Platform::DefaultTestbed(1, 4), ModelConfig::Llama2_7B(), o,
                          &shared);
    return cluster.RunConversations(0.8, 50, 5.0, 777);
  };
  ThreadPool::ResizeShared(1);
  const ClusterReport base = run();
  EXPECT_EQ(base.kills, 1);
  EXPECT_EQ(base.sessions_completed + base.sessions_dropped, 50);
  for (const size_t threads : {size_t{4}, hw}) {
    ThreadPool::ResizeShared(threads);
    const ClusterReport r = run();
    ExpectReportsIdentical(base.aggregate, r.aggregate);
    EXPECT_EQ(base.migrated_rounds, r.migrated_rounds);
    EXPECT_EQ(base.scale_ups, r.scale_ups);
    EXPECT_EQ(base.scale_downs, r.scale_downs);
    EXPECT_EQ(base.replica_seconds, r.replica_seconds);  // exact: same event order
    EXPECT_EQ(base.cross_replica_restores, r.cross_replica_restores);
    ASSERT_EQ(base.up_timeline.size(), r.up_timeline.size());
    for (size_t i = 0; i < base.up_timeline.size(); ++i) {
      EXPECT_EQ(base.up_timeline[i].time, r.up_timeline[i].time);
      EXPECT_EQ(base.up_timeline[i].up, r.up_timeline[i].up);
    }
    for (size_t i = 0; i < base.replicas.size(); ++i) {
      ExpectReportsIdentical(base.replicas[i], r.replicas[i]);
    }
  }
  ThreadPool::ResizeShared(hw);
}

TEST(EngineDeterminismTest, DifferentSeedsProduceDifferentTraces) {
  // Sanity on the sweep itself: the equality assertions above would pass trivially if
  // the workload ignored its seed.
  MemoryBackend b1(64 * 1024), b2(64 * 1024);
  const ServingReport a = RunOnce(RestoreMethod::kHCache, 1, &b1);
  const ServingReport b = RunOnce(RestoreMethod::kHCache, 2, &b2);
  EXPECT_FALSE(BytesEqual(a.ttft.samples(), b.ttft.samples()));
}

}  // namespace
}  // namespace hcache
