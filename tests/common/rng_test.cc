#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace hcache {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBoundedStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    counts[rng.NextBounded(8)]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // each bucket ~1000; wildly skewed would indicate bias
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(9);
  const double lambda = 4.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(lambda);
  }
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextNormal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, PoissonMean) {
  Rng rng(17);
  for (const double mean : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += parent.Next() == child.Next();
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfianTest, AlphaZeroIsUniform) {
  Rng rng(31);
  ZipfianGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(ZipfianTest, HighAlphaConcentratesOnHead) {
  Rng rng(37);
  ZipfianGenerator zipf(1000, 1.8);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    head += zipf.Next(rng) < 10;
  }
  // With alpha=1.8 the top-10 items dominate.
  EXPECT_GT(head, n * 0.8);
}

TEST(ZipfianTest, RanksWithinRange) {
  Rng rng(41);
  for (const double alpha : {0.0, 0.8, 1.0, 1.4, 2.0}) {
    ZipfianGenerator zipf(57, alpha);
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(zipf.Next(rng), 57u);
    }
  }
}

TEST(ZipfianTest, MonotonicPopularity) {
  Rng rng(43);
  ZipfianGenerator zipf(20, 1.2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // Rank 0 must be clearly more popular than rank 5, which beats rank 15.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[15]);
}

TEST(EmpiricalCdfTest, QuantileInterpolates) {
  EmpiricalCdfSampler cdf({{0.0, 0.1}, {10.0, 0.5}, {100.0, 1.0}});
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.05), 0.0);   // below first knot clamps
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.1), 0.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.3), 5.0);    // midway between knots 1 and 2
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
}

TEST(EmpiricalCdfTest, SampleRespectsMedian) {
  EmpiricalCdfSampler cdf({{0.0, 0.01}, {2500.0, 0.5}, {16000.0, 1.0}});
  Rng rng(47);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    below += cdf.Sample(rng) <= 2500.0;
  }
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.03);
}

}  // namespace
}  // namespace hcache
