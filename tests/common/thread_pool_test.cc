#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace hcache {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DrainWaitsForSlowTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, DrainOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, MultipleDrainCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Drain: destructor must still run every queued task before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 25; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace hcache
