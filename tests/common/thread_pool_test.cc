#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hcache {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DrainWaitsForSlowTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      done.fetch_add(1);
    });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 4);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, DrainOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Drain();
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, MultipleDrainCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Drain();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Drain: destructor must still run every queued task before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Odd range and grain so the last chunk is ragged.
  constexpr int64_t kBegin = 3, kEnd = 1003, kGrain = 7;
  std::vector<std::atomic<int>> hits(kEnd);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor(kBegin, kEnd, kGrain, [&](int64_t lo, int64_t hi) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi - lo, kGrain);
    // Chunk boundaries are grain-aligned from `begin`.
    EXPECT_EQ((lo - kBegin) % kGrain, 0);
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<size_t>(i)].fetch_add(1);
    }
  });
  for (int64_t i = 0; i < kEnd; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), i >= kBegin ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(9, 3, 4, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeRunsInlineOnce) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 14, 100, [&](int64_t lo, int64_t hi) {
    calls.fetch_add(1);
    EXPECT_EQ(lo, 10);
    EXPECT_EQ(hi, 14);
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelForTest, ExceptionPropagatesWithoutDeadlockingDrain) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [&](int64_t lo, int64_t) {
                                  ran.fetch_add(1);
                                  if (lo == 17) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 64);  // every subrange still executed exactly once
  // The pool must remain fully usable: Submit + Drain cannot deadlock on the tasks
  // that raced with the failing loop.
  std::atomic<int> after{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&after] { after.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(after.load(), 10);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ParallelForTest, NestedOnSamePoolCompletes) {
  ThreadPool pool(2);
  // A worker running an outer subrange starts an inner loop on the same pool; caller
  // participation guarantees progress even with every worker busy.
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 4, 1, [&](int64_t, int64_t) {
    pool.ParallelFor(0, 8, 1, [&](int64_t lo, int64_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo));
    });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ParallelForTest, SharedPoolResizes) {
  ThreadPool::ResizeShared(3);
  EXPECT_EQ(ThreadPool::Shared().num_threads(), 3u);
  std::atomic<int> count{0};
  ParallelFor(0, 100, 10, [&](int64_t lo, int64_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 100);
  ThreadPool::ResizeShared(2);
  EXPECT_EQ(ThreadPool::Shared().num_threads(), 2u);
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 25; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  pool.Drain();
  EXPECT_EQ(counter.load(), 100);
}

}  // namespace
}  // namespace hcache
