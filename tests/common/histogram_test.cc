#include "src/common/histogram.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Sum(), 5050.0);
}

TEST(HistogramTest, PercentilesExact) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_NEAR(h.Median(), 50.5, 1e-9);
  EXPECT_NEAR(h.P99(), 99.01, 1e-9);
}

TEST(HistogramTest, PercentileAfterLateAdd) {
  Histogram h;
  h.Add(10.0);
  h.Add(20.0);
  EXPECT_DOUBLE_EQ(h.Median(), 15.0);
  h.Add(0.0);  // invalidates sort cache
  EXPECT_DOUBLE_EQ(h.Median(), 10.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(h.Stddev(), 0.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  b.Add(4.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.Max(), 4.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
  Histogram empty;
  EXPECT_EQ(empty.Summary(), "n=0");
}

TEST(RunningStatTest, MatchesClosedForm) {
  RunningStat s;
  for (int i = 1; i <= 9; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_EQ(s.count(), 9u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 7.5);  // sample variance of 1..9
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 0.0);
}

}  // namespace
}  // namespace hcache
