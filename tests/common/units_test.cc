#include "src/common/units.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
  EXPECT_DOUBLE_EQ(kGB, 1e9);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(210 * kKiB), "210.0 KiB");
  EXPECT_EQ(FormatBytes(3 * kMiB / 2), "1.50 MiB");
  EXPECT_EQ(FormatBytes(2 * kGiB), "2.00 GiB");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(250e-6), "250.0 us");
  EXPECT_EQ(FormatSeconds(1.93e-3), "1.93 ms");
  EXPECT_EQ(FormatSeconds(3.2), "3.20 s");
}

}  // namespace
}  // namespace hcache
