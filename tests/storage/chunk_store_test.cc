#include "src/storage/chunk_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

namespace hcache {
namespace {

class ChunkStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    dirs_ = {base_ / "dev0", base_ / "dev1", base_ / "dev2"};
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<std::string> DirStrings() const {
    return {dirs_[0].string(), dirs_[1].string(), dirs_[2].string()};
  }

  std::filesystem::path base_;
  std::vector<std::filesystem::path> dirs_;
};

std::vector<char> Payload(int64_t size, char fill) { return std::vector<char>(size, fill); }

TEST_F(ChunkStoreTest, WriteReadRoundTrip) {
  ChunkStore store(DirStrings(), 4096);
  const auto data = Payload(1000, 'x');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({1, 0, 0}, buf.data(), 4096), 1000);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), 1000), 0);
}

TEST_F(ChunkStoreTest, MissingChunkReturnsMinusOne) {
  ChunkStore store(DirStrings(), 4096);
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({9, 9, 9}, buf.data(), 4096), -1);
  EXPECT_FALSE(store.HasChunk({9, 9, 9}));
  EXPECT_EQ(store.ChunkSize({9, 9, 9}), -1);
}

TEST_F(ChunkStoreTest, SmallBufferRejected) {
  ChunkStore store(DirStrings(), 4096);
  const auto data = Payload(1000, 'y');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(10);
  EXPECT_EQ(store.ReadChunk({1, 0, 0}, buf.data(), 10), -1);
}

TEST_F(ChunkStoreTest, OverwriteReplacesContent) {
  ChunkStore store(DirStrings(), 4096);
  const auto a = Payload(100, 'a');
  const auto b = Payload(50, 'b');
  ASSERT_TRUE(store.WriteChunk({1, 2, 3}, a.data(), 100));
  ASSERT_TRUE(store.WriteChunk({1, 2, 3}, b.data(), 50));
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({1, 2, 3}, buf.data(), 4096), 50);
  EXPECT_EQ(buf[0], 'b');
  EXPECT_EQ(store.chunks_stored(), 1);
}

TEST_F(ChunkStoreTest, RoundRobinStriping) {
  ChunkStore store(DirStrings(), 4096);
  EXPECT_EQ(store.DeviceOf({1, 0, 0}), 0);
  EXPECT_EQ(store.DeviceOf({1, 0, 1}), 1);
  EXPECT_EQ(store.DeviceOf({1, 0, 2}), 2);
  EXPECT_EQ(store.DeviceOf({1, 0, 3}), 0);
  // Consecutive chunks of one layer land on different devices (bandwidth aggregation).
  const auto d = Payload(10, 'd');
  for (int64_t c = 0; c < 6; ++c) {
    ASSERT_TRUE(store.WriteChunk({7, 0, c}, d.data(), 10));
  }
  for (int dev = 0; dev < 3; ++dev) {
    int count = 0;
    for (const auto& e : std::filesystem::directory_iterator(dirs_[dev])) {
      (void)e;
      ++count;
    }
    EXPECT_EQ(count, 2) << "device " << dev;
  }
}

TEST_F(ChunkStoreTest, DeleteContextRemovesOnlyThatContext) {
  ChunkStore store(DirStrings(), 4096);
  const auto d = Payload(10, 'd');
  for (int64_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(store.WriteChunk({1, 0, c}, d.data(), 10));
    ASSERT_TRUE(store.WriteChunk({2, 0, c}, d.data(), 10));
  }
  store.DeleteContext(1);
  EXPECT_FALSE(store.HasChunk({1, 0, 0}));
  EXPECT_TRUE(store.HasChunk({2, 0, 3}));
  EXPECT_EQ(store.chunks_stored(), 4);
}

TEST_F(ChunkStoreTest, StatsTrackWritesAndBytes) {
  ChunkStore store(DirStrings(), 4096);
  const auto d = Payload(100, 'd');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, d.data(), 100));
  ASSERT_TRUE(store.WriteChunk({1, 0, 1}, d.data(), 60));
  EXPECT_EQ(store.total_writes(), 2);
  EXPECT_EQ(store.bytes_stored(), 160);
  std::vector<char> buf(4096);
  store.ReadChunk({1, 0, 0}, buf.data(), 4096);
  EXPECT_EQ(store.total_reads(), 1);
}

TEST_F(ChunkStoreTest, ConcurrentWritersOnDistinctChunks) {
  ChunkStore store(DirStrings(), 4096);
  constexpr int kThreads = 4;
  constexpr int kChunksEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failures, t] {
      const auto d = Payload(200, static_cast<char>('A' + t));
      for (int c = 0; c < kChunksEach; ++c) {
        if (!store.WriteChunk({t, 0, c}, d.data(), 200)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(store.chunks_stored(), kThreads * kChunksEach);
  std::vector<char> buf(4096);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(store.ReadChunk({t, 0, kChunksEach - 1}, buf.data(), 4096), 200);
    EXPECT_EQ(buf[0], static_cast<char>('A' + t));
  }
}

}  // namespace
}  // namespace hcache
