// Bit-exactness matrix for the SIMD codec tiers: every codec x every ISA path the
// machine can execute x aligned/unaligned/ragged-tail lengths must produce bytes
// identical to the scalar reference — including the column-range decodes the KV
// read path uses to de-interleave [K | V] rows. This is the contract that keeps
// restored state bit-stable across heterogeneous replicas (codec_simd.h).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/codec_simd.h"

namespace hcache {
namespace {

float FloatOfBits(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Every tier this machine can actually execute (always includes kScalar).
std::vector<SimdTier> RunnableTiers() {
  std::vector<SimdTier> tiers;
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    tiers.push_back(static_cast<SimdTier>(t));
  }
  return tiers;
}

// Restores the pre-test active tier even when an assertion fails mid-loop.
class CodecMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_tier_ = ActiveSimdTier(); }
  void TearDown() override { ForceSimdTier(entry_tier_); }

 private:
  SimdTier entry_tier_ = SimdTier::kScalar;
};

// Deterministic input mix: dense coverage of the value classes the fixups exist
// for (half-range normals, overflow boundary, Inf/NaN/sNaN, subnormals, signed
// zero, int8 rounding ties), padded with an LCG sweep of ordinary magnitudes.
std::vector<float> SpecialsInput(int64_t n) {
  static const float kSpecials[] = {
      0.0f, -0.0f, 1.0f, -1.0f, 0.5f, -2.5f, 3.5f, -3.5f,
      65504.0f, -65504.0f, 65519.9f, -65519.9f, 65520.0f, -65520.0f, 70000.0f,
      std::numeric_limits<float>::infinity(), -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(), -std::numeric_limits<float>::quiet_NaN(),
      FloatOfBits(0x7f800001u),   // signaling NaN, minimal payload
      FloatOfBits(0xffa00000u),   // negative signaling NaN
      6.103515625e-05f,           // smallest normal half
      6.0975551605224609375e-05f, // largest subnormal half
      5.9604644775390625e-08f, -5.9604644775390625e-08f,  // smallest subnormal half
      2.9802322387695312e-08f,    // half of it: the round-to-zero tie
      FloatOfBits(0x00000001u),   // smallest FP32 subnormal
      1.5e-5f, -7.7e-6f, 127.0f, -127.5f, 126.5f, 0.49999997f,
  };
  std::vector<float> v(static_cast<size_t>(n));
  uint32_t lcg = 0x2545f491u;
  for (int64_t i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      v[static_cast<size_t>(i)] =
          kSpecials[static_cast<size_t>(i / 3) % (sizeof(kSpecials) / sizeof(float))];
    } else {
      lcg = lcg * 1664525u + 1013904223u;
      // [-8, 8): the O(1..100) hidden-state regime plus sign coverage.
      v[static_cast<size_t>(i)] =
          (static_cast<float>(lcg >> 8) / static_cast<float>(1 << 24) - 0.5f) * 16.0f;
    }
  }
  return v;
}

// Lengths crossing every vector width boundary: full blocks, off-by-one around
// 8/16/32-lane multiples, and short ragged tails the scalar epilogue handles.
const int64_t kLengths[] = {1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 200};

TEST_F(CodecMatrixTest, Fp16EncodeMatchesScalarEveryTierAndLength) {
  const CodecKernels& ref = CodecKernelsFor(SimdTier::kScalar);
  for (SimdTier tier : RunnableTiers()) {
    const CodecKernels& k = CodecKernelsFor(tier);
    for (int64_t n : kLengths) {
      const std::vector<float> src = SpecialsInput(n + 3);
      for (int64_t offset = 0; offset < 3; ++offset) {  // unaligned starts
        std::vector<uint16_t> got(static_cast<size_t>(n), 0xdeadu);
        std::vector<uint16_t> want(static_cast<size_t>(n), 0xbeefu);
        k.fp16_encode(src.data() + offset, got.data(), n);
        ref.fp16_encode(src.data() + offset, want.data(), n);
        ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                 static_cast<size_t>(n) * sizeof(uint16_t)))
            << SimdTierName(tier) << " n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST_F(CodecMatrixTest, Fp16DecodeMatchesLutForAll65536Patterns) {
  const float* lut = Fp16DecodeTable();
  std::vector<uint16_t> bits(1u << 16);
  for (uint32_t i = 0; i < (1u << 16); ++i) {
    bits[i] = static_cast<uint16_t>(i);
  }
  std::vector<float> got(1u << 16);
  for (SimdTier tier : RunnableTiers()) {
    const CodecKernels& k = CodecKernelsFor(tier);
    k.fp16_decode(bits.data(), got.data(), 1 << 16);
    ASSERT_EQ(0, std::memcmp(got.data(), lut, (1u << 16) * sizeof(float)))
        << SimdTierName(tier) << " decode diverges from the scalar LUT";
  }
}

TEST_F(CodecMatrixTest, Fp16DecodeRaggedTailsAndUnalignedStarts) {
  const CodecKernels& ref = CodecKernelsFor(SimdTier::kScalar);
  std::vector<uint16_t> src(256 + 3);
  uint32_t lcg = 7u;
  for (auto& b : src) {
    lcg = lcg * 1664525u + 1013904223u;
    b = static_cast<uint16_t>(lcg >> 13);
  }
  for (SimdTier tier : RunnableTiers()) {
    const CodecKernels& k = CodecKernelsFor(tier);
    for (int64_t n : kLengths) {
      for (int64_t offset = 0; offset < 3; ++offset) {
        std::vector<float> got(static_cast<size_t>(n), -1.0f);
        std::vector<float> want(static_cast<size_t>(n), -2.0f);
        k.fp16_decode(src.data() + offset, got.data(), n);
        ref.fp16_decode(src.data() + offset, want.data(), n);
        ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                                 static_cast<size_t>(n) * sizeof(float)))
            << SimdTierName(tier) << " n=" << n << " offset=" << offset;
      }
    }
  }
}

TEST_F(CodecMatrixTest, Int8KernelsMatchScalarEveryTierAndLength) {
  const CodecKernels& ref = CodecKernelsFor(SimdTier::kScalar);
  for (SimdTier tier : RunnableTiers()) {
    const CodecKernels& k = CodecKernelsFor(tier);
    for (int64_t n : kLengths) {
      std::vector<float> src = SpecialsInput(n);
      // Add exact representable ties (i * 0.5 over the int8 range) so the RNE-vs-
      // half-away-from-zero fixup is exercised on every lane position.
      for (int64_t i = 0; i < n; ++i) {
        if (i % 4 == 1) {
          src[static_cast<size_t>(i)] =
              static_cast<float>((i % 509) - 254) * 0.5f;  // ties in [-127, 127]
        }
      }
      ASSERT_EQ(ref.max_abs(src.data(), n), k.max_abs(src.data(), n))
          << SimdTierName(tier) << " n=" << n;
      float ref_scale = 0.0f;
      std::vector<int8_t> want_q(static_cast<size_t>(n), 11);
      std::vector<int8_t> got_q(static_cast<size_t>(n), 22);
      Int8EncodeRow(src.data(), n, &ref_scale, want_q.data());  // dispatches active
      // Drive the tier under test through the same scale the scalar row computed so
      // the quantize comparison isolates the rounding path.
      const float scale = ref_scale;
      ref.int8_quantize(src.data(), 1.0f / scale, want_q.data(), n);
      k.int8_quantize(src.data(), 1.0f / scale, got_q.data(), n);
      ASSERT_EQ(0, std::memcmp(got_q.data(), want_q.data(), static_cast<size_t>(n)))
          << SimdTierName(tier) << " quantize n=" << n;
      std::vector<float> want_d(static_cast<size_t>(n), -1.0f);
      std::vector<float> got_d(static_cast<size_t>(n), -2.0f);
      ref.int8_dequantize(want_q.data(), scale, want_d.data(), n);
      k.int8_dequantize(got_q.data(), scale, got_d.data(), n);
      ASSERT_EQ(0, std::memcmp(got_d.data(), want_d.data(),
                               static_cast<size_t>(n) * sizeof(float)))
          << SimdTierName(tier) << " dequantize n=" << n;
    }
  }
}

// Whole-chunk round trip through the public codec entry points under ForceSimdTier:
// encoded payload bytes AND column-range decodes (the [K | V] de-interleave with its
// unaligned nonzero col0) must be identical to the scalar tier's.
TEST_F(CodecMatrixTest, ChunkEncodeAndColumnRangeDecodeMatchScalar) {
  const ChunkCodec codecs[] = {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8};
  const int64_t rows = 7;
  for (int64_t cols : {6L, 34L, 128L}) {
    const std::vector<float> src = SpecialsInput(rows * cols);
    for (ChunkCodec codec : codecs) {
      const int64_t payload_bytes = CodecRowBytes(codec, cols) * rows;
      // Scalar reference encode + full/split decode.
      ForceSimdTier(SimdTier::kScalar);
      std::vector<uint8_t> want_payload(static_cast<size_t>(payload_bytes), 0xa5);
      EncodeRowsInto(codec, src.data(), cols, rows, cols, want_payload.data());
      std::vector<uint8_t> chunk(sizeof(ChunkHeader) + static_cast<size_t>(payload_bytes));
      WriteChunkHeader(codec, rows, cols, chunk.data());
      std::memcpy(chunk.data() + sizeof(ChunkHeader), want_payload.data(),
                  static_cast<size_t>(payload_bytes));
      ChunkInfo info;
      ASSERT_TRUE(InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), cols, &info));
      const int64_t half = cols / 2;
      std::vector<float> want_lo(static_cast<size_t>(rows * half), -1.0f);
      std::vector<float> want_hi(static_cast<size_t>(rows * (cols - half)), -1.0f);
      DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows, 0,
                       half, want_lo.data(), half);
      DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows,
                       half, cols, want_hi.data(), cols - half);
      for (SimdTier tier : RunnableTiers()) {
        ASSERT_EQ(tier, ForceSimdTier(tier));
        std::vector<uint8_t> got_payload(static_cast<size_t>(payload_bytes), 0x5a);
        EncodeRowsInto(codec, src.data(), cols, rows, cols, got_payload.data());
        ASSERT_EQ(0, std::memcmp(got_payload.data(), want_payload.data(),
                                 static_cast<size_t>(payload_bytes)))
            << SimdTierName(tier) << " " << ChunkCodecName(codec) << " cols=" << cols;
        std::vector<float> got_lo(static_cast<size_t>(rows * half), -3.0f);
        std::vector<float> got_hi(static_cast<size_t>(rows * (cols - half)), -3.0f);
        DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows,
                         0, half, got_lo.data(), half);
        DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows,
                         half, cols, got_hi.data(), cols - half);
        ASSERT_EQ(0, std::memcmp(got_lo.data(), want_lo.data(),
                                 got_lo.size() * sizeof(float)))
            << SimdTierName(tier) << " " << ChunkCodecName(codec) << " K-half cols=" << cols;
        ASSERT_EQ(0, std::memcmp(got_hi.data(), want_hi.data(),
                                 got_hi.size() * sizeof(float)))
            << SimdTierName(tier) << " " << ChunkCodecName(codec) << " V-half cols=" << cols;
      }
    }
  }
}

TEST_F(CodecMatrixTest, ForceSimdTierClampsToDetected) {
  const SimdTier detected = DetectedSimdTier();
  // Requesting the maximum tier never selects something the CPU lacks.
  const SimdTier active = ForceSimdTier(SimdTier::kAvx512);
  EXPECT_LE(static_cast<int>(active), static_cast<int>(detected));
  EXPECT_EQ(SimdTier::kScalar, ForceSimdTier(SimdTier::kScalar));
  EXPECT_EQ(ActiveSimdTier(), SimdTier::kScalar);
}

TEST_F(CodecMatrixTest, TierNamesAreStable) {
  EXPECT_STREQ("scalar", SimdTierName(SimdTier::kScalar));
  EXPECT_STREQ("f16c", SimdTierName(SimdTier::kF16c));
  EXPECT_STREQ("avx2", SimdTierName(SimdTier::kAvx2));
  EXPECT_STREQ("avx512", SimdTierName(SimdTier::kAvx512));
}

}  // namespace
}  // namespace hcache
