// TieredBackend behavior pins: LRU victim choice, write-back volume, promotion,
// write-through, and cross-tier delete. These tests run the tier in synchronous
// write-back mode (TieredOptions::Writeback::kSync) with one lock stripe so every
// stat is deterministic — eviction decisions and flush counts do not depend on a
// background thread's schedule. The asynchronous drainer, the lock-striping, and
// the no-lock-across-IO discipline are covered by tiered_async_test.cc.
#include "src/storage/tiered_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 1024;

TieredOptions SyncOpts() {
  TieredOptions o;
  o.num_shards = 1;  // one stripe = the classic global context LRU
  o.writeback = TieredOptions::Writeback::kSync;
  return o;
}

class TieredBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_tiered_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    cold_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string(), (base_ / "d1").string()},
        kChunkBytes);
  }
  void TearDown() override {
    cold_.reset();
    std::filesystem::remove_all(base_);
  }

  // Writes `chunks` full chunks for `ctx`, filled with a context-distinct byte.
  static void FillContext(TieredBackend& t, int64_t ctx, int64_t chunks) {
    const std::vector<char> data(kChunkBytes, static_cast<char>('a' + ctx % 26));
    for (int64_t c = 0; c < chunks; ++c) {
      ASSERT_TRUE(t.WriteChunk({ctx, 0, c}, data.data(), kChunkBytes));
    }
  }

  std::filesystem::path base_;
  std::unique_ptr<FileBackend> cold_;
};

TEST_F(TieredBackendTest, WritesStayInDramUnderBudget) {
  TieredBackend tiered(cold_.get(), 8 * kChunkBytes, SyncOpts());
  FillContext(tiered, 1, 4);
  EXPECT_EQ(tiered.dram_bytes(), 4 * kChunkBytes);
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  // Nothing was evicted, so the cold tier saw no writes at all (write-back, not
  // write-through).
  EXPECT_EQ(cold_->total_writes(), 0);
  EXPECT_FALSE(cold_->HasChunk({1, 0, 0}));
  // Reads are DRAM hits.
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(tiered.Stats().dram_hits, 1);
  EXPECT_EQ(tiered.Stats().cold_hits, 0);
}

TEST_F(TieredBackendTest, LruContextEvictedToFileTier) {
  // Budget holds two 4-chunk contexts; the third pushes out the least recently used.
  TieredBackend tiered(cold_.get(), 8 * kChunkBytes, SyncOpts());
  FillContext(tiered, 1, 4);
  FillContext(tiered, 2, 4);
  // Touch ctx 1 so ctx 2 is the LRU victim.
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  FillContext(tiered, 3, 4);

  EXPECT_FALSE(tiered.IsDramResident({2, 0, 0}));
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  EXPECT_TRUE(tiered.IsDramResident({3, 0, 0}));
  // The victim's chunks were written back to the file tier — all of them.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(cold_->HasChunk({2, 0, c})) << "chunk " << c;
  }
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.evicted_contexts, 1);
  EXPECT_EQ(s.writeback_chunks, 4);
  EXPECT_EQ(s.writeback_bytes, 4 * kChunkBytes);
  // Logically every chunk is still present.
  EXPECT_EQ(s.chunks_stored, 12);
  EXPECT_EQ(s.bytes_stored, 12 * kChunkBytes);
}

TEST_F(TieredBackendTest, ReadYourWritesAcrossEviction) {
  // Write-back correctness: bytes written before eviction must read back identical
  // after their context has been pushed to the file tier.
  TieredBackend tiered(cold_.get(), 2 * kChunkBytes, SyncOpts());
  std::vector<char> data(kChunkBytes);
  for (int64_t i = 0; i < kChunkBytes; ++i) {
    data[static_cast<size_t>(i)] = static_cast<char>((i * 31 + 7) & 0xff);
  }
  ASSERT_TRUE(tiered.WriteChunk({1, 2, 3}, data.data(), kChunkBytes));
  // Force ctx 1 out of DRAM.
  FillContext(tiered, 2, 2);
  ASSERT_FALSE(tiered.IsDramResident({1, 2, 3}));
  ASSERT_TRUE(cold_->HasChunk({1, 2, 3}));

  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 2, 3}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), kChunkBytes), 0);
  EXPECT_EQ(tiered.Stats().cold_hits, 1);
  // The read promoted the chunk back into DRAM.
  EXPECT_TRUE(tiered.IsDramResident({1, 2, 3}));
}

TEST_F(TieredBackendTest, PromotedChunkReEvictsWithoutRewrite) {
  // A chunk promoted clean must not be written to the cold tier again on re-eviction.
  TieredBackend tiered(cold_.get(), 2 * kChunkBytes, SyncOpts());
  FillContext(tiered, 1, 1);
  FillContext(tiered, 2, 2);  // evicts ctx 1 (1 write-back)
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);  // promote
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  FillContext(tiered, 3, 2);  // evicts again; ctx 1 chunk is clean
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.writeback_chunks, 3);  // ctx1 once + ctx2's two chunks, not four
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(buf[0], 'b');
}

TEST_F(TieredBackendTest, OverwriteAfterEvictionSupersedesColdCopy) {
  TieredBackend tiered(cold_.get(), 2 * kChunkBytes, SyncOpts());
  const std::vector<char> v1(kChunkBytes, '1');
  const std::vector<char> v2(512, '2');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  FillContext(tiered, 2, 2);  // evict ctx 1: cold now holds v1
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v2.data(), 512));  // newer DRAM copy
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), 512);
  EXPECT_EQ(buf[0], '2');
  EXPECT_EQ(tiered.ChunkSize({1, 0, 0}), 512);
  // Evict again: the write-back must propagate the new version to the cold tier.
  FillContext(tiered, 3, 2);
  EXPECT_EQ(cold_->ChunkSize({1, 0, 0}), 512);
}

TEST_F(TieredBackendTest, ZeroBudgetIsWriteThrough) {
  TieredBackend tiered(cold_.get(), 0, SyncOpts());
  const std::vector<char> data(kChunkBytes, 'w');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, data.data(), kChunkBytes));
  EXPECT_EQ(tiered.dram_bytes(), 0);
  EXPECT_TRUE(cold_->HasChunk({1, 0, 0}));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(tiered.Stats().cold_hits, 1);
}

TEST_F(TieredBackendTest, WriteThroughReadsNeverChurnTheHotTier) {
  // Regression (PR 5): a cold read used to promote the chunk even when the budget
  // could never hold it, forcing an immediate evict-and-flush of a clean chunk on
  // EVERY read. In write-through mode the hot tier must stay untouched end to end:
  // writes flow straight to the cold tier without phantom "evictions" (nothing was
  // ever resident) and cold-read counts track reads one-to-one.
  TieredBackend tiered(cold_.get(), 0, SyncOpts());
  const std::vector<char> data(kChunkBytes, 'r');
  constexpr int64_t kContexts = 3;
  for (int64_t ctx = 0; ctx < kContexts; ++ctx) {
    ASSERT_TRUE(tiered.WriteChunk({ctx, 0, 0}, data.data(), kChunkBytes));
  }
  const StorageStats after_writes = tiered.Stats();
  EXPECT_EQ(after_writes.evicted_contexts, 0);  // write-through, not evict-churn
  EXPECT_EQ(after_writes.writeback_chunks, kContexts);
  std::vector<char> buf(kChunkBytes);
  constexpr int64_t kReads = 12;
  for (int64_t i = 0; i < kReads; ++i) {
    ASSERT_EQ(tiered.ReadChunk({i % kContexts, 0, 0}, buf.data(), kChunkBytes),
              kChunkBytes);
    EXPECT_FALSE(tiered.IsDramResident({i % kContexts, 0, 0}));
  }
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.cold_hits, kReads);            // every read served by the cold tier
  EXPECT_EQ(s.dram_hits, 0);
  EXPECT_EQ(s.promotions_skipped, kReads);   // each one declined promotion
  EXPECT_EQ(s.evicted_contexts, 0);          // reads add none either
  EXPECT_EQ(s.writeback_chunks, after_writes.writeback_chunks);
  EXPECT_EQ(tiered.dram_bytes(), 0);
}

TEST_F(TieredBackendTest, DeleteContextClearsBothTiers) {
  TieredBackend tiered(cold_.get(), 2 * kChunkBytes, SyncOpts());
  FillContext(tiered, 1, 2);
  FillContext(tiered, 2, 2);  // evicts ctx 1 to cold
  ASSERT_TRUE(cold_->HasChunk({1, 0, 0}));
  tiered.DeleteContext(1);
  tiered.DeleteContext(2);
  EXPECT_FALSE(tiered.HasChunk({1, 0, 0}));
  EXPECT_FALSE(tiered.HasChunk({2, 0, 0}));
  EXPECT_FALSE(cold_->HasChunk({1, 0, 0}));
  EXPECT_EQ(tiered.chunks_stored(), 0);
  EXPECT_EQ(tiered.bytes_stored(), 0);
  EXPECT_EQ(tiered.dram_bytes(), 0);
}

TEST_F(TieredBackendTest, DramHitRatioReflectsSkew) {
  // A hot context re-read repeatedly should trend the DRAM hit ratio upward even as
  // cold contexts cycle through.
  TieredBackend tiered(cold_.get(), 4 * kChunkBytes, SyncOpts());
  FillContext(tiered, 100, 2);  // the hot context
  std::vector<char> buf(kChunkBytes);
  for (int64_t round = 0; round < 10; ++round) {
    FillContext(tiered, round, 2);  // cold churn
    for (int64_t c = 0; c < 2; ++c) {
      ASSERT_EQ(tiered.ReadChunk({100, 0, c}, buf.data(), kChunkBytes), kChunkBytes);
    }
  }
  const StorageStats s = tiered.Stats();
  EXPECT_GT(s.dram_hits, 0);
  EXPECT_GT(s.DramHitRatio(), 0.5);
  EXPECT_EQ(s.dram_hits + s.cold_hits, s.total_reads);
}

TEST_F(TieredBackendTest, WorksOverMemoryColdTier) {
  // The cold tier is itself pluggable — DRAM-over-DRAM still honors the contract.
  MemoryBackend mem_cold(kChunkBytes);
  TieredBackend tiered(&mem_cold, kChunkBytes, SyncOpts());
  const std::vector<char> data(kChunkBytes, 'm');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, data.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, data.data(), kChunkBytes));  // evicts ctx 1
  EXPECT_TRUE(mem_cold.HasChunk({1, 0, 0}));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(buf[0], 'm');
  EXPECT_EQ(tiered.Name(), "tiered(memory)");
}

TEST_F(TieredBackendTest, StripesDivideTheBudgetAcrossContexts) {
  // Explicit striping: contexts land on num_shards independent LRU domains, each
  // with its share of the budget, so one context's churn cannot evict another
  // stripe's residents.
  MemoryBackend mem_cold(kChunkBytes);
  TieredOptions o = SyncOpts();
  o.num_shards = 2;
  TieredBackend tiered(&mem_cold, 4 * kChunkBytes, o);
  EXPECT_EQ(tiered.num_shards(), 2);
  // Contexts 0/2 share stripe 0; contexts 1/3 share stripe 1 (keyed by context_id).
  FillContext(tiered, 0, 2);
  FillContext(tiered, 1, 2);
  // Stripe 0 churn: ctx 2 displaces ctx 0 (its stripe holds 2 chunks)...
  FillContext(tiered, 2, 2);
  EXPECT_FALSE(tiered.IsDramResident({0, 0, 0}));
  EXPECT_TRUE(tiered.IsDramResident({2, 0, 0}));
  // ...while stripe 1's resident is untouched.
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
}

}  // namespace
}  // namespace hcache
