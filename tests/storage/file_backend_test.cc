#include "src/storage/file_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <vector>

namespace hcache {
namespace {

class FileBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    dirs_ = {base_ / "dev0", base_ / "dev1", base_ / "dev2"};
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<std::string> DirStrings() const {
    return {dirs_[0].string(), dirs_[1].string(), dirs_[2].string()};
  }

  static int CountEntries(const std::filesystem::path& dir) {
    int count = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      (void)e;
      ++count;
    }
    return count;
  }

  std::filesystem::path base_;
  std::vector<std::filesystem::path> dirs_;
};

std::vector<char> Payload(int64_t size, char fill) { return std::vector<char>(size, fill); }

TEST_F(FileBackendTest, WriteReadRoundTrip) {
  FileBackend store(DirStrings(), 4096);
  const auto data = Payload(1000, 'x');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({1, 0, 0}, buf.data(), 4096), 1000);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), 1000), 0);
}

TEST_F(FileBackendTest, MissingChunkReturnsMinusOne) {
  FileBackend store(DirStrings(), 4096);
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({9, 9, 9}, buf.data(), 4096), -1);
  EXPECT_FALSE(store.HasChunk({9, 9, 9}));
  EXPECT_EQ(store.ChunkSize({9, 9, 9}), -1);
}

TEST_F(FileBackendTest, SmallBufferRejected) {
  FileBackend store(DirStrings(), 4096);
  const auto data = Payload(1000, 'y');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(10);
  EXPECT_EQ(store.ReadChunk({1, 0, 0}, buf.data(), 10), -1);
}

TEST_F(FileBackendTest, OverwriteReplacesContent) {
  FileBackend store(DirStrings(), 4096);
  const auto a = Payload(100, 'a');
  const auto b = Payload(50, 'b');
  ASSERT_TRUE(store.WriteChunk({1, 2, 3}, a.data(), 100));
  ASSERT_TRUE(store.WriteChunk({1, 2, 3}, b.data(), 50));
  std::vector<char> buf(4096);
  EXPECT_EQ(store.ReadChunk({1, 2, 3}, buf.data(), 4096), 50);
  EXPECT_EQ(buf[0], 'b');
  EXPECT_EQ(store.chunks_stored(), 1);
}

TEST_F(FileBackendTest, RoundRobinStriping) {
  FileBackend store(DirStrings(), 4096);
  EXPECT_EQ(store.DeviceOf({1, 0, 0}), 0);
  EXPECT_EQ(store.DeviceOf({1, 0, 1}), 1);
  EXPECT_EQ(store.DeviceOf({1, 0, 2}), 2);
  EXPECT_EQ(store.DeviceOf({1, 0, 3}), 0);
  // Consecutive chunks of one layer land on different devices (bandwidth aggregation),
  // under the context's own subdirectory on each device.
  const auto d = Payload(10, 'd');
  for (int64_t c = 0; c < 6; ++c) {
    ASSERT_TRUE(store.WriteChunk({7, 0, c}, d.data(), 10));
  }
  for (int dev = 0; dev < 3; ++dev) {
    EXPECT_EQ(CountEntries(dirs_[dev] / "ctx7"), 2) << "device " << dev;
  }
}

TEST_F(FileBackendTest, DeleteContextRemovesOnlyThatContext) {
  FileBackend store(DirStrings(), 4096);
  const auto d = Payload(10, 'd');
  for (int64_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(store.WriteChunk({1, 0, c}, d.data(), 10));
    ASSERT_TRUE(store.WriteChunk({2, 0, c}, d.data(), 10));
  }
  store.DeleteContext(1);
  EXPECT_FALSE(store.HasChunk({1, 0, 0}));
  EXPECT_TRUE(store.HasChunk({2, 0, 3}));
  EXPECT_EQ(store.chunks_stored(), 4);
}

TEST_F(FileBackendTest, DeleteContextUnlinksPerContextDirs) {
  // Long serving runs must not leak one empty directory per dead context per device.
  FileBackend store(DirStrings(), 4096);
  const auto d = Payload(10, 'd');
  for (int64_t ctx = 1; ctx <= 3; ++ctx) {
    for (int64_t c = 0; c < 3; ++c) {
      ASSERT_TRUE(store.WriteChunk({ctx, 0, c}, d.data(), 10));
    }
  }
  for (int dev = 0; dev < 3; ++dev) {
    EXPECT_EQ(CountEntries(dirs_[dev]), 3) << "device " << dev;
  }
  store.DeleteContext(2);
  for (int dev = 0; dev < 3; ++dev) {
    EXPECT_FALSE(std::filesystem::exists(dirs_[dev] / "ctx2")) << "device " << dev;
    EXPECT_EQ(CountEntries(dirs_[dev]), 2) << "device " << dev;
  }
  store.DeleteContext(1);
  store.DeleteContext(3);
  for (int dev = 0; dev < 3; ++dev) {
    EXPECT_EQ(CountEntries(dirs_[dev]), 0) << "device " << dev;
  }
  // A deleted context can be written again (its directories are recreated).
  ASSERT_TRUE(store.WriteChunk({2, 0, 0}, d.data(), 10));
  EXPECT_TRUE(store.HasChunk({2, 0, 0}));
}

TEST_F(FileBackendTest, StatsTrackWritesAndBytes) {
  FileBackend store(DirStrings(), 4096);
  const auto d = Payload(100, 'd');
  ASSERT_TRUE(store.WriteChunk({1, 0, 0}, d.data(), 100));
  ASSERT_TRUE(store.WriteChunk({1, 0, 1}, d.data(), 60));
  EXPECT_EQ(store.total_writes(), 2);
  EXPECT_EQ(store.bytes_stored(), 160);
  std::vector<char> buf(4096);
  store.ReadChunk({1, 0, 0}, buf.data(), 4096);
  EXPECT_EQ(store.total_reads(), 1);
  // Every FileBackend read is a cold-tier hit in the uniform stats.
  const StorageStats s = store.Stats();
  EXPECT_EQ(s.cold_hits, 1);
  EXPECT_EQ(s.dram_hits, 0);
}

}  // namespace
}  // namespace hcache
