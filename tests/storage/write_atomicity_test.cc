// Write-failure atomicity conformance (satellite of the durability plane): across
// memory, file, and tiered backends, a failed WriteChunk leaves NO readable partial
// chunk and does not move bytes_stored. Plus the FileBackend-specific halves:
// temp+rename publication (no torn chunk is ever visible, orphaned temps are swept
// at startup), crash recovery of the index, and the write-path fd-leak regression.
#include <gtest/gtest.h>
#include <dirent.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kChunkBytes = 64 * 1024;

int CountOpenFds() {
  int n = 0;
  DIR* d = opendir("/proc/self/fd");
  if (d == nullptr) {
    return -1;
  }
  while (readdir(d) != nullptr) {
    ++n;
  }
  closedir(d);
  return n;
}

class WriteAtomicityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("hcache_atomicity_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { fs::remove_all(base_); }

  std::vector<std::string> Dirs() { return {(base_ / "d0").string()}; }

  std::filesystem::path base_;
};

// Conformance body: inject a write failure in front of `backend`, confirm nothing
// leaked through, then confirm the same write succeeds cleanly afterwards.
void ExpectFailedWriteLeavesNoTrace(StorageBackend* backend) {
  InstrumentedBackend flaky(backend);
  const StorageStats before = backend->Stats();
  std::vector<char> payload(1024, 'x');

  flaky.FailNextWrites(1);
  EXPECT_FALSE(flaky.WriteChunk({9, 0, 0}, payload.data(), 1024));

  const StorageStats after = backend->Stats();
  EXPECT_EQ(after.bytes_stored, before.bytes_stored);
  EXPECT_EQ(after.chunks_stored, before.chunks_stored);
  EXPECT_EQ(after.total_writes, before.total_writes);
  EXPECT_FALSE(backend->HasChunk({9, 0, 0}));
  std::vector<char> buf(1024);
  EXPECT_EQ(backend->ReadChunk({9, 0, 0}, buf.data(), 1024), -1);  // absent, not partial

  // The failure consumed, the identical write goes through and round-trips.
  ASSERT_TRUE(flaky.WriteChunk({9, 0, 0}, payload.data(), 1024));
  EXPECT_EQ(backend->ReadChunk({9, 0, 0}, buf.data(), 1024), 1024);
  EXPECT_EQ(std::memcmp(buf.data(), payload.data(), 1024), 0);
  EXPECT_EQ(backend->Stats().bytes_stored, before.bytes_stored + 1024);
}

TEST_F(WriteAtomicityTest, MemoryBackendConformance) {
  MemoryBackend backend(kChunkBytes);
  ExpectFailedWriteLeavesNoTrace(&backend);
}

TEST_F(WriteAtomicityTest, FileBackendConformance) {
  FileBackend backend(Dirs(), kChunkBytes);
  ExpectFailedWriteLeavesNoTrace(&backend);
}

TEST_F(WriteAtomicityTest, TieredBackendConformance) {
  MemoryBackend cold(kChunkBytes);
  TieredBackend backend(&cold, 8 * kChunkBytes);
  ExpectFailedWriteLeavesNoTrace(&backend);
}

TEST_F(WriteAtomicityTest, NaturalWriteFailureLeavesNoPartialFileAndNoFdLeak) {
  // A REAL filesystem failure (not injected): squat the chunk's publish path with a
  // directory so the final rename(2) fails after the temp file was fully written.
  FileBackend backend(Dirs(), kChunkBytes);
  std::vector<char> payload(4096, 'q');
  // Chunk index 0 on a 1-device store lands at d0/ctx5/L0_C0.bin; a directory
  // there makes rename fail with EISDIR/ENOTEMPTY.
  ASSERT_TRUE(backend.WriteChunk({5, 0, 1}, payload.data(), 4096));  // creates ctx dir
  fs::create_directories(base_ / "d0" / "ctx5" / "L0_C0.bin");

  const StorageStats before = backend.Stats();
  const int fds_before = CountOpenFds();
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(backend.WriteChunk({5, 0, 0}, payload.data(), 4096));
  }
  // The fd-leak regression: 32 failed writes must not hold 32 fds open (the old
  // code's `written == bytes && fclose(f) == 0` short-circuit leaked the stream on
  // every short write).
  EXPECT_EQ(CountOpenFds(), fds_before);

  const StorageStats after = backend.Stats();
  EXPECT_EQ(after.bytes_stored, before.bytes_stored);
  EXPECT_EQ(after.total_writes, before.total_writes);
  EXPECT_FALSE(backend.HasChunk({5, 0, 0}));
  // No temp residue either: the failed write unlinked its own temp file.
  int temp_files = 0;
  for (const auto& e : fs::recursive_directory_iterator(base_)) {
    if (e.is_regular_file() && e.path().extension() == ".tmp") {
      ++temp_files;
    }
  }
  EXPECT_EQ(temp_files, 0);
}

TEST_F(WriteAtomicityTest, StartupRecoversIndexAndSweepsOrphanedTemps) {
  std::vector<char> payload(2048, 'r');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  {
    FileBackend writer(Dirs(), kChunkBytes);
    ASSERT_TRUE(writer.WriteChunk({1, 0, 0}, payload.data(), 2048));
    ASSERT_TRUE(writer.WriteChunk({1, 2, 0}, payload.data(), 2048));
    ASSERT_TRUE(writer.WriteChunk({7, 0, 0}, payload.data(), 2048));
  }
  // Simulate a writer that died mid-write: a torn temp file next to a real chunk.
  {
    std::FILE* torn = std::fopen((base_ / "d0" / "ctx1" / "L5_C0.bin.tmp").c_str(), "wb");
    ASSERT_NE(torn, nullptr);
    std::fputs("half-written", torn);
    std::fclose(torn);
  }

  // A fresh process over the same dirs: every published chunk is readable again,
  // and the orphan is gone.
  FileBackend recovered(Dirs(), kChunkBytes);
  EXPECT_EQ(recovered.swept_temp_files(), 1);
  EXPECT_FALSE(fs::exists(base_ / "d0" / "ctx1" / "L5_C0.bin.tmp"));
  const StorageStats s = recovered.Stats();
  EXPECT_EQ(s.chunks_stored, 3);
  EXPECT_EQ(s.bytes_stored, 3 * 2048);
  std::vector<char> buf(2048);
  for (const ChunkKey key : {ChunkKey{1, 0, 0}, ChunkKey{1, 2, 0}, ChunkKey{7, 0, 0}}) {
    ASSERT_EQ(recovered.ReadChunk(key, buf.data(), 2048), 2048);
    EXPECT_EQ(std::memcmp(buf.data(), payload.data(), 2048), 0);
  }
  // The torn write's CHUNK never became visible: rename was the publish point.
  EXPECT_FALSE(recovered.HasChunk({1, 5, 0}));

  // Opt-out path: recover_index=false starts empty (a scratch store over a dirty
  // directory), sweep_temp_files=false preserves orphans for fsck to classify.
  FileBackendOptions no_recover;
  no_recover.recover_index = false;
  FileBackend scratch(Dirs(), kChunkBytes, no_recover);
  EXPECT_EQ(scratch.Stats().chunks_stored, 0);
  EXPECT_FALSE(scratch.HasChunk({1, 0, 0}));
}

TEST_F(WriteAtomicityTest, RecoveredChunksStillVerify) {
  // Recovery must not bypass verification: a sealed v2 chunk that survived a
  // "crash" reads back verified; one rotted on disk while the process was down
  // reads back kChunkCorrupt.
  std::vector<uint8_t> chunk(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, 8, 16)));
  for (size_t i = sizeof(ChunkHeader); i < chunk.size(); ++i) {
    chunk[i] = static_cast<uint8_t>(i * 7);
  }
  WriteChunkHeader(ChunkCodec::kFp32, 8, 16, chunk.data());
  const int64_t bytes = static_cast<int64_t>(chunk.size());
  {
    FileBackend writer(Dirs(), kChunkBytes);
    ASSERT_TRUE(writer.WriteChunk({1, 0, 0}, chunk.data(), bytes));
    ASSERT_TRUE(writer.WriteChunk({1, 1, 0}, chunk.data(), bytes));
  }
  // Offline bit rot on layer 1's file.
  const fs::path victim = base_ / "d0" / "ctx1" / "L1_C0.bin";
  ASSERT_TRUE(fs::exists(victim));
  {
    std::FILE* f = std::fopen(victim.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(sizeof(ChunkHeader) + 3), SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(sizeof(ChunkHeader) + 3), SEEK_SET);
    std::fputc(c ^ 0x20, f);
    std::fclose(f);
  }

  FileBackend recovered(Dirs(), kChunkBytes);
  std::vector<uint8_t> buf(static_cast<size_t>(bytes));
  EXPECT_EQ(recovered.ReadChunk({1, 0, 0}, buf.data(), bytes), bytes);
  EXPECT_EQ(recovered.ReadChunk({1, 1, 0}, buf.data(), bytes), kChunkCorrupt);
  EXPECT_EQ(recovered.Stats().crc_failures, 1);
}

}  // namespace
}  // namespace hcache
