// Concurrency stress for the storage backends under the cluster's access pattern:
// many replicas hammering one shared backend with interleaved Put/Get/Delete. The
// backends' contract is per-operation atomicity and conserving stats: every counted
// read byte was actually served, chunk payloads are never torn, and the tier-hit
// counters sum exactly to the bytes read. Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/storage_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 4096;
constexpr int kThreads = 8;
constexpr int kOpsPerThread = 3000;

// Deterministic payload for a key: every byte is a function of the key, so any torn
// or cross-wired read is detectable from the payload alone.
char FillByte(const ChunkKey& key) {
  return static_cast<char>(0x5a ^ (key.context_id * 131 + key.layer * 31 + key.chunk_index));
}

struct ThreadTally {
  int64_t writes = 0;
  int64_t reads = 0;       // successful reads
  int64_t read_bytes = 0;  // bytes returned by successful reads
  int64_t corrupt = 0;     // payload mismatches (must stay 0)
};

// xorshift: cheap per-thread deterministic op mixer (no libc rand, TSan-friendly).
uint64_t NextRand(uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Worker: mixed Put/Get/Delete over a context space shared with the other workers —
// the cluster pattern where any replica may read or age out any session's state.
void Hammer(StorageBackend* backend, int tid, ThreadTally* tally,
            int ops_per_thread = kOpsPerThread) {
  uint64_t rand_state = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(tid);
  std::vector<char> buf(kChunkBytes);
  for (int op = 0; op < ops_per_thread; ++op) {
    const uint64_t r = NextRand(rand_state);
    ChunkKey key;
    key.context_id = static_cast<int64_t>(r % 16);       // 16 shared contexts
    key.layer = static_cast<int64_t>((r >> 8) % 4);
    key.chunk_index = static_cast<int64_t>((r >> 16) % 8);
    const int64_t bytes = 256 + static_cast<int64_t>((r >> 24) % (kChunkBytes - 256));
    const uint64_t kind = (r >> 56) % 10;
    if (kind < 5) {  // 50% writes
      std::memset(buf.data(), FillByte(key), static_cast<size_t>(bytes));
      ASSERT_TRUE(backend->WriteChunk(key, buf.data(), bytes));
      ++tally->writes;
    } else if (kind < 9) {  // 40% reads
      const int64_t got = backend->ReadChunk(key, buf.data(), kChunkBytes);
      if (got >= 0) {
        ++tally->reads;
        tally->read_bytes += got;
        // Same-key writers all write the same pattern, so any successful read must
        // return it in full — a torn read or a stale-size copy breaks this.
        for (int64_t i = 0; i < got; ++i) {
          if (buf[static_cast<size_t>(i)] != FillByte(key)) {
            ++tally->corrupt;
            break;
          }
        }
      }
    } else {  // 10% deletes (sessions ending)
      backend->DeleteContext(key.context_id);
    }
  }
}

void RunHammer(StorageBackend* backend, std::vector<ThreadTally>* tallies,
               int ops_per_thread = kOpsPerThread) {
  tallies->assign(kThreads, ThreadTally{});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(Hammer, backend, t, &(*tallies)[static_cast<size_t>(t)],
                         ops_per_thread);
  }
  for (auto& t : threads) {
    t.join();
  }
  backend->Quiesce();  // settle async write-back so the stats snapshot is exact
}

void ExpectStatsConserved(const StorageBackend& backend,
                          const std::vector<ThreadTally>& tallies) {
  int64_t writes = 0, reads = 0, read_bytes = 0, corrupt = 0;
  for (const ThreadTally& t : tallies) {
    writes += t.writes;
    reads += t.reads;
    read_bytes += t.read_bytes;
    corrupt += t.corrupt;
  }
  const StorageStats s = backend.Stats();
  EXPECT_EQ(corrupt, 0);
  EXPECT_EQ(s.total_writes, writes);
  EXPECT_EQ(s.total_reads, reads);
  // Byte-granular conservation: hit bytes across tiers sum exactly to the bytes the
  // callers saw come back.
  EXPECT_EQ(s.dram_hit_bytes + s.cold_hit_bytes, read_bytes);
  EXPECT_EQ(s.dram_hits + s.cold_hits, s.total_reads);
  EXPECT_GT(reads, 0);
  EXPECT_GT(writes, 0);
}

void ExpectDrainsClean(StorageBackend* backend) {
  for (int64_t ctx = 0; ctx < 16; ++ctx) {
    backend->DeleteContext(ctx);
  }
  EXPECT_EQ(backend->chunks_stored(), 0);
  EXPECT_EQ(backend->bytes_stored(), 0);
}

TEST(BackendConcurrencyTest, MemoryBackendConservesStats) {
  MemoryBackend backend(kChunkBytes);
  std::vector<ThreadTally> tallies;
  RunHammer(&backend, &tallies);
  ExpectStatsConserved(backend, tallies);
  // Single tier: every hit is a DRAM hit.
  EXPECT_EQ(backend.Stats().cold_hits, 0);
  ExpectDrainsClean(&backend);
}

TEST(BackendConcurrencyTest, TieredBackendConservesStatsUnderEvictionPressure) {
  // Hot-tier budget far below the working set: promotions, evictions, and write-backs
  // run concurrently with the foreground ops, and every byte must still be accounted.
  MemoryBackend cold(kChunkBytes);
  TieredBackend backend(&cold, 8 * kChunkBytes);
  std::vector<ThreadTally> tallies;
  RunHammer(&backend, &tallies);
  ExpectStatsConserved(backend, tallies);
  const StorageStats s = backend.Stats();
  EXPECT_GT(s.evicted_contexts, 0);
  EXPECT_GT(s.cold_hits, 0);
  EXPECT_LE(backend.dram_bytes(), 8 * kChunkBytes);
  ExpectDrainsClean(&backend);
  EXPECT_EQ(cold.chunks_stored(), 0);
}

TEST(BackendConcurrencyTest, TieredBackendWithAmpleBudgetStaysHot) {
  MemoryBackend cold(kChunkBytes);
  TieredBackend backend(&cold, int64_t{1} << 30);
  std::vector<ThreadTally> tallies;
  RunHammer(&backend, &tallies);
  ExpectStatsConserved(backend, tallies);
  EXPECT_EQ(backend.Stats().cold_hits, 0);
  EXPECT_EQ(backend.Stats().evicted_contexts, 0);
  ExpectDrainsClean(&backend);
}

TEST(BackendConcurrencyTest, ShardedAsyncTierSurvivesTheHammerWithSlowColdIO) {
  // The PR 5 configuration under fire: lock-striped hot tier, asynchronous
  // write-back drainer, and a cold tier with injected latency (each cold op sleeps,
  // standing in for NVMe service time) — so evictions queue up, writers hit the
  // high-water mark, and reads race in-flight write-backs. Every byte must still be
  // accounted and no payload torn. Runs under TSan in CI.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(200);
  TieredOptions opts;
  opts.num_shards = 8;
  opts.writeback = TieredOptions::Writeback::kAsync;
  TieredBackend backend(&cold, 8 * kChunkBytes, opts);
  EXPECT_EQ(backend.num_shards(), 8);
  std::vector<ThreadTally> tallies;
  RunHammer(&backend, &tallies, /*ops_per_thread=*/600);
  ExpectStatsConserved(backend, tallies);
  const StorageStats s = backend.Stats();
  EXPECT_GT(s.evicted_contexts, 0);
  EXPECT_GT(s.writeback_chunks, 0);
  EXPECT_EQ(s.writeback_failures, 0);
  EXPECT_EQ(s.drain_pending_bytes, 0);  // Quiesce retired the queue
  EXPECT_LE(backend.dram_bytes(), 8 * kChunkBytes);
  ExpectDrainsClean(&backend);
  EXPECT_EQ(cold.chunks_stored(), 0);
}

TEST(BackendConcurrencyTest, DistinctChunkWritersNeverCollide) {
  // The documented contract ("concurrent writers on distinct chunks are safe") under
  // its pure form: per-thread key spaces, then every chunk must hold its exact
  // payload and the index must account every byte.
  MemoryBackend cold(kChunkBytes);
  TieredBackend backend(&cold, 32 * kChunkBytes);
  std::vector<std::thread> threads;
  constexpr int kChunksPerThread = 200;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&backend, t] {
      std::vector<char> buf(kChunkBytes);
      for (int c = 0; c < kChunksPerThread; ++c) {
        const ChunkKey key{/*context_id=*/100 + t, /*layer=*/0, /*chunk_index=*/c};
        const int64_t bytes = 128 + (c % 8) * 64;
        std::memset(buf.data(), FillByte(key), static_cast<size_t>(bytes));
        ASSERT_TRUE(backend.WriteChunk(key, buf.data(), bytes));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  int64_t expected_bytes = 0;
  std::vector<char> buf(kChunkBytes);
  for (int t = 0; t < kThreads; ++t) {
    for (int c = 0; c < kChunksPerThread; ++c) {
      const ChunkKey key{100 + t, 0, c};
      const int64_t bytes = 128 + (c % 8) * 64;
      expected_bytes += bytes;
      ASSERT_EQ(backend.ReadChunk(key, buf.data(), kChunkBytes), bytes);
      for (int64_t i = 0; i < bytes; ++i) {
        ASSERT_EQ(buf[static_cast<size_t>(i)], FillByte(key));
      }
    }
  }
  EXPECT_EQ(backend.chunks_stored(), kThreads * kChunksPerThread);
  EXPECT_EQ(backend.bytes_stored(), expected_bytes);
}

}  // namespace
}  // namespace hcache
