// Fault matrix for the distributed cold plane (ISSUE 8): placement determinism,
// R-way replication, failover reads, degraded writes + re-replication convergence,
// node kill mid-batch, drain-while-serving, kill-during-drain, double failure with
// R=2 (detected miss, never wrong bytes), the per-node capacity model, and cold
// recovery of the logical index from node stores.
#include "src/storage/distributed_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/layout.h"
#include "src/storage/placement.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kChunkBytes = 4096;

std::vector<char> Payload(const ChunkKey& key, int64_t bytes) {
  std::vector<char> data(static_cast<size_t>(bytes));
  for (int64_t i = 0; i < bytes; ++i) {
    data[static_cast<size_t>(i)] = static_cast<char>(
        (key.context_id * 193 + key.layer * 47 + key.chunk_index * 11 + i) & 0xff);
  }
  return data;
}

// A sealed v2 chunk (header + payload CRC): the form whose at-rest damage the CRC
// path can actually detect. Raw Payload() blobs read back kOkUnverified by design,
// so corruption-detection tests must write sealed chunks.
std::vector<char> SealedPayload(const ChunkKey& key, int64_t rows, int64_t cols) {
  std::vector<char> chunk(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, rows, cols)));
  for (size_t i = sizeof(ChunkHeader); i < chunk.size(); ++i) {
    chunk[i] = static_cast<char>(
        (key.context_id * 193 + key.layer * 47 + key.chunk_index * 11 + i) & 0xff);
  }
  WriteChunkHeader(ChunkCodec::kFp32, rows, cols, chunk.data());
  return chunk;
}

std::vector<ChunkKey> Keys(int64_t ctx, int count) {
  std::vector<ChunkKey> keys;
  for (int c = 0; c < count; ++c) {
    keys.push_back(ChunkKey{ctx, 0, c});
  }
  return keys;
}

// --------------------------------------------------------------------------
// Placement table
// --------------------------------------------------------------------------

TEST(PlacementTableTest, WalkOrderIsDeterministicAndCoversEveryNode) {
  const PlacementTable a({0, 1, 2, 3});
  const PlacementTable b({3, 2, 1, 0});  // construction order must not matter
  for (int64_t c = 0; c < 200; ++c) {
    const ChunkKey key{7, 3, c};
    const auto wa = a.WalkOrder(key);
    ASSERT_EQ(wa.size(), 4u);
    EXPECT_EQ(wa, b.WalkOrder(key));
    std::set<int> distinct(wa.begin(), wa.end());
    EXPECT_EQ(distinct.size(), 4u);
    EXPECT_EQ(a.HashKey(key), PlacementTable::HashKey(key));
  }
}

TEST(PlacementTableTest, ReplicaSetsSpreadAcrossNodes) {
  const PlacementTable table({0, 1, 2, 3});
  std::vector<int64_t> primary_count(4, 0);
  for (int64_t c = 0; c < 400; ++c) {
    const auto replicas = table.ReplicasFor(ChunkKey{1, 0, c}, 2);
    ASSERT_EQ(replicas.size(), 2u);
    ASSERT_NE(replicas[0], replicas[1]);
    ++primary_count[static_cast<size_t>(replicas[0])];
  }
  // Consistent hashing with 64 vnodes keeps fill within a loose band of the mean.
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(primary_count[static_cast<size_t>(n)], 20) << "node " << n;
    EXPECT_LT(primary_count[static_cast<size_t>(n)], 250) << "node " << n;
  }
}

TEST(PlacementTableTest, RemovingANodeRehomesOnlyItsChunks) {
  const PlacementTable full({0, 1, 2, 3});
  const PlacementTable without = full.Without(2);
  EXPECT_FALSE(without.HasNode(2));
  for (int64_t c = 0; c < 300; ++c) {
    const ChunkKey key{5, 1, c};
    const auto before = full.ReplicasFor(key, 2);
    const auto after = without.ReplicasFor(key, 2);
    if (std::find(before.begin(), before.end(), 2) == before.end()) {
      // The consistent-hashing property Drain relies on: chunks not homed on the
      // removed node keep their exact replica set.
      EXPECT_EQ(before, after) << "chunk " << c << " re-homed needlessly";
    } else {
      EXPECT_EQ(std::find(after.begin(), after.end(), 2), after.end());
    }
  }
}

// --------------------------------------------------------------------------
// Replication and failover
// --------------------------------------------------------------------------

TEST(DistributedColdBackendTest, WritesReplicateToRNodes) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const auto keys = Keys(1, 16);
  for (const auto& key : keys) {
    const auto data = Payload(key, 1024);
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 1024));
  }
  int64_t physical = 0;
  for (int n = 0; n < 3; ++n) {
    physical += dist.node_store(n)->Stats().chunks_stored;
  }
  EXPECT_EQ(physical, 2 * static_cast<int64_t>(keys.size()));
  for (const auto& key : keys) {
    const auto st = dist.CheckReplication(key);
    ASSERT_EQ(st.home.size(), 2u);
    EXPECT_TRUE(st.FullyReplicated());
    EXPECT_EQ(st.healthy_copies, 2);
  }
  const StorageStats s = dist.Stats();
  EXPECT_EQ(s.chunks_stored, static_cast<int64_t>(keys.size()));
  EXPECT_EQ(s.under_replicated_chunks, 0);
  EXPECT_EQ(s.degraded_writes, 0);
}

TEST(DistributedColdBackendTest, ReadsFailOverFromADownPrimary) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const ChunkKey key{1, 0, 0};
  const auto data = Payload(key, 2000);
  ASSERT_TRUE(dist.WriteChunk(key, data.data(), 2000));
  const auto st = dist.CheckReplication(key);
  ASSERT_EQ(st.home.size(), 2u);

  ASSERT_TRUE(dist.SetNodeDown(st.home[0]));
  EXPECT_EQ(dist.Stats().nodes_down, 1);
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 2000);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), 2000), 0);
  EXPECT_EQ(dist.Stats().failover_reads, 1);

  ASSERT_TRUE(dist.SetNodeUp(st.home[0]));
  EXPECT_EQ(dist.Stats().nodes_down, 0);
  // Primary serves again; no further failover.
  ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 2000);
  EXPECT_EQ(dist.Stats().failover_reads, 1);
}

TEST(DistributedColdBackendTest, ReadsFailOverFromACorruptCopyAndRepairHealsIt) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const ChunkKey key{2, 1, 3};
  const auto data = SealedPayload(key, /*rows=*/16, /*cols=*/32);
  const int64_t bytes = static_cast<int64_t>(data.size());
  ASSERT_TRUE(dist.WriteChunk(key, data.data(), bytes));
  const auto home = dist.CheckReplication(key).home;

  // Flip a payload bit in the primary's at-rest copy.
  ASSERT_TRUE(dist.node_instrument(home[0])->CorruptChunk(
      key, 8 * (sizeof(ChunkHeader) + 900)));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), bytes);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), static_cast<size_t>(bytes)), 0)
      << "stale/corrupt bytes served";
  EXPECT_EQ(dist.Stats().failover_reads, 1);
  EXPECT_EQ(dist.Stats().crc_failures, 0) << "a failed-over read is not a read failure";
  EXPECT_GT(dist.Stats().under_replicated_chunks, 0) << "damage must queue a repair";

  dist.Quiesce();  // synchronous repair pass (no background worker)
  const auto st = dist.CheckReplication(key);
  EXPECT_TRUE(st.FullyReplicated());
  EXPECT_EQ(st.healthy_copies, 2);
  EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
  EXPECT_GT(dist.Stats().re_replicated_chunks, 0);
}

TEST(DistributedColdBackendTest, DoubleFailureIsADetectedMissNeverWrongBytes) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const ChunkKey key{3, 0, 1};
  const auto data = SealedPayload(key, /*rows=*/9, /*cols=*/32);
  const int64_t bytes = static_cast<int64_t>(data.size());
  ASSERT_TRUE(dist.WriteChunk(key, data.data(), bytes));
  const auto home = dist.CheckReplication(key).home;
  ASSERT_EQ(home.size(), 2u);

  // Both replicas down: detected miss, untouched buffer, then full recovery.
  ASSERT_TRUE(dist.SetNodeDown(home[0]));
  ASSERT_TRUE(dist.SetNodeDown(home[1]));
  std::vector<char> buf(kChunkBytes, '\x5a');
  EXPECT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), -1);
  EXPECT_EQ(buf[0], '\x5a');
  ASSERT_TRUE(dist.SetNodeUp(home[0]));
  ASSERT_TRUE(dist.SetNodeUp(home[1]));
  ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), bytes);

  // Both copies corrupt: kChunkCorrupt (the caller's recompute fallback), counted
  // once. Per the seam contract buf is unspecified on kCorrupt — the status code,
  // not the buffer, is what keeps wrong bytes out of decoded KV.
  ASSERT_TRUE(dist.node_instrument(home[0])->CorruptChunk(
      key, 8 * (sizeof(ChunkHeader) + 100)));
  ASSERT_TRUE(dist.node_instrument(home[1])->CorruptChunk(
      key, 8 * (sizeof(ChunkHeader) + 200)));
  buf.assign(buf.size(), '\x5a');
  EXPECT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), kChunkCorrupt);
  EXPECT_EQ(dist.Stats().crc_failures, 1);
  // Unrepairable (no healthy source anywhere): the chunk stays queued.
  dist.Quiesce();
  EXPECT_GT(dist.Stats().under_replicated_chunks, 0);
}

TEST(DistributedColdBackendTest, DegradedWritesConvergeAfterNodeRecovery) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdOptions two_node_opts = opts;
  DistributedColdBackend dist(2, kChunkBytes, two_node_opts);
  ASSERT_TRUE(dist.SetNodeDown(1));

  const auto keys = Keys(4, 12);
  for (const auto& key : keys) {
    const auto data = Payload(key, 800);
    // One node left: every write succeeds degraded.
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 800));
  }
  const StorageStats degraded = dist.Stats();
  EXPECT_EQ(degraded.degraded_writes, static_cast<int64_t>(keys.size()));
  EXPECT_EQ(degraded.under_replicated_chunks, static_cast<int64_t>(keys.size()));

  // Down node: repair has nowhere to copy to — Quiesce must not spin or "fix" it.
  dist.Quiesce();
  EXPECT_EQ(dist.Stats().under_replicated_chunks, static_cast<int64_t>(keys.size()));

  ASSERT_TRUE(dist.SetNodeUp(1));
  dist.Quiesce();
  const StorageStats recovered = dist.Stats();
  EXPECT_EQ(recovered.under_replicated_chunks, 0);
  EXPECT_EQ(recovered.re_replicated_chunks, static_cast<int64_t>(keys.size()));
  for (const auto& key : keys) {
    const auto st = dist.CheckReplication(key);
    EXPECT_TRUE(st.FullyReplicated()) << "chunk " << key.chunk_index;
    std::vector<char> buf(kChunkBytes);
    ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 800);
    const auto want = Payload(key, 800);
    EXPECT_EQ(std::memcmp(buf.data(), want.data(), 800), 0);
  }
}

TEST(DistributedColdBackendTest, NodeKillMidWriteBatchDegradesButLosesNothing) {
  DistributedColdBackend dist(3, kChunkBytes);  // background repair ON
  const auto keys = Keys(5, 32);
  std::vector<std::vector<char>> payloads;
  for (const auto& key : keys) {
    payloads.push_back(Payload(key, 1024));
  }

  // Fail-stop node 1 from INSIDE its own write batch: after two writes land, the
  // node goes down and every further write to it fails.
  std::atomic<int> node1_writes{0};
  dist.node_instrument(1)->set_write_hook([&](const ChunkKey&) {
    if (node1_writes.fetch_add(1) == 2) {
      dist.SetNodeDown(1);
      dist.node_instrument(1)->FailNextWrites(1 << 20);
    }
  });

  std::vector<ChunkWriteRequest> reqs;
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs.push_back(ChunkWriteRequest{keys[i], payloads[i].data(), 1024, false});
  }
  dist.WriteChunks(reqs);
  for (const auto& req : reqs) {
    // R=2 over 3 nodes: the second replica always lands elsewhere.
    EXPECT_TRUE(req.ok) << req.key.chunk_index;
  }

  // Every chunk reads back correct bytes while the node is down...
  for (size_t i = 0; i < keys.size(); ++i) {
    std::vector<char> buf(kChunkBytes);
    ASSERT_EQ(dist.ReadChunk(keys[i], buf.data(), kChunkBytes), 1024);
    ASSERT_EQ(std::memcmp(buf.data(), payloads[i].data(), 1024), 0) << i;
  }
  // ...and the repair worker restores R once it recovers.
  dist.node_instrument(1)->FailNextWrites(0);
  ASSERT_TRUE(dist.SetNodeUp(1));
  dist.Quiesce();
  EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
  for (const auto& key : keys) {
    EXPECT_TRUE(dist.CheckReplication(key).FullyReplicated()) << key.chunk_index;
  }
}

// --------------------------------------------------------------------------
// Drain / Balance
// --------------------------------------------------------------------------

TEST(DistributedColdBackendTest, DrainEvacuatesWhileServing) {
  DistributedColdBackend dist(3, kChunkBytes);  // background repair ON
  const auto keys = Keys(6, 48);
  for (const auto& key : keys) {
    const auto data = Payload(key, 1024);
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 1024));
  }

  // Readers and a writer hammer the backend throughout the drain.
  std::atomic<bool> stop{false};
  std::atomic<int64_t> bad_reads{0};
  std::thread reader([&] {
    std::vector<char> buf(kChunkBytes);
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ChunkKey& key = keys[i++ % keys.size()];
      const int64_t got = dist.ReadChunk(key, buf.data(), kChunkBytes);
      if (got != 1024 ||
          std::memcmp(buf.data(), Payload(key, 1024).data(), 1024) != 0) {
        bad_reads.fetch_add(1);
      }
    }
  });
  std::thread writer([&] {
    int64_t c = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ChunkKey key{7, 0, c++ % 8};
      const auto data = Payload(key, 512);
      dist.WriteChunk(key, data.data(), 512);
    }
  });

  const bool drained = dist.Drain(1);
  stop.store(true, std::memory_order_release);
  reader.join();
  writer.join();
  ASSERT_TRUE(drained);

  EXPECT_EQ(bad_reads.load(), 0) << "a read failed or served wrong bytes mid-drain";
  const auto table = dist.NodeTable();
  EXPECT_TRUE(table[1].removed);
  EXPECT_EQ(table[1].chunks, 0) << "drained node must be empty";
  dist.Quiesce();
  EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
  for (const auto& key : keys) {
    const auto st = dist.CheckReplication(key);
    EXPECT_TRUE(st.FullyReplicated()) << key.chunk_index;
    EXPECT_EQ(std::find(st.home.begin(), st.home.end(), 1), st.home.end());
  }
}

TEST(DistributedColdBackendTest, NodeKillDuringDrainStillConverges) {
  DistributedColdBackend dist(4, kChunkBytes);  // background repair ON
  const auto keys = Keys(8, 40);
  for (const auto& key : keys) {
    const auto data = Payload(key, 900);
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 900));
  }
  // Kill node 2 from inside the drain's own repair traffic: the first repair
  // read that touches node 0 takes node 2 down.
  std::atomic<bool> tripped{false};
  dist.node_instrument(0)->set_read_hook([&](const ChunkKey&) {
    if (!tripped.exchange(true)) {
      dist.SetNodeDown(2);
    }
  });
  ASSERT_TRUE(dist.Drain(1));  // survivors 0 and 3 can still hold R=2
  EXPECT_TRUE(dist.NodeTable()[1].removed);
  for (const auto& key : keys) {
    std::vector<char> buf(kChunkBytes);
    ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 900) << key.chunk_index;
    const auto want = Payload(key, 900);
    ASSERT_EQ(std::memcmp(buf.data(), want.data(), 900), 0) << key.chunk_index;
  }
  ASSERT_TRUE(dist.SetNodeUp(2));
  dist.Quiesce();
  EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
}

TEST(DistributedColdBackendTest, DrainRefusesTheLastNodeAndDownNodes) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(2, kChunkBytes, opts);
  const ChunkKey key{1, 0, 0};
  const auto data = Payload(key, 700);
  ASSERT_TRUE(dist.WriteChunk(key, data.data(), 700));

  EXPECT_FALSE(dist.Drain(5));  // unknown node
  ASSERT_TRUE(dist.Drain(1));   // 2 -> 1 nodes: desired replication drops to 1
  EXPECT_FALSE(dist.Drain(1));  // already removed
  EXPECT_FALSE(dist.Drain(0));  // last node standing
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 700);

  DistributedColdBackend dist2(3, kChunkBytes, opts);
  ASSERT_TRUE(dist2.SetNodeDown(1));
  EXPECT_FALSE(dist2.Drain(1)) << "a down node cannot be drained (nothing to read)";
}

TEST(DistributedColdBackendTest, BalanceTrimsStraySpillCopies) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const auto keys = Keys(9, 24);
  // With node 0 down, chunks homed on it spill to their next walk node.
  ASSERT_TRUE(dist.SetNodeDown(0));
  for (const auto& key : keys) {
    const auto data = Payload(key, 1024);
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 1024));
  }
  ASSERT_TRUE(dist.SetNodeUp(0));
  dist.Quiesce();  // copies converge back onto recovered homes
  EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);

  // Some chunks now hold three copies (home pair + the spill). Balance trims the
  // strays down to exactly R per chunk.
  int64_t physical = 0;
  for (int n = 0; n < 3; ++n) {
    physical += dist.node_store(n)->Stats().chunks_stored;
  }
  ASSERT_GE(physical, 2 * static_cast<int64_t>(keys.size()));
  dist.Balance();
  physical = 0;
  for (int n = 0; n < 3; ++n) {
    physical += dist.node_store(n)->Stats().chunks_stored;
  }
  EXPECT_EQ(physical, 2 * static_cast<int64_t>(keys.size()));
  for (const auto& key : keys) {
    const auto st = dist.CheckReplication(key);
    EXPECT_TRUE(st.FullyReplicated()) << key.chunk_index;
    EXPECT_TRUE(st.stray.empty()) << key.chunk_index;
    std::vector<char> buf(kChunkBytes);
    ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 1024);
  }
}

TEST(DistributedColdBackendTest, CapacityModelPlacesAroundFullNodes) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  // Node 0 can hold only two 1 KiB copies; the walk places around it once full.
  dist.set_node_capacity(0, 2048);
  const auto keys = Keys(10, 30);
  for (const auto& key : keys) {
    const auto data = Payload(key, 1024);
    ASSERT_TRUE(dist.WriteChunk(key, data.data(), 1024));
  }
  EXPECT_LE(dist.node_store(0)->Stats().bytes_stored, 2048);
  // Every chunk still reached two nodes (1 and 2 absorb the overflow).
  for (const auto& key : keys) {
    int copies = 0;
    for (int n = 0; n < 3; ++n) {
      copies += dist.node_store(n)->HasChunk(key) ? 1 : 0;
    }
    EXPECT_EQ(copies, 2) << key.chunk_index;
  }
  EXPECT_EQ(dist.Stats().degraded_writes, 0);
}

// --------------------------------------------------------------------------
// Cold recovery from node stores
// --------------------------------------------------------------------------

TEST(DistributedColdBackendTest, RecoversLogicalIndexFromFileBackendNodes) {
  const fs::path base = fs::temp_directory_path() /
                        ("hcache_dist_recover_" + std::to_string(::getpid()));
  fs::remove_all(base);
  const auto factory = [&base](int node_id, int64_t chunk_bytes) {
    return std::make_unique<FileBackend>(
        std::vector<std::string>{(base / ("node" + std::to_string(node_id))).string()},
        chunk_bytes);
  };
  DistributedColdOptions opts;
  opts.background_repair = false;
  const auto keys = Keys(11, 10);
  {
    DistributedColdBackend dist(3, kChunkBytes, opts, factory);
    for (const auto& key : keys) {
      const auto data = Payload(key, 1300);
      ASSERT_TRUE(dist.WriteChunk(key, data.data(), 1300));
    }
  }
  {
    // A fresh process over the same node directories: chunks readable again,
    // replication intact — the fsck-opens-a-store-cold path.
    DistributedColdBackend dist(3, kChunkBytes, opts, factory);
    EXPECT_EQ(dist.Stats().chunks_stored, static_cast<int64_t>(keys.size()));
    EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
    for (const auto& key : keys) {
      ASSERT_TRUE(dist.HasChunk(key));
      EXPECT_EQ(dist.ChunkSize(key), 1300);
      std::vector<char> buf(kChunkBytes);
      ASSERT_EQ(dist.ReadChunk(key, buf.data(), kChunkBytes), 1300);
      const auto want = Payload(key, 1300);
      EXPECT_EQ(std::memcmp(buf.data(), want.data(), 1300), 0);
      EXPECT_TRUE(dist.CheckReplication(key).FullyReplicated());
    }
  }
  // Lose one node's directory wholesale: the rebuilt index must flag every chunk
  // that lived there as under-replicated, and repair must restore them.
  fs::remove_all(base / "node1");
  {
    DistributedColdBackend dist(3, kChunkBytes, opts, factory);
    EXPECT_GT(dist.Stats().under_replicated_chunks, 0);
    dist.Quiesce();
    EXPECT_EQ(dist.Stats().under_replicated_chunks, 0);
    for (const auto& key : keys) {
      EXPECT_TRUE(dist.CheckReplication(key).FullyReplicated()) << key.chunk_index;
    }
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace hcache
