// Cross-backend conformance for the batched read API (storage_backend.h's
// ReadChunks contract): a batch must deliver exactly what N serial ReadChunk calls
// would — same bytes, same per-request failures, same stats — on every backend, and
// per-request failures (absent chunk, short buffer) must never poison the rest of
// the batch or leave side effects.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/storage/dedup_backend.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/file_backend.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/storage_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kChunkBytes = 4096;

std::vector<char> Payload(const ChunkKey& key, int64_t bytes) {
  std::vector<char> data(static_cast<size_t>(bytes));
  for (int64_t i = 0; i < bytes; ++i) {
    data[static_cast<size_t>(i)] = static_cast<char>(
        (key.context_id * 131 + key.layer * 31 + key.chunk_index * 7 + i) & 0xff);
  }
  return data;
}

// One backend under test plus everything needed to clean it up.
struct Fixture {
  std::string name;
  StorageBackend* backend = nullptr;
  // Order matters on teardown: wrappers before inner tiers, tiers before stores.
  std::vector<std::unique_ptr<StorageBackend>> owned;
  fs::path dir;

  ~Fixture() {
    owned.clear();
    if (!dir.empty()) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  }
};

std::vector<std::shared_ptr<Fixture>> MakeFixtures(const std::string& tag) {
  std::vector<std::shared_ptr<Fixture>> fixtures;

  {
    auto f = std::make_shared<Fixture>();
    f->name = "memory";
    auto mem = std::make_unique<MemoryBackend>(kChunkBytes);
    f->backend = mem.get();
    f->owned.push_back(std::move(mem));
    fixtures.push_back(std::move(f));
  }
  {
    auto f = std::make_shared<Fixture>();
    f->name = "file";
    f->dir = fs::temp_directory_path() / ("read_chunks_" + tag + "_file");
    fs::remove_all(f->dir);
    auto file = std::make_unique<FileBackend>(
        std::vector<std::string>{(f->dir / "d0").string(), (f->dir / "d1").string(),
                                 (f->dir / "d2").string()},
        kChunkBytes);
    f->backend = file.get();
    f->owned.push_back(std::move(file));
    fixtures.push_back(std::move(f));
  }
  for (const auto mode :
       {TieredOptions::Writeback::kSync, TieredOptions::Writeback::kAsync}) {
    auto f = std::make_shared<Fixture>();
    f->name = mode == TieredOptions::Writeback::kSync ? "tiered_sync" : "tiered_async";
    auto cold = std::make_unique<MemoryBackend>(kChunkBytes);
    TieredOptions opts;
    opts.writeback = mode;
    // Budget for ~4 chunks: some of the working set below lives cold, so the batch
    // exercises DRAM hits, cold hits, and promotion in one submission.
    auto tiered =
        std::make_unique<TieredBackend>(cold.get(), 4 * kChunkBytes, opts);
    f->backend = tiered.get();
    f->owned.push_back(std::move(tiered));  // tiered destructs (quiesces) first
    f->owned.push_back(std::move(cold));
    fixtures.push_back(std::move(f));
  }
  {
    auto f = std::make_shared<Fixture>();
    f->name = "instrumented";
    auto mem = std::make_unique<MemoryBackend>(kChunkBytes);
    auto wrapped = std::make_unique<InstrumentedBackend>(mem.get());
    f->backend = wrapped.get();
    f->owned.push_back(std::move(wrapped));
    f->owned.push_back(std::move(mem));
    fixtures.push_back(std::move(f));
  }
  {
    auto f = std::make_shared<Fixture>();
    f->name = "distributed";
    auto dist = std::make_unique<DistributedColdBackend>(3, kChunkBytes);
    f->backend = dist.get();
    f->owned.push_back(std::move(dist));
    fixtures.push_back(std::move(f));
  }
  {
    auto f = std::make_shared<Fixture>();
    f->name = "dedup";
    auto mem = std::make_unique<MemoryBackend>(kChunkBytes);
    auto dedup = std::make_unique<DedupBackend>(mem.get());
    f->backend = dedup.get();
    f->owned.push_back(std::move(dedup));
    f->owned.push_back(std::move(mem));
    fixtures.push_back(std::move(f));
  }
  {
    // A batch against the tiered stack whose cold tier single-instances: duplicate
    // logical keys of one shared chunk must still each get their bytes.
    auto f = std::make_shared<Fixture>();
    f->name = "tiered_dedup";
    auto mem = std::make_unique<MemoryBackend>(kChunkBytes);
    auto dedup = std::make_unique<DedupBackend>(mem.get());
    auto tiered = std::make_unique<TieredBackend>(dedup.get(), 4 * kChunkBytes);
    f->backend = tiered.get();
    f->owned.push_back(std::move(tiered));
    f->owned.push_back(std::move(dedup));
    f->owned.push_back(std::move(mem));
    fixtures.push_back(std::move(f));
  }
  return fixtures;
}

// A working set spanning three contexts with varied chunk sizes.
std::vector<std::pair<ChunkKey, int64_t>> WorkingSet() {
  std::vector<std::pair<ChunkKey, int64_t>> set;
  for (int64_t ctx = 1; ctx <= 3; ++ctx) {
    for (int64_t layer = 0; layer < 2; ++layer) {
      for (int64_t c = 0; c < 4; ++c) {
        set.emplace_back(ChunkKey{ctx, layer, c}, kChunkBytes / 2 + 256 * c + 64 * layer);
      }
    }
  }
  return set;
}

TEST(ReadChunksTest, BatchMatchesSerialReadsOnEveryBackend) {
  for (const auto& f : MakeFixtures("serial_eq")) {
    SCOPED_TRACE(f->name);
    const auto set = WorkingSet();
    for (const auto& [key, bytes] : set) {
      const auto data = Payload(key, bytes);
      ASSERT_TRUE(f->backend->WriteChunk(key, data.data(), bytes));
    }
    // Serial reference pass on a twin set of buffers.
    std::vector<std::vector<char>> want(set.size());
    std::vector<int64_t> want_result(set.size());
    for (size_t i = 0; i < set.size(); ++i) {
      want[i].assign(kChunkBytes, '\0');
      want_result[i] =
          f->backend->ReadChunk(set[i].first, want[i].data(), kChunkBytes);
    }
    // Batched pass.
    std::vector<std::vector<char>> got(set.size());
    std::vector<ChunkReadRequest> reqs(set.size());
    for (size_t i = 0; i < set.size(); ++i) {
      got[i].assign(kChunkBytes, '\x7f');
      reqs[i] = ChunkReadRequest{set[i].first, got[i].data(), kChunkBytes, -1};
    }
    int completions = 0;
    f->backend->ReadChunks(reqs, [&completions] { ++completions; });
    EXPECT_EQ(1, completions) << "completion must run exactly once, before return";
    for (size_t i = 0; i < set.size(); ++i) {
      ASSERT_EQ(want_result[i], reqs[i].result) << "request " << i;
      ASSERT_GT(reqs[i].result, 0);
      ASSERT_EQ(0, std::memcmp(want[i].data(), got[i].data(),
                               static_cast<size_t>(reqs[i].result)))
          << "request " << i;
    }
  }
}

TEST(ReadChunksTest, PerRequestFailuresDoNotPoisonTheBatch) {
  for (const auto& f : MakeFixtures("partial")) {
    SCOPED_TRACE(f->name);
    const ChunkKey present{1, 0, 0};
    const ChunkKey absent{1, 0, 9};
    const ChunkKey big{2, 0, 0};
    const auto present_data = Payload(present, 1024);
    const auto big_data = Payload(big, 2048);
    ASSERT_TRUE(f->backend->WriteChunk(present, present_data.data(), 1024));
    ASSERT_TRUE(f->backend->WriteChunk(big, big_data.data(), 2048));
    f->backend->Quiesce();
    const StorageStats before = f->backend->Stats();

    std::vector<char> buf_ok(kChunkBytes, '\0');
    std::vector<char> buf_absent(kChunkBytes, '\x3c');
    std::vector<char> buf_short(128, '\x3c');  // big is 2048 bytes: short buffer
    std::vector<char> buf_ok2(kChunkBytes, '\0');
    ChunkReadRequest reqs[] = {
        {present, buf_ok.data(), kChunkBytes, -7},
        {absent, buf_absent.data(), kChunkBytes, -7},
        {big, buf_short.data(), 128, -7},
        {big, buf_ok2.data(), kChunkBytes, -7},  // duplicate key, adequate buffer
    };
    f->backend->ReadChunks(reqs);

    EXPECT_EQ(1024, reqs[0].result);
    EXPECT_EQ(0, std::memcmp(buf_ok.data(), present_data.data(), 1024));
    EXPECT_EQ(-1, reqs[1].result);
    EXPECT_EQ(-1, reqs[2].result);
    EXPECT_EQ(2048, reqs[3].result);
    EXPECT_EQ(0, std::memcmp(buf_ok2.data(), big_data.data(), 2048));
    // Failed requests wrote nothing.
    for (char c : buf_absent) {
      ASSERT_EQ('\x3c', c);
    }
    for (char c : buf_short) {
      ASSERT_EQ('\x3c', c);
    }
    // Stats conservation: exactly the two successes are counted, and hit bytes
    // (dram + cold) equal the bytes actually delivered.
    const StorageStats after = f->backend->Stats();
    EXPECT_EQ(before.total_reads + 2, after.total_reads);
    EXPECT_EQ(before.ReadBytes() + 1024 + 2048, after.ReadBytes());
  }
}

TEST(ReadChunksTest, StatsConservationAcrossHotAndColdTiers) {
  // Tiered specifics: a batch spanning DRAM hits and cold misses must split its hit
  // accounting exactly, and dram_hit_bytes + cold_hit_bytes == bytes delivered.
  for (const auto mode :
       {TieredOptions::Writeback::kSync, TieredOptions::Writeback::kAsync}) {
    SCOPED_TRACE(mode == TieredOptions::Writeback::kSync ? "sync" : "async");
    MemoryBackend cold(kChunkBytes);
    TieredOptions opts;
    opts.writeback = mode;
    opts.num_shards = 1;
    TieredBackend tiered(&cold, 4 * kChunkBytes, opts);
    // Two contexts of 3 chunks each; budget 4 chunks, so writing ctx 1 then ctx 2
    // evicts ctx 1 to the cold tier.
    for (int64_t ctx = 1; ctx <= 2; ++ctx) {
      for (int64_t c = 0; c < 3; ++c) {
        const ChunkKey key{ctx, 0, c};
        const auto data = Payload(key, kChunkBytes);
        ASSERT_TRUE(tiered.WriteChunk(key, data.data(), kChunkBytes));
      }
    }
    tiered.Quiesce();
    ASSERT_FALSE(tiered.IsDramResident(ChunkKey{1, 0, 0}));
    ASSERT_TRUE(tiered.IsDramResident(ChunkKey{2, 0, 0}));

    std::vector<std::vector<char>> bufs(6, std::vector<char>(kChunkBytes));
    std::vector<ChunkReadRequest> reqs;
    for (int64_t ctx = 1; ctx <= 2; ++ctx) {
      for (int64_t c = 0; c < 3; ++c) {
        reqs.push_back(ChunkReadRequest{
            ChunkKey{ctx, 0, c},
            bufs[static_cast<size_t>((ctx - 1) * 3 + c)].data(), kChunkBytes, -1});
      }
    }
    const StorageStats before = tiered.Stats();
    tiered.ReadChunks(reqs);
    const StorageStats after = tiered.Stats();
    for (size_t i = 0; i < reqs.size(); ++i) {
      ASSERT_EQ(kChunkBytes, reqs[i].result) << i;
      const auto want = Payload(reqs[i].key, kChunkBytes);
      ASSERT_EQ(0, std::memcmp(bufs[i].data(), want.data(),
                               static_cast<size_t>(kChunkBytes)))
          << i;
    }
    EXPECT_EQ(before.total_reads + 6, after.total_reads);
    EXPECT_EQ(before.dram_hits + 3, after.dram_hits);
    EXPECT_EQ(before.cold_hits + 3, after.cold_hits);
    EXPECT_EQ(before.ReadBytes() + 6 * kChunkBytes, after.ReadBytes());
    // The cold misses travelled as ONE batched submission, visible in their
    // promotion back into DRAM (LRU: ctx 1 is now the most recently used).
    EXPECT_TRUE(tiered.IsDramResident(ChunkKey{1, 0, 0}));
  }
}

TEST(ReadChunksTest, TieredBatchMakesOneColdRoundTrip) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  TieredOptions opts;
  opts.writeback = TieredOptions::Writeback::kSync;
  opts.num_shards = 1;
  TieredBackend tiered(&cold, 0, opts);  // 0 budget: everything lives cold
  std::vector<ChunkKey> keys;
  for (int64_t c = 0; c < 8; ++c) {
    const ChunkKey key{1, 0, c};
    const auto data = Payload(key, 512);
    ASSERT_TRUE(tiered.WriteChunk(key, data.data(), 512));
    keys.push_back(key);
  }
  tiered.Quiesce();
  const int64_t batches_before = cold.read_batches();
  std::vector<std::vector<char>> bufs(keys.size(), std::vector<char>(kChunkBytes));
  std::vector<ChunkReadRequest> reqs;
  for (size_t i = 0; i < keys.size(); ++i) {
    reqs.push_back(ChunkReadRequest{keys[i], bufs[i].data(), kChunkBytes, -1});
  }
  tiered.ReadChunks(reqs);
  for (const auto& req : reqs) {
    ASSERT_EQ(512, req.result);
  }
  EXPECT_EQ(batches_before + 1, cold.read_batches())
      << "all 8 cold misses must share one batched cold-tier round trip";
}

TEST(ReadChunksTest, InstrumentedForwardsBatchAndInjectsFailuresPerRequest) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend wrapped(&mem);
  const ChunkKey k1{1, 0, 0};
  const ChunkKey k2{1, 0, 1};
  const ChunkKey k3{1, 0, 2};
  const auto d1 = Payload(k1, 700);
  ChunkWriteRequest writes[] = {
      {k1, d1.data(), 700, false},
      {k2, d1.data(), 700, false},
      {k3, d1.data(), 700, false},
  };
  wrapped.FailNextWrites(1);
  EXPECT_FALSE(wrapped.WriteChunks(writes));
  EXPECT_FALSE(writes[0].ok);  // first request consumed the injected failure
  EXPECT_TRUE(writes[1].ok);
  EXPECT_TRUE(writes[2].ok);
  EXPECT_EQ(1, wrapped.injected_write_failures());
  EXPECT_EQ(1, wrapped.write_batches());
  EXPECT_FALSE(mem.HasChunk(k1));
  EXPECT_TRUE(mem.HasChunk(k2));

  std::vector<char> b2(kChunkBytes);
  std::vector<char> b3(kChunkBytes);
  ChunkReadRequest reads[] = {
      {k2, b2.data(), kChunkBytes, -1},
      {k3, b3.data(), kChunkBytes, -1},
  };
  wrapped.ReadChunks(reads);
  EXPECT_EQ(700, reads[0].result);
  EXPECT_EQ(700, reads[1].result);
  EXPECT_EQ(1, wrapped.read_batches());
}

TEST(ReadChunksTest, FileBackendConcurrentReadsOfSameChunkAreRaceFree) {
  // pread on a shared cached fd has no file position to race on: hammer one chunk
  // from several threads (serial and batched mixed) and require every read to come
  // back complete and correct.
  const fs::path dir = fs::temp_directory_path() / "read_chunks_pread_race";
  fs::remove_all(dir);
  {
    FileBackend file({(dir / "d0").string()}, kChunkBytes);
    const ChunkKey key{7, 3, 1};
    const auto data = Payload(key, kChunkBytes);
    ASSERT_TRUE(file.WriteChunk(key, data.data(), kChunkBytes));
    constexpr int kThreads = 4;
    constexpr int kIters = 200;
    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        std::vector<char> buf(kChunkBytes);
        for (int i = 0; i < kIters; ++i) {
          int64_t got;
          if (i % 2 == 0) {
            got = file.ReadChunk(key, buf.data(), kChunkBytes);
          } else {
            ChunkReadRequest req{key, buf.data(), kChunkBytes, -1};
            file.ReadChunks({&req, 1});
            got = req.result;
          }
          if (got != kChunkBytes ||
              std::memcmp(buf.data(), data.data(), static_cast<size_t>(kChunkBytes)) != 0) {
            ++failures[static_cast<size_t>(t)];
          }
        }
      });
    }
    for (auto& th : threads) {
      th.join();
    }
    for (int t = 0; t < kThreads; ++t) {
      EXPECT_EQ(0, failures[static_cast<size_t>(t)]) << "thread " << t;
    }
    const StorageStats stats = file.Stats();
    EXPECT_EQ(static_cast<int64_t>(kThreads) * kIters, stats.total_reads);
    EXPECT_EQ(static_cast<int64_t>(kThreads) * kIters * kChunkBytes, stats.ReadBytes());
  }
  fs::remove_all(dir);
}

TEST(ReadChunksTest, FileBackendFdCacheSurvivesOverwriteAndDelete) {
  const fs::path dir = fs::temp_directory_path() / "read_chunks_fd_inval";
  fs::remove_all(dir);
  {
    FileBackend file({(dir / "d0").string()}, kChunkBytes);
    const ChunkKey key{1, 0, 0};
    const auto v1 = Payload(key, 512);
    ASSERT_TRUE(file.WriteChunk(key, v1.data(), 512));
    std::vector<char> buf(kChunkBytes);
    ASSERT_EQ(512, file.ReadChunk(key, buf.data(), kChunkBytes));  // fd now cached
    // Overwrite with different bytes; the next read must observe them.
    const auto v2 = Payload(ChunkKey{9, 9, 9}, 640);
    ASSERT_TRUE(file.WriteChunk(key, v2.data(), 640));
    ASSERT_EQ(640, file.ReadChunk(key, buf.data(), kChunkBytes));
    EXPECT_EQ(0, std::memcmp(buf.data(), v2.data(), 640));
    // Delete: reads fail and the context directory is actually gone.
    file.DeleteContext(key.context_id);
    EXPECT_EQ(-1, file.ReadChunk(key, buf.data(), kChunkBytes));
    EXPECT_FALSE(fs::exists(dir / "d0" / "ctx1"));
  }
  fs::remove_all(dir);
}

TEST(ReadChunksTest, DefaultBaseImplementationServesAnyBackend) {
  // The base-class sequential fallback must satisfy the same contract (a custom
  // backend that never overrides ReadChunks still works).
  class Minimal : public MemoryBackend {
   public:
    using MemoryBackend::MemoryBackend;
    void ReadChunks(std::span<ChunkReadRequest> requests,
                    const BatchCompletion& done = {}) const override {
      StorageBackend::ReadChunks(requests, done);  // force the base path
    }
  };
  Minimal backend(kChunkBytes);
  const ChunkKey key{1, 0, 0};
  const auto data = Payload(key, 900);
  ASSERT_TRUE(backend.WriteChunk(key, data.data(), 900));
  std::vector<char> buf(kChunkBytes);
  ChunkReadRequest reqs[] = {
      {key, buf.data(), kChunkBytes, -1},
      {ChunkKey{2, 0, 0}, buf.data(), kChunkBytes, -1},
  };
  bool completed = false;
  backend.ReadChunks(reqs, [&completed] { completed = true; });
  EXPECT_TRUE(completed);
  EXPECT_EQ(900, reqs[0].result);
  EXPECT_EQ(-1, reqs[1].result);
}

}  // namespace
}  // namespace hcache
