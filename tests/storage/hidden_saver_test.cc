#include "src/storage/hidden_saver.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <numeric>

#include "src/common/rng.h"
#include "src/storage/file_backend.h"
#include "src/common/thread_pool.h"

namespace hcache {
namespace {

class HiddenSaverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(3, 16, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_saver_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    store_ = std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / "d0").string(), (base_ / "d1").string()},
        /*chunk_bytes=*/1 << 20);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  // Feeds `total` tokens through the sink in steps of `step`, all layers.
  Tensor FeedTokens(HiddenStateSink* sink, int64_t total, int64_t step, uint64_t seed) {
    Rng rng(seed);
    Tensor all({total, cfg_.hidden_dim});
    for (int64_t i = 0; i < all.numel(); ++i) {
      all.at(i) = static_cast<float>(rng.NextNormal(0, 1));
    }
    for (int64_t start = 0; start < total; start += step) {
      const int64_t n = std::min(step, total - start);
      Tensor batch({n, cfg_.hidden_dim});
      std::vector<int32_t> pos(static_cast<size_t>(n));
      std::iota(pos.begin(), pos.end(), static_cast<int32_t>(start));
      for (int64_t i = 0; i < n; ++i) {
        std::copy(all.row(start + i), all.row(start + i) + cfg_.hidden_dim, batch.row(i));
      }
      for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
        sink->OnLayerInput(layer, batch, pos.data(), n);
      }
    }
    return all;
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
};

TEST_F(HiddenSaverTest, RoundTripExactMultipleOfChunk) {
  HiddenStateWriter writer(store_.get(), nullptr, cfg_, /*context_id=*/1,
                           /*chunk_tokens=*/8);
  const Tensor all = FeedTokens(&writer, 16, 16, 1);
  writer.Seal();
  HiddenStateReader reader(store_.get(), cfg_, 8);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor got = reader.ReadLayer(1, layer, 16);
    EXPECT_TRUE(Tensor::BitwiseEqual(got, all)) << "layer " << layer;
  }
}

TEST_F(HiddenSaverTest, RoundTripWithPartialFinalChunk) {
  HiddenStateWriter writer(store_.get(), nullptr, cfg_, 2, 8);
  const Tensor all = FeedTokens(&writer, 13, 13, 2);
  writer.Seal();
  HiddenStateReader reader(store_.get(), cfg_, 8);
  Tensor got = reader.ReadLayer(2, 0, 13);
  EXPECT_TRUE(Tensor::BitwiseEqual(got, all));
}

TEST_F(HiddenSaverTest, AutoregressiveSingleTokenAppends) {
  // Decode-phase pattern: one token at a time across many steps.
  HiddenStateWriter writer(store_.get(), nullptr, cfg_, 3, 4);
  const Tensor all = FeedTokens(&writer, 11, 1, 3);
  writer.Seal();
  HiddenStateReader reader(store_.get(), cfg_, 4);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    EXPECT_TRUE(Tensor::BitwiseEqual(reader.ReadLayer(3, layer, 11), all));
  }
  EXPECT_EQ(writer.tokens_saved(), 11);
}

TEST_F(HiddenSaverTest, BackgroundFlushMatchesSynchronous) {
  ThreadPool pool(4);
  HiddenStateWriter async_writer(store_.get(), &pool, cfg_, 10, 8);
  const Tensor all = FeedTokens(&async_writer, 40, 7, 4);
  async_writer.Seal();  // drains the pool

  HiddenStateWriter sync_writer(store_.get(), nullptr, cfg_, 11, 8);
  FeedTokens(&sync_writer, 40, 7, 4);
  sync_writer.Seal();

  HiddenStateReader reader(store_.get(), cfg_, 8);
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    Tensor a = reader.ReadLayer(10, layer, 40);
    Tensor b = reader.ReadLayer(11, layer, 40);
    EXPECT_TRUE(Tensor::BitwiseEqual(a, all));
    EXPECT_TRUE(Tensor::BitwiseEqual(a, b));
  }
}

TEST_F(HiddenSaverTest, SealedChunksFlushEagerlyBeforeSeal) {
  HiddenStateWriter writer(store_.get(), nullptr, cfg_, 5, 4);
  FeedTokens(&writer, 9, 9, 5);  // 2 full chunks + 1 token staged per layer
  // Full chunks are already durable before Seal.
  EXPECT_TRUE(store_->HasChunk({5, 0, 0}));
  EXPECT_TRUE(store_->HasChunk({5, 0, 1}));
  EXPECT_FALSE(store_->HasChunk({5, 0, 2}));
  writer.Seal();
  EXPECT_TRUE(store_->HasChunk({5, 0, 2}));
}

TEST_F(HiddenSaverTest, ContextCompleteDetectsMissingTail) {
  HiddenStateWriter writer(store_.get(), nullptr, cfg_, 6, 4);
  FeedTokens(&writer, 10, 10, 6);
  HiddenStateReader reader(store_.get(), cfg_, 4);
  // Partial chunk (tokens 8..9) not yet sealed.
  EXPECT_TRUE(reader.ContextComplete(6, 8));
  EXPECT_FALSE(reader.ContextComplete(6, 10));
  writer.Seal();
  EXPECT_TRUE(reader.ContextComplete(6, 10));
  EXPECT_FALSE(reader.ContextComplete(7, 1));  // unknown context
}

TEST_F(HiddenSaverTest, DirectWriterProducesSameDataAndCountsWrites) {
  DirectHiddenWriter direct(store_.get(), cfg_, 20, 4);
  const Tensor all = FeedTokens(&direct, 12, 3, 6);
  direct.Seal();
  // 12 tokens x 3 layers fed in batches of 3 -> 12 per layer = 36 row writes.
  EXPECT_EQ(direct.synchronous_writes(), 12 * cfg_.num_layers);
  HiddenStateReader reader(store_.get(), cfg_, 4);
  EXPECT_TRUE(Tensor::BitwiseEqual(reader.ReadLayer(20, 1, 12), all));
}

TEST_F(HiddenSaverTest, DestructorSealsUnflushedState) {
  {
    HiddenStateWriter writer(store_.get(), nullptr, cfg_, 30, 8);
    FeedTokens(&writer, 5, 5, 7);
    // No explicit Seal.
  }
  HiddenStateReader reader(store_.get(), cfg_, 8);
  EXPECT_TRUE(reader.ContextComplete(30, 5));
}

}  // namespace
}  // namespace hcache
