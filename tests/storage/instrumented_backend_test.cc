// InstrumentedBackend's seeded latency distributions: the jitter sampler is a pure
// function of (seed, draw), bounded by the configured span, and mean-preserving —
// so a heterogeneous simulated fleet's per-node service times replay exactly while
// never touching stored bytes.
#include "src/storage/instrumented_backend.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/storage/memory_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 4 * 1024;

TEST(InstrumentedJitterTest, SamplerIsDeterministicPerSeedAndDraw) {
  for (uint64_t draw = 0; draw < 64; ++draw) {
    EXPECT_EQ(InstrumentedBackend::JitteredLatencyMicros(100, 40, 7, draw),
              InstrumentedBackend::JitteredLatencyMicros(100, 40, 7, draw));
  }
  // Different seeds give different sequences (not necessarily every draw, but the
  // sequences as a whole must diverge — equal sequences would mean the seed is dead).
  int diffs = 0;
  for (uint64_t draw = 0; draw < 64; ++draw) {
    diffs += InstrumentedBackend::JitteredLatencyMicros(100, 40, 7, draw) !=
             InstrumentedBackend::JitteredLatencyMicros(100, 40, 8, draw);
  }
  EXPECT_GT(diffs, 0);
}

TEST(InstrumentedJitterTest, SamplesStayInsideTheSpanAndAboveZero) {
  constexpr int64_t kMean = 100, kJitter = 40;
  for (uint64_t draw = 0; draw < 4096; ++draw) {
    const int64_t lat =
        InstrumentedBackend::JitteredLatencyMicros(kMean, kJitter, 0x6a77, draw);
    EXPECT_GE(lat, kMean - kJitter);
    EXPECT_LE(lat, kMean + kJitter);
  }
  // Jitter wider than the mean clamps at zero instead of going negative.
  for (uint64_t draw = 0; draw < 4096; ++draw) {
    EXPECT_GE(InstrumentedBackend::JitteredLatencyMicros(10, 50, 0x6a77, draw), 0);
  }
}

TEST(InstrumentedJitterTest, ZeroJitterReproducesTheFixedLatency) {
  for (uint64_t draw = 0; draw < 16; ++draw) {
    EXPECT_EQ(InstrumentedBackend::JitteredLatencyMicros(250, 0, 123, draw), 250);
  }
}

TEST(InstrumentedJitterTest, MeanIsApproximatelyPreserved) {
  constexpr int64_t kMean = 200, kJitter = 80;
  constexpr int kDraws = 20000;
  double sum = 0;
  for (uint64_t draw = 0; draw < kDraws; ++draw) {
    sum += static_cast<double>(
        InstrumentedBackend::JitteredLatencyMicros(kMean, kJitter, 42, draw));
  }
  const double mean = sum / kDraws;
  // Uniform over [-80, +80]: the empirical mean over 20k draws sits within a few
  // micros of the setpoint.
  EXPECT_NEAR(mean, static_cast<double>(kMean), 3.0);
}

TEST(InstrumentedJitterTest, DistinctSeedsModelHeterogeneousNodes) {
  // Two "nodes" with the same mean but different seeds produce different latency
  // traces — the fleet is heterogeneous — yet each node's trace replays exactly.
  std::vector<int64_t> node_a, node_b;
  for (uint64_t draw = 0; draw < 256; ++draw) {
    node_a.push_back(InstrumentedBackend::JitteredLatencyMicros(150, 60, 1, draw));
    node_b.push_back(InstrumentedBackend::JitteredLatencyMicros(150, 60, 2, draw));
  }
  EXPECT_NE(node_a, node_b);
  std::vector<int64_t> replay_a;
  for (uint64_t draw = 0; draw < 256; ++draw) {
    replay_a.push_back(InstrumentedBackend::JitteredLatencyMicros(150, 60, 1, draw));
  }
  EXPECT_EQ(node_a, replay_a);
}

TEST(InstrumentedJitterTest, JitterNeverAffectsStoredBytes) {
  // The jitter plane is timing-only: data written through a jittered wrapper reads
  // back bit-exact, and counters advance as without jitter.
  MemoryBackend inner(kChunkBytes);
  InstrumentedBackend wrapped(&inner);
  wrapped.set_io_latency_micros(1);
  wrapped.set_io_latency_jitter(/*jitter_micros=*/1, /*seed=*/0xfeed);

  std::vector<char> data(kChunkBytes);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 31 + 7);
  }
  const ChunkKey key{1, 0, 0};
  ASSERT_TRUE(wrapped.WriteChunk(key, data.data(), kChunkBytes));
  std::vector<char> back(kChunkBytes);
  ASSERT_EQ(wrapped.ReadChunk(key, back.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(std::memcmp(data.data(), back.data(), static_cast<size_t>(kChunkBytes)), 0);
}

}  // namespace
}  // namespace hcache
