// Corruption-injection suite: the durability plane's core guarantee is that a
// corrupted chunk NEVER produces wrong KV state — every read path detects damage
// (distinct kChunkCorrupt status, crc_failures accounting), and the restore path
// falls back to recomputation that lands bit-identical KV.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/functional_engine.h"
#include "src/core/partition.h"
#include "src/model/transformer.h"
#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 64 * 1024;

// A sealed v2 chunk with deterministic FP32 payload.
std::vector<uint8_t> SealedChunk(int64_t rows, int64_t cols, uint8_t salt) {
  std::vector<uint8_t> chunk(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, rows, cols)));
  for (size_t i = sizeof(ChunkHeader); i < chunk.size(); ++i) {
    chunk[i] = static_cast<uint8_t>(salt + i * 13);
  }
  WriteChunkHeader(ChunkCodec::kFp32, rows, cols, chunk.data());
  return chunk;
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_corruption_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::vector<std::string> Dirs() {
    return {(base_ / "d0").string(), (base_ / "d1").string()};
  }

  std::filesystem::path base_;
};

// Shared conformance body: a bit-flipped chunk reads back kChunkCorrupt (not -1,
// not garbage), crc_failures increments, the unverified escape hatch still sees
// the bytes, and undamaged chunks are unaffected.
void ExpectCorruptionDetected(StorageBackend* backend) {
  InstrumentedBackend chaos(backend);
  const auto good = SealedChunk(16, 32, 7);
  const int64_t bytes = static_cast<int64_t>(good.size());
  ASSERT_TRUE(chaos.WriteChunk({1, 0, 0}, good.data(), bytes));
  ASSERT_TRUE(chaos.WriteChunk({1, 0, 1}, good.data(), bytes));

  ASSERT_TRUE(chaos.CorruptChunk({1, 0, 0}, /*bit_offset=*/8 * (sizeof(ChunkHeader) + 3)));
  const int64_t base_failures = backend->Stats().crc_failures;

  std::vector<uint8_t> buf(static_cast<size_t>(bytes));
  EXPECT_EQ(backend->ReadChunk({1, 0, 0}, buf.data(), bytes), kChunkCorrupt);
  EXPECT_EQ(backend->Stats().crc_failures, base_failures + 1);
  // Detected-corrupt is NOT a miss: the chunk exists, it is just untrustworthy.
  EXPECT_TRUE(backend->HasChunk({1, 0, 0}));
  // Forensics path still reads the raw bytes.
  EXPECT_EQ(backend->ReadChunkUnverified({1, 0, 0}, buf.data(), bytes), bytes);
  // The sibling chunk is untouched and verifies.
  EXPECT_EQ(backend->ReadChunk({1, 0, 1}, buf.data(), bytes), bytes);
  EXPECT_EQ(std::memcmp(buf.data(), good.data(), static_cast<size_t>(bytes)), 0);

  // Batched read: only the damaged request fails, and with the distinct status.
  std::vector<uint8_t> buf2(static_cast<size_t>(bytes));
  std::vector<ChunkReadRequest> reqs = {
      {{1, 0, 0}, buf.data(), bytes, -1},
      {{1, 0, 1}, buf2.data(), bytes, -1},
  };
  backend->ReadChunks(reqs);
  EXPECT_EQ(reqs[0].result, kChunkCorrupt);
  EXPECT_EQ(reqs[1].result, bytes);
  EXPECT_EQ(backend->Stats().crc_failures, base_failures + 2);

  // Truncation (lost tail) is detected the same way.
  ASSERT_TRUE(chaos.TruncateChunk({1, 0, 1}, bytes / 2));
  EXPECT_EQ(backend->ReadChunk({1, 0, 1}, buf.data(), bytes), kChunkCorrupt);
}

TEST_F(CorruptionTest, MemoryBackendDetectsDamage) {
  MemoryBackend backend(kChunkBytes);
  ExpectCorruptionDetected(&backend);
}

TEST_F(CorruptionTest, FileBackendDetectsDamage) {
  FileBackend backend(Dirs(), kChunkBytes);
  ExpectCorruptionDetected(&backend);
}

TEST_F(CorruptionTest, TieredBackendDetectsDamageInTheColdTier) {
  MemoryBackend cold_mem(kChunkBytes);
  InstrumentedBackend cold(&cold_mem);
  TieredOptions opts;
  opts.writeback = TieredOptions::Writeback::kSync;
  TieredBackend tiered(&cold, 2 * kChunkBytes, opts);

  const auto good = SealedChunk(16, 32, 3);
  const int64_t bytes = static_cast<int64_t>(good.size());
  // Pad writes so ctx 1's chunk is evicted to cold and leaves DRAM.
  std::vector<char> pad(kChunkBytes, 'p');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, good.data(), bytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, pad.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 1}, pad.data(), kChunkBytes));
  tiered.Quiesce();
  ASSERT_FALSE(tiered.IsDramResident({1, 0, 0}));

  // Rot the at-rest cold copy.
  ASSERT_TRUE(cold.CorruptChunk({1, 0, 0}, 8 * (sizeof(ChunkHeader) + 9) + 1));

  std::vector<uint8_t> buf(static_cast<size_t>(bytes));
  EXPECT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), bytes), kChunkCorrupt);
  EXPECT_GE(tiered.Stats().crc_failures, 1);
  // A corrupt cold chunk must never be promoted into the trusted hot tier.
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));

  // Batched path propagates the distinct status too.
  std::vector<ChunkReadRequest> reqs = {{{1, 0, 0}, buf.data(), bytes, -1}};
  tiered.ReadChunks(reqs);
  EXPECT_EQ(reqs[0].result, kChunkCorrupt);
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));

  // The forensics read falls through to the cold tier's raw bytes.
  EXPECT_EQ(tiered.ReadChunkUnverified({1, 0, 0}, buf.data(), bytes), bytes);
}

// The acceptance-critical end-to-end property: with a chunk corrupted at rest,
// restoration REFUSES (returns false, sequence left evicted) rather than producing
// wrong KV — and recompute-from-tokens then lands KV bit-identical to a
// never-evicted reference. No wrong answer, no crash.
TEST_F(CorruptionTest, CorruptHiddenChunkForcesRecomputeWithIdenticalKv) {
  const ModelConfig cfg = ModelConfig::TinyLlama(/*layers=*/4, /*hidden=*/64, /*heads=*/4);
  const ModelWeights weights = ModelWeights::Random(cfg, /*seed=*/42);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, /*num_blocks=*/64, /*block_tokens=*/8));

  FileBackend store(Dirs(), /*chunk_bytes=*/1 << 20);
  InstrumentedBackend chaos(&store);
  ThreadPool flush_pool(2);
  FunctionalHCache engine(&model, &chaos, &flush_pool, /*chunk_tokens=*/8);

  const std::vector<int32_t> prompt = {11, 42, 7, 99, 3, 250, 17, 64, 128, 5,
                                       61, 12, 93, 30, 4, 201};
  const int64_t ctx_id = 1;
  PagedKvSequence seq(&pool);
  HiddenStateSink* sink = engine.BeginCapture(ctx_id);
  model.Forward(prompt, &seq, sink);
  engine.SealContext(ctx_id);

  // Reference: the same history computed fresh, never evicted.
  PagedKvSequence ref(&pool);
  model.Forward(prompt, &ref);

  const int64_t n = seq.num_tokens();
  ASSERT_EQ(n, static_cast<int64_t>(prompt.size()));
  seq.Evict();

  // Rot one hidden-state chunk at rest (payload bit flip in layer 2, chunk 0).
  ASSERT_TRUE(chaos.CorruptChunk({ctx_id, 2, 0}, 8 * (sizeof(ChunkHeader) + 11) + 5));

  PartitionScheme scheme;
  scheme.layers_hidden = cfg.num_layers;
  scheme.layers_other = 0;
  scheme.complement = ComplementMethod::kNone;

  // CanRestore vets sizes only — the damage is found at read time, and the restore
  // refuses instead of decoding garbage into the KV cache.
  EXPECT_TRUE(engine.CanRestore(ctx_id, scheme, n));
  EXPECT_FALSE(engine.RestoreContext(ctx_id, scheme, /*history_tokens=*/{}, &seq));
  EXPECT_FALSE(seq.has_kv());         // left evicted...
  EXPECT_EQ(seq.num_tokens(), n);     // ...with the history length intact
  EXPECT_GE(store.Stats().crc_failures, 1);

  // Fallback: recompute the whole history from tokens. Bit-identical KV.
  seq.ResetForRestore();
  ASSERT_TRUE(seq.EnsureCapacity(n));
  model.Forward(prompt, &seq);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k_ref, v_ref, k_got, v_got;
    ref.ReadKv(layer, 0, n, &k_ref, &v_ref);
    seq.ReadKv(layer, 0, n, &k_got, &v_got);
    EXPECT_TRUE(Tensor::BitwiseEqual(k_ref, k_got)) << "layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(v_ref, v_got)) << "layer " << layer;
  }
}

TEST_F(CorruptionTest, CorruptKvChunkFailsRestoreGracefully) {
  const ModelConfig cfg = ModelConfig::TinyLlama(/*layers=*/4, /*hidden=*/64, /*heads=*/4);
  const ModelWeights weights = ModelWeights::Random(cfg, /*seed=*/11);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, /*num_blocks=*/64, /*block_tokens=*/8));

  MemoryBackend store(1 << 20);
  InstrumentedBackend chaos(&store);
  FunctionalHCache engine(&model, &chaos, /*flush_pool=*/nullptr, /*chunk_tokens=*/8);

  const std::vector<int32_t> prompt = {5, 9, 31, 77, 2, 140, 66, 8};
  const int64_t ctx_id = 3;
  PagedKvSequence seq(&pool);
  HiddenStateSink* sink = engine.BeginCapture(ctx_id);
  model.Forward(prompt, &seq, sink);
  engine.SealContext(ctx_id);

  // KV-offload partition: the last two layers persist their KV directly.
  PartitionScheme scheme;
  scheme.layers_hidden = 2;
  scheme.layers_other = 2;
  scheme.complement = ComplementMethod::kKvOffload;
  engine.SaveKvLayers(ctx_id, seq, {2, 3});

  const int64_t n = seq.num_tokens();
  seq.Evict();

  // Rot a KV chunk (layer-key namespace 1'000'000 + layer).
  ASSERT_TRUE(chaos.CorruptChunk({ctx_id, 1'000'000 + 3, 0},
                                 8 * (sizeof(ChunkHeader) + 2)));

  EXPECT_FALSE(engine.RestoreContext(ctx_id, scheme, /*history_tokens=*/{}, &seq));
  EXPECT_FALSE(seq.has_kv());
  EXPECT_EQ(seq.num_tokens(), n);
}

TEST_F(CorruptionTest, RestoreSucceedsVerifiedWhenUndamaged) {
  // Control for the tests above: the same pipeline with no injected damage restores
  // bit-identically THROUGH the verified read path (crc_checked_bytes > 0 proves
  // the CRCs were actually computed, not skipped).
  const ModelConfig cfg = ModelConfig::TinyLlama(/*layers=*/4, /*hidden=*/64, /*heads=*/4);
  const ModelWeights weights = ModelWeights::Random(cfg, /*seed=*/42);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, /*num_blocks=*/64, /*block_tokens=*/8));
  FileBackend store(Dirs(), 1 << 20);
  ThreadPool flush_pool(2);
  FunctionalHCache engine(&model, &store, &flush_pool, /*chunk_tokens=*/8);

  const std::vector<int32_t> prompt = {11, 42, 7, 99, 3, 250, 17, 64, 128, 5};
  PagedKvSequence seq(&pool);
  HiddenStateSink* sink = engine.BeginCapture(1);
  model.Forward(prompt, &seq, sink);
  engine.SealContext(1);

  PagedKvSequence ref(&pool);
  model.Forward(prompt, &ref);

  const int64_t n = seq.num_tokens();
  seq.Evict();
  PartitionScheme scheme;
  scheme.layers_hidden = cfg.num_layers;
  scheme.layers_other = 0;
  scheme.complement = ComplementMethod::kNone;
  ASSERT_TRUE(engine.RestoreContext(1, scheme, {}, &seq));
  EXPECT_GT(store.Stats().crc_checked_bytes, 0);
  EXPECT_EQ(store.Stats().crc_failures, 0);
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k_ref, v_ref, k_got, v_got;
    ref.ReadKv(layer, 0, n, &k_ref, &v_ref);
    seq.ReadKv(layer, 0, n, &k_got, &v_got);
    EXPECT_TRUE(Tensor::BitwiseEqual(k_ref, k_got)) << "layer " << layer;
    EXPECT_TRUE(Tensor::BitwiseEqual(v_ref, v_got)) << "layer " << layer;
  }
}

}  // namespace
}  // namespace hcache
