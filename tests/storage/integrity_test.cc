// The durability plane's integrity primitives: CRC32C kernel correctness across
// SIMD tiers, v2 header sealing, and VerifyChunkBytes' three-way verdict — the
// contract every backend's verified read path is built on.
#include "src/storage/integrity.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <random>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/codec_simd.h"
#include "src/storage/layout.h"

namespace hcache {
namespace {

// Restores whatever tier was active when the test started (other suites in this
// process depend on the default dispatch).
class TierGuard {
 public:
  TierGuard() : saved_(ActiveSimdTier()) {}
  ~TierGuard() { ForceSimdTier(saved_); }

 private:
  SimdTier saved_;
};

TEST(Crc32cTest, KnownVectors) {
  TierGuard guard;
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    ForceSimdTier(static_cast<SimdTier>(t));
    SCOPED_TRACE(SimdTierName(ActiveSimdTier()));
    // The canonical Castagnoli check value.
    EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
    EXPECT_EQ(Crc32c("", 0), 0u);
    // RFC 3720 (iSCSI) test vectors.
    const std::vector<uint8_t> zeros(32, 0x00);
    EXPECT_EQ(Crc32c(zeros.data(), 32), 0x8A9136AAu);
    const std::vector<uint8_t> ones(32, 0xFF);
    EXPECT_EQ(Crc32c(ones.data(), 32), 0x62A8AB43u);
  }
}

TEST(Crc32cTest, TiersMatchScalarOnRaggedLengths) {
  TierGuard guard;
  std::mt19937 rng(20260807);
  std::vector<uint8_t> buf(4096 + 9);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng());
  }
  const CodecKernels& scalar = CodecKernelsFor(SimdTier::kScalar);
  for (const int64_t n : {int64_t{0}, int64_t{1}, int64_t{7}, int64_t{8}, int64_t{9},
                          int64_t{63}, int64_t{64}, int64_t{65}, int64_t{1000},
                          static_cast<int64_t>(buf.size())}) {
    const uint32_t want = scalar.crc32c(0xFFFFFFFFu, buf.data(), n) ^ 0xFFFFFFFFu;
    for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
      ForceSimdTier(static_cast<SimdTier>(t));
      EXPECT_EQ(Crc32c(buf.data(), n), want)
          << SimdTierName(ActiveSimdTier()) << " n=" << n;
      // Unaligned start (the payload begins 24 bytes into the chunk).
      if (n + 3 <= static_cast<int64_t>(buf.size())) {
        const uint32_t want_off =
            scalar.crc32c(0xFFFFFFFFu, buf.data() + 3, n) ^ 0xFFFFFFFFu;
        EXPECT_EQ(Crc32c(buf.data() + 3, n), want_off)
            << SimdTierName(ActiveSimdTier()) << " n=" << n << " off=3";
      }
    }
  }
}

TEST(Crc32cTest, KernelStateChainsAcrossSplits) {
  // The kernel operates on raw shift-register state, so CRC(a ++ b) must equal
  // feeding a then b without re-initializing — what an incremental verifier does.
  std::mt19937 rng(7);
  std::vector<uint8_t> buf(1 << 12);
  for (auto& b : buf) {
    b = static_cast<uint8_t>(rng());
  }
  const uint32_t whole = Crc32c(buf.data(), static_cast<int64_t>(buf.size()));
  const CodecKernels& k = ActiveCodecKernels();
  for (const size_t split : {size_t{0}, size_t{1}, size_t{100}, buf.size() / 2,
                             buf.size() - 1, buf.size()}) {
    uint32_t crc = 0xFFFFFFFFu;
    crc = k.crc32c(crc, buf.data(), static_cast<int64_t>(split));
    crc = k.crc32c(crc, buf.data() + split, static_cast<int64_t>(buf.size() - split));
    EXPECT_EQ(crc ^ 0xFFFFFFFFu, whole) << "split=" << split;
  }
}

// A sealed v2 chunk: `rows` x `cols` FP32 payload with deterministic contents.
std::vector<uint8_t> MakeChunk(int64_t rows, int64_t cols, uint32_t seed = 1) {
  std::vector<uint8_t> chunk(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, rows, cols)));
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  std::vector<float> row(static_cast<size_t>(cols));
  for (int64_t r = 0; r < rows; ++r) {
    for (auto& v : row) {
      v = dist(rng);
    }
    EncodeRowsInto(ChunkCodec::kFp32, row.data(), cols, 1, cols,
                   chunk.data() + sizeof(ChunkHeader) +
                       r * CodecRowBytes(ChunkCodec::kFp32, cols));
  }
  WriteChunkHeader(ChunkCodec::kFp32, rows, cols, chunk.data());
  return chunk;
}

TEST(VerifyChunkBytesTest, SealedV2ChunkVerifies) {
  const auto chunk = MakeChunk(16, 32);
  const int64_t bytes = static_cast<int64_t>(chunk.size());

  ChunkInfo info;
  ASSERT_TRUE(InspectChunk(chunk.data(), bytes, 0, &info));
  EXPECT_TRUE(info.has_crc);
  EXPECT_EQ(info.header_bytes, static_cast<int64_t>(sizeof(ChunkHeader)));
  EXPECT_EQ(info.payload_crc32c,
            Crc32c(chunk.data() + sizeof(ChunkHeader), bytes - sizeof(ChunkHeader)));

  int64_t checked = 0;
  EXPECT_EQ(VerifyChunkBytes(chunk.data(), bytes, &checked), ChunkVerdict::kOkVerified);
  EXPECT_EQ(checked, bytes - static_cast<int64_t>(sizeof(ChunkHeader)));
}

TEST(VerifyChunkBytesTest, EveryPayloadBitFlipIsDetectedOnASmallChunk) {
  // Exhaustive over a small chunk: CRC32C catches ALL single-bit payload flips.
  const auto clean = MakeChunk(2, 4);
  const int64_t bytes = static_cast<int64_t>(clean.size());
  for (size_t byte = sizeof(ChunkHeader); byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto chunk = clean;
      chunk[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_EQ(VerifyChunkBytes(chunk.data(), bytes, nullptr), ChunkVerdict::kCorrupt)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(VerifyChunkBytesTest, HeaderFieldFlipIsDetectedByHeaderCrc) {
  const auto clean = MakeChunk(16, 32);
  const int64_t bytes = static_cast<int64_t>(clean.size());
  // Flip bits across the descriptor fields (version/codec/rows/cols) and the stored
  // payload CRC itself — the header CRC covers all of them.
  for (const size_t byte : {size_t{4}, size_t{6}, size_t{8}, size_t{12}, size_t{16}}) {
    auto chunk = clean;
    chunk[byte] ^= 0x10;
    EXPECT_EQ(VerifyChunkBytes(chunk.data(), bytes, nullptr), ChunkVerdict::kCorrupt)
        << "byte " << byte;
  }
}

TEST(VerifyChunkBytesTest, TruncationIsDetected) {
  const auto chunk = MakeChunk(16, 32);
  for (const int64_t keep : {static_cast<int64_t>(chunk.size()) - 1,
                             static_cast<int64_t>(chunk.size()) / 2,
                             static_cast<int64_t>(sizeof(ChunkHeader)),
                             kChunkHeaderBytesV1, int64_t{5}}) {
    EXPECT_EQ(VerifyChunkBytes(chunk.data(), keep, nullptr), ChunkVerdict::kCorrupt)
        << "kept " << keep;
  }
}

TEST(VerifyChunkBytesTest, OpaqueBytesStayUnverified) {
  // No magic -> not a format claim -> never "corrupt" (the serving plane stores
  // opaque descriptor blobs through the same backends).
  std::vector<uint8_t> blob(512, 0xAB);
  EXPECT_EQ(VerifyChunkBytes(blob.data(), 512, nullptr), ChunkVerdict::kOkUnverified);
  // Legacy headerless FP32 rows look like this too.
  std::vector<float> legacy(64, 1.5f);
  EXPECT_EQ(VerifyChunkBytes(legacy.data(), 64 * 4, nullptr),
            ChunkVerdict::kOkUnverified);
  EXPECT_EQ(VerifyChunkBytes(nullptr, 0, nullptr), ChunkVerdict::kOkUnverified);
}

TEST(VerifyChunkBytesTest, V1HeaderParsesButStaysUnverified) {
  // A 16-byte v1 chunk written by an older build: readable, but carries no CRC.
  const int64_t rows = 4, cols = 8;
  const int64_t stride = CodecRowBytes(ChunkCodec::kFp32, cols);
  std::vector<uint8_t> chunk(static_cast<size_t>(kChunkHeaderBytesV1 + rows * stride),
                             0x3C);
  const uint32_t magic = kChunkMagic;
  const uint16_t version = 1;
  const uint8_t codec = 0;  // kFp32
  const uint32_t rows32 = static_cast<uint32_t>(rows), cols32 = static_cast<uint32_t>(cols);
  std::memcpy(chunk.data() + 0, &magic, 4);
  std::memcpy(chunk.data() + 4, &version, 2);
  chunk[6] = codec;
  chunk[7] = 0;
  std::memcpy(chunk.data() + 8, &rows32, 4);
  std::memcpy(chunk.data() + 12, &cols32, 4);

  ChunkInfo info;
  ASSERT_TRUE(InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), 0, &info));
  EXPECT_FALSE(info.has_crc);
  EXPECT_EQ(info.header_bytes, kChunkHeaderBytesV1);
  EXPECT_EQ(info.rows, rows);
  EXPECT_EQ(info.cols, cols);
  EXPECT_EQ(VerifyChunkBytes(chunk.data(), static_cast<int64_t>(chunk.size()), nullptr),
            ChunkVerdict::kOkUnverified);
}

TEST(VerifyChunkBytesTest, VerdictStableAcrossSimdTiers) {
  TierGuard guard;
  const auto clean = MakeChunk(16, 32);
  auto corrupt = clean;
  corrupt[sizeof(ChunkHeader) + 17] ^= 0x04;
  for (int t = 0; t <= static_cast<int>(DetectedSimdTier()); ++t) {
    ForceSimdTier(static_cast<SimdTier>(t));
    SCOPED_TRACE(SimdTierName(ActiveSimdTier()));
    EXPECT_EQ(VerifyChunkBytes(clean.data(), static_cast<int64_t>(clean.size()), nullptr),
              ChunkVerdict::kOkVerified);
    EXPECT_EQ(
        VerifyChunkBytes(corrupt.data(), static_cast<int64_t>(corrupt.size()), nullptr),
        ChunkVerdict::kCorrupt);
  }
}

}  // namespace
}  // namespace hcache
