// The PR 5 concurrency plane of TieredBackend: asynchronous write-back draining,
// drain-queue rescues, writer backpressure, eviction-failure rollback accounting,
// delete-vs-drain ordering, and — the load-bearing property — that no lock is ever
// held across cold-tier IO (probed by re-entering the tier from another thread from
// INSIDE an instrumented cold backend's read/write). Deterministic LRU/write-back
// behavior is pinned separately in tiered_backend_test.cc (kSync mode).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 1024;

TieredOptions AsyncOpts(int num_shards = 1) {
  TieredOptions o;
  o.num_shards = num_shards;
  o.writeback = TieredOptions::Writeback::kAsync;
  return o;
}

std::vector<char> Payload(int64_t size, char fill) {
  return std::vector<char>(size, fill);
}

TEST(TieredAsyncTest, EvictionLeavesTheHotTierImmediatelyAndDrainsInBackground) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(100000);  // 100ms per cold op: holds the drain open
  TieredBackend tiered(&cold, 2 * kChunkBytes, AsyncOpts());

  const auto v1 = Payload(kChunkBytes, 'a');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  const auto v2 = Payload(kChunkBytes, 'b');
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v2.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 1}, v2.data(), kChunkBytes));  // evicts ctx 1

  // The eviction decision is synchronous (ctx 1 left the hot tier, the budget is
  // already restored) while its write-back is still in flight behind the slow cold
  // tier.
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));
  EXPECT_LE(tiered.dram_bytes(), 2 * kChunkBytes);
  EXPECT_EQ(tiered.Stats().evicted_contexts, 1);

  tiered.Quiesce();
  EXPECT_TRUE(cold.HasChunk({1, 0, 0}));
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.writeback_chunks, 1);
  EXPECT_EQ(s.drain_pending_bytes, 0);
}

TEST(TieredAsyncTest, ReadRescuesAnEvictedChunkFromTheDrainQueue) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(200000);  // keep the victim parked in the queue
  TieredBackend tiered(&cold, 2 * kChunkBytes, AsyncOpts());

  const auto v1 = Payload(kChunkBytes, 'x');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  const auto v2 = Payload(kChunkBytes, 'y');
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v2.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 1}, v2.data(), kChunkBytes));  // evicts ctx 1

  // While the write-back sleeps in the cold tier, the payload is still in DRAM:
  // the read is served from the drain queue (a DRAM hit). The stripe is full
  // (ctx 2 holds both chunks), so the rescue does NOT re-admit — a rescue never
  // displaces a resident context.
  ASSERT_FALSE(tiered.IsDramResident({1, 0, 0}));
  ASSERT_TRUE(tiered.IsDrainPending({1, 0, 0}));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(std::memcmp(buf.data(), v1.data(), kChunkBytes), 0);
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));
  EXPECT_TRUE(tiered.IsDrainPending({1, 0, 0}));

  // Free the stripe: the next rescue re-admits the chunk into the free space and
  // cancels its queued flush.
  tiered.DeleteContext(2);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(std::memcmp(buf.data(), v1.data(), kChunkBytes), 0);
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  EXPECT_FALSE(tiered.IsDrainPending({1, 0, 0}));
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.dram_hits, 2);
  EXPECT_EQ(s.cold_hits, 0);
  EXPECT_EQ(s.drain_rescued_chunks, 2);
  tiered.Quiesce();
}

TEST(TieredAsyncTest, NoLockIsHeldAcrossColdTierIO) {
  // The acceptance probe: from INSIDE a cold-tier read/write (i.e., while the old
  // design would have been holding the tier's mutex), another thread re-enters the
  // tier on the SAME lock stripe (num_shards = 1) and must make progress. A lock
  // held across cold IO deadlocks this test.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  TieredBackend tiered(&cold, 2 * kChunkBytes, AsyncOpts(/*num_shards=*/1));

  constexpr int64_t kProbeCtx = 77;
  const auto probe_payload = Payload(256, 'p');
  std::atomic<int64_t> probes_ok{0};
  std::atomic<int64_t> probes_run{0};

  // Re-enter the tier from a helper thread and require completion within 5s. On a
  // lock-discipline regression the helper blocks: fail the expectation and detach
  // so the test reports instead of hanging.
  const auto reenter = [&](const ChunkKey& key) {
    if (key.context_id == kProbeCtx) {
      return;  // the probe's own traffic: don't recurse
    }
    ++probes_run;
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::thread prober([&] {
      std::vector<char> buf(kChunkBytes);
      const int64_t got = tiered.ReadChunk({kProbeCtx, 0, 0}, buf.data(), kChunkBytes);
      const bool wrote = tiered.WriteChunk({kProbeCtx, 0, 1}, probe_payload.data(), 256);
      (void)tiered.HasChunk({kProbeCtx, 0, 0});
      if (got == 256 && wrote) {
        ++probes_ok;
      }
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    if (cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; })) {
      lock.unlock();
      prober.join();
    } else {
      ADD_FAILURE() << "tier re-entry blocked: a lock is held across cold-tier IO";
      prober.detach();
    }
  };
  ASSERT_TRUE(tiered.WriteChunk({kProbeCtx, 0, 0}, probe_payload.data(), 256));
  cold.set_write_hook(reenter);
  cold.set_read_hook(reenter);

  // Trigger an eviction write-back (drainer-side cold write) ...
  const auto big = Payload(kChunkBytes, 'e');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, big.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, big.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 1}, big.data(), kChunkBytes));  // evicts ctx 1
  tiered.Quiesce();

  // ... and a promotion read (caller-side cold read).
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);

  EXPECT_GT(probes_run.load(), 0);
  EXPECT_EQ(probes_ok.load(), probes_run.load());
  tiered.Quiesce();
}

TEST(TieredAsyncTest, ColdWriteFailureRollsTheEvictionBack) {
  // Satellite fix: a *persistently* failing write-back must not leak accounting —
  // after the drainer exhausts its retry budget the victim returns to the hot tier
  // dirty (requeued MRU so other contexts evict first), `evicted_contexts` is not
  // charged for the failed eviction, and no write-back bytes are counted.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  TieredOptions opts = AsyncOpts(/*num_shards=*/1);
  opts.writeback_retry_limit = 2;
  opts.writeback_retry_backoff_us = 100;  // keep the exhaust-retries path fast
  TieredBackend tiered(&cold, 2 * kChunkBytes, opts);

  const auto v1 = Payload(kChunkBytes, '1');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  const auto v2 = Payload(kChunkBytes, '2');
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v2.data(), kChunkBytes));

  // One failure per attempt: initial try + 2 retries all fail, forcing rollback.
  cold.FailNextWrites(opts.writeback_retry_limit + 1);
  const auto v3 = Payload(kChunkBytes, '3');
  ASSERT_TRUE(tiered.WriteChunk({3, 0, 0}, v3.data(), kChunkBytes));  // evicts ctx 1
  tiered.Quiesce();

  StorageStats s = tiered.Stats();
  EXPECT_EQ(s.writeback_failures, 1);
  EXPECT_EQ(s.writeback_retries, opts.writeback_retry_limit);
  EXPECT_EQ(cold.injected_write_failures(), opts.writeback_retry_limit + 1);
  EXPECT_EQ(s.evicted_contexts, 0);  // the eviction did not stick
  EXPECT_EQ(s.writeback_chunks, 0);
  EXPECT_EQ(s.writeback_bytes, 0);
  EXPECT_EQ(s.drain_pending_bytes, 0);
  // The dirty payload survived, back in DRAM (budget degrades to best-effort).
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(buf[0], '1');
  EXPECT_EQ(s.bytes_stored, 3 * kChunkBytes);  // the logical index never flinched

  // With the fault cleared, the rolled-back victim sits at the MRU end: the next
  // eviction round picks another context first, then everything conserves.
  const auto v4 = Payload(kChunkBytes, '4');
  ASSERT_TRUE(tiered.WriteChunk({4, 0, 0}, v4.data(), kChunkBytes));
  tiered.Quiesce();
  s = tiered.Stats();
  EXPECT_GT(s.evicted_contexts, 0);
  EXPECT_FALSE(tiered.IsDramResident({2, 0, 0}));  // ctx 2 evicted before ctx 1
  EXPECT_TRUE(tiered.IsDramResident({1, 0, 0}));
  EXPECT_EQ(s.writeback_bytes,
            s.writeback_chunks * kChunkBytes);  // only successful flushes counted
  // Every byte is still readable from some tier.
  for (int64_t ctx = 1; ctx <= 4; ++ctx) {
    ASSERT_EQ(tiered.ReadChunk({ctx, 0, 0}, buf.data(), kChunkBytes), kChunkBytes)
        << "ctx " << ctx;
    EXPECT_EQ(buf[0], static_cast<char>('0' + ctx));
  }
}

TEST(TieredAsyncTest, TransientColdWriteFailureIsAbsorbedByRetry) {
  // The flip side of the rollback test: when the cold tier recovers within the
  // retry budget (a transient device hiccup), the eviction goes through — no
  // rollback, no lost write-back, just retries counted.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  TieredOptions opts = AsyncOpts(/*num_shards=*/1);
  opts.writeback_retry_limit = 3;
  opts.writeback_retry_backoff_us = 100;
  TieredBackend tiered(&cold, 2 * kChunkBytes, opts);

  const auto v1 = Payload(kChunkBytes, '1');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  const auto v2 = Payload(kChunkBytes, '2');
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v2.data(), kChunkBytes));

  cold.FailNextWrites(2);  // two attempts fail, the third lands
  const auto v3 = Payload(kChunkBytes, '3');
  ASSERT_TRUE(tiered.WriteChunk({3, 0, 0}, v3.data(), kChunkBytes));  // evicts ctx 1
  tiered.Quiesce();

  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.writeback_failures, 0);
  EXPECT_EQ(s.writeback_retries, 2);
  EXPECT_EQ(s.writeback_chunks, 1);
  EXPECT_EQ(s.writeback_bytes, kChunkBytes);
  EXPECT_EQ(s.evicted_contexts, 1);
  EXPECT_EQ(s.drain_pending_bytes, 0);
  EXPECT_TRUE(cold.HasChunk({1, 0, 0}));
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));
  // The evicted payload survived the bumpy write-back bit-exactly.
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(tiered.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
  EXPECT_EQ(buf[0], '1');
}

TEST(TieredAsyncTest, ShortBufferColdReadDoesNoIOAndNoPromotion) {
  // The cross-backend short-buffer contract, at its sharpest for the tiered tier: a
  // too-small buffer on a cold-resident chunk must not touch the cold tier at all.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  TieredBackend tiered(&cold, 2 * kChunkBytes, AsyncOpts());
  const auto v1 = Payload(kChunkBytes, 'c');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  const auto v2 = Payload(kChunkBytes, 'd');
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v2.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 1}, v2.data(), kChunkBytes));  // evicts ctx 1
  tiered.Quiesce();
  ASSERT_FALSE(tiered.IsDramResident({1, 0, 0}));

  const int64_t cold_reads_before = cold.Stats().total_reads;
  std::vector<char> small(16);
  EXPECT_EQ(tiered.ReadChunk({1, 0, 0}, small.data(), 16), -1);
  EXPECT_EQ(cold.Stats().total_reads, cold_reads_before);  // no cold IO
  EXPECT_FALSE(tiered.IsDramResident({1, 0, 0}));          // no promotion
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.total_reads, 0);  // failed reads never count
  EXPECT_EQ(s.dram_hit_bytes + s.cold_hit_bytes, 0);
}

TEST(TieredAsyncTest, HighWaterMarkStallsWritersUntilTheDrainerCatchesUp) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(5000);  // 5ms per flush: the drainer lags the writer
  TieredOptions o = AsyncOpts();
  o.high_water_factor = 1.0;  // stall threshold: capacity + 4 chunks of slack
  TieredBackend tiered(&cold, kChunkBytes, o);

  const auto data = Payload(kChunkBytes, 's');
  constexpr int64_t kContexts = 24;
  for (int64_t ctx = 0; ctx < kContexts; ++ctx) {
    // Each write displaces the previous context into the drain queue faster than
    // 5ms/chunk can retire it; the queue crosses the high-water mark and writers
    // block until it recedes — bounded memory, no dropped data.
    ASSERT_TRUE(tiered.WriteChunk({ctx, 0, 0}, data.data(), kChunkBytes));
  }
  tiered.Quiesce();
  const StorageStats s = tiered.Stats();
  EXPECT_GT(s.writer_stalls, 0);
  EXPECT_EQ(s.drain_pending_bytes, 0);
  EXPECT_EQ(s.writeback_chunks + /*still hot*/ 1, kContexts);
  // Backpressure never loses bytes: every context reads back intact.
  std::vector<char> buf(kChunkBytes);
  for (int64_t ctx = 0; ctx < kContexts; ++ctx) {
    ASSERT_EQ(tiered.ReadChunk({ctx, 0, 0}, buf.data(), kChunkBytes), kChunkBytes);
    EXPECT_EQ(buf[0], 's');
  }
}

TEST(TieredAsyncTest, DestructionWithoutQuiesceStillLandsDirtyChunksInCold) {
  // WriteChunk returned true for these bytes; tearing the tier down with the drain
  // queue non-empty must still write them back — never drop dirty data.
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(20000);  // 20ms/op: the queue is non-empty at dtor time
  const auto data = Payload(kChunkBytes, 'q');
  {
    TieredBackend tiered(&cold, kChunkBytes, AsyncOpts());
    for (int64_t ctx = 0; ctx < 4; ++ctx) {
      ASSERT_TRUE(tiered.WriteChunk({ctx, 0, 0}, data.data(), kChunkBytes));
    }
    // No Quiesce: the destructor must finish the drain itself.
  }
  for (int64_t ctx = 0; ctx < 3; ++ctx) {  // ctx 3 stayed hot; 0-2 were evicted
    EXPECT_TRUE(cold.HasChunk({ctx, 0, 0})) << "ctx " << ctx;
  }
}

TEST(TieredAsyncTest, DeleteDuringDrainDoesNotResurrectTheContext) {
  MemoryBackend mem(kChunkBytes);
  InstrumentedBackend cold(&mem);
  cold.set_io_latency_micros(50000);  // 50ms: the delete races an in-flight flush
  TieredBackend tiered(&cold, kChunkBytes, AsyncOpts());

  const auto v1 = Payload(kChunkBytes, 'z');
  ASSERT_TRUE(tiered.WriteChunk({1, 0, 0}, v1.data(), kChunkBytes));
  ASSERT_TRUE(tiered.WriteChunk({2, 0, 0}, v1.data(), kChunkBytes));  // evicts ctx 1
  tiered.DeleteContext(1);  // while ctx 1's write-back may be mid-flight

  EXPECT_FALSE(tiered.HasChunk({1, 0, 0}));
  tiered.Quiesce();
  // The drain must not re-materialize the deleted context in the cold tier.
  EXPECT_FALSE(cold.HasChunk({1, 0, 0}));
  EXPECT_FALSE(tiered.HasChunk({1, 0, 0}));
  EXPECT_EQ(tiered.ChunkSize({1, 0, 0}), -1);
}

TEST(WritebackBackoffTest, EqualJitterStaysInBoundsAndIsDeterministic) {
  TieredOptions opts;
  opts.writeback_retry_backoff_us = 500;
  opts.writeback_retry_backoff_cap_us = 8000;
  for (int round = 0; round < 10; ++round) {
    const int64_t ceiling = std::min<int64_t>(int64_t{500} << round, 8000);
    for (const uint64_t seed : {0ull, 1ull, 42ull, 0xdeadbeefull, ~0ull}) {
      const int64_t us = WritebackBackoffUs(opts, round, seed);
      EXPECT_GE(us, ceiling - ceiling / 2) << "round " << round << " seed " << seed;
      EXPECT_LE(us, ceiling) << "round " << round << " seed " << seed;
      // Pure in (options, round, seed): the same call returns the same sleep.
      EXPECT_EQ(us, WritebackBackoffUs(opts, round, seed));
    }
  }
}

TEST(WritebackBackoffTest, SeedsDecorrelateAndDegenerateConfigsSleepZero) {
  TieredOptions opts;
  opts.writeback_retry_backoff_us = 4000;
  opts.writeback_retry_backoff_cap_us = 8000;
  // Distinct seeds should not march in lockstep: across a few rounds at least one
  // pair of drainers must disagree on their sleep.
  bool diverged = false;
  for (int round = 0; round < 4 && !diverged; ++round) {
    diverged = WritebackBackoffUs(opts, round, /*seed=*/1) !=
               WritebackBackoffUs(opts, round, /*seed=*/2);
  }
  EXPECT_TRUE(diverged);

  TieredOptions off;
  off.writeback_retry_backoff_us = 0;
  EXPECT_EQ(WritebackBackoffUs(off, 0, 7), 0);
  EXPECT_EQ(WritebackBackoffUs(off, 5, 7), 0);
  off.writeback_retry_backoff_us = 500;
  off.writeback_retry_backoff_cap_us = 0;
  EXPECT_EQ(WritebackBackoffUs(off, 3, 7), 0);
}

}  // namespace
}  // namespace hcache
