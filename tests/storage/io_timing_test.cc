#include "src/storage/io_timing.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace hcache {
namespace {

TEST(IoTimingTest, ChunkedReadsHitAggregateBandwidth) {
  StorageIoModel io(Platform::DefaultTestbed(1, 4));
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const IoPattern p = RestoreLayerPattern(StorageLayout::kLayerChunked, cfg, 1024, 64);
  const double t = io.ReadTime(p);
  const double ideal = static_cast<double>(p.total_bytes()) / (27.6 * kGB);
  EXPECT_GE(t, ideal);
  // Within ~10% of line rate plus the one-time fill latency: 512 KiB chunks sit far
  // above the SSD's latency-bandwidth knee.
  EXPECT_LT(t, ideal * 1.1 + 1e-4);
}

TEST(IoTimingTest, TokenMajorReadsArePunished) {
  // The C2 mismatch in time: scattered per-token rows (8 KiB for 7B) fall below each
  // SSD's IOPS knee, so the same bytes take longer than chunked reads.
  StorageIoModel io(Platform::DefaultTestbed(1, 4));
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const double chunked =
      io.HiddenLayerReadTime(cfg, 1024, StorageLayout::kLayerChunked);
  const double scattered =
      io.HiddenLayerReadTime(cfg, 1024, StorageLayout::kTokenMajor);
  EXPECT_GT(scattered, chunked);
}

TEST(IoTimingTest, KvReadIsTwiceHiddenRead) {
  StorageIoModel io(Platform::DefaultTestbed(1, 4));
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const double hidden = io.HiddenLayerReadTime(cfg, 1024);
  const double kv = io.KvLayerReadTime(cfg, 1024);
  // KV moves 2x the bytes; the shared fill latency and the larger IOs' slightly better
  // knee efficiency pull the ratio a little under 2.
  EXPECT_GT(kv / hidden, 1.7);
  EXPECT_LE(kv / hidden, 2.05);
}

TEST(IoTimingTest, MoreSsdsUntilPcieCap) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  double prev = 1e9;
  for (int ssds : {1, 2, 3, 4}) {
    StorageIoModel io(Platform::DefaultTestbed(1, ssds));
    const double t = io.HiddenLayerReadTime(cfg, 4096);
    EXPECT_LT(t, prev) << ssds;
    prev = t;
  }
  // 8 SSDs saturate PCIe: barely better than 5.
  StorageIoModel io5(Platform::DefaultTestbed(1, 5));
  StorageIoModel io8(Platform::DefaultTestbed(1, 8));
  EXPECT_NEAR(io8.HiddenLayerReadTime(cfg, 4096), io5.HiddenLayerReadTime(cfg, 4096),
              io5.HiddenLayerReadTime(cfg, 4096) * 0.15);
}

TEST(IoTimingTest, DramBackendFasterThanSsds) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  StorageIoModel ssd(Platform::DefaultTestbed(1, 4));
  StorageIoModel dram(Platform::CloudDram(GpuSpec::A100()));
  EXPECT_LT(dram.HiddenLayerReadTime(cfg, 4096), ssd.HiddenLayerReadTime(cfg, 4096));
}

TEST(IoTimingTest, WritesSlowerThanReads) {
  StorageIoModel io(Platform::DefaultTestbed(1, 4));
  const IoPattern p{4, 512 * 1024};
  EXPECT_GT(io.WriteTime(p), io.ReadTime(p));
}

TEST(IoTimingTest, EmptyPatternIsFree) {
  StorageIoModel io(Platform::DefaultTestbed(1, 4));
  EXPECT_DOUBLE_EQ(io.ReadTime(IoPattern{}), 0.0);
  EXPECT_DOUBLE_EQ(io.WriteTime(IoPattern{}), 0.0);
}

}  // namespace
}  // namespace hcache
