// DedupBackend-specific behavior: content sharing, refcount lifecycle, collision
// chaining, and the fsck audit invariants. The generic StorageBackend contract is
// covered by the parameterized conformance suites (storage_backend_test.cc,
// read_chunks_test.cc), which run dedup rows too.
#include "src/storage/dedup_backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 4096;

std::vector<char> Payload(int64_t size, char fill) { return std::vector<char>(size, fill); }

class DedupBackendTest : public ::testing::Test {
 protected:
  DedupBackendTest() : base_(kChunkBytes), dedup_(&base_) {}

  MemoryBackend base_;
  DedupBackend dedup_;
};

TEST_F(DedupBackendTest, IdenticalContentIsStoredOnce) {
  const auto data = Payload(1000, 'x');
  constexpr int64_t kCopies = 16;
  for (int64_t ctx = 0; ctx < kCopies; ++ctx) {
    ASSERT_TRUE(dedup_.WriteChunk({ctx, 0, 0}, data.data(), 1000));
  }
  const StorageStats s = dedup_.Stats();
  EXPECT_EQ(s.chunks_stored, kCopies);       // logical view: every key present
  EXPECT_EQ(s.bytes_stored, kCopies * 1000);  // logical bytes
  EXPECT_EQ(s.unique_chunks, 1);              // physical reality: one copy
  EXPECT_EQ(s.dedup_hits, kCopies - 1);
  EXPECT_EQ(s.dedup_bytes_saved, (kCopies - 1) * 1000);
  EXPECT_EQ(dedup_.PhysicalBytes(), 1000);
  EXPECT_EQ(base_.chunks_stored(), 1);  // the wrapped store holds exactly one chunk

  // Every logical key reads back the full content.
  std::vector<char> buf(kChunkBytes);
  for (int64_t ctx = 0; ctx < kCopies; ++ctx) {
    ASSERT_EQ(dedup_.ReadChunk({ctx, 0, 0}, buf.data(), kChunkBytes), 1000);
    EXPECT_EQ(std::memcmp(buf.data(), data.data(), 1000), 0);
  }
}

TEST_F(DedupBackendTest, DeleteDecrefsAndLastReferentFreesPhysical) {
  const auto data = Payload(800, 's');
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, data.data(), 800));
  ASSERT_TRUE(dedup_.WriteChunk({2, 0, 0}, data.data(), 800));
  ASSERT_TRUE(dedup_.DeleteChunk({1, 0, 0}));
  // One referent remains: the bytes must stay.
  EXPECT_EQ(dedup_.Stats().unique_chunks, 1);
  EXPECT_EQ(base_.chunks_stored(), 1);
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dedup_.ReadChunk({2, 0, 0}, buf.data(), kChunkBytes), 800);
  // Last referent gone: physical chunk leaves the wrapped backend.
  dedup_.DeleteContext(2);
  EXPECT_EQ(dedup_.Stats().unique_chunks, 0);
  EXPECT_EQ(dedup_.PhysicalBytes(), 0);
  EXPECT_EQ(base_.chunks_stored(), 0);
}

TEST_F(DedupBackendTest, OverwriteMovesReferenceAndFreesUnsharedContent) {
  const auto a = Payload(700, 'a');
  const auto b = Payload(900, 'b');
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, a.data(), 700));
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, b.data(), 900));
  // 'a' had a single referent; the overwrite released it.
  EXPECT_EQ(dedup_.Stats().unique_chunks, 1);
  EXPECT_EQ(dedup_.PhysicalBytes(), 900);
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dedup_.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), 900);
  EXPECT_EQ(buf[0], 'b');

  // Re-writing identical content at the same key is a no-op for refcounts:
  // repeatedly sealing a partial chunk must not leak references.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, b.data(), 900));
  }
  EXPECT_EQ(dedup_.Stats().unique_chunks, 1);
  ASSERT_TRUE(dedup_.DeleteChunk({1, 0, 0}));
  EXPECT_EQ(dedup_.Stats().unique_chunks, 0);
  EXPECT_EQ(base_.chunks_stored(), 0);
}

TEST_F(DedupBackendTest, TrueHashCollisionChainsToFreshChunk) {
  // Force every payload onto one content hash: verify_bytes must catch the
  // mismatch and chain to a fresh physical slot instead of aliasing.
  dedup_.SetContentHashForTest(
      [](const void*, int64_t) { return ContentHash{0x1234, 0x5678}; });
  const auto a = Payload(1000, 'a');
  const auto b = Payload(1000, 'b');  // same size, same (forced) hash, different bytes
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, a.data(), 1000));
  ASSERT_TRUE(dedup_.WriteChunk({2, 0, 0}, b.data(), 1000));
  EXPECT_EQ(dedup_.Stats().unique_chunks, 2);
  EXPECT_EQ(dedup_.collision_chains(), 1);
  EXPECT_EQ(dedup_.Stats().dedup_hits, 0);

  // Each stream still dedups against its own chain slot.
  ASSERT_TRUE(dedup_.WriteChunk({3, 0, 0}, a.data(), 1000));
  ASSERT_TRUE(dedup_.WriteChunk({4, 0, 0}, b.data(), 1000));
  EXPECT_EQ(dedup_.Stats().unique_chunks, 2);
  EXPECT_EQ(dedup_.Stats().dedup_hits, 2);

  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dedup_.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), 1000);
  EXPECT_EQ(buf[0], 'a');
  ASSERT_EQ(dedup_.ReadChunk({2, 0, 0}, buf.data(), kChunkBytes), 1000);
  EXPECT_EQ(buf[0], 'b');
  EXPECT_TRUE(dedup_.AuditIndex().Healthy());
}

TEST_F(DedupBackendTest, DistinctContentHashesAreDistinct) {
  // Sanity on the production hash: distinct payloads (including same-length ones)
  // get distinct hashes; identical payloads hash identically.
  const auto a = Payload(1000, 'a');
  const auto b = Payload(1000, 'b');
  const ContentHash ha = HashChunkContent(a.data(), 1000);
  const ContentHash hb = HashChunkContent(b.data(), 1000);
  EXPECT_NE(ha, hb);
  EXPECT_EQ(ha, HashChunkContent(a.data(), 1000));
  // Length participates: a prefix of a payload hashes differently.
  EXPECT_NE(ha, HashChunkContent(a.data(), 999));
}

TEST_F(DedupBackendTest, AuditDetectsAndRepairsOrphanPhysical) {
  const auto data = Payload(600, 'k');
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, data.data(), 600));
  // Seed an orphan directly in the wrapped store (a crash between physical write
  // and index publish would leave exactly this).
  ASSERT_TRUE(base_.WriteChunk({42, 42, 42}, data.data(), 600));

  DedupAuditReport report = dedup_.AuditIndex();
  EXPECT_FALSE(report.Healthy());
  EXPECT_EQ(report.orphan_physical, 1);
  EXPECT_EQ(report.missing_physical, 0);

  report = dedup_.AuditIndex(/*repair=*/true);
  EXPECT_EQ(report.orphan_physical, 1);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].repaired);
  EXPECT_FALSE(base_.HasChunk({42, 42, 42}));
  EXPECT_TRUE(dedup_.AuditIndex().Healthy());
  // The legitimate chunk survived repair.
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(dedup_.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), 600);
}

TEST_F(DedupBackendTest, AuditDetectsAndRepairsMissingPhysical) {
  const auto data = Payload(600, 'm');
  ASSERT_TRUE(dedup_.WriteChunk({1, 0, 0}, data.data(), 600));
  ASSERT_TRUE(dedup_.WriteChunk({2, 0, 0}, data.data(), 600));
  // Lose the physical bytes behind the index's back.
  const auto phys = dedup_.ListPhysicalChunks();
  ASSERT_EQ(phys.size(), 1u);
  ASSERT_TRUE(base_.DeleteChunk(phys[0].first));

  DedupAuditReport report = dedup_.AuditIndex();
  EXPECT_FALSE(report.Healthy());
  EXPECT_EQ(report.missing_physical, 1);

  report = dedup_.AuditIndex(/*repair=*/true);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_TRUE(report.findings[0].repaired);
  // Both referents now read as absent — the recompute-fallback contract — instead
  // of failing forever on a dead physical key.
  std::vector<char> buf(kChunkBytes);
  EXPECT_EQ(dedup_.ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), -1);
  EXPECT_EQ(dedup_.ReadChunk({2, 0, 0}, buf.data(), kChunkBytes), -1);
  EXPECT_FALSE(dedup_.HasChunk({1, 0, 0}));
  EXPECT_TRUE(dedup_.AuditIndex().Healthy());
  EXPECT_EQ(dedup_.Stats().unique_chunks, 0);
}

TEST_F(DedupBackendTest, TieredStackSurfacesDedupFigures) {
  // dedup as the cold plane under the DRAM tier: the stack's Stats() must surface
  // the sharing figures so operators see them without reaching into the stack.
  MemoryBackend inner(kChunkBytes);
  DedupBackend dedup(&inner);
  TieredBackend tiered(&dedup, /*dram_budget_bytes=*/2 * kChunkBytes);
  const auto data = Payload(kChunkBytes, 'z');
  for (int64_t ctx = 0; ctx < 8; ++ctx) {
    ASSERT_TRUE(tiered.WriteChunk({ctx, 0, 0}, data.data(), kChunkBytes));
  }
  tiered.Quiesce();
  const StorageStats s = tiered.Stats();
  EXPECT_EQ(s.unique_chunks, 1);
  EXPECT_GT(s.dedup_hits, 0);
  EXPECT_GT(s.dedup_bytes_saved, 0);
}

TEST_F(DedupBackendTest, RefcountConservationHammer) {
  // Concurrent Put/Delete storm over a small pool of identical payloads. At every
  // quiesce point: unique_chunks <= logical chunks, unique_chunks <= distinct
  // contents, every surviving key reads back its exact bytes, and the audit finds
  // zero drift. Run under TSan in CI.
  constexpr int kThreads = 8;
  constexpr int kOpsEach = 400;
  constexpr int kContents = 4;
  constexpr int kKeysPerThread = 16;
  constexpr int64_t kBytes = 512;
  std::vector<std::vector<char>> contents;
  for (int c = 0; c < kContents; ++c) {
    contents.push_back(Payload(kBytes, static_cast<char>('A' + c)));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937_64 rng(static_cast<uint64_t>(t) * 7919 + 13);
      for (int op = 0; op < kOpsEach; ++op) {
        const ChunkKey key{t, 0, static_cast<int64_t>(rng() % kKeysPerThread)};
        if (rng() % 3 == 0) {
          dedup_.DeleteChunk(key);  // may or may not exist; both are fine
        } else {
          const auto& data = contents[rng() % kContents];
          if (!dedup_.WriteChunk(key, data.data(), kBytes)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(failures.load(), 0);
  const StorageStats s = dedup_.Stats();
  EXPECT_LE(s.unique_chunks, s.chunks_stored);
  EXPECT_LE(s.unique_chunks, kContents);
  EXPECT_EQ(s.bytes_stored, s.chunks_stored * kBytes);
  EXPECT_EQ(dedup_.PhysicalBytes(), s.unique_chunks * kBytes);
  // Every surviving logical chunk reads back one of the pool contents, intact.
  std::vector<char> buf(kChunkBytes);
  for (const auto& [key, bytes] : dedup_.ListChunks()) {
    ASSERT_EQ(dedup_.ReadChunk(key, buf.data(), kChunkBytes), kBytes);
    bool matches_some = false;
    for (const auto& c : contents) {
      matches_some = matches_some || std::memcmp(buf.data(), c.data(), kBytes) == 0;
    }
    EXPECT_TRUE(matches_some);
  }
  const DedupAuditReport report = dedup_.AuditIndex();
  EXPECT_TRUE(report.Healthy()) << "refcount drift after concurrent Put/Delete";
  // Wrapped store and index agree chunk-for-chunk.
  EXPECT_EQ(static_cast<int64_t>(base_.ListChunks().size()), s.unique_chunks);
}

TEST_F(DedupBackendTest, ConcurrentWritersOfSameNewContentConvergeOnOneCopy) {
  // The kWriting wait path: many threads race to publish the SAME content that is
  // not yet stored. Exactly one physical copy must result.
  constexpr int kThreads = 8;
  const auto data = Payload(2048, 'q');
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      if (!dedup_.WriteChunk({t, 0, 0}, data.data(), 2048)) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(dedup_.Stats().unique_chunks, 1);
  EXPECT_EQ(dedup_.Stats().dedup_hits, kThreads - 1);
  EXPECT_EQ(base_.chunks_stored(), 1);
  EXPECT_TRUE(dedup_.AuditIndex().Healthy());
}

}  // namespace
}  // namespace hcache
