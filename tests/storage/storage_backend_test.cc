// Conformance suite run against every StorageBackend implementation: the interface
// contract (round trip, overwrite, delete, exact stats) must hold identically for
// file, DRAM, and tiered storage — consumers above the seam cannot tell them apart.
#include "src/storage/storage_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "src/storage/dedup_backend.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 4096;

struct BackendFixture {
  std::unique_ptr<StorageBackend> inner;  // dedup stacks: the physical store
  std::unique_ptr<StorageBackend> cold;   // tiered stacks: the cold tier
  std::unique_ptr<StorageBackend> backend;
};

class StorageBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_backend_" + std::to_string(::getpid()) + "_" + GetParam() + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    const std::vector<std::string> dirs = {(base_ / "d0").string(), (base_ / "d1").string()};
    if (GetParam() == "file") {
      fx_.backend = std::make_unique<FileBackend>(dirs, kChunkBytes);
    } else if (GetParam() == "memory") {
      fx_.backend = std::make_unique<MemoryBackend>(kChunkBytes);
    } else if (GetParam() == "distributed") {
      fx_.backend = std::make_unique<DistributedColdBackend>(3, kChunkBytes);
    } else if (GetParam() == "tiered_dist") {
      // The ISSUE-8 production shape: DRAM hot tier over the replicated plane.
      fx_.cold = std::make_unique<DistributedColdBackend>(3, kChunkBytes);
      fx_.backend = std::make_unique<TieredBackend>(fx_.cold.get(), 8 * kChunkBytes);
    } else if (GetParam() == "dedup") {
      fx_.inner = std::make_unique<MemoryBackend>(kChunkBytes);
      fx_.backend = std::make_unique<DedupBackend>(fx_.inner.get());
    } else if (GetParam() == "tiered_dedup") {
      // Content-addressed cold plane under the DRAM tier: evicted chunks
      // single-instance on the way down.
      fx_.inner = std::make_unique<FileBackend>(dirs, kChunkBytes);
      fx_.cold = std::make_unique<DedupBackend>(fx_.inner.get());
      fx_.backend = std::make_unique<TieredBackend>(fx_.cold.get(), 8 * kChunkBytes);
    } else if (GetParam() == "dedup_dist") {
      // Fleet-wide single-instancing of the replicated cold plane.
      fx_.inner = std::make_unique<DistributedColdBackend>(3, kChunkBytes);
      fx_.backend = std::make_unique<DedupBackend>(fx_.inner.get());
    } else {
      fx_.cold = std::make_unique<FileBackend>(dirs, kChunkBytes);
      // Budget of 8 chunks: small enough that the suite exercises eviction.
      fx_.backend = std::make_unique<TieredBackend>(fx_.cold.get(), 8 * kChunkBytes);
    }
  }
  void TearDown() override {
    fx_.backend.reset();  // outermost wrapper (and its drainer) first
    fx_.cold.reset();
    fx_.inner.reset();
    std::filesystem::remove_all(base_);
  }

  StorageBackend& backend() { return *fx_.backend; }

  std::filesystem::path base_;
  BackendFixture fx_;
};

std::vector<char> Payload(int64_t size, char fill) { return std::vector<char>(size, fill); }

TEST_P(StorageBackendTest, WriteReadRoundTrip) {
  const auto data = Payload(1000, 'x');
  ASSERT_TRUE(backend().WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(kChunkBytes);
  ASSERT_EQ(backend().ReadChunk({1, 0, 0}, buf.data(), kChunkBytes), 1000);
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), 1000), 0);
  EXPECT_TRUE(backend().HasChunk({1, 0, 0}));
  EXPECT_EQ(backend().ChunkSize({1, 0, 0}), 1000);
}

TEST_P(StorageBackendTest, MissingChunkReturnsMinusOne) {
  std::vector<char> buf(kChunkBytes);
  EXPECT_EQ(backend().ReadChunk({9, 9, 9}, buf.data(), kChunkBytes), -1);
  EXPECT_FALSE(backend().HasChunk({9, 9, 9}));
  EXPECT_EQ(backend().ChunkSize({9, 9, 9}), -1);
}

TEST_P(StorageBackendTest, SmallBufferRejected) {
  const auto data = Payload(1000, 'y');
  ASSERT_TRUE(backend().WriteChunk({1, 0, 0}, data.data(), 1000));
  std::vector<char> buf(10);
  EXPECT_EQ(backend().ReadChunk({1, 0, 0}, buf.data(), 10), -1);
  // Failed reads must not count — stats stay comparable across backends.
  EXPECT_EQ(backend().total_reads(), 0);
  EXPECT_EQ(backend().Stats().dram_hits + backend().Stats().cold_hits, 0);
}

TEST_P(StorageBackendTest, ShortBufferSemanticsAreUniformAcrossResidency) {
  // The ReadChunk short-buffer contract (storage_backend.h) must be observable-
  // identical no matter which tier currently holds the chunk: -1 with an untouched
  // buffer and zero stats on a one-byte-short buffer, success on an exact-fit one,
  // and every counted hit byte equal to what callers actually received. The write
  // volume here pushes the tiered fixture past its 8-chunk budget so some chunks are
  // answered by its cold tier, some by DRAM, and (async drain) some by the queue.
  constexpr int64_t kContexts = 12;
  constexpr int64_t kSize = 1500;
  for (int64_t ctx = 0; ctx < kContexts; ++ctx) {
    const auto data = Payload(kSize, static_cast<char>('a' + ctx));
    ASSERT_TRUE(backend().WriteChunk({ctx, 0, 0}, data.data(), kSize));
  }
  backend().Quiesce();
  std::vector<char> buf(kChunkBytes);
  int64_t got_bytes = 0;
  for (int64_t ctx = 0; ctx < kContexts; ++ctx) {
    buf.assign(buf.size(), '\0');
    EXPECT_EQ(backend().ReadChunk({ctx, 0, 0}, buf.data(), kSize - 1), -1)
        << "ctx " << ctx;
    EXPECT_EQ(buf[0], '\0') << "short-buffer read wrote into the buffer";
    ASSERT_EQ(backend().ReadChunk({ctx, 0, 0}, buf.data(), kSize), kSize)
        << "ctx " << ctx;
    EXPECT_EQ(buf[0], static_cast<char>('a' + ctx));
    got_bytes += kSize;
  }
  const StorageStats s = backend().Stats();
  EXPECT_EQ(s.total_reads, kContexts);  // only the exact-fit reads counted
  EXPECT_EQ(s.dram_hits + s.cold_hits, s.total_reads);
  EXPECT_EQ(s.dram_hit_bytes + s.cold_hit_bytes, got_bytes);
}

TEST_P(StorageBackendTest, OverwriteReplacesContent) {
  const auto a = Payload(100, 'a');
  const auto b = Payload(50, 'b');
  ASSERT_TRUE(backend().WriteChunk({1, 2, 3}, a.data(), 100));
  ASSERT_TRUE(backend().WriteChunk({1, 2, 3}, b.data(), 50));
  std::vector<char> buf(kChunkBytes);
  EXPECT_EQ(backend().ReadChunk({1, 2, 3}, buf.data(), kChunkBytes), 50);
  EXPECT_EQ(buf[0], 'b');
  EXPECT_EQ(backend().chunks_stored(), 1);
  EXPECT_EQ(backend().bytes_stored(), 50);
}

TEST_P(StorageBackendTest, DeleteContextRemovesOnlyThatContext) {
  const auto d = Payload(10, 'd');
  for (int64_t c = 0; c < 4; ++c) {
    ASSERT_TRUE(backend().WriteChunk({1, 0, c}, d.data(), 10));
    ASSERT_TRUE(backend().WriteChunk({2, 0, c}, d.data(), 10));
  }
  backend().DeleteContext(1);
  EXPECT_FALSE(backend().HasChunk({1, 0, 0}));
  EXPECT_TRUE(backend().HasChunk({2, 0, 3}));
  EXPECT_EQ(backend().chunks_stored(), 4);
  EXPECT_EQ(backend().bytes_stored(), 40);
}

TEST_P(StorageBackendTest, ConcurrentWritersWithPollingReader) {
  // The two-stage saver's flush pool writes disjoint chunks of one context from many
  // threads while restoration-side code polls HasChunk. At quiesce, stats must be
  // exact: every write indexed once, no bytes double-counted.
  constexpr int kThreads = 8;
  constexpr int kChunksEach = 40;
  constexpr int64_t kBytes = 512;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  std::atomic<int64_t> observed_present{0};

  std::thread reader([this, &done, &observed_present] {
    // Poll chunks while writers run; presence must be monotone (a written chunk never
    // flickers back to absent).
    std::vector<bool> seen(kThreads * kChunksEach, false);
    while (!done.load(std::memory_order_acquire)) {
      for (int t = 0; t < kThreads; ++t) {
        for (int c = 0; c < kChunksEach; ++c) {
          const bool has = backend().HasChunk({1, t, c});
          const size_t idx = static_cast<size_t>(t * kChunksEach + c);
          if (seen[idx] && !has) {
            observed_present.fetch_sub(1000000);  // poison: regression observed
          }
          if (has && !seen[idx]) {
            seen[idx] = true;
            observed_present.fetch_add(1);
          }
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([this, &failures, t] {
      const auto d = Payload(kBytes, static_cast<char>('A' + t));
      for (int c = 0; c < kChunksEach; ++c) {
        if (!backend().WriteChunk({1, t, c}, d.data(), kBytes)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : writers) {
    th.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(observed_present.load(), 0) << "a stored chunk became absent mid-run";
  EXPECT_EQ(backend().chunks_stored(), kThreads * kChunksEach);
  EXPECT_EQ(backend().bytes_stored(), kThreads * kChunksEach * kBytes);
  EXPECT_EQ(backend().total_writes(), kThreads * kChunksEach);
  std::vector<char> buf(kChunkBytes);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(backend().ReadChunk({1, t, kChunksEach - 1}, buf.data(), kChunkBytes), kBytes);
    EXPECT_EQ(buf[0], static_cast<char>('A' + t));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, StorageBackendTest,
                         ::testing::Values("file", "memory", "tiered", "distributed",
                                           "tiered_dist", "dedup", "tiered_dedup",
                                           "dedup_dist"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace hcache
