// Parameterized round-trip sweep for the two-stage saver: every combination of chunk
// size, token count, and append granularity must reproduce the exact bytes, including
// partial tail chunks and resumed (seal-then-append) sessions.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <numeric>
#include <tuple>

#include "src/common/rng.h"
#include "src/storage/file_backend.h"
#include "src/storage/hidden_saver.h"

namespace hcache {
namespace {

using SweepParam = std::tuple<int64_t /*chunk_tokens*/, int64_t /*total_tokens*/,
                              int64_t /*append_step*/>;

class SaverRoundTripSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(2, 16, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_saver_sweep_" + std::to_string(::getpid()) + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)));
    store_ = std::make_unique<FileBackend>(std::vector<std::string>{(base_ / "d").string()},
                                          1 << 20);
  }
  void TearDown() override {
    store_.reset();
    std::filesystem::remove_all(base_);
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
  std::unique_ptr<FileBackend> store_;
};

TEST_P(SaverRoundTripSweep, ExactRoundTrip) {
  const auto [chunk_tokens, total, step] = GetParam();
  Rng rng(static_cast<uint64_t>(chunk_tokens * 1000 + total * 10 + step));
  Tensor all({total, cfg_.hidden_dim});
  for (int64_t i = 0; i < all.numel(); ++i) {
    all.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }

  HiddenStateWriter writer(store_.get(), nullptr, cfg_, /*context_id=*/1, chunk_tokens);
  for (int64_t start = 0; start < total; start += step) {
    const int64_t n = std::min(step, total - start);
    Tensor batch({n, cfg_.hidden_dim});
    std::vector<int32_t> pos(static_cast<size_t>(n));
    std::iota(pos.begin(), pos.end(), static_cast<int32_t>(start));
    for (int64_t i = 0; i < n; ++i) {
      std::copy(all.row(start + i), all.row(start + i) + cfg_.hidden_dim, batch.row(i));
    }
    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      writer.OnLayerInput(layer, batch, pos.data(), n);
    }
    // Seal mid-stream every other batch: resumption must not corrupt the layout.
    if ((start / step) % 2 == 1) {
      writer.Seal();
    }
  }
  writer.Seal();

  HiddenStateReader reader(store_.get(), cfg_, chunk_tokens);
  ASSERT_TRUE(reader.ContextComplete(1, total));
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    const Tensor got = reader.ReadLayer(1, layer, total);
    EXPECT_TRUE(Tensor::BitwiseEqual(got, all))
        << "chunk=" << chunk_tokens << " total=" << total << " step=" << step
        << " layer=" << layer;
  }
  // Chunk count matches the layout formula.
  const int64_t expect_chunks = (total + chunk_tokens - 1) / chunk_tokens;
  EXPECT_EQ(store_->chunks_stored(), expect_chunks * cfg_.num_layers);
}

INSTANTIATE_TEST_SUITE_P(
    ChunkTokenStep, SaverRoundTripSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 8, 64),   // chunk sizes
                       ::testing::Values<int64_t>(1, 7, 16, 33),  // token counts
                       ::testing::Values<int64_t>(1, 4, 16)));    // append granularity

}  // namespace
}  // namespace hcache
