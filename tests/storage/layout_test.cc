#include "src/storage/layout.h"

#include <gtest/gtest.h>

namespace hcache {
namespace {

TEST(LayoutTest, ChunkedRestoreUsesFewLargeIos) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const IoPattern p = RestoreLayerPattern(StorageLayout::kLayerChunked, cfg, 1024, 64);
  EXPECT_EQ(p.num_ios, 16);
  EXPECT_EQ(p.io_size, 64 * cfg.HiddenBytesPerTokenLayer());
  EXPECT_EQ(p.total_bytes(), 1024 * cfg.HiddenBytesPerTokenLayer());
}

TEST(LayoutTest, ChunkedRestoreRoundsUpPartialChunk) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const IoPattern p = RestoreLayerPattern(StorageLayout::kLayerChunked, cfg, 100, 64);
  EXPECT_EQ(p.num_ios, 2);
}

TEST(LayoutTest, TokenMajorRestoreScattersPerToken) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const IoPattern p = RestoreLayerPattern(StorageLayout::kTokenMajor, cfg, 1024, 64);
  EXPECT_EQ(p.num_ios, 1024);
  EXPECT_EQ(p.io_size, cfg.HiddenBytesPerTokenLayer());
  // Same bytes, radically different IO count — the C2 trade-off.
  const IoPattern chunked = RestoreLayerPattern(StorageLayout::kLayerChunked, cfg, 1024, 64);
  EXPECT_EQ(p.total_bytes(), chunked.total_bytes());
  EXPECT_GT(p.num_ios, 32 * chunked.num_ios);
}

TEST(LayoutTest, DirectSaveMirrorsTheTradeoff) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  // One decode iteration, batch of 8 sequences.
  const IoPattern chunked = DirectSavePattern(StorageLayout::kLayerChunked, cfg, 8, 64);
  const IoPattern token = DirectSavePattern(StorageLayout::kTokenMajor, cfg, 8, 64);
  EXPECT_EQ(chunked.num_ios, cfg.num_layers * 8);  // small write per layer per seq
  EXPECT_EQ(token.num_ios, 8);                     // one record per sequence
  EXPECT_EQ(chunked.total_bytes(), token.total_bytes());
}

TEST(LayoutTest, ChunkFlushIsOneLargeWrite) {
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const IoPattern p = ChunkFlushPattern(cfg, 64);
  EXPECT_EQ(p.num_ios, 1);
  EXPECT_EQ(p.io_size, 64 * cfg.HiddenBytesPerTokenLayer());  // 640 KiB for 13B
}

TEST(LayoutTest, ZeroTokensYieldNoIo) {
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  EXPECT_EQ(RestoreLayerPattern(StorageLayout::kLayerChunked, cfg, 0).num_ios, 0);
  EXPECT_EQ(DirectSavePattern(StorageLayout::kTokenMajor, cfg, 0).num_ios, 0);
}

TEST(LayoutTest, ReservationWasteIsSevere) {
  // §4.2.1: reserving at max context would waste most of the space for typical
  // histories — the motivation for incremental chunk allocation.
  const ModelConfig cfg = ModelConfig::Llama2_7B();  // max_position 16384
  const int64_t waste = ReservationWasteBytes(cfg, 2500);  // median ShareGPT4 history
  const int64_t used = 2500 * cfg.HiddenBytesPerTokenLayer();
  EXPECT_GT(waste, 5 * used);
}

}  // namespace
}  // namespace hcache
