// Property tests for the chunk precision codec: FP16 round-trip error within 1 ulp of
// half precision (RNE is actually ≤ 0.5 ulp), INT8 within RowErrorBound, FP32 bitwise,
// plus header/legacy-format inspection and rectangular (column-range) decode.
#include "src/storage/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/rng.h"
#include "src/core/quantize.h"
#include "src/tensor/tensor.h"

namespace hcache {
namespace {

Tensor RandomRows(int64_t rows, int64_t cols, uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  Tensor t({rows, cols});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0, scale));
  }
  return t;
}

std::vector<uint8_t> EncodeWholeChunk(ChunkCodec codec, const Tensor& t) {
  const int64_t rows = t.dim(0), cols = t.dim(1);
  std::vector<uint8_t> chunk(static_cast<size_t>(EncodedChunkBytes(codec, rows, cols)));
  WriteChunkHeader(codec, rows, cols, chunk.data());
  EncodeRowsInto(codec, t.data(), cols, rows, cols, chunk.data() + sizeof(ChunkHeader));
  return chunk;
}

Tensor DecodeWholeChunk(const std::vector<uint8_t>& chunk, int64_t legacy_cols) {
  ChunkInfo info;
  EXPECT_TRUE(InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), legacy_cols,
                           &info));
  Tensor out({info.rows, info.cols});
  DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, info.rows, 0,
                   info.cols, out.data(), info.cols);
  return out;
}

TEST(CodecTest, RowBytesAndChunkBytes) {
  EXPECT_EQ(CodecRowBytes(ChunkCodec::kFp32, 64), 256);
  EXPECT_EQ(CodecRowBytes(ChunkCodec::kFp16, 64), 128);
  EXPECT_EQ(CodecRowBytes(ChunkCodec::kInt8, 64), 68);  // values + per-row scale
  // v2 header: 16 descriptor bytes + payload CRC32C + header CRC32C.
  EXPECT_EQ(static_cast<int64_t>(sizeof(ChunkHeader)), 24);
  EXPECT_EQ(EncodedChunkBytes(ChunkCodec::kFp16, 64, 128), 24 + 64 * 256);
}

TEST(CodecTest, Fp16KnownValues) {
  // Exactly representable values round-trip unchanged.
  for (const float v : {0.0f, 1.0f, -1.0f, 0.5f, -2.0f, 65504.0f, 6.103515625e-05f,
                        5.9604644775390625e-08f}) {
    EXPECT_EQ(Fp16BitsToFp32(Fp32ToFp16Bits(v)), v) << v;
  }
  EXPECT_EQ(Fp32ToFp16Bits(1.0f), 0x3c00);
  EXPECT_EQ(Fp32ToFp16Bits(-2.0f), 0xc000);
  // Round-to-nearest-EVEN at the exact midpoint between 1.0 (0x3c00) and the next
  // half 1.0009765625 (0x3c01): 1.00048828125 ties down to the even mantissa.
  EXPECT_EQ(Fp32ToFp16Bits(1.00048828125f), 0x3c00);
  // Midpoint between 0x3c01 and 0x3c02 ties UP to the even mantissa.
  EXPECT_EQ(Fp32ToFp16Bits(1.00146484375f), 0x3c02);
  // Signed zero survives.
  EXPECT_EQ(Fp32ToFp16Bits(-0.0f), 0x8000);
  EXPECT_EQ(Fp16BitsToFp32(0x8000), -0.0f);
  EXPECT_TRUE(std::signbit(Fp16BitsToFp32(0x8000)));
}

TEST(CodecTest, Fp16SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(Fp16BitsToFp32(Fp32ToFp16Bits(1e6f)), 65504.0f);
  EXPECT_EQ(Fp16BitsToFp32(Fp32ToFp16Bits(-1e30f)), -65504.0f);
  EXPECT_EQ(Fp16BitsToFp32(Fp32ToFp16Bits(65520.0f)), 65504.0f);  // first value RNE'ing up
  // NaN stays NaN; Inf saturates like any out-of-range magnitude is clamped to Inf.
  EXPECT_TRUE(std::isnan(Fp16BitsToFp32(Fp32ToFp16Bits(std::nanf("")))));
  EXPECT_TRUE(std::isinf(Fp16BitsToFp32(Fp32ToFp16Bits(std::numeric_limits<float>::infinity()))));
}

TEST(CodecTest, Fp16RoundTripWithinHalfUlpEverywhere) {
  // Sweep magnitudes across the half normal + subnormal range, both signs, random
  // mantissas: the RNE round trip must land within 0.5 ulp of half precision (the
  // issue's acceptance bound is 1 ulp; RNE is strictly tighter).
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    const double mag = std::ldexp(1.0 + rng.NextDouble(), static_cast<int>(rng.NextBounded(40)) - 24);
    if (mag > 65504.0) {
      continue;  // the saturation band is covered by Fp16SaturatesInsteadOfOverflowing
    }
    const float x = static_cast<float>(rng.NextDouble() < 0.5 ? -mag : mag);
    const float y = Fp16BitsToFp32(Fp32ToFp16Bits(x));
    const float ulp = Fp16UlpOf(y);
    EXPECT_LE(std::fabs(y - x), 0.5f * ulp + 1e-30f) << "x=" << x << " y=" << y;
  }
}

TEST(CodecTest, Fp16ChunkRoundTripBounded) {
  const Tensor t = RandomRows(64, 96, 11);
  const auto chunk = EncodeWholeChunk(ChunkCodec::kFp16, t);
  const Tensor back = DecodeWholeChunk(chunk, 96);
  for (int64_t i = 0; i < t.numel(); ++i) {
    const float ulp = Fp16UlpOf(back.at(i));
    EXPECT_LE(std::fabs(back.at(i) - t.at(i)), ulp) << i;
  }
}

TEST(CodecTest, Int8ChunkMatchesQuantizeRowsAndBound) {
  const Tensor t = RandomRows(32, 80, 3, 4.0);
  const auto chunk = EncodeWholeChunk(ChunkCodec::kInt8, t);
  const Tensor back = DecodeWholeChunk(chunk, 80);
  // Same kernel as core/quantize.cc: identical reconstruction...
  const QuantizedRows q = QuantizeRows(t);
  const Tensor ref = DequantizeRows(q);
  EXPECT_TRUE(Tensor::BitwiseEqual(back, ref));
  // ...and within the analytic per-row bound.
  for (int64_t r = 0; r < t.dim(0); ++r) {
    const float bound = RowErrorBound(q, r);
    for (int64_t c = 0; c < t.dim(1); ++c) {
      EXPECT_LE(std::fabs(back.at(r, c) - t.at(r, c)), bound) << r << "," << c;
    }
  }
}

TEST(CodecTest, Fp32ChunkRoundTripsBitwise) {
  const Tensor t = RandomRows(17, 33, 5);
  const auto chunk = EncodeWholeChunk(ChunkCodec::kFp32, t);
  const Tensor back = DecodeWholeChunk(chunk, 33);
  EXPECT_TRUE(Tensor::BitwiseEqual(back, t));
}

TEST(CodecTest, LegacyHeaderlessChunkDecodesAsFp32) {
  const Tensor t = RandomRows(9, 24, 6);
  std::vector<uint8_t> raw(static_cast<size_t>(t.numel()) * sizeof(float));
  std::memcpy(raw.data(), t.data(), raw.size());
  ChunkInfo info;
  ASSERT_TRUE(InspectChunk(raw.data(), static_cast<int64_t>(raw.size()), 24, &info));
  EXPECT_EQ(info.header_bytes, 0);
  EXPECT_EQ(info.codec, ChunkCodec::kFp32);
  EXPECT_EQ(info.rows, 9);
  const Tensor back = DecodeWholeChunk(raw, 24);
  EXPECT_TRUE(Tensor::BitwiseEqual(back, t));
}

TEST(CodecTest, InspectRejectsGarbage) {
  std::vector<uint8_t> junk(13, 0xab);  // not a multiple of any row size
  ChunkInfo info;
  EXPECT_FALSE(InspectChunk(junk.data(), static_cast<int64_t>(junk.size()), 24, &info));
  // Truncated encoded chunk: header promises more rows than the bytes hold.
  const Tensor t = RandomRows(8, 16, 8);
  auto chunk = EncodeWholeChunk(ChunkCodec::kFp16, t);
  chunk.resize(chunk.size() - 1);
  EXPECT_FALSE(InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), 16, &info));
}

TEST(CodecTest, ColumnRangeDecodeSplitsInterleavedRows) {
  // The KV read path decodes the [K | V] halves of one stored row into two tensors.
  const int64_t rows = 12, kv = 20;
  const Tensor t = RandomRows(rows, 2 * kv, 9);
  for (const ChunkCodec codec :
       {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    const auto chunk = EncodeWholeChunk(codec, t);
    const Tensor whole = DecodeWholeChunk(chunk, 2 * kv);
    ChunkInfo info;
    ASSERT_TRUE(InspectChunk(chunk.data(), static_cast<int64_t>(chunk.size()), 2 * kv, &info));
    Tensor k({rows, kv}), v({rows, kv});
    DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows, 0, kv,
                     k.data(), kv);
    DecodeChunkRange(chunk.data(), static_cast<int64_t>(chunk.size()), info, 0, rows, kv,
                     2 * kv, v.data(), kv);
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < kv; ++c) {
        EXPECT_EQ(k.at(r, c), whole.at(r, c)) << ChunkCodecName(codec);
        EXPECT_EQ(v.at(r, c), whole.at(r, kv + c)) << ChunkCodecName(codec);
      }
    }
  }
}

TEST(CodecTest, ChunkSizeCoversRowsAcceptsEveryValidEncoding) {
  for (const int64_t cols : {8, 64, 4096}) {
    for (const int64_t rows : {1, 7, 33, 64}) {
      for (const ChunkCodec codec :
           {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
        EXPECT_TRUE(
            ChunkSizeCoversRows(EncodedChunkBytes(codec, rows, cols), rows, 64, cols, codec))
            << ChunkCodecName(codec) << " rows=" << rows << " cols=" << cols;
        // Legacy headerless FP32 chunks are accepted under any configured codec.
        EXPECT_TRUE(ChunkSizeCoversRows(rows * cols * static_cast<int64_t>(sizeof(float)),
                                        rows, 64, cols, codec));
      }
    }
  }
}

TEST(CodecTest, ChunkSizeCoversRowsRejectsShortChunks) {
  // The regression the check exists for: a partially saved chunk (fewer rows than
  // wanted) must be reported incomplete, so restoration falls back to recompute
  // instead of CHECK-failing mid-decode.
  for (const int64_t cols : {8, 64, 4096}) {
    for (const ChunkCodec codec :
         {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
      const int64_t short_bytes = EncodedChunkBytes(codec, 33, cols);  // 33 of 64 wanted
      EXPECT_FALSE(ChunkSizeCoversRows(short_bytes, 64, 64, cols, codec))
          << ChunkCodecName(codec) << " cols=" << cols;
    }
    EXPECT_FALSE(ChunkSizeCoversRows(33 * cols * static_cast<int64_t>(sizeof(float)), 64, 64,
                                     cols, ChunkCodec::kFp32));
    // Absent chunk (ChunkSize returns -1) and zero bytes never cover anything.
    EXPECT_FALSE(ChunkSizeCoversRows(-1, 1, 64, cols, ChunkCodec::kFp32));
    EXPECT_FALSE(ChunkSizeCoversRows(0, 1, 64, cols, ChunkCodec::kFp32));
  }
}

TEST(CodecTest, ChunkSizeCoversRowsRejectsCrossCodecAliasing) {
  // An FP32 payload of r rows is byte-identical in size to an FP16 payload of 2r rows
  // (r*4*cols == 2r*2*cols). With the expected codec pinned to what the context's
  // writer uses, a half-saved FP32 chunk must NOT read as a complete FP16 chunk.
  const int64_t cols = 4096;
  const int64_t half_fp32 = EncodedChunkBytes(ChunkCodec::kFp32, 4, cols);  // 4 of 8 rows
  EXPECT_EQ(half_fp32, EncodedChunkBytes(ChunkCodec::kFp16, 8, cols));      // the alias
  EXPECT_FALSE(ChunkSizeCoversRows(half_fp32, 8, 8, cols, ChunkCodec::kFp32));
}

}  // namespace
}  // namespace hcache
