// Library-level fsck: classification of every damage class, quarantine repair
// semantics, the orphaned-temp sweep, and the JSON report CI parses.
#include "src/storage/fsck.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/file_backend.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/memory_backend.h"

namespace hcache {
namespace {

namespace fs = std::filesystem;

constexpr int64_t kChunkBytes = 64 * 1024;

std::vector<uint8_t> SealedChunk(int64_t rows, int64_t cols, uint8_t fill) {
  std::vector<uint8_t> chunk(
      static_cast<size_t>(EncodedChunkBytes(ChunkCodec::kFp32, rows, cols)), fill);
  WriteChunkHeader(ChunkCodec::kFp32, rows, cols, chunk.data());
  return chunk;
}

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("hcache_fsck_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  std::filesystem::path base_;
};

TEST_F(FsckTest, ClassifiesEveryDamageClass) {
  MemoryBackend backend(kChunkBytes);
  InstrumentedBackend chaos(&backend);

  const auto sealed = SealedChunk(8, 16, 0x11);
  const int64_t bytes = static_cast<int64_t>(sealed.size());
  // Two clean, one opaque, one corrupt (payload flip), one partial (torn tail).
  ASSERT_TRUE(backend.WriteChunk({1, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(backend.WriteChunk({1, 1, 0}, sealed.data(), bytes));
  std::vector<char> blob(256, 'o');
  ASSERT_TRUE(backend.WriteChunk({2, 0, 0}, blob.data(), 256));
  ASSERT_TRUE(backend.WriteChunk({3, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(chaos.CorruptChunk({3, 0, 0}, 8 * (sizeof(ChunkHeader) + 7) + 2));
  ASSERT_TRUE(backend.WriteChunk({4, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(chaos.TruncateChunk({4, 0, 0}, bytes / 2));

  const FsckReport before = RunFsck(&backend);
  EXPECT_EQ(before.chunks_scanned, 5);
  EXPECT_EQ(before.clean, 2);
  EXPECT_EQ(before.unverified, 1);
  EXPECT_EQ(before.corrupt, 1);
  EXPECT_EQ(before.partial, 1);
  EXPECT_EQ(before.orphaned_temp_files, 0);
  EXPECT_EQ(before.repaired, 0);
  EXPECT_FALSE(before.Healthy());
  // Findings list damage only (clean and unverified chunks are counted, not listed).
  ASSERT_EQ(before.findings.size(), 2u);
  for (const FsckFinding& f : before.findings) {
    EXPECT_FALSE(f.repaired);
    if (f.klass == FsckClass::kCorrupt) {
      EXPECT_EQ(f.key.context_id, 3);
      EXPECT_NE(f.detail.find("CRC"), std::string::npos) << f.detail;
    } else {
      EXPECT_EQ(f.klass, FsckClass::kPartial);
      EXPECT_EQ(f.key.context_id, 4);
      EXPECT_NE(f.detail.find("truncated"), std::string::npos) << f.detail;
    }
  }
  // Report-only: nothing was touched.
  EXPECT_TRUE(backend.HasChunk({3, 0, 0}));
  EXPECT_TRUE(backend.HasChunk({4, 0, 0}));
}

TEST_F(FsckTest, RepairQuarantinesDamageAndSparesUnverified) {
  MemoryBackend backend(kChunkBytes);
  InstrumentedBackend chaos(&backend);
  const auto sealed = SealedChunk(8, 16, 0x22);
  const int64_t bytes = static_cast<int64_t>(sealed.size());
  ASSERT_TRUE(backend.WriteChunk({1, 0, 0}, sealed.data(), bytes));
  std::vector<char> blob(128, 'u');
  ASSERT_TRUE(backend.WriteChunk({2, 0, 0}, blob.data(), 128));
  ASSERT_TRUE(backend.WriteChunk({3, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(chaos.CorruptChunk({3, 0, 0}, 8 * sizeof(ChunkHeader)));
  ASSERT_TRUE(backend.WriteChunk({4, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(chaos.TruncateChunk({4, 0, 0}, bytes - 4));

  FsckOptions repair;
  repair.repair = true;
  const FsckReport r = RunFsck(&backend, repair);
  EXPECT_EQ(r.repaired, 2);
  for (const FsckFinding& f : r.findings) {
    EXPECT_TRUE(f.repaired);
  }
  // Quarantine turns detected-corrupt (-2) into an ordinary miss (-1): the restore
  // path recomputes instead of tripping a CRC failure on every read.
  std::vector<char> buf(static_cast<size_t>(bytes));
  EXPECT_EQ(backend.ReadChunk({3, 0, 0}, buf.data(), bytes), -1);
  EXPECT_EQ(backend.ReadChunk({4, 0, 0}, buf.data(), bytes), -1);
  // Clean and unverified chunks survive repair untouched.
  EXPECT_EQ(backend.ReadChunk({1, 0, 0}, buf.data(), bytes), bytes);
  EXPECT_EQ(backend.ReadChunk({2, 0, 0}, buf.data(), 128), 128);

  const FsckReport after = RunFsck(&backend);
  EXPECT_TRUE(after.Healthy());
  EXPECT_EQ(after.chunks_scanned, 2);
  EXPECT_EQ(after.clean, 1);
  EXPECT_EQ(after.unverified, 1);
}

TEST_F(FsckTest, SweepsOrphanedTempFilesUnderScanDirs) {
  // sweep_temp_files=false models inspecting a store that hasn't been reopened
  // since the writer died — fsck is what finds the residue.
  FileBackendOptions opts;
  opts.sweep_temp_files = false;
  FileBackend backend({(base_ / "d0").string()}, kChunkBytes, opts);
  const auto sealed = SealedChunk(4, 8, 0x33);
  ASSERT_TRUE(backend.WriteChunk({1, 0, 0}, sealed.data(),
                                 static_cast<int64_t>(sealed.size())));
  const fs::path orphan = base_ / "d0" / "ctx1" / "L2_C0.bin.tmp";
  {
    std::FILE* f = std::fopen(orphan.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn", f);
    std::fclose(f);
  }

  FsckOptions scan;
  scan.scan_dirs = {(base_ / "d0").string()};
  const FsckReport before = RunFsck(&backend, scan);
  EXPECT_EQ(before.orphaned_temp_files, 1);
  EXPECT_FALSE(before.Healthy());
  EXPECT_TRUE(fs::exists(orphan));  // report-only

  scan.repair = true;
  const FsckReport repaired = RunFsck(&backend, scan);
  EXPECT_EQ(repaired.orphaned_temp_files, 1);
  EXPECT_EQ(repaired.repaired, 1);
  EXPECT_FALSE(fs::exists(orphan));

  EXPECT_TRUE(RunFsck(&backend, scan).Healthy());
}

TEST_F(FsckTest, JsonReportCarriesTheCountsAndFindings) {
  MemoryBackend backend(kChunkBytes);
  InstrumentedBackend chaos(&backend);
  const auto sealed = SealedChunk(8, 16, 0x44);
  const int64_t bytes = static_cast<int64_t>(sealed.size());
  ASSERT_TRUE(backend.WriteChunk({1, 0, 0}, sealed.data(), bytes));
  ASSERT_TRUE(backend.WriteChunk({6, 3, 2}, sealed.data(), bytes));
  ASSERT_TRUE(chaos.CorruptChunk({6, 3, 2}, 8 * (sizeof(ChunkHeader) + 1)));

  const std::string json = RunFsck(&backend).ToJson();
  for (const char* needle :
       {"\"chunks_scanned\":2", "\"clean\":1", "\"corrupt\":1", "\"partial\":0",
        "\"orphaned_temp_files\":0", "\"healthy\":false", "\"findings\":[",
        "\"class\":\"corrupt\"", "\"context\":6", "\"layer\":3", "\"chunk\":2",
        "\"repaired\":false"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }

  MemoryBackend pristine(kChunkBytes);
  ASSERT_TRUE(pristine.WriteChunk({1, 0, 0}, sealed.data(), bytes));
  const std::string clean_json = RunFsck(&pristine).ToJson();
  EXPECT_NE(clean_json.find("\"healthy\":true"), std::string::npos) << clean_json;
  EXPECT_NE(clean_json.find("\"findings\":[]"), std::string::npos) << clean_json;
}

TEST_F(FsckTest, DistributedScanFindsAndRepairsUnderReplication) {
  DistributedColdOptions opts;
  opts.background_repair = false;
  DistributedColdBackend dist(3, kChunkBytes, opts);
  const auto sealed = SealedChunk(8, 16, 0x55);
  const int64_t bytes = static_cast<int64_t>(sealed.size());
  for (int64_t c = 0; c < 6; ++c) {
    ASSERT_TRUE(dist.WriteChunk({1, 0, c}, sealed.data(), bytes));
  }
  // Damage two chunks differently: one home copy bit-flipped at rest, one home
  // copy deleted out from under the index (simulated media loss).
  const auto home_a = dist.CheckReplication({1, 0, 0}).home;
  ASSERT_TRUE(dist.node_instrument(home_a[0])->CorruptChunk(
      {1, 0, 0}, 8 * (sizeof(ChunkHeader) + 3)));
  const auto home_b = dist.CheckReplication({1, 0, 1}).home;
  ASSERT_TRUE(dist.node_store(home_b[1])->DeleteChunk({1, 0, 1}));

  FsckReport before = RunFsck(&dist);
  EXPECT_EQ(before.chunks_scanned, 11);  // 6 keys x R=2, minus the deleted copy
  EXPECT_EQ(before.corrupt, 1);          // the physical per-node scan
  EXPECT_EQ(before.under_replicated, 2); // the logical replication audit
  EXPECT_FALSE(before.Healthy());
  ASSERT_EQ(before.nodes.size(), 3u);
  EXPECT_EQ(before.nodes[static_cast<size_t>(home_a[0])].corrupt, 1);
  const std::string json = before.ToJson();
  for (const char* needle : {"\"under_replicated\":2", "\"nodes\":[", "\"node\":",
                             "\"class\":\"under-replicated\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }

  // --repair: quarantine the bad copy, then re-replicate both keys from their
  // surviving healthy copies.
  FsckOptions repair;
  repair.repair = true;
  FsckReport fixed = RunFsck(&dist, repair);
  EXPECT_EQ(fixed.repaired, 3);  // 1 quarantined copy + 2 re-replications
  EXPECT_EQ(fixed.under_replicated, 0);

  FsckReport after = RunFsck(&dist);
  EXPECT_TRUE(after.Healthy()) << after.ToJson();
  EXPECT_EQ(after.chunks_scanned, 12);
  for (int64_t c = 0; c < 6; ++c) {
    EXPECT_TRUE(dist.CheckReplication({1, 0, c}).FullyReplicated()) << c;
  }
}

TEST_F(FsckTest, DedupScanAuditsRefcountInvariantAndRepairs) {
  MemoryBackend phys(kChunkBytes);
  DedupBackend dedup(&phys);
  const auto shared = SealedChunk(8, 16, 0x22);
  const auto solo = SealedChunk(8, 16, 0x33);
  const int64_t bytes = static_cast<int64_t>(shared.size());
  for (int64_t ctx = 1; ctx <= 3; ++ctx) {
    ASSERT_TRUE(dedup.WriteChunk({ctx, 0, 0}, shared.data(), bytes));
  }
  ASSERT_TRUE(dedup.WriteChunk({4, 0, 0}, solo.data(), bytes));
  // Healthy store: the scan walks the PHYSICAL plane — 2 unique chunks, not 4
  // logical keys — and each carries a verifiable v2 header.
  FsckReport healthy = RunFsck(&dedup);
  EXPECT_TRUE(healthy.Healthy()) << healthy.ToJson();
  EXPECT_EQ(healthy.chunks_scanned, 2);
  EXPECT_EQ(healthy.clean, 2);

  // Orphan: unreferenced bytes in the physical store. Missing: the shared
  // chunk's bytes vanish behind the index's back.
  ASSERT_TRUE(phys.WriteChunk({77, 77, 77}, solo.data(), 256));
  ChunkKey shared_key{};
  for (const auto& [pkey, psize] : dedup.ListPhysicalChunks()) {
    std::vector<uint8_t> tmp(static_cast<size_t>(psize));
    ASSERT_EQ(phys.ReadChunkUnverified(pkey, tmp.data(), psize), psize);
    if (std::memcmp(tmp.data(), shared.data(), tmp.size()) == 0) {
      shared_key = pkey;
    }
  }
  ASSERT_TRUE(phys.DeleteChunk(shared_key));

  FsckReport damaged = RunFsck(&dedup);
  EXPECT_FALSE(damaged.Healthy());
  EXPECT_EQ(damaged.dedup_orphans, 1);
  EXPECT_EQ(damaged.dedup_missing, 1);
  EXPECT_EQ(damaged.dedup_drift, 0);
  EXPECT_NE(damaged.ToJson().find("\"dedup-orphan\""), std::string::npos);
  EXPECT_NE(damaged.ToJson().find("\"dedup-missing\""), std::string::npos);

  FsckOptions repair;
  repair.repair = true;
  FsckReport fixed = RunFsck(&dedup, repair);
  EXPECT_EQ(fixed.repaired, 2);
  // Referents of the lost chunk read as ordinary misses (recompute fallback);
  // the intact chunk still serves; the orphan bytes are gone.
  std::vector<uint8_t> buf(static_cast<size_t>(bytes));
  EXPECT_EQ(dedup.ReadChunk({1, 0, 0}, buf.data(), bytes), -1);
  EXPECT_EQ(dedup.ReadChunk({4, 0, 0}, buf.data(), bytes), bytes);
  EXPECT_FALSE(phys.HasChunk({77, 77, 77}));
  EXPECT_TRUE(RunFsck(&dedup).Healthy());
}

TEST_F(FsckTest, DedupOverDistributedScansEveryNodeAndAudits) {
  // dedup(distributed(...)): the physical scan must recurse into the per-node
  // deep scan, and the audit must still see the wrapped plane's logical view.
  DistributedColdBackend dist(3, kChunkBytes);
  DedupBackend dedup(&dist);
  const auto sealed = SealedChunk(8, 16, 0x44);
  const int64_t bytes = static_cast<int64_t>(sealed.size());
  for (int64_t ctx = 1; ctx <= 4; ++ctx) {
    ASSERT_TRUE(dedup.WriteChunk({ctx, 0, 0}, sealed.data(), bytes));
  }
  FsckReport report = RunFsck(&dedup);
  EXPECT_TRUE(report.Healthy()) << report.ToJson();
  EXPECT_EQ(report.nodes.size(), 3u);
  // One unique chunk, R=2 home copies across the nodes.
  EXPECT_EQ(report.chunks_scanned, 2);
  EXPECT_EQ(dedup.Stats().unique_chunks, 1);
}

}  // namespace
}  // namespace hcache
