// Storage-plane codec integration: per-codec save/read round trips through the
// two-stage saver, mixed-version contexts (legacy headerless FP32 chunks next to
// encoded FP16 chunks), bit-identical decode across File/Memory/Tiered backends, and
// the steady-state save path's no-allocation guarantee.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <new>
#include <numeric>

#include "src/common/rng.h"
#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/hidden_saver.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

// --- global allocation counter (used by SteadyStateSavePathDoesNotAllocate) ---
//
// Replacing the global allocation functions is the only way to observe *every*
// allocation on the save path — staging, flush payload, and backend write alike.
namespace {
std::atomic<long long> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hcache {
namespace {

constexpr int64_t kChunkBytes = 1 << 20;

Tensor RandomTokens(const ModelConfig& cfg, int64_t total, uint64_t seed) {
  Rng rng(seed);
  Tensor all({total, cfg.hidden_dim});
  for (int64_t i = 0; i < all.numel(); ++i) {
    all.at(i) = static_cast<float>(rng.NextNormal(0, 1));
  }
  return all;
}

void Feed(HiddenStateSink* sink, const ModelConfig& cfg, const Tensor& all, int64_t step) {
  const int64_t total = all.dim(0);
  for (int64_t start = 0; start < total; start += step) {
    const int64_t n = std::min(step, total - start);
    Tensor batch({n, cfg.hidden_dim});
    std::vector<int32_t> pos(static_cast<size_t>(n));
    std::iota(pos.begin(), pos.end(), static_cast<int32_t>(start));
    for (int64_t i = 0; i < n; ++i) {
      std::copy(all.row(start + i), all.row(start + i) + cfg.hidden_dim, batch.row(i));
    }
    for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
      sink->OnLayerInput(layer, batch, pos.data(), n);
    }
  }
}

class CodecStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = ModelConfig::TinyLlama(2, 32, 2);
    base_ = std::filesystem::temp_directory_path() /
            ("hcache_codec_storage_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::unique_ptr<FileBackend> MakeFile(const char* tag) {
    return std::make_unique<FileBackend>(
        std::vector<std::string>{(base_ / tag / "d0").string(), (base_ / tag / "d1").string()},
        kChunkBytes);
  }

  ModelConfig cfg_;
  std::filesystem::path base_;
};

TEST_F(CodecStorageTest, PerCodecRoundTripWithinBounds) {
  const Tensor all = RandomTokens(cfg_, 37, 21);
  for (const ChunkCodec codec :
       {ChunkCodec::kFp32, ChunkCodec::kFp16, ChunkCodec::kInt8}) {
    MemoryBackend store(kChunkBytes);
    HiddenStateWriter writer(&store, nullptr, cfg_, 1, /*chunk_tokens=*/8, codec);
    Feed(&writer, cfg_, all, 5);
    writer.Seal();
    HiddenStateReader reader(&store, cfg_, 8);
    ASSERT_TRUE(reader.ContextComplete(1, 37, codec)) << ChunkCodecName(codec);
    const Tensor got = reader.ReadLayer(1, 0, 37);
    if (codec == ChunkCodec::kFp32) {
      EXPECT_TRUE(Tensor::BitwiseEqual(got, all));
      continue;
    }
    for (int64_t i = 0; i < all.numel(); ++i) {
      const float err = std::fabs(got.at(i) - all.at(i));
      if (codec == ChunkCodec::kFp16) {
        EXPECT_LE(err, Fp16UlpOf(got.at(i))) << ChunkCodecName(codec) << " @" << i;
      } else {
        // Per-row symmetric INT8: error ≤ scale/2 = max|row|/254.
        const int64_t r = i / cfg_.hidden_dim;
        float max_abs = 0;
        for (int64_t c = 0; c < cfg_.hidden_dim; ++c) {
          max_abs = std::max(max_abs, std::fabs(all.at(r, c)));
        }
        EXPECT_LE(err, max_abs / 254.0f + 1e-12f) << ChunkCodecName(codec) << " @" << i;
      }
    }
  }
}

TEST_F(CodecStorageTest, CompressionShowsUpInBackendBytes) {
  const Tensor all = RandomTokens(cfg_, 64, 4);
  int64_t bytes_fp32 = 0, bytes_fp16 = 0, bytes_int8 = 0;
  for (const auto& [codec, out] :
       {std::pair{ChunkCodec::kFp32, &bytes_fp32}, {ChunkCodec::kFp16, &bytes_fp16},
        {ChunkCodec::kInt8, &bytes_int8}}) {
    MemoryBackend store(kChunkBytes);
    HiddenStateWriter writer(&store, nullptr, cfg_, 1, 16, codec);
    Feed(&writer, cfg_, all, 16);
    writer.Seal();
    *out = store.bytes_stored();
    EXPECT_EQ(writer.encoded_bytes_written(), *out);
    EXPECT_EQ(writer.logical_bytes_written(),
              cfg_.num_layers * 64 * cfg_.hidden_dim *
                  static_cast<int64_t>(sizeof(float)));
  }
  // Headers keep the ratios slightly under the ideal 2x/4x; they must still be close.
  EXPECT_GT(static_cast<double>(bytes_fp32) / bytes_fp16, 1.9);
  EXPECT_GT(static_cast<double>(bytes_fp32) / bytes_int8, 3.3);
}

TEST_F(CodecStorageTest, MixedVersionContextReadsBack) {
  // A context saved by the old code (legacy headerless FP32 chunks) and resumed by the
  // new code (encoded chunks) must read back as one coherent layer.
  const int64_t chunk_tokens = 8;
  MemoryBackend store(kChunkBytes);
  const Tensor all = RandomTokens(cfg_, 16, 13);
  // Chunk 0: legacy raw FP32 bytes, written directly (the v0 on-disk format).
  for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
    store.WriteChunk(ChunkKey{1, layer, 0}, all.data(),
                     chunk_tokens * cfg_.hidden_dim * static_cast<int64_t>(sizeof(float)));
  }
  // Chunks 1+: written by a fresh FP16 writer that resumes at token 8.
  HiddenStateWriter writer(&store, nullptr, cfg_, 1, chunk_tokens, ChunkCodec::kFp16);
  {
    // Skip the writer past the legacy tokens by feeding them; its chunk 0 write
    // *overwrites* the legacy chunk with an encoded one — emulate the pre-upgrade
    // state by restoring the legacy bytes afterwards.
    Feed(&writer, cfg_, all, 16);
    writer.Seal();
    for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
      store.WriteChunk(ChunkKey{1, layer, 0}, all.data(),
                       chunk_tokens * cfg_.hidden_dim * static_cast<int64_t>(sizeof(float)));
    }
  }
  HiddenStateReader reader(&store, cfg_, chunk_tokens);
  // Completeness is checked under the engine's configured codec (legacy chunks are
  // always additionally accepted).
  ASSERT_TRUE(reader.ContextComplete(1, 16, ChunkCodec::kFp16));
  const Tensor got = reader.ReadLayer(1, 0, 16);
  for (int64_t r = 0; r < 16; ++r) {
    for (int64_t c = 0; c < cfg_.hidden_dim; ++c) {
      if (r < chunk_tokens) {
        EXPECT_EQ(got.at(r, c), all.at(r, c)) << "legacy half must be bit-exact";
      } else {
        EXPECT_LE(std::fabs(got.at(r, c) - all.at(r, c)), Fp16UlpOf(got.at(r, c)));
      }
    }
  }
}

TEST_F(CodecStorageTest, DecodedBytesBitStableAcrossBackends) {
  // The acceptance bar for FP16: every backend returns the *same* decoded floats.
  const Tensor all = RandomTokens(cfg_, 48, 17);
  for (const ChunkCodec codec :
       {ChunkCodec::kFp16, ChunkCodec::kInt8, ChunkCodec::kFp32}) {
    auto file = MakeFile("file");
    MemoryBackend memory(kChunkBytes);
    auto cold = MakeFile("cold");
    TieredBackend tiered(cold.get(), 2 * kChunkBytes);
    std::vector<StorageBackend*> backends{file.get(), &memory, &tiered};
    std::vector<Tensor> decoded;
    for (StorageBackend* b : backends) {
      HiddenStateWriter writer(b, nullptr, cfg_, 1, 8, codec);
      Feed(&writer, cfg_, all, 7);
      writer.Seal();
      decoded.push_back(HiddenStateReader(b, cfg_, 8).ReadLayer(1, 1, 48));
    }
    EXPECT_TRUE(Tensor::BitwiseEqual(decoded[0], decoded[1])) << ChunkCodecName(codec);
    EXPECT_TRUE(Tensor::BitwiseEqual(decoded[1], decoded[2])) << ChunkCodecName(codec);
    file->DeleteContext(1);
    tiered.DeleteContext(1);
  }
}

// A backend that stores chunks in preallocated slots: WriteChunk never allocates, so
// the whole steady-state save path (snapshot + flush + backend) can be asserted
// allocation-free.
class PreallocatedBackend : public StorageBackend {
 public:
  PreallocatedBackend(int64_t chunk_bytes, int64_t slots)
      : StorageBackend(chunk_bytes), slots_(static_cast<size_t>(slots)) {
    for (auto& s : slots_) {
      s.resize(static_cast<size_t>(chunk_bytes));
    }
  }
  bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) override {
    auto& slot = slots_[static_cast<size_t>(key.chunk_index) % slots_.size()];
    std::memcpy(slot.data(), data, static_cast<size_t>(bytes));
    ++writes_;
    return true;
  }
  int64_t ReadChunk(const ChunkKey&, void*, int64_t) const override { return -1; }
  bool HasChunk(const ChunkKey&) const override { return false; }
  int64_t ChunkSize(const ChunkKey&) const override { return -1; }
  void DeleteContext(int64_t) override {}
  StorageStats Stats() const override { return {}; }
  std::string Name() const override { return "prealloc"; }
  int64_t writes() const { return writes_; }

 private:
  std::vector<std::vector<uint8_t>> slots_;
  int64_t writes_ = 0;
};

TEST_F(CodecStorageTest, SteadyStateSavePathDoesNotAllocate) {
  for (const ChunkCodec codec : {ChunkCodec::kFp16, ChunkCodec::kFp32}) {
    const int64_t chunk_tokens = 4;
    PreallocatedBackend store(kChunkBytes, 8);
    HiddenStateWriter writer(&store, nullptr, cfg_, 1, chunk_tokens, codec);
    Tensor row({1, cfg_.hidden_dim});
    row.Fill(0.25f);
    // Warm-up: fill and flush a few chunks so the payload pool reaches steady depth.
    int32_t pos = 0;
    for (; pos < 3 * static_cast<int32_t>(chunk_tokens); ++pos) {
      for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
        writer.OnLayerInput(layer, row, &pos, 1);
      }
    }
    const int64_t allocs_after_warmup = writer.payload_buffer_allocations();
    EXPECT_GE(allocs_after_warmup, 1);
    // Steady state: many more sealed chunks, zero allocations anywhere on the path.
    g_alloc_count.store(0);
    g_count_allocs.store(true);
    for (; pos < 40 * static_cast<int32_t>(chunk_tokens); ++pos) {
      for (int64_t layer = 0; layer < cfg_.num_layers; ++layer) {
        writer.OnLayerInput(layer, row, &pos, 1);
      }
    }
    g_count_allocs.store(false);
    EXPECT_EQ(g_alloc_count.load(), 0)
        << "steady-state save path allocated under codec " << ChunkCodecName(codec);
    EXPECT_EQ(writer.payload_buffer_allocations(), allocs_after_warmup)
        << "payload buffers were not recycled";
    EXPECT_GT(store.writes(), 60);
  }
}

}  // namespace
}  // namespace hcache
