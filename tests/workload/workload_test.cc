#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/workload/arrival.h"
#include "src/workload/leval.h"
#include "src/workload/sharegpt.h"

namespace hcache {
namespace {

TEST(ShareGptTest, DeterministicForSeed) {
  ShareGptGenerator a(42), b(42);
  for (int i = 0; i < 10; ++i) {
    const Conversation ca = a.Next();
    const Conversation cb = b.Next();
    ASSERT_EQ(ca.rounds.size(), cb.rounds.size());
    for (size_t r = 0; r < ca.rounds.size(); ++r) {
      EXPECT_EQ(ca.rounds[r].input_tokens, cb.rounds[r].input_tokens);
      EXPECT_EQ(ca.rounds[r].output_tokens, cb.rounds[r].output_tokens);
    }
  }
}

TEST(ShareGptTest, MeansMatchPublishedStats) {
  // Fig 3a: mean input 66.8, mean output 358.8 per round. Allow 15% sampling slack.
  ShareGptGenerator gen(1);
  Histogram inputs, outputs;
  for (int i = 0; i < 3000; ++i) {
    for (const auto& r : gen.Next().rounds) {
      inputs.Add(static_cast<double>(r.input_tokens));
      outputs.Add(static_cast<double>(r.output_tokens));
    }
  }
  EXPECT_NEAR(inputs.Mean(), 66.8, 10.0);
  EXPECT_NEAR(outputs.Mean(), 358.8, 45.0);
}

TEST(ShareGptTest, HistoryCdfMedianNear2500) {
  // Fig 3b: the median accumulated history across restoration points is ~2.5K.
  ShareGptGenerator gen(2);
  Histogram history;
  for (int i = 0; i < 2000; ++i) {
    const Conversation c = gen.Next();
    // History observed at each round after the first (the restoration workload).
    for (size_t r = 1; r < c.rounds.size(); ++r) {
      history.Add(static_cast<double>(c.HistoryBefore(r)));
    }
  }
  EXPECT_GT(history.Median(), 1200.0);
  EXPECT_LT(history.Median(), 4000.0);
}

TEST(ShareGptTest, HistoriesRespectTruncation) {
  ShareGptGenerator gen(3);
  for (int i = 0; i < 2000; ++i) {
    const Conversation c = gen.Next();
    EXPECT_LE(c.TotalTokens(), ShareGptGenerator::kMaxHistoryTokens);
    EXPECT_GE(c.rounds.size(), 1u);
    for (const auto& r : c.rounds) {
      EXPECT_GE(r.input_tokens, 1);
      EXPECT_GE(r.output_tokens, 1);
    }
  }
}

TEST(ShareGptTest, HistoryBeforeAccumulates) {
  Conversation c;
  c.rounds = {{10, 20}, {5, 15}, {1, 1}};
  EXPECT_EQ(c.HistoryBefore(0), 0);
  EXPECT_EQ(c.HistoryBefore(1), 30);
  EXPECT_EQ(c.HistoryBefore(2), 50);
  EXPECT_EQ(c.TotalTokens(), 52);
}

TEST(LEvalTest, SubTaskMeansMatchTable1) {
  LEvalGenerator gen(4);
  for (const auto task :
       {LEvalTask::kPaperAssistant, LEvalTask::kGsm100, LEvalTask::kQuality}) {
    Histogram ctx, in;
    for (int i = 0; i < 3000; ++i) {
      const LongContextRequest r = gen.Next(task);
      ctx.Add(static_cast<double>(r.context_tokens));
      in.Add(static_cast<double>(r.input_tokens));
    }
    EXPECT_NEAR(ctx.Mean(), LEvalGenerator::MeanContext(task),
                LEvalGenerator::MeanContext(task) * 0.12)
        << LEvalTaskName(task);
    EXPECT_NEAR(in.Mean(), LEvalGenerator::MeanInput(task),
                LEvalGenerator::MeanInput(task) * 0.2)
        << LEvalTaskName(task);
  }
}

TEST(LEvalTest, ContextsSpan4KTo16K) {
  // §6.1.2: "history length spans within a large range from 4K to 16K".
  LEvalGenerator gen(5);
  const auto trace = gen.MixedTrace(500);
  EXPECT_EQ(trace.size(), 500u);
  Histogram ctx;
  for (const auto& r : trace) {
    EXPECT_GE(r.context_tokens, 512);
    EXPECT_LE(r.context_tokens, 32768);
    ctx.Add(static_cast<double>(r.context_tokens));
  }
  EXPECT_GT(ctx.Percentile(90), 8000.0);
  EXPECT_LT(ctx.Percentile(10), 8000.0);
}

TEST(LEvalTest, OutputsShortForReasoningTasks) {
  LEvalGenerator gen(6);
  Histogram out;
  for (int i = 0; i < 1000; ++i) {
    out.Add(static_cast<double>(gen.Next(LEvalTask::kGsm100).output_tokens));
  }
  EXPECT_LT(out.Mean(), 10.0);  // Table 1: 4.3
  EXPECT_GE(out.Min(), 1.0);
}

TEST(ArrivalTest, PoissonRateMatches) {
  PoissonArrivals arr(2.0, 7);
  const auto times = arr.Take(20000);
  EXPECT_EQ(times.size(), 20000u);
  // 20000 arrivals at rate 2/s take ~10000s.
  EXPECT_NEAR(times.back() / 10000.0, 1.0, 0.05);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(ArrivalTest, ZipfSkewConcentratesContexts) {
  ZipfianContextChooser uniform(100, 0.0, 8);
  ZipfianContextChooser skewed(100, 2.0, 8);
  int uniform_head = 0, skewed_head = 0;
  for (int i = 0; i < 5000; ++i) {
    uniform_head += uniform.NextContext() < 5;
    skewed_head += skewed.NextContext() < 5;
  }
  EXPECT_LT(uniform_head, 500);   // ~5%
  EXPECT_GT(skewed_head, 3000);   // head-dominated
}

}  // namespace
}  // namespace hcache
