#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include "src/sim/resource.h"

#include <vector>

namespace hcache {
namespace {

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  EXPECT_DOUBLE_EQ(sim.Run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, SimultaneousEventsKeepInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CallbacksCanScheduleMore) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] {
      ++fired;
      sim.Schedule(1.0, [&] { ++fired; });
    });
  });
  EXPECT_DOUBLE_EQ(sim.Run(), 3.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double fired_at = -1;
  sim.Schedule(2.0, [&] {
    sim.Schedule(-5.0, [&] { fired_at = sim.now(); });
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.empty());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SerialResourceTest, FcfsBackToBack) {
  Simulator sim;
  SerialResource r(&sim, "r");
  std::vector<double> done;
  r.Enqueue(2.0, [&] { done.push_back(sim.now()); });
  r.Enqueue(3.0, [&] { done.push_back(sim.now()); });
  sim.Run();
  EXPECT_EQ(done, (std::vector<double>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(r.total_busy(), 5.0);
}

TEST(SerialResourceTest, IdleGapThenWork) {
  Simulator sim;
  SerialResource r(&sim, "r");
  double second_done = 0;
  sim.Schedule(10.0, [&] { r.Enqueue(1.0, [&] { second_done = sim.now(); }); });
  r.Enqueue(2.0);
  sim.Run();
  // Second item starts at t=10 (resource idle since t=2).
  EXPECT_DOUBLE_EQ(second_done, 11.0);
  EXPECT_DOUBLE_EQ(r.total_busy(), 3.0);
  EXPECT_NEAR(r.Utilization(0.0, 11.0), 3.0 / 11.0, 1e-12);
}

TEST(SerialResourceTest, PipelineOverlapsTwoResources) {
  // Classic two-stage pipeline: 3 items, stage A 1s, stage B 2s.
  // Completion should be 1 + 3*2 = 7 (B is the bottleneck).
  Simulator sim;
  SerialResource a(&sim, "a");
  SerialResource b(&sim, "b");
  for (int i = 0; i < 3; ++i) {
    a.Enqueue(1.0, [&] { b.Enqueue(2.0); });
  }
  sim.Run();
  EXPECT_DOUBLE_EQ(b.next_free(), 7.0);
}

TEST(SerialResourceTest, ZeroDurationWork) {
  Simulator sim;
  SerialResource r(&sim, "r");
  bool ran = false;
  r.Enqueue(0.0, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(r.total_busy(), 0.0);
}

}  // namespace
}  // namespace hcache
