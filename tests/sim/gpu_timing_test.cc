#include "src/sim/gpu_timing.h"

#include <gtest/gtest.h>

#include "src/model/cost_model.h"

namespace hcache {
namespace {

TEST(GpuTimingTest, TileRounding) {
  EXPECT_EQ(RoundUpToTile(0), 0);
  EXPECT_EQ(RoundUpToTile(1), 64);
  EXPECT_EQ(RoundUpToTile(64), 64);
  EXPECT_EQ(RoundUpToTile(65), 128);
  EXPECT_EQ(RoundUpToTile(794), 832);
}

TEST(GpuTimingTest, GemmTimeIsStepFunction) {
  // The §4.1.1 observation: "executing a GEMM kernel with fewer tokens may consume a
  // similar amount of time as one with more tokens".
  GpuTimingModel gpu(GpuSpec::A100());
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  const double t794 = gpu.GemmTime(794, cfg.hidden_dim, 2 * cfg.hidden_dim);
  const double t832 = gpu.GemmTime(832, cfg.hidden_dim, 2 * cfg.hidden_dim);
  EXPECT_DOUBLE_EQ(t794, t832);  // same tile
  const double t768 = gpu.GemmTime(768, cfg.hidden_dim, 2 * cfg.hidden_dim);
  EXPECT_LT(t768, t794);  // one tile fewer
}

TEST(GpuTimingTest, GemmTimeScalesWithTiles) {
  GpuTimingModel gpu(GpuSpec::A100());
  const double t1 = gpu.GemmTime(256, 4096, 4096);
  const double t4 = gpu.GemmTime(1024, 4096, 4096);
  // 4 tiles of work ~ 4x one tile (modulo the fixed launch overhead).
  EXPECT_NEAR(t4 / t1, 4.0, 0.4);
}

TEST(GpuTimingTest, FasterGpuIsFaster) {
  GpuTimingModel a100(GpuSpec::A100());
  GpuTimingModel h800(GpuSpec::H800());
  GpuTimingModel a30(GpuSpec::A30());
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  EXPECT_LT(h800.HiddenToKvTime(cfg, 1024), a100.HiddenToKvTime(cfg, 1024));
  EXPECT_LT(a100.HiddenToKvTime(cfg, 1024), a30.HiddenToKvTime(cfg, 1024));
}

TEST(GpuTimingTest, HiddenToKvMuchCheaperThanRecompute) {
  GpuTimingModel gpu(GpuSpec::A100());
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const double c_h = gpu.HiddenToKvTime(cfg, 1024);
  const double c_t = gpu.TokenRecomputeTimePerLayer(cfg, 1024);
  // Theoretical floor is 6x (paper §3.2); the model adds epsilon terms so allow 5x+.
  EXPECT_GT(c_t / c_h, 5.0);
}

TEST(GpuTimingTest, TensorParallelismDividesWork) {
  GpuTimingModel tp1(GpuSpec::A100(), 1);
  GpuTimingModel tp4(GpuSpec::A100(), 4);
  const ModelConfig cfg = ModelConfig::Opt30B();
  const double t1 = tp1.TokenRecomputeTimePerLayer(cfg, 1024);
  const double t4 = tp4.TokenRecomputeTimePerLayer(cfg, 1024);
  EXPECT_NEAR(t1 / t4, 4.0, 0.5);
}

TEST(GpuTimingTest, RecomputeQuadraticInContext) {
  GpuTimingModel gpu(GpuSpec::A100());
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const double t1k = gpu.TokenRecomputeTimePerLayer(cfg, 1024);
  const double t16k = gpu.TokenRecomputeTimePerLayer(cfg, 16384);
  // 16x the tokens must cost clearly more than 16x the time (quadratic attention term).
  EXPECT_GT(t16k / t1k, 16.0 * 1.1);
  // HiddenToKv stays linear.
  const double h1k = gpu.HiddenToKvTime(cfg, 1024);
  const double h16k = gpu.HiddenToKvTime(cfg, 16384);
  EXPECT_NEAR(h16k / h1k, 16.0, 0.5);
}

TEST(GpuTimingTest, DecodeTimeGrowsWithBatchContext) {
  GpuTimingModel gpu(GpuSpec::A100());
  const ModelConfig cfg = ModelConfig::Llama2_7B();
  const double t_small = gpu.DecodeIterationTime(cfg, 1, 512);
  const double t_big = gpu.DecodeIterationTime(cfg, 16, 16 * 2048);
  EXPECT_GT(t_big, t_small);
  // A 7B decode iteration lands in the ~10ms regime (weights 13.5 GB over 1.555 TB/s),
  // consistent with the paper's ~20ms TBT including scheduling overheads.
  EXPECT_GT(t_small, 5e-3);
  EXPECT_LT(t_small, 30e-3);
}

TEST(GpuTimingTest, ParamCountsMatchModelNames) {
  EXPECT_NEAR(ApproxParamCount(ModelConfig::Llama2_7B()) / 1e9, 6.7, 0.5);
  EXPECT_NEAR(ApproxParamCount(ModelConfig::Llama2_13B()) / 1e9, 13.0, 1.0);
  EXPECT_NEAR(ApproxParamCount(ModelConfig::Opt30B()) / 1e9, 30.0, 3.0);
}

TEST(GpuTimingTest, SnapshotBandwidthBelowPcie) {
  // §6.3.3: prefilling 1024 tokens of Llama2-13B generates ~10MB per layer in ~3ms,
  // an equivalent bandwidth of ~3 GB/s << PCIe. Check the same arithmetic.
  const ModelConfig cfg = ModelConfig::Llama2_13B();
  GpuTimingModel gpu(GpuSpec::A100());
  const double bytes = HiddenIoBytesPerLayer(cfg, 1024);
  EXPECT_NEAR(bytes / 1e6, 10.5, 0.5);
  const double layer_compute = gpu.TokenRecomputeTimePerLayer(cfg, 1024);
  const double equiv_bw = bytes / layer_compute;
  EXPECT_LT(equiv_bw, GpuSpec::A100().pcie_bw);
}

}  // namespace
}  // namespace hcache
