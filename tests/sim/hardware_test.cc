#include "src/sim/hardware.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace hcache {
namespace {

TEST(HardwareTest, Table2Values) {
  // The paper's Table 2, verbatim.
  struct Row {
    const char* name;
    double flops_t;
    double bw_gb;
  };
  const Row rows[] = {
      {"A100", 312, 32}, {"A30", 165, 32}, {"4090", 330, 32}, {"L20", 120, 32},
      {"H800", 990, 64},
  };
  for (const auto& r : rows) {
    const GpuSpec g = GpuSpec::ByName(r.name);
    EXPECT_DOUBLE_EQ(g.peak_fp16_flops, r.flops_t * kTeraFlops) << r.name;
    EXPECT_DOUBLE_EQ(g.pcie_bw, r.bw_gb * kGB) << r.name;
  }
}

TEST(HardwareTest, SsdMatchesPaperReadBw) {
  const SsdSpec s = SsdSpec::Pm9a3();
  EXPECT_DOUBLE_EQ(s.read_bw, 6.9 * kGB);
}

TEST(HardwareTest, SsdSmallIoIsIopsBound) {
  const SsdSpec s = SsdSpec::Pm9a3();
  // 4 KiB random reads sit at the latency-bandwidth knee: well under half line rate.
  EXPECT_LT(s.EffectiveReadBw(4096), 0.5 * s.read_bw);
  // 512 KiB chunks stream at ~full bandwidth.
  EXPECT_GT(s.EffectiveReadBw(512.0 * 1024), 0.95 * s.read_bw);
  EXPECT_GT(s.EffectiveReadBw(512.0 * 1024), s.EffectiveReadBw(4096));
}

TEST(HardwareTest, FourSsdsSaturateA100Pcie) {
  // §6.2.2: "using 4 disks can saturate the upstream PCIe bandwidth of the A100".
  Platform p = Platform::DefaultTestbed(1, 4);
  EXPECT_DOUBLE_EQ(p.StorageReadBwPerGpu(), 27.6 * kGB);  // min(4*6.9, 32)
  Platform p8 = Platform::DefaultTestbed(1, 8);
  EXPECT_DOUBLE_EQ(p8.StorageReadBwPerGpu(), 32 * kGB);  // PCIe-capped
}

TEST(HardwareTest, DramBackendIsPcieBound) {
  Platform p = Platform::CloudDram(GpuSpec::H800());
  EXPECT_DOUBLE_EQ(p.StorageReadBwPerGpu(), 64 * kGB);
}

TEST(HardwareTest, MultiGpuSplitsSsds) {
  // The testbed gives each of 4 GPUs one of the 4 SSDs.
  Platform p = Platform::DefaultTestbed(4, 4);
  EXPECT_EQ(p.ssds_per_gpu(), 1);
  EXPECT_DOUBLE_EQ(p.StorageReadBwPerGpu(), 6.9 * kGB);
}

TEST(HardwareTest, Fig12Presets) {
  EXPECT_EQ(Platform::IoSufficient().gpu.name, "A30");
  EXPECT_EQ(Platform::ComputeSufficient().storage.num_devices, 1);
  EXPECT_EQ(Platform::Balanced().storage.num_devices, 4);
}

TEST(HardwareTest, DescribeMentionsParts) {
  const std::string d = Platform::DefaultTestbed(4, 4).Describe();
  EXPECT_NE(d.find("A100"), std::string::npos);
  EXPECT_NE(d.find("PM9A3"), std::string::npos);
}

}  // namespace
}  // namespace hcache
