// Multi-round chatbot scenario (the paper's §2.3 motivating workload).
//
// A conversation accumulates history across rounds; between rounds the engine evicts
// the session's KV cache to serve other users. Each new round must restore it. This
// example runs the *functional* loop on a tiny model (verifying every round's outputs
// are unaffected by eviction) and, side by side, prices each round's restoration on the
// *performance* plane (A100 + 4 SSDs, Llama2-7B) for all three methods.
//
// Run: ./build/examples/multi_round_chat
#include <cstdio>
#include <filesystem>

#include "src/core/functional_engine.h"
#include "src/core/restorer.h"
#include "src/model/transformer.h"
#include "src/storage/file_backend.h"
#include "src/workload/sharegpt.h"

using namespace hcache;

int main() {
  // --- functional plane: tiny model, real math, real storage ---
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 48, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 7);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 128, 8));
  const auto dir = std::filesystem::temp_directory_path() / "hcache_chat_example";
  std::filesystem::remove_all(dir);
  FileBackend store({(dir / "d0").string(), (dir / "d1").string()}, 1 << 20);
  FunctionalHCache engine(&model, &store, /*flush_pool=*/nullptr, /*chunk_tokens=*/8);

  // --- performance plane: the paper's testbed pricing the same conversation ---
  const ModelConfig big = ModelConfig::Llama2_7B();
  Restorer restorer(Platform::DefaultTestbed(1, 4), big);

  // A synthetic ShareGPT4-style conversation drives both planes.
  ShareGptGenerator gen(2024, /*max_history_tokens=*/4096);
  const Conversation conv = gen.Next();
  std::printf("conversation with %zu rounds\n\n", conv.rounds.size());
  std::printf("%5s %9s %9s | %12s %12s %12s\n", "round", "history", "+tokens",
              "HCache", "KV-offload", "recompute");

  Rng rng(1);
  PagedKvSequence seq(&pool);
  PagedKvSequence ref(&pool);  // never evicted, for output verification
  const int64_t ctx = 1;
  PartitionScheme all_hidden;
  all_hidden.layers_hidden = cfg.num_layers;
  all_hidden.complement = ComplementMethod::kNone;

  for (size_t r = 0; r < conv.rounds.size(); ++r) {
    // Scale the trace round down to the tiny functional model (1/16 the tokens).
    const int64_t in_tokens = std::max<int64_t>(2, conv.rounds[r].input_tokens / 16);
    const int64_t out_tokens = std::max<int64_t>(2, conv.rounds[r].output_tokens / 16);
    std::vector<int32_t> prompt(static_cast<size_t>(in_tokens));
    for (auto& t : prompt) {
      t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }

    if (r > 0) {
      // The session was evicted after the previous round: restore before serving.
      CHECK(engine.RestoreContext(ctx, all_hidden, {}, &seq));
    }
    HiddenStateSink* sink = engine.BeginCapture(ctx);
    model.Forward(prompt, &seq, sink);
    const auto out = model.GreedyDecode(prompt.back(), out_tokens, &seq, sink);
    engine.SealContext(ctx);

    // Verify against the never-evicted reference conversation.
    model.Forward(prompt, &ref);
    const auto ref_out = model.GreedyDecode(prompt.back(), out_tokens, &ref);
    CHECK(out == ref_out) << "round " << r << " diverged after restoration";

    // Price this round's restoration at Llama2-7B scale on the paper's testbed.
    const int64_t hist_tokens = static_cast<int64_t>(conv.HistoryBefore(r));
    char h_buf[32] = "-", kv_buf[32] = "-", re_buf[32] = "-";
    if (hist_tokens > 0) {
      std::snprintf(h_buf, sizeof(h_buf), "%8.1f ms",
                    restorer.Restore(RestoreMethod::kHCache, hist_tokens).total_time * 1e3);
      std::snprintf(kv_buf, sizeof(kv_buf), "%8.1f ms",
                    restorer.Restore(RestoreMethod::kKvOffload, hist_tokens).total_time * 1e3);
      std::snprintf(re_buf, sizeof(re_buf), "%8.1f ms",
                    restorer.Restore(RestoreMethod::kRecompute, hist_tokens).total_time * 1e3);
    }
    std::printf("%5zu %9lld %9lld | %12s %12s %12s\n", r + 1,
                static_cast<long long>(hist_tokens),
                static_cast<long long>(conv.rounds[r].input_tokens +
                                       conv.rounds[r].output_tokens),
                h_buf, kv_buf, re_buf);

    seq.Evict();  // make room for other sessions until the user replies
  }

  std::printf("\nOK: all %zu rounds produced identical outputs with per-round eviction "
              "and hidden-state restoration.\n",
              conv.rounds.size());
  std::filesystem::remove_all(dir);
  return 0;
}
