// Platform advisor: given a hardware description, print the offline profile, the
// bubble-free partition schedule the scheduler would pick, the predicted restoration
// speed of every method, and the per-token storage bill.
//
// This is the operator-facing view of §4.1: "should I enable HCache on this box, and
// what will it decide to do?"
//
// Usage:
//   ./build/examples/platform_advisor [--gpu=A100|A30|4090|L20|H800] [--gpus=N]
//                                     [--ssds=N|dram] [--model=7b|13b|30b] [--ctx=N]
#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/units.h"
#include "src/core/restorer.h"

using namespace hcache;

namespace {

std::string ArgValue(int argc, char** argv, const char* key, const char* def) {
  const size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string gpu_name = ArgValue(argc, argv, "--gpu", "A100");
  const int num_gpus = std::stoi(ArgValue(argc, argv, "--gpus", "1"));
  const std::string ssds = ArgValue(argc, argv, "--ssds", "4");
  const std::string model_name = ArgValue(argc, argv, "--model", "7b");
  const int64_t ctx = std::stoll(ArgValue(argc, argv, "--ctx", "1024"));

  Platform platform;
  platform.gpu = GpuSpec::ByName(gpu_name);
  platform.num_gpus = num_gpus;
  platform.storage = ssds == "dram" ? StorageBackendSpec::Dram()
                                    : StorageBackendSpec::SsdArray(std::stoi(ssds));
  const ModelConfig cfg = model_name == "30b"   ? ModelConfig::Opt30B()
                          : model_name == "13b" ? ModelConfig::Llama2_13B()
                                                : ModelConfig::Llama2_7B();

  std::printf("platform : %s\n", platform.Describe().c_str());
  std::printf("model    : %s (%lld layers, hidden %lld)\n", cfg.name.c_str(),
              static_cast<long long>(cfg.num_layers),
              static_cast<long long>(cfg.hidden_dim));
  std::printf("history  : %lld tokens\n\n", static_cast<long long>(ctx));

  Restorer restorer(platform, cfg);
  const LayerProfile prof = restorer.Profile(ctx);
  std::printf("offline profile (per layer): %s\n", prof.ToString().c_str());
  std::printf("regime: %s-bound (C_H %s IO_H) -> complement = %s\n\n",
              prof.c_hidden > prof.io_hidden ? "compute" : "IO",
              prof.c_hidden > prof.io_hidden ? ">" : "<=",
              prof.c_hidden > prof.io_hidden ? "KV offload" : "token recompute");

  const PartitionScheme scheme = restorer.Schedule(ctx);
  std::printf("bubble-free schedule: %s\n", scheme.ToString().c_str());
  std::printf("per-token storage   : %s (KV offload would store %s)\n\n",
              FormatBytes(static_cast<uint64_t>(scheme.StoredBytesPerToken(cfg))).c_str(),
              FormatBytes(static_cast<uint64_t>(cfg.KvBytesPerToken())).c_str());

  std::printf("predicted restoration of a %lld-token context:\n",
              static_cast<long long>(ctx));
  for (const auto method :
       {RestoreMethod::kHCache, RestoreMethod::kHCacheOnly, RestoreMethod::kNaiveHybrid,
        RestoreMethod::kKvOffload, RestoreMethod::kRecompute}) {
    std::printf("  %s\n", restorer.Restore(method, ctx).ToString().c_str());
  }
  std::printf("\nbalanced storage bandwidth for hidden-only restoration: %.1f GB/s\n",
              BalancedBandwidth(platform, cfg, ctx) / kGB);
  return 0;
}
