// hcache-fsck: offline integrity checker for on-disk chunk stores.
//
// Scans a FileBackend's device directories, classifies every chunk
// (clean / unverified / partial / corrupt) by re-parsing headers and re-computing
// payload CRC32Cs, reports orphaned temp files from torn writes, and — with
// --repair — quarantines the damage so the serving read path sees ordinary misses
// (recompute-from-tokens) instead of per-read CRC failures.
//
//   hcache-fsck [--repair] [--json] <device_dir> [<device_dir>...]
//   hcache-fsck --distributed [--replication R] [--repair] [--json] <node_dir>...
//   hcache-fsck --selftest
//
// --distributed treats each directory as ONE storage node of a replicated cold
// plane: every node store is scanned separately (per-node counts in --json), a
// logical pass flags chunks below their home replica count, and --repair
// re-replicates them from a surviving healthy copy instead of just quarantining.
//
// Exit status: 0 when the store is healthy (or --repair fixed everything),
// 1 when damage remains, 2 on usage errors. --selftest builds a throwaway store,
// injects corruption/truncation/orphans — plus a replicated store with a lost and
// a rotted copy, plus a content-addressed (dedup) store with an orphaned physical
// chunk and a vanished one — and checks fsck catches all of it; the CI smoke run.
// (The dedup leg is selftest/library-only: a DedupBackend's logical index lives
// with the serving process, so there is no directory-only CLI mode for it.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/distributed_backend.h"
#include "src/storage/file_backend.h"
#include "src/storage/fsck.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/layout.h"

using namespace hcache;

namespace {

namespace fs = std::filesystem;

// The backend needs a chunk capacity >= the largest stored object; derive it from
// the store itself so fsck needs no knowledge of the writer's configuration.
int64_t LargestFileUnder(const std::vector<std::string>& dirs) {
  int64_t largest = 0;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec)) {
        largest = std::max(largest, static_cast<int64_t>(it->file_size(ec)));
      }
    }
  }
  return largest;
}

void PrintHuman(const FsckReport& r) {
  std::printf("hcache-fsck: %lld chunks, %lld bytes scanned\n",
              static_cast<long long>(r.chunks_scanned),
              static_cast<long long>(r.bytes_scanned));
  std::printf("  clean (CRC verified): %lld\n", static_cast<long long>(r.clean));
  std::printf("  unverified (no CRC):  %lld\n", static_cast<long long>(r.unverified));
  std::printf("  partial (truncated):  %lld\n", static_cast<long long>(r.partial));
  std::printf("  corrupt (CRC failed): %lld\n", static_cast<long long>(r.corrupt));
  std::printf("  orphaned temp files:  %lld\n",
              static_cast<long long>(r.orphaned_temp_files));
  if (!r.nodes.empty()) {
    std::printf("  under-replicated:     %lld\n",
                static_cast<long long>(r.under_replicated));
  }
  if (r.dedup_orphans != 0 || r.dedup_missing != 0 || r.dedup_drift != 0) {
    std::printf("  dedup orphan/missing/drift: %lld/%lld/%lld\n",
                static_cast<long long>(r.dedup_orphans),
                static_cast<long long>(r.dedup_missing),
                static_cast<long long>(r.dedup_drift));
  }
  std::printf("  repaired:             %lld\n", static_cast<long long>(r.repaired));
  for (const FsckNodeReport& n : r.nodes) {
    std::printf("  node %d: %lld chunks, %lld bytes, %lld corrupt%s%s%s\n", n.node,
                static_cast<long long>(n.chunks), static_cast<long long>(n.bytes),
                static_cast<long long>(n.corrupt), n.up ? "" : " [down]",
                n.draining ? " [draining]" : "", n.removed ? " [removed]" : "");
  }
  for (const FsckFinding& f : r.findings) {
    std::printf("  [%s]%s ctx=%lld L=%lld C=%lld (%lld bytes): %s\n",
                FsckClassName(f.klass), f.repaired ? " repaired" : "",
                static_cast<long long>(f.key.context_id),
                static_cast<long long>(f.key.layer),
                static_cast<long long>(f.key.chunk_index),
                static_cast<long long>(f.bytes), f.detail.c_str());
  }
  std::printf("store %s\n", r.Healthy() ? "HEALTHY" : "DAMAGED");
}

#define SELFTEST_CHECK(cond)                                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "selftest FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                      \
      return 1;                                                                 \
    }                                                                           \
  } while (0)

// Builds a store with known damage and checks the scanner and the repair pass see
// exactly what was injected.
int RunSelftest() {
  const fs::path root = fs::temp_directory_path() / "hcache_fsck_selftest";
  fs::remove_all(root);
  const std::vector<std::string> dirs = {(root / "d0").string(), (root / "d1").string()};
  constexpr int64_t kChunkBytes = 1 << 16;
  {
    FileBackend store(dirs, kChunkBytes);
    InstrumentedBackend chaos(&store);
    // Six well-formed v2 chunks across two contexts.
    std::vector<uint8_t> payload(static_cast<size_t>(EncodedChunkBytes(
        ChunkCodec::kFp32, /*rows=*/16, /*cols=*/32)));
    for (int64_t ctx = 1; ctx <= 2; ++ctx) {
      for (int64_t c = 0; c < 3; ++c) {
        for (size_t i = sizeof(ChunkHeader); i < payload.size(); ++i) {
          payload[i] = static_cast<uint8_t>(ctx * 31 + c * 7 + i);
        }
        WriteChunkHeader(ChunkCodec::kFp32, 16, 32, payload.data());
        SELFTEST_CHECK(chaos.WriteChunk(ChunkKey{ctx, 0, c}, payload.data(),
                                        static_cast<int64_t>(payload.size())));
      }
    }
    // Damage: one payload bit flip, one lost tail, one orphaned temp file.
    SELFTEST_CHECK(chaos.CorruptChunk(ChunkKey{1, 0, 1},
                                      8 * (sizeof(ChunkHeader) + 5) + 2));
    SELFTEST_CHECK(chaos.TruncateChunk(ChunkKey{2, 0, 2},
                                       static_cast<int64_t>(payload.size() / 2)));
    std::FILE* orphan = std::fopen((root / "d0" / "ctx1" / "L0_C9.bin.tmp").c_str(), "wb");
    SELFTEST_CHECK(orphan != nullptr);
    std::fputs("torn", orphan);
    std::fclose(orphan);
  }
  // Fresh process view: recover the index from disk, but keep the orphan in place
  // (sweep_temp_files=false) so the scanner — not the constructor — finds it.
  FileBackendOptions opts;
  opts.sweep_temp_files = false;
  FileBackend store(dirs, kChunkBytes, opts);
  FsckOptions fsck;
  fsck.scan_dirs = dirs;
  FsckReport before = RunFsck(&store, fsck);
  std::printf("%s\n", before.ToJson().c_str());
  SELFTEST_CHECK(before.chunks_scanned == 6);
  SELFTEST_CHECK(before.clean == 4);
  SELFTEST_CHECK(before.corrupt == 1);
  SELFTEST_CHECK(before.partial == 1);
  SELFTEST_CHECK(before.orphaned_temp_files == 1);
  SELFTEST_CHECK(!before.Healthy());
  fsck.repair = true;
  FsckReport repaired = RunFsck(&store, fsck);
  SELFTEST_CHECK(repaired.repaired == 3);
  fsck.repair = false;
  FsckReport after = RunFsck(&store, fsck);
  std::printf("%s\n", after.ToJson().c_str());
  SELFTEST_CHECK(after.Healthy());
  SELFTEST_CHECK(after.chunks_scanned == 4 && after.clean == 4);
  fs::remove_all(root);

  // Distributed leg: three file-backed nodes, R=2; lose one copy, rot another.
  const fs::path droot = fs::temp_directory_path() / "hcache_fsck_selftest_dist";
  fs::remove_all(droot);
  std::vector<std::string> node_dirs;
  for (int n = 0; n < 3; ++n) {
    node_dirs.push_back((droot / ("node" + std::to_string(n))).string());
  }
  DistributedColdOptions dopts;
  dopts.background_repair = false;
  const auto factory = [&node_dirs](int node, int64_t bytes) {
    return std::make_unique<FileBackend>(
        std::vector<std::string>{node_dirs[static_cast<size_t>(node)]}, bytes);
  };
  DistributedColdBackend dist(3, kChunkBytes, dopts, factory);
  std::vector<uint8_t> payload(static_cast<size_t>(EncodedChunkBytes(
      ChunkCodec::kFp32, /*rows=*/16, /*cols=*/32)));
  for (int64_t c = 0; c < 4; ++c) {
    for (size_t i = sizeof(ChunkHeader); i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(c * 17 + i * 3);
    }
    WriteChunkHeader(ChunkCodec::kFp32, 16, 32, payload.data());
    SELFTEST_CHECK(dist.WriteChunk(ChunkKey{9, 0, c}, payload.data(),
                                   static_cast<int64_t>(payload.size())));
  }
  const auto home0 = dist.CheckReplication(ChunkKey{9, 0, 0}).home;
  SELFTEST_CHECK(dist.node_store(home0[0])->DeleteChunk(ChunkKey{9, 0, 0}));
  const auto home1 = dist.CheckReplication(ChunkKey{9, 0, 1}).home;
  SELFTEST_CHECK(dist.node_instrument(home1[0])->CorruptChunk(
      ChunkKey{9, 0, 1}, 8 * (sizeof(ChunkHeader) + 11)));

  FsckOptions dist_fsck;
  dist_fsck.scan_dirs = node_dirs;
  FsckReport dist_before = RunFsck(&dist, dist_fsck);
  std::printf("%s\n", dist_before.ToJson().c_str());
  SELFTEST_CHECK(dist_before.under_replicated == 2);
  SELFTEST_CHECK(dist_before.corrupt == 1);
  SELFTEST_CHECK(dist_before.nodes.size() == 3);
  SELFTEST_CHECK(!dist_before.Healthy());
  dist_fsck.repair = true;
  FsckReport dist_fixed = RunFsck(&dist, dist_fsck);
  SELFTEST_CHECK(dist_fixed.repaired == 3);  // 1 quarantine + 2 re-replications
  dist_fsck.repair = false;
  FsckReport dist_after = RunFsck(&dist, dist_fsck);
  std::printf("%s\n", dist_after.ToJson().c_str());
  SELFTEST_CHECK(dist_after.Healthy());
  for (int64_t c = 0; c < 4; ++c) {
    SELFTEST_CHECK(dist.CheckReplication(ChunkKey{9, 0, c}).FullyReplicated());
  }
  fs::remove_all(droot);

  // Dedup leg: a content-addressed store with a refcount-invariant violation of
  // each kind. The physical plane is file-backed; the logical index is live.
  const fs::path dd_root = fs::temp_directory_path() / "hcache_fsck_selftest_dedup";
  fs::remove_all(dd_root);
  {
    FileBackend phys({(dd_root / "p0").string()}, kChunkBytes);
    DedupBackend dedup(&phys);
    std::vector<uint8_t> blob(4096);
    for (size_t i = 0; i < blob.size(); ++i) {
      blob[i] = static_cast<uint8_t>(i * 13 + 7);
    }
    // Three contexts share one physical chunk; a second unique chunk rides along.
    for (int64_t ctx = 1; ctx <= 3; ++ctx) {
      SELFTEST_CHECK(dedup.WriteChunk(ChunkKey{ctx, 0, 0}, blob.data(),
                                      static_cast<int64_t>(blob.size())));
    }
    blob[0] ^= 0xff;
    SELFTEST_CHECK(dedup.WriteChunk(ChunkKey{4, 0, 0}, blob.data(),
                                    static_cast<int64_t>(blob.size())));
    SELFTEST_CHECK(RunFsck(&dedup).Healthy());

    // Orphan: bytes in the physical store no index entry claims (a crash between
    // physical write and index publish). Missing: the shared chunk's bytes vanish
    // behind the index's back (media loss).
    SELFTEST_CHECK(phys.WriteChunk(ChunkKey{77, 77, 77}, blob.data(), 512));
    const auto phys_chunks = dedup.ListPhysicalChunks();
    SELFTEST_CHECK(phys_chunks.size() == 2);
    // Delete the 3-referent chunk: the one whose bytes differ from `blob` (which
    // now holds context 4's content).
    ChunkKey shared_key{};
    for (const auto& [pkey, psize] : phys_chunks) {
      std::vector<uint8_t> tmp(static_cast<size_t>(psize));
      SELFTEST_CHECK(phys.ReadChunkUnverified(pkey, tmp.data(), psize) == psize);
      if (std::memcmp(tmp.data(), blob.data(), tmp.size()) != 0) {
        shared_key = pkey;
      }
    }
    SELFTEST_CHECK(phys.DeleteChunk(shared_key));

    FsckReport dd_before = RunFsck(&dedup);
    std::printf("%s\n", dd_before.ToJson().c_str());
    SELFTEST_CHECK(dd_before.dedup_orphans == 1);
    SELFTEST_CHECK(dd_before.dedup_missing == 1);
    SELFTEST_CHECK(!dd_before.Healthy());

    FsckOptions dd_repair;
    dd_repair.repair = true;
    FsckReport dd_fixed = RunFsck(&dedup, dd_repair);
    SELFTEST_CHECK(dd_fixed.repaired == 2);  // orphan deleted + dead entry dropped
    // The lost chunk's referents now read as ordinary misses (recompute
    // fallback), not corrupt; the intact chunk still serves.
    std::vector<uint8_t> buf(4096);
    SELFTEST_CHECK(dedup.ReadChunk(ChunkKey{1, 0, 0}, buf.data(), 4096) == -1);
    SELFTEST_CHECK(dedup.ReadChunk(ChunkKey{4, 0, 0}, buf.data(), 4096) == 4096);
    SELFTEST_CHECK(!phys.HasChunk(ChunkKey{77, 77, 77}));
    FsckReport dd_after = RunFsck(&dedup);
    std::printf("%s\n", dd_after.ToJson().c_str());
    SELFTEST_CHECK(dd_after.Healthy());
  }
  fs::remove_all(dd_root);
  std::printf("hcache-fsck selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false, json = false, selftest = false, distributed = false;
  int replication = 2;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (arg == "--distributed") {
      distributed = true;
    } else if (arg == "--replication" && i + 1 < argc) {
      replication = std::atoi(argv[++i]);
      if (replication < 1) {
        std::fprintf(stderr, "--replication must be >= 1\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (selftest) {
    return RunSelftest();
  }
  if (dirs.empty()) {
    std::fprintf(stderr,
                 "usage: hcache-fsck [--repair] [--json] <device_dir>...\n"
                 "       hcache-fsck --distributed [--replication R] [--repair] [--json] "
                 "<node_dir>...\n"
                 "       hcache-fsck --selftest\n");
    return 2;
  }
  for (const std::string& dir : dirs) {
    if (!fs::is_directory(dir)) {
      std::fprintf(stderr, "not a directory: %s\n", dir.c_str());
      return 2;
    }
  }
  const int64_t chunk_bytes = std::max<int64_t>(LargestFileUnder(dirs), 1);
  // Keep orphaned temp files in place: this run classifies them (and only a
  // --repair run removes them).
  FileBackendOptions opts;
  opts.sweep_temp_files = false;
  FsckOptions fsck;
  fsck.repair = repair;
  fsck.scan_dirs = dirs;
  FsckReport report;
  // Exit status reflects the store's state when we're done: a --repair run that
  // found damage re-scans report-only, so "everything fixed" exits 0.
  const auto scan = [&](StorageBackend* store) {
    report = RunFsck(store, fsck);
    if (report.Healthy()) {
      return true;
    }
    if (!repair) {
      return false;
    }
    FsckOptions verify = fsck;
    verify.repair = false;
    return RunFsck(store, verify).Healthy();
  };
  bool healthy = false;
  if (distributed) {
    // One node per directory; the constructor recovers the logical index from
    // whatever the node stores hold.
    DistributedColdOptions dopts;
    dopts.replication = replication;
    dopts.background_repair = false;  // fsck repairs synchronously or not at all
    const auto factory = [&dirs, &opts](int node, int64_t bytes) {
      return std::make_unique<FileBackend>(
          std::vector<std::string>{dirs[static_cast<size_t>(node)]}, bytes, opts);
    };
    DistributedColdBackend store(static_cast<int>(dirs.size()), chunk_bytes, dopts,
                                 factory);
    healthy = scan(&store);
  } else {
    FileBackend store(dirs, chunk_bytes, opts);
    healthy = scan(&store);
  }
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    PrintHuman(report);
  }
  return healthy ? 0 : 1;
}
