// hcache-fsck: offline integrity checker for on-disk chunk stores.
//
// Scans a FileBackend's device directories, classifies every chunk
// (clean / unverified / partial / corrupt) by re-parsing headers and re-computing
// payload CRC32Cs, reports orphaned temp files from torn writes, and — with
// --repair — quarantines the damage so the serving read path sees ordinary misses
// (recompute-from-tokens) instead of per-read CRC failures.
//
//   hcache-fsck [--repair] [--json] <device_dir> [<device_dir>...]
//   hcache-fsck --selftest
//
// Exit status: 0 when the store is healthy (or --repair fixed everything),
// 1 when damage remains, 2 on usage errors. --selftest builds a throwaway store,
// injects corruption/truncation/orphans, and checks fsck catches all of it — the
// CI smoke run.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/storage/codec.h"
#include "src/storage/file_backend.h"
#include "src/storage/fsck.h"
#include "src/storage/instrumented_backend.h"
#include "src/storage/layout.h"

using namespace hcache;

namespace {

namespace fs = std::filesystem;

// The backend needs a chunk capacity >= the largest stored object; derive it from
// the store itself so fsck needs no knowledge of the writer's configuration.
int64_t LargestFileUnder(const std::vector<std::string>& dirs) {
  int64_t largest = 0;
  for (const std::string& dir : dirs) {
    std::error_code ec;
    for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->is_regular_file(ec)) {
        largest = std::max(largest, static_cast<int64_t>(it->file_size(ec)));
      }
    }
  }
  return largest;
}

void PrintHuman(const FsckReport& r) {
  std::printf("hcache-fsck: %lld chunks, %lld bytes scanned\n",
              static_cast<long long>(r.chunks_scanned),
              static_cast<long long>(r.bytes_scanned));
  std::printf("  clean (CRC verified): %lld\n", static_cast<long long>(r.clean));
  std::printf("  unverified (no CRC):  %lld\n", static_cast<long long>(r.unverified));
  std::printf("  partial (truncated):  %lld\n", static_cast<long long>(r.partial));
  std::printf("  corrupt (CRC failed): %lld\n", static_cast<long long>(r.corrupt));
  std::printf("  orphaned temp files:  %lld\n",
              static_cast<long long>(r.orphaned_temp_files));
  std::printf("  repaired:             %lld\n", static_cast<long long>(r.repaired));
  for (const FsckFinding& f : r.findings) {
    std::printf("  [%s]%s ctx=%lld L=%lld C=%lld (%lld bytes): %s\n",
                FsckClassName(f.klass), f.repaired ? " repaired" : "",
                static_cast<long long>(f.key.context_id),
                static_cast<long long>(f.key.layer),
                static_cast<long long>(f.key.chunk_index),
                static_cast<long long>(f.bytes), f.detail.c_str());
  }
  std::printf("store %s\n", r.Healthy() ? "HEALTHY" : "DAMAGED");
}

#define SELFTEST_CHECK(cond)                                                    \
  do {                                                                          \
    if (!(cond)) {                                                              \
      std::fprintf(stderr, "selftest FAILED at %s:%d: %s\n", __FILE__, __LINE__, \
                   #cond);                                                      \
      return 1;                                                                 \
    }                                                                           \
  } while (0)

// Builds a store with known damage and checks the scanner and the repair pass see
// exactly what was injected.
int RunSelftest() {
  const fs::path root = fs::temp_directory_path() / "hcache_fsck_selftest";
  fs::remove_all(root);
  const std::vector<std::string> dirs = {(root / "d0").string(), (root / "d1").string()};
  constexpr int64_t kChunkBytes = 1 << 16;
  {
    FileBackend store(dirs, kChunkBytes);
    InstrumentedBackend chaos(&store);
    // Six well-formed v2 chunks across two contexts.
    std::vector<uint8_t> payload(static_cast<size_t>(EncodedChunkBytes(
        ChunkCodec::kFp32, /*rows=*/16, /*cols=*/32)));
    for (int64_t ctx = 1; ctx <= 2; ++ctx) {
      for (int64_t c = 0; c < 3; ++c) {
        for (size_t i = sizeof(ChunkHeader); i < payload.size(); ++i) {
          payload[i] = static_cast<uint8_t>(ctx * 31 + c * 7 + i);
        }
        WriteChunkHeader(ChunkCodec::kFp32, 16, 32, payload.data());
        SELFTEST_CHECK(chaos.WriteChunk(ChunkKey{ctx, 0, c}, payload.data(),
                                        static_cast<int64_t>(payload.size())));
      }
    }
    // Damage: one payload bit flip, one lost tail, one orphaned temp file.
    SELFTEST_CHECK(chaos.CorruptChunk(ChunkKey{1, 0, 1},
                                      8 * (sizeof(ChunkHeader) + 5) + 2));
    SELFTEST_CHECK(chaos.TruncateChunk(ChunkKey{2, 0, 2},
                                       static_cast<int64_t>(payload.size() / 2)));
    std::FILE* orphan = std::fopen((root / "d0" / "ctx1" / "L0_C9.bin.tmp").c_str(), "wb");
    SELFTEST_CHECK(orphan != nullptr);
    std::fputs("torn", orphan);
    std::fclose(orphan);
  }
  // Fresh process view: recover the index from disk, but keep the orphan in place
  // (sweep_temp_files=false) so the scanner — not the constructor — finds it.
  FileBackendOptions opts;
  opts.sweep_temp_files = false;
  FileBackend store(dirs, kChunkBytes, opts);
  FsckOptions fsck;
  fsck.scan_dirs = dirs;
  FsckReport before = RunFsck(&store, fsck);
  std::printf("%s\n", before.ToJson().c_str());
  SELFTEST_CHECK(before.chunks_scanned == 6);
  SELFTEST_CHECK(before.clean == 4);
  SELFTEST_CHECK(before.corrupt == 1);
  SELFTEST_CHECK(before.partial == 1);
  SELFTEST_CHECK(before.orphaned_temp_files == 1);
  SELFTEST_CHECK(!before.Healthy());
  fsck.repair = true;
  FsckReport repaired = RunFsck(&store, fsck);
  SELFTEST_CHECK(repaired.repaired == 3);
  fsck.repair = false;
  FsckReport after = RunFsck(&store, fsck);
  std::printf("%s\n", after.ToJson().c_str());
  SELFTEST_CHECK(after.Healthy());
  SELFTEST_CHECK(after.chunks_scanned == 4 && after.clean == 4);
  fs::remove_all(root);
  std::printf("hcache-fsck selftest OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool repair = false, json = false, selftest = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") {
      repair = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      selftest = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      dirs.push_back(arg);
    }
  }
  if (selftest) {
    return RunSelftest();
  }
  if (dirs.empty()) {
    std::fprintf(stderr,
                 "usage: hcache-fsck [--repair] [--json] <device_dir>...\n"
                 "       hcache-fsck --selftest\n");
    return 2;
  }
  for (const std::string& dir : dirs) {
    if (!fs::is_directory(dir)) {
      std::fprintf(stderr, "not a directory: %s\n", dir.c_str());
      return 2;
    }
  }
  const int64_t chunk_bytes = std::max<int64_t>(LargestFileUnder(dirs), 1);
  // Keep orphaned temp files in place: this run classifies them (and only a
  // --repair run removes them).
  FileBackendOptions opts;
  opts.sweep_temp_files = false;
  FileBackend store(dirs, chunk_bytes, opts);
  FsckOptions fsck;
  fsck.repair = repair;
  fsck.scan_dirs = dirs;
  const FsckReport report = RunFsck(&store, fsck);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    PrintHuman(report);
  }
  return report.Healthy() || (repair && report.repaired > 0 &&
                              report.partial + report.corrupt + report.orphaned_temp_files ==
                                  report.repaired)
             ? 0
             : 1;
}
