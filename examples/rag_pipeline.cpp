// Retrieval-augmented generation scenario (paper §2.3 / §3.1) under a
// popularity-skewed trace, served over the content-addressed dedup plane.
//
// In RAG, long document contexts are known ahead of queries, so their hidden states
// can be generated and saved OFFLINE; at query time the engine restores the document's
// KV cache and only prefills the (short) question. At fleet scale the sessions are
// popularity-skewed: a handful of hot documents are retrieved into MOST sessions, so
// most per-session contexts are byte-identical copies of each other. This example:
//
//   1. Offline-ingests a session trace drawn from a Zipfian document-popularity
//      distribution (s = 1.0, the classic web skew) on the functional (tiny-model)
//      plane, persisting hidden states per SESSION into a DedupBackend — and shows
//      the content-addressed store holding one physical copy per document while the
//      logical index holds one entry per session.
//   2. Serves queries against random sessions, restoring each session's state and
//      verifying answers match a never-evicted baseline.
//   3. Prices the same pipeline at Llama2-13B scale: restoration TTFT vs prefilling
//      the document from scratch, per document size.
//
// Run: ./build/rag_pipeline
#include <cstdio>
#include <filesystem>
#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/core/restorer.h"
#include "src/model/transformer.h"
#include "src/storage/dedup_backend.h"
#include "src/storage/file_backend.h"

using namespace hcache;

int main() {
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 48, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 13);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 256, 8));
  const auto dir = std::filesystem::temp_directory_path() / "hcache_rag_example";
  std::filesystem::remove_all(dir);
  FileBackend disk(
      {(dir / "d0").string(), (dir / "d1").string(), (dir / "d2").string()}, 1 << 20);
  DedupBackend store(&disk);  // sessions sharing a document share its bytes
  ThreadPool flush_pool(3);
  FunctionalHCache engine(&model, &store, &flush_pool, /*chunk_tokens=*/8);

  // --- 1. offline ingestion of a Zipf-skewed session trace ---
  constexpr int kNumDocs = 8;
  constexpr int kNumSessions = 32;
  Rng rng(99);
  std::map<int64_t, std::vector<int32_t>> doc_tokens;
  for (int64_t doc = 0; doc < kNumDocs; ++doc) {
    std::vector<int32_t> tokens(static_cast<size_t>(24 + 8 * doc));
    for (auto& t : tokens) {
      t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }
    doc_tokens[doc] = tokens;
  }
  // Each session retrieves one document (rank 0 hottest) and persists its context.
  ZipfianGenerator popularity(kNumDocs, /*alpha=*/1.0);
  std::map<int64_t, int64_t> session_doc;
  std::map<int64_t, int64_t> doc_sessions;
  for (int64_t session = 0; session < kNumSessions; ++session) {
    const int64_t doc = static_cast<int64_t>(popularity.Next(rng));
    session_doc[session] = doc;
    ++doc_sessions[doc];
    PagedKvSequence ingest(&pool);
    model.Forward(doc_tokens[doc], &ingest, engine.BeginCapture(session));
    engine.SealContext(session);
    // The ingest KV is dropped immediately — only hidden states persist.
  }
  const StorageStats stats = store.Stats();
  std::printf("ingested %d sessions over %d docs (Zipf s=1.0):\n", kNumSessions,
              kNumDocs);
  for (const auto& [doc, count] : doc_sessions) {
    std::printf("  doc %lld (%zu tokens): %lld sessions\n", static_cast<long long>(doc),
                doc_tokens[doc].size(), static_cast<long long>(count));
  }
  std::printf("logical: %lld chunks, %lld bytes; physical: %lld chunks, %lld bytes "
              "(%.1fx dedup, %lld hit writes)\n\n",
              static_cast<long long>(stats.chunks_stored),
              static_cast<long long>(stats.bytes_stored),
              static_cast<long long>(stats.unique_chunks),
              static_cast<long long>(store.PhysicalBytes()),
              static_cast<double>(stats.bytes_stored) /
                  static_cast<double>(store.PhysicalBytes()),
              static_cast<long long>(stats.dedup_hits));

  // --- 2. query serving with state restoration ---
  PartitionScheme all_hidden;
  all_hidden.layers_hidden = cfg.num_layers;
  all_hidden.complement = ComplementMethod::kNone;
  int queries_ok = 0;
  for (int q = 0; q < 8; ++q) {
    const int64_t session = static_cast<int64_t>(rng.NextBounded(kNumSessions));
    const int64_t doc = session_doc[session];
    std::vector<int32_t> question(6);
    for (auto& t : question) {
      t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }

    // Restore the session context, append the question, decode the answer.
    PagedKvSequence seq(&pool);
    CHECK(seq.EnsureCapacity(static_cast<int64_t>(doc_tokens[doc].size())));
    seq.CommitTokens(static_cast<int64_t>(doc_tokens[doc].size()));
    seq.Evict();  // sequence starts with only the recorded history length
    CHECK(engine.RestoreContext(session, all_hidden, {}, &seq));
    model.Forward(question, &seq);
    const auto answer = model.GreedyDecode(question.back(), 5, &seq);

    // Baseline: prefill document + question from scratch (what recomputation does).
    PagedKvSequence base(&pool);
    model.Forward(doc_tokens[doc], &base);
    model.Forward(question, &base);
    const auto expected = model.GreedyDecode(question.back(), 5, &base);
    CHECK(answer == expected) << "query " << q;
    ++queries_ok;
  }
  std::printf("%d/8 queries answered identically to full-document prefill "
              "(restored from shared physical chunks)\n\n", queries_ok);

  // --- 3. price the pipeline at Llama2-13B scale ---
  const ModelConfig big = ModelConfig::Llama2_13B();
  Restorer restorer(Platform::DefaultTestbed(1, 4), big);
  std::printf("query TTFT at Llama2-13B scale (A100 + 4 SSDs), question = 64 tokens:\n");
  std::printf("%10s | %14s %14s %14s | %8s\n", "doc tokens", "HCache", "KV-offload",
              "doc prefill", "speedup");
  for (const int64_t doc_tokens_big : {2048, 4096, 8192, 16384}) {
    const double h = restorer.Restore(RestoreMethod::kHCache, doc_tokens_big).total_time;
    const double kv = restorer.Restore(RestoreMethod::kKvOffload, doc_tokens_big).total_time;
    const double re = restorer.Restore(RestoreMethod::kRecompute, doc_tokens_big).total_time;
    std::printf("%10lld | %11.1f ms %11.1f ms %11.1f ms | %7.2fx\n",
                static_cast<long long>(doc_tokens_big), h * 1e3, kv * 1e3, re * 1e3,
                re / h);
  }
  std::printf("\nOK: RAG contexts restore losslessly; offline hidden-state generation "
              "turns document prefill into a transfer-plus-projection, and the "
              "content-addressed store keeps one copy per document however many "
              "sessions retrieve it.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
