// Retrieval-augmented generation scenario (paper §2.3 / §3.1).
//
// In RAG, long document contexts are known ahead of queries, so their hidden states
// can be generated and saved OFFLINE; at query time the engine restores the document's
// KV cache and only prefills the (short) question. This example:
//
//   1. Offline-ingests a small corpus on the functional (tiny-model) plane, persisting
//      hidden states per document.
//   2. Serves queries against random documents, restoring each document's state and
//      verifying answers match a never-evicted baseline.
//   3. Prices the same pipeline at Llama2-13B scale: restoration TTFT vs prefilling the
//      document from scratch, per document size.
//
// Run: ./build/examples/rag_pipeline
#include <cstdio>
#include <filesystem>
#include <map>

#include "src/common/rng.h"
#include "src/core/functional_engine.h"
#include "src/core/restorer.h"
#include "src/model/transformer.h"
#include "src/storage/file_backend.h"

using namespace hcache;

int main() {
  const ModelConfig cfg = ModelConfig::TinyLlama(3, 48, 4);
  const ModelWeights weights = ModelWeights::Random(cfg, 13);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, 256, 8));
  const auto dir = std::filesystem::temp_directory_path() / "hcache_rag_example";
  std::filesystem::remove_all(dir);
  FileBackend store(
      {(dir / "d0").string(), (dir / "d1").string(), (dir / "d2").string()}, 1 << 20);
  ThreadPool flush_pool(3);
  FunctionalHCache engine(&model, &store, &flush_pool, /*chunk_tokens=*/8);

  // --- 1. offline ingestion: generate each document's hidden states once ---
  constexpr int kNumDocs = 4;
  Rng rng(99);
  std::map<int64_t, std::vector<int32_t>> doc_tokens;
  for (int64_t doc = 0; doc < kNumDocs; ++doc) {
    std::vector<int32_t> tokens(static_cast<size_t>(24 + 8 * doc));
    for (auto& t : tokens) {
      t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }
    doc_tokens[doc] = tokens;
    PagedKvSequence ingest(&pool);
    model.Forward(tokens, &ingest, engine.BeginCapture(doc));
    engine.SealContext(doc);
    // The ingest KV is dropped immediately — only hidden states persist.
  }
  std::printf("ingested %d documents offline: %lld chunks, %s on 'disk'\n\n", kNumDocs,
              static_cast<long long>(store.chunks_stored()),
              std::to_string(store.bytes_stored()).c_str());

  // --- 2. query serving with state restoration ---
  PartitionScheme all_hidden;
  all_hidden.layers_hidden = cfg.num_layers;
  all_hidden.complement = ComplementMethod::kNone;
  int queries_ok = 0;
  for (int q = 0; q < 8; ++q) {
    const int64_t doc = static_cast<int64_t>(rng.NextBounded(kNumDocs));
    std::vector<int32_t> question(6);
    for (auto& t : question) {
      t = static_cast<int32_t>(rng.NextBounded(static_cast<uint64_t>(cfg.vocab_size)));
    }

    // Restore the document context, append the question, decode the answer.
    PagedKvSequence seq(&pool);
    CHECK(seq.EnsureCapacity(static_cast<int64_t>(doc_tokens[doc].size())));
    seq.CommitTokens(static_cast<int64_t>(doc_tokens[doc].size()));
    seq.Evict();  // sequence starts with only the recorded history length
    CHECK(engine.RestoreContext(doc, all_hidden, {}, &seq));
    model.Forward(question, &seq);
    const auto answer = model.GreedyDecode(question.back(), 5, &seq);

    // Baseline: prefill document + question from scratch (what recomputation does).
    PagedKvSequence base(&pool);
    model.Forward(doc_tokens[doc], &base);
    model.Forward(question, &base);
    const auto expected = model.GreedyDecode(question.back(), 5, &base);
    CHECK(answer == expected) << "query " << q;
    ++queries_ok;
  }
  std::printf("%d/8 queries answered identically to full-document prefill\n\n", queries_ok);

  // --- 3. price the pipeline at Llama2-13B scale ---
  const ModelConfig big = ModelConfig::Llama2_13B();
  Restorer restorer(Platform::DefaultTestbed(1, 4), big);
  std::printf("query TTFT at Llama2-13B scale (A100 + 4 SSDs), question = 64 tokens:\n");
  std::printf("%10s | %14s %14s %14s | %8s\n", "doc tokens", "HCache", "KV-offload",
              "doc prefill", "speedup");
  for (const int64_t doc_tokens_big : {2048, 4096, 8192, 16384}) {
    const double h = restorer.Restore(RestoreMethod::kHCache, doc_tokens_big).total_time;
    const double kv = restorer.Restore(RestoreMethod::kKvOffload, doc_tokens_big).total_time;
    const double re = restorer.Restore(RestoreMethod::kRecompute, doc_tokens_big).total_time;
    std::printf("%10lld | %11.1f ms %11.1f ms %11.1f ms | %7.2fx\n",
                static_cast<long long>(doc_tokens_big), h * 1e3, kv * 1e3, re * 1e3,
                re / h);
  }
  std::printf("\nOK: RAG contexts restore losslessly; offline hidden-state generation "
              "turns document prefill into a transfer-plus-projection.\n");
  std::filesystem::remove_all(dir);
  return 0;
}
