// Quickstart: the full HCache loop on a real (tiny) transformer in ~80 lines.
//
//   1. Run a prompt through the model while the two-stage saver captures hidden states
//      into a file-backed chunk store.
//   2. Evict the sequence's KV cache (simulating GPU memory pressure).
//   3. Restore the KV cache from hidden states (K = RoPE(W_k * H), V = W_v * H).
//   4. Verify the restored KV is bit-identical and that generation continues exactly
//      as if nothing had been evicted.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "src/core/functional_engine.h"
#include "src/core/partition.h"
#include "src/model/transformer.h"
#include "src/storage/file_backend.h"

using namespace hcache;

int main() {
  // A structurally faithful miniature Llama (RMSNorm + SwiGLU + RoPE).
  const ModelConfig cfg = ModelConfig::TinyLlama(/*layers=*/4, /*hidden=*/64, /*heads=*/4);
  const ModelWeights weights = ModelWeights::Random(cfg, /*seed=*/42);
  Transformer model(&weights);
  KvBlockPool pool(KvPoolConfig::ForModel(cfg, /*num_blocks=*/64, /*block_tokens=*/8));

  const auto dir = std::filesystem::temp_directory_path() / "hcache_quickstart";
  std::filesystem::remove_all(dir);
  FileBackend store({(dir / "ssd0").string(), (dir / "ssd1").string()},
                   /*chunk_bytes=*/1 << 20);
  ThreadPool flush_pool(2);
  FunctionalHCache engine(&model, &store, &flush_pool, /*chunk_tokens=*/8);

  // 1. Prefill a prompt with hidden-state capture, then decode a few tokens.
  const std::vector<int32_t> prompt = {11, 42, 7, 99, 3, 250, 17, 64, 128, 5};
  const int64_t ctx_id = 1;
  PagedKvSequence seq(&pool);
  HiddenStateSink* sink = engine.BeginCapture(ctx_id);
  model.Forward(prompt, &seq, sink);
  const auto first_reply = model.GreedyDecode(prompt.back(), 6, &seq, sink);
  engine.SealContext(ctx_id);
  std::printf("generated %zu tokens; %lld hidden-state chunks persisted (%lld bytes)\n",
              first_reply.size(), static_cast<long long>(store.chunks_stored()),
              static_cast<long long>(store.bytes_stored()));

  // Reference for later comparison: continue decoding WITHOUT eviction.
  // (Clone the state by replaying; the engine is deterministic.)
  PagedKvSequence ref(&pool);
  model.Forward(prompt, &ref);
  model.GreedyDecode(prompt.back(), 6, &ref);
  const auto want = model.GreedyDecode(first_reply.back(), 8, &ref);

  // 2. Evict: the KV blocks go back to the pool; only hidden states remain (on disk).
  const int64_t history = seq.num_tokens();
  seq.Evict();
  std::printf("evicted %lld tokens of KV cache; pool free blocks: %lld\n",
              static_cast<long long>(history), static_cast<long long>(pool.num_free()));

  // 3. Restore every layer from hidden states.
  PartitionScheme scheme;
  scheme.layers_hidden = cfg.num_layers;
  scheme.layers_other = 0;
  scheme.complement = ComplementMethod::kNone;
  CHECK(engine.RestoreContext(ctx_id, scheme, /*history_tokens=*/{}, &seq));
  std::printf("restored %lld tokens from hidden states\n", static_cast<long long>(history));

  // 4. Verify: the restored cache must be bit-identical to the never-evicted one.
  for (int64_t layer = 0; layer < cfg.num_layers; ++layer) {
    Tensor k_ref, v_ref, k_got, v_got;
    ref.ReadKv(layer, 0, history, &k_ref, &v_ref);
    seq.ReadKv(layer, 0, history, &k_got, &v_got);
    CHECK(Tensor::BitwiseEqual(k_ref, k_got)) << "layer " << layer;
    CHECK(Tensor::BitwiseEqual(v_ref, v_got)) << "layer " << layer;
  }
  const auto got = model.GreedyDecode(first_reply.back(), 8, &seq);
  CHECK(got == want);
  std::printf("OK: restored KV bit-identical on all %lld layers; continued generation "
              "matches token-for-token.\n",
              static_cast<long long>(cfg.num_layers));

  std::filesystem::remove_all(dir);
  return 0;
}
