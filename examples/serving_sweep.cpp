// Serving sweep: run the continuous-batching serving simulator from the command line.
//
// Reproduces any point of the paper's Fig 9 grid (or configurations the paper never
// measured) without writing code:
//
//   ./build/serving_sweep --model=7b --method=hcache --load=0.2
//       --sessions=200 --interval=30 --ssds=4 --backend=tiered --dram-mb=1 --codec=int8
//
// Cluster mode multiplexes N replicas over ONE shared backend behind a session
// router (the load is the fleet-wide offered load):
//
//   ./build/serving_sweep --replicas=4 --router=least --backend=tiered --load=2.0
//
// Elastic mode layers the dynamic fleet on top of cluster mode: `--autoscale` turns
// on the target-utilization controller (optionally `--min-replicas`/`--target-tokens`),
// `--diurnal[=amplitude]` swaps the stationary Poisson arrivals for a sinusoidal day
// (`--diurnal-period` seconds per cycle), and `--kill-replica-at=SEC` fail-stops a
// replica mid-run so its sessions migrate and restore on the survivors:
//
//   ./build/serving_sweep --replicas=4 --autoscale --diurnal=0.8 --diurnal-period=900
//   ./build/serving_sweep --replicas=3 --router=sticky --kill-replica-at=30
//
// Prints TTFT/TBT distributions, completed-round throughput, the restoration
// schedule in effect, and — when a storage backend is selected — what the storage
// tier saw (reads split across DRAM/cold, evictions, write-back volume). Cluster
// runs additionally report per-replica skew and cross-replica restore counts.
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "src/core/restorer.h"
#include "src/serving/cluster.h"
#include "src/serving/engine.h"
#include "src/storage/file_backend.h"
#include "src/storage/memory_backend.h"
#include "src/storage/tiered_backend.h"

using namespace hcache;

namespace {

std::string ArgValue(int argc, char** argv, const char* key, const char* def) {
  const size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 && argv[i][klen] == '=') {
      return argv[i] + klen + 1;
    }
  }
  return def;
}

// True when `key` appears bare (`--autoscale`) or with a value (`--diurnal=0.8`).
bool HasFlag(int argc, char** argv, const char* key) {
  const size_t klen = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, klen) == 0 &&
        (argv[i][klen] == '\0' || argv[i][klen] == '=')) {
      return true;
    }
  }
  return false;
}

RestoreMethod ParseMethod(const std::string& m) {
  if (m == "recompute") {
    return RestoreMethod::kRecompute;
  }
  if (m == "kvoffload") {
    return RestoreMethod::kKvOffload;
  }
  if (m == "ideal") {
    return RestoreMethod::kIdeal;
  }
  if (m == "hcache-o") {
    return RestoreMethod::kHCacheOnly;
  }
  return RestoreMethod::kHCache;
}

void PrintSummary(const ServingReport& rep) {
  std::printf("rounds   : %lld submitted, %lld completed in %.1fs  (%.3f rounds/s)\n",
              static_cast<long long>(rep.rounds_submitted),
              static_cast<long long>(rep.rounds_completed), rep.makespan,
              rep.RoundsPerSecond());
  std::printf("TTFT     : %s\n", rep.ttft.Summary(" s").c_str());
  std::printf("TBT      : %s\n", rep.tbt.Summary(" s").c_str());
}

RouterPolicy ParseRouter(const std::string& r) {
  if (r == "rr" || r == "round-robin") {
    return RouterPolicy::kRoundRobin;
  }
  if (r == "p2c" || r == "power-of-two") {
    return RouterPolicy::kPowerOfTwo;
  }
  if (r == "sticky" || r == "sticky-spill") {
    return RouterPolicy::kStickyWithSpill;
  }
  return RouterPolicy::kLeastLoadedTokens;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = ArgValue(argc, argv, "--model", "7b");
  const std::string method_name = ArgValue(argc, argv, "--method", "hcache");
  const double load = std::stod(ArgValue(argc, argv, "--load", "0.2"));
  const int64_t sessions = std::stoll(ArgValue(argc, argv, "--sessions", "150"));
  const double interval = std::stod(ArgValue(argc, argv, "--interval", "30"));
  const int ssds = std::stoi(ArgValue(argc, argv, "--ssds", "4"));
  const uint64_t seed = std::stoull(ArgValue(argc, argv, "--seed", "97"));
  const std::string backend_name = ArgValue(argc, argv, "--backend", "none");
  const int64_t dram_mb = std::stoll(ArgValue(argc, argv, "--dram-mb", "4"));
  const std::string codec_name = ArgValue(argc, argv, "--codec", "fp16");
  const int replicas = std::stoi(ArgValue(argc, argv, "--replicas", "1"));
  const RouterPolicy router = ParseRouter(ArgValue(argc, argv, "--router", "least"));
  const bool autoscale = HasFlag(argc, argv, "--autoscale");
  const int min_replicas = std::stoi(ArgValue(argc, argv, "--min-replicas", "1"));
  const double target_tokens =
      std::stod(ArgValue(argc, argv, "--target-tokens", "3000"));
  const bool diurnal = HasFlag(argc, argv, "--diurnal");
  const double diurnal_amplitude =
      std::stod(ArgValue(argc, argv, "--diurnal", "0.6"));
  const double diurnal_period =
      std::stod(ArgValue(argc, argv, "--diurnal-period", "900"));
  const double kill_at = std::stod(ArgValue(argc, argv, "--kill-replica-at", "-1"));

  const ModelConfig cfg = model_name == "30b"   ? ModelConfig::Opt30B()
                          : model_name == "13b" ? ModelConfig::Llama2_13B()
                                                : ModelConfig::Llama2_7B();
  const Platform platform = Platform::DefaultTestbed(model_name == "30b" ? 4 : 1, ssds);

  ServingOptions o;
  o.method = ParseMethod(method_name);
  o.state_codec = codec_name == "fp32"   ? ChunkCodec::kFp32
                  : codec_name == "int8" ? ChunkCodec::kInt8
                                         : ChunkCodec::kFp16;
  if (model_name == "13b") {
    o.max_history_tokens = 8192;  // the 13B pool holds ~15K tokens; cap the whales
  }

  // Optional storage backend the run registers context state with.
  constexpr int64_t kChunkBytes = 64 * 1024;
  const auto store_dir = std::filesystem::temp_directory_path() /
                         ("hcache_sweep_" + std::to_string(::getpid()));
  std::unique_ptr<StorageBackend> cold_tier;
  std::unique_ptr<StorageBackend> backend;
  auto make_file = [&] {
    return std::make_unique<FileBackend>(
        std::vector<std::string>{(store_dir / "d0").string(), (store_dir / "d1").string()},
        kChunkBytes);
  };
  if (backend_name == "file") {
    backend = make_file();
  } else if (backend_name == "memory") {
    backend = std::make_unique<MemoryBackend>(kChunkBytes);
  } else if (backend_name == "tiered") {
    cold_tier = make_file();
    backend = std::make_unique<TieredBackend>(cold_tier.get(), dram_mb << 20);
  }
  o.state_backend = backend.get();

  std::printf("model    : %s on %s%s\n", cfg.name.c_str(), platform.Describe().c_str(),
              replicas > 1 ? " (per replica)" : "");
  std::printf("method   : %s (hidden-state codec %s)\n", RestoreMethodName(o.method),
              ChunkCodecName(o.state_codec));
  std::printf("workload : %lld sessions, Poisson %.3f sessions/s, %.0fs round interval\n",
              static_cast<long long>(sessions), load, interval);

  if (o.method == RestoreMethod::kHCache) {
    Restorer r(platform, cfg, StorageLayout::kLayerChunked, kDefaultChunkTokens,
               o.state_codec);
    std::printf("restoration schedule @2.5K history: %s\n\n",
                r.Schedule(2500).ToString().c_str());
  }

  ServingReport rep;
  if (replicas > 1) {
    // Cluster mode: N replicas behind a session router, one shared backend. Without
    // an explicit backend the fleet still needs one to move state across replicas.
    if (backend == nullptr) {
      backend = std::make_unique<MemoryBackend>(kChunkBytes);
    }
    ClusterOptions co;
    co.num_replicas = replicas;
    co.router = router;
    co.serving = o;
    if (autoscale) {
      co.initial_replicas = min_replicas;
      co.autoscaler.policy = AutoscalePolicy::kTargetUtilization;
      co.autoscaler.min_replicas = min_replicas;
      co.autoscaler.target_queued_tokens = target_tokens;
    }
    if (diurnal) {
      co.arrivals.kind = ArrivalSpec::Kind::kDiurnal;
      co.arrivals.diurnal.amplitude = diurnal_amplitude;
      co.arrivals.diurnal.period_s = diurnal_period;
    }
    if (kill_at >= 0) {
      co.events.push_back(
          FleetEvent{kill_at, FleetEvent::Kind::kKill, /*replica=*/-1});
    }
    ClusterEngine cluster(platform, cfg, co, backend.get());
    std::printf("cluster  : %d replicas behind %s routing, shared %s backend\n",
                replicas, RouterPolicyName(router), backend->Name().c_str());
    if (autoscale) {
      std::printf("elastic  : autoscaled %d..%d replicas, target %.0f queued "
                  "tokens/replica\n",
                  min_replicas, replicas, target_tokens);
    }
    if (diurnal) {
      std::printf("arrivals : diurnal sinusoid, amplitude %.2f, period %.0fs\n",
                  diurnal_amplitude, diurnal_period);
    }
    if (kill_at >= 0) {
      std::printf("fault    : fail-stop one replica at t=%.0fs\n", kill_at);
    }
    std::printf("KV pool  : %lld tokens per replica\n\n",
                static_cast<long long>(cluster.replica(0).DeriveKvCapacityTokens()));
    const ClusterReport crep = cluster.RunConversations(load, sessions, interval, seed);
    rep = crep.aggregate;
    PrintSummary(rep);
    std::printf("fleet    : round skew %.3f, %lld cross-replica restores, "
                "%lld affinity restores\n",
                crep.ReplicaRoundSkew(),
                static_cast<long long>(crep.cross_replica_restores),
                static_cast<long long>(crep.affinity_restores));
    if (autoscale || kill_at >= 0 || !co.events.empty()) {
      std::printf("elastic  : %d..%d replicas up, %lld scale-ups, %lld scale-downs, "
                  "%lld kills\n",
                  crep.min_replicas_up, crep.peak_replicas_up,
                  static_cast<long long>(crep.scale_ups),
                  static_cast<long long>(crep.scale_downs),
                  static_cast<long long>(crep.kills));
      std::printf("           %.1f replica-seconds used (%.1f saved vs holding peak), "
                  "%lld rounds migrated, %lld sessions completed, %lld dropped\n",
                  crep.replica_seconds, crep.ReplicaSecondsSavedVsPeak(),
                  static_cast<long long>(crep.migrated_rounds),
                  static_cast<long long>(crep.sessions_completed),
                  static_cast<long long>(crep.sessions_dropped));
    }
    for (int i = 0; i < cluster.num_replicas(); ++i) {
      const ServingReport& r = crep.replicas[static_cast<size_t>(i)];
      std::printf("           replica %d: %lld rounds, ttft %.3fs mean\n", i,
                  static_cast<long long>(r.rounds_completed), r.ttft.Mean());
    }
  } else {
    ServingEngine engine(platform, cfg, o);
    std::printf("KV pool  : %lld tokens\n\n",
                static_cast<long long>(engine.DeriveKvCapacityTokens()));
    rep = engine.RunConversations(load, sessions, interval, seed);
    PrintSummary(rep);
  }
  if (backend != nullptr) {
    const StorageStats& s = rep.storage;
    std::printf("storage  : %s — %lld writes, %lld reads (%.0f%% DRAM by chunks, "
                "%.0f%% by bytes)\n",
                backend->Name().c_str(), static_cast<long long>(s.total_writes),
                static_cast<long long>(s.total_reads), 100.0 * s.DramHitRatio(),
                100.0 * s.DramHitByteRatio());
    std::printf("           %.1f MB encoded state written (%.2fx vs FP32-equivalent)\n",
                static_cast<double>(rep.state_encoded_bytes) / (1 << 20),
                rep.StateCompressionRatio());
    if (s.evicted_contexts > 0) {
      std::printf("           %lld contexts evicted, %.1f MB written back\n",
                  static_cast<long long>(s.evicted_contexts),
                  static_cast<double>(s.writeback_bytes) / (1 << 20));
    }
    std::filesystem::remove_all(store_dir);
  }
  return 0;
}
