#include "src/serving/gpu_kv_cache.h"

#include "src/common/logging.h"

namespace hcache {

LruContextCache::LruContextCache(int64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens) {
  CHECK_GE(capacity_tokens, 0);
}

bool LruContextCache::Lookup(int64_t context_id) {
  const auto it = entries_.find(context_id);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return true;
}

bool LruContextCache::Contains(int64_t context_id) const {
  return entries_.count(context_id) != 0;
}

void LruContextCache::EvictUntilFits(int64_t needed) {
  while (used_tokens_ + needed > capacity_tokens_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_tokens_ -= victim.tokens;
    entries_.erase(victim.context_id);
    lru_.pop_back();
  }
}

bool LruContextCache::Insert(int64_t context_id, int64_t tokens) {
  CHECK_GE(tokens, 0);
  if (tokens > capacity_tokens_) {
    return false;
  }
  const auto it = entries_.find(context_id);
  if (it != entries_.end()) {
    used_tokens_ -= it->second->tokens;
    lru_.erase(it->second);
    entries_.erase(it);
  }
  EvictUntilFits(tokens);
  lru_.push_front(Entry{context_id, tokens});
  entries_[context_id] = lru_.begin();
  used_tokens_ += tokens;
  return true;
}

void LruContextCache::Erase(int64_t context_id) {
  const auto it = entries_.find(context_id);
  if (it == entries_.end()) {
    return;
  }
  used_tokens_ -= it->second->tokens;
  lru_.erase(it->second);
  entries_.erase(it);
}

double LruContextCache::HitRatio() const {
  const int64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
}

}  // namespace hcache
