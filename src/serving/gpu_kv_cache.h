// GPU-resident KV reuse cache (Fig 15 / §6.4).
//
// Real serving systems keep the KV cache of hot contexts on the GPU and fall back to
// state restoration on a miss. This is an LRU over contexts, budgeted in tokens (the
// resource the KV pool actually spends). HCache proper does not require this cache —
// it optimizes the miss path — but §6.4 evaluates the two together.
#ifndef HCACHE_SRC_SERVING_GPU_KV_CACHE_H_
#define HCACHE_SRC_SERVING_GPU_KV_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

namespace hcache {

class LruContextCache {
 public:
  explicit LruContextCache(int64_t capacity_tokens);

  // Looks up a context; a hit refreshes recency. Returns true on hit.
  bool Lookup(int64_t context_id);

  // Inserts (or resizes) a context of `tokens`, evicting LRU contexts as needed.
  // Contexts larger than the whole cache are not admitted (returns false).
  bool Insert(int64_t context_id, int64_t tokens);

  // Drops a context if present (e.g., session ended).
  void Erase(int64_t context_id);

  bool Contains(int64_t context_id) const;
  int64_t used_tokens() const { return used_tokens_; }
  int64_t capacity_tokens() const { return capacity_tokens_; }
  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

  // Statistics.
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  double HitRatio() const;

 private:
  struct Entry {
    int64_t context_id;
    int64_t tokens;
  };

  void EvictUntilFits(int64_t needed);

  int64_t capacity_tokens_;
  int64_t used_tokens_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<int64_t, std::list<Entry>::iterator> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_GPU_KV_CACHE_H_
