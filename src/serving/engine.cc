#include "src/serving/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace hcache {

namespace {

// Latency of one synchronous small write on the DirectIO path (submission + flush);
// the two-stage saver exists to keep this off the critical path.
constexpr double kSyncWriteLatency = 120e-6;

}  // namespace

bool MethodNeedsRestorePhase(RestoreMethod m) {
  switch (m) {
    case RestoreMethod::kKvOffload:
    case RestoreMethod::kHCache:
    case RestoreMethod::kHCacheOnly:
    case RestoreMethod::kNaiveHybrid:
      return true;
    case RestoreMethod::kRecompute:  // restoration == prefilling the history
    case RestoreMethod::kIdeal:      // state assumed resident
      return false;
  }
  return false;
}

const char* ReplicaLifecycleName(ReplicaLifecycle s) {
  switch (s) {
    case ReplicaLifecycle::kUp:
      return "up";
    case ReplicaLifecycle::kDraining:
      return "draining";
    case ReplicaLifecycle::kDown:
      return "down";
  }
  return "?";
}

ServingEngine::ServingEngine(const Platform& platform, const ModelConfig& cfg,
                             const ServingOptions& options)
    : platform_(platform),
      cfg_(cfg),
      options_(options),
      gpu_(platform.gpu, platform.num_gpus),
      restorer_(platform, cfg, StorageLayout::kLayerChunked, kDefaultChunkTokens,
                options.state_codec) {
  if (options_.kv_capacity_tokens == 0) {
    options_.kv_capacity_tokens = DeriveKvCapacityTokens();
  }
}

int64_t ServingEngine::DeriveKvCapacityTokens() const {
  const double weights =
      ApproxParamCount(cfg_) * static_cast<double>(cfg_.state_dtype_bytes) / platform_.num_gpus;
  const double budget = 0.9 * platform_.gpu.hbm_bytes - weights;
  CHECK_GT(budget, 0.0) << cfg_.name << " does not fit on " << platform_.gpu.name;
  const double per_token =
      static_cast<double>(cfg_.KvBytesPerToken()) / platform_.num_gpus;
  return static_cast<int64_t>(budget / per_token);
}

double ServingEngine::RestoreTime(int64_t history_tokens, double* compute_busy) const {
  return RestoreTimeWith(options_.method, history_tokens, compute_busy);
}

double ServingEngine::RestoreTimeWith(RestoreMethod method, int64_t history_tokens,
                                      double* compute_busy) const {
  if (history_tokens <= 0 || method == RestoreMethod::kIdeal) {
    *compute_busy = 0;
    return 0;
  }
  const RestoreResult res = restorer_.Restore(method, history_tokens);
  *compute_busy = res.compute_busy;
  return res.total_time;
}

double ServingEngine::DirectSaveStall(int64_t batch_size, double iteration_compute) const {
  if (options_.save_mode != SaveMode::kDirect || batch_size <= 0) {
    return 0.0;
  }
  if (platform_.storage.kind == StorageBackendSpec::Kind::kDram) {
    return 0.0;  // direct stores to DRAM behave like the snapshot stage
  }
  const int ndev = std::max(1, platform_.ssds_per_gpu());
  // Each row write moves the codec-encoded hidden row.
  const double row =
      static_cast<double>(CodecRowBytes(options_.state_codec, cfg_.hidden_dim));
  const double per_io = kSyncWriteLatency + row / platform_.storage.ssd.EffectiveWriteBw(row);
  const double rounds = std::ceil(static_cast<double>(batch_size) / ndev);
  const double per_layer_write = rounds * per_io;
  const double per_layer_compute = iteration_compute / static_cast<double>(cfg_.num_layers);
  return std::max(0.0, per_layer_write - per_layer_compute) *
         static_cast<double>(cfg_.num_layers);
}

double ServingEngine::SteadyStateTbt(int64_t batch_size, int64_t history_per_seq) const {
  const double iter =
      gpu_.DecodeIterationTime(cfg_, batch_size, batch_size * history_per_seq);
  return iter + DirectSaveStall(batch_size, iter);
}

ServingReport ServingEngine::RunLongContextSerial(
    const std::vector<LongContextRequest>& requests) {
  ServingReport report;
  report.state_codec = options_.state_codec;
  double now = 0;
  for (const auto& req : requests) {
    double compute_busy = 0;
    const double restore = RestoreTime(req.context_tokens, &compute_busy);
    const double prefill = gpu_.PrefillTime(cfg_, req.input_tokens);
    const double ttft = options_.request_overhead + restore + prefill;
    report.ttft.Add(ttft);
    now += ttft;
    for (int64_t i = 1; i < req.output_tokens; ++i) {
      const double iter = gpu_.DecodeIterationTime(
          cfg_, 1, req.context_tokens + req.input_tokens + i);
      report.tbt.Add(iter + DirectSaveStall(1, iter));
      now += iter;
    }
    ++report.rounds_completed;
    ++report.rounds_submitted;
  }
  report.makespan = now;
  return report;
}

ServingReport ServingEngine::RunWithGpuCache(
    const std::vector<LongContextRequest>& requests, const std::vector<int64_t>& context_ids,
    int64_t cache_capacity_tokens) {
  CHECK_EQ(requests.size(), context_ids.size());
  LruContextCache cache(cache_capacity_tokens);
  ServingReport report;
  report.state_codec = options_.state_codec;
  double now = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& req = requests[i];
    const bool hit = cache.Lookup(context_ids[i]);
    double restore = 0;
    if (!hit) {
      double compute_busy = 0;
      restore = RestoreTime(req.context_tokens, &compute_busy);
    }
    cache.Insert(context_ids[i], req.context_tokens);
    const double ttft =
        options_.request_overhead + restore + gpu_.PrefillTime(cfg_, req.input_tokens);
    report.ttft.Add(ttft);
    now += ttft;
    ++report.rounds_completed;
    ++report.rounds_submitted;
  }
  report.makespan = now;
  report.cache_hit_ratio = cache.HitRatio();
  return report;
}

// ===== stepped simulation core =====

// Encoded bytes one history token's descriptor occupies under the configured codec.
// `state_bytes_per_token` is the FP32-equivalent stand-in size; the codec's byte ratio
// is taken at the REAL per-token row width (hidden_dim elements), so the INT8 per-row
// scale amortizes as it does in the actual storage plane instead of being charged
// against the tiny stand-in row (which would make int8 look bigger than fp16).
int64_t ServingEngine::EncodedStateBytesPerToken() const {
  const double fp32_row = static_cast<double>(cfg_.hidden_dim) * sizeof(float);
  const double ratio =
      static_cast<double>(CodecRowBytes(options_.state_codec, cfg_.hidden_dim)) / fp32_row;
  const auto bytes = static_cast<int64_t>(
      static_cast<double>(options_.state_bytes_per_token) * ratio + 0.5);
  return std::max<int64_t>(1, bytes);
}

void ServingEngine::StartExternal() {
  now_ = 0;
  kv_free_ = options_.kv_capacity_tokens;
  queued_tokens_ = 0;
  queued_rounds_ = 0;
  pending_.clear();
  prefill_q_.clear();
  decode_.clear();
  restoring_ = Restoration{};
  lifecycle_ = ReplicaLifecycle::kUp;
  report_ = ServingReport{};
  report_.state_codec = options_.state_codec;

  // Context state is persisted through the configured backend as descriptor chunks
  // (state_bytes_per_token per history token, context id = session id). Saving appends
  // from the first incomplete chunk (the two-stage saver's seal-and-rewrite pattern);
  // restoration streams every chunk back, which is what drives per-tier hit counts.
  StorageBackend* backend = options_.state_backend;
  if (backend != nullptr) {
    CHECK_GT(options_.state_bytes_per_token, 0) << "state_bytes_per_token must be positive";
    CHECK_LE(EncodedStateBytesPerToken(), backend->chunk_bytes())
        << "encoded state bytes per token exceed the backend's chunk capacity";
    chunk_capacity_tokens_ =
        std::max<int64_t>(1, backend->chunk_bytes() / EncodedStateBytesPerToken());
    state_buf_.assign(static_cast<size_t>(backend->chunk_bytes()), '\0');
  } else {
    chunk_capacity_tokens_ = 1;
    state_buf_.clear();
  }
}

void ServingEngine::SaveState(int64_t session, int64_t old_tokens, int64_t new_tokens) {
  StorageBackend* backend = options_.state_backend;
  if (backend == nullptr || new_tokens <= old_tokens) {
    return;
  }
  // The backend stores *encoded* chunks: the DRAM/SSD footprint (and the tiered
  // backend's eviction pressure) reflects the codec, not the FP32 logical size.
  const int64_t encoded_bpt = EncodedStateBytesPerToken();
  const int64_t first_chunk = old_tokens / chunk_capacity_tokens_;
  const int64_t last_chunk = (new_tokens - 1) / chunk_capacity_tokens_;
  for (int64_t c = first_chunk; c <= last_chunk; ++c) {
    const int64_t chunk_tokens =
        std::min(chunk_capacity_tokens_, new_tokens - c * chunk_capacity_tokens_);
    backend->WriteChunk(ChunkKey{session, 0, c}, state_buf_.data(),
                        chunk_tokens * encoded_bpt);
  }
  const int64_t appended = new_tokens - old_tokens;
  report_.state_logical_bytes += appended * options_.state_bytes_per_token;
  report_.state_encoded_bytes += appended * encoded_bpt;
}

bool ServingEngine::LoadState(int64_t session, int64_t tokens) {
  StorageBackend* backend = options_.state_backend;
  if (backend == nullptr || tokens <= 0) {
    return true;  // nothing to read back — restoration proceeds on the timing model
  }
  const int64_t num_chunks = (tokens + chunk_capacity_tokens_ - 1) / chunk_capacity_tokens_;
  // Batched restore: the session's chunks come up in bounded windows of one
  // submission each (the backend overlaps them — per-device pread fan-out, or one
  // cold round trip on a tiered store) instead of num_chunks serial round trips.
  constexpr int64_t kWindowChunks = 16;
  const int64_t chunk_bytes = backend->chunk_bytes();
  std::vector<char> scratch(
      static_cast<size_t>(std::min(num_chunks, kWindowChunks) * chunk_bytes));
  std::vector<ChunkReadRequest> reqs;
  for (int64_t c0 = 0; c0 < num_chunks; c0 += kWindowChunks) {
    const int64_t count = std::min(kWindowChunks, num_chunks - c0);
    reqs.assign(static_cast<size_t>(count), ChunkReadRequest{});
    for (int64_t i = 0; i < count; ++i) {
      reqs[static_cast<size_t>(i)] =
          ChunkReadRequest{ChunkKey{session, 0, c0 + i}, scratch.data() + i * chunk_bytes,
                           chunk_bytes, /*result=*/-1};
    }
    backend->ReadChunks(reqs);
    for (int64_t i = 0; i < count; ++i) {
      const int64_t got = reqs[static_cast<size_t>(i)].result;
      if (got <= 0) {
        HCACHE_LOG_ERROR << "session state "
                         << (got == kChunkCorrupt ? "corrupt" : "missing")
                         << ": session=" << session << " chunk=" << (c0 + i)
                         << " — falling back to recompute";
        return false;
      }
    }
  }
  return true;
}

void ServingEngine::Submit(const RoundTask& r) {
  CHECK(lifecycle_ == ReplicaLifecycle::kUp)
      << "Submit on a " << ReplicaLifecycleName(lifecycle_)
      << " replica — the driver must route from the kUp candidate set";
  pending_.push_back(r);
  ++report_.rounds_submitted;
  ++queued_rounds_;
  queued_tokens_ += r.history + r.input + r.output;
}

void ServingEngine::FinishRound(Active& a, std::vector<RoundCompletion>* done) {
  kv_free_ += a.kv_reserved;
  ++report_.rounds_completed;
  --queued_rounds_;
  queued_tokens_ -= a.r.history + a.r.input + a.r.output;
  if (!a.r.last_round) {
    SaveState(a.r.session, a.r.history, a.r.history + a.r.input + a.r.output);
  } else if (options_.state_backend != nullptr) {
    options_.state_backend->DeleteContext(a.r.session);  // session over: drop its state
  }
  if (done != nullptr) {
    done->push_back(RoundCompletion{a.r.session, a.r.input + a.r.output, now_});
  }
}

double ServingEngine::NextEventTime() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  if (lifecycle_ == ReplicaLifecycle::kDown || now_ >= options_.max_sim_seconds) {
    return kInf;
  }
  if (!decode_.empty() || !prefill_q_.empty()) {
    return now_;
  }
  if (restoring_.active && now_ >= restoring_.end) {
    return now_;  // completion ready to be harvested
  }
  if (!pending_.empty()) {
    const RoundTask& r = pending_.front();
    const int64_t needed = r.history + r.input;
    const bool needs_restore = r.history > 0 && MethodNeedsRestorePhase(options_.method);
    const bool blocked_on_channel = needs_restore && restoring_.active;
    const bool blocked_on_kv = needed <= options_.kv_capacity_tokens && needed > kv_free_;
    if (!blocked_on_channel && !blocked_on_kv) {
      // Dispatchable (or droppable) as soon as the round becomes visible.
      return std::max(now_, r.arrival);
    }
  }
  if (restoring_.active) {
    return restoring_.end;
  }
  return pending_.empty() ? kInf : now_;
}

void ServingEngine::Advance(double until, std::vector<RoundCompletion>* done) {
  if (lifecycle_ == ReplicaLifecycle::kDown) {
    return;  // not serving: the clock resumes via ResumeAt() on scale-up
  }
  for (;;) {
    if (now_ >= options_.max_sim_seconds) {
      return;
    }

    // Complete an in-flight restoration.
    if (restoring_.active && now_ >= restoring_.end) {
      Active a;
      a.r = restoring_.r;
      a.prefill_remaining = restoring_.r.input;
      a.kv_reserved = restoring_.kv_reserved;
      prefill_q_.push_back(a);
      restoring_.active = false;
    }

    // Dispatch pending rounds FCFS against the KV budget. PagedAttention allocates
    // blocks on demand, so admission charges the known footprint (history + prompt);
    // decode growth is charged as tokens generate (approximated at completion).
    while (!pending_.empty()) {
      RoundTask& r = pending_.front();
      if (r.arrival > now_) {
        // Submitted ahead of this replica's clock (the driver runs a global clock the
        // local one may trail while idle): not visible yet. FCFS order is preserved —
        // later pending rounds carry later arrivals.
        break;
      }
      const int64_t needed = r.history + r.input;
      if (needed > options_.kv_capacity_tokens) {
        // Never fits: drop rather than deadlock (the trace clamps at 16K so this only
        // guards misconfiguration). The session is over — surface the drop so the
        // driver stops scheduling it, and release its stored state: nothing will ever
        // restore it, and an orphaned context would squat in the shared tier skewing
        // fleet-wide eviction pressure for the rest of the run.
        --queued_rounds_;
        queued_tokens_ -= r.history + r.input + r.output;
        if (options_.state_backend != nullptr && r.history > 0) {
          options_.state_backend->DeleteContext(r.session);
        }
        if (done != nullptr) {
          done->push_back(RoundCompletion{r.session, 0, now_, /*dropped=*/true});
        }
        pending_.pop_front();
        continue;
      }
      if (needed > kv_free_) {
        break;
      }
      const bool needs_restore = r.history > 0 && MethodNeedsRestorePhase(options_.method);
      if (needs_restore) {
        if (restoring_.active) {
          break;  // one restoration channel; keep FCFS order
        }
        // Verified readback: if the stored state is gone or fails its CRC, the round
        // still completes — it just pays recompute-from-tokens restoration instead of
        // trusting bytes that would decode to a wrong KV cache.
        RestoreMethod method = options_.method;
        if (!LoadState(r.session, r.history)) {
          method = RestoreMethod::kRecompute;
          ++report_.restore_fallbacks;
        }
        double compute_busy = 0;
        const double t = RestoreTimeWith(method, r.history, &compute_busy);
        restoring_.r = r;
        restoring_.start = now_;
        restoring_.end = now_ + t;
        restoring_.compute_total = compute_busy;
        restoring_.charged = 0;
        restoring_.kv_reserved = needed;
        restoring_.active = true;
      } else {
        Active a;
        a.r = r;
        a.kv_reserved = needed;
        a.prefill_remaining =
            options_.method == RestoreMethod::kRecompute ? r.history + r.input : r.input;
        prefill_q_.push_back(a);
      }
      kv_free_ -= needed;
      pending_.pop_front();
    }

    // Nothing runnable? Jump the clock to the next local event within the horizon,
    // or park at `until` and hand control back to the driver.
    if (decode_.empty() && prefill_q_.empty()) {
      double next = std::numeric_limits<double>::infinity();
      if (restoring_.active) {
        next = std::min(next, restoring_.end);
      }
      if (!pending_.empty() && pending_.front().arrival > now_) {
        next = std::min(next, pending_.front().arrival);
      }
      if (next <= until) {
        now_ = std::max(now_, next);
        continue;
      }
      now_ = std::max(now_, until);
      return;
    }

    // The replica has runnable work: run fused iterations until the local clock passes
    // the horizon (iterations are indivisible, so the clock may overshoot by one).
    if (now_ > until) {
      return;
    }

    // --- one fused iteration (SplitFuse) ---
    int64_t total_ctx = 0;
    for (const Active& d : decode_) {
      total_ctx += d.r.history + d.r.input + d.decoded;
    }
    double iter = decode_.empty() ? 0.0
                                  : gpu_.DecodeIterationTime(
                                        cfg_, static_cast<int64_t>(decode_.size()), total_ctx);
    int64_t chunk = 0;
    const bool can_prefill =
        !prefill_q_.empty() && static_cast<int64_t>(decode_.size()) < options_.max_batch_size;
    if (can_prefill) {
      chunk = std::min(options_.prefill_chunk_tokens, prefill_q_.front().prefill_remaining);
      iter += gpu_.PrefillTime(cfg_, chunk);
    }
    iter += DirectSaveStall(static_cast<int64_t>(decode_.size()), iter);
    if (restoring_.active) {
      // Restoration compute steals GPU time from overlapping iterations.
      const double window = std::max(restoring_.end - restoring_.start, 1e-9);
      double share = restoring_.compute_total * (iter / window);
      share = std::min(share, restoring_.compute_total - restoring_.charged);
      restoring_.charged += share;
      iter += std::max(0.0, share);
    }
    if (iter <= 0) {
      iter = 1e-6;
    }
    now_ += iter;

    // Decode progress: one token per sequence per iteration.
    for (auto it = decode_.begin(); it != decode_.end();) {
      report_.tbt.Add(iter);
      ++it->decoded;
      if (it->decoded >= it->r.output) {
        FinishRound(*it, done);
        it = decode_.erase(it);
      } else {
        ++it;
      }
    }

    // Prefill progress on the queue head.
    if (chunk > 0) {
      Active& head = prefill_q_.front();
      head.prefill_remaining -= chunk;
      if (head.prefill_remaining == 0) {
        // Prefill emits the first token.
        report_.ttft.Add(now_ - head.r.arrival + options_.request_overhead);
        head.decoded = 1;
        if (head.decoded >= head.r.output) {
          FinishRound(head, done);
        } else {
          decode_.push_back(head);
        }
        prefill_q_.pop_front();
      }
    }
  }
}

ReplicaLoad ServingEngine::Load() const {
  ReplicaLoad l;
  l.queued_rounds = queued_rounds_;
  l.queued_tokens = queued_tokens_;
  l.kv_free_tokens = kv_free_;
  l.kv_capacity_tokens = options_.kv_capacity_tokens;
  return l;
}

ServingReport ServingEngine::FinishExternal() {
  report_.makespan = now_;
  return report_;
}

bool ServingEngine::Idle() const {
  return pending_.empty() && prefill_q_.empty() && decode_.empty() && !restoring_.active;
}

void ServingEngine::BeginDrain() {
  CHECK(lifecycle_ == ReplicaLifecycle::kUp)
      << "BeginDrain on a " << ReplicaLifecycleName(lifecycle_) << " replica";
  lifecycle_ = ReplicaLifecycle::kDraining;
}

void ServingEngine::MarkDown() {
  CHECK(Idle()) << "MarkDown with in-flight work — drain must settle first";
  lifecycle_ = ReplicaLifecycle::kDown;
}

std::vector<RoundTask> ServingEngine::Kill() {
  std::vector<RoundTask> orphans;
  orphans.reserve(pending_.size() + prefill_q_.size() + decode_.size() +
                  (restoring_.active ? 1 : 0));
  for (const RoundTask& r : pending_) {
    orphans.push_back(r);
  }
  if (restoring_.active) {
    orphans.push_back(restoring_.r);
  }
  for (const Active& a : prefill_q_) {
    orphans.push_back(a.r);
  }
  for (const Active& a : decode_) {
    orphans.push_back(a.r);
  }
  // Fail-stop: none of these rounds delivered a token, so abandoning them is safe —
  // the session's last COMPLETED round already persisted its state through the shared
  // tier (FinishRound), which is exactly the HCache thesis: hidden-state caches
  // outlive GPU residency, so a survivor restores instead of recomputing.
  report_.rounds_abandoned += static_cast<int64_t>(orphans.size());
  pending_.clear();
  prefill_q_.clear();
  decode_.clear();
  restoring_ = Restoration{};
  kv_free_ = options_.kv_capacity_tokens;
  queued_tokens_ = 0;
  queued_rounds_ = 0;
  lifecycle_ = ReplicaLifecycle::kDown;
  return orphans;
}

void ServingEngine::ResumeAt(double now) {
  CHECK(lifecycle_ == ReplicaLifecycle::kDown)
      << "ResumeAt on a " << ReplicaLifecycleName(lifecycle_) << " replica";
  CHECK(Idle());
  lifecycle_ = ReplicaLifecycle::kUp;
  now_ = std::max(now_, now);
}

}  // namespace hcache
