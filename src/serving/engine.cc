#include "src/serving/engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "src/common/logging.h"
#include "src/workload/arrival.h"

namespace hcache {

namespace {

// Latency of one synchronous small write on the DirectIO path (submission + flush);
// the two-stage saver exists to keep this off the critical path.
constexpr double kSyncWriteLatency = 120e-6;

// Encoded bytes one history token's descriptor occupies under the configured codec.
// `state_bytes_per_token` is the FP32-equivalent stand-in size; the codec's byte ratio
// is taken at the REAL per-token row width (hidden_dim elements), so the INT8 per-row
// scale amortizes as it does in the actual storage plane instead of being charged
// against the tiny stand-in row (which would make int8 look bigger than fp16).
int64_t EncodedStateBytesPerToken(const ServingOptions& o, const ModelConfig& cfg) {
  const double fp32_row = static_cast<double>(cfg.hidden_dim) * sizeof(float);
  const double ratio =
      static_cast<double>(CodecRowBytes(o.state_codec, cfg.hidden_dim)) / fp32_row;
  const auto bytes =
      static_cast<int64_t>(static_cast<double>(o.state_bytes_per_token) * ratio + 0.5);
  return std::max<int64_t>(1, bytes);
}

bool MethodNeedsRestorePhase(RestoreMethod m) {
  switch (m) {
    case RestoreMethod::kKvOffload:
    case RestoreMethod::kHCache:
    case RestoreMethod::kHCacheOnly:
    case RestoreMethod::kNaiveHybrid:
      return true;
    case RestoreMethod::kRecompute:  // restoration == prefilling the history
    case RestoreMethod::kIdeal:      // state assumed resident
      return false;
  }
  return false;
}

}  // namespace

ServingEngine::ServingEngine(const Platform& platform, const ModelConfig& cfg,
                             const ServingOptions& options)
    : platform_(platform),
      cfg_(cfg),
      options_(options),
      gpu_(platform.gpu, platform.num_gpus),
      restorer_(platform, cfg, StorageLayout::kLayerChunked, kDefaultChunkTokens,
                options.state_codec) {
  if (options_.kv_capacity_tokens == 0) {
    options_.kv_capacity_tokens = DeriveKvCapacityTokens();
  }
}

int64_t ServingEngine::DeriveKvCapacityTokens() const {
  const double weights =
      ApproxParamCount(cfg_) * static_cast<double>(cfg_.state_dtype_bytes) / platform_.num_gpus;
  const double budget = 0.9 * platform_.gpu.hbm_bytes - weights;
  CHECK_GT(budget, 0.0) << cfg_.name << " does not fit on " << platform_.gpu.name;
  const double per_token =
      static_cast<double>(cfg_.KvBytesPerToken()) / platform_.num_gpus;
  return static_cast<int64_t>(budget / per_token);
}

double ServingEngine::RestoreTime(int64_t history_tokens, double* compute_busy) const {
  if (history_tokens <= 0 || options_.method == RestoreMethod::kIdeal) {
    *compute_busy = 0;
    return 0;
  }
  const RestoreResult res = restorer_.Restore(options_.method, history_tokens);
  *compute_busy = res.compute_busy;
  return res.total_time;
}

double ServingEngine::DirectSaveStall(int64_t batch_size, double iteration_compute) const {
  if (options_.save_mode != SaveMode::kDirect || batch_size <= 0) {
    return 0.0;
  }
  if (platform_.storage.kind == StorageBackendSpec::Kind::kDram) {
    return 0.0;  // direct stores to DRAM behave like the snapshot stage
  }
  const int ndev = std::max(1, platform_.ssds_per_gpu());
  // Each row write moves the codec-encoded hidden row.
  const double row =
      static_cast<double>(CodecRowBytes(options_.state_codec, cfg_.hidden_dim));
  const double per_io = kSyncWriteLatency + row / platform_.storage.ssd.EffectiveWriteBw(row);
  const double rounds = std::ceil(static_cast<double>(batch_size) / ndev);
  const double per_layer_write = rounds * per_io;
  const double per_layer_compute = iteration_compute / static_cast<double>(cfg_.num_layers);
  return std::max(0.0, per_layer_write - per_layer_compute) *
         static_cast<double>(cfg_.num_layers);
}

double ServingEngine::SteadyStateTbt(int64_t batch_size, int64_t history_per_seq) const {
  const double iter =
      gpu_.DecodeIterationTime(cfg_, batch_size, batch_size * history_per_seq);
  return iter + DirectSaveStall(batch_size, iter);
}

ServingReport ServingEngine::RunLongContextSerial(
    const std::vector<LongContextRequest>& requests) {
  ServingReport report;
  report.state_codec = options_.state_codec;
  double now = 0;
  for (const auto& req : requests) {
    double compute_busy = 0;
    const double restore = RestoreTime(req.context_tokens, &compute_busy);
    const double prefill = gpu_.PrefillTime(cfg_, req.input_tokens);
    const double ttft = options_.request_overhead + restore + prefill;
    report.ttft.Add(ttft);
    now += ttft;
    for (int64_t i = 1; i < req.output_tokens; ++i) {
      const double iter = gpu_.DecodeIterationTime(
          cfg_, 1, req.context_tokens + req.input_tokens + i);
      report.tbt.Add(iter + DirectSaveStall(1, iter));
      now += iter;
    }
    ++report.rounds_completed;
    ++report.rounds_submitted;
  }
  report.makespan = now;
  return report;
}

ServingReport ServingEngine::RunWithGpuCache(
    const std::vector<LongContextRequest>& requests, const std::vector<int64_t>& context_ids,
    int64_t cache_capacity_tokens) {
  CHECK_EQ(requests.size(), context_ids.size());
  LruContextCache cache(cache_capacity_tokens);
  ServingReport report;
  report.state_codec = options_.state_codec;
  double now = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto& req = requests[i];
    const bool hit = cache.Lookup(context_ids[i]);
    double restore = 0;
    if (!hit) {
      double compute_busy = 0;
      restore = RestoreTime(req.context_tokens, &compute_busy);
    }
    cache.Insert(context_ids[i], req.context_tokens);
    const double ttft =
        options_.request_overhead + restore + gpu_.PrefillTime(cfg_, req.input_tokens);
    report.ttft.Add(ttft);
    now += ttft;
    ++report.rounds_completed;
    ++report.rounds_submitted;
  }
  report.makespan = now;
  report.cache_hit_ratio = cache.HitRatio();
  return report;
}

ServingReport ServingEngine::RunConversations(double sessions_per_second,
                                              int64_t num_sessions, double round_interval_s,
                                              uint64_t seed) {
  // --- workload materialization ---
  ShareGptGenerator gen(seed, options_.max_history_tokens);
  PoissonArrivals arrivals_gen(sessions_per_second, seed ^ 0x5eed);
  struct Session {
    Conversation conv;
    size_t next_round = 0;
    int64_t history = 0;
  };
  std::vector<Session> sessions(static_cast<size_t>(num_sessions));
  int64_t total_rounds = 0;
  for (auto& s : sessions) {
    s.conv = gen.Next();
    total_rounds += static_cast<int64_t>(s.conv.rounds.size());
  }

  struct Arrival {
    double time;
    int64_t session;
    bool operator>(const Arrival& o) const { return time > o.time; }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>> arrivals;
  for (int64_t i = 0; i < num_sessions; ++i) {
    arrivals.push(Arrival{arrivals_gen.NextArrivalTime(), i});
  }

  // --- engine state ---
  struct Round {
    int64_t session = 0;
    int64_t history = 0, input = 0, output = 0;
    double arrival = 0;
  };
  struct Active {
    Round r;
    int64_t prefill_remaining = 0;
    int64_t decoded = 0;
    int64_t kv_reserved = 0;
  };
  std::deque<Round> pending;
  std::deque<Active> prefill_q;
  std::vector<Active> decode;
  struct Restoration {
    Round r;
    double start = 0, end = 0;
    double compute_total = 0, charged = 0;
    int64_t kv_reserved = 0;
    bool active = false;
  } restoring;

  int64_t kv_free = options_.kv_capacity_tokens;
  ServingReport report;
  double now = 0;

  // --- storage-backend state registry ---
  // Context state is persisted through the configured backend as descriptor chunks
  // (state_bytes_per_token per history token, context id = session id). Saving appends
  // from the first incomplete chunk (the two-stage saver's seal-and-rewrite pattern);
  // restoration streams every chunk back, which is what drives per-tier hit counts.
  StorageBackend* backend = options_.state_backend;
  const int64_t bytes_per_token = options_.state_bytes_per_token;
  const int64_t encoded_bpt = EncodedStateBytesPerToken(options_, cfg_);
  report.state_codec = options_.state_codec;
  if (backend != nullptr) {
    CHECK_GT(bytes_per_token, 0) << "state_bytes_per_token must be positive";
    CHECK_LE(encoded_bpt, backend->chunk_bytes())
        << "encoded state bytes per token exceed the backend's chunk capacity";
  }
  const int64_t chunk_capacity_tokens =
      backend != nullptr ? std::max<int64_t>(1, backend->chunk_bytes() / encoded_bpt) : 1;
  std::vector<char> state_buf(
      backend != nullptr ? static_cast<size_t>(backend->chunk_bytes()) : 0, '\0');
  auto save_state = [&](int64_t sid, int64_t old_tokens, int64_t new_tokens) {
    if (backend == nullptr || new_tokens <= old_tokens) {
      return;
    }
    // The backend stores *encoded* chunks: the DRAM/SSD footprint (and the tiered
    // backend's eviction pressure) reflects the codec, not the FP32 logical size.
    const int64_t first_chunk = old_tokens / chunk_capacity_tokens;
    const int64_t last_chunk = (new_tokens - 1) / chunk_capacity_tokens;
    for (int64_t c = first_chunk; c <= last_chunk; ++c) {
      const int64_t chunk_tokens =
          std::min(chunk_capacity_tokens, new_tokens - c * chunk_capacity_tokens);
      backend->WriteChunk(ChunkKey{sid, 0, c}, state_buf.data(),
                          chunk_tokens * encoded_bpt);
    }
    const int64_t appended = new_tokens - old_tokens;
    report.state_logical_bytes += appended * bytes_per_token;
    report.state_encoded_bytes += appended * encoded_bpt;
  };
  auto load_state = [&](int64_t sid, int64_t tokens) {
    if (backend == nullptr || tokens <= 0) {
      return;
    }
    const int64_t num_chunks = (tokens + chunk_capacity_tokens - 1) / chunk_capacity_tokens;
    for (int64_t c = 0; c < num_chunks; ++c) {
      backend->ReadChunk(ChunkKey{sid, 0, c}, state_buf.data(),
                         static_cast<int64_t>(state_buf.size()));
    }
  };

  auto make_round = [&](int64_t sid) {
    Session& s = sessions[static_cast<size_t>(sid)];
    const ConversationRound& cr = s.conv.rounds[s.next_round];
    Round r;
    r.session = sid;
    r.history = s.history;
    r.input = cr.input_tokens;
    r.output = cr.output_tokens;
    r.arrival = now;
    return r;
  };

  auto finish_round = [&](Active& a) {
    kv_free += a.kv_reserved;
    ++report.rounds_completed;
    Session& s = sessions[static_cast<size_t>(a.r.session)];
    const int64_t old_history = s.history;
    s.history += a.r.input + a.r.output;
    ++s.next_round;
    if (s.next_round < s.conv.rounds.size()) {
      save_state(a.r.session, old_history, s.history);
      arrivals.push(Arrival{now + round_interval_s, a.r.session});
    } else if (backend != nullptr) {
      backend->DeleteContext(a.r.session);  // session over: drop its stored state
    }
  };

  while (report.rounds_completed < total_rounds && now < options_.max_sim_seconds) {
    // Admit due arrivals.
    while (!arrivals.empty() && arrivals.top().time <= now) {
      const int64_t sid = arrivals.top().session;
      arrivals.pop();
      pending.push_back(make_round(sid));
      ++report.rounds_submitted;
    }

    // Complete an in-flight restoration.
    if (restoring.active && now >= restoring.end) {
      Active a;
      a.r = restoring.r;
      a.prefill_remaining = restoring.r.input;
      a.kv_reserved = restoring.kv_reserved;
      prefill_q.push_back(a);
      restoring.active = false;
    }

    // Dispatch pending rounds FCFS against the KV budget. PagedAttention allocates
    // blocks on demand, so admission charges the known footprint (history + prompt);
    // decode growth is charged as tokens generate (approximated at completion).
    while (!pending.empty()) {
      Round& r = pending.front();
      const int64_t needed = r.history + r.input;
      if (needed > options_.kv_capacity_tokens) {
        // Never fits: drop rather than deadlock (the trace clamps at 16K so this only
        // guards misconfiguration).
        pending.pop_front();
        continue;
      }
      if (needed > kv_free) {
        break;
      }
      const bool needs_restore = r.history > 0 && MethodNeedsRestorePhase(options_.method);
      if (needs_restore) {
        if (restoring.active) {
          break;  // one restoration channel; keep FCFS order
        }
        load_state(r.session, r.history);
        double compute_busy = 0;
        const double t = RestoreTime(r.history, &compute_busy);
        restoring.r = r;
        restoring.start = now;
        restoring.end = now + t;
        restoring.compute_total = compute_busy;
        restoring.charged = 0;
        restoring.kv_reserved = needed;
        restoring.active = true;
      } else {
        Active a;
        a.r = r;
        a.kv_reserved = needed;
        a.prefill_remaining =
            options_.method == RestoreMethod::kRecompute ? r.history + r.input : r.input;
        prefill_q.push_back(a);
      }
      kv_free -= needed;
      pending.pop_front();
    }

    // Idle? Jump to the next event.
    if (decode.empty() && prefill_q.empty()) {
      double next = std::numeric_limits<double>::infinity();
      if (!arrivals.empty()) {
        next = std::min(next, arrivals.top().time);
      }
      if (restoring.active) {
        next = std::min(next, restoring.end);
      }
      if (!std::isfinite(next)) {
        break;  // nothing left to do
      }
      now = std::max(now, next);
      continue;
    }

    // --- one fused iteration (SplitFuse) ---
    int64_t total_ctx = 0;
    for (const Active& d : decode) {
      total_ctx += d.r.history + d.r.input + d.decoded;
    }
    double iter = decode.empty() ? 0.0
                                 : gpu_.DecodeIterationTime(
                                       cfg_, static_cast<int64_t>(decode.size()), total_ctx);
    int64_t chunk = 0;
    const bool can_prefill =
        !prefill_q.empty() && static_cast<int64_t>(decode.size()) < options_.max_batch_size;
    if (can_prefill) {
      chunk = std::min(options_.prefill_chunk_tokens, prefill_q.front().prefill_remaining);
      iter += gpu_.PrefillTime(cfg_, chunk);
    }
    iter += DirectSaveStall(static_cast<int64_t>(decode.size()), iter);
    if (restoring.active) {
      // Restoration compute steals GPU time from overlapping iterations.
      const double window = std::max(restoring.end - restoring.start, 1e-9);
      double share = restoring.compute_total * (iter / window);
      share = std::min(share, restoring.compute_total - restoring.charged);
      restoring.charged += share;
      iter += std::max(0.0, share);
    }
    if (iter <= 0) {
      iter = 1e-6;
    }
    now += iter;

    // Decode progress: one token per sequence per iteration.
    for (auto it = decode.begin(); it != decode.end();) {
      report.tbt.Add(iter);
      ++it->decoded;
      if (it->decoded >= it->r.output) {
        finish_round(*it);
        it = decode.erase(it);
      } else {
        ++it;
      }
    }

    // Prefill progress on the queue head.
    if (chunk > 0) {
      Active& head = prefill_q.front();
      head.prefill_remaining -= chunk;
      if (head.prefill_remaining == 0) {
        // Prefill emits the first token.
        report.ttft.Add(now - head.r.arrival + options_.request_overhead);
        head.decoded = 1;
        if (head.decoded >= head.r.output) {
          finish_round(head);
        } else {
          decode.push_back(head);
        }
        prefill_q.pop_front();
      }
    }
  }

  report.makespan = now;
  if (backend != nullptr) {
    report.storage = backend->Stats();
  }
  return report;
}

}  // namespace hcache
