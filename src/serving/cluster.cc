#include "src/serving/cluster.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace hcache {

const char* RouterPolicyName(RouterPolicy p) {
  switch (p) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kLeastLoadedTokens:
      return "least-loaded";
    case RouterPolicy::kPowerOfTwo:
      return "power-of-two";
    case RouterPolicy::kStickyWithSpill:
      return "sticky-spill";
  }
  return "?";
}

namespace {

int ArgMinTokens(const std::vector<ReplicaLoad>& loads) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(loads.size()); ++i) {
    if (loads[static_cast<size_t>(i)].queued_tokens <
        loads[static_cast<size_t>(best)].queued_tokens) {
      best = i;
    }
  }
  return best;
}

class RoundRobinRouter : public SessionRouter {
 public:
  int Route(const RoundTask&, int, const std::vector<ReplicaLoad>& loads) override {
    return static_cast<int>(next_++ % loads.size());
  }
  std::string Name() const override { return RouterPolicyName(RouterPolicy::kRoundRobin); }

 private:
  size_t next_ = 0;
};

class LeastLoadedRouter : public SessionRouter {
 public:
  int Route(const RoundTask&, int, const std::vector<ReplicaLoad>& loads) override {
    return ArgMinTokens(loads);
  }
  std::string Name() const override {
    return RouterPolicyName(RouterPolicy::kLeastLoadedTokens);
  }
};

class PowerOfTwoRouter : public SessionRouter {
 public:
  explicit PowerOfTwoRouter(uint64_t seed) : rng_(seed) {}

  int Route(const RoundTask&, int, const std::vector<ReplicaLoad>& loads) override {
    const auto n = static_cast<uint64_t>(loads.size());
    const auto a = static_cast<int>(rng_.NextBounded(n));
    auto b = static_cast<int>(rng_.NextBounded(n));
    if (n > 1 && b == a) {
      b = static_cast<int>((static_cast<uint64_t>(b) + 1) % n);  // force two choices
    }
    return loads[static_cast<size_t>(a)].queued_tokens <=
                   loads[static_cast<size_t>(b)].queued_tokens
               ? a
               : b;
  }
  std::string Name() const override { return RouterPolicyName(RouterPolicy::kPowerOfTwo); }

 private:
  Rng rng_;
};

// Session affinity: follow the replica that holds the session's most recent state so
// restores hit work the replica just wrote (and, with a partitioned-DRAM deployment,
// its local hot tier). Spill to the least-loaded replica when home has fallen too far
// behind — affinity must not serialize a fleet behind one hot replica.
class StickyRouter : public SessionRouter {
 public:
  explicit StickyRouter(int64_t spill_margin_tokens)
      : spill_margin_tokens_(spill_margin_tokens) {}

  int Route(const RoundTask&, int home, const std::vector<ReplicaLoad>& loads) override {
    const int least = ArgMinTokens(loads);
    if (home < 0 || home >= static_cast<int>(loads.size())) {
      return least;  // first round: place where there is room
    }
    const int64_t gap = loads[static_cast<size_t>(home)].queued_tokens -
                        loads[static_cast<size_t>(least)].queued_tokens;
    return gap > spill_margin_tokens_ ? least : home;
  }
  std::string Name() const override {
    return RouterPolicyName(RouterPolicy::kStickyWithSpill);
  }

 private:
  int64_t spill_margin_tokens_;
};

}  // namespace

std::unique_ptr<SessionRouter> MakeRouter(RouterPolicy policy, uint64_t seed,
                                          int64_t sticky_spill_margin_tokens) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kLeastLoadedTokens:
      return std::make_unique<LeastLoadedRouter>();
    case RouterPolicy::kPowerOfTwo:
      return std::make_unique<PowerOfTwoRouter>(seed);
    case RouterPolicy::kStickyWithSpill:
      return std::make_unique<StickyRouter>(sticky_spill_margin_tokens);
  }
  return std::make_unique<RoundRobinRouter>();
}

double ClusterReport::ReplicaRoundSkew() const {
  if (replicas.empty() || aggregate.rounds_completed == 0) {
    return 1.0;
  }
  int64_t max_rounds = 0;
  for (const ServingReport& r : replicas) {
    max_rounds = std::max(max_rounds, r.rounds_completed);
  }
  const double mean = static_cast<double>(aggregate.rounds_completed) /
                      static_cast<double>(replicas.size());
  return mean > 0 ? static_cast<double>(max_rounds) / mean : 1.0;
}

ClusterEngine::ClusterEngine(const Platform& replica_platform, const ModelConfig& cfg,
                             const ClusterOptions& options, StorageBackend* shared_backend)
    : options_(options),
      router_(MakeRouter(options.router, options.router_seed,
                         options.sticky_spill_margin_tokens)),
      shared_backend_(shared_backend) {
  CHECK_GT(options_.num_replicas, 0);
  options_.serving.state_backend = shared_backend_;  // every replica shares one tier
  replicas_.reserve(static_cast<size_t>(options_.num_replicas));
  for (int i = 0; i < options_.num_replicas; ++i) {
    replicas_.push_back(
        std::make_unique<ServingEngine>(replica_platform, cfg, options_.serving));
  }
}

ClusterReport ClusterEngine::RunConversations(double sessions_per_second,
                                              int64_t num_sessions,
                                              double round_interval_s, uint64_t seed) {
  ClusterReport report;
  report.router = router_->Name();

  std::vector<ServingEngine*> replicas;
  replicas.reserve(replicas_.size());
  for (auto& r : replicas_) {
    replicas.push_back(r.get());
  }
  const ConversationDriveResult drive = DriveConversations(
      replicas, sessions_per_second, num_sessions, round_interval_s, seed,
      [this](const RoundTask& r, int home, const std::vector<ReplicaLoad>& loads) {
        return router_->Route(r, home, loads);
      },
      options_.parallel_advance);
  report.cross_replica_restores = drive.cross_replica_restores;
  report.affinity_restores = drive.affinity_restores;

  // Seal per-replica reports and merge the fleet view.
  report.replicas.reserve(replicas_.size());
  for (auto& r : replicas_) {
    report.replicas.push_back(r->FinishExternal());
  }
  report.aggregate.state_codec = options_.serving.state_codec;
  for (const ServingReport& r : report.replicas) {
    report.aggregate.ttft.Merge(r.ttft);
    report.aggregate.tbt.Merge(r.tbt);
    report.aggregate.rounds_completed += r.rounds_completed;
    report.aggregate.rounds_submitted += r.rounds_submitted;
    report.aggregate.state_logical_bytes += r.state_logical_bytes;
    report.aggregate.state_encoded_bytes += r.state_encoded_bytes;
    report.aggregate.makespan = std::max(report.aggregate.makespan, r.makespan);
  }
  if (shared_backend_ != nullptr) {
    // Settle asynchronous eviction write-back before snapshotting, so the fleet
    // counters are conserved (no bytes in flight) and drain depth reads zero unless
    // the tier failed to keep up.
    shared_backend_->Quiesce();
    report.storage = shared_backend_->Stats();
    report.aggregate.storage = report.storage;
  }
  return report;
}

}  // namespace hcache
