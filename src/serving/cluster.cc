#include "src/serving/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/workload/sharegpt.h"

namespace hcache {

const char* RouterPolicyName(RouterPolicy p) {
  switch (p) {
    case RouterPolicy::kRoundRobin:
      return "round-robin";
    case RouterPolicy::kLeastLoadedTokens:
      return "least-loaded";
    case RouterPolicy::kPowerOfTwo:
      return "power-of-two";
    case RouterPolicy::kStickyWithSpill:
      return "sticky-spill";
  }
  return "?";
}

namespace {

int ArgMinTokens(const std::vector<ReplicaCandidate>& live) {
  int best = 0;
  for (int i = 1; i < static_cast<int>(live.size()); ++i) {
    if (live[static_cast<size_t>(i)].load.queued_tokens <
        live[static_cast<size_t>(best)].load.queued_tokens) {
      best = i;
    }
  }
  return best;
}

// Position of fleet id `id` in the live candidate list, or -1 when that replica is
// not routable anymore (drained, killed, or scaled away).
int FindCandidate(const std::vector<ReplicaCandidate>& live, int id) {
  for (int i = 0; i < static_cast<int>(live.size()); ++i) {
    if (live[static_cast<size_t>(i)].id == id) {
      return i;
    }
  }
  return -1;
}

class RoundRobinRouter : public SessionRouter {
 public:
  int Route(const RoundTask&, int, const std::vector<ReplicaCandidate>& live) override {
    return static_cast<int>(next_++ % live.size());
  }
  std::string Name() const override { return RouterPolicyName(RouterPolicy::kRoundRobin); }

 private:
  size_t next_ = 0;
};

class LeastLoadedRouter : public SessionRouter {
 public:
  int Route(const RoundTask&, int, const std::vector<ReplicaCandidate>& live) override {
    return ArgMinTokens(live);
  }
  std::string Name() const override {
    return RouterPolicyName(RouterPolicy::kLeastLoadedTokens);
  }
};

class PowerOfTwoRouter : public SessionRouter {
 public:
  explicit PowerOfTwoRouter(uint64_t seed) : rng_(seed) {}

  int Route(const RoundTask&, int, const std::vector<ReplicaCandidate>& live) override {
    const auto n = static_cast<uint64_t>(live.size());
    const auto a = static_cast<int>(rng_.NextBounded(n));
    auto b = static_cast<int>(rng_.NextBounded(n));
    if (n > 1 && b == a) {
      b = static_cast<int>((static_cast<uint64_t>(b) + 1) % n);  // force two choices
    }
    return live[static_cast<size_t>(a)].load.queued_tokens <=
                   live[static_cast<size_t>(b)].load.queued_tokens
               ? a
               : b;
  }
  std::string Name() const override { return RouterPolicyName(RouterPolicy::kPowerOfTwo); }

 private:
  Rng rng_;
};

// Session affinity: follow the replica that holds the session's most recent state so
// restores hit work the replica just wrote (and, with a partitioned-DRAM deployment,
// its local hot tier). Spill to the least-loaded replica when home has fallen too far
// behind — affinity must not serialize a fleet behind one hot replica — and re-route
// unconditionally when home has left the live set (drained, killed, or scaled away):
// the state lives in the SHARED tier, so any survivor can restore it.
class StickyRouter : public SessionRouter {
 public:
  explicit StickyRouter(int64_t spill_margin_tokens)
      : spill_margin_tokens_(spill_margin_tokens) {}

  int Route(const RoundTask&, int home, const std::vector<ReplicaCandidate>& live) override {
    const int least = ArgMinTokens(live);
    const int home_pos = home >= 0 ? FindCandidate(live, home) : -1;
    if (home_pos < 0) {
      return least;  // first round, or home is gone: place where there is room
    }
    const int64_t gap = live[static_cast<size_t>(home_pos)].load.queued_tokens -
                        live[static_cast<size_t>(least)].load.queued_tokens;
    return gap > spill_margin_tokens_ ? least : home_pos;
  }
  std::string Name() const override {
    return RouterPolicyName(RouterPolicy::kStickyWithSpill);
  }

 private:
  int64_t spill_margin_tokens_;
};

// Resolves a FleetEvent target: an explicit id must still be serving (kUp or
// kDraining); -1 picks the highest-id up replica (then highest draining, so a kill
// script still bites mid-drain). -1 when nothing is left to target.
int ResolveVictim(const ReplicaSet& fleet, int requested) {
  if (requested >= 0) {
    const bool serving =
        requested < fleet.size() &&
        fleet.replica(requested).lifecycle() != ReplicaLifecycle::kDown;
    return serving ? requested : -1;
  }
  for (int i = fleet.size() - 1; i >= 0; --i) {
    if (fleet.replica(i).lifecycle() == ReplicaLifecycle::kUp) {
      return i;
    }
  }
  for (int i = fleet.size() - 1; i >= 0; --i) {
    if (fleet.replica(i).lifecycle() == ReplicaLifecycle::kDraining) {
      return i;
    }
  }
  return -1;
}

}  // namespace

std::unique_ptr<SessionRouter> MakeRouter(RouterPolicy policy, uint64_t seed,
                                          int64_t sticky_spill_margin_tokens) {
  switch (policy) {
    case RouterPolicy::kRoundRobin:
      return std::make_unique<RoundRobinRouter>();
    case RouterPolicy::kLeastLoadedTokens:
      return std::make_unique<LeastLoadedRouter>();
    case RouterPolicy::kPowerOfTwo:
      return std::make_unique<PowerOfTwoRouter>(seed);
    case RouterPolicy::kStickyWithSpill:
      return std::make_unique<StickyRouter>(sticky_spill_margin_tokens);
  }
  return std::make_unique<RoundRobinRouter>();
}

// ===== ReplicaSet =====

ReplicaSet::ReplicaSet(std::vector<ServingEngine*> replicas, int initial_up)
    : replicas_(std::move(replicas)) {
  CHECK(!replicas_.empty());
  CHECK_GE(initial_up, 1);
  CHECK_LE(initial_up, size());
  active_since_.assign(replicas_.size(), 0.0);
  for (int i = 0; i < size(); ++i) {
    replicas_[static_cast<size_t>(i)]->StartExternal();
    if (i >= initial_up) {
      // Provisioned-but-idle capacity: down until the autoscaler (or a scripted
      // scale-up) revives it, and free until then in replica-seconds terms.
      replicas_[static_cast<size_t>(i)]->MarkDown();
      active_since_[static_cast<size_t>(i)] = -1.0;
    }
  }
  peak_up_ = min_up_ = initial_up;
  up_timeline_.push_back(UpSample{0.0, initial_up});
}

int ReplicaSet::NumUp() const {
  int n = 0;
  for (const ServingEngine* r : replicas_) {
    n += r->lifecycle() == ReplicaLifecycle::kUp ? 1 : 0;
  }
  return n;
}

std::vector<ReplicaCandidate> ReplicaSet::LiveCandidates() const {
  std::vector<ReplicaCandidate> live;
  live.reserve(replicas_.size());
  for (int i = 0; i < size(); ++i) {
    const ServingEngine* r = replicas_[static_cast<size_t>(i)];
    if (r->lifecycle() == ReplicaLifecycle::kUp) {
      live.push_back(ReplicaCandidate{i, r->Load()});
    }
  }
  return live;
}

double ReplicaSet::NextEventTime() const {
  double next = std::numeric_limits<double>::infinity();
  for (const ServingEngine* r : replicas_) {
    next = std::min(next, r->NextEventTime());  // down replicas report +inf
  }
  return next;
}

void ReplicaSet::Accrue(int id, double now) {
  double& since = active_since_[static_cast<size_t>(id)];
  if (since >= 0.0) {
    replica_seconds_ += now - since;
    since = -1.0;
  }
}

void ReplicaSet::RecordUpCount(double now) {
  const int n = NumUp();
  peak_up_ = std::max(peak_up_, n);
  min_up_ = std::min(min_up_, n);
  up_timeline_.push_back(UpSample{now, n});
}

bool ReplicaSet::ScaleUp(double now) {
  for (int i = 0; i < size(); ++i) {
    ServingEngine* r = replicas_[static_cast<size_t>(i)];
    if (r->lifecycle() == ReplicaLifecycle::kDown) {
      r->ResumeAt(now);
      active_since_[static_cast<size_t>(i)] = now;
      ++scale_ups_;
      RecordUpCount(now);
      return true;
    }
  }
  return false;
}

bool ReplicaSet::BeginDrain(int id, double now) {
  ServingEngine* r = replicas_[static_cast<size_t>(id)];
  if (r->lifecycle() != ReplicaLifecycle::kUp) {
    return false;
  }
  r->BeginDrain();
  ++scale_downs_;  // drains initiated, scripted or autoscaled
  RecordUpCount(now);
  return true;
}

bool ReplicaSet::DrainHighestUp(double now) {
  for (int i = size() - 1; i >= 0; --i) {
    if (replicas_[static_cast<size_t>(i)]->lifecycle() == ReplicaLifecycle::kUp) {
      return BeginDrain(i, now);
    }
  }
  return false;
}

std::vector<RoundTask> ReplicaSet::Kill(int id, double now) {
  ServingEngine* r = replicas_[static_cast<size_t>(id)];
  if (r->lifecycle() == ReplicaLifecycle::kDown) {
    return {};
  }
  Accrue(id, now);
  std::vector<RoundTask> orphans = r->Kill();
  ++kills_;
  RecordUpCount(now);
  return orphans;
}

int ReplicaSet::SettleDrains(double now) {
  int settled = 0;
  for (int i = 0; i < size(); ++i) {
    ServingEngine* r = replicas_[static_cast<size_t>(i)];
    if (r->lifecycle() == ReplicaLifecycle::kDraining && r->Idle()) {
      r->MarkDown();
      Accrue(i, now);
      ++settled;
    }
  }
  return settled;
}

void ReplicaSet::Seal(double now) {
  for (int i = 0; i < size(); ++i) {
    Accrue(i, now);
  }
}

// ===== shared multi-round-conversation driver =====

ConversationDriveResult DriveConversations(ReplicaSet& fleet, SessionRouter* router,
                                           const ConversationWorkload& workload,
                                           const std::vector<FleetEvent>& events,
                                           Autoscaler* autoscaler, bool parallel_advance) {
  CHECK_GT(fleet.size(), 0);
  const ServingOptions& opts = fleet.replica(0).options();

  // --- workload materialization (identical for any fleet size or elastic schedule,
  // so 1-vs-N and static-vs-elastic comparisons isolate the cluster layer) ---
  ShareGptGenerator gen(workload.seed, opts.max_history_tokens);
  std::unique_ptr<ArrivalProcess> arrivals_gen;
  if (workload.arrivals.kind == ArrivalSpec::Kind::kDiurnal) {
    arrivals_gen = std::make_unique<NonHomogeneousPoissonArrivals>(
        workload.sessions_per_second, workload.arrivals.diurnal, workload.seed ^ 0x5eed);
  } else {
    arrivals_gen = std::make_unique<PoissonArrivals>(workload.sessions_per_second,
                                                     workload.seed ^ 0x5eed);
  }
  struct Session {
    Conversation conv;
    size_t next_round = 0;
    int64_t history = 0;
    int home = -1;  // fleet id holding the session's saved state (-1: none yet)
    // Locality of the round currently in flight (one per session): did it restore
    // state, and from its home replica or across? Tallied when the round actually
    // completes, so dropped (or killed-and-migrated) rounds never count as restores.
    bool inflight_restores = false;
    bool inflight_cross = false;
  };
  std::vector<Session> sessions(static_cast<size_t>(workload.num_sessions));
  int64_t total_rounds = 0;
  for (auto& s : sessions) {
    s.conv = gen.Next();
    total_rounds += static_cast<int64_t>(s.conv.rounds.size());
  }

  struct Arrival {
    double time;
    int64_t session;
    bool operator>(const Arrival& o) const { return time > o.time; }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<Arrival>> arrivals;
  for (int64_t i = 0; i < workload.num_sessions; ++i) {
    arrivals.push(Arrival{arrivals_gen->NextArrivalTime(), i});
  }

  std::vector<FleetEvent> script(events);
  std::stable_sort(script.begin(), script.end(),
                   [](const FleetEvent& a, const FleetEvent& b) { return a.time < b.time; });
  size_t next_event = 0;

  ConversationDriveResult result;
  std::vector<RoundCompletion> done;
  int64_t completed = 0;
  double now = 0;
  const bool autoscaling = autoscaler != nullptr && autoscaler->enabled();

  while (completed < total_rounds && now < opts.max_sim_seconds) {
    // --- next global event ---
    // The WORK horizon decides liveness: pending arrivals (only routable while some
    // replica is up — or one can still be revived) and replica-local events. Scripted
    // events and autoscaler evaluations merely refine WHEN the clock stops next; they
    // must never keep a loop alive that can no longer make progress (a static grid
    // ticks forever).
    double work_next = std::numeric_limits<double>::infinity();
    if (!arrivals.empty()) {
      if (fleet.NumUp() > 0) {
        work_next = std::min(work_next, arrivals.top().time);
      } else {
        // Dead fleet with demand: the next revival opportunity is the horizon. The
        // autoscaler's floor repair (min_replicas) fires on its next evaluation.
        if (autoscaling) {
          work_next = std::min(work_next, autoscaler->NextEvaluationTime());
        }
        for (size_t e = next_event; e < script.size(); ++e) {
          if (script[e].kind == FleetEvent::Kind::kScaleUp) {
            work_next = std::min(work_next, std::max(now, script[e].time));
            break;
          }
        }
      }
    }
    work_next = std::min(work_next, fleet.NextEventTime());
    if (!std::isfinite(work_next)) {
      break;  // nothing can ever make progress again
    }
    double next = work_next;
    if (next_event < script.size()) {
      next = std::min(next, std::max(now, script[next_event].time));
    }
    if (autoscaling) {
      next = std::min(next, autoscaler->NextEvaluationTime());
    }
    now = std::max(now, next);

    // --- scripted fleet events due at or before the clock ---
    while (next_event < script.size() && script[next_event].time <= now) {
      const FleetEvent& ev = script[next_event++];
      switch (ev.kind) {
        case FleetEvent::Kind::kScaleUp:
          fleet.ScaleUp(now);
          break;
        case FleetEvent::Kind::kDrain: {
          const int id = ResolveVictim(fleet, ev.replica);
          if (id >= 0) {
            fleet.BeginDrain(id, now);
          }
          break;
        }
        case FleetEvent::Kind::kKill: {
          const int id = ResolveVictim(fleet, ev.replica);
          if (id < 0) {
            break;
          }
          // Fail-stop: the victim's in-flight rounds re-enter the arrival queue at
          // the kill time. The router sends them to survivors, which restore the
          // session's last saved state from the shared tier — the HCache thesis at
          // fleet scale (state outlives the GPU that computed it).
          for (const RoundTask& o : fleet.Kill(id, now)) {
            Session& s = sessions[static_cast<size_t>(o.session)];
            s.inflight_restores = false;
            s.inflight_cross = false;
            arrivals.push(Arrival{now, o.session});
            ++result.migrated_rounds;
          }
          break;
        }
      }
    }

    // --- autoscaler evaluation on its deterministic grid ---
    if (autoscaling && autoscaler->NextEvaluationTime() <= now) {
      const AutoscaleDecision d = autoscaler->Evaluate(now, fleet.LiveCandidates());
      for (int i = 0; i < d.delta; ++i) {
        if (!fleet.ScaleUp(now)) {
          break;  // every provisioned replica is already serving
        }
      }
      if (d.delta < 0) {
        fleet.DrainHighestUp(now);
      }
    }

    // Route and admit due arrivals. The candidate set is re-probed per decision so a
    // burst does not pile onto one replica within a single admission scan — and it
    // contains only kUp replicas, so draining/down replicas cannot be addressed.
    while (fleet.NumUp() > 0 && !arrivals.empty() && arrivals.top().time <= now) {
      const int64_t sid = arrivals.top().session;
      arrivals.pop();
      Session& s = sessions[static_cast<size_t>(sid)];
      const ConversationRound& cr = s.conv.rounds[s.next_round];
      RoundTask r;
      r.session = sid;
      r.history = s.history;
      r.input = cr.input_tokens;
      r.output = cr.output_tokens;
      r.arrival = now;
      r.last_round = s.next_round + 1 == s.conv.rounds.size();
      int target = -1;
      if (router != nullptr) {
        const std::vector<ReplicaCandidate> live = fleet.LiveCandidates();
        int idx = router->Route(r, s.home, live);
        if (idx < 0 || idx >= static_cast<int>(live.size())) {
          idx = 0;  // defensive: a router must not address absent candidates
        }
        target = live[static_cast<size_t>(idx)].id;
      } else {
        // Null router: lowest-id up replica, no load probes (the classic
        // single-replica RunConversations path).
        for (int i = 0; i < fleet.size(); ++i) {
          if (fleet.replica(i).lifecycle() == ReplicaLifecycle::kUp) {
            target = i;
            break;
          }
        }
      }
      // A round only counts toward restore locality when its method actually reads
      // state back through the shared tier (recompute/ideal never do).
      s.inflight_restores = r.history > 0 && MethodNeedsRestorePhase(opts.method) &&
                            opts.state_backend != nullptr;
      s.inflight_cross = s.inflight_restores && target != s.home;
      s.home = target;  // this replica will hold the state saved after this round
      fleet.replica(target).Submit(r);
    }

    // Step every replica to the global clock (down replicas no-op). Serial mode
    // advances them in fixed id order; parallel mode advances them concurrently
    // (replica state is disjoint; only the shared storage backend sees concurrent
    // traffic) and merges per-replica completions in id order, so both schedules
    // produce the same simulation byte-for-byte.
    done.clear();
    if (parallel_advance && fleet.size() > 1) {
      std::vector<std::vector<RoundCompletion>> done_per(
          static_cast<size_t>(fleet.size()));
      ThreadPool::Shared().ParallelFor(
          0, fleet.size(), 1, [&fleet, &done_per, now](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              fleet.replica(static_cast<int>(i))
                  .Advance(now, &done_per[static_cast<size_t>(i)]);
            }
          });
      for (const auto& d : done_per) {
        done.insert(done.end(), d.begin(), d.end());
      }
    } else {
      for (int i = 0; i < fleet.size(); ++i) {
        fleet.replica(i).Advance(now, &done);
      }
    }
    for (const RoundCompletion& c : done) {
      Session& s = sessions[static_cast<size_t>(c.session)];
      if (c.dropped) {
        // The replica refused the round outright (and released any stored state);
        // the session cannot continue and its remaining rounds are unreachable.
        s.next_round = s.conv.rounds.size();
        ++result.sessions_dropped;
        continue;
      }
      if (s.inflight_restores) {
        ++(s.inflight_cross ? result.cross_replica_restores : result.affinity_restores);
        s.inflight_restores = false;
      }
      s.history += c.new_tokens;
      ++s.next_round;
      ++completed;
      if (s.next_round < s.conv.rounds.size()) {
        arrivals.push(Arrival{c.finish_time + workload.round_interval_s, c.session});
      } else {
        ++result.sessions_completed;
      }
    }

    // Retire drains that went idle this step (their replica-seconds meter stops at
    // the moment the fleet observes them idle).
    fleet.SettleDrains(now);
  }
  fleet.Seal(now);
  return result;
}

// The classic single-replica entry point runs the SAME driver as the cluster plane
// (defined here so engine.cc stays free of cluster-layer concerns).
ServingReport ServingEngine::RunConversations(double sessions_per_second,
                                              int64_t num_sessions, double round_interval_s,
                                              uint64_t seed) {
  ReplicaSet fleet({this}, /*initial_up=*/1);
  ConversationWorkload workload;
  workload.sessions_per_second = sessions_per_second;
  workload.num_sessions = num_sessions;
  workload.round_interval_s = round_interval_s;
  workload.seed = seed;
  DriveConversations(fleet, /*router=*/nullptr, workload);
  ServingReport report = FinishExternal();
  if (options_.state_backend != nullptr) {
    // A tiered backend may still be write-backing evicted state; settle the
    // background plane so the snapshot below is stable and conserved.
    options_.state_backend->Quiesce();
    report.storage = options_.state_backend->Stats();
  }
  return report;
}

// ===== ClusterEngine =====

double ClusterReport::ReplicaRoundSkew() const {
  if (replicas.empty() || aggregate.rounds_completed == 0) {
    return 1.0;  // a fleet that served nothing is (vacuously) perfectly even
  }
  int64_t max_rounds = 0;
  for (const ServingReport& r : replicas) {
    max_rounds = std::max(max_rounds, r.rounds_completed);
  }
  const double mean = static_cast<double>(aggregate.rounds_completed) /
                      static_cast<double>(replicas.size());
  return mean > 0 ? static_cast<double>(max_rounds) / mean : 1.0;
}

ClusterEngine::ClusterEngine(const Platform& replica_platform, const ModelConfig& cfg,
                             const ClusterOptions& options, StorageBackend* shared_backend)
    : options_(options),
      router_(MakeRouter(options.router, options.router_seed,
                         options.sticky_spill_margin_tokens)),
      shared_backend_(shared_backend) {
  CHECK_GT(options_.num_replicas, 0);
  CHECK_LE(options_.initial_replicas, options_.num_replicas);
  options_.serving.state_backend = shared_backend_;  // every replica shares one tier
  replicas_.reserve(static_cast<size_t>(options_.num_replicas));
  for (int i = 0; i < options_.num_replicas; ++i) {
    replicas_.push_back(
        std::make_unique<ServingEngine>(replica_platform, cfg, options_.serving));
  }
}

ClusterReport ClusterEngine::RunConversations(double sessions_per_second,
                                              int64_t num_sessions,
                                              double round_interval_s, uint64_t seed) {
  ClusterReport report;
  report.router = router_->Name();

  std::vector<ServingEngine*> engines;
  engines.reserve(replicas_.size());
  for (auto& r : replicas_) {
    engines.push_back(r.get());
  }
  const int initial_up =
      options_.initial_replicas > 0 ? options_.initial_replicas : num_replicas();
  ReplicaSet fleet(std::move(engines), initial_up);
  Autoscaler autoscaler(options_.autoscaler, num_replicas());

  ConversationWorkload workload;
  workload.sessions_per_second = sessions_per_second;
  workload.num_sessions = num_sessions;
  workload.round_interval_s = round_interval_s;
  workload.seed = seed;
  workload.arrivals = options_.arrivals;

  const ConversationDriveResult drive =
      DriveConversations(fleet, router_.get(), workload, options_.events, &autoscaler,
                         options_.parallel_advance);
  report.cross_replica_restores = drive.cross_replica_restores;
  report.affinity_restores = drive.affinity_restores;
  report.migrated_rounds = drive.migrated_rounds;
  report.sessions_completed = drive.sessions_completed;
  report.sessions_dropped = drive.sessions_dropped;
  report.scale_ups = fleet.scale_ups();
  report.scale_downs = fleet.scale_downs();
  report.kills = fleet.kills();
  report.peak_replicas_up = fleet.peak_up();
  report.min_replicas_up = fleet.min_up();
  report.replica_seconds = fleet.replica_seconds();
  report.up_timeline = fleet.up_timeline();

  // Seal per-replica reports and merge the fleet view.
  report.replicas.reserve(replicas_.size());
  for (auto& r : replicas_) {
    report.replicas.push_back(r->FinishExternal());
  }
  report.aggregate.state_codec = options_.serving.state_codec;
  for (const ServingReport& r : report.replicas) {
    report.aggregate.ttft.Merge(r.ttft);
    report.aggregate.tbt.Merge(r.tbt);
    report.aggregate.rounds_completed += r.rounds_completed;
    report.aggregate.rounds_submitted += r.rounds_submitted;
    report.aggregate.restore_fallbacks += r.restore_fallbacks;
    report.aggregate.rounds_abandoned += r.rounds_abandoned;
    report.aggregate.state_logical_bytes += r.state_logical_bytes;
    report.aggregate.state_encoded_bytes += r.state_encoded_bytes;
    report.aggregate.makespan = std::max(report.aggregate.makespan, r.makespan);
  }
  if (shared_backend_ != nullptr) {
    // Settle asynchronous eviction write-back before snapshotting, so the fleet
    // counters are conserved (no bytes in flight) and drain depth reads zero unless
    // the tier failed to keep up.
    shared_backend_->Quiesce();
    report.storage = shared_backend_->Stats();
    report.aggregate.storage = report.storage;
  }
  return report;
}

}  // namespace hcache
