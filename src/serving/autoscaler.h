// Deterministic replica autoscaler over the cluster's load probes.
//
// The controller consumes the same instantaneous `ReplicaLoad` probes the routers
// read (queue depth, queued token demand, KV occupancy) and emits scale-up /
// scale-down decisions on a fixed evaluation grid. Everything is a pure function of
// the probe stream, so elastic runs are exactly reproducible: no wall clocks, no
// randomness. `kStatic` disables the controller entirely and reproduces the fixed
// fleet of PRs 4-9 bit-for-bit.
//
// Control law (kTargetUtilization): utilization is the fleet's queued token demand
// per up replica, normalized by `target_queued_tokens` (KV occupancy is folded in as
// a floor — a fleet can be KV-bound before it is queue-bound). The desired replica
// count is demand / target; hysteresis (hi/lo fractions) keeps the fleet from
// flapping around the setpoint, scale-downs additionally respect a cooldown (GPU
// churn is expensive; adding capacity under pressure is not), and scale-downs step
// one replica at a time because each one triggers a drain.
#ifndef HCACHE_SRC_SERVING_AUTOSCALER_H_
#define HCACHE_SRC_SERVING_AUTOSCALER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "src/serving/engine.h"

namespace hcache {

enum class AutoscalePolicy {
  kStatic,             // no controller: the fleet stays at its initial size
  kTargetUtilization,  // track target_queued_tokens per up replica with hysteresis
};

const char* AutoscalePolicyName(AutoscalePolicy p);

struct AutoscalerOptions {
  AutoscalePolicy policy = AutoscalePolicy::kStatic;
  int min_replicas = 1;
  int max_replicas = 0;  // 0 = the fleet size passed at construction
  // Setpoint: queued token demand (history+input+output of admitted-but-unfinished
  // rounds) one replica should carry. The default sits well inside the region where
  // TTFT is flat in the Fig 9 sweeps; push it up to run hotter fleets.
  double target_queued_tokens = 3000.0;
  // Hysteresis band around the setpoint: act only when utilization leaves
  // [lo_fraction, hi_fraction]. Must satisfy lo < 1 < hi.
  double hi_fraction = 1.3;
  double lo_fraction = 0.5;
  double evaluate_every_s = 20.0;
  // Minimum spacing between scale-DOWN actions (scale-ups are immediate: latency is
  // the SLO, idle GPUs are only money).
  double scale_down_cooldown_s = 120.0;
};

struct AutoscaleDecision {
  int delta = 0;             // replicas to add (> 0) or drain (< 0)
  double utilization = 0.0;  // fleet utilization the decision was based on
  bool in_cooldown = false;  // a wanted scale-down was suppressed by the cooldown
};

class Autoscaler {
 public:
  Autoscaler(const AutoscalerOptions& options, int fleet_size);

  bool enabled() const { return options_.policy != AutoscalePolicy::kStatic; }

  // Next time on the evaluation grid (+inf when disabled). The cluster driver folds
  // this into its event horizon so evaluations happen at deterministic sim times.
  double NextEvaluationTime() const {
    return enabled() ? next_eval_ : std::numeric_limits<double>::infinity();
  }

  // Evaluates the control law against the current up replicas and advances the
  // evaluation grid past `now`. `up` carries one entry per kUp replica.
  AutoscaleDecision Evaluate(double now, const std::vector<ReplicaCandidate>& up);

  // Fleet utilization the control law sees: queued token demand per up replica over
  // the setpoint, floored by the mean KV occupancy (a KV-bound fleet is busy even
  // when its queues are short). 0.0 for an empty fleet.
  double FleetUtilization(const std::vector<ReplicaCandidate>& up) const;

  int64_t evaluations() const { return evaluations_; }
  const AutoscalerOptions& options() const { return options_; }

 private:
  AutoscalerOptions options_;
  int fleet_size_;
  double next_eval_;
  double last_scale_down_ = -std::numeric_limits<double>::infinity();
  int64_t evaluations_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_AUTOSCALER_H_
