#include "src/serving/autoscaler.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace hcache {

const char* AutoscalePolicyName(AutoscalePolicy p) {
  switch (p) {
    case AutoscalePolicy::kStatic:
      return "static";
    case AutoscalePolicy::kTargetUtilization:
      return "target-utilization";
  }
  return "?";
}

Autoscaler::Autoscaler(const AutoscalerOptions& options, int fleet_size)
    : options_(options),
      fleet_size_(fleet_size),
      next_eval_(options.evaluate_every_s) {
  CHECK_GT(fleet_size_, 0);
  if (options_.max_replicas <= 0 || options_.max_replicas > fleet_size_) {
    options_.max_replicas = fleet_size_;
  }
  options_.min_replicas = std::clamp(options_.min_replicas, 1, options_.max_replicas);
  if (enabled()) {
    CHECK_GT(options_.target_queued_tokens, 0.0);
    CHECK_GT(options_.evaluate_every_s, 0.0);
    CHECK_LT(options_.lo_fraction, 1.0);
    CHECK_GT(options_.hi_fraction, 1.0);
  }
}

double Autoscaler::FleetUtilization(const std::vector<ReplicaCandidate>& up) const {
  if (up.empty()) {
    return 0.0;
  }
  double queued_tokens = 0.0;
  double kv_occupancy = 0.0;
  for (const ReplicaCandidate& c : up) {
    queued_tokens += static_cast<double>(c.load.queued_tokens);
    kv_occupancy += c.load.KvOccupancy();
  }
  const double n = static_cast<double>(up.size());
  const double demand = queued_tokens / (n * options_.target_queued_tokens);
  return std::max(demand, kv_occupancy / n);
}

AutoscaleDecision Autoscaler::Evaluate(double now,
                                       const std::vector<ReplicaCandidate>& up) {
  AutoscaleDecision d;
  if (!enabled()) {
    return d;
  }
  ++evaluations_;
  // Advance the grid strictly past `now` so a clock jump over several grid points
  // yields exactly one (current-state) evaluation, not a burst of stale ones.
  while (next_eval_ <= now) {
    next_eval_ += options_.evaluate_every_s;
  }

  const int num_up = static_cast<int>(up.size());
  d.utilization = FleetUtilization(up);

  // Floor first: a fleet below min_replicas (all replicas killed, or a manual drain
  // went too far) is repaired unconditionally.
  if (num_up < options_.min_replicas) {
    d.delta = options_.min_replicas - num_up;
    return d;
  }

  if (d.utilization > options_.hi_fraction) {
    // Proportional scale-up toward utilization ~1: enough replicas to spread the
    // current demand at the setpoint, capped at max. Never waits on cooldown.
    const int desired = std::min(
        options_.max_replicas,
        std::max(num_up + 1,
                 static_cast<int>(std::ceil(static_cast<double>(num_up) * d.utilization))));
    d.delta = desired - num_up;
  } else if (d.utilization < options_.lo_fraction && num_up > options_.min_replicas) {
    if (now - last_scale_down_ < options_.scale_down_cooldown_s) {
      d.in_cooldown = true;
    } else {
      d.delta = -1;  // one drain at a time: each scale-down is a full drain cycle
      last_scale_down_ = now;
    }
  }
  return d;
}

}  // namespace hcache
