// Multi-replica cluster serving plane over shared tiered storage.
//
// The paper evaluates restoration inside a single serving engine, but hidden-state
// caches that outlive GPU residency only pay off at fleet scale: a session's next
// round may land on a *different* replica than the one that saved its state. This
// layer multiplexes N `ServingEngine` replicas (each with its own GPU/KV budget)
// behind a pluggable `SessionRouter`, all persisting context state through ONE shared
// `StorageBackend` — so a save on replica A followed by a restore on replica B
// exercises the real cross-replica reuse pattern, and the shared DRAM tier's hit
// ratio reflects fleet-wide (not per-engine) locality.
//
// The simulation runs replicas on one global clock: each replica is a discrete-event
// process (ServingEngine's stepped interface) whose local clock may overshoot the
// global one by at most one fused iteration. Routing decisions read instantaneous
// per-replica load probes (queue depth, queued token demand, KV occupancy). All
// policies are deterministic given the seed.
#ifndef HCACHE_SRC_SERVING_CLUSTER_H_
#define HCACHE_SRC_SERVING_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/serving/engine.h"
#include "src/storage/storage_backend.h"

namespace hcache {

enum class RouterPolicy {
  kRoundRobin,         // rotate over replicas, load-blind
  kLeastLoadedTokens,  // argmin queued token demand (ties -> lowest index)
  kPowerOfTwo,         // sample two replicas, pick the less loaded (seeded)
  kStickyWithSpill,    // session affinity to the last-serving replica, spill on skew
};

const char* RouterPolicyName(RouterPolicy p);

// Routing strategy seam. `home` is the replica that served (and saved the state of)
// the session's previous round, or -1 for a session's first round. Implementations
// must be deterministic functions of their seed and the argument stream.
class SessionRouter {
 public:
  virtual ~SessionRouter() = default;
  virtual int Route(const RoundTask& round, int home,
                    const std::vector<ReplicaLoad>& loads) = 0;
  virtual std::string Name() const = 0;
};

// `sticky_spill_margin_tokens` only affects kStickyWithSpill: the home replica is
// abandoned for this round when its queued token demand exceeds the least-loaded
// replica's by more than the margin (roughly one whale context's worth of work).
std::unique_ptr<SessionRouter> MakeRouter(RouterPolicy policy, uint64_t seed,
                                          int64_t sticky_spill_margin_tokens = 16384);

struct ClusterOptions {
  int num_replicas = 2;
  RouterPolicy router = RouterPolicy::kLeastLoadedTokens;
  uint64_t router_seed = 0x5e5510f;
  int64_t sticky_spill_margin_tokens = 16384;
  // Step the replicas concurrently (shared thread pool) within each global-clock
  // iteration. Simulated results are byte-identical to the serial schedule — replica
  // state is disjoint and completions merge in index order — but the replicas' state
  // traffic now hits the shared backend from concurrent threads, so wall-clock time
  // reflects the backend's real lock discipline. Storage *hit-split* counters become
  // schedule-dependent for a tiered backend (conservation still holds), which is why
  // the default stays serial (deterministic stats).
  bool parallel_advance = false;
  // Per-replica engine configuration. `serving.state_backend` is ignored — every
  // replica is rewired to the cluster's shared backend.
  ServingOptions serving;
};

struct ClusterReport {
  // Merged view: TTFT/TBT histograms across all replicas, summed round counts,
  // makespan = the latest replica clock, summed codec byte accounting.
  ServingReport aggregate;
  std::vector<ServingReport> replicas;

  // Routing-plane restore locality: rounds with non-empty history routed to the
  // replica that saved their state (`affinity_restores`) vs to a different one
  // (`cross_replica_restores`). Cross-replica restores are the reuse pattern only a
  // shared tier can serve.
  int64_t cross_replica_restores = 0;
  int64_t affinity_restores = 0;

  // Shared-backend counters at run end, snapshotted after Quiesce() so an
  // asynchronously-draining tier is settled (fleet-wide tier hit ratios, plus the
  // shared tier's concurrency-plane health: drain depth, writer stalls, rollbacks).
  StorageStats storage;
  std::string router;

  // Load-balance skew: max over replicas of completed rounds, divided by the mean
  // (1.0 = perfectly even; round-robin's load-blindness shows up here).
  double ReplicaRoundSkew() const;
  double RoundsPerSecond() const { return aggregate.RoundsPerSecond(); }
  double SharedDramHitByteRatio() const { return storage.DramHitByteRatio(); }
  // Shared-tier concurrency stalls: writes that blocked on the drain high-water
  // mark. Zero when the drainer keeps up (or for synchronous tiers).
  int64_t SharedWriterStalls() const { return storage.writer_stalls; }
};

class ClusterEngine {
 public:
  // Every replica gets `replica_platform` (its own GPU + storage budget); state flows
  // through `shared_backend` (must outlive the engine; thread-safe per the
  // StorageBackend contract, though this driver is single-threaded and serializes
  // access deterministically).
  ClusterEngine(const Platform& replica_platform, const ModelConfig& cfg,
                const ClusterOptions& options, StorageBackend* shared_backend);

  // Fig 9's multi-round conversation workload at cluster scale: one Poisson session
  // arrival process feeds the router; rounds within a session are spaced by think
  // time and may be served by any replica. Deterministic for a fixed seed.
  ClusterReport RunConversations(double sessions_per_second, int64_t num_sessions,
                                 double round_interval_s, uint64_t seed);

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  ServingEngine& replica(int i) { return *replicas_[static_cast<size_t>(i)]; }
  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
  std::unique_ptr<SessionRouter> router_;
  std::vector<std::unique_ptr<ServingEngine>> replicas_;
  StorageBackend* shared_backend_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_CLUSTER_H_
