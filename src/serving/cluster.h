// Elastic multi-replica cluster serving plane over shared tiered storage.
//
// The paper evaluates restoration inside a single serving engine, but hidden-state
// caches that outlive GPU residency only pay off at fleet scale: a session's next
// round may land on a *different* replica than the one that saved its state — because
// a router moved it, because its home replica drained away in a scale-down, or
// because its home replica died mid-round. This layer multiplexes N `ServingEngine`
// replicas (each with its own GPU/KV budget) behind a pluggable `SessionRouter`, all
// persisting context state through ONE shared `StorageBackend` — so a save on
// replica A followed by a restore on replica B exercises the real cross-replica
// reuse pattern, and the shared DRAM tier's hit ratio reflects fleet-wide locality.
//
// Elasticity is first-class: replicas are lifecycle objects (`ReplicaLifecycle` in
// engine.h) managed by a `ReplicaSet`; the driver interleaves session arrivals,
// replica steps, scripted fleet events (kill / drain / scale-up), and a deterministic
// `Autoscaler` on one global clock. Routers see only the *live* (kUp) candidate set,
// so routing to a draining or down replica is impossible by construction; sticky
// sessions whose home is gone simply re-route and restore from the shared tier.
// All of it is deterministic given the seeds — elastic runs replay byte-for-byte.
#ifndef HCACHE_SRC_SERVING_CLUSTER_H_
#define HCACHE_SRC_SERVING_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/serving/autoscaler.h"
#include "src/serving/engine.h"
#include "src/storage/storage_backend.h"
#include "src/workload/arrival.h"

namespace hcache {

enum class RouterPolicy {
  kRoundRobin,         // rotate over live replicas, load-blind
  kLeastLoadedTokens,  // argmin queued token demand (ties -> lowest id)
  kPowerOfTwo,         // sample two live replicas, pick the less loaded (seeded)
  kStickyWithSpill,    // session affinity to the last-serving replica, spill on skew
};

const char* RouterPolicyName(RouterPolicy p);

// Routing strategy seam. `home` is the fleet id of the replica that served (and
// saved the state of) the session's previous round, or -1 for a session's first
// round — it may name a replica that is no longer in `live` (drained, killed, or
// scaled away), in which case the policy must pick a survivor. Returns an index into
// `live`, which holds ONLY kUp replicas in ascending fleet-id order, each with a
// fresh load probe. Implementations must be deterministic functions of their seed
// and the argument stream.
class SessionRouter {
 public:
  virtual ~SessionRouter() = default;
  virtual int Route(const RoundTask& round, int home,
                    const std::vector<ReplicaCandidate>& live) = 0;
  virtual std::string Name() const = 0;
};

// `sticky_spill_margin_tokens` only affects kStickyWithSpill: the home replica is
// abandoned for this round when its queued token demand exceeds the least-loaded
// replica's by more than the margin (roughly one whale context's worth of work).
std::unique_ptr<SessionRouter> MakeRouter(RouterPolicy policy, uint64_t seed,
                                          int64_t sticky_spill_margin_tokens = 16384);

// A scripted fleet transition fired at a simulation time: fail-stop a replica
// (kKill), gracefully retire one (kDrain), or revive a down one (kScaleUp).
// `replica` -1 targets the highest-id up replica at fire time (kKill/kDrain) or the
// lowest-id down replica (kScaleUp — which is also what -1 means there explicitly).
struct FleetEvent {
  enum class Kind { kKill, kDrain, kScaleUp };
  double time = 0;
  Kind kind = Kind::kKill;
  int replica = -1;
};

// Which arrival process feeds the fleet. kStationary reproduces the classic Fig 9
// Poisson arrivals bit-for-bit; kDiurnal modulates the same base rate with
// `DiurnalShape` (sinusoid + flash crowds) via thinning.
struct ArrivalSpec {
  enum class Kind { kStationary, kDiurnal };
  Kind kind = Kind::kStationary;
  DiurnalShape diurnal;
};

// The multi-round conversation workload (Fig 9) a drive consumes: session arrivals
// at `sessions_per_second` (shaped by `arrivals`), ShareGPT conversations, rounds
// spaced by think time. Workload materialization depends only on these fields, so
// 1-vs-N and static-vs-elastic comparisons run the exact same request stream.
struct ConversationWorkload {
  double sessions_per_second = 1.0;
  int64_t num_sessions = 0;
  double round_interval_s = 5.0;
  uint64_t seed = 0;
  ArrivalSpec arrivals;
};

// Non-owning lifecycle manager for a fixed fleet of replicas: tracks which are
// kUp/kDraining/kDown, applies scale/fail transitions, and accounts replica-seconds
// (the "GPU-hours" the elastic bench compares against a static fleet). Construction
// resets every replica (StartExternal) and marks ids >= initial_up down — they are
// provisioned-but-idle capacity the autoscaler can revive.
class ReplicaSet {
 public:
  ReplicaSet(std::vector<ServingEngine*> replicas, int initial_up);

  int size() const { return static_cast<int>(replicas_.size()); }
  int NumUp() const;
  ServingEngine& replica(int id) { return *replicas_[static_cast<size_t>(id)]; }
  const ServingEngine& replica(int id) const { return *replicas_[static_cast<size_t>(id)]; }

  // The router/autoscaler view: kUp replicas in ascending id order, freshly probed.
  std::vector<ReplicaCandidate> LiveCandidates() const;

  // Earliest future event across non-down replicas (+inf when none can progress).
  double NextEventTime() const;

  // Revives the lowest-id kDown replica at fleet time `now`. False when none is down.
  bool ScaleUp(double now);

  // Graceful retirement: the replica stops admitting, finishes in-flight rounds, and
  // SettleDrains() moves it to kDown once idle. No-ops (returns false) unless kUp.
  bool BeginDrain(int id, double now);
  // Drains the highest-id kUp replica (the autoscaler's scale-down step). False when
  // no replica is up.
  bool DrainHighestUp(double now);

  // Fail-stop `id` (kUp or kDraining): abandons its in-flight rounds and returns
  // them for the driver to re-route to survivors. Empty when already down.
  std::vector<RoundTask> Kill(int id, double now);

  // Moves idle kDraining replicas to kDown. Returns how many settled.
  int SettleDrains(double now);

  // Ends lifecycle accounting at `now` (accrues replica-seconds for replicas still
  // active). Call once, after the drive loop.
  void Seal(double now);

  // --- accounting (valid after Seal) ---
  // Total kUp + kDraining replica time — a draining GPU is still provisioned.
  double replica_seconds() const { return replica_seconds_; }
  int peak_up() const { return peak_up_; }
  int min_up() const { return min_up_; }
  int64_t scale_ups() const { return scale_ups_; }
  int64_t scale_downs() const { return scale_downs_; }
  int64_t kills() const { return kills_; }

  struct UpSample {
    double time = 0;
    int up = 0;
  };
  // (time, up-count) after every transition; first entry is (0, initial_up).
  const std::vector<UpSample>& up_timeline() const { return up_timeline_; }

 private:
  void Accrue(int id, double now);     // stop the replica-seconds meter for id
  void RecordUpCount(double now);      // append to the timeline, update peak/min

  std::vector<ServingEngine*> replicas_;
  std::vector<double> active_since_;   // -1 when down (meter stopped)
  double replica_seconds_ = 0;
  int peak_up_ = 0;
  int min_up_ = 0;
  int64_t scale_ups_ = 0;
  int64_t scale_downs_ = 0;
  int64_t kills_ = 0;
  std::vector<UpSample> up_timeline_;
};

struct ConversationDriveResult {
  int64_t cross_replica_restores = 0;  // history>0 rounds routed off their home
  int64_t affinity_restores = 0;       // history>0 rounds routed back home
  // Rounds a Kill() abandoned that were re-queued and served by a survivor. The
  // accounting identity (absent drops) is: fleet rounds_submitted ==
  // rounds_completed + migrated_rounds, because each migrated round is submitted
  // twice — once on the victim, once on the survivor.
  int64_t migrated_rounds = 0;
  int64_t sessions_completed = 0;  // sessions whose every round finished
  int64_t sessions_dropped = 0;    // sessions a replica refused outright
};

// Shared multi-round-conversation driver: materializes the seeded ShareGPT trace and
// (possibly non-stationary) session arrivals, then drives the fleet on one global
// clock through the stepped interface, interleaving arrivals, replica steps, scripted
// `events`, and autoscaler evaluations. Both ServingEngine::RunConversations (one
// replica, null router) and the cluster plane run THIS function, so the two paths
// cannot drift apart. A null `router` routes everything to the lowest-id up replica
// without probing loads. A null `autoscaler` (or a kStatic one) leaves the fleet
// alone. Workload caps (max_history_tokens, max_sim_seconds) come from replica 0's
// options; callers harvest reports via FinishExternal() afterwards.
//
// Failure semantics: when an event kills a replica, its abandoned rounds re-enter
// the arrival queue at the kill time; the router re-routes them to survivors, which
// restore the session's last saved state from the shared tier (recompute fallback if
// nothing was ever saved). Sessions never lose tokens — fail-stop abandons only
// undelivered work.
//
// `parallel_advance` steps the replicas concurrently on the shared thread pool
// within each global-clock iteration. Replica simulation state is disjoint, routing
// and completion handling stay serial, and completions are merged in replica-id
// order, so the simulated results are byte-identical to the serial schedule — only
// the *wall-clock* behavior changes: the replicas' state save/restore traffic hits
// the shared StorageBackend concurrently, which is exactly the access pattern the
// sharded tiered backend exists for (and what bench_ext_cluster measures).
ConversationDriveResult DriveConversations(ReplicaSet& fleet, SessionRouter* router,
                                           const ConversationWorkload& workload,
                                           const std::vector<FleetEvent>& events = {},
                                           Autoscaler* autoscaler = nullptr,
                                           bool parallel_advance = false);

struct ClusterOptions {
  int num_replicas = 2;
  // Replicas up at t=0; the rest are provisioned-but-idle capacity the autoscaler
  // (or a kScaleUp event) can revive. 0 = all of num_replicas (the static fleet of
  // PRs 4-9, reproduced bit-for-bit when autoscaler/events/arrivals stay default).
  int initial_replicas = 0;
  RouterPolicy router = RouterPolicy::kLeastLoadedTokens;
  uint64_t router_seed = 0x5e5510f;
  int64_t sticky_spill_margin_tokens = 16384;
  // Step the replicas concurrently (shared thread pool) within each global-clock
  // iteration. Simulated results are byte-identical to the serial schedule — replica
  // state is disjoint and completions merge in id order — but the replicas' state
  // traffic now hits the shared backend from concurrent threads, so wall-clock time
  // reflects the backend's real lock discipline. Storage *hit-split* counters become
  // schedule-dependent for a tiered backend (conservation still holds), which is why
  // the default stays serial (deterministic stats).
  bool parallel_advance = false;
  // Elastic plane: replica autoscaling (kStatic = off), arrival shaping
  // (kStationary = classic Poisson), and scripted kill/drain/scale events (empty =
  // none). All defaults reproduce the fixed-fleet behavior exactly.
  AutoscalerOptions autoscaler;
  ArrivalSpec arrivals;
  std::vector<FleetEvent> events;
  // Per-replica engine configuration. `serving.state_backend` is ignored — every
  // replica is rewired to the cluster's shared backend.
  ServingOptions serving;
};

struct ClusterReport {
  // Merged view: TTFT/TBT histograms across all replicas, summed round counts,
  // makespan = the latest replica clock, summed codec byte accounting.
  ServingReport aggregate;
  std::vector<ServingReport> replicas;

  // Routing-plane restore locality: rounds with non-empty history routed to the
  // replica that saved their state (`affinity_restores`) vs to a different one
  // (`cross_replica_restores`). Cross-replica restores are the reuse pattern only a
  // shared tier can serve.
  int64_t cross_replica_restores = 0;
  int64_t affinity_restores = 0;

  // Elastic-plane outcome: failure migration and fleet sizing over the run.
  int64_t migrated_rounds = 0;     // killed-replica rounds served by survivors
  int64_t sessions_completed = 0;  // sessions whose every round finished
  int64_t sessions_dropped = 0;
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  int64_t kills = 0;
  int peak_replicas_up = 0;
  int min_replicas_up = 0;
  // Total kUp + kDraining replica time — the "GPU-seconds" an elastic fleet pays;
  // compare against peak_replicas_up * makespan for the static-peak cost.
  double replica_seconds = 0;
  std::vector<ReplicaSet::UpSample> up_timeline;

  // Shared-backend counters at run end, snapshotted after Quiesce() so an
  // asynchronously-draining tier is settled (fleet-wide tier hit ratios, plus the
  // shared tier's concurrency-plane health: drain depth, writer stalls, rollbacks).
  StorageStats storage;
  std::string router;

  // Load-balance skew: max over replicas of completed rounds, divided by the mean
  // (1.0 = perfectly even; round-robin's load-blindness shows up here). Degenerate
  // fleets (no replicas, or no completed rounds anywhere) read as perfectly even.
  double ReplicaRoundSkew() const;
  double RoundsPerSecond() const { return aggregate.RoundsPerSecond(); }
  double SharedDramHitByteRatio() const { return storage.DramHitByteRatio(); }
  // Shared-tier concurrency stalls: writes that blocked on the drain high-water
  // mark. Zero when the drainer keeps up (or for synchronous tiers).
  int64_t SharedWriterStalls() const { return storage.writer_stalls; }
  // Replica-seconds an elastic run saved vs holding peak_replicas_up for the whole
  // makespan (0 when the fleet never resized).
  double ReplicaSecondsSavedVsPeak() const {
    const double peak = static_cast<double>(peak_replicas_up) * aggregate.makespan;
    return peak > 0 ? peak - replica_seconds : 0.0;
  }
};

class ClusterEngine {
 public:
  // Every replica gets `replica_platform` (its own GPU + storage budget); state flows
  // through `shared_backend` (must outlive the engine; thread-safe per the
  // StorageBackend contract, though this driver is single-threaded and serializes
  // access deterministically).
  ClusterEngine(const Platform& replica_platform, const ModelConfig& cfg,
                const ClusterOptions& options, StorageBackend* shared_backend);

  // Fig 9's multi-round conversation workload at cluster scale: one session arrival
  // process (Poisson, or diurnal per options().arrivals) feeds the router; rounds
  // within a session are spaced by think time and may be served by any live replica.
  // Scripted events and the autoscaler resize the fleet mid-run. Deterministic for a
  // fixed seed.
  ClusterReport RunConversations(double sessions_per_second, int64_t num_sessions,
                                 double round_interval_s, uint64_t seed);

  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  ServingEngine& replica(int i) { return *replicas_[static_cast<size_t>(i)]; }
  const ClusterOptions& options() const { return options_; }

 private:
  ClusterOptions options_;
  std::unique_ptr<SessionRouter> router_;
  std::vector<std::unique_ptr<ServingEngine>> replicas_;
  StorageBackend* shared_backend_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_CLUSTER_H_
