// Iteration-level LLM serving simulator with continuous batching and SplitFuse.
//
// This reproduces the serving-system context HCache is embedded in (§5): requests are
// admitted against a PagedAttention-style KV token budget, an extra *restoration phase*
// precedes prefill for requests whose state was evicted, prefill is chunked and fused
// with decode iterations (SplitFuse), and state saving runs either through the
// two-stage saver or synchronously (the Fig 14 ablation).
//
// Restoration runs asynchronously with decoding: its transmissions use the otherwise
// idle storage path while its compute steals GPU time from concurrent iterations —
// which is exactly why the paper's TBT overhead tracks the restoration method's compute
// cost (≤4% for HCache, §6.1.1).
#ifndef HCACHE_SRC_SERVING_ENGINE_H_
#define HCACHE_SRC_SERVING_ENGINE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/restorer.h"
#include "src/model/config.h"
#include "src/serving/gpu_kv_cache.h"
#include "src/sim/gpu_timing.h"
#include "src/sim/hardware.h"
#include "src/storage/storage_backend.h"
#include "src/workload/leval.h"
#include "src/workload/sharegpt.h"

namespace hcache {

enum class SaveMode {
  kNone,      // ideal: no state saving
  kTwoStage,  // §4.2.2: snapshot + background chunk flush (off the critical path)
  kDirect,    // Fig 14 ablation: synchronous row-granular writes per layer
};

struct ServingOptions {
  RestoreMethod method = RestoreMethod::kHCache;
  int64_t max_batch_size = 32;
  int64_t prefill_chunk_tokens = 512;  // SplitFuse per-iteration prefill budget
  int64_t kv_capacity_tokens = 0;      // 0 = derive from HBM minus weights (§2.4)
  SaveMode save_mode = SaveMode::kTwoStage;
  // Deployment context cap for conversation traces (histories truncate here; should
  // stay comfortably below kv_capacity_tokens or whales serialize admission).
  int64_t max_history_tokens = 16384;
  double max_sim_seconds = 7200.0;
  // Fixed per-round engine overhead (scheduling, tokenization, API) added to TTFT.
  double request_overhead = 20e-3;
  // Storage backend the engine registers evicted context state with (must outlive the
  // engine; may be shared across engines). When set, RunConversations writes each
  // completed round's state descriptor through it, reads it back before restoration,
  // and deletes it when the session ends — so a TieredBackend sees the real context
  // reuse pattern and ServingReport can surface per-tier hit ratios. Null = no
  // storage accounting (timing is unaffected either way; the performance plane models
  // transfer time via Platform::storage).
  StorageBackend* state_backend = nullptr;
  // FP32-equivalent descriptor bytes per history token (a scaled stand-in for the
  // hidden_dim * sizeof(float) * num_layers real footprint, keeping simulated runs
  // cheap while preserving relative context sizes for eviction decisions). The bytes
  // actually written through `state_backend` — and the bytes the restoration stream
  // is charged for — are this scaled by `state_codec`.
  int64_t state_bytes_per_token = 8;
  // Storage precision of the hidden-state plane. kFp16 is the deployment default (the
  // paper sizes hidden-state IO for FP16 transport); kFp32 models the raw-float
  // strawman at 2x the bytes; kInt8 is the §7 CacheGen-style option. Affects both the
  // restoration timing model and the encoded bytes state_backend sees.
  ChunkCodec state_codec = ChunkCodec::kFp16;
};

struct ServingReport {
  Histogram ttft;  // seconds, one sample per round/request
  Histogram tbt;   // seconds, one sample per generated token after the first
  int64_t rounds_completed = 0;
  int64_t rounds_submitted = 0;
  double makespan = 0;
  double cache_hit_ratio = 0;  // only for RunWithGpuCache
  // Snapshot of ServingOptions::state_backend counters at run end (zeros when no
  // backend was attached). storage.DramHitRatio() is the DRAM-tier hit ratio of the
  // restoration read path; the byte-granular fields (bytes_stored, *_hit_bytes) are
  // *encoded* sizes — the real DRAM/SSD footprint under the configured codec.
  StorageStats storage;
  // Codec accounting for the state the run persisted: encoded bytes written vs their
  // FP32-equivalent logical size.
  ChunkCodec state_codec = ChunkCodec::kFp16;
  int64_t state_logical_bytes = 0;
  int64_t state_encoded_bytes = 0;
  // Rounds whose stored state came back missing or corrupt at restore time and were
  // served by full recomputation instead (detected-corrupt is a fallback, not a miss
  // and never a crash — the durability plane's serving-level contract). The round
  // pays recompute's restoration time, so corruption shows up as a tail-latency
  // penalty rather than a wrong answer.
  int64_t restore_fallbacks = 0;
  // In-flight rounds a Kill() discarded on this replica (fail-stop semantics: no
  // tokens were delivered; the cluster driver re-routes them to survivors, where
  // they restore the session's last *saved* state from the shared tier).
  int64_t rounds_abandoned = 0;

  double StateCompressionRatio() const {
    return state_encoded_bytes > 0
               ? static_cast<double>(state_logical_bytes) /
                     static_cast<double>(state_encoded_bytes)
               : 1.0;
  }

  double RoundsPerSecond() const {
    return makespan > 0 ? static_cast<double>(rounds_completed) / makespan : 0.0;
  }
};

// One conversation round handed to a replica by an external driver (the cluster's
// router, or RunConversations driving its own engine). `arrival` is the submission
// time on the shared simulation clock; `last_round` tells the replica whether to
// persist the grown state (more rounds follow) or drop the context (session over).
struct RoundTask {
  int64_t session = 0;  // globally unique across the cluster (storage context id)
  int64_t history = 0, input = 0, output = 0;
  double arrival = 0;
  bool last_round = false;
};

// Whether `m` actually runs a restoration phase that reads state back through the
// shared tier (recompute rebuilds from tokens; ideal assumes residency). The cluster
// driver uses this to tally restore locality only for rounds that truly restored.
bool MethodNeedsRestorePhase(RestoreMethod m);

// Completion event returned by ServingEngine::Advance: the driver uses it to grow the
// session's history and schedule the next round after think time. `dropped` marks a
// round the replica refused (its KV demand exceeds the pool outright): no tokens were
// produced, the session cannot continue, and any state it had stored was deleted.
struct RoundCompletion {
  int64_t session = 0;
  int64_t new_tokens = 0;  // input + output of the finished round (0 when dropped)
  double finish_time = 0;
  bool dropped = false;
};

// Instantaneous load probes the cluster's routers read. All token counts are KV-pool
// tokens (history + prompt reservations plus pending demand).
struct ReplicaLoad {
  int64_t queued_rounds = 0;   // rounds admitted but not yet completed
  int64_t queued_tokens = 0;   // their total token demand (history+input+output)
  int64_t kv_free_tokens = 0;  // unreserved KV-pool tokens
  int64_t kv_capacity_tokens = 0;

  double KvOccupancy() const {
    return kv_capacity_tokens > 0
               ? 1.0 - static_cast<double>(kv_free_tokens) /
                           static_cast<double>(kv_capacity_tokens)
               : 0.0;
  }
};

// Replica lifecycle (the elastic cluster plane's state machine):
//   kUp       — serving; routable.
//   kDraining — finishing admitted rounds; takes no new admissions. State keeps
//               persisting through the shared tier, so a drained replica's sessions
//               simply restore elsewhere on their next round.
//   kDown     — not serving (drained away, scaled down, or fail-stopped). Scale-up
//               revives a kDown replica via ResumeAt().
enum class ReplicaLifecycle { kUp, kDraining, kDown };

const char* ReplicaLifecycleName(ReplicaLifecycle s);

// One routable replica as the routers and the autoscaler see it: its stable fleet id
// plus a fresh load probe. Candidate lists contain ONLY kUp replicas, so routing to
// a draining or down replica is impossible by construction.
struct ReplicaCandidate {
  int id = 0;
  ReplicaLoad load;
};

class ServingEngine {
 public:
  ServingEngine(const Platform& platform, const ModelConfig& cfg,
                const ServingOptions& options);

  // Fig 9: multi-round conversations. Sessions arrive as a Poisson process at
  // `sessions_per_second`; rounds within a session are spaced by `round_interval_s` of
  // think time; the KV cache is evicted when a round completes (§6.1.1 setup).
  // Implemented as a single-replica driver over the stepped interface below, so the
  // cluster path and the classic path share one simulation core.
  ServingReport RunConversations(double sessions_per_second, int64_t num_sessions,
                                 double round_interval_s, uint64_t seed);

  // --- stepped interface: externally-driven session admission (cluster hooks) ---
  //
  // Lifecycle: StartExternal() resets the simulation; the driver then interleaves
  // Submit() and Advance() calls, using NextEventTime() to order replicas on a global
  // clock; FinishExternal() seals the report. The replica's local clock may overshoot
  // the driver's clock by at most one fused iteration (iterations are indivisible).

  // Resets all simulation state and starts a fresh report.
  void StartExternal();

  // Admits one round. The driver must only submit rounds whose arrival time has been
  // reached on its clock (arrival <= the next Advance() horizon).
  void Submit(const RoundTask& r);

  // Advances the local simulation until the local clock passes `until` or the replica
  // runs out of work. Completed rounds are appended to `done` (state saving and
  // context deletion through options().state_backend happen here).
  void Advance(double until, std::vector<RoundCompletion>* done);

  // Earliest future time this replica can make progress: its local clock while work is
  // runnable, the restoration-finish time while only a restore is in flight, +inf when
  // idle. The driver's global clock is the min over replicas and pending arrivals.
  double NextEventTime() const;

  // Seals and returns the external-mode report. Unlike RunConversations, the storage
  // stats snapshot is left to the caller: a shared backend's counters belong to the
  // cluster, not to any one replica.
  ServingReport FinishExternal();

  // Router probes (valid between Advance calls).
  ReplicaLoad Load() const;

  // --- replica lifecycle (the elastic cluster plane) ---
  //
  // StartExternal() resets the replica to kUp. Submit() CHECK-fails on a replica that
  // is not kUp — the cluster driver builds its candidate lists from kUp replicas only,
  // so a violation is a driver bug, not a load condition.

  ReplicaLifecycle lifecycle() const { return lifecycle_; }

  // Graceful scale-down: stop admissions, let admitted rounds finish. The replica
  // keeps advancing until Idle(), at which point the owner marks it down.
  void BeginDrain();

  // kDraining -> kDown once all in-flight work has completed. CHECK-fails if called
  // on a replica that still holds work.
  void MarkDown();

  // Fail-stop: abandon every in-flight round (pending, restoring, prefilling,
  // decoding — none of them delivered tokens), release the KV pool, and go kDown.
  // Returns the abandoned rounds so the driver can re-route them to survivors; their
  // sessions restore the last state a FinishRound *saved* through the shared tier
  // (never-saved state costs a recompute fallback on the survivor).
  std::vector<RoundTask> Kill();

  // Scale-up revival: kDown -> kUp with the local clock advanced to the fleet time
  // (a revived replica must not report events in the driver's past).
  void ResumeAt(double now);

  // True when no admitted round is pending, restoring, prefilling, or decoding.
  bool Idle() const;

  // Fig 4 / Fig 10: long-context requests served one at a time (batch size 1):
  // TTFT = overhead + restoration(context) + prefill(question).
  ServingReport RunLongContextSerial(const std::vector<LongContextRequest>& requests);

  // Fig 15: serial serving with an LRU GPU KV cache in front of restoration.
  // `context_ids[i]` names the stored context request i reuses.
  ServingReport RunWithGpuCache(const std::vector<LongContextRequest>& requests,
                                const std::vector<int64_t>& context_ids,
                                int64_t cache_capacity_tokens);

  // Fig 14: steady-state TBT for a decode batch where every sequence holds
  // `history_per_seq` context tokens and hidden states are being saved.
  double SteadyStateTbt(int64_t batch_size, int64_t history_per_seq) const;

  // KV tokens the GPU pool can hold: (0.9*HBM - weights)/kv-bytes-per-token, the §2.4
  // arithmetic (~48K tokens for Llama2-7B on A100-40G).
  int64_t DeriveKvCapacityTokens() const;

  const ServingOptions& options() const { return options_; }

 private:
  // Synchronous-save stall added to one iteration (Fig 14 model): per layer, the batch
  // rows are written QD1 per device; any excess over the layer's compute time stalls.
  double DirectSaveStall(int64_t batch_size, double iteration_compute) const;

  double RestoreTime(int64_t history_tokens, double* compute_busy) const;
  // Same timing model under an explicit method — the corrupt-state fallback charges
  // the round recompute's restoration cost whatever options_.method says.
  double RestoreTimeWith(RestoreMethod method, int64_t history_tokens,
                         double* compute_busy) const;

  // --- stepped-simulation internals (state between Advance calls) ---
  struct Active {
    RoundTask r;
    int64_t prefill_remaining = 0;
    int64_t decoded = 0;
    int64_t kv_reserved = 0;
  };
  struct Restoration {
    RoundTask r;
    double start = 0, end = 0;
    double compute_total = 0, charged = 0;
    int64_t kv_reserved = 0;
    bool active = false;
  };

  // Encoded bytes per history token under the configured codec (used by the state
  // registry that persists context descriptors through options_.state_backend).
  int64_t EncodedStateBytesPerToken() const;
  void SaveState(int64_t session, int64_t old_tokens, int64_t new_tokens);
  // Reads the session's state descriptor back from the backend. False when any
  // covering chunk is absent or detected corrupt: the caller must not trust the
  // stored state and falls back to recompute-from-tokens restoration.
  bool LoadState(int64_t session, int64_t tokens);
  void FinishRound(Active& a, std::vector<RoundCompletion>* done);

  Platform platform_;
  ModelConfig cfg_;
  ServingOptions options_;
  GpuTimingModel gpu_;
  Restorer restorer_;

  // Simulation state (reset by StartExternal).
  double now_ = 0;
  int64_t kv_free_ = 0;
  int64_t queued_tokens_ = 0;  // token demand of admitted-but-unfinished rounds
  int64_t queued_rounds_ = 0;
  std::deque<RoundTask> pending_;
  std::deque<Active> prefill_q_;
  std::vector<Active> decode_;
  Restoration restoring_;
  std::vector<char> state_buf_;
  int64_t chunk_capacity_tokens_ = 1;
  ReplicaLifecycle lifecycle_ = ReplicaLifecycle::kUp;
  ServingReport report_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_ENGINE_H_
