// Iteration-level LLM serving simulator with continuous batching and SplitFuse.
//
// This reproduces the serving-system context HCache is embedded in (§5): requests are
// admitted against a PagedAttention-style KV token budget, an extra *restoration phase*
// precedes prefill for requests whose state was evicted, prefill is chunked and fused
// with decode iterations (SplitFuse), and state saving runs either through the
// two-stage saver or synchronously (the Fig 14 ablation).
//
// Restoration runs asynchronously with decoding: its transmissions use the otherwise
// idle storage path while its compute steals GPU time from concurrent iterations —
// which is exactly why the paper's TBT overhead tracks the restoration method's compute
// cost (≤4% for HCache, §6.1.1).
#ifndef HCACHE_SRC_SERVING_ENGINE_H_
#define HCACHE_SRC_SERVING_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/restorer.h"
#include "src/model/config.h"
#include "src/serving/gpu_kv_cache.h"
#include "src/sim/gpu_timing.h"
#include "src/sim/hardware.h"
#include "src/storage/storage_backend.h"
#include "src/workload/leval.h"
#include "src/workload/sharegpt.h"

namespace hcache {

enum class SaveMode {
  kNone,      // ideal: no state saving
  kTwoStage,  // §4.2.2: snapshot + background chunk flush (off the critical path)
  kDirect,    // Fig 14 ablation: synchronous row-granular writes per layer
};

struct ServingOptions {
  RestoreMethod method = RestoreMethod::kHCache;
  int64_t max_batch_size = 32;
  int64_t prefill_chunk_tokens = 512;  // SplitFuse per-iteration prefill budget
  int64_t kv_capacity_tokens = 0;      // 0 = derive from HBM minus weights (§2.4)
  SaveMode save_mode = SaveMode::kTwoStage;
  // Deployment context cap for conversation traces (histories truncate here; should
  // stay comfortably below kv_capacity_tokens or whales serialize admission).
  int64_t max_history_tokens = 16384;
  double max_sim_seconds = 7200.0;
  // Fixed per-round engine overhead (scheduling, tokenization, API) added to TTFT.
  double request_overhead = 20e-3;
  // Storage backend the engine registers evicted context state with (must outlive the
  // engine; may be shared across engines). When set, RunConversations writes each
  // completed round's state descriptor through it, reads it back before restoration,
  // and deletes it when the session ends — so a TieredBackend sees the real context
  // reuse pattern and ServingReport can surface per-tier hit ratios. Null = no
  // storage accounting (timing is unaffected either way; the performance plane models
  // transfer time via Platform::storage).
  StorageBackend* state_backend = nullptr;
  // FP32-equivalent descriptor bytes per history token (a scaled stand-in for the
  // hidden_dim * sizeof(float) * num_layers real footprint, keeping simulated runs
  // cheap while preserving relative context sizes for eviction decisions). The bytes
  // actually written through `state_backend` — and the bytes the restoration stream
  // is charged for — are this scaled by `state_codec`.
  int64_t state_bytes_per_token = 8;
  // Storage precision of the hidden-state plane. kFp16 is the deployment default (the
  // paper sizes hidden-state IO for FP16 transport); kFp32 models the raw-float
  // strawman at 2x the bytes; kInt8 is the §7 CacheGen-style option. Affects both the
  // restoration timing model and the encoded bytes state_backend sees.
  ChunkCodec state_codec = ChunkCodec::kFp16;
};

struct ServingReport {
  Histogram ttft;  // seconds, one sample per round/request
  Histogram tbt;   // seconds, one sample per generated token after the first
  int64_t rounds_completed = 0;
  int64_t rounds_submitted = 0;
  double makespan = 0;
  double cache_hit_ratio = 0;  // only for RunWithGpuCache
  // Snapshot of ServingOptions::state_backend counters at run end (zeros when no
  // backend was attached). storage.DramHitRatio() is the DRAM-tier hit ratio of the
  // restoration read path; the byte-granular fields (bytes_stored, *_hit_bytes) are
  // *encoded* sizes — the real DRAM/SSD footprint under the configured codec.
  StorageStats storage;
  // Codec accounting for the state the run persisted: encoded bytes written vs their
  // FP32-equivalent logical size.
  ChunkCodec state_codec = ChunkCodec::kFp16;
  int64_t state_logical_bytes = 0;
  int64_t state_encoded_bytes = 0;

  double StateCompressionRatio() const {
    return state_encoded_bytes > 0
               ? static_cast<double>(state_logical_bytes) /
                     static_cast<double>(state_encoded_bytes)
               : 1.0;
  }

  double RoundsPerSecond() const {
    return makespan > 0 ? static_cast<double>(rounds_completed) / makespan : 0.0;
  }
};

class ServingEngine {
 public:
  ServingEngine(const Platform& platform, const ModelConfig& cfg,
                const ServingOptions& options);

  // Fig 9: multi-round conversations. Sessions arrive as a Poisson process at
  // `sessions_per_second`; rounds within a session are spaced by `round_interval_s` of
  // think time; the KV cache is evicted when a round completes (§6.1.1 setup).
  ServingReport RunConversations(double sessions_per_second, int64_t num_sessions,
                                 double round_interval_s, uint64_t seed);

  // Fig 4 / Fig 10: long-context requests served one at a time (batch size 1):
  // TTFT = overhead + restoration(context) + prefill(question).
  ServingReport RunLongContextSerial(const std::vector<LongContextRequest>& requests);

  // Fig 15: serial serving with an LRU GPU KV cache in front of restoration.
  // `context_ids[i]` names the stored context request i reuses.
  ServingReport RunWithGpuCache(const std::vector<LongContextRequest>& requests,
                                const std::vector<int64_t>& context_ids,
                                int64_t cache_capacity_tokens);

  // Fig 14: steady-state TBT for a decode batch where every sequence holds
  // `history_per_seq` context tokens and hidden states are being saved.
  double SteadyStateTbt(int64_t batch_size, int64_t history_per_seq) const;

  // KV tokens the GPU pool can hold: (0.9*HBM - weights)/kv-bytes-per-token, the §2.4
  // arithmetic (~48K tokens for Llama2-7B on A100-40G).
  int64_t DeriveKvCapacityTokens() const;

  const ServingOptions& options() const { return options_; }

 private:
  // Synchronous-save stall added to one iteration (Fig 14 model): per layer, the batch
  // rows are written QD1 per device; any excess over the layer's compute time stalls.
  double DirectSaveStall(int64_t batch_size, double iteration_compute) const;

  double RestoreTime(int64_t history_tokens, double* compute_busy) const;

  Platform platform_;
  ModelConfig cfg_;
  ServingOptions options_;
  GpuTimingModel gpu_;
  Restorer restorer_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_SERVING_ENGINE_H_
