#include "src/model/config.h"

namespace hcache {

ModelConfig ModelConfig::Llama2_7B() {
  ModelConfig c;
  c.name = "Llama2-7B";
  c.num_layers = 32;
  c.hidden_dim = 4096;
  c.num_heads = 32;
  c.num_kv_heads = 32;
  c.ffn_dim = 11008;
  c.vocab_size = 32000;
  c.max_position = 16384;
  c.norm = NormKind::kRmsNorm;
  c.activation = ActivationKind::kSwiGlu;
  c.position = PositionKind::kRope;
  return c;
}

ModelConfig ModelConfig::Llama2_13B() {
  ModelConfig c;
  c.name = "Llama2-13B";
  c.num_layers = 40;
  c.hidden_dim = 5120;
  c.num_heads = 40;
  c.num_kv_heads = 40;
  c.ffn_dim = 13824;
  c.vocab_size = 32000;
  c.max_position = 16384;
  c.norm = NormKind::kRmsNorm;
  c.activation = ActivationKind::kSwiGlu;
  c.position = PositionKind::kRope;
  return c;
}

ModelConfig ModelConfig::Opt30B() {
  ModelConfig c;
  c.name = "OPT-30B";
  c.num_layers = 48;
  c.hidden_dim = 7168;
  c.num_heads = 56;
  c.num_kv_heads = 56;
  c.ffn_dim = 28672;
  c.vocab_size = 50272;
  c.max_position = 32768;  // Fig 11i sweeps OPT-30B context up to 32K
  c.norm = NormKind::kLayerNorm;
  c.activation = ActivationKind::kRelu;
  c.position = PositionKind::kLearned;
  return c;
}

ModelConfig ModelConfig::TinyLlama(int64_t layers, int64_t hidden, int64_t heads) {
  ModelConfig c;
  c.name = "TinyLlama";
  c.num_layers = layers;
  c.hidden_dim = hidden;
  c.num_heads = heads;
  c.num_kv_heads = heads;
  c.ffn_dim = hidden * 2;
  c.vocab_size = 256;
  c.max_position = 512;
  c.norm = NormKind::kRmsNorm;
  c.activation = ActivationKind::kSwiGlu;
  c.position = PositionKind::kRope;
  return c;
}

ModelConfig ModelConfig::TinyOpt(int64_t layers, int64_t hidden, int64_t heads) {
  ModelConfig c;
  c.name = "TinyOpt";
  c.num_layers = layers;
  c.hidden_dim = hidden;
  c.num_heads = heads;
  c.num_kv_heads = heads;
  c.ffn_dim = hidden * 4;
  c.vocab_size = 256;
  c.max_position = 512;
  c.norm = NormKind::kLayerNorm;
  c.activation = ActivationKind::kRelu;
  c.position = PositionKind::kLearned;
  return c;
}

ModelConfig ModelConfig::TinyAlibi(int64_t layers, int64_t hidden, int64_t heads) {
  ModelConfig c = TinyOpt(layers, hidden, heads);
  c.name = "TinyAlibi";
  c.activation = ActivationKind::kGelu;
  c.position = PositionKind::kAlibi;
  return c;
}

ModelConfig ModelConfig::TinyGqa(int64_t layers, int64_t hidden, int64_t heads,
                                 int64_t kv_heads) {
  ModelConfig c = TinyLlama(layers, hidden, heads);
  c.name = "TinyGqa";
  c.num_kv_heads = kv_heads;
  return c;
}

ModelConfig ModelConfig::WithGqa(const ModelConfig& base, int64_t kv_heads) {
  ModelConfig c = base;
  c.num_kv_heads = kv_heads;
  c.name = base.name + "-GQA" + std::to_string(base.num_heads / kv_heads);
  return c;
}

}  // namespace hcache
