#include "src/model/cost_model.h"

namespace hcache {

namespace {
double D(const ModelConfig& cfg) { return static_cast<double>(cfg.hidden_dim); }
}  // namespace

double HiddenIoBytesPerLayer(const ModelConfig& cfg, double n) {
  return n * D(cfg) * static_cast<double>(cfg.state_dtype_bytes);
}

double HiddenIoBytesPerLayer(const ModelConfig& cfg, double n, ChunkCodec codec) {
  return n * static_cast<double>(CodecRowBytes(codec, cfg.hidden_dim));
}

double KvIoBytesPerLayer(const ModelConfig& cfg, double n) {
  return n * 2.0 * static_cast<double>(cfg.kv_dim()) *
         static_cast<double>(cfg.state_dtype_bytes);
}

double HiddenToKvFlopsPerLayer(const ModelConfig& cfg, double n) {
  return 4.0 * n * D(cfg) * D(cfg);
}

double AttnFlopsPerLayer(const ModelConfig& cfg, double n) {
  return 8.0 * n * D(cfg) * D(cfg) + n * n * D(cfg);
}

double FfnFlopsPerLayer(const ModelConfig& cfg, double n) { return 16.0 * n * D(cfg) * D(cfg); }

double RecomputeFlopsPerLayer(const ModelConfig& cfg, double n) {
  return AttnFlopsPerLayer(cfg, n) + FfnFlopsPerLayer(cfg, n);
}

double TheoreticalComputeSpeedup(const ModelConfig& cfg, double n) {
  return 6.0 + n / (4.0 * D(cfg));
}

double ExactHiddenToKvFlopsPerLayer(const ModelConfig& cfg, double n) {
  return 4.0 * n * D(cfg) * static_cast<double>(cfg.kv_dim());
}

double ExactFfnFlopsPerLayer(const ModelConfig& cfg, double n) {
  const double mats = cfg.activation == ActivationKind::kSwiGlu ? 3.0 : 2.0;
  return mats * 2.0 * n * D(cfg) * static_cast<double>(cfg.ffn_dim);
}

double ExactRecomputeFlopsPerLayer(const ModelConfig& cfg, double n) {
  // QKV projections (Q at hidden width, K/V at kv width), attention score+value, out
  // projection, and the exact FFN.
  const double d = D(cfg);
  const double kv = static_cast<double>(cfg.kv_dim());
  const double proj = 2.0 * n * d * d          // Q
                      + 2.0 * 2.0 * n * d * kv  // K, V
                      + 2.0 * n * d * d;        // out
  const double attn = n * n * d;  // paper's aggregate score+weighted-average term
  return proj + attn + ExactFfnFlopsPerLayer(cfg, n);
}

}  // namespace hcache
