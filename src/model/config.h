// Model configurations.
//
// Presets cover the paper's three evaluation models (Llama2-7B, Llama2-13B, OPT-30B)
// plus tiny configurations used by the functional plane (real CPU math) in tests and
// examples. Sizes for the large models are only consumed analytically (cost model /
// simulator); the tiny models run end to end.
#ifndef HCACHE_SRC_MODEL_CONFIG_H_
#define HCACHE_SRC_MODEL_CONFIG_H_

#include <cstdint>
#include <string>

namespace hcache {

enum class NormKind { kRmsNorm, kLayerNorm };
enum class ActivationKind { kSwiGlu, kGelu, kRelu };
// Position encodings differ in what restoration must re-apply:
//   kRope    — keys are rotated, so restoration re-applies RoPE at original positions;
//   kLearned — positions enter at the embedding, already inside the hidden states;
//   kAlibi   — a bias on attention *scores* only: K/V are position-free and
//              restoration is a plain projection (the simplest case for HCache).
enum class PositionKind { kRope, kLearned, kAlibi };

struct ModelConfig {
  std::string name;
  int64_t num_layers = 0;
  int64_t hidden_dim = 0;
  int64_t num_heads = 0;
  int64_t num_kv_heads = 0;  // == num_heads for MHA; < num_heads for GQA (extension)
  int64_t ffn_dim = 0;
  int64_t vocab_size = 0;
  int64_t max_position = 16384;  // paper §6: context expanded to 16K (32K for OPT-30B)
  NormKind norm = NormKind::kRmsNorm;
  ActivationKind activation = ActivationKind::kSwiGlu;
  PositionKind position = PositionKind::kRope;
  float norm_eps = 1e-5f;
  // Bytes per element for *stored* state (KV cache / hidden states). The paper serves
  // in FP16, so 2. The functional plane computes in FP32 regardless.
  int64_t state_dtype_bytes = 2;

  int64_t head_dim() const { return hidden_dim / num_heads; }
  int64_t kv_dim() const { return num_kv_heads * head_dim(); }

  // --- per-token state sizes (bytes), the quantities §3.2 reasons about ---

  // One layer's hidden state for one token.
  int64_t HiddenBytesPerTokenLayer() const { return hidden_dim * state_dtype_bytes; }
  // One layer's K+V for one token.
  int64_t KvBytesPerTokenLayer() const { return 2 * kv_dim() * state_dtype_bytes; }
  // Full-model per-token sizes.
  int64_t HiddenBytesPerToken() const { return num_layers * HiddenBytesPerTokenLayer(); }
  int64_t KvBytesPerToken() const { return num_layers * KvBytesPerTokenLayer(); }

  bool IsMha() const { return num_kv_heads == num_heads; }

  // --- presets ---
  static ModelConfig Llama2_7B();
  static ModelConfig Llama2_13B();
  static ModelConfig Opt30B();
  // Tiny models for the functional plane. Deterministic, fast, structurally faithful.
  static ModelConfig TinyLlama(int64_t layers = 4, int64_t hidden = 64, int64_t heads = 4);
  static ModelConfig TinyOpt(int64_t layers = 4, int64_t hidden = 64, int64_t heads = 4);
  // BLOOM/MPT-style ALiBi variant (LayerNorm + GELU + attention-score bias).
  static ModelConfig TinyAlibi(int64_t layers = 4, int64_t hidden = 64, int64_t heads = 4);
  // GQA variant used by the extension cost model and tests.
  static ModelConfig TinyGqa(int64_t layers = 4, int64_t hidden = 64, int64_t heads = 4,
                             int64_t kv_heads = 2);
  // Grouped-query variant of any base model (extension; paper §7 discusses MQA/GQA).
  // Shrinks the KV heads while leaving hidden states untouched, which erodes HCache's
  // 2x IO advantage — the trade-off bench_ext_gqa quantifies.
  static ModelConfig WithGqa(const ModelConfig& base, int64_t kv_heads);
};

}  // namespace hcache

#endif  // HCACHE_SRC_MODEL_CONFIG_H_
