// A real (CPU, FP32) decoder-only transformer forward pass over the paged KV cache,
// with the hidden-state capture hook HCache needs.
//
// This is the functional plane of the reproduction: everything the paper claims about
// restoring KV from hidden states is checked against this implementation bit-for-bit.
// Determinism contract: all kernels accumulate in a fixed, batch-size-independent order
// per output row, so computing K/V for a token during prefill and recomputing it later
// from the saved layer input produces *identical* floats.
//
// Structure (pre-norm, as in Llama2 and OPT):
//   h_L  --(capture: this is HCache's hidden state for layer L)-->
//   x   = Norm1(h_L)
//   q,k,v = x W{q,k,v}^T (+bias)     k,q get RoPE for Llama-family models
//   KV  -> paged cache
//   h   = h_L + (MHA(q, KV) W_o^T)
//   h_{L+1} = h + FFN(Norm2(h))
#ifndef HCACHE_SRC_MODEL_TRANSFORMER_H_
#define HCACHE_SRC_MODEL_TRANSFORMER_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/model/kv_cache.h"
#include "src/model/weights.h"
#include "src/tensor/tensor.h"

namespace hcache {

// Receives each layer's input activations during a forward pass. HCache's saving path
// implements this to snapshot hidden states; passing nullptr disables capture.
class HiddenStateSink {
 public:
  virtual ~HiddenStateSink() = default;

  // `hidden` is [n, hidden_dim]: the input to `layer` for the n tokens whose absolute
  // positions are positions[0..n). Called once per layer per forward pass, in layer
  // order — the "layer-before-token" generation order of Fig 6a.
  virtual void OnLayerInput(int64_t layer, const Tensor& hidden, const int32_t* positions,
                            int64_t n) = 0;
};

class Transformer {
 public:
  // `weights` must outlive the transformer.
  explicit Transformer(const ModelWeights* weights);

  const ModelConfig& config() const { return weights_->config; }

  // Runs the forward pass for `tokens` appended at positions
  // [seq->num_tokens(), seq->num_tokens() + tokens.size()). Writes K/V into `seq`
  // (capacity is allocated here; CHECK-fails if the pool is exhausted — serving-level
  // admission control is responsible for not letting that happen) and commits the
  // tokens. Returns the final-norm output activations [n, hidden_dim].
  //
  // Works for both phases: prefill (n > 1) and decode (n == 1). The sequence's existing
  // KV must be present (seq->has_kv()); restore first if it was evicted.
  Tensor Forward(const std::vector<int32_t>& tokens, PagedKvSequence* seq,
                 HiddenStateSink* sink = nullptr);

  // Runs only the first `num_layers` transformer layers, writing their K/V, and
  // returns the *un-normalized* input activations to layer `num_layers`. This is the
  // token-recomputation half of a mixed restoration schedule (§4.1.2: "the first L_O
  // layers are restored with token recomputation"): it rebuilds the early layers' KV
  // from raw tokens while later layers restore from hidden states.
  Tensor ForwardPartial(const std::vector<int32_t>& tokens, PagedKvSequence* seq,
                        int64_t num_layers, HiddenStateSink* sink = nullptr);

  // Projects final activations to vocabulary logits; `hidden` is [n, hidden_dim].
  Tensor Logits(const Tensor& hidden) const;

  // Greedy-decodes `steps` tokens starting from the sequence's current state; the
  // caller provides the first input token. Returns the generated token ids. Used by
  // tests to prove generation after restoration matches generation without eviction.
  std::vector<int32_t> GreedyDecode(int32_t first_token, int64_t steps, PagedKvSequence* seq,
                                    HiddenStateSink* sink = nullptr);

  // Stochastic decoding with temperature + top-k, driven by the caller's seeded RNG.
  // Deterministic for a given (rng state, KV state): bit-identical restored KV plus an
  // equal seed reproduce the exact same sampled text — the user-visible form of the
  // lossless-restoration guarantee. `top_k == 0` disables the top-k filter.
  std::vector<int32_t> SampleDecode(int32_t first_token, int64_t steps, double temperature,
                                    int64_t top_k, Rng& rng, PagedKvSequence* seq,
                                    HiddenStateSink* sink = nullptr);

  // === The HCache restoration primitive (paper §3.1) ===
  // Computes layer `layer`'s K/V for tokens with the given `positions` from that
  // layer's saved input `hidden` [n, hidden_dim], applying exactly the operations the
  // forward pass applies (pre-norm, projection, bias, RoPE with original positions).
  // Outputs are [n, kv_dim]. Bit-identical to what Forward wrote for those tokens.
  void RestoreLayerKv(int64_t layer, const Tensor& hidden, const int32_t* positions,
                      Tensor* k_out, Tensor* v_out) const;

 private:
  Tensor Embed(const std::vector<int32_t>& tokens, const int32_t* positions) const;
  void Normalize(const Tensor& x, const Tensor& weight, const Tensor& bias, Tensor* out) const;
  // Projects normed activations to K/V (+bias, +RoPE). Shared verbatim by the forward
  // pass and RestoreLayerKv — sharing the code path is what makes restoration lossless.
  void ProjectKv(const LayerWeights& lw, const Tensor& normed, const int32_t* positions,
                 Tensor* k_out, Tensor* v_out) const;
  float AlibiSlope(int64_t head) const;
  Tensor Attention(int64_t layer, const Tensor& q, const PagedKvSequence& seq,
                   const int32_t* positions, int64_t n) const;
  Tensor Ffn(const LayerWeights& lw, const Tensor& x) const;
  static void AddBiasRows(Tensor& t, const Tensor& bias);

  const ModelWeights* weights_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_MODEL_TRANSFORMER_H_
