// Model weights with deterministic random initialization.
//
// The functional plane never loads real checkpoints — the lossless-restoration property
// being verified is independent of weight values — so weights are sampled from a seeded
// Gaussian. Layouts match HuggingFace conventions: every projection is stored
// [out_features, in_features] and applied as x * W^T.
#ifndef HCACHE_SRC_MODEL_WEIGHTS_H_
#define HCACHE_SRC_MODEL_WEIGHTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace hcache {

struct LayerWeights {
  // Attention.
  Tensor wq;  // [hidden, hidden]
  Tensor wk;  // [kv_dim, hidden]
  Tensor wv;  // [kv_dim, hidden]
  Tensor wo;  // [hidden, hidden]
  Tensor bq, bk, bv, bo;  // [.] biases, only for OPT-style models (empty otherwise)

  // Norms. attn_norm precedes attention, ffn_norm precedes the FFN (pre-norm models).
  Tensor attn_norm_weight;  // [hidden]
  Tensor attn_norm_bias;    // [hidden], LayerNorm only
  Tensor ffn_norm_weight;   // [hidden]
  Tensor ffn_norm_bias;     // [hidden], LayerNorm only

  // FFN. SwiGLU uses w_gate/w_up/w_down; GELU/ReLU models use w_up (fc1) / w_down (fc2).
  Tensor w_gate;  // [ffn, hidden]
  Tensor w_up;    // [ffn, hidden]
  Tensor w_down;  // [hidden, ffn]
  Tensor b_up;    // [ffn], OPT only
  Tensor b_down;  // [hidden], OPT only
};

struct ModelWeights {
  ModelConfig config;
  Tensor embedding;      // [vocab, hidden]
  Tensor pos_embedding;  // [max_position, hidden], learned-position models only
  std::vector<LayerWeights> layers;
  Tensor final_norm_weight;  // [hidden]
  Tensor final_norm_bias;    // [hidden], LayerNorm only
  Tensor lm_head;            // [vocab, hidden]

  // Samples every parameter from N(0, scale^2) with a deterministic per-tensor stream
  // derived from `seed`, so two processes with the same seed build identical models.
  static ModelWeights Random(const ModelConfig& config, uint64_t seed = 42);

  // Binary checkpoint round trip (simple versioned format: config header + raw FP32
  // tensors). Returns false on IO or format errors.
  bool SaveToFile(const std::string& path) const;
  static bool LoadFromFile(const std::string& path, ModelWeights* out);
};

}  // namespace hcache

#endif  // HCACHE_SRC_MODEL_WEIGHTS_H_
