#include "src/model/kv_cache.h"

#include <cstring>

#include "src/common/logging.h"

namespace hcache {

KvPoolConfig KvPoolConfig::ForModel(const ModelConfig& m, int64_t num_blocks,
                                    int64_t block_tokens) {
  KvPoolConfig c;
  c.num_blocks = num_blocks;
  c.block_tokens = block_tokens;
  c.num_layers = m.num_layers;
  c.kv_dim = m.kv_dim();
  return c;
}

KvBlockPool::KvBlockPool(const KvPoolConfig& config) : config_(config) {
  CHECK_GT(config_.num_blocks, 0);
  CHECK_GT(config_.block_tokens, 0);
  CHECK_GT(config_.num_layers, 0);
  CHECK_GT(config_.kv_dim, 0);
  storage_.assign(static_cast<size_t>(config_.num_blocks * BlockFloats()), 0.0f);
  refcounts_.assign(static_cast<size_t>(config_.num_blocks), 0);
  free_list_.reserve(static_cast<size_t>(config_.num_blocks));
  // Pop order is LIFO from the back; push ids descending so block 0 allocates first,
  // which makes tests readable.
  for (int64_t i = config_.num_blocks - 1; i >= 0; --i) {
    free_list_.push_back(i);
  }
}

int64_t KvBlockPool::BlockFloats() const {
  return config_.num_layers * 2 * config_.block_tokens * config_.kv_dim;
}

int64_t KvBlockPool::LayerFloats() const { return 2 * config_.block_tokens * config_.kv_dim; }

int64_t KvBlockPool::Alloc() {
  if (free_list_.empty()) {
    return -1;
  }
  const int64_t id = free_list_.back();
  free_list_.pop_back();
  refcounts_[static_cast<size_t>(id)] = 1;
  return id;
}

void KvBlockPool::AddRef(int64_t block_id) {
  CHECK_GE(block_id, 0);
  CHECK_LT(block_id, config_.num_blocks);
  CHECK_GT(refcounts_[static_cast<size_t>(block_id)], 0);
  ++refcounts_[static_cast<size_t>(block_id)];
}

void KvBlockPool::Release(int64_t block_id) {
  CHECK_GE(block_id, 0);
  CHECK_LT(block_id, config_.num_blocks);
  int32_t& rc = refcounts_[static_cast<size_t>(block_id)];
  CHECK_GT(rc, 0);
  if (--rc == 0) {
    free_list_.push_back(block_id);
  }
}

float* KvBlockPool::Key(int64_t block_id, int64_t layer) {
  DCHECK(block_id >= 0 && block_id < config_.num_blocks);
  DCHECK(layer >= 0 && layer < config_.num_layers);
  return storage_.data() + block_id * BlockFloats() + layer * LayerFloats();
}

const float* KvBlockPool::Key(int64_t block_id, int64_t layer) const {
  return const_cast<KvBlockPool*>(this)->Key(block_id, layer);
}

float* KvBlockPool::Value(int64_t block_id, int64_t layer) {
  return Key(block_id, layer) + config_.block_tokens * config_.kv_dim;
}

const float* KvBlockPool::Value(int64_t block_id, int64_t layer) const {
  return const_cast<KvBlockPool*>(this)->Value(block_id, layer);
}

int64_t KvBlockPool::ref_count(int64_t block_id) const {
  CHECK_GE(block_id, 0);
  CHECK_LT(block_id, config_.num_blocks);
  return refcounts_[static_cast<size_t>(block_id)];
}

PagedKvSequence::PagedKvSequence(KvBlockPool* pool) : pool_(pool) { CHECK(pool != nullptr); }

PagedKvSequence::~PagedKvSequence() {
  for (int64_t b : block_table_) {
    pool_->Release(b);
  }
}

PagedKvSequence::PagedKvSequence(PagedKvSequence&& other) noexcept
    : pool_(other.pool_),
      block_table_(std::move(other.block_table_)),
      num_tokens_(other.num_tokens_),
      has_kv_(other.has_kv_) {
  other.block_table_.clear();
  other.num_tokens_ = 0;
}

bool PagedKvSequence::EnsureCapacity(int64_t num_tokens) {
  const int64_t bt = pool_->block_tokens();
  const int64_t needed = (num_tokens + bt - 1) / bt;
  const int64_t have = num_blocks_held();
  if (needed <= have) {
    has_kv_ = true;
    return true;
  }
  if (needed - have > pool_->num_free()) {
    return false;
  }
  for (int64_t i = have; i < needed; ++i) {
    const int64_t b = pool_->Alloc();
    CHECK_GE(b, 0);
    block_table_.push_back(b);
  }
  has_kv_ = true;
  return true;
}

void PagedKvSequence::WriteKv(int64_t layer, int64_t first_pos, const Tensor& k,
                              const Tensor& v) {
  CHECK(has_kv_);
  CHECK_EQ(k.rank(), 2);
  CHECK(k.shape() == v.shape());
  const int64_t n = k.dim(0);
  const int64_t kv_dim = pool_->config().kv_dim;
  CHECK_EQ(k.dim(1), kv_dim);
  const int64_t bt = pool_->block_tokens();
  CHECK_LE((first_pos + n + bt - 1) / bt, num_blocks_held());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t pos = first_pos + i;
    const int64_t block = block_table_[static_cast<size_t>(pos / bt)];
    const int64_t slot = pos % bt;
    std::memcpy(pool_->Key(block, layer) + slot * kv_dim, k.row(i),
                static_cast<size_t>(kv_dim) * sizeof(float));
    std::memcpy(pool_->Value(block, layer) + slot * kv_dim, v.row(i),
                static_cast<size_t>(kv_dim) * sizeof(float));
  }
}

void PagedKvSequence::CommitTokens(int64_t n) {
  CHECK_GE(n, 0);
  num_tokens_ += n;
  const int64_t bt = pool_->block_tokens();
  CHECK_LE((num_tokens_ + bt - 1) / bt, num_blocks_held());
}

void PagedKvSequence::ResetForRestore() {
  CHECK(!has_kv_) << "ResetForRestore is only for evicted sequences";
  CHECK(block_table_.empty());
  num_tokens_ = 0;
  has_kv_ = true;
}

void PagedKvSequence::Evict() {
  for (int64_t b : block_table_) {
    pool_->Release(b);
  }
  block_table_.clear();
  has_kv_ = false;
}

const float* PagedKvSequence::KeyRow(int64_t layer, int64_t pos) const {
  DCHECK(has_kv_);
  DCHECK(pos >= 0 && pos < num_tokens_);
  const int64_t bt = pool_->block_tokens();
  const int64_t block = block_table_[static_cast<size_t>(pos / bt)];
  return pool_->Key(block, layer) + (pos % bt) * pool_->config().kv_dim;
}

const float* PagedKvSequence::ValueRow(int64_t layer, int64_t pos) const {
  DCHECK(has_kv_);
  DCHECK(pos >= 0 && pos < num_tokens_);
  const int64_t bt = pool_->block_tokens();
  const int64_t block = block_table_[static_cast<size_t>(pos / bt)];
  return pool_->Value(block, layer) + (pos % bt) * pool_->config().kv_dim;
}

void PagedKvSequence::ReadKv(int64_t layer, int64_t first, int64_t count, Tensor* k_out,
                             Tensor* v_out) const {
  CHECK(has_kv_);
  CHECK_GE(first, 0);
  CHECK_LE(first + count, num_tokens_);
  const int64_t kv_dim = pool_->config().kv_dim;
  *k_out = Tensor({count, kv_dim});
  *v_out = Tensor({count, kv_dim});
  for (int64_t i = 0; i < count; ++i) {
    std::memcpy(k_out->row(i), KeyRow(layer, first + i),
                static_cast<size_t>(kv_dim) * sizeof(float));
    std::memcpy(v_out->row(i), ValueRow(layer, first + i),
                static_cast<size_t>(kv_dim) * sizeof(float));
  }
}

}  // namespace hcache
