// Analytic restoration cost formulas from §3.2 of the paper.
//
// These express, per transformer layer and for a history of n tokens, the bytes moved
// and FLOPs spent by each restoration method. The paper states them for MHA models
// (kv_dim == hidden_dim) with the canonical FFN factor of 16·n·D²; we provide both the
// paper-faithful forms (used to regenerate the paper's figures) and exact forms derived
// from the concrete model config (used by the GQA/real-FFN extension benches).
//
// Conventions follow the paper: one multiply-add counts as 2 FLOPs; epsilon-sized terms
// (norms, residuals, position embeddings) are omitted.
#ifndef HCACHE_SRC_MODEL_COST_MODEL_H_
#define HCACHE_SRC_MODEL_COST_MODEL_H_

#include "src/model/config.h"
#include "src/storage/layout.h"

namespace hcache {

// --- I/O volume (bytes, per layer) ---

// Hidden states: n tokens × hidden_dim elements at the model's state dtype (FP16 in
// the paper's deployment, ModelConfig::state_dtype_bytes).
double HiddenIoBytesPerLayer(const ModelConfig& cfg, double n);

// Hidden states under an explicit storage codec: n tokens × CodecRowBytes. kFp16
// coincides with the 2-arg form for the default state_dtype_bytes == 2; kFp32 doubles
// it (raw-float transport), kInt8 roughly halves it again (per-row scale included).
double HiddenIoBytesPerLayer(const ModelConfig& cfg, double n, ChunkCodec codec);

// KV cache: n tokens × 2 × kv_dim elements (== 2× hidden for MHA — the paper's "half
// the size" claim).
double KvIoBytesPerLayer(const ModelConfig& cfg, double n);

// --- compute volume (FLOPs, per layer), paper-faithful MHA forms ---

// C_hidden: K/V projection from hidden states = 4·n·D².
double HiddenToKvFlopsPerLayer(const ModelConfig& cfg, double n);

// C_attn: full attention module = 8·n·D² + n²·D.
double AttnFlopsPerLayer(const ModelConfig& cfg, double n);

// C_ffn: feed-forward = 16·n·D².
double FfnFlopsPerLayer(const ModelConfig& cfg, double n);

// T_rec numerator: full token recomputation = 24·n·D² + n²·D.
double RecomputeFlopsPerLayer(const ModelConfig& cfg, double n);

// Relative compute speedup of HCache over recomputation = 6 + n / (4·D). The paper's
// ">= 6x" lower bound.
double TheoreticalComputeSpeedup(const ModelConfig& cfg, double n);

// --- exact forms from the concrete config (extensions; GQA- and FFN-shape-aware) ---

// K/V projection with the model's true kv_dim: 4·n·D·kv_dim.
double ExactHiddenToKvFlopsPerLayer(const ModelConfig& cfg, double n);

// FFN with the model's true ffn_dim (3 matrices for SwiGLU, 2 otherwise).
double ExactFfnFlopsPerLayer(const ModelConfig& cfg, double n);

// Full prefill recompute with exact shapes.
double ExactRecomputeFlopsPerLayer(const ModelConfig& cfg, double n);

}  // namespace hcache

#endif  // HCACHE_SRC_MODEL_COST_MODEL_H_
