// PagedAttention-style KV cache (Kwon et al., SOSP'23) — the GPU-memory substrate the
// paper's motivation (§2.4) is built on: a fixed pool of fixed-size token blocks, block
// tables per sequence, eviction by releasing blocks, and restoration by refilling them.
//
// One block holds `block_tokens` tokens' K and V for *all* layers, so a sequence has a
// single block table shared across layers (the vLLM layout). Capacity pressure is what
// forces state restoration in the first place: the pool makes "an A100-40G keeps only
// 7–20 conversations" (§2.4) a testable, concrete mechanism rather than a narrative.
#ifndef HCACHE_SRC_MODEL_KV_CACHE_H_
#define HCACHE_SRC_MODEL_KV_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/model/config.h"
#include "src/tensor/tensor.h"

namespace hcache {

struct KvPoolConfig {
  int64_t num_blocks = 0;
  int64_t block_tokens = 16;
  int64_t num_layers = 0;
  int64_t kv_dim = 0;  // per-token K (or V) width = num_kv_heads * head_dim

  static KvPoolConfig ForModel(const ModelConfig& m, int64_t num_blocks,
                               int64_t block_tokens = 16);
};

class KvBlockPool {
 public:
  explicit KvBlockPool(const KvPoolConfig& config);

  KvBlockPool(const KvBlockPool&) = delete;
  KvBlockPool& operator=(const KvBlockPool&) = delete;

  // Returns a block id, or -1 when the pool is exhausted. New blocks have refcount 1.
  int64_t Alloc();
  // Increments the refcount (prefix sharing uses this).
  void AddRef(int64_t block_id);
  // Decrements the refcount; the block returns to the free list at zero.
  void Release(int64_t block_id);

  // K rows of `block` at `layer`: a [block_tokens, kv_dim] row-major slab.
  float* Key(int64_t block_id, int64_t layer);
  const float* Key(int64_t block_id, int64_t layer) const;
  float* Value(int64_t block_id, int64_t layer);
  const float* Value(int64_t block_id, int64_t layer) const;

  int64_t num_free() const { return static_cast<int64_t>(free_list_.size()); }
  int64_t num_blocks() const { return config_.num_blocks; }
  int64_t block_tokens() const { return config_.block_tokens; }
  int64_t ref_count(int64_t block_id) const;
  const KvPoolConfig& config() const { return config_; }

  // Tokens representable by the whole pool; the §2.4 capacity argument in one number.
  int64_t capacity_tokens() const { return config_.num_blocks * config_.block_tokens; }

 private:
  int64_t BlockFloats() const;
  int64_t LayerFloats() const;

  KvPoolConfig config_;
  std::vector<float> storage_;
  std::vector<int32_t> refcounts_;
  std::vector<int64_t> free_list_;
};

// One sequence's view of the pool: a block table plus the token count. The sequence
// remembers its history length across eviction so restoration knows what to rebuild.
class PagedKvSequence {
 public:
  explicit PagedKvSequence(KvBlockPool* pool);
  ~PagedKvSequence();

  PagedKvSequence(const PagedKvSequence&) = delete;
  PagedKvSequence& operator=(const PagedKvSequence&) = delete;
  PagedKvSequence(PagedKvSequence&& other) noexcept;

  // Grows the block table to cover `num_tokens` tokens. Returns false (and leaves the
  // table unchanged) when the pool cannot supply enough blocks.
  bool EnsureCapacity(int64_t num_tokens);

  // Writes K/V rows for tokens [first_pos, first_pos + k.dim(0)) at `layer`.
  // k and v are [n, kv_dim]. Capacity must already cover the range.
  void WriteKv(int64_t layer, int64_t first_pos, const Tensor& k, const Tensor& v);

  // Marks `n` more tokens as present (call after all layers wrote their K/V).
  void CommitTokens(int64_t n);

  // Releases every block. num_tokens() is preserved as the history length; has_kv()
  // turns false until the state is restored.
  void Evict();

  // Prepares an evicted sequence for a restoration that re-runs the forward pass from
  // token 0 (the recompute complement): clears the token count so tokens recommit as
  // their KV is rebuilt. Only valid on an evicted sequence.
  void ResetForRestore();

  bool has_kv() const { return has_kv_; }
  int64_t num_tokens() const { return num_tokens_; }
  int64_t num_blocks_held() const { return static_cast<int64_t>(block_table_.size()); }

  const float* KeyRow(int64_t layer, int64_t pos) const;
  const float* ValueRow(int64_t layer, int64_t pos) const;

  // Copies tokens [first, first+count) of `layer` into [count, kv_dim] tensors.
  void ReadKv(int64_t layer, int64_t first, int64_t count, Tensor* k_out, Tensor* v_out) const;

  KvBlockPool* pool() const { return pool_; }

 private:
  KvBlockPool* pool_;
  std::vector<int64_t> block_table_;
  int64_t num_tokens_ = 0;
  bool has_kv_ = true;
};

}  // namespace hcache

#endif  // HCACHE_SRC_MODEL_KV_CACHE_H_
