#include "src/model/weights.h"

#include <cmath>
#include <cstdio>
#include <functional>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace hcache {

namespace {

Tensor RandomTensor(std::vector<int64_t> shape, Rng& rng, float scale) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(rng.NextNormal(0.0, scale));
  }
  return t;
}

Tensor OnesTensor(std::vector<int64_t> shape) {
  Tensor t(std::move(shape));
  t.Fill(1.0f);
  return t;
}

}  // namespace

ModelWeights ModelWeights::Random(const ModelConfig& config, uint64_t seed) {
  ModelWeights w;
  w.config = config;
  Rng rng(seed);

  // 1/sqrt(hidden) keeps activations O(1) through deep stacks of random projections.
  const float proj_scale = 1.0f / std::sqrt(static_cast<float>(config.hidden_dim));
  const float embed_scale = 0.02f;
  const bool layer_norm = config.norm == NormKind::kLayerNorm;
  const bool learned_pos = config.position == PositionKind::kLearned;
  const bool swiglu = config.activation == ActivationKind::kSwiGlu;

  w.embedding = RandomTensor({config.vocab_size, config.hidden_dim}, rng, embed_scale);
  if (learned_pos) {
    w.pos_embedding = RandomTensor({config.max_position, config.hidden_dim}, rng, embed_scale);
  }

  w.layers.reserve(static_cast<size_t>(config.num_layers));
  for (int64_t l = 0; l < config.num_layers; ++l) {
    LayerWeights lw;
    lw.wq = RandomTensor({config.hidden_dim, config.hidden_dim}, rng, proj_scale);
    lw.wk = RandomTensor({config.kv_dim(), config.hidden_dim}, rng, proj_scale);
    lw.wv = RandomTensor({config.kv_dim(), config.hidden_dim}, rng, proj_scale);
    lw.wo = RandomTensor({config.hidden_dim, config.hidden_dim}, rng, proj_scale);
    if (layer_norm) {
      lw.bq = Tensor({config.hidden_dim});
      lw.bk = Tensor({config.kv_dim()});
      lw.bv = Tensor({config.kv_dim()});
      lw.bo = Tensor({config.hidden_dim});
    }

    lw.attn_norm_weight = OnesTensor({config.hidden_dim});
    lw.ffn_norm_weight = OnesTensor({config.hidden_dim});
    if (layer_norm) {
      lw.attn_norm_bias = Tensor({config.hidden_dim});
      lw.ffn_norm_bias = Tensor({config.hidden_dim});
    }

    if (swiglu) {
      lw.w_gate = RandomTensor({config.ffn_dim, config.hidden_dim}, rng, proj_scale);
    }
    lw.w_up = RandomTensor({config.ffn_dim, config.hidden_dim}, rng, proj_scale);
    lw.w_down = RandomTensor({config.hidden_dim, config.ffn_dim}, rng,
                             1.0f / std::sqrt(static_cast<float>(config.ffn_dim)));
    if (layer_norm) {
      lw.b_up = Tensor({config.ffn_dim});
      lw.b_down = Tensor({config.hidden_dim});
    }
    w.layers.push_back(std::move(lw));
  }

  w.final_norm_weight = OnesTensor({config.hidden_dim});
  if (layer_norm) {
    w.final_norm_bias = Tensor({config.hidden_dim});
  }
  w.lm_head = RandomTensor({config.vocab_size, config.hidden_dim}, rng, proj_scale);
  return w;
}

namespace {

constexpr uint64_t kCheckpointMagic = 0x48434143'4b505431ull;  // "HCACKPT1"

// Applies `fn` to every tensor of `w` in a fixed order — the serialization schema.
template <typename W, typename Fn>
void ForEachTensor(W& w, Fn&& fn) {
  fn(w.embedding);
  fn(w.pos_embedding);
  for (auto& layer : w.layers) {
    fn(layer.wq);
    fn(layer.wk);
    fn(layer.wv);
    fn(layer.wo);
    fn(layer.bq);
    fn(layer.bk);
    fn(layer.bv);
    fn(layer.bo);
    fn(layer.attn_norm_weight);
    fn(layer.attn_norm_bias);
    fn(layer.ffn_norm_weight);
    fn(layer.ffn_norm_bias);
    fn(layer.w_gate);
    fn(layer.w_up);
    fn(layer.w_down);
    fn(layer.b_up);
    fn(layer.b_down);
  }
  fn(w.final_norm_weight);
  fn(w.final_norm_bias);
  fn(w.lm_head);
}

bool WriteRaw(std::FILE* f, const void* p, size_t n) { return std::fwrite(p, 1, n, f) == n; }
bool ReadRaw(std::FILE* f, void* p, size_t n) { return std::fread(p, 1, n, f) == n; }

bool WriteI64(std::FILE* f, int64_t v) { return WriteRaw(f, &v, sizeof(v)); }
bool ReadI64(std::FILE* f, int64_t* v) { return ReadRaw(f, v, sizeof(*v)); }

}  // namespace

bool ModelWeights::SaveToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  bool ok = WriteRaw(f, &kCheckpointMagic, sizeof(kCheckpointMagic));
  // Config header: name length + bytes, then the numeric/enum fields.
  const int64_t name_len = static_cast<int64_t>(config.name.size());
  ok = ok && WriteI64(f, name_len) && WriteRaw(f, config.name.data(), config.name.size());
  const int64_t fields[] = {config.num_layers,
                            config.hidden_dim,
                            config.num_heads,
                            config.num_kv_heads,
                            config.ffn_dim,
                            config.vocab_size,
                            config.max_position,
                            static_cast<int64_t>(config.norm),
                            static_cast<int64_t>(config.activation),
                            static_cast<int64_t>(config.position),
                            config.state_dtype_bytes};
  for (const int64_t v : fields) {
    ok = ok && WriteI64(f, v);
  }
  ok = ok && WriteRaw(f, &config.norm_eps, sizeof(config.norm_eps));

  ForEachTensor(*this, [&](const Tensor& t) {
    ok = ok && WriteI64(f, t.rank());
    for (int64_t d = 0; d < t.rank(); ++d) {
      ok = ok && WriteI64(f, t.dim(d));
    }
    if (t.numel() > 0) {
      ok = ok && WriteRaw(f, t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
    }
  });
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

bool ModelWeights::LoadFromFile(const std::string& path, ModelWeights* out) {
  CHECK(out != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  uint64_t magic = 0;
  bool ok = ReadRaw(f, &magic, sizeof(magic)) && magic == kCheckpointMagic;

  ModelConfig cfg;
  int64_t name_len = 0;
  ok = ok && ReadI64(f, &name_len) && name_len >= 0 && name_len < 1024;
  if (ok) {
    cfg.name.resize(static_cast<size_t>(name_len));
    ok = name_len == 0 || ReadRaw(f, cfg.name.data(), cfg.name.size());
  }
  int64_t fields[11] = {};
  for (auto& v : fields) {
    ok = ok && ReadI64(f, &v);
  }
  ok = ok && ReadRaw(f, &cfg.norm_eps, sizeof(cfg.norm_eps));
  if (ok) {
    cfg.num_layers = fields[0];
    cfg.hidden_dim = fields[1];
    cfg.num_heads = fields[2];
    cfg.num_kv_heads = fields[3];
    cfg.ffn_dim = fields[4];
    cfg.vocab_size = fields[5];
    cfg.max_position = fields[6];
    cfg.norm = static_cast<NormKind>(fields[7]);
    cfg.activation = static_cast<ActivationKind>(fields[8]);
    cfg.position = static_cast<PositionKind>(fields[9]);
    cfg.state_dtype_bytes = fields[10];
  }

  out->config = cfg;
  out->layers.clear();
  out->layers.resize(static_cast<size_t>(std::max<int64_t>(0, cfg.num_layers)));
  ForEachTensor(*out, [&](Tensor& t) {
    int64_t rank = 0;
    ok = ok && ReadI64(f, &rank) && rank >= 0 && rank <= 4;
    if (!ok) {
      return;
    }
    if (rank == 0) {
      t = Tensor();  // absent tensor (e.g. biases of a bias-free model)
      return;
    }
    std::vector<int64_t> shape(static_cast<size_t>(rank));
    for (auto& d : shape) {
      ok = ok && ReadI64(f, &d) && d >= 0;
    }
    if (!ok) {
      return;
    }
    Tensor loaded(shape);
    if (loaded.numel() > 0) {
      ok = ok && ReadRaw(f, loaded.data(), static_cast<size_t>(loaded.numel()) * sizeof(float));
    }
    t = std::move(loaded);
  });
  std::fclose(f);
  return ok;
}

}  // namespace hcache
