#include "src/model/transformer.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/tensor/gemm.h"
#include "src/tensor/ops.h"
#include "src/tensor/rope.h"

namespace hcache {

Transformer::Transformer(const ModelWeights* weights) : weights_(weights) {
  CHECK(weights != nullptr);
}

Tensor Transformer::Embed(const std::vector<int32_t>& tokens, const int32_t* positions) const {
  const ModelConfig& cfg = config();
  const int64_t n = static_cast<int64_t>(tokens.size());
  Tensor h({n, cfg.hidden_dim});
  for (int64_t i = 0; i < n; ++i) {
    const int32_t tok = tokens[static_cast<size_t>(i)];
    CHECK_GE(tok, 0);
    CHECK_LT(tok, cfg.vocab_size);
    std::memcpy(h.row(i), weights_->embedding.row(tok),
                static_cast<size_t>(cfg.hidden_dim) * sizeof(float));
    if (cfg.position == PositionKind::kLearned) {
      CHECK_LT(positions[i], cfg.max_position);
      const float* pe = weights_->pos_embedding.row(positions[i]);
      float* row = h.row(i);
      for (int64_t d = 0; d < cfg.hidden_dim; ++d) {
        row[d] += pe[d];
      }
    }
  }
  return h;
}

void Transformer::Normalize(const Tensor& x, const Tensor& weight, const Tensor& bias,
                            Tensor* out) const {
  const ModelConfig& cfg = config();
  if (cfg.norm == NormKind::kRmsNorm) {
    RmsNorm(x, weight.data(), cfg.norm_eps, *out);
  } else {
    LayerNorm(x, weight.data(), bias.data(), cfg.norm_eps, *out);
  }
}

void Transformer::AddBiasRows(Tensor& t, const Tensor& bias) {
  if (bias.empty()) {
    return;
  }
  CHECK_EQ(t.dim(1), bias.numel());
  for (int64_t r = 0; r < t.dim(0); ++r) {
    float* row = t.row(r);
    for (int64_t c = 0; c < t.dim(1); ++c) {
      row[c] += bias.at(c);
    }
  }
}

void Transformer::ProjectKv(const LayerWeights& lw, const Tensor& normed,
                            const int32_t* positions, Tensor* k_out, Tensor* v_out) const {
  const ModelConfig& cfg = config();
  *k_out = MatMulTransposedB(normed, lw.wk);
  *v_out = MatMulTransposedB(normed, lw.wv);
  AddBiasRows(*k_out, lw.bk);
  AddBiasRows(*v_out, lw.bv);
  if (cfg.position == PositionKind::kRope) {
    ApplyRope(*k_out, positions, cfg.num_kv_heads, cfg.head_dim());
  }
}

float Transformer::AlibiSlope(int64_t head) const {
  // Standard ALiBi geometric slopes: m_h = 2^(-8*(h+1)/H).
  const double exponent = -8.0 * static_cast<double>(head + 1) /
                          static_cast<double>(config().num_heads);
  return static_cast<float>(std::pow(2.0, exponent));
}

Tensor Transformer::Attention(int64_t layer, const Tensor& q, const PagedKvSequence& seq,
                              const int32_t* positions, int64_t n) const {
  const ModelConfig& cfg = config();
  const int64_t head_dim = cfg.head_dim();
  const int64_t num_heads = cfg.num_heads;
  // GQA: query head h reads KV head h / group_size.
  const int64_t group = cfg.num_heads / cfg.num_kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const bool alibi = cfg.position == PositionKind::kAlibi;

  Tensor out({n, cfg.hidden_dim});
  // Every (token, head) pair reads shared K/V but writes only its own slice of `out`,
  // so tokens parallelize freely; each token's math is untouched, keeping the output
  // bit-identical to the serial loop at any thread count. Later tokens attend over
  // longer prefixes, so a fine grain (1 token) load-balances the causal skew.
  ParallelFor(0, n, 1, [&](int64_t i0, int64_t i1) {
    thread_local std::vector<float> scores;  // reused across tokens within each thread
    for (int64_t i = i0; i < i1; ++i) {
      const int64_t causal_len = positions[i] + 1;  // attends to absolute 0..pos inclusive
      scores.resize(static_cast<size_t>(causal_len));
      for (int64_t h = 0; h < num_heads; ++h) {
        const float* q_head = q.row(i) + h * head_dim;
        const int64_t kv_head_off = (h / group) * head_dim;
        const float slope = alibi ? AlibiSlope(h) : 0.0f;
        for (int64_t j = 0; j < causal_len; ++j) {
          const float* k_row = seq.KeyRow(layer, j) + kv_head_off;
          float dot = 0.0f;
          for (int64_t d = 0; d < head_dim; ++d) {
            dot += q_head[d] * k_row[d];
          }
          float s = dot * scale;
          if (alibi) {
            // Linear distance penalty on the score; K stays position-free, which is why
            // ALiBi models restore with a bare projection.
            s -= slope * static_cast<float>(positions[i] - static_cast<int32_t>(j));
          }
          scores[static_cast<size_t>(j)] = s;
        }
        SoftmaxRow(scores.data(), causal_len);
        float* out_head = out.row(i) + h * head_dim;
        for (int64_t j = 0; j < causal_len; ++j) {
          const float a = scores[static_cast<size_t>(j)];
          const float* v_row = seq.ValueRow(layer, j) + kv_head_off;
          for (int64_t d = 0; d < head_dim; ++d) {
            out_head[d] += a * v_row[d];
          }
        }
      }
    }
  });
  return out;
}

Tensor Transformer::Ffn(const LayerWeights& lw, const Tensor& x) const {
  const ModelConfig& cfg = config();
  if (cfg.activation == ActivationKind::kSwiGlu) {
    Tensor gate = MatMulTransposedB(x, lw.w_gate);
    Tensor up = MatMulTransposedB(x, lw.w_up);
    SiluInPlace(gate);
    MulInPlace(gate, up);
    return MatMulTransposedB(gate, lw.w_down);
  }
  Tensor mid = MatMulTransposedB(x, lw.w_up);
  AddBiasRows(mid, lw.b_up);
  if (cfg.activation == ActivationKind::kGelu) {
    GeluInPlace(mid);
  } else {
    ReluInPlace(mid);
  }
  Tensor out = MatMulTransposedB(mid, lw.w_down);
  AddBiasRows(out, lw.b_down);
  return out;
}

Tensor Transformer::Forward(const std::vector<int32_t>& tokens, PagedKvSequence* seq,
                            HiddenStateSink* sink) {
  Tensor h = ForwardPartial(tokens, seq, config().num_layers, sink);
  Tensor final_out({h.dim(0), config().hidden_dim});
  Normalize(h, weights_->final_norm_weight, weights_->final_norm_bias, &final_out);
  return final_out;
}

Tensor Transformer::ForwardPartial(const std::vector<int32_t>& tokens, PagedKvSequence* seq,
                                   int64_t num_layers, HiddenStateSink* sink) {
  const ModelConfig& cfg = config();
  const int64_t n = static_cast<int64_t>(tokens.size());
  CHECK_GT(n, 0);
  CHECK_GE(num_layers, 0);
  CHECK_LE(num_layers, cfg.num_layers);
  CHECK(seq->has_kv()) << "forward on a sequence with evicted KV; restore it first";
  const int64_t start = seq->num_tokens();
  CHECK(seq->EnsureCapacity(start + n)) << "KV pool exhausted";

  std::vector<int32_t> positions(static_cast<size_t>(n));
  std::iota(positions.begin(), positions.end(), static_cast<int32_t>(start));

  Tensor h = Embed(tokens, positions.data());
  Tensor normed({n, cfg.hidden_dim});
  for (int64_t layer = 0; layer < num_layers; ++layer) {
    const LayerWeights& lw = weights_->layers[static_cast<size_t>(layer)];
    if (sink != nullptr) {
      sink->OnLayerInput(layer, h, positions.data(), n);
    }

    Normalize(h, lw.attn_norm_weight, lw.attn_norm_bias, &normed);
    Tensor q = MatMulTransposedB(normed, lw.wq);
    AddBiasRows(q, lw.bq);
    if (cfg.position == PositionKind::kRope) {
      ApplyRope(q, positions.data(), cfg.num_heads, cfg.head_dim());
    }
    Tensor k, v;
    ProjectKv(lw, normed, positions.data(), &k, &v);
    seq->WriteKv(layer, start, k, v);
    if (layer == 0) {
      // Tokens become visible to attention once their layer-0 K/V exist; later layers
      // reuse the same committed range.
      seq->CommitTokens(n);
    }

    Tensor attn = Attention(layer, q, *seq, positions.data(), n);
    Tensor o = MatMulTransposedB(attn, lw.wo);
    AddBiasRows(o, lw.bo);
    AddInPlace(h, o);

    Normalize(h, lw.ffn_norm_weight, lw.ffn_norm_bias, &normed);
    Tensor f = Ffn(lw, normed);
    AddInPlace(h, f);
  }
  return h;
}

Tensor Transformer::Logits(const Tensor& hidden) const {
  return MatMulTransposedB(hidden, weights_->lm_head);
}

std::vector<int32_t> Transformer::GreedyDecode(int32_t first_token, int64_t steps,
                                               PagedKvSequence* seq, HiddenStateSink* sink) {
  std::vector<int32_t> generated;
  generated.reserve(static_cast<size_t>(steps));
  int32_t token = first_token;
  for (int64_t s = 0; s < steps; ++s) {
    Tensor out = Forward({token}, seq, sink);
    Tensor logits = Logits(out);
    int32_t best = 0;
    float best_v = logits.at(0, 0);
    for (int64_t v = 1; v < logits.dim(1); ++v) {
      if (logits.at(0, v) > best_v) {
        best_v = logits.at(0, v);
        best = static_cast<int32_t>(v);
      }
    }
    generated.push_back(best);
    token = best;
  }
  return generated;
}

std::vector<int32_t> Transformer::SampleDecode(int32_t first_token, int64_t steps,
                                               double temperature, int64_t top_k, Rng& rng,
                                               PagedKvSequence* seq, HiddenStateSink* sink) {
  CHECK_GT(temperature, 0.0);
  const int64_t vocab = config().vocab_size;
  std::vector<int32_t> generated;
  generated.reserve(static_cast<size_t>(steps));
  std::vector<std::pair<float, int32_t>> ranked(static_cast<size_t>(vocab));
  int32_t token = first_token;
  for (int64_t s = 0; s < steps; ++s) {
    Tensor out = Forward({token}, seq, sink);
    Tensor logits = Logits(out);
    for (int64_t v = 0; v < vocab; ++v) {
      ranked[static_cast<size_t>(v)] = {logits.at(0, v), static_cast<int32_t>(v)};
    }
    int64_t pool = vocab;
    if (top_k > 0 && top_k < vocab) {
      std::partial_sort(ranked.begin(), ranked.begin() + top_k, ranked.end(),
                        [](const auto& a, const auto& b) { return a.first > b.first; });
      pool = top_k;
    }
    // Softmax over the candidate pool at the given temperature.
    float max_logit = ranked[0].first;
    for (int64_t v = 1; v < pool; ++v) {
      max_logit = std::max(max_logit, ranked[static_cast<size_t>(v)].first);
    }
    double total = 0.0;
    std::vector<double> probs(static_cast<size_t>(pool));
    for (int64_t v = 0; v < pool; ++v) {
      probs[static_cast<size_t>(v)] =
          std::exp((ranked[static_cast<size_t>(v)].first - max_logit) / temperature);
      total += probs[static_cast<size_t>(v)];
    }
    double u = rng.NextDouble() * total;
    int32_t pick = ranked[static_cast<size_t>(pool - 1)].second;
    for (int64_t v = 0; v < pool; ++v) {
      u -= probs[static_cast<size_t>(v)];
      if (u <= 0.0) {
        pick = ranked[static_cast<size_t>(v)].second;
        break;
      }
    }
    generated.push_back(pick);
    token = pick;
  }
  return generated;
}

void Transformer::RestoreLayerKv(int64_t layer, const Tensor& hidden, const int32_t* positions,
                                 Tensor* k_out, Tensor* v_out) const {
  const ModelConfig& cfg = config();
  CHECK_GE(layer, 0);
  CHECK_LT(layer, cfg.num_layers);
  CHECK_EQ(hidden.rank(), 2);
  CHECK_EQ(hidden.dim(1), cfg.hidden_dim);
  const LayerWeights& lw = weights_->layers[static_cast<size_t>(layer)];
  // The paper's K = W_k * H elides the (cheap, per-row) pre-norm; including it here is
  // required for exactness and is covered by the epsilon term of §3.2's cost analysis.
  Tensor normed({hidden.dim(0), cfg.hidden_dim});
  Normalize(hidden, lw.attn_norm_weight, lw.attn_norm_bias, &normed);
  ProjectKv(lw, normed, positions, k_out, v_out);
}

}  // namespace hcache
