// Request arrival processes used by the serving experiments.
//
// Fig 9 draws session arrivals from a Poisson process (as prior work does); Fig 15
// synthesizes the reuse pattern of long contexts with a Zipfian popularity of varying
// skew (alpha), uniform at alpha == 0.
#ifndef HCACHE_SRC_WORKLOAD_ARRIVAL_H_
#define HCACHE_SRC_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace hcache {

class PoissonArrivals {
 public:
  // `rate` in arrivals per second.
  PoissonArrivals(double rate, uint64_t seed);

  // Absolute time of the next arrival (monotonically increasing).
  double NextArrivalTime();

  // Convenience: the first `n` arrival times.
  std::vector<double> Take(int64_t n);

  double rate() const { return rate_; }

 private:
  double rate_;
  double now_ = 0.0;
  Rng rng_;
};

// Chooses which stored context each incoming request reuses (Fig 15's arrival
// synthesis): rank 0 is the hottest context.
class ZipfianContextChooser {
 public:
  ZipfianContextChooser(int64_t num_contexts, double alpha, uint64_t seed);

  int64_t NextContext();

  int64_t num_contexts() const { return static_cast<int64_t>(zipf_.num_items()); }

 private:
  ZipfianGenerator zipf_;
  Rng rng_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_WORKLOAD_ARRIVAL_H_
