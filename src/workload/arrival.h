// Request arrival processes used by the serving experiments.
//
// Fig 9 draws session arrivals from a Poisson process (as prior work does); Fig 15
// synthesizes the reuse pattern of long contexts with a Zipfian popularity of varying
// skew (alpha), uniform at alpha == 0. The elastic cluster plane additionally needs
// traffic that *breathes*: `NonHomogeneousPoissonArrivals` modulates the rate with a
// diurnal sinusoid plus flash-crowd spikes, sampled by thinning (Lewis & Shedler), so
// autoscaling and failure scenarios run against realistic non-stationary load while
// staying exactly reproducible from a seed.
#ifndef HCACHE_SRC_WORKLOAD_ARRIVAL_H_
#define HCACHE_SRC_WORKLOAD_ARRIVAL_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace hcache {

// Monotone stream of absolute arrival times. Implementations are deterministic
// functions of their seed.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Absolute time of the next arrival (monotonically increasing).
  virtual double NextArrivalTime() = 0;
};

class PoissonArrivals : public ArrivalProcess {
 public:
  // `rate` in arrivals per second.
  PoissonArrivals(double rate, uint64_t seed);

  double NextArrivalTime() override;

  // Convenience: the first `n` arrival times.
  std::vector<double> Take(int64_t n);

  double rate() const { return rate_; }

 private:
  double rate_;
  double now_ = 0.0;
  Rng rng_;
};

// A short-lived traffic spike: while t is in [start, start + duration) the
// instantaneous rate is multiplied by `multiplier` (a product over overlapping
// spikes). Models launch events / reposts hitting a serving fleet.
struct FlashCrowd {
  double start = 0.0;
  double duration = 0.0;
  double multiplier = 1.0;
};

// Rate-shape of a non-stationary day: a sinusoid around the base rate plus flash
// crowds. rate(t) = base * (1 + amplitude * sin(2*pi*t/period + phase)) * spikes(t).
struct DiurnalShape {
  double period_s = 3600.0;
  double amplitude = 0.6;  // in [0, 1): rate swings between base*(1-A) and base*(1+A)
  double phase = 0.0;      // radians; default starts at the mean, rising
  std::vector<FlashCrowd> spikes;

  // Instantaneous rate at time t for the given base rate.
  double RateAt(double base_rate, double t) const;
  // A tight upper bound on RateAt over all t (the thinning envelope).
  double PeakRate(double base_rate) const;
};

// Non-homogeneous Poisson process via thinning: candidate arrivals are drawn from a
// homogeneous process at the envelope rate and accepted with probability
// rate(t)/envelope. Deterministic for a fixed seed; reduces to PoissonArrivals-like
// statistics when amplitude == 0 and no spikes are configured.
class NonHomogeneousPoissonArrivals : public ArrivalProcess {
 public:
  NonHomogeneousPoissonArrivals(double base_rate, const DiurnalShape& shape,
                                uint64_t seed);

  double NextArrivalTime() override;

  double base_rate() const { return base_rate_; }
  const DiurnalShape& shape() const { return shape_; }

 private:
  double base_rate_;
  DiurnalShape shape_;
  double envelope_rate_;
  double now_ = 0.0;
  Rng rng_;
};

// Chooses which stored context each incoming request reuses (Fig 15's arrival
// synthesis): rank 0 is the hottest context.
class ZipfianContextChooser {
 public:
  ZipfianContextChooser(int64_t num_contexts, double alpha, uint64_t seed);

  int64_t NextContext();

  int64_t num_contexts() const { return static_cast<int64_t>(zipf_.num_items()); }

 private:
  ZipfianGenerator zipf_;
  Rng rng_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_WORKLOAD_ARRIVAL_H_
