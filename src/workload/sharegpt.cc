#include "src/workload/sharegpt.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace hcache {

int64_t Conversation::HistoryBefore(size_t i) const {
  CHECK_LE(i, rounds.size());
  int64_t h = 0;
  for (size_t r = 0; r < i; ++r) {
    h += rounds[r].input_tokens + rounds[r].output_tokens;
  }
  return h;
}

int64_t Conversation::TotalTokens() const { return HistoryBefore(rounds.size()); }

ShareGptGenerator::ShareGptGenerator(uint64_t seed, int64_t max_history_tokens)
    : rng_(seed), max_history_tokens_(max_history_tokens) {
  CHECK_GT(max_history_tokens_, 0);
}

int64_t ShareGptGenerator::SampleLogNormalMean(double mean, double sigma, int64_t lo,
                                               int64_t hi) {
  // For LogNormal(mu, sigma): E = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  const double v = rng_.NextLogNormal(mu, sigma);
  return std::clamp(static_cast<int64_t>(std::llround(v)), lo, hi);
}

Conversation ShareGptGenerator::Next() {
  Conversation conv;
  // Round count: log-normal with median ~6 and a heavy tail. With ~425 tokens per
  // round this induces a history CDF whose median lands near the paper's 2.5K.
  const double rounds_mu = std::log(6.0);
  const double rounds_sigma = 0.75;
  const int64_t num_rounds = std::clamp(
      static_cast<int64_t>(std::llround(rng_.NextLogNormal(rounds_mu, rounds_sigma))),
      int64_t{1}, int64_t{38});

  int64_t total = 0;
  for (int64_t r = 0; r < num_rounds; ++r) {
    ConversationRound round;
    round.input_tokens = SampleLogNormalMean(kMeanInputTokens, 0.9, 1, 4096);
    round.output_tokens = SampleLogNormalMean(kMeanOutputTokens, 0.7, 1, 4096);
    if (total + round.input_tokens + round.output_tokens > max_history_tokens_) {
      break;  // Fig 3b truncates accumulated histories at 16K (or the deployment cap)
    }
    total += round.input_tokens + round.output_tokens;
    conv.rounds.push_back(round);
  }
  if (conv.rounds.empty()) {
    conv.rounds.push_back(ConversationRound{64, 256});
  }
  return conv;
}

}  // namespace hcache
