#include "src/workload/leval.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace hcache {

const char* LEvalTaskName(LEvalTask t) {
  switch (t) {
    case LEvalTask::kPaperAssistant:
      return "Paper Assistant";
    case LEvalTask::kGsm100:
      return "GSM-100";
    case LEvalTask::kQuality:
      return "QuALITY";
    case LEvalTask::kMixed:
      return "Mixed";
  }
  return "?";
}

double LEvalGenerator::MeanContext(LEvalTask t) {
  switch (t) {
    case LEvalTask::kPaperAssistant:
      return 10603.5;
    case LEvalTask::kGsm100:
      return 5451.7;
    case LEvalTask::kQuality:
      return 7053.9;
    case LEvalTask::kMixed:
      return 16340.2;
  }
  return 0;
}

double LEvalGenerator::MeanInput(LEvalTask t) {
  switch (t) {
    case LEvalTask::kPaperAssistant:
      return 142.7;
    case LEvalTask::kGsm100:
      return 77.4;
    case LEvalTask::kQuality:
      return 92.4;
    case LEvalTask::kMixed:
      return 44.7;
  }
  return 0;
}

double LEvalGenerator::MeanOutput(LEvalTask t) {
  switch (t) {
    case LEvalTask::kPaperAssistant:
      return 404.8;
    case LEvalTask::kGsm100:
      return 4.3;
    case LEvalTask::kQuality:
      return 19.2;
    case LEvalTask::kMixed:
      return 50.2;
  }
  return 0;
}

LEvalGenerator::LEvalGenerator(uint64_t seed) : rng_(seed) {}

namespace {

int64_t SampleAroundMean(Rng& rng, double mean, double rel_sigma, int64_t lo, int64_t hi) {
  const double sigma = rel_sigma;
  const double mu = std::log(mean) - sigma * sigma / 2.0;
  const double v = rng.NextLogNormal(mu, sigma);
  return std::clamp(static_cast<int64_t>(std::llround(v)), lo, hi);
}

}  // namespace

LongContextRequest LEvalGenerator::Next(LEvalTask task) {
  CHECK(task != LEvalTask::kMixed) << "use MixedTrace() for the mixed workload";
  LongContextRequest r;
  r.task = task;
  // Contexts span the paper's observed 4K..16K range ("history length spans within a
  // large range from 4K to 16K", §6.1.2); instructions/outputs stay short.
  r.context_tokens = SampleAroundMean(rng_, MeanContext(task), 0.35, 512, 16384);
  r.input_tokens = SampleAroundMean(rng_, MeanInput(task), 0.5, 4, 2048);
  r.output_tokens = std::max<int64_t>(1, SampleAroundMean(rng_, MeanOutput(task), 0.5, 1, 2048));
  return r;
}

std::vector<LongContextRequest> LEvalGenerator::MixedTrace(int64_t num_requests) {
  // The mixed trace blends the three profiled sub-tasks with a long-context-heavy
  // remainder so the aggregate mean context approaches Table 1's 16.3K (the 20-task
  // average is dominated by very long sub-tasks).
  std::vector<LongContextRequest> out;
  out.reserve(static_cast<size_t>(num_requests));
  for (int64_t i = 0; i < num_requests; ++i) {
    const double pick = rng_.NextDouble();
    LongContextRequest r;
    if (pick < 0.25) {
      r = Next(LEvalTask::kPaperAssistant);
    } else if (pick < 0.5) {
      r = Next(LEvalTask::kGsm100);
    } else if (pick < 0.75) {
      r = Next(LEvalTask::kQuality);
    } else {
      // Long-context remainder: the 16K+ class sub-tasks, truncated to the serving
      // window.
      r.context_tokens = SampleAroundMean(rng_, 20000, 0.3, 8192, 32768);
      r.input_tokens = SampleAroundMean(rng_, MeanInput(LEvalTask::kMixed), 0.5, 4, 512);
      r.output_tokens = SampleAroundMean(rng_, MeanOutput(LEvalTask::kMixed), 0.5, 1, 512);
    }
    r.task = LEvalTask::kMixed;
    out.push_back(r);
  }
  return out;
}

}  // namespace hcache
