#include "src/workload/arrival.h"

#include <cmath>

#include "src/common/logging.h"

namespace hcache {

PoissonArrivals::PoissonArrivals(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  CHECK_GT(rate, 0.0);
}

double PoissonArrivals::NextArrivalTime() {
  now_ += rng_.NextExponential(rate_);
  return now_;
}

std::vector<double> PoissonArrivals::Take(int64_t n) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    times.push_back(NextArrivalTime());
  }
  return times;
}

double DiurnalShape::RateAt(double base_rate, double t) const {
  double rate = base_rate;
  if (amplitude > 0.0 && period_s > 0.0) {
    rate *= 1.0 + amplitude * std::sin(2.0 * M_PI * t / period_s + phase);
  }
  for (const FlashCrowd& s : spikes) {
    if (t >= s.start && t < s.start + s.duration) {
      rate *= s.multiplier;
    }
  }
  return std::max(rate, 0.0);
}

double DiurnalShape::PeakRate(double base_rate) const {
  double peak = base_rate * (1.0 + std::max(0.0, amplitude));
  // Spikes can overlap; the envelope takes the product of every multiplier > 1 (a
  // loose but safe bound — thinning only needs envelope >= rate(t) everywhere).
  double spike_product = 1.0;
  for (const FlashCrowd& s : spikes) {
    if (s.multiplier > 1.0) {
      spike_product *= s.multiplier;
    }
  }
  return peak * spike_product;
}

NonHomogeneousPoissonArrivals::NonHomogeneousPoissonArrivals(double base_rate,
                                                             const DiurnalShape& shape,
                                                             uint64_t seed)
    : base_rate_(base_rate),
      shape_(shape),
      envelope_rate_(shape.PeakRate(base_rate)),
      rng_(seed) {
  CHECK_GT(base_rate, 0.0);
  CHECK_GE(shape.amplitude, 0.0);
  CHECK_LT(shape.amplitude, 1.0) << "amplitude >= 1 would drive the rate negative";
  CHECK_GT(envelope_rate_, 0.0);
}

double NonHomogeneousPoissonArrivals::NextArrivalTime() {
  // Thinning: propose from the homogeneous envelope, accept with rate(t)/envelope.
  // Each proposal consumes exactly two draws, so the stream is reproducible.
  for (;;) {
    now_ += rng_.NextExponential(envelope_rate_);
    const double accept = shape_.RateAt(base_rate_, now_) / envelope_rate_;
    if (rng_.NextDouble() < accept) {
      return now_;
    }
  }
}

ZipfianContextChooser::ZipfianContextChooser(int64_t num_contexts, double alpha,
                                             uint64_t seed)
    : zipf_(static_cast<uint64_t>(num_contexts), alpha), rng_(seed) {}

int64_t ZipfianContextChooser::NextContext() {
  return static_cast<int64_t>(zipf_.Next(rng_));
}

}  // namespace hcache
