#include "src/workload/arrival.h"

#include "src/common/logging.h"

namespace hcache {

PoissonArrivals::PoissonArrivals(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  CHECK_GT(rate, 0.0);
}

double PoissonArrivals::NextArrivalTime() {
  now_ += rng_.NextExponential(rate_);
  return now_;
}

std::vector<double> PoissonArrivals::Take(int64_t n) {
  std::vector<double> times;
  times.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    times.push_back(NextArrivalTime());
  }
  return times;
}

ZipfianContextChooser::ZipfianContextChooser(int64_t num_contexts, double alpha,
                                             uint64_t seed)
    : zipf_(static_cast<uint64_t>(num_contexts), alpha), rng_(seed) {}

int64_t ZipfianContextChooser::NextContext() {
  return static_cast<int64_t>(zipf_.Next(rng_));
}

}  // namespace hcache
