// Synthetic long-context tasks matching the L-Eval statistics in the paper's Table 1:
//
//   Task             Context   Input   Output
//   Paper Assistant  10603.5   142.7   404.8
//   GSM-100           5451.7    77.4     4.3
//   QuALITY           7053.9    92.4    19.2
//   Mixed (20 tasks) 16340.2    44.7    50.2
//
// The "mixed" workload samples 200 requests across sub-task profiles, as §6.1.2 does.
#ifndef HCACHE_SRC_WORKLOAD_LEVAL_H_
#define HCACHE_SRC_WORKLOAD_LEVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace hcache {

enum class LEvalTask { kPaperAssistant, kGsm100, kQuality, kMixed };

const char* LEvalTaskName(LEvalTask t);

struct LongContextRequest {
  LEvalTask task = LEvalTask::kMixed;
  int64_t context_tokens = 0;  // the reusable long context (document / few-shot bank)
  int64_t input_tokens = 0;    // the user question appended to it
  int64_t output_tokens = 0;   // the answer
};

class LEvalGenerator {
 public:
  explicit LEvalGenerator(uint64_t seed);

  LongContextRequest Next(LEvalTask task);

  // A 200-request sample across sub-tasks — the "Mixed" bar of Fig 10.
  std::vector<LongContextRequest> MixedTrace(int64_t num_requests = 200);

  // Mean statistics per Table 1.
  static double MeanContext(LEvalTask t);
  static double MeanInput(LEvalTask t);
  static double MeanOutput(LEvalTask t);

 private:
  Rng rng_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_WORKLOAD_LEVAL_H_
