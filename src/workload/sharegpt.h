// Synthetic multi-round conversation trace matching the published ShareGPT4 statistics
// the paper reports (§2.3, Fig 3):
//   * mean new-prompt length 66.8 tokens, mean output length 358.8 tokens per round,
//   * accumulated-history CDF with median ~2.5K tokens, truncated at 16K.
//
// Lengths are log-normal (the empirical shape of conversational traces) with parameters
// solved so the means match; round counts follow a log-normal whose induced history CDF
// reproduces the paper's median. Everything is seeded and deterministic.
#ifndef HCACHE_SRC_WORKLOAD_SHAREGPT_H_
#define HCACHE_SRC_WORKLOAD_SHAREGPT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace hcache {

struct ConversationRound {
  int64_t input_tokens = 0;   // the user's new prompt
  int64_t output_tokens = 0;  // the model's response
};

struct Conversation {
  std::vector<ConversationRound> rounds;

  // History length seen by round `i` (tokens of all previous rounds' inputs+outputs).
  int64_t HistoryBefore(size_t i) const;
  int64_t TotalTokens() const;
};

class ShareGptGenerator {
 public:
  // Published trace statistics (paper §2.3).
  static constexpr double kMeanInputTokens = 66.8;
  static constexpr double kMeanOutputTokens = 358.8;
  static constexpr int64_t kMaxHistoryTokens = 16384;  // Fig 3b truncation

  // `max_history_tokens` truncates accumulated conversations (deployments cap the
  // serving context; the published CDF truncates at 16K).
  explicit ShareGptGenerator(uint64_t seed,
                             int64_t max_history_tokens = kMaxHistoryTokens);

  Conversation Next();

 private:
  int64_t SampleLogNormalMean(double mean, double sigma, int64_t lo, int64_t hi);

  Rng rng_;
  int64_t max_history_tokens_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_WORKLOAD_SHAREGPT_H_
