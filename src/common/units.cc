#include "src/common/units.h"

#include <cstdio>

namespace hcache {

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", FormatSeconds(-seconds).c_str());
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

}  // namespace hcache
