#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace hcache {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> uniform double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Debiased modulo via rejection on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextExponential(double lambda) {
  CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::NextNormal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextLogNormal(double mu, double sigma) { return std::exp(NextNormal(mu, sigma)); }

uint64_t Rng::NextPoisson(double mean) {
  CHECK_GE(mean, 0.0);
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for workload synthesis.
  const double v = NextNormal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

Rng Rng::Fork() { return Rng(Next()); }

namespace {

double Zeta(uint64_t n, double alpha) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), alpha);
  }
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t num_items, double alpha)
    : num_items_(num_items), alpha_(alpha) {
  CHECK_GT(num_items, 0u);
  CHECK_GE(alpha, 0.0);
  theta_ = alpha;
  zetan_ = Zeta(num_items, alpha);
  zeta2_ = Zeta(2, alpha);
  if (alpha == 1.0) {
    // eta_ is unused for alpha == 1 (handled via the general branch still works since
    // pow(x, 0) == 1 only matters for alpha != 1); guard the division below.
    eta_ = 0.0;
  } else {
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_items), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  if (alpha_ == 0.0) {
    return rng.NextBounded(num_items_);
  }
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  if (alpha_ == 1.0) {
    // Inverse of the harmonic CDF approximated by log; exact enough for workload skew.
    const double r = std::exp(u * std::log(static_cast<double>(num_items_)));
    const uint64_t rank = static_cast<uint64_t>(r) - 1;
    return rank >= num_items_ ? num_items_ - 1 : rank;
  }
  const double rank_d = static_cast<double>(num_items_) *
                        std::pow(eta_ * u - eta_ + 1.0, 1.0 / (1.0 - theta_));
  uint64_t rank = static_cast<uint64_t>(rank_d);
  return rank >= num_items_ ? num_items_ - 1 : rank;
}

EmpiricalCdfSampler::EmpiricalCdfSampler(std::vector<Knot> knots) : knots_(std::move(knots)) {
  CHECK_GE(knots_.size(), 2u);
  for (size_t i = 1; i < knots_.size(); ++i) {
    CHECK_GT(knots_[i].cdf, knots_[i - 1].cdf);
    CHECK_GE(knots_[i].value, knots_[i - 1].value);
  }
  CHECK_LE(knots_.back().cdf, 1.0 + 1e-9);
}

double EmpiricalCdfSampler::Quantile(double p) const {
  if (p <= knots_.front().cdf) {
    return knots_.front().value;
  }
  if (p >= knots_.back().cdf) {
    return knots_.back().value;
  }
  // Linear scan is fine: knot lists are small (<= a few dozen entries).
  for (size_t i = 1; i < knots_.size(); ++i) {
    if (p <= knots_[i].cdf) {
      const auto& a = knots_[i - 1];
      const auto& b = knots_[i];
      const double t = (p - a.cdf) / (b.cdf - a.cdf);
      return a.value + t * (b.value - a.value);
    }
  }
  return knots_.back().value;
}

double EmpiricalCdfSampler::Sample(Rng& rng) const { return Quantile(rng.NextDouble()); }

}  // namespace hcache
