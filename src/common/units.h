// Unit helpers used across the library.
//
// Conventions:
//   * Time is `double` seconds (simulation clock and measured durations alike).
//   * Sizes are `uint64_t` bytes; the *_KiB/_MiB/_GiB literals build byte counts.
//   * Rates are double bytes/second or double FLOP/second.
#ifndef HCACHE_SRC_COMMON_UNITS_H_
#define HCACHE_SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace hcache {

inline constexpr uint64_t kKiB = 1024ull;
inline constexpr uint64_t kMiB = 1024ull * kKiB;
inline constexpr uint64_t kGiB = 1024ull * kMiB;

// Storage / interconnect vendors quote decimal GB/s; Table 2 of the paper does too.
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

inline constexpr double kTeraFlops = 1e12;

inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kMillisecond = 1e-3;

// Renders a byte count as a short human-readable string ("1.50 GiB", "210 KiB").
std::string FormatBytes(uint64_t bytes);

// Renders a duration in the most natural unit ("1.93 ms", "250 us", "3.2 s").
std::string FormatSeconds(double seconds);

}  // namespace hcache

#endif  // HCACHE_SRC_COMMON_UNITS_H_
