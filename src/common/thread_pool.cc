#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "src/common/logging.h"

namespace hcache {

namespace {

size_t DefaultSharedThreads() {
  if (const char* env = std::getenv("HCACHE_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      return static_cast<size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

std::mutex g_shared_mu;
std::unique_ptr<ThreadPool>& SharedSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) {
    return;
  }
  grain = std::max<int64_t>(grain, 1);
  const int64_t range = end - begin;
  const int64_t chunks = (range + grain - 1) / grain;
  if (chunks <= 1 || workers_.size() <= 1) {
    fn(begin, end);
    return;
  }

  // All participants (pool workers + the caller) pull grain-sized subranges off one
  // atomic cursor. The state is shared_ptr-owned because helper tasks may still be
  // queued — and run as no-ops — after the caller has returned.
  struct State {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    int64_t chunks = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first exception only, guarded by mu
  };
  auto state = std::make_shared<State>();
  state->chunks = chunks;

  auto run_chunks = [state, &fn, begin, end, grain] {
    for (;;) {
      const int64_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->chunks) {
        return;
      }
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) {
          state->error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->chunks) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  // Helper tasks capture the state (not fn) by value so a helper that only gets
  // scheduled after completion exits immediately. fn is only referenced while the
  // caller is still blocked inside this function, so the reference stays valid for
  // every chunk that actually runs.
  const int64_t helpers =
      std::min<int64_t>(chunks - 1, static_cast<int64_t>(workers_.size()));
  for (int64_t i = 0; i < helpers; ++i) {
    Submit(run_chunks);
  }
  run_chunks();  // the caller works too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->chunks;
  });
  if (state->error) {
    std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  std::lock_guard<std::mutex> lock(g_shared_mu);
  auto& slot = SharedSlot();
  if (slot == nullptr) {
    slot = std::make_unique<ThreadPool>(DefaultSharedThreads());
  }
  return *slot;
}

void ThreadPool::ResizeShared(size_t n) {
  CHECK_GT(n, 0u);
  std::lock_guard<std::mutex> lock(g_shared_mu);
  auto& slot = SharedSlot();
  if (slot != nullptr && slot->num_threads() == n) {
    return;
  }
  slot = std::make_unique<ThreadPool>(n);
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace hcache
