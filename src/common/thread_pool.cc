#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace hcache {

ThreadPool::ThreadPool(size_t num_threads) {
  CHECK_GT(num_threads, 0u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!shutting_down_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

}  // namespace hcache
