#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "src/common/logging.h"

namespace hcache {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_valid_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_valid_ = false;
}

double Histogram::Sum() const {
  double s = 0.0;
  for (double v : samples_) {
    s += v;
  }
  return s;
}

double Histogram::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double Histogram::Min() const {
  CHECK(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Histogram::Max() const {
  CHECK(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Histogram::Stddev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double v : samples_) {
    acc += (v - mean) * (v - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void Histogram::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Histogram::Percentile(double p) const {
  CHECK(!samples_.empty());
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 100.0);
  EnsureSorted();
  if (sorted_.size() == 1) {
    return sorted_[0];
  }
  const double idx = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Histogram::Summary(const std::string& unit) const {
  if (samples_.empty()) {
    return "n=0";
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf), "n=%zu mean=%.4g%s p50=%.4g%s p99=%.4g%s max=%.4g%s",
                samples_.size(), Mean(), unit.c_str(), Percentile(50), unit.c_str(),
                Percentile(99), unit.c_str(), Max(), unit.c_str());
  return buf;
}

void RunningStat::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::Variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::Stddev() const { return std::sqrt(Variance()); }

}  // namespace hcache
