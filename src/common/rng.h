// Deterministic random number generation for workloads, weights, and simulations.
//
// All stochastic behaviour in this repository flows through `Rng` so experiments are
// exactly reproducible from a seed. The core generator is xoshiro256** (public domain,
// Blackman & Vigna), which is fast, high quality, and trivially seedable via splitmix64.
//
// On top of the raw generator we provide the samplers the paper's evaluation needs:
//   * Exponential inter-arrival times (Poisson session arrivals, §6.1.1),
//   * Zipfian item popularity (context reuse skew, Fig 15),
//   * Normal / LogNormal (token-length synthesis in src/workload),
//   * Poisson counts.
#ifndef HCACHE_SRC_COMMON_RNG_H_
#define HCACHE_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace hcache {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Exponential with rate lambda (mean 1/lambda). Used for Poisson arrival gaps.
  double NextExponential(double lambda);

  // Standard normal via Box-Muller.
  double NextNormal(double mean = 0.0, double stddev = 1.0);

  // Log-normal: exp(Normal(mu, sigma)). Heavy-tailed token lengths.
  double NextLogNormal(double mu, double sigma);

  // Poisson-distributed count with the given mean (Knuth for small, normal approx for
  // large means).
  uint64_t NextPoisson(double mean);

  // Creates an independent child stream (useful to decorrelate per-module streams
  // deterministically).
  Rng Fork();

 private:
  uint64_t state_[4];
};

// Zipfian distribution over `n` items with exponent `alpha` (alpha==0 is uniform).
// Implements the YCSB-style generator: the harmonic normalization is precomputed once,
// sampling is O(1) using the rejection-free inverse method of Gray et al.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t num_items, double alpha);

  // Returns an item rank in [0, num_items); rank 0 is the most popular item.
  uint64_t Next(Rng& rng);

  uint64_t num_items() const { return num_items_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t num_items_;
  double alpha_;
  double zetan_;   // generalized harmonic number H_{n,alpha}
  double theta_;   // cached alpha
  double zeta2_;   // H_{2,alpha}
  double eta_;
};

// Samples from an empirical CDF given as sorted (value, cumulative_probability) knots
// with linear interpolation between knots. Used to match published trace length CDFs.
class EmpiricalCdfSampler {
 public:
  struct Knot {
    double value;
    double cdf;  // in (0, 1], strictly increasing across knots
  };

  explicit EmpiricalCdfSampler(std::vector<Knot> knots);

  double Sample(Rng& rng) const;

  // Inverse-CDF lookup at probability p in [0,1].
  double Quantile(double p) const;

 private:
  std::vector<Knot> knots_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_COMMON_RNG_H_
