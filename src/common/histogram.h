// Streaming statistics used for TTFT / TBT / restoration-speed reporting.
//
// `Histogram` stores every sample (experiments here are small enough for that) and
// provides exact percentiles; `RunningStat` is a constant-space Welford accumulator for
// hot paths where only mean/stddev are needed.
#ifndef HCACHE_SRC_COMMON_HISTOGRAM_H_
#define HCACHE_SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hcache {

class Histogram {
 public:
  void Add(double value);
  void Merge(const Histogram& other);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  double Sum() const;
  double Stddev() const;

  // Exact percentile with linear interpolation; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double P99() const { return Percentile(99.0); }

  // One-line summary, e.g. "n=120 mean=42.1ms p50=40.2ms p99=88.0ms".
  std::string Summary(const std::string& unit = "") const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily on first percentile query after an Add.
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

class RunningStat {
 public:
  void Add(double value);

  size_t count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const;
  double Stddev() const;
  double Min() const { return min_; }
  double Max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_COMMON_HISTOGRAM_H_
