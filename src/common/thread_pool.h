// Fixed-size worker pool used by the two-stage state saver (§4.2.2 of the paper uses 8
// background host threads to assemble and flush chunks), by the restore pipeline to
// overlap chunk reads with projection, and — through ParallelFor — by every compute
// kernel in the functional plane (GEMM, RoPE, softmax, attention).
#ifndef HCACHE_SRC_COMMON_THREAD_POOL_H_
#define HCACHE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcache {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks run FIFO across workers. Must not be called after the pool
  // has been destroyed; safe from multiple producer threads.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Drain();

  // Work-sharing loop: invokes `fn(lo, hi)` over disjoint subranges that exactly cover
  // [begin, end), each at most `grain` long and aligned to multiples of `grain` from
  // `begin`. Subranges run concurrently on the pool workers AND the calling thread
  // (which also consumes subranges, so nested ParallelFor on the same pool cannot
  // deadlock). Returns once every subrange has finished. An empty range returns
  // immediately without invoking `fn`; a range that fits in one grain (or a 1-thread
  // pool) runs fn(begin, end) inline on the caller. The first exception thrown by `fn`
  // is rethrown on the caller after all subranges complete; worker threads and Drain()
  // are unaffected.
  //
  // Determinism: the subrange boundaries depend only on (begin, end, grain) — never on
  // the thread count or scheduling — so kernels whose per-element reduction order is
  // independent of the partitioning produce bit-identical results at any thread count.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  size_t num_threads() const { return workers_.size(); }
  size_t pending() const;

  // Process-wide pool for compute kernels, sized from HCACHE_NUM_THREADS (falling back
  // to std::thread::hardware_concurrency). Constructed on first use.
  static ThreadPool& Shared();

  // Rebuilds the shared pool with `n` threads (bench/test hook for measuring scaling
  // and for serial-vs-parallel bit-exactness checks). Must not race with kernels that
  // are concurrently using the shared pool.
  static void ResizeShared(size_t n);

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

// Shorthand used by the tensor/model kernels: work-share [begin, end) on the shared
// pool. See ThreadPool::ParallelFor for the contract. A range that fits in one grain
// runs inline without touching the shared pool (no mutex, no std::function), keeping
// the decode path (1-row tensors) as cheap as the old serial loops.
template <typename Fn>
inline void ParallelFor(int64_t begin, int64_t end, int64_t grain, Fn&& fn) {
  if (end <= begin) {
    return;
  }
  if (end - begin <= grain) {
    fn(begin, end);
    return;
  }
  ThreadPool::Shared().ParallelFor(begin, end, grain, fn);
}

}  // namespace hcache

#endif  // HCACHE_SRC_COMMON_THREAD_POOL_H_
