// Fixed-size worker pool used by the two-stage state saver (§4.2.2 of the paper uses 8
// background host threads to assemble and flush chunks) and by tests that exercise
// concurrent chunk-store access.
#ifndef HCACHE_SRC_COMMON_THREAD_POOL_H_
#define HCACHE_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hcache {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks run FIFO across workers. Must not be called after the pool
  // has been destroyed; safe from multiple producer threads.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Drain();

  size_t num_threads() const { return workers_.size(); }
  size_t pending() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_COMMON_THREAD_POOL_H_
