// Minimal logging and assertion macros in the spirit of glog/Fuchsia FX_CHECK.
//
// CHECK(cond)        — aborts with a message when `cond` is false (always on).
// CHECK_EQ/NE/...    — binary comparison variants that print both operands.
// DCHECK(cond)       — CHECK in debug builds, no-op in NDEBUG builds.
// LOG(INFO|WARN|ERROR) — line-buffered logging to stderr with severity tags.
//
// These are intentionally allocation-light: a failed CHECK builds one ostringstream and
// aborts. They are used throughout the library instead of exceptions (the public API is
// exception-free, matching the Google/Fuchsia style the project follows).
#ifndef HCACHE_SRC_COMMON_LOGGING_H_
#define HCACHE_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace hcache {

enum class LogSeverity { kInfo, kWarn, kError, kFatal };

namespace log_internal {

inline std::string_view SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarn:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

// Accumulates one log line and emits it (and possibly aborts) in the destructor.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
    stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line << "] ";
  }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str() << std::flush;
    if (severity_ == LogSeverity::kFatal) {
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a DCHECK is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace log_internal
}  // namespace hcache

#define HCACHE_LOG_INFO \
  ::hcache::log_internal::LogMessage(::hcache::LogSeverity::kInfo, __FILE__, __LINE__).stream()
#define HCACHE_LOG_WARN \
  ::hcache::log_internal::LogMessage(::hcache::LogSeverity::kWarn, __FILE__, __LINE__).stream()
#define HCACHE_LOG_ERROR \
  ::hcache::log_internal::LogMessage(::hcache::LogSeverity::kError, __FILE__, __LINE__).stream()
#define HCACHE_LOG_FATAL \
  ::hcache::log_internal::LogMessage(::hcache::LogSeverity::kFatal, __FILE__, __LINE__).stream()

#define LOG_INFO HCACHE_LOG_INFO
#define LOG_WARN HCACHE_LOG_WARN
#define LOG_ERROR HCACHE_LOG_ERROR

#define CHECK(cond)    \
  if (!(cond)) HCACHE_LOG_FATAL << "CHECK failed: " #cond " "

#define HCACHE_CHECK_OP(lhs, rhs, op)                                                  \
  if (!((lhs)op(rhs)))                                                                 \
  HCACHE_LOG_FATAL << "CHECK failed: " #lhs " " #op " " #rhs " (" << (lhs) << " vs " \
                   << (rhs) << ") "

#define CHECK_EQ(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, ==)
#define CHECK_NE(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, !=)
#define CHECK_LT(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, <)
#define CHECK_LE(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, <=)
#define CHECK_GT(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, >)
#define CHECK_GE(lhs, rhs) HCACHE_CHECK_OP(lhs, rhs, >=)

#ifdef NDEBUG
#define DCHECK(cond) \
  if (false) ::hcache::log_internal::NullStream()
#else
#define DCHECK(cond) CHECK(cond)
#endif

#endif  // HCACHE_SRC_COMMON_LOGGING_H_
