#include "src/tensor/gemm.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/thread_pool.h"

namespace hcache {

namespace {

// BLIS-style cache blocking: a kKc x kNc B-panel (~256 KiB) stays L2-resident while a
// kMc x kKc A-block (~64 KiB) streams through L1. The register tile is kMr x kNr
// (4 x 16 floats = one 4x16 accumulator block the compiler keeps in vector registers).
constexpr int64_t kMc = 64;
constexpr int64_t kKc = 256;
constexpr int64_t kNc = 256;
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

// Below this many multiply-adds, skip the shared pool entirely — decode-phase matmuls
// (m == 1) are latency-sensitive and the packing + dispatch overhead dominates.
constexpr int64_t kParallelWorkThreshold = 1 << 16;

constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

// Packs the mc x kc block of A starting at `a` (row-major, leading dimension lda) into
// kMr-row strips: ap[strip][p * kMr + r] = A[strip * kMr + r][p]. Rows past mc are
// zero-filled so the microkernel always runs a full kMr x kNr tile; the padded rows'
// outputs are simply never stored.
void PackA(const float* a, int64_t lda, int64_t mc, int64_t kc, float* ap) {
  for (int64_t i0 = 0; i0 < mc; i0 += kMr) {
    const int64_t rows = std::min(kMr, mc - i0);
    for (int64_t p = 0; p < kc; ++p) {
      for (int64_t r = 0; r < rows; ++r) {
        ap[p * kMr + r] = a[(i0 + r) * lda + p];
      }
      for (int64_t r = rows; r < kMr; ++r) {
        ap[p * kMr + r] = 0.0f;
      }
    }
    ap += kc * kMr;
  }
}

// Packs the kc x nc block of op(B) with top-left element (p0, j0) into kNr-column
// strips: bp[strip][p * kNr + j] = op(B)[p0 + p][j0 + strip * kNr + j]. For GemmNN,
// op(B) = B is row-major [k, n] (ldb == n); for GemmNT, op(B) = B^T where B is
// row-major [n, k] (ldb == k). Columns past nc are zero-filled.
template <bool kTransposed>
void PackB(const float* b, int64_t ldb, int64_t p0, int64_t j0, int64_t kc, int64_t nc,
           float* bp) {
  for (int64_t jc = 0; jc < nc; jc += kNr) {
    const int64_t cols = std::min(kNr, nc - jc);
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = bp + p * kNr;
      if constexpr (kTransposed) {
        for (int64_t j = 0; j < cols; ++j) {
          dst[j] = b[(j0 + jc + j) * ldb + (p0 + p)];
        }
      } else {
        const float* src = b + (p0 + p) * ldb + j0 + jc;
        for (int64_t j = 0; j < cols; ++j) {
          dst[j] = src[j];
        }
      }
      for (int64_t j = cols; j < kNr; ++j) {
        dst[j] = 0.0f;
      }
    }
    bp += kc * kNr;
  }
}

// Register-tiled inner kernel: accumulates a full kMr x kNr tile over kc in local
// accumulators, then stores the mr x nr valid region. The k-loop body is one
// fixed-trip-count j-loop with the four A rows unrolled by hand — the shape GCC's
// vectorizer reliably turns into four independent fma streams over kNr lanes.
// `assign` overwrites C (first k-block of a non-accumulating GEMM); otherwise the tile
// sum is added — so per element C[i][j] receives its k-partial sums in a fixed order
// that depends only on the k blocking, never on the m/n partitioning or thread count.
static_assert(kMr == 4, "the microkernel unrolls up to four A rows");

// MR is the number of live A rows in the tile (1..kMr); rows past MR are the zero
// padding PackA added and their accumulators are never materialized, so a 1-row GEMM
// (decode, GEMV shape) does 1/4 of the tile work. Each surviving lane's chain
// `acc_r[j] += a_r * b_j` is textually identical in every instantiation, keeping the
// result bit-independent of which MR the tile geometry selects.
template <int MR>
void MicroKernelImpl(const float* ap, const float* bp, int64_t kc, float* c, int64_t ldc,
                     int64_t mr, int64_t nr, bool assign) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* a_col = ap + p * kMr;
    const float* b_row = bp + p * kNr;
    const float a0 = a_col[0];
    const float a1 = MR > 1 ? a_col[1] : 0.0f;
    const float a2 = MR > 2 ? a_col[2] : 0.0f;
    const float a3 = MR > 3 ? a_col[3] : 0.0f;
    for (int64_t j = 0; j < kNr; ++j) {
      const float bj = b_row[j];
      acc0[j] += a0 * bj;
      if constexpr (MR > 1) acc1[j] += a1 * bj;
      if constexpr (MR > 2) acc2[j] += a2 * bj;
      if constexpr (MR > 3) acc3[j] += a3 * bj;
    }
  }
  float* const rows[kMr] = {acc0, acc1, acc2, acc3};
  if (nr == kNr) {  // full-width tile: fixed-bound stores
    for (int64_t r = 0; r < mr; ++r) {
      float* c_row = c + r * ldc;
      const float* acc = rows[r];
      if (assign) {
        for (int64_t j = 0; j < kNr; ++j) {
          c_row[j] = acc[j];
        }
      } else {
        for (int64_t j = 0; j < kNr; ++j) {
          c_row[j] += acc[j];
        }
      }
    }
    return;
  }
  for (int64_t r = 0; r < mr; ++r) {
    float* c_row = c + r * ldc;
    const float* acc = rows[r];
    if (assign) {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] = acc[j];
      }
    } else {
      for (int64_t j = 0; j < nr; ++j) {
        c_row[j] += acc[j];
      }
    }
  }
}

void MicroKernel(const float* ap, const float* bp, int64_t kc, float* c, int64_t ldc,
                 int64_t mr, int64_t nr, bool assign) {
  switch (mr) {
    case 1: MicroKernelImpl<1>(ap, bp, kc, c, ldc, mr, nr, assign); break;
    case 2: MicroKernelImpl<2>(ap, bp, kc, c, ldc, mr, nr, assign); break;
    case 3: MicroKernelImpl<3>(ap, bp, kc, c, ldc, mr, nr, assign); break;
    default: MicroKernelImpl<4>(ap, bp, kc, c, ldc, mr, nr, assign); break;
  }
}

// Computes rows [r0, r1) x cols [c0, c1) of C = A * op(B) (+ C when accumulate) with
// packed panels, serially. Each output element's reduction runs over k in kKc blocks
// in ascending order with a fixed intra-block order, so results are bitwise identical
// no matter how the row/column ranges are partitioned across calls.
template <bool kTransposed>
void GemmSlab(const float* a, const float* b, float* c, int64_t k, int64_t ldb,
              int64_t ldc, int64_t r0, int64_t r1, int64_t c0, int64_t c1,
              bool accumulate) {
  thread_local std::vector<float> a_pack;
  thread_local std::vector<float> b_pack;
  a_pack.resize(static_cast<size_t>(CeilDiv(kMc, kMr) * kMr * kKc));
  b_pack.resize(static_cast<size_t>(CeilDiv(kNc, kNr) * kNr * kKc));

  for (int64_t jc = c0; jc < c1; jc += kNc) {
    const int64_t nc = std::min(kNc, c1 - jc);
    for (int64_t pc = 0; pc < k; pc += kKc) {
      const int64_t kc = std::min(kKc, k - pc);
      PackB<kTransposed>(b, ldb, pc, jc, kc, nc, b_pack.data());
      const bool assign = !accumulate && pc == 0;
      for (int64_t ic = r0; ic < r1; ic += kMc) {
        const int64_t mc = std::min(kMc, r1 - ic);
        PackA(a + ic * k + pc, k, mc, kc, a_pack.data());
        for (int64_t jr = 0; jr < nc; jr += kNr) {
          const float* bp = b_pack.data() + (jr / kNr) * kc * kNr;
          for (int64_t ir = 0; ir < mc; ir += kMr) {
            MicroKernel(a_pack.data() + (ir / kMr) * kc * kMr, bp, kc,
                        c + (ic + ir) * ldc + jc + jr, ldc, std::min(kMr, mc - ir),
                        std::min(kNr, nc - jr), assign);
          }
        }
      }
    }
  }
}

// Shared driver: picks the parallel dimension (rows vs columns, whichever has more
// cache blocks) and work-shares grain-aligned slabs on the shared pool. The slab
// boundaries never affect per-element reduction order, so any thread count produces
// bit-identical output.
template <bool kTransposed>
void GemmDriver(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
                bool accumulate) {
  if (m <= 0 || n <= 0) {
    return;
  }
  const int64_t ldb = kTransposed ? k : n;
  if (k <= 0) {
    if (!accumulate) {
      std::memset(c, 0, static_cast<size_t>(m) * static_cast<size_t>(n) * sizeof(float));
    }
    return;
  }
  if (m * n * k < kParallelWorkThreshold) {
    GemmSlab<kTransposed>(a, b, c, k, ldb, n, 0, m, 0, n, accumulate);
    return;
  }
  if (CeilDiv(m, kMc) >= CeilDiv(n, kNc)) {
    ParallelFor(0, m, kMc, [&](int64_t r0, int64_t r1) {
      GemmSlab<kTransposed>(a, b, c, k, ldb, n, r0, r1, 0, n, accumulate);
    });
  } else {
    ParallelFor(0, n, kNc, [&](int64_t c0, int64_t c1) {
      GemmSlab<kTransposed>(a, b, c, k, ldb, n, 0, m, c0, c1, accumulate);
    });
  }
}

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  GemmDriver<false>(a, b, c, m, k, n, accumulate);
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  GemmDriver<true>(a, b, c, m, k, n, accumulate);
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), 2);
  CHECK_EQ(b.rank(), 2);
  CHECK_EQ(a.dim(1), b.dim(0));
  Tensor c({a.dim(0), b.dim(1)});
  GemmNN(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor MatMulTransposedB(const Tensor& x, const Tensor& w) {
  CHECK_EQ(x.rank(), 2);
  CHECK_EQ(w.rank(), 2);
  CHECK_EQ(x.dim(1), w.dim(1));
  Tensor c({x.dim(0), w.dim(0)});
  GemmNT(x.data(), w.data(), c.data(), x.dim(0), x.dim(1), w.dim(0));
  return c;
}

}  // namespace hcache
