#include "src/tensor/gemm.h"

#include <algorithm>
#include <cstring>

namespace hcache {

namespace {

// Block sizes chosen so one A-panel + B-panel fit in L1/L2 on typical x86 cores.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 256;

}  // namespace

void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  if (!accumulate) {
    std::memset(c, 0, static_cast<size_t>(m) * static_cast<size_t>(n) * sizeof(float));
  }
  for (int64_t i0 = 0; i0 < m; i0 += kBlockM) {
    const int64_t i_end = std::min(i0 + kBlockM, m);
    for (int64_t p0 = 0; p0 < k; p0 += kBlockK) {
      const int64_t p_end = std::min(p0 + kBlockK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const int64_t j_end = std::min(j0 + kBlockN, n);
        for (int64_t i = i0; i < i_end; ++i) {
          const float* a_row = a + i * k;
          float* c_row = c + i * n;
          for (int64_t p = p0; p < p_end; ++p) {
            const float a_ip = a_row[p];
            const float* b_row = b + p * n;
            for (int64_t j = j0; j < j_end; ++j) {
              c_row[j] += a_ip * b_row[j];
            }
          }
        }
      }
    }
  }
}

void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate) {
  // Dot-product formulation: rows of A against rows of B. Both operands stream
  // sequentially, so no packing is needed for the sizes used here.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = accumulate ? c_row[j] : 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        acc += a_row[p] * b_row[p];
      }
      c_row[j] = acc;
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rank(), 2);
  CHECK_EQ(b.rank(), 2);
  CHECK_EQ(a.dim(1), b.dim(0));
  Tensor c({a.dim(0), b.dim(1)});
  GemmNN(a.data(), b.data(), c.data(), a.dim(0), a.dim(1), b.dim(1));
  return c;
}

Tensor MatMulTransposedB(const Tensor& x, const Tensor& w) {
  CHECK_EQ(x.rank(), 2);
  CHECK_EQ(w.rank(), 2);
  CHECK_EQ(x.dim(1), w.dim(1));
  Tensor c({x.dim(0), w.dim(0)});
  GemmNT(x.data(), w.data(), c.data(), x.dim(0), x.dim(1), w.dim(0));
  return c;
}

}  // namespace hcache
