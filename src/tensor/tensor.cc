#include "src/tensor/tensor.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace hcache {

namespace {

int64_t ComputeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  numel_ = ComputeNumel(shape_);
  data_.assign(static_cast<size_t>(numel_), 0.0f);
}

Tensor Tensor::Clone() const {
  Tensor t;
  t.shape_ = shape_;
  t.data_ = data_;
  t.numel_ = numel_;
  return t;
}

Tensor Tensor::FromData(std::vector<int64_t> shape, std::vector<float> data) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = ComputeNumel(t.shape_);
  CHECK_EQ(static_cast<size_t>(t.numel_), data.size());
  t.data_ = std::move(data);
  return t;
}

int64_t Tensor::dim(int64_t i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, rank());
  return shape_[static_cast<size_t>(i)];
}

void Tensor::Reshape(std::vector<int64_t> new_shape) {
  CHECK_EQ(ComputeNumel(new_shape), numel_);
  shape_ = std::move(new_shape);
}

void Tensor::Fill(float value) {
  for (auto& v : data_) {
    v = value;
  }
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    os << (i ? ", " : "") << shape_[i];
  }
  os << "]";
  return os.str();
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CHECK(a.shape() == b.shape());
  float max_diff = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.at(i) - b.at(i)));
  }
  return max_diff;
}

bool Tensor::BitwiseEqual(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  return std::memcmp(a.data(), b.data(), static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

}  // namespace hcache
