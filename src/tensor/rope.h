// Rotary position embedding (RoPE, Su et al.).
//
// HCache-relevant detail (§5 of the paper): the KV projection from hidden states yields
// *pre-rotation* keys, so restoration must re-apply RoPE with each token's original
// absolute position. ApplyRope therefore takes an explicit per-token position array
// instead of assuming positions 0..n-1 — the restoration path passes the historical
// positions, and bit-exactness versus the original forward pass follows from using the
// identical kernel in both places.
#ifndef HCACHE_SRC_TENSOR_ROPE_H_
#define HCACHE_SRC_TENSOR_ROPE_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace hcache {

// Rotates `x` in place. x is [num_tokens, num_heads * head_dim]; positions has
// num_tokens entries. Pairs (x[2i], x[2i+1]) within each head are rotated by
// pos * theta^(-2i/head_dim). `theta_base` is 10000 for Llama-family models.
void ApplyRope(Tensor& x, const int32_t* positions, int64_t num_heads, int64_t head_dim,
               float theta_base = 10000.0f);

// Convenience for contiguous positions [start, start + num_tokens).
void ApplyRopeContiguous(Tensor& x, int32_t start_pos, int64_t num_heads, int64_t head_dim,
                         float theta_base = 10000.0f);

}  // namespace hcache

#endif  // HCACHE_SRC_TENSOR_ROPE_H_
