#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"

namespace hcache {

namespace {

// Rows per ParallelFor subrange for the row-wise ops, sized so a subrange carries at
// least a few thousand elements of work regardless of row width. Every row is computed
// entirely by one thread in the serial order, so partitioning never changes a bit.
int64_t RowGrain(int64_t row_width) {
  return std::max<int64_t>(1, 4096 / std::max<int64_t>(row_width, 1));
}

// Elements per subrange for the flat element-wise ops.
constexpr int64_t kElemGrain = 1 << 14;

}  // namespace

void SoftmaxRow(float* row, int64_t n) {
  if (n <= 0) {
    return;
  }
  float max_v = row[0];
  for (int64_t i = 1; i < n; ++i) {
    max_v = std::max(max_v, row[i]);
  }
  float sum = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    row[i] = std::exp(row[i] - max_v);
    sum += row[i];
  }
  const float inv = 1.0f / sum;
  for (int64_t i = 0; i < n; ++i) {
    row[i] *= inv;
  }
}

void SoftmaxLastDim(Tensor& t) {
  CHECK_EQ(t.rank(), 2);
  const int64_t cols = t.dim(1);
  ParallelFor(0, t.dim(0), RowGrain(cols), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      SoftmaxRow(t.row(r), cols);
    }
  });
}

void RmsNorm(const Tensor& x, const float* weight, float eps, Tensor& out) {
  CHECK_EQ(x.rank(), 2);
  CHECK(x.shape() == out.shape());
  const int64_t dim = x.dim(1);
  ParallelFor(0, x.dim(0), RowGrain(dim), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* in_row = x.row(r);
      float* out_row = out.row(r);
      double ssq = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        ssq += static_cast<double>(in_row[i]) * in_row[i];
      }
      const float scale =
          1.0f / std::sqrt(static_cast<float>(ssq / static_cast<double>(dim)) + eps);
      for (int64_t i = 0; i < dim; ++i) {
        out_row[i] = in_row[i] * scale * weight[i];
      }
    }
  });
}

void LayerNorm(const Tensor& x, const float* weight, const float* bias, float eps,
               Tensor& out) {
  CHECK_EQ(x.rank(), 2);
  CHECK(x.shape() == out.shape());
  const int64_t dim = x.dim(1);
  ParallelFor(0, x.dim(0), RowGrain(dim), [&](int64_t r0, int64_t r1) {
    for (int64_t r = r0; r < r1; ++r) {
      const float* in_row = x.row(r);
      float* out_row = out.row(r);
      double mean = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        mean += in_row[i];
      }
      mean /= static_cast<double>(dim);
      double var = 0.0;
      for (int64_t i = 0; i < dim; ++i) {
        const double d = in_row[i] - mean;
        var += d * d;
      }
      var /= static_cast<double>(dim);
      const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      for (int64_t i = 0; i < dim; ++i) {
        out_row[i] = (in_row[i] - static_cast<float>(mean)) * inv * weight[i] + bias[i];
      }
    }
  });
}

void SiluInPlace(Tensor& t) {
  ParallelFor(0, t.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float x = t.at(i);
      t.at(i) = x / (1.0f + std::exp(-x));
    }
  });
}

void GeluInPlace(Tensor& t) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  ParallelFor(0, t.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const float x = t.at(i);
      const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
      t.at(i) = 0.5f * x * (1.0f + std::tanh(inner));
    }
  });
}

void ReluInPlace(Tensor& t) {
  ParallelFor(0, t.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      t.at(i) = std::max(0.0f, t.at(i));
    }
  });
}

void AddInPlace(Tensor& out, const Tensor& a) {
  CHECK(out.shape() == a.shape());
  ParallelFor(0, out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out.at(i) += a.at(i);
    }
  });
}

void MulInPlace(Tensor& out, const Tensor& a) {
  CHECK(out.shape() == a.shape());
  ParallelFor(0, out.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      out.at(i) *= a.at(i);
    }
  });
}

}  // namespace hcache
