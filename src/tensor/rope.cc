#include "src/tensor/rope.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "src/common/thread_pool.h"

namespace hcache {

namespace {

// Tokens per ParallelFor subrange: each token costs num_heads * head_dim trig ops, so
// a handful of tokens is already enough work to amortize dispatch.
constexpr int64_t kRopeGrainTokens = 8;

void RopeRow(float* row, float pos, int64_t num_heads, int64_t head_dim, int64_t half,
             float theta_base) {
  for (int64_t h = 0; h < num_heads; ++h) {
    float* head = row + h * head_dim;
    for (int64_t i = 0; i < half; ++i) {
      const float freq =
          std::pow(theta_base, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
      const float angle = pos * freq;
      const float cos_a = std::cos(angle);
      const float sin_a = std::sin(angle);
      const float a = head[2 * i];
      const float b = head[2 * i + 1];
      head[2 * i] = a * cos_a - b * sin_a;
      head[2 * i + 1] = a * sin_a + b * cos_a;
    }
  }
}

}  // namespace

void ApplyRope(Tensor& x, const int32_t* positions, int64_t num_heads, int64_t head_dim,
               float theta_base) {
  CHECK_EQ(x.rank(), 2);
  CHECK_EQ(x.dim(1), num_heads * head_dim);
  CHECK_EQ(head_dim % 2, 0);
  const int64_t half = head_dim / 2;
  // Rows are independent (each token's rotation touches only its own row), so the
  // token partitioning cannot change any result bit.
  ParallelFor(0, x.dim(0), kRopeGrainTokens, [&](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      RopeRow(x.row(t), static_cast<float>(positions[t]), num_heads, head_dim, half,
              theta_base);
    }
  });
}

void ApplyRopeContiguous(Tensor& x, int32_t start_pos, int64_t num_heads, int64_t head_dim,
                         float theta_base) {
  std::vector<int32_t> positions(static_cast<size_t>(x.dim(0)));
  std::iota(positions.begin(), positions.end(), start_pos);
  ApplyRope(x, positions.data(), num_heads, head_dim, theta_base);
}

}  // namespace hcache
