#include "src/tensor/rope.h"

#include <cmath>
#include <numeric>
#include <vector>

namespace hcache {

void ApplyRope(Tensor& x, const int32_t* positions, int64_t num_heads, int64_t head_dim,
               float theta_base) {
  CHECK_EQ(x.rank(), 2);
  CHECK_EQ(x.dim(1), num_heads * head_dim);
  CHECK_EQ(head_dim % 2, 0);
  const int64_t half = head_dim / 2;
  for (int64_t t = 0; t < x.dim(0); ++t) {
    float* row = x.row(t);
    const float pos = static_cast<float>(positions[t]);
    for (int64_t h = 0; h < num_heads; ++h) {
      float* head = row + h * head_dim;
      for (int64_t i = 0; i < half; ++i) {
        const float freq =
            std::pow(theta_base, -2.0f * static_cast<float>(i) / static_cast<float>(head_dim));
        const float angle = pos * freq;
        const float cos_a = std::cos(angle);
        const float sin_a = std::sin(angle);
        const float a = head[2 * i];
        const float b = head[2 * i + 1];
        head[2 * i] = a * cos_a - b * sin_a;
        head[2 * i + 1] = a * sin_a + b * cos_a;
      }
    }
  }
}

void ApplyRopeContiguous(Tensor& x, int32_t start_pos, int64_t num_heads, int64_t head_dim,
                         float theta_base) {
  std::vector<int32_t> positions(static_cast<size_t>(x.dim(0)));
  std::iota(positions.begin(), positions.end(), start_pos);
  ApplyRope(x, positions.data(), num_heads, head_dim, theta_base);
}

}  // namespace hcache
