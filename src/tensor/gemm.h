// Dense matrix multiplication kernels.
//
// The transformer stores weight matrices as [out_features, in_features] (the layout
// used by Llama/OPT checkpoints), so the projection of activations X [m, in] is
// X * W^T — provided here as GemmNT. Plain GemmNN covers attention score/value matmuls.
//
// The kernels are cache-blocked scalar loops that GCC vectorizes; they exist to make
// the functional plane *real*, not to compete with BLAS. Determinism matters more than
// speed: a fixed loop order guarantees bit-identical results for identical inputs,
// which the lossless-restoration tests rely on.
#ifndef HCACHE_SRC_TENSOR_GEMM_H_
#define HCACHE_SRC_TENSOR_GEMM_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace hcache {

// C[m,n] = A[m,k] * B[k,n]  (+ C when accumulate).
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

// C[m,n] = A[m,k] * B[n,k]^T  (+ C when accumulate). B is row-major [n, k].
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k, int64_t n,
            bool accumulate = false);

// Tensor conveniences (shapes are checked).
Tensor MatMul(const Tensor& a, const Tensor& b);               // [m,k]x[k,n]
Tensor MatMulTransposedB(const Tensor& x, const Tensor& w);    // [m,k]x[n,k]^T

// FLOP count of a GEMM under the paper's convention (one multiply-add = 2 FLOPs).
constexpr double GemmFlops(int64_t m, int64_t k, int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
}

}  // namespace hcache

#endif  // HCACHE_SRC_TENSOR_GEMM_H_
