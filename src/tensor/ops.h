// Elementwise / reduction kernels for the transformer forward pass.
//
// These cover both model families the paper evaluates:
//   * Llama2 uses RMSNorm + SwiGLU FFN,
//   * OPT uses LayerNorm + GELU(ReLU in some variants) FFN.
#ifndef HCACHE_SRC_TENSOR_OPS_H_
#define HCACHE_SRC_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/tensor.h"

namespace hcache {

// In-place numerically-stable softmax over the last `n` entries of `row`.
void SoftmaxRow(float* row, int64_t n);

// Softmax over the last dimension of a rank-2 tensor, row by row.
void SoftmaxLastDim(Tensor& t);

// out[i] = x[i] * rsqrt(mean(x^2) + eps) * weight[i], per row of x [tokens, dim].
void RmsNorm(const Tensor& x, const float* weight, float eps, Tensor& out);

// Classic LayerNorm with learned scale+bias, per row of x [tokens, dim].
void LayerNorm(const Tensor& x, const float* weight, const float* bias, float eps,
               Tensor& out);

// SiLU (x * sigmoid(x)), in place.
void SiluInPlace(Tensor& t);

// Tanh-approximated GELU, in place.
void GeluInPlace(Tensor& t);

// ReLU, in place.
void ReluInPlace(Tensor& t);

// out[i] += a[i].
void AddInPlace(Tensor& out, const Tensor& a);

// out[i] *= a[i] (used by SwiGLU's gate).
void MulInPlace(Tensor& out, const Tensor& a);

}  // namespace hcache

#endif  // HCACHE_SRC_TENSOR_OPS_H_
