// A small dense FP32 tensor type, sufficient for a real transformer forward pass.
//
// Design notes:
//   * Row-major, owning, contiguous storage. No strided views: every op in this
//     codebase works on contiguous data, which keeps kernels simple and fast.
//   * Rank <= 4 in practice (e.g. [tokens, hidden] activations, [heads, t, t] scores).
//   * Copy is explicit via Clone() to keep accidental O(n) copies out of hot loops;
//     move is cheap and implicit.
//   * All computation in the functional plane is FP32. The performance plane (src/sim)
//     models FP16 sizes analytically; mixing the two is never required.
#ifndef HCACHE_SRC_TENSOR_TENSOR_H_
#define HCACHE_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace hcache {

class Tensor {
 public:
  Tensor() = default;

  // Allocates a zero-initialized tensor with the given shape.
  explicit Tensor(std::vector<int64_t> shape);
  Tensor(std::initializer_list<int64_t> shape) : Tensor(std::vector<int64_t>(shape)) {}

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor&) = delete;
  Tensor& operator=(const Tensor&) = delete;

  Tensor Clone() const;

  static Tensor FromData(std::vector<int64_t> shape, std::vector<float> data);

  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim(int64_t i) const;
  int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  // Flat element access.
  float& at(int64_t i) {
    DCHECK(i >= 0 && i < numel_);
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    DCHECK(i >= 0 && i < numel_);
    return data_[static_cast<size_t>(i)];
  }

  // 2-D element access (requires rank()==2).
  float& at(int64_t r, int64_t c) {
    DCHECK(rank() == 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(int64_t r, int64_t c) const {
    DCHECK(rank() == 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  // Pointer to the start of row `r` of a rank-2 tensor.
  float* row(int64_t r) {
    DCHECK(rank() == 2);
    return data_.data() + static_cast<size_t>(r * shape_[1]);
  }
  const float* row(int64_t r) const {
    DCHECK(rank() == 2);
    return data_.data() + static_cast<size_t>(r * shape_[1]);
  }

  // Reinterprets the shape; the element count must match.
  void Reshape(std::vector<int64_t> new_shape);

  void Fill(float value);
  void Zero() { Fill(0.0f); }

  // Byte size of the payload (FP32).
  uint64_t byte_size() const { return static_cast<uint64_t>(numel_) * sizeof(float); }

  std::string ShapeString() const;

  // Max |a-b| over all elements; both tensors must have identical shapes.
  static float MaxAbsDiff(const Tensor& a, const Tensor& b);

  // True when every element is bitwise identical.
  static bool BitwiseEqual(const Tensor& a, const Tensor& b);

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
  int64_t numel_ = 0;
};

}  // namespace hcache

#endif  // HCACHE_SRC_TENSOR_TENSOR_H_
