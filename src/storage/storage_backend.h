// Abstract storage backend — the seam under the paper's storage manager (§4.2).
//
// Everything above this interface (the two-stage saver, the restoration read path,
// the functional engine, the serving engine's state registry) speaks in fixed-size
// chunks keyed by (context, layer, chunk_index). Everything below it decides where
// the bytes live:
//
//   FileBackend   — one chunk per file, striped round-robin across N device
//                   directories (the paper's NVMe array, §4.2.1).
//   MemoryBackend — DRAM-resident chunks (the paper's host-memory tier, §6.2.1;
//                   also the fast path for tests).
//   TieredBackend — DRAM over a cold backend with a capacity budget, context-granular
//                   LRU eviction and write-back (the DRAM→SSD hierarchy the storage
//                   manager assumes).
//
// Restoration speed is bounded by how fast a backend streams chunks back, so each
// backend exposes uniform stats — including per-tier hit counts — that serving
// reports surface.
#ifndef HCACHE_SRC_STORAGE_STORAGE_BACKEND_H_
#define HCACHE_SRC_STORAGE_STORAGE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace hcache {

struct ChunkKey {
  int64_t context_id = 0;
  int64_t layer = 0;
  int64_t chunk_index = 0;

  friend auto operator<=>(const ChunkKey&, const ChunkKey&) = default;
};

// Read-path status for a chunk whose stored bytes FAILED integrity verification
// (ChunkHeader v2 payload-CRC mismatch, or a header that contradicts itself).
// Distinct from -1 (absent / short buffer): a corrupt chunk EXISTS — callers must
// not retry the read or treat the key as free, they must fall back to recompute
// (and fsck can quarantine it). Returned by ReadChunk / ReadChunks `result`.
inline constexpr int64_t kChunkCorrupt = -2;

// One read of a batched ReadChunks submission. The caller owns `buf` (capacity
// `buf_bytes`) and keeps it alive until the batch's completion has run; `result` is
// written by the backend: the chunk's byte count on success, -1 when the chunk is
// absent or the buffer too small (the same per-request rule as ReadChunk).
struct ChunkReadRequest {
  ChunkKey key;
  void* buf = nullptr;
  int64_t buf_bytes = 0;
  int64_t result = -1;
};

// One write of a batched WriteChunks submission (the tiered drainer's write-back
// path). `ok` is written by the backend, mirroring WriteChunk's return value.
struct ChunkWriteRequest {
  ChunkKey key;
  const void* data = nullptr;
  int64_t bytes = 0;
  bool ok = false;
};

// Invoked exactly once when every request of a batch has its result/ok field set.
using BatchCompletion = std::function<void()>;

// Uniform counters every backend maintains. Tier fields stay zero for single-tier
// backends; for TieredBackend a read is either a `dram_hits` (hot tier) or a
// `cold_hits` (served by the backing store).
//
// Hit counters come in chunks AND bytes: chunks are uniform only before the precision
// codec — an FP16 chunk occupies half the DRAM of an FP32 one — so capacity budgeting
// and tier-traffic accounting must read the byte-granular fields (`bytes_stored` and
// `*_hit_bytes` are *encoded* sizes, the real DRAM/SSD footprint).
struct StorageStats {
  int64_t chunks_stored = 0;
  int64_t bytes_stored = 0;  // encoded bytes currently resident
  int64_t total_writes = 0;
  int64_t total_reads = 0;

  int64_t dram_hits = 0;
  int64_t cold_hits = 0;
  int64_t dram_hit_bytes = 0;     // encoded bytes served from the hot tier
  int64_t cold_hit_bytes = 0;     // encoded bytes served from the cold tier
  int64_t evicted_contexts = 0;   // contexts pushed out of the hot tier
  int64_t writeback_chunks = 0;   // dirty chunks flushed to the cold tier
  int64_t writeback_bytes = 0;

  // Asynchronous write-back plane (TieredBackend only; zero elsewhere).
  int64_t drain_pending_bytes = 0;   // evicted bytes still queued for write-back
  int64_t drain_rescued_chunks = 0;  // reads served from the drain queue (DRAM hits)
  int64_t writer_stalls = 0;         // writes blocked on the drain high-water mark
  int64_t writeback_failures = 0;    // evictions rolled back on cold-tier write error
  int64_t promotions_skipped = 0;    // cold reads not admitted (chunk can't fit)
  int64_t writeback_retries = 0;     // transient cold write failures retried by drain

  // Integrity plane (ChunkHeader v2 CRC32C verification on the read paths).
  int64_t crc_failures = 0;       // reads rejected on checksum mismatch (kChunkCorrupt)
  int64_t crc_checked_bytes = 0;  // payload bytes CRC-verified on successful reads

  // Distributed cold plane (DistributedColdBackend only; zero elsewhere).
  int64_t failover_reads = 0;           // reads served by a non-primary replica
  int64_t nodes_down = 0;               // storage nodes currently marked down
  int64_t under_replicated_chunks = 0;  // chunks below the replication factor
  int64_t degraded_writes = 0;          // writes that reached >=1 but < R nodes
  int64_t re_replicated_chunks = 0;     // replica copies restored by the repair worker

  // Content-addressed dedup plane (DedupBackend only; zero elsewhere — TieredBackend
  // surfaces its cold tier's figures when dedup sits below it). `chunks_stored` /
  // `bytes_stored` stay LOGICAL for a dedup backend (consumers above the seam cannot
  // tell dedup happened); these three expose the physical reality.
  int64_t dedup_hits = 0;         // writes resolved by pointing at an existing chunk
  int64_t dedup_bytes_saved = 0;  // cumulative bytes those writes did NOT store
  int64_t unique_chunks = 0;      // physical chunks backing the logical set

  // Fraction of reads served from DRAM (1.0 for MemoryBackend, 0.0 for FileBackend).
  double DramHitRatio() const {
    const int64_t total = dram_hits + cold_hits;
    return total > 0 ? static_cast<double>(dram_hits) / static_cast<double>(total) : 0.0;
  }

  // Fraction of read *bytes* served from DRAM — the ratio that matters once chunks
  // are codec-mixed and no longer uniform in size.
  double DramHitByteRatio() const {
    const int64_t total = dram_hit_bytes + cold_hit_bytes;
    return total > 0 ? static_cast<double>(dram_hit_bytes) / static_cast<double>(total)
                     : 0.0;
  }

  int64_t ReadBytes() const { return dram_hit_bytes + cold_hit_bytes; }
};

class StorageBackend {
 public:
  explicit StorageBackend(int64_t chunk_bytes);
  virtual ~StorageBackend() = default;

  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  // Durably stores a chunk (<= chunk_bytes). Overwrites any existing chunk at `key`.
  // Returns false on IO failure. Concurrent writers on distinct chunks are safe.
  virtual bool WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) = 0;

  // Reads a chunk into `buf` (capacity `buf_bytes`). Returns the chunk's byte count,
  // -1 if the chunk does not exist or the buffer is too small, or kChunkCorrupt (-2)
  // when the stored bytes exist but fail integrity verification (v2 CRC mismatch; the
  // read counts in Stats().crc_failures, delivers no data, and has no side effects).
  //
  // Short-buffer contract (uniform across Memory/File/Tiered, pinned by the
  // cross-backend conformance test): when the stored chunk is larger than
  // `buf_bytes`, ReadChunk returns -1 WITHOUT writing to `buf`, without counting a
  // read (or any hit bytes) in Stats(), and without side effects — in particular a
  // tiered backend performs no cold-tier IO, no promotion, and no LRU update for a
  // short-buffer read. Callers distinguish "absent" from "too small" via ChunkSize.
  virtual int64_t ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const = 0;

  // Batched read: one submission for a whole layer's (or batch's) chunks, replacing
  // N serial ReadChunk round trips on the restore hot path.
  //
  // ReadChunks contract (uniform across Memory/File/Tiered/Instrumented, pinned by
  // tests/storage/read_chunks_test.cc, same rigor as the short-buffer rule above):
  //
  //   * Results: each request's `result` is set exactly as a serial
  //     ReadChunk(key, buf, buf_bytes) would return it, and on success `buf` holds
  //     the chunk bytes. Requests may be serviced in any order and concurrently;
  //     duplicate keys in one batch are allowed (each is served independently).
  //   * Partial failure: an absent chunk or short buffer fails ONLY its own request
  //     (result = -1, no bytes written, no stats counted, no side effects — for a
  //     tiered backend no cold IO, promotion, or LRU update for that request). It
  //     never poisons the rest of the batch.
  //   * Completion thread: every `result` is written before `done` runs; `done` is
  //     invoked exactly once, on the calling thread, and ReadChunks returns only
  //     after it — the call is a submission barrier. (Asynchrony is layered above:
  //     the pipelined restorer overlaps whole-batch submissions with compute.)
  //   * Stats: counters advance exactly as the same N serial ReadChunk calls would
  //     (hit tiering included), so dram_hit_bytes + cold_hit_bytes continues to
  //     equal the bytes actually delivered.
  //
  // The base implementation is the sequential loop; backends override it to batch
  // (FileBackend: pread fan-out grouped per device; MemoryBackend: one lock
  // acquisition; TieredBackend: DRAM hits inline + ONE batched cold round trip).
  virtual void ReadChunks(std::span<ChunkReadRequest> requests,
                          const BatchCompletion& done = {}) const;

  // Batched write: the drainer's write-back flushes land a whole ticket in one
  // submission. Each request's `ok` mirrors WriteChunk's return value; failures are
  // per-request. Returns true iff every request succeeded. Same completion-before-
  // return barrier semantics as ReadChunks.
  virtual bool WriteChunks(std::span<ChunkWriteRequest> requests,
                           const BatchCompletion& done = {});

  virtual bool HasChunk(const ChunkKey& key) const = 0;
  virtual int64_t ChunkSize(const ChunkKey& key) const = 0;  // -1 when absent

  // Removes every chunk belonging to a context (session ended / state dropped).
  virtual void DeleteContext(int64_t context_id) = 0;

  // --- inspection / repair surface (hcache-fsck and recovery tooling) ---

  // Every resident (key, stored bytes) pair, in unspecified order — a scan
  // snapshot, not a consistency point. Default: empty (backend not enumerable).
  virtual std::vector<std::pair<ChunkKey, int64_t>> ListChunks() const { return {}; }

  // ReadChunk minus verification: returns whatever bytes are at `key`, corrupt or
  // not, so fsck can inspect damage the verified path refuses to deliver. Default
  // forwards to ReadChunk (correct for backends that never verify).
  virtual int64_t ReadChunkUnverified(const ChunkKey& key, void* buf,
                                      int64_t buf_bytes) const {
    return ReadChunk(key, buf, buf_bytes);
  }

  // ReadChunks without integrity checking — the batched analogue of
  // ReadChunkUnverified, same contract as ReadChunks minus the CRC pass. For fsck
  // sweeps over damaged stores and for measuring exactly what verification costs on
  // the restore path (bench). Production restores use ReadChunks. Default: the
  // sequential unverified loop; backends that batch override it alongside ReadChunks.
  virtual void ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                    const BatchCompletion& done = {}) const;

  // Removes one chunk (fsck quarantine of a corrupt chunk so the context reads as
  // incomplete and falls back to recompute). Returns true if the key was resident.
  // Default: unsupported.
  virtual bool DeleteChunk(const ChunkKey& key) { (void)key; return false; }

  virtual StorageStats Stats() const = 0;
  virtual std::string Name() const = 0;

  // Completes background work (asynchronous write-back, deferred flushes). On
  // return every accepted write is durable in its final tier and Stats() is stable.
  // Single-tier backends have no background plane; the default is a no-op.
  virtual void Quiesce() {}

  int64_t chunk_bytes() const { return chunk_bytes_; }

  // --- stat accessors shared by tests and benches ---
  int64_t chunks_stored() const { return Stats().chunks_stored; }
  int64_t bytes_stored() const { return Stats().bytes_stored; }
  int64_t total_writes() const { return Stats().total_writes; }
  int64_t total_reads() const { return Stats().total_reads; }

 private:
  int64_t chunk_bytes_;
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_STORAGE_BACKEND_H_
