#include "src/storage/codec.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/storage/codec_simd.h"

namespace hcache {

namespace {

// Convert kernels below this many elements run inline on the caller; above it they
// work-share rows on the shared pool. 2^15 elements ≈ the point where a ~1 GB/s-per
// -core conversion stops being dwarfed by pool dispatch.
constexpr int64_t kParallelElemThreshold = 1 << 15;

inline uint32_t BitsOf(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

inline float FloatOf(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

// Row-parallel driver shared by encode and decode.
template <typename Fn>
void ForEachRow(int64_t rows, int64_t cols, const Fn& fn) {
  if (rows * cols < kParallelElemThreshold) {
    for (int64_t r = 0; r < rows; ++r) {
      fn(r);
    }
    return;
  }
  const int64_t grain = std::max<int64_t>(1, kParallelElemThreshold / std::max<int64_t>(cols, 1));
  ParallelFor(0, rows, grain, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      fn(r);
    }
  });
}

}  // namespace

uint16_t Fp32ToFp16Bits(float f) {
  const uint32_t u = BitsOf(f);
  const uint16_t sign = static_cast<uint16_t>((u >> 16) & 0x8000u);
  const uint32_t abs = u & 0x7fffffffu;
  // Fast path first: the normal half range [2^-14, ~65520) covers virtually every
  // hidden-state value, and its body is branch-free — RNE folds into one add whose
  // carry propagates from mantissa into exponent in float bit space:
  //   (abs + 0xfff + lsb) >> 13 rounds the 13 dropped bits to nearest-even, then the
  //   exponent is rebased from bias 127 to bias 15.
  if (abs - 0x38800000u < 0x477ff000u - 0x38800000u) {
    const uint32_t rounded = abs + 0xfffu + ((abs >> 13) & 1u);
    return static_cast<uint16_t>(sign | ((rounded >> 13) - (112u << 10)));
  }
  if (abs >= 0x7f800000u) {  // Inf / NaN
    return static_cast<uint16_t>(sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  if (abs >= 0x477ff000u) {  // would round to ≥ 2^16: saturate to max finite half
    return static_cast<uint16_t>(sign | 0x7bffu);
  }
  if (abs <= 0x33000000u) {  // < 2^-25 (tie at 2^-25 rounds to even = 0): signed zero
    return sign;
  }
  // Subnormal half: value = m * 2^(exp - 150) with the implicit bit restored; the
  // result in units of 2^-24 is m >> (126 - exp), rounded to nearest-even.
  const uint32_t m = (abs & 0x7fffffu) | 0x800000u;
  const uint32_t shift = 126u - (abs >> 23);  // 14..24
  uint32_t h = m >> shift;
  const uint32_t rem = m & ((1u << shift) - 1u);
  const uint32_t half = 1u << (shift - 1u);
  h += (rem > half) || (rem == half && (h & 1u));  // may carry into the normal range: ok
  return static_cast<uint16_t>(sign | h);
}

namespace {

float Fp16BitsToFp32Scalar(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1fu;
  uint32_t mant = bits & 0x3ffu;
  if (exp == 0x1fu) {  // Inf / NaN
    if (mant != 0) {
      // Quiet signaling NaNs (set the payload MSB), exactly like vcvtph2ps — the
      // LUT must stay hardware-equivalent for all 65536 patterns so the SIMD
      // decode tiers are bit-identical to scalar.
      mant |= 0x200u;
    }
    return FloatOf(sign | 0x7f800000u | (mant << 13));
  }
  if (exp != 0) {  // normal
    return FloatOf(sign | ((exp + 112u) << 23) | (mant << 13));
  }
  if (mant == 0) {  // signed zero
    return FloatOf(sign);
  }
  // Subnormal: normalize mant into the implicit-bit position.
  uint32_t e = 112;
  do {
    mant <<= 1;
    --e;
  } while ((mant & 0x400u) == 0);
  return FloatOf(sign | ((e + 1u) << 23) | ((mant & 0x3ffu) << 13));
}

}  // namespace

// Half decode is on the restoration critical path (the transmission stream's fused
// dequant); the scalar tier folds the branchy conversion into a 256 KiB lookup
// table — one L1/L2-friendly load per element instead of a branch tree. The vector
// tiers use vcvtph2ps, which is bit-identical to this table for every half pattern
// (the matrix test sweeps all 65536). Built once, thread-safe (C++11 statics).
const float* Fp16DecodeTable() {
  static const std::vector<float>* table = [] {
    auto* t = new std::vector<float>(1u << 16);
    for (uint32_t i = 0; i < (1u << 16); ++i) {
      (*t)[i] = Fp16BitsToFp32Scalar(static_cast<uint16_t>(i));
    }
    return t;
  }();
  return table->data();
}

float Fp16BitsToFp32(uint16_t bits) { return Fp16DecodeTable()[bits]; }

float Fp16UlpOf(float decoded) {
  const float a = std::fabs(decoded);
  if (a < 6.103515625e-05f) {  // subnormal half: fixed spacing 2^-24
    return 5.9604644775390625e-08f;
  }
  const int exp = std::ilogb(a);
  return std::ldexp(1.0f, exp - 10);  // 2^(e-10): half has 10 fraction bits
}

void Int8EncodeRow(const float* src, int64_t cols, float* scale_out, int8_t* values_out) {
  const CodecKernels& k = ActiveCodecKernels();
  const float max_abs = k.max_abs(src, cols);
  const float scale = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  *scale_out = scale;
  k.int8_quantize(src, 1.0f / scale, values_out, cols);
}

void Int8DecodeRow(const int8_t* values, float scale, int64_t cols, float* dst) {
  ActiveCodecKernels().int8_dequantize(values, scale, dst, cols);
}

void WriteChunkHeader(ChunkCodec codec, int64_t rows, int64_t cols, void* dst) {
  CHECK_GE(rows, 0);
  CHECK_GT(cols, 0);
  ChunkHeader h;
  h.magic = kChunkMagic;
  h.version = kChunkFormatVersion;
  h.codec = static_cast<uint8_t>(codec);
  h.rows = static_cast<uint32_t>(rows);
  h.cols = static_cast<uint32_t>(cols);
  // Seal the already-encoded payload behind the header, then the header behind its
  // own checksum (over every field above, i.e. the 20 bytes before header_crc32c).
  const uint8_t* payload = static_cast<const uint8_t*>(dst) + sizeof(ChunkHeader);
  h.payload_crc32c = Crc32c(payload, rows * CodecRowBytes(codec, cols));
  h.header_crc32c = Crc32c(&h, offsetof(ChunkHeader, header_crc32c));
  std::memcpy(dst, &h, sizeof(h));
}

void EncodeRowsInto(ChunkCodec codec, const float* src, int64_t src_stride, int64_t rows,
                    int64_t cols, uint8_t* payload) {
  const int64_t row_bytes = CodecRowBytes(codec, cols);
  switch (codec) {
    case ChunkCodec::kFp32:
      ForEachRow(rows, cols, [&](int64_t r) {
        std::memcpy(payload + r * row_bytes, src + r * src_stride,
                    static_cast<size_t>(cols) * sizeof(float));
      });
      break;
    case ChunkCodec::kFp16: {
      const CodecKernels& k = ActiveCodecKernels();
      ForEachRow(rows, cols, [&](int64_t r) {
        k.fp16_encode(src + r * src_stride,
                      reinterpret_cast<uint16_t*>(payload + r * row_bytes), cols);
      });
      break;
    }
    case ChunkCodec::kInt8:
      ForEachRow(rows, cols, [&](int64_t r) {
        uint8_t* row = payload + r * row_bytes;
        float scale = 0.0f;
        Int8EncodeRow(src + r * src_stride, cols, &scale,
                      reinterpret_cast<int8_t*>(row + sizeof(float)));
        std::memcpy(row, &scale, sizeof(float));
      });
      break;
  }
}

bool InspectChunk(const void* data, int64_t bytes, int64_t legacy_cols, ChunkInfo* info) {
  CHECK(info != nullptr);
  if (bytes >= static_cast<int64_t>(sizeof(ChunkHeader))) {
    ChunkHeader h;
    std::memcpy(&h, data, sizeof(h));
    if (h.magic == kChunkMagic && h.version == kChunkFormatVersion &&
        h.codec <= static_cast<uint8_t>(ChunkCodec::kInt8) && h.cols > 0 &&
        EncodedChunkBytes(static_cast<ChunkCodec>(h.codec), h.rows, h.cols) == bytes &&
        Crc32c(data, offsetof(ChunkHeader, header_crc32c)) == h.header_crc32c) {
      info->codec = static_cast<ChunkCodec>(h.codec);
      info->rows = h.rows;
      info->cols = h.cols;
      info->header_bytes = static_cast<int64_t>(sizeof(ChunkHeader));
      info->payload_crc32c = h.payload_crc32c;
      info->has_crc = true;
      return true;
    }
  }
  // v1 (16-byte header, no checksums): still live on disk from pre-v2 writers.
  if (bytes >= kChunkHeaderBytesV1) {
    ChunkHeader h{};
    std::memcpy(&h, data, static_cast<size_t>(kChunkHeaderBytesV1));
    if (h.magic == kChunkMagic && h.version == 1 &&
        h.codec <= static_cast<uint8_t>(ChunkCodec::kInt8) && h.cols > 0 &&
        kChunkHeaderBytesV1 +
                static_cast<int64_t>(h.rows) *
                    CodecRowBytes(static_cast<ChunkCodec>(h.codec), h.cols) ==
            bytes) {
      info->codec = static_cast<ChunkCodec>(h.codec);
      info->rows = h.rows;
      info->cols = h.cols;
      info->header_bytes = kChunkHeaderBytesV1;
      info->payload_crc32c = 0;
      info->has_crc = false;
      return true;
    }
  }
  // Legacy v0 chunk: raw FP32 rows, no header (size rule shared with the
  // completeness scans via LegacyChunkRows). A legacy chunk whose leading floats
  // happen to spell a valid header AND whose size matches that header's geometry is
  // the only ambiguity; the triple check makes it vanishingly unlikely.
  const int64_t legacy_rows = LegacyChunkRows(bytes, legacy_cols);
  if (legacy_rows > 0) {
    info->codec = ChunkCodec::kFp32;
    info->rows = legacy_rows;
    info->cols = legacy_cols;
    info->header_bytes = 0;
    return true;
  }
  return false;
}

void DecodeChunkRange(const void* data, int64_t bytes, const ChunkInfo& info, int64_t row0,
                      int64_t row1, int64_t col0, int64_t col1, float* dst,
                      int64_t dst_stride) {
  CHECK_GE(row0, 0);
  CHECK_LE(row1, info.rows);
  CHECK_GE(col0, 0);
  CHECK_LT(col0, col1);
  CHECK_LE(col1, info.cols);
  const int64_t rows = row1 - row0;
  if (rows <= 0) {
    return;
  }
  const int64_t cols = col1 - col0;
  const int64_t row_bytes =
      info.header_bytes > 0 ? CodecRowBytes(info.codec, info.cols)
                            : info.cols * static_cast<int64_t>(sizeof(float));
  const uint8_t* base = static_cast<const uint8_t*>(data) + info.header_bytes;
  CHECK_LE(info.header_bytes + info.rows * row_bytes, bytes) << "short chunk payload";
  switch (info.codec) {
    case ChunkCodec::kFp32:
      ForEachRow(rows, cols, [&](int64_t r) {
        const uint8_t* row = base + (row0 + r) * row_bytes;
        std::memcpy(dst + r * dst_stride,
                    reinterpret_cast<const float*>(row) + col0,
                    static_cast<size_t>(cols) * sizeof(float));
      });
      break;
    case ChunkCodec::kFp16: {
      // The column-range decode de-interleaves [K | V] rows straight into the
      // projection inputs; the kernel tolerates the 2-byte-aligned offset a nonzero
      // col0 produces (unaligned vector loads).
      const CodecKernels& k = ActiveCodecKernels();
      ForEachRow(rows, cols, [&](int64_t r) {
        k.fp16_decode(reinterpret_cast<const uint16_t*>(base + (row0 + r) * row_bytes) + col0,
                      dst + r * dst_stride, cols);
      });
      break;
    }
    case ChunkCodec::kInt8:
      ForEachRow(rows, cols, [&](int64_t r) {
        const uint8_t* row = base + (row0 + r) * row_bytes;
        float scale = 0.0f;
        std::memcpy(&scale, row, sizeof(float));
        Int8DecodeRow(reinterpret_cast<const int8_t*>(row + sizeof(float)) + col0, scale,
                      cols, dst + r * dst_stride);
      });
      break;
  }
}

}  // namespace hcache
