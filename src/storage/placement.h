// Deterministic chunk placement for the distributed cold plane: consistent
// hashing with virtual nodes over a set of storage-node ids (EOS's mgm decides
// file placement over fst nodes the same way at exabyte scale — a placement
// function, not a per-chunk directory, so no metadata server sits on the IO path).
//
// The ring maps every ChunkKey to a *walk order* over the current members: the
// first R distinct nodes on the clockwise walk from the key's hash point are the
// chunk's home replica set. Membership changes move only the chunks whose walk
// crosses the changed node (the consistent-hashing property the drain verb relies
// on: removing a node re-homes ~1/N of the chunks, not all of them).
//
// All hashing is self-contained (splitmix64-style mixing), so placement is
// bit-identical across platforms, processes, and library versions — two processes
// that agree on the member list agree on every chunk's home, which is what lets
// hcache-fsck reconstruct placement offline from node directories alone.
//
// The table is immutable after construction; membership changes produce a NEW
// table (copy-on-write in DistributedColdBackend), so readers never observe a
// half-updated ring.
#ifndef HCACHE_SRC_STORAGE_PLACEMENT_H_
#define HCACHE_SRC_STORAGE_PLACEMENT_H_

#include <cstdint>
#include <vector>

#include "src/storage/storage_backend.h"

namespace hcache {

class PlacementTable {
 public:
  // Ring over `node_ids` (need not be contiguous — drained nodes leave holes).
  // `vnodes_per_node` trades lookup cost for fill evenness; 64 keeps worst-case
  // node fill within a few percent of the mean at the fleet sizes we simulate.
  explicit PlacementTable(std::vector<int> node_ids, int vnodes_per_node = 64);

  // Every member node in clockwise walk order from `key`'s ring point, deduped:
  // element 0 is the primary, elements [0, R) the home replica set. Size ==
  // num_nodes() always, so callers can keep walking past down nodes.
  std::vector<int> WalkOrder(const ChunkKey& key) const;

  // First min(r, num_nodes()) entries of WalkOrder — the home replica set.
  std::vector<int> ReplicasFor(const ChunkKey& key, int r) const;

  // True when `node` is in the home replica set of `key` at replication `r`.
  bool IsHome(const ChunkKey& key, int node, int r) const;

  // A new table with `node` removed (drain) — same vnode layout for survivors,
  // so only the drained node's chunks re-home.
  PlacementTable Without(int node) const;
  // A new table with `node` added (scale-out / re-admit after drain).
  PlacementTable With(int node) const;

  int num_nodes() const { return static_cast<int>(node_ids_.size()); }
  const std::vector<int>& node_ids() const { return node_ids_; }
  bool HasNode(int node) const;

  // Stable 64-bit point for a chunk key (exposed for tests pinning determinism).
  static uint64_t HashKey(const ChunkKey& key);

 private:
  struct VirtualNode {
    uint64_t point = 0;
    int node = -1;
  };

  std::vector<int> node_ids_;
  int vnodes_per_node_;
  std::vector<VirtualNode> ring_;  // sorted by point
};

}  // namespace hcache

#endif  // HCACHE_SRC_STORAGE_PLACEMENT_H_
