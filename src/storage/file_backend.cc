#include "src/storage/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"

namespace hcache {

namespace fs = std::filesystem;

struct FileBackend::FdHolder {
  explicit FdHolder(int fd_in) : fd(fd_in) {}
  ~FdHolder() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  FdHolder(const FdHolder&) = delete;
  FdHolder& operator=(const FdHolder&) = delete;

  int fd = -1;
};

namespace {

// Enough for several concurrent restores' working sets without nearing default
// RLIMIT_NOFILE budgets (a 32-chunk context touches 32 files).
constexpr size_t kMaxCachedFds = 128;

// Reads exactly [0, size) from `fd` at absolute offsets, retrying EINTR and short
// reads. pread never moves the fd's file position, so concurrent readers sharing one
// cached fd cannot interleave.
bool PreadAll(int fd, void* buf, int64_t size) {
  char* dst = static_cast<char*>(buf);
  int64_t off = 0;
  while (off < size) {
    const ssize_t got =
        ::pread(fd, dst + off, static_cast<size_t>(size - off), static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (got == 0) {  // file shorter than the index claims
      return false;
    }
    off += got;
  }
  return true;
}

}  // namespace

FileBackend::FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes)
    : StorageBackend(chunk_bytes), device_dirs_(std::move(device_dirs)) {
  CHECK(!device_dirs_.empty());
  for (const auto& dir : device_dirs_) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    CHECK(!ec) << "cannot create device dir " << dir << ": " << ec.message();
  }
}

int FileBackend::DeviceOf(const ChunkKey& key) const {
  return static_cast<int>(key.chunk_index % static_cast<int64_t>(device_dirs_.size()));
}

std::string FileBackend::ContextDir(int device, int64_t context_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ctx%lld", static_cast<long long>(context_id));
  return device_dirs_[static_cast<size_t>(device)] + "/" + name;
}

std::string FileBackend::PathFor(const ChunkKey& key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "L%lld_C%lld.bin", static_cast<long long>(key.layer),
                static_cast<long long>(key.chunk_index));
  return ContextDir(DeviceOf(key), key.context_id) + "/" + name;
}

bool FileBackend::EnsureContextDir(int device, int64_t context_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (context_dirs_.count({context_id, device}) != 0) {
      return true;
    }
  }
  std::error_code ec;
  fs::create_directories(ContextDir(device, context_id), ec);
  if (ec) {
    HCACHE_LOG_ERROR << "cannot create context dir for ctx " << context_id << ": "
                     << ec.message();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  context_dirs_.insert({context_id, device});
  return true;
}

std::shared_ptr<FileBackend::FdHolder> FileBackend::AcquireFd(const ChunkKey& key) const {
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    const auto it = fd_cache_.find(key);
    if (it != fd_cache_.end()) {
      fd_lru_.splice(fd_lru_.begin(), fd_lru_, it->second.second);
      return it->second.first;
    }
  }
  // Open outside the lock: a slow open (cold dentry, loaded device) must not
  // serialize every other reader behind it.
  const int fd = ::open(PathFor(key).c_str(), O_RDONLY);
  if (fd < 0) {
    return nullptr;
  }
  auto holder = std::make_shared<FdHolder>(fd);
  std::lock_guard<std::mutex> lock(fd_mu_);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    // Lost the open race; keep the incumbent (ours closes when `holder` dies).
    fd_lru_.splice(fd_lru_.begin(), fd_lru_, it->second.second);
    return it->second.first;
  }
  fd_lru_.push_front(key);
  fd_cache_.emplace(key, std::make_pair(holder, fd_lru_.begin()));
  while (fd_cache_.size() > kMaxCachedFds) {
    const ChunkKey victim = fd_lru_.back();
    fd_lru_.pop_back();
    fd_cache_.erase(victim);  // in-flight readers keep the fd alive via shared_ptr
  }
  return holder;
}

void FileBackend::DropCachedFd(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    fd_lru_.erase(it->second.second);
    fd_cache_.erase(it);
  }
}

void FileBackend::DropContextFds(int64_t context_id) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  for (auto it = fd_cache_.lower_bound(ChunkKey{context_id, 0, 0});
       it != fd_cache_.end() && it->first.context_id == context_id;) {
    fd_lru_.erase(it->second.second);
    it = fd_cache_.erase(it);
  }
}

bool FileBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  if (!EnsureContextDir(DeviceOf(key), key.context_id)) {
    return false;
  }
  const std::string path = PathFor(key);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    HCACHE_LOG_ERROR << "open failed: " << path;
    return false;
  }
  const size_t written = std::fwrite(data, 1, static_cast<size_t>(bytes), f);
  const bool ok = written == static_cast<size_t>(bytes) && std::fclose(f) == 0;
  if (!ok) {
    HCACHE_LOG_ERROR << "short write: " << path;
    return false;
  }
  // Overwrites truncate in place (same inode), so a cached fd would still see the
  // new bytes — dropped anyway so the cache never outlives a rewrite's assumptions.
  DropCachedFd(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto& indexed = index_[key];
  bytes_stored_ += bytes - indexed;
  indexed = bytes;
  ++total_writes_;
  return true;
}

int64_t FileBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  int64_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return -1;
    }
    size = it->second;
  }
  if (size > buf_bytes) {
    return -1;
  }
  const std::shared_ptr<FdHolder> fd = AcquireFd(key);
  if (fd == nullptr || !PreadAll(fd->fd, buf, size)) {
    return -1;
  }
  // Count only successful reads, so stats stay comparable across backends.
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reads_;
  read_bytes_ += size;
  return size;
}

void FileBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                             const BatchCompletion& done) const {
  // One index pass resolves every request, then the preads fan out per device.
  struct Job {
    ChunkReadRequest* req;
    int64_t size;
  };
  std::vector<std::vector<Job>> per_device(device_dirs_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ChunkReadRequest& req : requests) {
      req.result = -1;
      const auto it = index_.find(req.key);
      if (it == index_.end() || it->second > req.buf_bytes) {
        continue;  // absent / short buffer: fails only this request
      }
      per_device[static_cast<size_t>(DeviceOf(req.key))].push_back(Job{&req, it->second});
    }
  }
  std::atomic<int64_t> ok_reads{0};
  std::atomic<int64_t> ok_bytes{0};
  ParallelFor(0, static_cast<int64_t>(per_device.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      int64_t reads = 0;
      int64_t bytes = 0;
      for (const Job& job : per_device[static_cast<size_t>(d)]) {
        const std::shared_ptr<FdHolder> fd = AcquireFd(job.req->key);
        if (fd == nullptr || !PreadAll(fd->fd, job.req->buf, job.size)) {
          continue;
        }
        job.req->result = job.size;
        ++reads;
        bytes += job.size;
      }
      ok_reads.fetch_add(reads, std::memory_order_relaxed);
      ok_bytes.fetch_add(bytes, std::memory_order_relaxed);
    }
  });
  {
    // One stats update with the same totals N serial ReadChunk calls would post.
    std::lock_guard<std::mutex> lock(mu_);
    total_reads_ += ok_reads.load(std::memory_order_relaxed);
    read_bytes_ += ok_bytes.load(std::memory_order_relaxed);
  }
  if (done) {
    done();
  }
}

bool FileBackend::WriteChunks(std::span<ChunkWriteRequest> requests,
                              const BatchCompletion& done) {
  std::vector<std::vector<ChunkWriteRequest*>> per_device(device_dirs_.size());
  for (ChunkWriteRequest& req : requests) {
    per_device[static_cast<size_t>(DeviceOf(req.key))].push_back(&req);
  }
  std::atomic<bool> all_ok{true};
  ParallelFor(0, static_cast<int64_t>(per_device.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      for (ChunkWriteRequest* req : per_device[static_cast<size_t>(d)]) {
        req->ok = WriteChunk(req->key, req->data, req->bytes);
        if (!req->ok) {
          all_ok.store(false, std::memory_order_relaxed);
        }
      }
    }
  });
  if (done) {
    done();
  }
  return all_ok.load(std::memory_order_relaxed);
}

bool FileBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

int64_t FileBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

void FileBackend::DeleteContext(int64_t context_id) {
  DropContextFds(context_id);
  std::vector<int> devices;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = index_.lower_bound(ChunkKey{context_id, 0, 0});
         it != index_.end() && it->first.context_id == context_id;) {
      bytes_stored_ -= it->second;
      it = index_.erase(it);
    }
    for (auto it = context_dirs_.lower_bound({context_id, 0});
         it != context_dirs_.end() && it->first == context_id;) {
      devices.push_back(it->second);
      it = context_dirs_.erase(it);
    }
  }
  // Unlink the per-context directory on each device — removing the chunks AND the
  // now-empty directory, so long serving runs don't accumulate thousands of them.
  for (const int device : devices) {
    std::error_code ec;
    fs::remove_all(ContextDir(device, context_id), ec);
  }
}

StorageStats FileBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(index_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.cold_hits = total_reads_;  // every read is served by the file tier
  s.cold_hit_bytes = read_bytes_;
  return s;
}

}  // namespace hcache
