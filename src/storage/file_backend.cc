#include "src/storage/file_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/storage/integrity.h"

namespace hcache {

namespace fs = std::filesystem;

struct FileBackend::FdHolder {
  explicit FdHolder(int fd_in) : fd(fd_in) {}
  ~FdHolder() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  FdHolder(const FdHolder&) = delete;
  FdHolder& operator=(const FdHolder&) = delete;

  int fd = -1;
};

namespace {

// Enough for several concurrent restores' working sets without nearing default
// RLIMIT_NOFILE budgets (a 32-chunk context touches 32 files).
constexpr size_t kMaxCachedFds = 128;

// Reads exactly [0, size) from `fd` at absolute offsets, retrying EINTR and short
// reads. pread never moves the fd's file position, so concurrent readers sharing one
// cached fd cannot interleave.
bool PreadAll(int fd, void* buf, int64_t size) {
  char* dst = static_cast<char*>(buf);
  int64_t off = 0;
  while (off < size) {
    const ssize_t got =
        ::pread(fd, dst + off, static_cast<size_t>(size - off), static_cast<off_t>(off));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    if (got == 0) {  // file shorter than the index claims
      return false;
    }
    off += got;
  }
  return true;
}

// Writes exactly [0, size) to `fd`, retrying EINTR and short writes.
bool WriteAll(int fd, const void* buf, int64_t size) {
  const char* src = static_cast<const char*>(buf);
  int64_t off = 0;
  while (off < size) {
    const ssize_t put = ::write(fd, src + off, static_cast<size_t>(size - off));
    if (put < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += put;
  }
  return true;
}

// Parses "L<layer>_C<chunk>.bin"; false for anything else (incl. "*.tmp").
bool ParseChunkFileName(const std::string& name, int64_t* layer, int64_t* chunk) {
  long long l = 0;
  long long c = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "L%lld_C%lld.bin%n", &l, &c, &consumed) != 2 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *layer = l;
  *chunk = c;
  return true;
}

bool IsTempFileName(const std::string& name) {
  constexpr const char kSuffix[] = ".tmp";
  return name.size() > sizeof(kSuffix) - 1 &&
         name.compare(name.size() - (sizeof(kSuffix) - 1), sizeof(kSuffix) - 1,
                      kSuffix) == 0;
}

}  // namespace

FileBackend::FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes)
    : FileBackend(std::move(device_dirs), chunk_bytes, FileBackendOptions{}) {}

FileBackend::FileBackend(std::vector<std::string> device_dirs, int64_t chunk_bytes,
                         const FileBackendOptions& options)
    : StorageBackend(chunk_bytes), device_dirs_(std::move(device_dirs)), options_(options) {
  CHECK(!device_dirs_.empty());
  for (const auto& dir : device_dirs_) {
    std::error_code ec;
    fs::create_directories(dir, ec);
    CHECK(!ec) << "cannot create device dir " << dir << ": " << ec.message();
  }
  if (options_.recover_index) {
    RecoverFromDisk();
  }
}

void FileBackend::RecoverFromDisk() {
  for (int device = 0; device < num_devices(); ++device) {
    const fs::path dev_dir(device_dirs_[static_cast<size_t>(device)]);
    std::error_code ec;
    for (const auto& ctx_entry : fs::directory_iterator(dev_dir, ec)) {
      if (!ctx_entry.is_directory()) {
        continue;
      }
      long long context_id = 0;
      int consumed = 0;
      const std::string ctx_name = ctx_entry.path().filename().string();
      if (std::sscanf(ctx_name.c_str(), "ctx%lld%n", &context_id, &consumed) != 1 ||
          static_cast<size_t>(consumed) != ctx_name.size()) {
        continue;
      }
      bool saw_chunk = false;
      std::error_code ec2;
      for (const auto& entry : fs::directory_iterator(ctx_entry.path(), ec2)) {
        if (!entry.is_regular_file()) {
          continue;
        }
        const std::string name = entry.path().filename().string();
        if (IsTempFileName(name)) {
          // A writer died between creating the temp and the rename: the chunk was
          // never published, so the temp is garbage by construction.
          if (options_.sweep_temp_files) {
            std::error_code rm_ec;
            fs::remove(entry.path(), rm_ec);
            ++swept_temp_files_;
          }
          continue;
        }
        int64_t layer = 0;
        int64_t chunk = 0;
        if (!ParseChunkFileName(name, &layer, &chunk)) {
          continue;
        }
        const ChunkKey key{context_id, layer, chunk};
        if (DeviceOf(key) != device) {
          continue;  // misplaced file (foreign dir contents); never index it
        }
        std::error_code sz_ec;
        const auto size = static_cast<int64_t>(fs::file_size(entry.path(), sz_ec));
        if (sz_ec || size <= 0 || size > chunk_bytes()) {
          continue;  // unreadable or impossible size: leave it for fsck
        }
        auto& indexed = index_[key];
        bytes_stored_ += size - indexed;
        indexed = size;
        saw_chunk = true;
      }
      if (saw_chunk) {
        context_dirs_.insert({context_id, device});
      }
    }
  }
}

int FileBackend::DeviceOf(const ChunkKey& key) const {
  return static_cast<int>(key.chunk_index % static_cast<int64_t>(device_dirs_.size()));
}

std::string FileBackend::ContextDir(int device, int64_t context_id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "ctx%lld", static_cast<long long>(context_id));
  return device_dirs_[static_cast<size_t>(device)] + "/" + name;
}

std::string FileBackend::PathFor(const ChunkKey& key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "L%lld_C%lld.bin", static_cast<long long>(key.layer),
                static_cast<long long>(key.chunk_index));
  return ContextDir(DeviceOf(key), key.context_id) + "/" + name;
}

bool FileBackend::EnsureContextDir(int device, int64_t context_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (context_dirs_.count({context_id, device}) != 0) {
      return true;
    }
  }
  std::error_code ec;
  fs::create_directories(ContextDir(device, context_id), ec);
  if (ec) {
    HCACHE_LOG_ERROR << "cannot create context dir for ctx " << context_id << ": "
                     << ec.message();
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  context_dirs_.insert({context_id, device});
  return true;
}

std::shared_ptr<FileBackend::FdHolder> FileBackend::AcquireFd(const ChunkKey& key) const {
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    const auto it = fd_cache_.find(key);
    if (it != fd_cache_.end()) {
      fd_lru_.splice(fd_lru_.begin(), fd_lru_, it->second.second);
      return it->second.first;
    }
  }
  // Open outside the lock: a slow open (cold dentry, loaded device) must not
  // serialize every other reader behind it.
  const int fd = ::open(PathFor(key).c_str(), O_RDONLY);
  if (fd < 0) {
    return nullptr;
  }
  auto holder = std::make_shared<FdHolder>(fd);
  std::lock_guard<std::mutex> lock(fd_mu_);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    // Lost the open race; keep the incumbent (ours closes when `holder` dies).
    fd_lru_.splice(fd_lru_.begin(), fd_lru_, it->second.second);
    return it->second.first;
  }
  fd_lru_.push_front(key);
  fd_cache_.emplace(key, std::make_pair(holder, fd_lru_.begin()));
  while (fd_cache_.size() > kMaxCachedFds) {
    const ChunkKey victim = fd_lru_.back();
    fd_lru_.pop_back();
    fd_cache_.erase(victim);  // in-flight readers keep the fd alive via shared_ptr
  }
  return holder;
}

void FileBackend::DropCachedFd(const ChunkKey& key) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  const auto it = fd_cache_.find(key);
  if (it != fd_cache_.end()) {
    fd_lru_.erase(it->second.second);
    fd_cache_.erase(it);
  }
}

void FileBackend::DropContextFds(int64_t context_id) {
  std::lock_guard<std::mutex> lock(fd_mu_);
  for (auto it = fd_cache_.lower_bound(ChunkKey{context_id, 0, 0});
       it != fd_cache_.end() && it->first.context_id == context_id;) {
    fd_lru_.erase(it->second.second);
    it = fd_cache_.erase(it);
  }
}

bool FileBackend::WriteChunk(const ChunkKey& key, const void* data, int64_t bytes) {
  CHECK_GT(bytes, 0);
  CHECK_LE(bytes, chunk_bytes());
  if (!EnsureContextDir(DeviceOf(key), key.context_id)) {
    return false;
  }
  // Write-temp + fsync + atomic rename: the final path either holds the complete
  // old chunk or the complete new one, never a torn mix — and a failure at any step
  // (short write, full disk, crash) leaves at worst a `.tmp` the recovery scan
  // sweeps. The fd is closed on EVERY path (a short write used to short-circuit
  // past fclose and leak it) and the partial temp is unlinked before returning.
  const std::string path = PathFor(key);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    HCACHE_LOG_ERROR << "open failed: " << tmp;
    return false;
  }
  bool ok = WriteAll(fd, data, bytes);
  if (ok && options_.fsync_writes) {
    ok = ::fsync(fd) == 0;
  }
  ok = (::close(fd) == 0) && ok;
  if (ok) {
    ok = ::rename(tmp.c_str(), path.c_str()) == 0;
  }
  if (!ok) {
    HCACHE_LOG_ERROR << "write failed: " << path << " (" << std::strerror(errno) << ")";
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename swapped the inode under the final path; a cached fd still maps the
  // OLD bytes and must be dropped.
  DropCachedFd(key);
  std::lock_guard<std::mutex> lock(mu_);
  auto& indexed = index_[key];
  bytes_stored_ += bytes - indexed;
  indexed = bytes;
  ++total_writes_;
  return true;
}

int64_t FileBackend::ReadChunkImpl(const ChunkKey& key, void* buf, int64_t buf_bytes,
                                   bool verify) const {
  int64_t size;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return -1;
    }
    size = it->second;
  }
  if (size > buf_bytes) {
    return -1;
  }
  const std::shared_ptr<FdHolder> fd = AcquireFd(key);
  if (fd == nullptr || !PreadAll(fd->fd, buf, size)) {
    return -1;
  }
  int64_t checked = 0;
  if (verify && VerifyChunkBytes(buf, size, &checked) == ChunkVerdict::kCorrupt) {
    std::lock_guard<std::mutex> lock(mu_);
    ++crc_failures_;
    return kChunkCorrupt;  // bytes in `buf` are damage, not data — no read counted
  }
  // Count only successful reads, so stats stay comparable across backends.
  std::lock_guard<std::mutex> lock(mu_);
  ++total_reads_;
  read_bytes_ += size;
  crc_checked_bytes_ += checked;
  return size;
}

int64_t FileBackend::ReadChunk(const ChunkKey& key, void* buf, int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/true);
}

int64_t FileBackend::ReadChunkUnverified(const ChunkKey& key, void* buf,
                                         int64_t buf_bytes) const {
  return ReadChunkImpl(key, buf, buf_bytes, /*verify=*/false);
}

void FileBackend::ReadChunks(std::span<ChunkReadRequest> requests,
                             const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/true);
}

void FileBackend::ReadChunksUnverified(std::span<ChunkReadRequest> requests,
                                       const BatchCompletion& done) const {
  ReadChunksImpl(requests, done, /*verify=*/false);
}

void FileBackend::ReadChunksImpl(std::span<ChunkReadRequest> requests,
                                 const BatchCompletion& done, bool verify) const {
  // One index pass resolves every request, then the preads fan out per device.
  struct Job {
    ChunkReadRequest* req;
    int64_t size;
  };
  std::vector<std::vector<Job>> per_device(device_dirs_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (ChunkReadRequest& req : requests) {
      req.result = -1;
      const auto it = index_.find(req.key);
      if (it == index_.end() || it->second > req.buf_bytes) {
        continue;  // absent / short buffer: fails only this request
      }
      per_device[static_cast<size_t>(DeviceOf(req.key))].push_back(Job{&req, it->second});
    }
  }
  std::atomic<int64_t> ok_reads{0};
  std::atomic<int64_t> ok_bytes{0};
  std::atomic<int64_t> crc_fails{0};
  std::atomic<int64_t> crc_bytes{0};
  ParallelFor(0, static_cast<int64_t>(per_device.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      int64_t reads = 0;
      int64_t bytes = 0;
      int64_t fails = 0;
      int64_t checked_total = 0;
      for (const Job& job : per_device[static_cast<size_t>(d)]) {
        const std::shared_ptr<FdHolder> fd = AcquireFd(job.req->key);
        if (fd == nullptr || !PreadAll(fd->fd, job.req->buf, job.size)) {
          continue;
        }
        if (verify) {
          int64_t checked = 0;
          if (VerifyChunkBytes(job.req->buf, job.size, &checked) ==
              ChunkVerdict::kCorrupt) {
            job.req->result = kChunkCorrupt;  // fails only this request
            ++fails;
            continue;
          }
          checked_total += checked;
        }
        job.req->result = job.size;
        ++reads;
        bytes += job.size;
      }
      ok_reads.fetch_add(reads, std::memory_order_relaxed);
      ok_bytes.fetch_add(bytes, std::memory_order_relaxed);
      crc_fails.fetch_add(fails, std::memory_order_relaxed);
      crc_bytes.fetch_add(checked_total, std::memory_order_relaxed);
    }
  });
  {
    // One stats update with the same totals N serial ReadChunk calls would post.
    std::lock_guard<std::mutex> lock(mu_);
    total_reads_ += ok_reads.load(std::memory_order_relaxed);
    read_bytes_ += ok_bytes.load(std::memory_order_relaxed);
    crc_failures_ += crc_fails.load(std::memory_order_relaxed);
    crc_checked_bytes_ += crc_bytes.load(std::memory_order_relaxed);
  }
  if (done) {
    done();
  }
}

bool FileBackend::WriteChunks(std::span<ChunkWriteRequest> requests,
                              const BatchCompletion& done) {
  std::vector<std::vector<ChunkWriteRequest*>> per_device(device_dirs_.size());
  for (ChunkWriteRequest& req : requests) {
    per_device[static_cast<size_t>(DeviceOf(req.key))].push_back(&req);
  }
  std::atomic<bool> all_ok{true};
  ParallelFor(0, static_cast<int64_t>(per_device.size()), 1, [&](int64_t lo, int64_t hi) {
    for (int64_t d = lo; d < hi; ++d) {
      for (ChunkWriteRequest* req : per_device[static_cast<size_t>(d)]) {
        req->ok = WriteChunk(req->key, req->data, req->bytes);
        if (!req->ok) {
          all_ok.store(false, std::memory_order_relaxed);
        }
      }
    }
  });
  if (done) {
    done();
  }
  return all_ok.load(std::memory_order_relaxed);
}

bool FileBackend::HasChunk(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) != 0;
}

int64_t FileBackend::ChunkSize(const ChunkKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : it->second;
}

std::vector<std::pair<ChunkKey, int64_t>> FileBackend::ListChunks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ChunkKey, int64_t>> out;
  out.reserve(index_.size());
  for (const auto& [key, size] : index_) {
    out.emplace_back(key, size);
  }
  return out;
}

bool FileBackend::DeleteChunk(const ChunkKey& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    bytes_stored_ -= it->second;
    index_.erase(it);
  }
  DropCachedFd(key);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  return true;
}

void FileBackend::DeleteContext(int64_t context_id) {
  DropContextFds(context_id);
  std::vector<int> devices;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = index_.lower_bound(ChunkKey{context_id, 0, 0});
         it != index_.end() && it->first.context_id == context_id;) {
      bytes_stored_ -= it->second;
      it = index_.erase(it);
    }
    for (auto it = context_dirs_.lower_bound({context_id, 0});
         it != context_dirs_.end() && it->first == context_id;) {
      devices.push_back(it->second);
      it = context_dirs_.erase(it);
    }
  }
  // Unlink the per-context directory on each device — removing the chunks AND the
  // now-empty directory, so long serving runs don't accumulate thousands of them.
  for (const int device : devices) {
    std::error_code ec;
    fs::remove_all(ContextDir(device, context_id), ec);
  }
}

StorageStats FileBackend::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StorageStats s;
  s.chunks_stored = static_cast<int64_t>(index_.size());
  s.bytes_stored = bytes_stored_;
  s.total_writes = total_writes_;
  s.total_reads = total_reads_;
  s.cold_hits = total_reads_;  // every read is served by the file tier
  s.cold_hit_bytes = read_bytes_;
  s.crc_failures = crc_failures_;
  s.crc_checked_bytes = crc_checked_bytes_;
  return s;
}

}  // namespace hcache
